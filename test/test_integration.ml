(* Integration tests: the full pipeline (program -> network -> solve ->
   restructure -> simulate), the optimizer facade, dynamic layouts, and
   scaled-down versions of the paper's experiments. *)

module B = Mlo_ir.Builder
module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Layout = Mlo_layout.Layout
module Optimizer = Mlo_core.Optimizer
module Dynamic = Mlo_core.Dynamic
module Simulate = Mlo_cachesim.Simulate
module Hierarchy = Mlo_cachesim.Hierarchy
module Suite = Mlo_workloads.Suite
module Spec = Mlo_workloads.Spec
module Kernels = Mlo_workloads.Kernels


(* ------------------------------------------------------------------ *)
(* Optimizer pipeline                                                   *)
(* ------------------------------------------------------------------ *)

let matmul_chain ~n =
  let init_t, req0 = Kernels.fill ~name:"init_t" ~n ~dst:"T" in
  let mm1, req1 = Kernels.matmul ~name:"mm1" ~n ~c:"T" ~a:"A" ~b:"B" in
  let mm2, req2 = Kernels.matmul ~name:"mm2" ~n ~c:"D" ~a:"T" ~b:"C" in
  let init_d, req3 = Kernels.fill ~name:"init_d" ~n ~dst:"D" in
  let arrays = Kernels.declare (req0 @ req1 @ req2 @ req3) in
  Program.make ~name:"chain" arrays [ init_t; mm1; init_d; mm2 ]

let test_optimizer_enhanced_improves_matmul () =
  let prog = matmul_chain ~n:32 in
  let original = Optimizer.simulate_original prog in
  let sol = Optimizer.optimize (Optimizer.Enhanced 1) prog in
  let optimized = Optimizer.simulate sol in
  Alcotest.(check bool) "fewer cycles" true
    (Simulate.cycles optimized <= Simulate.cycles original);
  Alcotest.(check int) "all arrays assigned" 5
    (List.length sol.Optimizer.layouts);
  Alcotest.(check bool) "stats recorded" true (sol.Optimizer.solver_stats <> None)

let test_optimizer_schemes_agree_on_satisfiability () =
  let prog = matmul_chain ~n:16 in
  List.iter
    (fun scheme ->
      let sol = Optimizer.optimize scheme prog in
      Alcotest.(check int) "assigned" 5 (List.length sol.Optimizer.layouts))
    [ Optimizer.Heuristic; Optimizer.Base 1; Optimizer.Enhanced 1 ]

let test_optimizer_custom_config () =
  let prog = matmul_chain ~n:16 in
  let config =
    {
      Mlo_csp.Solver.default_config with
      Mlo_csp.Solver.lookahead = Mlo_csp.Solver.Forward_checking;
      backward = Mlo_csp.Solver.Conflict_directed;
    }
  in
  let sol = Optimizer.optimize (Optimizer.Custom config) prog in
  Alcotest.(check int) "assigned" 5 (List.length sol.Optimizer.layouts)

let test_optimizer_raises_on_budget () =
  let spec = Suite.by_name "med-im04" in
  Alcotest.(check bool) "raises No_solution" true
    (try
       ignore
         (Optimizer.optimize ~candidates:spec.Spec.candidates ~max_checks:10
            (Optimizer.Base 1) spec.Spec.program);
       false
     with Optimizer.No_solution _ -> true)

(* ------------------------------------------------------------------ *)
(* Simulated quality: optimized beats original on conflicted programs   *)
(* ------------------------------------------------------------------ *)

let test_pipeline_beats_original_on_suite () =
  (* spot-check two benchmarks end to end (full suite covered by bench) *)
  List.iter
    (fun name ->
      let spec = Suite.by_name name in
      let prog = spec.Spec.sim_program in
      let original = Optimizer.simulate_original prog in
      let sol =
        Optimizer.optimize ~candidates:spec.Spec.candidates
          (Optimizer.Enhanced 1) prog
      in
      let optimized = Optimizer.simulate sol in
      Alcotest.(check bool)
        (name ^ " improves")
        true
        (Simulate.cycles optimized < Simulate.cycles original))
    [ "mxm"; "track" ]

(* ------------------------------------------------------------------ *)
(* Dynamic layouts                                                      *)
(* ------------------------------------------------------------------ *)

(* Each phase's nests carry a (1,-1)-distance dependence on V, pinning
   their loop order: phase 1 must walk row-wise, phase 2 column-wise, so
   only a layout change can serve both. *)
let two_phase_program ~n ~repeats =
  let phase name transposed r0 =
    List.init repeats (fun r ->
        let x = B.ctx [ "i"; "j" ] in
        let i = B.var x "i" and j = B.var x "j" in
        let one = B.const x 1 in
        let flip a b = if transposed then [ b; a ] else [ a; b ] in
        B.nest (Printf.sprintf "%s%d" name (r0 + r)) x [ n; n ]
          B.[
            read "U" (flip i j);
            read "V" (flip (i +: one) j);
            write "V" (flip i (j +: one));
          ])
  in
  Program.make ~name:"two-phase"
    [ Array_info.make "U" [ n; n ]; Array_info.make "V" [ n + 1; n + 1 ] ]
    (phase "row" false 0 @ phase "col" true repeats)

let test_uniform_segments () =
  let prog = two_phase_program ~n:8 ~repeats:2 in
  let segs = Dynamic.uniform_segments prog 2 in
  (match segs with
  | [ s1; s2 ] ->
    Alcotest.(check int) "first start" 0 s1.Dynamic.first_nest;
    Alcotest.(check int) "first end" 1 s1.Dynamic.last_nest;
    Alcotest.(check int) "second start" 2 s2.Dynamic.first_nest;
    Alcotest.(check int) "second end" 3 s2.Dynamic.last_nest
  | _ -> Alcotest.fail "expected 2 segments");
  Alcotest.check_raises "bad count"
    (Invalid_argument "Dynamic.uniform_segments: bad count") (fun () ->
      ignore (Dynamic.uniform_segments prog 9))

let test_segment_program () =
  let prog = two_phase_program ~n:8 ~repeats:2 in
  let sub =
    Dynamic.segment_program prog { Dynamic.first_nest = 1; last_nest = 2 }
  in
  Alcotest.(check int) "two nests" 2 (Array.length (Program.nests sub));
  Alcotest.(check int) "all arrays kept" 2 (Array.length (Program.arrays sub))

let test_dynamic_plan_detects_phase_change () =
  let prog = two_phase_program ~n:32 ~repeats:3 in
  let segments = Dynamic.uniform_segments prog 2 in
  let plan = Dynamic.plan ~seed:1 prog ~segments in
  Alcotest.(check int) "two assignments" 2 (List.length plan.Dynamic.per_segment);
  (* phase 1 walks row-wise, phase 2 column-wise: the per-segment layouts
     must differ for both arrays *)
  (match plan.Dynamic.per_segment with
  | [ p1; p2 ] ->
    Alcotest.(check bool) "layouts change" true
      (List.exists
         (fun (name, l1) ->
           match List.assoc_opt name p2 with
           | Some l2 -> not (Layout.equal l1 l2)
           | None -> false)
         p1)
  | _ -> Alcotest.fail "expected two segments");
  Alcotest.(check bool) "changes recorded" true (plan.Dynamic.changes <> [])

let test_dynamic_beats_static_on_phased_program () =
  let prog = two_phase_program ~n:64 ~repeats:4 in
  let static = Optimizer.optimize (Optimizer.Enhanced 1) prog in
  let static_cycles = Simulate.cycles (Optimizer.simulate static) in
  let plan =
    Dynamic.plan ~seed:1 prog ~segments:(Dynamic.uniform_segments prog 2)
  in
  let dyn = Dynamic.simulate_plan prog plan in
  Alcotest.(check bool) "remaps happened" true (dyn.Dynamic.remaps > 0);
  Alcotest.(check bool) "dynamic wins on a strongly phased program" true
    (dyn.Dynamic.compute.Hierarchy.cycles < static_cycles)

let test_optimal_segments_find_phase_boundary () =
  let repeats = 3 in
  let prog = two_phase_program ~n:24 ~repeats in
  let segs = Dynamic.optimal_segments ~seed:1 prog in
  (* the DP must split exactly at the phase boundary *)
  Alcotest.(check int) "two segments" 2 (List.length segs);
  (match segs with
  | [ s1; s2 ] ->
    Alcotest.(check int) "boundary" (repeats - 1) s1.Dynamic.last_nest;
    Alcotest.(check int) "second begins" repeats s2.Dynamic.first_nest
  | _ -> ());
  (* with a prohibitive change cost, one segment wins *)
  let whole = Dynamic.optimal_segments ~seed:1 ~change_cost:1e12 prog in
  Alcotest.(check int) "single segment under huge copy cost" 1
    (List.length whole)

let test_optimal_segments_prices_infeasible () =
  (* with a 5-check budget several merged MxM segments exhaust it; the
     DP must price those as infeasible and return a valid segmentation
     built from the candidates that do solve, instead of raising
     No_solution *)
  let spec = Suite.by_name "mxm" in
  let prog = spec.Spec.sim_program in
  let segs = Dynamic.optimal_segments ~seed:1 ~max_checks:5 prog in
  (* must not raise, and must return a contiguous covering segmentation *)
  let n = Array.length (Mlo_ir.Program.nests prog) in
  let rec covering expected = function
    | [] -> expected = n
    | s :: rest ->
      s.Dynamic.first_nest = expected
      && s.Dynamic.last_nest >= s.Dynamic.first_nest
      && covering (s.Dynamic.last_nest + 1) rest
  in
  Alcotest.(check bool) "contiguous covering segmentation" true
    (covering 0 segs)

let test_optimal_segments_guard () =
  let spec = Suite.by_name "med-im04" in
  Alcotest.check_raises "too many nests"
    (Invalid_argument "Dynamic.optimal_segments: too many nests for exact DP")
    (fun () ->
      ignore (Dynamic.optimal_segments ~seed:1 spec.Spec.program))

let test_dynamic_single_segment_equals_static_shape () =
  let prog = two_phase_program ~n:16 ~repeats:2 in
  let plan =
    Dynamic.plan ~seed:1 prog ~segments:(Dynamic.uniform_segments prog 1)
  in
  let dyn = Dynamic.simulate_plan prog plan in
  Alcotest.(check int) "no remaps" 0 dyn.Dynamic.remaps;
  Alcotest.(check int) "no copy traffic" 0 dyn.Dynamic.copy_accesses

(* ------------------------------------------------------------------ *)
(* Experiments harness (scaled down)                                    *)
(* ------------------------------------------------------------------ *)

module Tables = Mlo_experiments.Tables

let test_table1_rows () =
  let rows = Tables.run_table1 () in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Tables.t1_name ^ " matches paper domain")
        r.Tables.paper_domain_size r.Tables.domain_size)
    rows

let test_improvement_math () =
  Alcotest.(check (float 1e-9)) "50%" 50.
    (Tables.improvement ~original:200 100);
  Alcotest.(check (float 1e-9)) "0%" 0. (Tables.improvement ~original:100 100)

let () =
  Alcotest.run "integration"
    [
      ( "optimizer",
        [
          Alcotest.test_case "enhanced improves matmul chain" `Quick
            test_optimizer_enhanced_improves_matmul;
          Alcotest.test_case "all schemes solve" `Quick
            test_optimizer_schemes_agree_on_satisfiability;
          Alcotest.test_case "custom config" `Quick test_optimizer_custom_config;
          Alcotest.test_case "budget exhaustion raises" `Quick
            test_optimizer_raises_on_budget;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "beats original on suite samples" `Slow
            test_pipeline_beats_original_on_suite;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "uniform segments" `Quick test_uniform_segments;
          Alcotest.test_case "segment program" `Quick test_segment_program;
          Alcotest.test_case "plan detects phase change" `Quick
            test_dynamic_plan_detects_phase_change;
          Alcotest.test_case "dynamic beats static when phased" `Slow
            test_dynamic_beats_static_on_phased_program;
          Alcotest.test_case "single segment degenerates" `Quick
            test_dynamic_single_segment_equals_static_shape;
          Alcotest.test_case "DP finds the phase boundary" `Quick
            test_optimal_segments_find_phase_boundary;
          Alcotest.test_case "DP nest-count guard" `Quick
            test_optimal_segments_guard;
          Alcotest.test_case "DP prices infeasible segments" `Quick
            test_optimal_segments_prices_infeasible;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table 1 rows" `Quick test_table1_rows;
          Alcotest.test_case "improvement math" `Quick test_improvement_math;
        ] );
    ]
