(* Tests for the benchmark suite: Table-1 invariants, generator
   guarantees, kernels and candidate palettes. *)

module Spec = Mlo_workloads.Spec
module Suite = Mlo_workloads.Suite
module Kernels = Mlo_workloads.Kernels
module Candidates = Mlo_workloads.Candidates
module Random_program = Mlo_workloads.Random_program
module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Loop_nest = Mlo_ir.Loop_nest
module Layout = Mlo_layout.Layout
module Network = Mlo_csp.Network
module Build = Mlo_netgen.Build

(* ------------------------------------------------------------------ *)
(* Table 1 invariants                                                   *)
(* ------------------------------------------------------------------ *)

let test_suite_complete () =
  let names = List.map (fun s -> s.Spec.name) (Suite.all ()) in
  Alcotest.(check (list string)) "Table 1 order"
    [ "Med-Im04"; "MxM"; "Radar"; "Shape"; "Track" ]
    names

let test_domain_sizes_match_paper () =
  List.iter
    (fun spec ->
      let b = Spec.extract spec in
      Alcotest.(check int)
        (spec.Spec.name ^ " domain size")
        spec.Spec.paper_domain_size
        (Network.total_domain_size b.Build.network))
    (Suite.all ())

let test_data_sizes_close_to_paper () =
  List.iter
    (fun spec ->
      let measured = Spec.data_kb spec in
      let target = spec.Spec.paper_data_kb in
      let ratio = measured /. target in
      Alcotest.(check bool)
        (Printf.sprintf "%s data %.2fKB within 25%% of %.2fKB" spec.Spec.name
           measured target)
        true
        (ratio > 0.75 && ratio < 1.25))
    (Suite.all ())

let test_networks_satisfiable () =
  List.iter
    (fun spec ->
      let b = Spec.extract spec in
      match
        Mlo_csp.Solver.solve ~config:(Mlo_csp.Schemes.enhanced ())
          b.Build.network
      with
      | { Mlo_csp.Solver.outcome = Mlo_csp.Solver.Solution a; _ } ->
        Alcotest.(check bool)
          (spec.Spec.name ^ " verifies")
          true
          (Network.verify b.Build.network a)
      | _ -> Alcotest.fail (spec.Spec.name ^ ": expected a solution"))
    (Suite.all ())

let test_by_name () =
  Alcotest.(check string) "case-insensitive" "MxM" (Suite.by_name "MXM").Spec.name;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Suite.by_name "nope"))

let test_sim_programs_structurally_equal () =
  List.iter
    (fun spec ->
      Alcotest.(check int)
        (spec.Spec.name ^ " same nest count")
        (Array.length (Program.nests spec.Spec.program))
        (Array.length (Program.nests spec.Spec.sim_program));
      Alcotest.(check int)
        (spec.Spec.name ^ " same array count")
        (Array.length (Program.arrays spec.Spec.program))
        (Array.length (Program.arrays spec.Spec.sim_program)))
    (Suite.all ())

(* ------------------------------------------------------------------ *)
(* Kernels                                                              *)
(* ------------------------------------------------------------------ *)

let test_kernels_matmul () =
  let nest, arrays = Kernels.matmul ~name:"mm" ~n:4 ~c:"C" ~a:"A" ~b:"B" in
  Alcotest.(check int) "depth 3" 3 (Loop_nest.depth nest);
  Alcotest.(check int) "trip" 64 (Loop_nest.trip_count nest);
  Alcotest.(check int) "3 arrays" 3 (List.length arrays);
  Alcotest.(check (list string)) "touched" [ "C"; "A"; "B" ]
    (Loop_nest.arrays_touched nest)

let test_kernels_declare_merges () =
  let _, r1 = Kernels.matmul ~name:"m1" ~n:4 ~c:"C" ~a:"A" ~b:"B" in
  let _, r2 = Kernels.matmul ~name:"m2" ~n:4 ~c:"D" ~a:"C" ~b:"B" in
  let arrays = Kernels.declare (r1 @ r2) in
  Alcotest.(check int) "four distinct arrays" 4 (List.length arrays);
  Alcotest.(check (list string)) "first-occurrence order" [ "C"; "A"; "B"; "D" ]
    (List.map Array_info.name arrays)

let test_kernels_declare_conflict () =
  Alcotest.check_raises "conflicting extents"
    (Invalid_argument "Kernels.declare: conflicting extents for A") (fun () ->
      ignore (Kernels.declare [ ("A", [ 4; 4 ]); ("A", [ 8; 8 ]) ]))

let test_kernels_in_bounds () =
  (* every kernel's accesses stay inside the declared extents *)
  let check_kernel (nest, arrays) =
    let decls = Kernels.declare arrays in
    let extents name =
      Array_info.extents
        (List.find (fun a -> Array_info.name a = name) decls)
    in
    Loop_nest.iter nest (fun iv ->
        Array.iter
          (fun acc ->
            let e = extents (Mlo_ir.Access.array_name acc) in
            let el = Mlo_ir.Access.element_at acc iv in
            Array.iteri
              (fun d x ->
                if x < 0 || x >= e.(d) then
                  Alcotest.failf "%s out of bounds at dim %d: %d"
                    (Mlo_ir.Access.array_name acc) d x)
              el)
          (Loop_nest.accesses nest))
  in
  check_kernel (Kernels.matmul ~name:"mm" ~n:5 ~c:"C" ~a:"A" ~b:"B");
  check_kernel (Kernels.transpose_copy ~name:"t" ~n:5 ~dst:"D" ~src:"S");
  check_kernel (Kernels.stencil5 ~name:"s" ~n:5 ~dst:"D" ~src:"S");
  check_kernel (Kernels.diagonal_sweep ~name:"d" ~n:5 ~q1:"Q1" ~q2:"Q2");
  check_kernel (Kernels.fill ~name:"f" ~n:5 ~dst:"D");
  check_kernel (Kernels.row_scale ~name:"rs" ~n:5 ~dst:"D");
  check_kernel (Kernels.row_reduce ~name:"rr" ~n:5 ~dst:"V" ~src:"S");
  check_kernel (Kernels.col_reduce ~name:"cr" ~n:5 ~dst:"V" ~src:"S")

(* ------------------------------------------------------------------ *)
(* Candidates                                                           *)
(* ------------------------------------------------------------------ *)

let test_palettes_sizes () =
  Alcotest.(check int) "p6" 6 (List.length Candidates.palette6);
  Alcotest.(check int) "p8" 8 (List.length Candidates.palette8);
  Alcotest.(check int) "p10" 10 (List.length Candidates.palette10);
  Alcotest.(check int) "p12" 12 (List.length Candidates.palette12);
  Alcotest.(check int) "palette n" 41 (List.length (Candidates.palette 41))

let test_palettes_distinct () =
  let p = Candidates.palette 41 in
  let dedup =
    List.fold_left
      (fun acc l -> if List.exists (Layout.equal l) acc then acc else l :: acc)
      [] p
  in
  Alcotest.(check int) "all distinct" 41 (List.length dedup)

let test_palette_prefix_consistency () =
  (* palette n is a prefix of palette (n+1) *)
  let p8 = Candidates.palette 8 and p9 = Candidates.palette 9 in
  List.iteri
    (fun i l ->
      Alcotest.(check bool) "prefix" true (Layout.equal l (List.nth p9 i)))
    p8

let test_palette_bounds () =
  Alcotest.check_raises "zero" (Invalid_argument "Candidates.palette: size out of range")
    (fun () -> ignore (Candidates.palette 0));
  Alcotest.check_raises "huge" (Invalid_argument "Candidates.palette: size out of range")
    (fun () -> ignore (Candidates.palette 1000))

let test_by_position () =
  let spec = Suite.by_name "mxm" in
  let f = spec.Spec.candidates in
  (* first three arrays (T1, A, B) get palette6; D and C palette8 *)
  Alcotest.(check int) "T1" 6 (List.length (f "T1"));
  Alcotest.(check int) "A" 6 (List.length (f "A"));
  Alcotest.(check int) "D" 8 (List.length (f "D"));
  Alcotest.(check int) "C" 8 (List.length (f "C"))

(* ------------------------------------------------------------------ *)
(* Generator                                                            *)
(* ------------------------------------------------------------------ *)

let test_generator_within_bounds () =
  let params =
    { Random_program.default with Random_program.seed = 5; extent = 9 }
  in
  let prog = Random_program.generate params in
  Array.iter
    (fun nest ->
      Loop_nest.iter nest (fun iv ->
          Array.iter
            (fun acc ->
              let info = Program.find_array prog (Mlo_ir.Access.array_name acc) in
              let el = Mlo_ir.Access.element_at acc iv in
              Array.iteri
                (fun d x ->
                  if x < 0 || x >= Array_info.extent info d then
                    Alcotest.failf "%s out of bounds" (Array_info.name info))
                el)
            (Loop_nest.accesses nest)))
    (Program.nests prog)

let test_generator_intended_layouts () =
  let params = { Random_program.default with Random_program.seed = 3 } in
  let intended = Random_program.intended_layouts params in
  Alcotest.(check int) "one per array" params.Random_program.num_arrays
    (List.length intended);
  List.iter
    (fun (_, l) -> Alcotest.(check int) "rank 2" 2 (Layout.rank l))
    intended

(* ------------------------------------------------------------------ *)
(* Scale family                                                         *)
(* ------------------------------------------------------------------ *)

let test_scale_structure () =
  let spec = Suite.scale 100 in
  Alcotest.(check string) "name" "scale-100" spec.Spec.name;
  Alcotest.(check int) "arrays" 100
    (Array.length (Program.arrays spec.Spec.program));
  Alcotest.(check bool)
    "at least 2n/5 nests" true
    (Array.length (Program.nests spec.Spec.program) >= 40);
  (* pooled references (group_size 8) must split the network into at
     least num_arrays / group_size independent components *)
  let build = Spec.extract spec in
  Alcotest.(check bool)
    "component-rich" true
    (Array.length (Build.components build) >= 100 / 8)

let test_scale_solvable () =
  let spec = Suite.scale 100 in
  let build = Spec.extract spec in
  match
    Mlo_csp.Solver.solve_components
      ~config:(Mlo_csp.Schemes.enhanced ())
      build.Build.network
  with
  | { Mlo_csp.Solver.outcome = Mlo_csp.Solver.Solution a; _ } ->
    Alcotest.(check bool)
      "solution verifies" true
      (Network.verify build.Build.network a)
  | _ -> Alcotest.fail "scale-100: expected a solution"

let test_scale_deterministic () =
  let d1 = Network.total_domain_size (Spec.extract (Suite.scale 10)).Build.network in
  let d2 = Network.total_domain_size (Spec.extract (Suite.scale 10)).Build.network in
  Alcotest.(check int) "same domain size" d1 d2

let test_scale_by_name () =
  Alcotest.(check string)
    "scale-25 parses" "scale-25" (Suite.by_name "scale-25").Spec.name;
  Alcotest.check_raises "scale-0 rejected" Not_found (fun () ->
      ignore (Suite.by_name "scale-0"));
  Alcotest.check_raises "scale-x rejected" Not_found (fun () ->
      ignore (Suite.by_name "scale-x"))

let () =
  Alcotest.run "workloads"
    [
      ( "table1",
        [
          Alcotest.test_case "suite complete" `Quick test_suite_complete;
          Alcotest.test_case "domain sizes exact" `Quick
            test_domain_sizes_match_paper;
          Alcotest.test_case "data sizes close" `Quick test_data_sizes_close_to_paper;
          Alcotest.test_case "networks satisfiable" `Quick test_networks_satisfiable;
          Alcotest.test_case "lookup by name" `Quick test_by_name;
          Alcotest.test_case "sim programs match" `Quick
            test_sim_programs_structurally_equal;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "matmul" `Quick test_kernels_matmul;
          Alcotest.test_case "declare merges" `Quick test_kernels_declare_merges;
          Alcotest.test_case "declare conflicts" `Quick test_kernels_declare_conflict;
          Alcotest.test_case "accesses in bounds" `Quick test_kernels_in_bounds;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "palette sizes" `Quick test_palettes_sizes;
          Alcotest.test_case "palette distinct" `Quick test_palettes_distinct;
          Alcotest.test_case "palette prefix" `Quick test_palette_prefix_consistency;
          Alcotest.test_case "palette bounds" `Quick test_palette_bounds;
          Alcotest.test_case "by_position" `Quick test_by_position;
        ] );
      ( "generator",
        [
          Alcotest.test_case "accesses within bounds" `Quick
            test_generator_within_bounds;
          Alcotest.test_case "intended layouts" `Quick test_generator_intended_layouts;
        ] );
      ( "scale",
        [
          Alcotest.test_case "structure" `Quick test_scale_structure;
          Alcotest.test_case "solvable" `Quick test_scale_solvable;
          Alcotest.test_case "deterministic" `Quick test_scale_deterministic;
          Alcotest.test_case "by_name" `Quick test_scale_by_name;
        ] );
    ]
