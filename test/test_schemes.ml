(* Cross-scheme agreement.

   The paper's schemes differ only in search order and backward policy,
   so on the same network they must agree on the one thing that matters:
   whether a consistent layout assignment exists.  Every reported
   solution is re-verified by a deliberately dumb checker that walks the
   constraint relations directly — independent of the compiled view, the
   bitset machinery and the solver's own bookkeeping. *)

module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Brute = Mlo_csp.Brute
module Rng = Mlo_csp.Rng

(* Same generator family as test_compiled: small random networks of 2-6
   variables, domains of 1-3 values, ~60% pair density, ~55% allowed
   pairs — dense enough that roughly half the instances are
   unsatisfiable. *)
let random_network seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains =
    Array.init n (fun _ -> Array.init (1 + Rng.int rng 3) Fun.id)
  in
  let net = Network.create ~names ~domains in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.int rng 100 < 60 then begin
        let pairs = ref [] in
        for vi = 0 to Array.length domains.(i) - 1 do
          for vj = 0 to Array.length domains.(j) - 1 do
            if Rng.int rng 100 < 55 then pairs := (vi, vj) :: !pairs
          done
        done;
        Network.add_allowed net i j !pairs
      end
    done
  done;
  net

(* The dumb checker: a complete assignment is consistent iff every
   constrained pair allows its two values.  Uses only the network's
   relation queries, nothing from Compiled. *)
let dumb_verify net a =
  let n = Network.num_vars net in
  let in_range i v = v >= 0 && v < Network.domain_size net i in
  Array.length a = n
  && List.for_all (fun i -> in_range i a.(i)) (List.init n Fun.id)
  && List.for_all
       (fun (i, j) -> Network.allowed net i a.(i) j a.(j))
       (Network.constraint_pairs net)

(* The three paper schemes, each with its own seed so agreement cannot
   be an artifact of shared random decisions. *)
let schemes_under_test seed =
  [
    ("base", Schemes.base ~seed ());
    ("enhanced", Schemes.enhanced ~seed:(seed + 101) ());
    ("enhanced-ac", Schemes.enhanced_with_ac ~seed:(seed + 211) ());
  ]

let prop_schemes_agree =
  QCheck.Test.make
    ~name:"base / enhanced / enhanced-ac agree on satisfiability" ~count:300
    QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let expected = Brute.is_satisfiable net in
      List.for_all
        (fun (label, config) ->
          match (Solver.solve ~config net).Solver.outcome with
          | Solver.Solution a ->
            if not expected then
              QCheck.Test.fail_reportf
                "%s found a solution on an unsatisfiable network" label;
            if not (dumb_verify net a) then
              QCheck.Test.fail_reportf
                "%s returned an inconsistent assignment" label;
            true
          | Solver.Unsatisfiable ->
            if expected then
              QCheck.Test.fail_reportf
                "%s reported unsatisfiable on a satisfiable network" label;
            true
          | Solver.Aborted ->
            QCheck.Test.fail_reportf "%s aborted without a check budget" label)
        (schemes_under_test seed))

(* Seed independence of the verdict: the randomized schemes may visit
   different nodes under different seeds but must never change their
   answer. *)
let prop_verdict_seed_independent =
  QCheck.Test.make ~name:"scheme verdicts do not depend on the seed"
    ~count:150 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let verdict config =
        match (Solver.solve ~config net).Solver.outcome with
        | Solver.Solution _ -> true
        | Solver.Unsatisfiable -> false
        | Solver.Aborted -> QCheck.Test.fail_report "aborted without budget"
      in
      let base1 = verdict (Schemes.base ~seed:1 ())
      and base2 = verdict (Schemes.base ~seed:(2 * seed + 7) ())
      and enh1 = verdict (Schemes.enhanced ~seed:3 ())
      and enh2 = verdict (Schemes.enhanced ~seed:(5 * seed + 13) ()) in
      base1 = base2 && enh1 = enh2 && base1 = enh1)

(* On the real workload networks (not just the random family) the three
   schemes must all find a consistent assignment. *)
let test_workload_schemes () =
  List.iter
    (fun name ->
      let spec = Mlo_workloads.Suite.by_name name in
      let build = Mlo_workloads.Spec.extract spec in
      let net = build.Mlo_netgen.Build.network in
      List.iter
        (fun (label, config) ->
          match (Solver.solve ~config net).Solver.outcome with
          | Solver.Solution a ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s solution verifies" name label)
              true (dumb_verify net a)
          | Solver.Unsatisfiable | Solver.Aborted ->
            Alcotest.failf "%s/%s found no solution" name label)
        (schemes_under_test 42))
    [ "med-im04"; "mxm"; "radar"; "shape"; "track" ]

let () =
  Alcotest.run "schemes"
    [
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest prop_schemes_agree;
          QCheck_alcotest.to_alcotest prop_verdict_seed_independent;
          Alcotest.test_case "workload networks" `Quick test_workload_schemes;
        ] );
    ]
