(* Static locality analyzer vs the exact simulator, and the dominance
   pruning built on top of it. *)

module Locality = Mlo_analysis.Locality
module Costcheck = Mlo_analysis.Costcheck
module Diagnostic = Mlo_analysis.Diagnostic
module Simulate = Mlo_cachesim.Simulate
module Hierarchy = Mlo_cachesim.Hierarchy
module Cache = Mlo_cachesim.Cache
module Address_map = Mlo_cachesim.Address_map
module Suite = Mlo_workloads.Suite
module Spec = Mlo_workloads.Spec
module Random_program = Mlo_workloads.Random_program
module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module B = Mlo_ir.Builder
module Layout = Mlo_layout.Layout
module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Build = Mlo_netgen.Build
module Prune = Mlo_netgen.Prune
module Select = Mlo_netgen.Select

let none _ = None

(* ------------------------------------------------------------------ *)
(* Accuracy on the benchmark suite                                      *)
(* ------------------------------------------------------------------ *)

(* Acceptance bound: the closed-form estimate must land within 15% of
   the simulated L1 misses on every suite benchmark at sim sizes. *)
let test_suite_accuracy () =
  List.iter
    (fun spec ->
      let sim_prog = spec.Spec.sim_program in
      let r = Locality.analyze sim_prog ~layouts:none in
      let sim = Simulate.run sim_prog ~layouts:none in
      let actual = float_of_int sim.Simulate.counters.Hierarchy.l1_misses in
      let err = Float.abs (r.Locality.r_misses -. actual) /. actual in
      Alcotest.(check bool)
        (Printf.sprintf "%s within 15%% (est %.0f, sim %.0f, err %.3f)"
           spec.Spec.name r.Locality.r_misses actual err)
        true (err <= 0.15))
    (Suite.all ())

(* ------------------------------------------------------------------ *)
(* Exactness on a fully-associative no-capacity cache                   *)
(* ------------------------------------------------------------------ *)

(* Single-nest random programs with small affine accesses.  On a
   fully-associative cache whose capacity covers the footprint every
   reuse is realized, so the estimate degenerates to the distinct-line
   count — which must match the simulator's cold misses to the line
   whenever the analyzer claims exactness. *)
let gen_exact_case seed =
  let st = Random.State.make [| 0x10ca11; seed |] in
  let depth = 2 + Random.State.int st 2 in
  let trips = Array.init depth (fun _ -> 2 + Random.State.int st 5) in
  let var_names = List.init depth (fun l -> Printf.sprintf "i%d" l) in
  let x = B.ctx var_names in
  let num_arrays = 1 + Random.State.int st 3 in
  let arrays = ref [] and accesses = ref [] in
  for a = 0 to num_arrays - 1 do
    let name = Printf.sprintf "A%d" a in
    let rank = 2 in
    let extents = Array.make rank 1 in
    (* Separable accesses — at most one loop variable per dimension, the
       shape the closed forms count exactly.  One coefficient matrix per
       array; later accesses usually reuse it with shifted offsets (same
       delta vector -> one exactly-counted group), occasionally diverge
       (overlapping groups -> the analyzer must drop its exactness
       claim, also exercised). *)
    let pick_coeffs () =
      Array.init rank (fun _ ->
          let row = Array.make depth 0 in
          let v = Random.State.int st depth in
          row.(v) <- Random.State.int st 3;
          row)
    in
    let base_coeffs = pick_coeffs () in
    let n_acc = 1 + Random.State.int st 2 in
    for acc = 0 to n_acc - 1 do
      let fresh = acc > 0 && Random.State.int st 10 = 0 in
      let dims =
        List.init rank (fun d ->
            let coeffs = if fresh then (pick_coeffs ()).(d) else base_coeffs.(d) in
            let offset = Random.State.int st 3 in
            let expr =
              Array.to_list coeffs
              |> List.mapi (fun l c -> B.(c *: var x (List.nth var_names l)))
              |> List.fold_left B.( +: ) (B.const x offset)
            in
            let max_val =
              offset
              + (Array.to_list coeffs
                |> List.mapi (fun l c -> c * (trips.(l) - 1))
                |> List.fold_left ( + ) 0)
            in
            extents.(d) <- max extents.(d) (max_val + 1);
            expr)
      in
      accesses := B.read name dims :: !accesses
    done;
    arrays := Array_info.make name (Array.to_list extents) :: !arrays
  done;
  let nest = B.nest "n0" x (Array.to_list trips) (List.rev !accesses) in
  let prog =
    Program.make ~name:(Printf.sprintf "exact%d" seed) (List.rev !arrays)
      [ nest ]
  in
  let line = [| 16; 32; 64 |].(Random.State.int st 3) in
  let footprint =
    Address_map.footprint_bytes (Address_map.build prog ~layouts:none)
  in
  let size = ref (max line 64) in
  while !size < footprint do
    size := 2 * !size
  done;
  let geo = Cache.geometry ~size_bytes:!size ~assoc:(!size / line) ~line_bytes:line in
  let config =
    {
      Hierarchy.l1 = geo;
      l2 =
        Cache.geometry ~size_bytes:(2 * !size)
          ~assoc:(2 * !size / line)
          ~line_bytes:line;
      l1_latency = 1;
      l2_latency = 6;
      memory_latency = 70;
      compute_cycles_per_access = 1;
    }
  in
  (prog, geo, config)

let check_exact_case seed =
  let prog, geo, config = gen_exact_case seed in
  let r = Locality.analyze ~geometry:geo prog ~layouts:none in
  let sim =
    float_of_int
      (Simulate.run ~config prog ~layouts:none).Simulate.counters
        .Hierarchy.l1_misses
  in
  let exact_holds = (not r.Locality.r_exact) || r.Locality.r_misses = sim in
  (r.Locality.r_exact, exact_holds)

let prop_fully_assoc_exact =
  QCheck.Test.make
    ~name:"exact-flagged estimates equal cold misses on a fully-assoc cache"
    ~count:150 QCheck.small_nat (fun seed -> snd (check_exact_case seed))

(* The exactness qualifier must not be vacuous: the family is built so
   the analyzer commits to an exact count on the large majority of it. *)
let test_exactness_frequency () =
  let exact = ref 0 and total = 200 in
  for seed = 0 to total - 1 do
    let was_exact, holds = check_exact_case seed in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d exact estimate equals simulation" seed)
      true holds;
    if was_exact then incr exact
  done;
  Alcotest.(check bool)
    (Printf.sprintf "exact on most of the family (%d/%d)" !exact total)
    true
    (!exact * 5 >= total * 3)

(* ------------------------------------------------------------------ *)
(* Costcheck                                                            *)
(* ------------------------------------------------------------------ *)

let suite_targets () =
  List.map
    (fun spec ->
      {
        Costcheck.ct_name = spec.Spec.name;
        ct_program = spec.Spec.sim_program;
        ct_layouts = none;
      })
    (Suite.all ())

let test_costcheck_suite_clean () =
  let r = Costcheck.run (suite_targets ()) in
  Alcotest.(check int) "five entries" 5 (List.length r.Costcheck.cr_entries);
  Alcotest.(check int)
    "no divergence diagnostics at the default threshold" 0
    (List.length r.Costcheck.cr_diagnostics);
  Alcotest.(check int) "exit code 0" 0
    (Diagnostic.exit_code r.Costcheck.cr_diagnostics)

let test_costcheck_divergence_contract () =
  (* An impossible threshold turns every entry into an error-severity
     estimate-divergence diagnostic and trips the exit-1 contract. *)
  let r = Costcheck.run ~threshold:(-1.) (suite_targets ()) in
  Alcotest.(check int) "every entry diverges" 5
    (List.length r.Costcheck.cr_diagnostics);
  List.iter
    (fun d ->
      Alcotest.(check string) "code" "estimate-divergence" d.Diagnostic.code;
      Alcotest.(check bool) "severity" true
        (d.Diagnostic.severity = Diagnostic.Error))
    r.Costcheck.cr_diagnostics;
  Alcotest.(check int) "exit code 1" 1
    (Diagnostic.exit_code r.Costcheck.cr_diagnostics)

(* ------------------------------------------------------------------ *)
(* Dominance pruning                                                    *)
(* ------------------------------------------------------------------ *)

let solve_enhanced net =
  let config = Schemes.enhanced ~seed:1 () in
  let r = Solver.solve_components ~config net in
  match r.Solver.outcome with
  | Solver.Solution a -> Some a
  | _ -> None

(* Map a layout choice per array back to value indices of a network. *)
let assignment_of_layouts net layouts =
  Array.init (Network.num_vars net) (fun i ->
      let want = List.assoc (Network.name net i) layouts in
      let dom = Network.domain net i in
      let idx = ref (-1) in
      Array.iteri
        (fun v l -> if !idx < 0 && Layout.equal l want then idx := v)
        dom;
      !idx)

let simulated_cycles spec layouts =
  let lookup n = List.assoc_opt n layouts in
  let restructured = Select.restructure spec.Spec.sim_program lookup in
  (Simulate.run restructured ~layouts:lookup).Simulate.counters
    .Hierarchy.cycles

(* The acceptance triple on the five benchmarks: pruning removes values,
   never changes satisfiability, the pruned network's solution is a
   solution of the original network, and the solution the solver then
   finds is never costlier than the unpruned one. *)
let test_prune_benchmarks () =
  let total_pruned = ref 0 in
  List.iter
    (fun spec ->
      let b = Spec.extract spec in
      let b', info = Prune.apply b in
      total_pruned := !total_pruned + Prune.total info;
      Alcotest.(check int)
        (spec.Spec.name ^ " info total consistent")
        (Prune.total info)
        (info.Prune.before - info.Prune.after);
      match (solve_enhanced b.Build.network, solve_enhanced b'.Build.network) with
      | Some _, Some a' ->
        let layouts' = Build.assignment_layouts b' a' in
        Alcotest.(check bool)
          (spec.Spec.name ^ " pruned solution solves the original network")
          true
          (Network.verify b.Build.network
             (assignment_of_layouts b.Build.network layouts'));
        let layouts = Build.assignment_layouts b (Option.get (solve_enhanced b.Build.network)) in
        let c = simulated_cycles spec layouts
        and c' = simulated_cycles spec layouts' in
        Alcotest.(check bool)
          (Printf.sprintf "%s pruned choice is never costlier (%d vs %d)"
             spec.Spec.name c' c)
          true (c' <= c)
      | None, None -> ()
      | _ ->
        Alcotest.fail (spec.Spec.name ^ ": pruning changed satisfiability"))
    (Suite.all ());
  (* the headline acceptance: at least one dominated layout disappears *)
  Alcotest.(check bool)
    (Printf.sprintf "pruning removes values somewhere (total %d)" !total_pruned)
    true (!total_pruned >= 1)

let test_prune_mxm_drops_padding () =
  let b = Spec.extract (Suite.by_name "mxm") in
  let _, info = Prune.apply b in
  Alcotest.(check bool)
    (Printf.sprintf "MxM loses >= 1 dominated value (lost %d)"
       (Prune.total info))
    true
    (Prune.total info >= 1)

let prop_prune_preserves_satisfiability =
  QCheck.Test.make
    ~name:"pruning preserves satisfiability on generated programs" ~count:15
    QCheck.small_nat (fun seed ->
      let params =
        {
          Random_program.default with
          Random_program.seed;
          num_arrays = 4;
          num_nests = 4;
          extent = 12;
          sim_extent = 8;
        }
      in
      let prog = Random_program.generate params in
      let b = Build.build prog in
      let b', _ = Prune.apply b in
      (* restrict_domains refuses to empty a domain, so reaching the
         solver at all already certifies non-empty domains *)
      let sat n = solve_enhanced n <> None in
      sat b.Build.network = sat b'.Build.network)

(* ------------------------------------------------------------------ *)
(* Profiler memoization                                                 *)
(* ------------------------------------------------------------------ *)

(* The profiler caches per-(array, layout) profiles under the program's
   physical identity.  The memo must be invisible: repeated queries
   (same or fresh profiler instance over the same program object) agree,
   a physically distinct but equal program yields the same numbers (the
   cold path is deterministic), and the returned arrays are fresh — a
   caller scribbling on one must not poison later answers. *)
let test_profiler_memo_invisible () =
  let spec = Suite.by_name "mxm" in
  let prog = spec.Spec.program in
  let p1 = Locality.profiler prog in
  let col = Layout.col_major 2 in
  let a = p1 ~array_name:"A" ~layout:col in
  let a_copy = Array.copy a in
  (* scribble on the returned array; the cache must not see it *)
  Array.fill a 0 (Array.length a) (-1.0);
  let b = p1 ~array_name:"A" ~layout:col in
  Alcotest.(check bool) "cached query unaffected by caller mutation" true
    (b = a_copy);
  let p2 = Locality.profiler prog in
  Alcotest.(check bool) "fresh profiler instance, same program: same answer"
    true
    (p2 ~array_name:"A" ~layout:col = a_copy);
  (* a structurally equal but physically distinct program recomputes
     from cold and must land on the same numbers *)
  let prog' = (Suite.by_name "mxm").Spec.program in
  Alcotest.(check bool) "physically distinct equal program: same answer" true
    (Locality.profiler prog' ~array_name:"A" ~layout:col = a_copy);
  (* untouched/unknown arrays profile to all zeros *)
  let z = p1 ~array_name:"no-such-array" ~layout:col in
  Alcotest.(check bool) "unknown array is all zeros" true
    (Array.for_all (fun x -> x = 0.0) z)

let test_profiler_distinct_layouts_distinct_entries () =
  (* A single loop walking one column of a 64x64 array.  Depth 1 means
     exactly one loop permutation, so min-over-perms cannot mask the
     layout: col-major streams the column (few misses) while row-major
     strides a full row apart (a miss per iteration).  The profiles must
     separate, proving the cache keys on the layout and not just the
     array name. *)
  let x = B.ctx [ "i" ] in
  let nest =
    B.nest "col_walk" x [ 64 ] [ B.read "A" [ B.var x "i"; B.const x 0 ] ]
  in
  let prog =
    Program.make ~name:"colwalk" [ Array_info.make "A" [ 64; 64 ] ] [ nest ]
  in
  let p = Locality.profiler prog in
  let row = p ~array_name:"A" ~layout:(Layout.row_major 2)
  and col = p ~array_name:"A" ~layout:(Layout.col_major 2) in
  Alcotest.(check bool) "row and col profiles differ" true (row <> col)

let () =
  Alcotest.run "locality"
    [
      ( "accuracy",
        [ Alcotest.test_case "suite within 15%" `Slow test_suite_accuracy ] );
      ( "exactness",
        [
          QCheck_alcotest.to_alcotest prop_fully_assoc_exact;
          Alcotest.test_case "exact on most of the family" `Slow
            test_exactness_frequency;
        ] );
      ( "costcheck",
        [
          Alcotest.test_case "suite passes the default threshold" `Slow
            test_costcheck_suite_clean;
          Alcotest.test_case "divergence is an error diagnostic" `Slow
            test_costcheck_divergence_contract;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "benchmarks: sound and never costlier" `Slow
            test_prune_benchmarks;
          Alcotest.test_case "mxm drops a dominated value" `Quick
            test_prune_mxm_drops_padding;
          QCheck_alcotest.to_alcotest prop_prune_preserves_satisfiability;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "memoization is invisible" `Quick
            test_profiler_memo_invisible;
          Alcotest.test_case "distinct layouts get distinct entries" `Quick
            test_profiler_distinct_layouts_distinct_entries;
        ] );
    ]
