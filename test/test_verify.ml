(* Certificate checking: machine-generated proofs verify, tampered
   proofs are rejected.

   The checker's contract has two sides.  Completeness: every proof the
   solver stack emits — cdl and bnb event streams over random networks,
   plus the real workloads through the Optimizer plumbing — must be
   accepted.  Soundness: a proof damaged in any way that changes what it
   claims (flipped verdict, corrupted cost, weakened bound, missing
   incumbent, truncated file, wrong network digest) must be rejected
   with an [Error], never a crash.  The tampering cases are chosen so
   rejection is guaranteed, not merely likely: each one either breaks a
   checkable invariant outright or asserts something the brute-forced
   solution set contradicts. *)

module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Cdl = Mlo_csp.Cdl
module Bnb = Mlo_csp.Bnb
module Brute = Mlo_csp.Brute
module Rng = Mlo_csp.Rng
module Proof = Mlo_verify.Proof
module Checker = Mlo_verify.Checker
module Spec = Mlo_workloads.Spec
module Suite = Mlo_workloads.Suite
module Build = Mlo_netgen.Build
module Select = Mlo_netgen.Select
module Optimizer = Mlo_core.Optimizer
module Explain = Mlo_core.Explain
module Netcheck = Mlo_analysis.Netcheck
module Simulate = Mlo_cachesim.Simulate
module Hierarchy = Mlo_cachesim.Hierarchy

(* Same generator family as test_cdl/test_bnb: small random networks of
   2-6 variables, domains of 1-3 values, ~60% pair density, ~55% allowed
   pairs — roughly half the instances unsatisfiable. *)
let random_network seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains =
    Array.init n (fun _ -> Array.init (1 + Rng.int rng 3) Fun.id)
  in
  let net = Network.create ~names ~domains in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.int rng 100 < 60 then begin
        let pairs = ref [] in
        for vi = 0 to Array.length domains.(i) - 1 do
          for vj = 0 to Array.length domains.(j) - 1 do
            if Rng.int rng 100 < 55 then pairs := (vi, vj) :: !pairs
          done
        done;
        Network.add_allowed net i j !pairs
      end
    done
  done;
  net

let random_costs seed net =
  let rng = Rng.create (seed + 9001) in
  Array.init (Network.num_vars net) (fun i ->
      Array.init (Network.domain_size net i) (fun _ ->
          float_of_int (Rng.int rng 10)))

(* ------------------------------------------------------------------ *)
(* Proof assembly over raw networks (mirrors the Optimizer's)           *)
(* ------------------------------------------------------------------ *)

let header_of ~scheme ?objective net =
  let n = Network.num_vars net in
  {
    Proof.workload = "random";
    scheme;
    objective;
    pruned = false;
    slack = 0.0;
    names = Array.init n (Network.name net);
    domain_sizes = Array.init n (Network.domain_size net);
    digest = Proof.digest net;
  }

let make_recorder ?costs () =
  let comp_data = Hashtbl.create 4 in
  let on_event ~comp ~vars ev =
    let _, steps_r, outcome_r =
      match Hashtbl.find_opt comp_data comp with
      | Some s -> s
      | None ->
        let s = (vars, ref [], ref None) in
        Hashtbl.add comp_data comp s;
        s
    in
    match ev with
    | Solver.Learned { dead; lits } ->
      steps_r :=
        Proof.Ng
          {
            comp;
            dead = vars.(dead);
            lits = Array.map (fun (x, v) -> (vars.(x), v)) lits;
          }
        :: !steps_r
    | Solver.Incumbent { assignment } ->
      let costs = Option.get costs in
      let lits = Array.mapi (fun x v -> (vars.(x), v)) assignment in
      let cost =
        Array.fold_left (fun acc (x, v) -> acc +. costs.(x).(v)) 0.0 lits
      in
      steps_r := Proof.Inc { comp; lits; cost } :: !steps_r
    | Solver.Finished o -> outcome_r := Some o
  in
  (comp_data, on_event)

let steps_of ~unsat_only comp_data =
  Hashtbl.fold (fun k _ acc -> k :: acc) comp_data []
  |> List.sort compare
  |> List.concat_map (fun k ->
         let vars, steps_r, outcome_r = Hashtbl.find comp_data k in
         let keep =
           (not unsat_only)
           ||
           match !outcome_r with
           | Some Solver.Unsatisfiable -> true
           | _ -> false
         in
         if not keep then []
         else
           let steps = List.rev !steps_r in
           let steps =
             if unsat_only then
               List.filter (function Proof.Inc _ -> false | _ -> true) steps
             else steps
           in
           Proof.Comp { id = k; vars = Array.copy vars } :: steps)

let is_unsat = function Solver.Unsatisfiable -> true | _ -> false

let certify_cdl ?(config = { Cdl.default_config with Cdl.restarts = 4 }) net
    =
  let comp_data, on_event = make_recorder () in
  let r = Cdl.solve_components ~config ~on_event net in
  let verdict =
    match r.Solver.outcome with
    | Solver.Solution a -> Proof.Sat a
    | Solver.Unsatisfiable -> Proof.Unsat
    | Solver.Aborted -> Proof.Aborted
  in
  ( {
      Proof.header = header_of ~scheme:"cdl" net;
      steps = steps_of ~unsat_only:(is_unsat r.Solver.outcome) comp_data;
      verdict = Some verdict;
    },
    r.Solver.outcome )

let certify_bnb ?(config = Bnb.default_config) ~costs net =
  let comp_data, on_event = make_recorder ~costs () in
  let idx name = int_of_string (String.sub name 1 (String.length name - 1)) in
  let cost name v = costs.(idx name).(v) in
  let r = Bnb.solve_components ~config ~on_event ~cost net in
  let verdict =
    match r.Solver.outcome with
    | Solver.Solution a ->
      let total = ref 0.0 in
      Array.iteri (fun i v -> total := !total +. costs.(i).(v)) a;
      Proof.Optimal { cost = !total; assignment = a }
    | Solver.Unsatisfiable -> Proof.Unsat
    | Solver.Aborted -> Proof.Aborted
  in
  ( {
      Proof.header = header_of ~scheme:"bnb" ~objective:"synthetic" net;
      steps = steps_of ~unsat_only:(is_unsat r.Solver.outcome) comp_data;
      verdict = Some verdict;
    },
    r.Solver.outcome )

let check_ok ?costs what net proof =
  match Checker.check ?costs net proof with
  | Ok () -> ()
  | Error msg -> QCheck.Test.fail_reportf "%s: rejected: %s" what msg

let check_rejected ?costs what net proof =
  match Checker.check ?costs net proof with
  | Error _ -> ()
  | Ok () -> QCheck.Test.fail_reportf "%s: accepted a damaged proof" what

(* ------------------------------------------------------------------ *)
(* Completeness: machine-generated certificates verify                  *)
(* ------------------------------------------------------------------ *)

let prop_cdl_certificates =
  QCheck.Test.make ~name:"cdl certificates verify (sat and unsat)"
    ~count:300 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let proof, _ = certify_cdl net in
      check_ok "cdl" net proof;
      (* and the NDJSON round trip preserves acceptance *)
      match Proof.of_lines (Proof.to_lines proof) with
      | Error msg -> QCheck.Test.fail_reportf "round trip failed: %s" msg
      | Ok proof' ->
        check_ok "cdl round-tripped" net proof';
        true)

(* The forgetful/restartful configurations emit the same nogood stream
   through on_learn but retain fewer: the log must still replay. *)
let prop_cdl_forgetful_certificates =
  QCheck.Test.make ~name:"forgetful/restartful cdl certificates verify"
    ~count:200 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let config =
        { Cdl.default_config with
          Cdl.restarts = 10;
          restart_base = 1;
          learn_limit = 2 }
      in
      let proof, _ = certify_cdl ~config net in
      check_ok "forgetful cdl" net proof;
      true)

let prop_bnb_certificates =
  QCheck.Test.make ~name:"bnb certificates verify (optimal and unsat)"
    ~count:200 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let costs = random_costs seed net in
      let proof, _ = certify_bnb ~costs net in
      check_ok ~costs "bnb" net proof;
      true)

(* ------------------------------------------------------------------ *)
(* Soundness: guaranteed-invalid mutations are rejected                 *)
(* ------------------------------------------------------------------ *)

let all_vars net = Array.init (Network.num_vars net) Fun.id

let prop_mutations_rejected =
  QCheck.Test.make ~name:"damaged certificates are rejected" ~count:200
    QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let proof, outcome = certify_cdl net in
      (* digest tamper: the proof no longer speaks about this network *)
      check_rejected "digest" net
        {
          proof with
          Proof.header = { proof.Proof.header with Proof.digest = "0" };
        };
      (* truncation: verdict line lost *)
      check_rejected "no verdict" net { proof with Proof.verdict = None };
      (* an aborted verdict is never acceptable *)
      check_rejected "aborted" net
        { proof with Proof.verdict = Some Proof.Aborted };
      (match outcome with
      | Solver.Solution a ->
        (* flipped verdict: the network is satisfiable, so no replay can
           end in a global refutation *)
        check_rejected "sat flipped to unsat" net
          { proof with Proof.verdict = Some Proof.Unsat };
        (* tampered assignment: out-of-range value *)
        let bad = Array.copy a in
        bad.(0) <- Network.domain_size net 0;
        check_rejected "assignment out of range" net
          { proof with Proof.verdict = Some (Proof.Sat bad) };
        (* a nogood contradicted by a known solution: every literal of
           [a] holds in a satisfying assignment, so "these cannot all
           hold" is false and no refutation attempt can succeed *)
        let lits = Array.mapi (fun i v -> (i, v)) a in
        let bogus =
          [
            Proof.Comp { id = 99; vars = all_vars net };
            Proof.Ng { comp = 99; dead = 0; lits };
          ]
        in
        check_rejected "nogood excluding a solution" net
          { proof with Proof.steps = proof.Proof.steps @ bogus }
      | Solver.Unsatisfiable ->
        (* flipped verdict: claim satisfiable with a fabricated
           assignment — [Network.verify] must refuse it *)
        let a = Array.make (Network.num_vars net) 0 in
        if not (Network.verify net a) then
          check_rejected "unsat flipped to sat" net
            { proof with Proof.verdict = Some (Proof.Sat a) }
      | Solver.Aborted -> ());
      true)

let prop_bnb_mutations_rejected =
  QCheck.Test.make ~name:"damaged optimality certificates are rejected"
    ~count:200 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let costs = random_costs seed net in
      let proof, outcome = certify_bnb ~costs net in
      (match outcome with
      | Solver.Solution _ ->
        let claimed =
          match proof.Proof.verdict with
          | Some (Proof.Optimal { cost; _ }) -> cost
          | _ -> assert false
        in
        (* optimality without the cost table is unverifiable *)
        check_rejected "optimal without costs" net proof;
        (* claimed optimum lowered below the recomputed assignment cost
           (integer costs: 1.0 is far outside the tolerance) *)
        (match proof.Proof.verdict with
        | Some (Proof.Optimal { assignment; _ }) ->
          check_rejected ~costs "claimed optimum lowered" net
            {
              proof with
              Proof.verdict =
                Some (Proof.Optimal { cost = claimed -. 1.0; assignment });
            }
        | _ -> ());
        (* corrupt one incumbent's recorded cost *)
        let corrupted = ref false in
        let steps =
          List.map
            (function
              | Proof.Inc { comp; lits; cost } when not !corrupted ->
                corrupted := true;
                Proof.Inc { comp; lits; cost = cost +. 1.0 }
              | s -> s)
            proof.Proof.steps
        in
        if !corrupted then
          check_rejected ~costs "corrupted incumbent cost" net
            { proof with Proof.steps };
        (* drop the final (cheapest) incumbent: some component's bound
           weakens by at least 1 (integer costs), so either a later
           nogood loses its justification or the bound composition at
           the verdict breaks *)
        let rev = List.rev proof.Proof.steps in
        let rec drop_first_inc = function
          | [] -> []
          | Proof.Inc _ :: tl -> tl
          | s :: tl -> s :: drop_first_inc tl
        in
        let without_best = List.rev (drop_first_inc rev) in
        if List.length without_best < List.length proof.Proof.steps then
          check_rejected ~costs "missing best incumbent" net
            { proof with Proof.steps = without_best }
      | _ -> ());
      true)

(* ------------------------------------------------------------------ *)
(* Workload goldens through the Optimizer plumbing                      *)
(* ------------------------------------------------------------------ *)

let capture_proof ?max_checks ?(domains = 1) ?(prune = false) ?objective
    scheme name =
  let spec = Suite.by_name name in
  let proof = ref None in
  let result =
    match
      Optimizer.optimize ~candidates:spec.Spec.candidates ?max_checks
        ~prune_dominated:prune ~domains ?objective
        ~proof:(fun p -> proof := Some p)
        scheme spec.Spec.program
    with
    | sol -> Ok sol
    | exception Optimizer.No_solution msg -> Error msg
  in
  match !proof with
  | None -> Alcotest.failf "%s: no proof emitted" name
  | Some p -> (spec, p, result)

let costs_for spec proof =
  match proof.Proof.verdict with
  | Some (Proof.Optimal _) ->
    let net = (Spec.extract spec).Build.network in
    let objective =
      match proof.Proof.header.Proof.objective with
      | Some "lines" -> Optimizer.Distinct_lines
      | _ -> Optimizer.Estimated_misses
    in
    let cost = Optimizer.layout_cost ~objective spec.Spec.program in
    Some
      (Array.init (Network.num_vars net) (fun i ->
           let name = Network.name net i in
           Array.init (Network.domain_size net i) (fun v ->
               cost ~array_name:name ~layout:(Network.value net i v))))
  | _ -> None

let alcotest_check ~what spec proof =
  let net = (Spec.extract spec).Build.network in
  match Checker.check ?costs:(costs_for spec proof) net proof with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: rejected: %s" what msg

let test_benchmark_sat_goldens () =
  List.iter
    (fun name ->
      let spec, proof, result =
        capture_proof (Optimizer.Cdl Cdl.default_config) name
      in
      (match result with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s unexpectedly unsolved: %s" name msg);
      (match proof.Proof.verdict with
      | Some (Proof.Sat _) -> ()
      | _ -> Alcotest.failf "%s: expected a sat verdict" name);
      alcotest_check ~what:name spec proof)
    [ "med-im04"; "mxm"; "radar"; "shape"; "track" ]

(* The racing portfolio cancels its losers mid-run; only the winner's
   log may reach the certificate, which must still verify. *)
let test_portfolio_golden () =
  let spec, proof, result =
    capture_proof ~domains:2
      (Optimizer.Portfolio Mlo_csp.Portfolio.default_config)
      "radar"
  in
  (match result with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "radar unexpectedly unsolved: %s" msg);
  alcotest_check ~what:"portfolio radar" spec proof

let test_hard_unsat_goldens () =
  List.iter
    (fun name ->
      let spec, proof, result =
        capture_proof (Optimizer.Cdl Cdl.default_config) name
      in
      (match result with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s unexpectedly satisfiable" name);
      (match proof.Proof.verdict with
      | Some Proof.Unsat -> ()
      | _ -> Alcotest.failf "%s: expected an unsat verdict" name);
      alcotest_check ~what:name spec proof)
    [ "hard-150"; "hard-200" ]

let simulated_cycles spec layouts =
  let lookup n = List.assoc_opt n layouts in
  let restructured = Select.restructure spec.Spec.sim_program lookup in
  (Simulate.run restructured ~layouts:lookup).Simulate.counters
    .Hierarchy.cycles

(* The Med-Im04 optimality certificate, end to end: the proof verifies,
   the claimed optimum is the solution's objective value, and the
   certified assignment is the one whose simulation hits the pinned
   1630436-cycle golden (enhanced's golden is 1639362). *)
let test_bnb_optimal_golden () =
  let spec, proof, result =
    capture_proof (Optimizer.Bnb Bnb.default_config) "med-im04"
  in
  let sol =
    match result with
    | Ok sol -> sol
    | Error msg -> Alcotest.failf "med-im04 unexpectedly unsolved: %s" msg
  in
  (match (proof.Proof.verdict, sol.Optimizer.objective_value) with
  | Some (Proof.Optimal { cost; _ }), Some objective ->
    Alcotest.(check bool)
      (Printf.sprintf "claimed optimum %g matches objective %g" cost
         objective)
      true
      (Float.abs (cost -. objective) <= 1e-6 *. Float.max 1.0 objective)
  | _ -> Alcotest.fail "expected an optimal verdict with an objective");
  alcotest_check ~what:"bnb med-im04" spec proof;
  let cycles = simulated_cycles spec sol.Optimizer.layouts in
  Alcotest.(check int) "Med-Im04 certified-optimum cycles" 1630436 cycles

(* Dominance pruning re-indexes domains; the certificate must translate
   everything back and justify each removal (MxM prunes 34 -> 8). *)
let test_pruned_golden () =
  let spec, proof, result =
    capture_proof ~prune:true (Optimizer.Cdl Cdl.default_config) "mxm"
  in
  (match result with
  | Ok sol ->
    (match sol.Optimizer.pruned_values with
    | Some info when Mlo_netgen.Prune.total info > 0 -> ()
    | _ -> Alcotest.fail "expected pruned values on mxm")
  | Error msg -> Alcotest.failf "mxm unexpectedly unsolved: %s" msg);
  let dels =
    List.length
      (List.filter
         (function Proof.Del _ -> true | _ -> false)
         proof.Proof.steps)
  in
  Alcotest.(check bool) "dominance deletions recorded" true (dels > 0);
  alcotest_check ~what:"pruned mxm" spec proof;
  (* and with one deletion's witness corrupted the proof must die *)
  let corrupted = ref false in
  let steps =
    List.map
      (function
        | Proof.Del { var; value; reason = Proof.Dominated _ }
          when not !corrupted ->
          corrupted := true;
          Proof.Del { var; value; reason = Proof.Dominated value }
        | s -> s)
      proof.Proof.steps
  in
  let net = (Spec.extract spec).Build.network in
  match
    Checker.check net { proof with Proof.steps }
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "self-dominating deletion accepted"

(* ------------------------------------------------------------------ *)
(* Cancellation and truncation (partial proofs)                         *)
(* ------------------------------------------------------------------ *)

(* A budget killed before any incumbent produces an [Aborted] verdict:
   well-formed, parseable, and cleanly rejected. *)
let test_budget_abort_rejected () =
  let spec, proof, result =
    capture_proof ~max_checks:1 (Optimizer.Bnb Bnb.default_config)
      "med-im04"
  in
  (match result with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the 1-check budget to abort");
  (match proof.Proof.verdict with
  | Some Proof.Aborted -> ()
  | _ -> Alcotest.fail "expected an aborted verdict");
  let net = (Spec.extract spec).Build.network in
  (match Checker.check net proof with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "aborted certificate accepted");
  (* the same certificate survives the file round trip and is still a
     rejection, not a parse crash *)
  let file = Filename.temp_file "layoutopt_verify" ".jsonl" in
  Proof.write file proof;
  (match Proof.read file with
  | Error msg -> Alcotest.failf "aborted proof unreadable: %s" msg
  | Ok p -> (
    match Checker.check net p with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "aborted certificate accepted after reread"));
  Sys.remove file

(* Truncating the file mid-write (losing the verdict line) must parse to
   a verdict-less proof that the checker rejects with a clear message. *)
let test_truncated_rejected () =
  let net = random_network 7 in
  let proof, _ = certify_cdl net in
  let lines = Proof.to_lines proof in
  let truncated = List.filteri (fun i _ -> i < List.length lines - 1) lines in
  match Proof.of_lines truncated with
  | Error msg -> Alcotest.failf "truncated proof unreadable: %s" msg
  | Ok p -> (
    (match p.Proof.verdict with
    | None -> ()
    | Some _ -> Alcotest.fail "truncation did not drop the verdict");
    match Checker.check net p with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "verdict-less certificate accepted")

(* ------------------------------------------------------------------ *)
(* Unsat-core verification (Netcheck / Explain routing)                 *)
(* ------------------------------------------------------------------ *)

let test_core_verified () =
  let hits = ref 0 in
  for seed = 0 to 199 do
    let net = random_network seed in
    let report = Netcheck.analyze net in
    match (report.Netcheck.unsat_core, report.Netcheck.core_verified) with
    | Some _, Some true ->
      incr hits;
      (match Explain.explain_unsat net with
      | Some u ->
        Alcotest.(check bool)
          (Printf.sprintf "explain core verified (seed %d)" seed)
          true u.Explain.core_verified
      | None -> Alcotest.failf "seed %d: analyze wiped but explain did not"
                  seed)
    | Some _, Some false ->
      Alcotest.failf "seed %d: minimal unsat core failed verification" seed
    | Some _, None ->
      Alcotest.failf "seed %d: unsat core without verification result" seed
    | None, Some _ ->
      Alcotest.failf "seed %d: verification result without a core" seed
    | None, None -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough AC-refutable instances (%d)" !hits)
    true (!hits >= 5)

let () =
  Alcotest.run "verify"
    [
      ( "completeness",
        [
          QCheck_alcotest.to_alcotest prop_cdl_certificates;
          QCheck_alcotest.to_alcotest prop_cdl_forgetful_certificates;
          QCheck_alcotest.to_alcotest prop_bnb_certificates;
        ] );
      ( "soundness",
        [
          QCheck_alcotest.to_alcotest prop_mutations_rejected;
          QCheck_alcotest.to_alcotest prop_bnb_mutations_rejected;
        ] );
      ( "goldens",
        [
          Alcotest.test_case "five benchmarks (cdl, sat)" `Slow
            test_benchmark_sat_goldens;
          Alcotest.test_case "portfolio winner-only log" `Slow
            test_portfolio_golden;
          Alcotest.test_case "hard-150/hard-200 (cdl, unsat)" `Slow
            test_hard_unsat_goldens;
          Alcotest.test_case "med-im04 bnb optimum" `Slow
            test_bnb_optimal_golden;
          Alcotest.test_case "dominance-pruned mxm" `Slow test_pruned_golden;
        ] );
      ( "partial",
        [
          Alcotest.test_case "budget abort rejected" `Quick
            test_budget_abort_rejected;
          Alcotest.test_case "truncated proof rejected" `Quick
            test_truncated_rejected;
        ] );
      ( "unsat-core",
        [ Alcotest.test_case "cores verify independently" `Quick
            test_core_verified ]
      );
    ]
