(* Equivalence tests for the compiled solver core.

   The compiled engine (Solver.solve on Network.compile) must be
   decision-for-decision identical to the reference engine
   (Solver.solve_reference): same outcomes, same assignments, same
   node/backtrack/backjump counts for every configuration.  AC-2001 must
   reach the same (unique) fixpoint as AC-3. *)

module Network = Mlo_csp.Network
module Compiled = Mlo_csp.Compiled
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Brute = Mlo_csp.Brute
module Propagate = Mlo_csp.Propagate
module Bitset = Mlo_csp.Bitset
module Rng = Mlo_csp.Rng
module Stats = Mlo_csp.Stats

(* Same generator as test_csp: small random networks of 2-6 variables,
   domains of 1-3 values, ~60% pair density, ~55% allowed pairs. *)
let random_network seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains =
    Array.init n (fun _ -> Array.init (1 + Rng.int rng 3) Fun.id)
  in
  let net = Network.create ~names ~domains in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.int rng 100 < 60 then begin
        let pairs = ref [] in
        for vi = 0 to Array.length domains.(i) - 1 do
          for vj = 0 to Array.length domains.(j) - 1 do
            if Rng.int rng 100 < 55 then pairs := (vi, vj) :: !pairs
          done
        done;
        Network.add_allowed net i j !pairs
      end
    done
  done;
  net

(* Every search configuration exercised for equivalence.  Preprocessing
   configs are excluded here (solve_reference ignores them) and covered
   by their own soundness property below. *)
let equivalence_configs ~seed =
  [
    ("base", Schemes.base ~seed ());
    ("enhanced", Schemes.enhanced ~seed ());
    ("default", Solver.default_config);
    ( "cbj",
      { Solver.default_config with backward = Solver.Conflict_directed } );
    ( "fc",
      { Solver.default_config with lookahead = Solver.Forward_checking } );
    ( "fc+cbj+mostconstraining",
      {
        Solver.default_config with
        lookahead = Solver.Forward_checking;
        backward = Solver.Conflict_directed;
        var_policy = Solver.Most_constraining;
        val_policy = Solver.Least_constraining;
      } );
    ( "min-domain+fc",
      {
        Solver.default_config with
        lookahead = Solver.Forward_checking;
        var_policy = Solver.Min_domain;
      } );
  ]
  @ List.map
      (fun a -> (a.Schemes.label, a.Schemes.config))
      (Schemes.figure4_schemes ~seed ())

let outcome_label = function
  | Solver.Solution _ -> "solution"
  | Solver.Unsatisfiable -> "unsatisfiable"
  | Solver.Aborted -> "aborted"

(* ------------------------------------------------------------------ *)
(* Compiled view vs network queries                                    *)
(* ------------------------------------------------------------------ *)

let prop_compiled_matches_network =
  QCheck.Test.make ~name:"compiled allowed/support_count match the network"
    ~count:200 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let comp = Network.compile net in
      let n = Network.num_vars net in
      let ok = ref (Compiled.num_vars comp = n) in
      for i = 0 to n - 1 do
        ok :=
          !ok
          && Compiled.domain_size comp i = Network.domain_size net i
          && Compiled.neighbors comp i |> Array.to_list
             = Network.neighbors net i;
        for j = 0 to n - 1 do
          if i <> j then begin
            ok :=
              !ok
              && Compiled.constrained comp i j = Network.constrained net i j;
            for vi = 0 to Network.domain_size net i - 1 do
              ok :=
                !ok
                && Compiled.support_count comp i vi j
                   = Network.support_count net i vi j;
              for vj = 0 to Network.domain_size net j - 1 do
                ok :=
                  !ok
                  && Compiled.allowed comp i vi j vj
                     = Network.allowed net i vi j vj
              done
            done
          end
        done
      done;
      !ok)

let test_compile_memoized () =
  let net = random_network 5 in
  let c1 = Network.compile net in
  let c2 = Network.compile net in
  Alcotest.(check bool) "same physical view" true (c1 == c2);
  Network.add_allowed net 0 1 [ (0, 0) ];
  let c3 = Network.compile net in
  Alcotest.(check bool) "mutation invalidates" true (not (c3 == c1));
  Alcotest.(check bool) "recompiled view sees the new pair" true
    (Compiled.allowed c3 0 0 1 0)

(* ------------------------------------------------------------------ *)
(* Compiled solver == reference solver                                 *)
(* ------------------------------------------------------------------ *)

let prop_engines_agree config_name config =
  QCheck.Test.make
    ~name:(Printf.sprintf "compiled == reference (%s)" config_name)
    ~count:150 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let c = Solver.solve ~config net in
      let r = Solver.solve_reference ~config net in
      let same_outcome =
        match (c.Solver.outcome, r.Solver.outcome) with
        | Solver.Solution a, Solver.Solution b -> a = b
        | Solver.Unsatisfiable, Solver.Unsatisfiable -> true
        | Solver.Aborted, Solver.Aborted -> true
        | _ -> false
      in
      if not same_outcome then
        QCheck.Test.fail_reportf "outcome: compiled=%s reference=%s"
          (outcome_label c.Solver.outcome)
          (outcome_label r.Solver.outcome);
      let cs = c.Solver.stats and rs = r.Solver.stats in
      if
        cs.Stats.nodes <> rs.Stats.nodes
        || cs.Stats.backtracks <> rs.Stats.backtracks
        || cs.Stats.backjumps <> rs.Stats.backjumps
        || cs.Stats.max_depth <> rs.Stats.max_depth
      then
        QCheck.Test.fail_reportf
          "counters: compiled n=%d bt=%d bj=%d d=%d, reference n=%d bt=%d \
           bj=%d d=%d"
          cs.Stats.nodes cs.Stats.backtracks cs.Stats.backjumps
          cs.Stats.max_depth rs.Stats.nodes rs.Stats.backtracks
          rs.Stats.backjumps rs.Stats.max_depth;
      (* check counting is identical without lookahead; under forward
         checking the compiled engine counts row fetches, the reference
         counts value probes *)
      (match config.Solver.lookahead with
      | Solver.No_lookahead ->
        if cs.Stats.checks <> rs.Stats.checks then
          QCheck.Test.fail_reportf "checks: compiled=%d reference=%d"
            cs.Stats.checks rs.Stats.checks
      | Solver.Forward_checking -> ());
      true)

let engine_props =
  List.map
    (fun (label, config) ->
      QCheck_alcotest.to_alcotest (prop_engines_agree label config))
    (equivalence_configs ~seed:17)

let prop_preprocessing_sound =
  QCheck.Test.make ~name:"AC preprocessing preserves satisfiability"
    ~count:150 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let config = Schemes.enhanced_with_ac ~seed:(seed + 3) () in
      let expected = Brute.is_satisfiable net in
      match (Solver.solve ~config net).Solver.outcome with
      | Solver.Solution a -> expected && Network.verify net a
      | Solver.Unsatisfiable -> not expected
      | Solver.Aborted -> false)

(* ------------------------------------------------------------------ *)
(* AC-2001 == AC-3                                                     *)
(* ------------------------------------------------------------------ *)

let prop_ac2001_matches_ac3 =
  QCheck.Test.make ~name:"AC-2001 reaches the AC-3 fixpoint" ~count:200
    QCheck.small_nat (fun seed ->
      let net = random_network seed in
      match (Propagate.ac3 net, Propagate.ac2001 net) with
      | Propagate.Wiped _, Propagate.Wiped _ -> true
      | Propagate.Reduced d3, Propagate.Reduced d1 ->
        Array.length d3 = Array.length d1
        && Array.for_all2 Bitset.equal d3 d1
      | Propagate.Wiped _, Propagate.Reduced _
      | Propagate.Reduced _, Propagate.Wiped _ ->
        false)

(* ------------------------------------------------------------------ *)
(* Bitset row operations                                               *)
(* ------------------------------------------------------------------ *)

let test_bitset_rows () =
  (* capacity crossing the 32-bit word boundary *)
  let cap = 70 in
  let row = Bitset.row_make cap in
  List.iter (fun i -> Bitset.row_add row i) [ 0; 31; 32; 33; 64; 69 ];
  Alcotest.(check int) "row_count" 6 (Bitset.row_count row);
  Alcotest.(check bool) "row_mem hit" true (Bitset.row_mem row 33);
  Alcotest.(check bool) "row_mem miss" false (Bitset.row_mem row 34);
  let b = Bitset.create_empty cap in
  List.iter (Bitset.add b) [ 31; 34; 64 ];
  Alcotest.(check int) "inter_count" 2 (Bitset.inter_count b row);
  Alcotest.(check bool) "inter_exists" true (Bitset.inter_exists b row);
  Alcotest.(check (option int)) "inter_choose" (Some 31)
    (Bitset.inter_choose b row);
  let diff = ref [] in
  Bitset.iter_diff (fun v -> diff := v :: !diff) b row;
  Alcotest.(check (list int)) "iter_diff = members outside the row" [ 34 ]
    (List.rev !diff);
  let empty = Bitset.create_empty cap in
  Alcotest.(check bool) "inter_exists empty" false
    (Bitset.inter_exists empty row);
  Alcotest.(check (option int)) "inter_choose empty" None
    (Bitset.inter_choose empty row);
  Alcotest.(check (list int)) "to_array ascending" [ 31; 34; 64 ]
    (Array.to_list (Bitset.to_array b))

let () =
  Alcotest.run "compiled"
    [
      ( "view",
        [
          QCheck_alcotest.to_alcotest prop_compiled_matches_network;
          Alcotest.test_case "compile is memoized" `Quick test_compile_memoized;
          Alcotest.test_case "bitset rows" `Quick test_bitset_rows;
        ] );
      ("engines", engine_props);
      ( "preprocessing",
        [
          QCheck_alcotest.to_alcotest prop_preprocessing_sound;
          QCheck_alcotest.to_alcotest prop_ac2001_matches_ac3;
        ] );
    ]
