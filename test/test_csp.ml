(* Tests for the constraint-network core: network structure, the search
   engine in all its configurations, propagation, and the weighted
   extension.  Includes the paper's Section 3 worked example. *)

module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Brute = Mlo_csp.Brute
module Propagate = Mlo_csp.Propagate
module Weighted = Mlo_csp.Weighted
module Bitset = Mlo_csp.Bitset
module Relation = Mlo_csp.Relation
module Rng = Mlo_csp.Rng
module Local_search = Mlo_csp.Local_search

(* ------------------------------------------------------------------ *)
(* The paper's Section 3 network                                       *)
(* ------------------------------------------------------------------ *)

(* Domains are hyperplane vectors, encoded as strings for readability.
   Value indices:
     Q1: 0=(1 0) 1=(0 1) 2=(1 1)
     Q2: 0=(1 -1) 1=(1 1)
     Q3: 0=(0 1) 1=(1 1) 2=(1 2)
     Q4: 0=(1 0) 1=(0 1) 2=(1 1)
   The paper's S24 lists the pair [(1 0),(0 1)] whose first layout is not
   in M2 (a typo in the paper); the encoding below keeps only pairs whose
   values exist, as any implementation must. *)
let paper_network () =
  let net =
    Network.create
      ~names:[| "Q1"; "Q2"; "Q3"; "Q4" |]
      ~domains:
        [|
          [| "(1 0)"; "(0 1)"; "(1 1)" |];
          [| "(1 -1)"; "(1 1)" |];
          [| "(0 1)"; "(1 1)"; "(1 2)" |];
          [| "(1 0)"; "(0 1)"; "(1 1)" |];
        |]
  in
  Network.add_allowed net 0 1 [ (0, 1); (1, 0) ];
  Network.add_allowed net 0 2 [ (0, 0); (1, 1); (2, 2) ];
  Network.add_allowed net 0 3 [ (0, 0); (1, 1) ];
  Network.add_allowed net 1 2 [ (1, 0); (0, 1) ];
  Network.add_allowed net 1 3 [ (1, 0) ];
  Network.add_allowed net 2 3 [ (0, 0) ];
  net

let paper_solution = [| 0; 1; 0; 0 |]

let all_configs ~seed =
  [
    ("base", Schemes.base ~seed ());
    ("enhanced", Schemes.enhanced ~seed ());
    ("base+varsel", Schemes.base_plus_variable_selection ~seed ());
    ("base+valsel", Schemes.base_plus_value_selection ~seed ());
    ("base+backjump", Schemes.base_plus_backjumping ~seed ());
    ("default", Solver.default_config);
    ( "cbj",
      { Solver.default_config with backward = Solver.Conflict_directed } );
    ( "fc",
      { Solver.default_config with lookahead = Solver.Forward_checking } );
    ( "fc+cbj+mostconstraining",
      {
        Solver.default_config with
        lookahead = Solver.Forward_checking;
        backward = Solver.Conflict_directed;
        var_policy = Solver.Most_constraining;
        val_policy = Solver.Least_constraining;
      } );
    ( "min-domain+fc",
      {
        Solver.default_config with
        lookahead = Solver.Forward_checking;
        var_policy = Solver.Min_domain;
      } );
  ]

(* ------------------------------------------------------------------ *)
(* Network structure                                                   *)
(* ------------------------------------------------------------------ *)

let test_network_basics () =
  let net = paper_network () in
  Alcotest.(check int) "vars" 4 (Network.num_vars net);
  Alcotest.(check int) "total domain size" 11 (Network.total_domain_size net);
  Alcotest.(check int) "constraints" 6 (Network.num_constraints net);
  Alcotest.(check string) "name" "Q3" (Network.name net 2);
  Alcotest.(check int) "domain size" 2 (Network.domain_size net 1);
  Alcotest.(check string) "value" "(1 1)" (Network.value net 1 1);
  Alcotest.(check (list int)) "neighbors of Q1" [ 1; 2; 3 ] (Network.neighbors net 0);
  Alcotest.(check int) "degree" 3 (Network.degree net 3);
  Alcotest.(check bool) "constrained" true (Network.constrained net 2 3);
  Alcotest.(check (list (pair int int)))
    "pairs"
    [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
    (Network.constraint_pairs net)

let test_network_allowed_orientation () =
  let net = paper_network () in
  (* S12 allows (Q1=0, Q2=1) in both orientations *)
  Alcotest.(check bool) "forward" true (Network.allowed net 0 0 1 1);
  Alcotest.(check bool) "reverse" true (Network.allowed net 1 1 0 0);
  Alcotest.(check bool) "forbidden" false (Network.allowed net 0 0 1 0);
  Alcotest.(check bool) "forbidden reverse" false (Network.allowed net 1 0 0 0)

let test_network_unconstrained_allowed () =
  let net =
    Network.create ~names:[| "a"; "b" |] ~domains:[| [| 1; 2 |]; [| 3 |] |]
  in
  Alcotest.(check bool) "no constraint allows" true (Network.allowed net 0 1 1 0);
  Alcotest.(check int) "support full domain" 1 (Network.support_count net 0 0 1)

let test_network_support_count () =
  let net = paper_network () in
  (* Q1=(1 0) (idx 0) is compatible with exactly one value of each of
     Q2, Q3, Q4 *)
  Alcotest.(check int) "Q1->Q2" 1 (Network.support_count net 0 0 1);
  Alcotest.(check int) "Q1->Q3" 1 (Network.support_count net 0 0 2);
  Alcotest.(check int) "Q1->Q4" 1 (Network.support_count net 0 0 3);
  (* Q2=(1 -1) (idx 0) has no compatible value of Q4 *)
  Alcotest.(check int) "Q2->Q4 empty" 0 (Network.support_count net 1 0 3)

let test_network_verify () =
  let net = paper_network () in
  Alcotest.(check bool) "solution verifies" true (Network.verify net paper_solution);
  Alcotest.(check bool) "wrong assignment fails" false
    (Network.verify net [| 0; 0; 0; 0 |]);
  Alcotest.(check bool) "partial consistent" true
    (Network.consistent_partial net [| 0; -1; -1; 0 |]);
  Alcotest.(check bool) "partial inconsistent" false
    (Network.consistent_partial net [| 1; -1; -1; 0 |])

let test_network_validation () =
  Alcotest.check_raises "empty domain"
    (Invalid_argument "Network.create: empty domain") (fun () ->
      ignore (Network.create ~names:[| "a" |] ~domains:[| [||] |]));
  let net = paper_network () in
  Alcotest.check_raises "self constraint"
    (Invalid_argument "Network.add_allowed: i = j") (fun () ->
      Network.add_allowed net 1 1 [ (0, 0) ])

let test_map_values () =
  let net = paper_network () in
  let net' = Network.map_values String.length net in
  Alcotest.(check int) "value mapped" 5 (Network.value net' 0 0);
  Alcotest.(check bool) "constraints preserved" true
    (Network.verify net' paper_solution);
  (* mutating the copy must not affect the original *)
  Network.add_allowed net' 0 1 [ (0, 0) ];
  Alcotest.(check bool) "original untouched" false (Network.allowed net 0 0 1 0)

(* ------------------------------------------------------------------ *)
(* Relation / Bitset / Rng                                             *)
(* ------------------------------------------------------------------ *)

let test_relation () =
  let r = Relation.create ~left:3 ~right:2 in
  Relation.add r 0 1;
  Relation.add r 2 0;
  Relation.add r 2 1;
  Relation.add r 2 1;
  Alcotest.(check int) "pairs (idempotent add)" 3 (Relation.pair_count r);
  Alcotest.(check bool) "mem" true (Relation.mem r 0 1);
  Alcotest.(check bool) "not mem" false (Relation.mem r 1 0);
  Alcotest.(check int) "left support" 2 (Relation.left_support r 2);
  Alcotest.(check int) "right support" 2 (Relation.right_support r 1);
  Alcotest.(check (list int)) "supports of left" [ 0; 1 ] (Relation.supports_of_left r 2);
  let tr = Relation.transpose r in
  Alcotest.(check bool) "transpose mem" true (Relation.mem tr 1 0);
  Alcotest.(check int) "transpose pairs" 3 (Relation.pair_count tr)

let test_bitset () =
  let b = Bitset.create_full 10 in
  Alcotest.(check int) "full count" 10 (Bitset.count b);
  Bitset.remove b 3;
  Bitset.remove b 3;
  Alcotest.(check int) "remove idempotent" 9 (Bitset.count b);
  Alcotest.(check bool) "mem" false (Bitset.mem b 3);
  Bitset.add b 3;
  Alcotest.(check int) "add back" 10 (Bitset.count b);
  let e = Bitset.create_empty 5 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty e);
  Alcotest.(check (option int)) "choose none" None (Bitset.choose e);
  Bitset.add e 4;
  Alcotest.(check (option int)) "choose" (Some 4) (Bitset.choose e);
  Alcotest.(check (list int)) "to_list" [ 4 ] (Bitset.to_list e);
  let c = Bitset.copy e in
  Bitset.remove c 4;
  Alcotest.(check bool) "copy independent" true (Bitset.mem e 4)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let seq r = List.init 20 (fun _ -> Rng.int r 1000) in
  Alcotest.(check (list int)) "same seed same sequence" (seq a) (seq b);
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seed differs" true (seq (Rng.copy c) <> seq c || true);
  let p = Rng.shuffled_init (Rng.create 7) 50 in
  let sorted = Array.copy p in
  Array.sort Int.compare sorted;
  Alcotest.(check bool) "shuffle is a permutation" true
    (Array.to_list sorted = List.init 50 Fun.id)

(* ------------------------------------------------------------------ *)
(* Solver on the paper network                                         *)
(* ------------------------------------------------------------------ *)

let test_paper_network_unique_solution () =
  let net = paper_network () in
  Alcotest.(check int) "exactly one solution" 1 (Brute.count_solutions net);
  match Brute.first_solution net with
  | Some a ->
    Alcotest.(check (array int)) "it is the paper's" paper_solution a
  | None -> Alcotest.fail "expected a solution"

let test_all_configs_find_paper_solution () =
  let net = paper_network () in
  List.iter
    (fun (label, config) ->
      match (Solver.solve ~config net).Solver.outcome with
      | Solver.Solution a ->
        Alcotest.(check (array int)) (label ^ " finds the unique solution")
          paper_solution a
      | Solver.Unsatisfiable -> Alcotest.fail (label ^ ": unsatisfiable?")
      | Solver.Aborted -> Alcotest.fail (label ^ ": aborted?"))
    (all_configs ~seed:11)

let test_solve_values () =
  let net = paper_network () in
  match Solver.solve_values net with
  | Some (values, _) ->
    Alcotest.(check (array string)) "layout values"
      [| "(1 0)"; "(1 1)"; "(0 1)"; "(1 0)" |]
      values
  | None -> Alcotest.fail "expected solution"

let unsat_network () =
  (* two variables, one constraint with no allowed pair *)
  let net =
    Network.create ~names:[| "a"; "b" |] ~domains:[| [| 0; 1 |]; [| 0; 1 |] |]
  in
  Network.add_allowed net 0 1 [];
  net

let test_unsatisfiable_all_configs () =
  let net = unsat_network () in
  List.iter
    (fun (label, config) ->
      match (Solver.solve ~config net).Solver.outcome with
      | Solver.Unsatisfiable -> ()
      | Solver.Solution _ -> Alcotest.fail (label ^ ": found ghost solution")
      | Solver.Aborted -> Alcotest.fail (label ^ ": aborted"))
    (all_configs ~seed:3)

let test_abort_on_check_limit () =
  (* an unsatisfiable pigeonhole-flavoured network large enough to need
     more than 2 checks *)
  let net =
    Network.create ~names:[| "a"; "b"; "c" |]
      ~domains:[| [| 0; 1 |]; [| 0; 1 |]; [| 0; 1 |] |]
  in
  (* all pairs must differ: 3 variables, 2 values -> unsat *)
  let diff = [ (0, 1); (1, 0) ] in
  Network.add_allowed net 0 1 diff;
  Network.add_allowed net 0 2 diff;
  Network.add_allowed net 1 2 diff;
  let config = { Solver.default_config with max_checks = Some 2 } in
  (match (Solver.solve ~config net).Solver.outcome with
  | Solver.Aborted -> ()
  | Solver.Solution _ | Solver.Unsatisfiable ->
    Alcotest.fail "expected abort");
  (* and without the limit it is correctly unsatisfiable *)
  match (Solver.solve net).Solver.outcome with
  | Solver.Unsatisfiable -> ()
  | Solver.Solution _ | Solver.Aborted -> Alcotest.fail "expected unsat"

let odd_cycle_2coloring n =
  (* 2-coloring an odd cycle: unsatisfiable; classic backjumping exercise *)
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains = Array.make n [| 0; 1 |] in
  let net = Network.create ~names ~domains in
  let diff = [ (0, 1); (1, 0) ] in
  for i = 0 to n - 1 do
    Network.add_allowed net i ((i + 1) mod n) diff
  done;
  net

let test_odd_cycle () =
  let net = odd_cycle_2coloring 7 in
  List.iter
    (fun (label, config) ->
      match (Solver.solve ~config net).Solver.outcome with
      | Solver.Unsatisfiable -> ()
      | Solver.Solution _ -> Alcotest.fail (label ^ ": odd cycle 2-colored!")
      | Solver.Aborted -> Alcotest.fail (label ^ ": aborted"))
    (all_configs ~seed:5);
  (* even cycle is satisfiable *)
  let even = odd_cycle_2coloring 8 in
  match (Solver.solve ~config:(Schemes.enhanced ()) even).Solver.outcome with
  | Solver.Solution a -> Alcotest.(check bool) "verifies" true (Network.verify even a)
  | Solver.Unsatisfiable | Solver.Aborted -> Alcotest.fail "even cycle should be 2-colorable"

let test_stats_sanity () =
  let net = paper_network () in
  let r = Solver.solve ~config:(Schemes.base ~seed:1 ()) net in
  Alcotest.(check bool) "nodes > 0" true (r.Solver.stats.Mlo_csp.Stats.nodes > 0);
  Alcotest.(check bool) "checks > 0" true (r.Solver.stats.Mlo_csp.Stats.checks > 0);
  Alcotest.(check int) "no backjumps under chronological" 0
    r.Solver.stats.Mlo_csp.Stats.backjumps

let test_backjumping_actually_jumps () =
  (* A network engineered so that chronological backtracking thrashes:
     variables v1..vk are unconstrained "decoys" between the culprit x
     and the dead-end y.  Lexicographic order instantiates x, then the
     decoys, then y; y conflicts only with x. *)
  let k = 6 in
  let n = k + 2 in
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains = Array.make n [| 0; 1 |] in
  let net = Network.create ~names ~domains in
  (* x = variable 0, y = variable n-1: y must differ from x, and
     moreover y's domain is killed whatever x is -- no solution involving
     the pair: allow nothing *)
  Network.add_allowed net 0 (n - 1) [];
  let chrono =
    Solver.solve
      ~config:{ Solver.default_config with backward = Solver.Chronological }
      net
  in
  let jump =
    Solver.solve
      ~config:{ Solver.default_config with backward = Solver.Graph_based }
      net
  in
  (match (chrono.Solver.outcome, jump.Solver.outcome) with
  | Solver.Unsatisfiable, Solver.Unsatisfiable -> ()
  | _ -> Alcotest.fail "both must report unsatisfiable");
  Alcotest.(check bool) "backjumping jumped" true
    (jump.Solver.stats.Mlo_csp.Stats.backjumps > 0);
  Alcotest.(check bool) "backjumping visits fewer nodes" true
    (jump.Solver.stats.Mlo_csp.Stats.nodes < chrono.Solver.stats.Mlo_csp.Stats.nodes)

(* ------------------------------------------------------------------ *)
(* Random-network properties                                           *)
(* ------------------------------------------------------------------ *)

let random_network seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains =
    Array.init n (fun _ -> Array.init (1 + Rng.int rng 3) Fun.id)
  in
  let net = Network.create ~names ~domains in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.int rng 100 < 60 then begin
        let pairs = ref [] in
        for vi = 0 to Array.length domains.(i) - 1 do
          for vj = 0 to Array.length domains.(j) - 1 do
            if Rng.int rng 100 < 55 then pairs := (vi, vj) :: !pairs
          done
        done;
        Network.add_allowed net i j !pairs
      end
    done
  done;
  net

let prop_solver_agrees_with_brute config_name config =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s agrees with brute force" config_name)
    ~count:150 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let expected = Brute.is_satisfiable net in
      match (Solver.solve ~config net).Solver.outcome with
      | Solver.Solution a -> expected && Network.verify net a
      | Solver.Unsatisfiable -> not expected
      | Solver.Aborted -> false)

let solver_props =
  List.map
    (fun (label, config) ->
      QCheck_alcotest.to_alcotest (prop_solver_agrees_with_brute label config))
    (all_configs ~seed:17)

(* ------------------------------------------------------------------ *)
(* Propagation                                                         *)
(* ------------------------------------------------------------------ *)

let test_ac3_paper_network () =
  let net = paper_network () in
  match Propagate.ac3 net with
  | Propagate.Wiped _ -> Alcotest.fail "paper network is satisfiable"
  | Propagate.Reduced domains ->
    (* the unique solution means AC-3 prunes every domain to a singleton *)
    Array.iteri
      (fun i d ->
        Alcotest.(check int)
          (Printf.sprintf "domain %d is singleton" i)
          1 (Bitset.count d))
      domains;
    Alcotest.(check (list int)) "Q1 keeps (1 0)" [ 0 ] (Bitset.to_list domains.(0));
    Alcotest.(check (list int)) "Q2 keeps (1 1)" [ 1 ] (Bitset.to_list domains.(1))

let test_ac3_detects_wipeout () =
  match Propagate.ac3 (unsat_network ()) with
  | Propagate.Wiped _ -> ()
  | Propagate.Reduced _ -> Alcotest.fail "expected wipeout"

let prop_ac3_preserves_solutions =
  QCheck.Test.make ~name:"AC-3 preserves satisfiability" ~count:150
    QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let before = Brute.is_satisfiable net in
      match Propagate.ac3 net with
      | Propagate.Wiped _ -> not before
      | Propagate.Reduced domains ->
        let reduced = Propagate.restrict net domains in
        Brute.is_satisfiable reduced = before)

let prop_ac3_never_empty =
  QCheck.Test.make ~name:"AC-3 Reduced domains are non-empty" ~count:150
    QCheck.small_nat (fun seed ->
      match Propagate.ac3 (random_network seed) with
      | Propagate.Wiped _ -> true
      | Propagate.Reduced domains ->
        Array.for_all (fun d -> not (Bitset.is_empty d)) domains)

(* ------------------------------------------------------------------ *)
(* Weighted extension                                                  *)
(* ------------------------------------------------------------------ *)

let two_solution_network () =
  (* a-b constrained with two allowed pairs; no other constraints *)
  let net =
    Network.create ~names:[| "a"; "b" |] ~domains:[| [| 0; 1 |]; [| 0; 1 |] |]
  in
  Network.add_allowed net 0 1 [ (0, 0); (1, 1) ];
  net

let test_weighted_prefers_heavier_solution () =
  let net = two_solution_network () in
  let w = Weighted.create net in
  Weighted.set_weight w 0 0 1 0 1.0;
  Weighted.set_weight w 0 1 1 1 5.0;
  match (Weighted.solve w).Weighted.best with
  | Some (a, total) ->
    Alcotest.(check (array int)) "picks heavier pair" [| 1; 1 |] a;
    Alcotest.(check (float 1e-9)) "weight" 5.0 total
  | None -> Alcotest.fail "expected solution"

let test_weighted_orientation () =
  let net = two_solution_network () in
  let w = Weighted.create net in
  Weighted.set_weight w 1 0 0 0 3.0;
  Alcotest.(check (float 1e-9)) "reverse orientation reads back" 3.0
    (Weighted.weight w 0 0 1 0);
  Weighted.add_weight w 0 0 1 0 2.0;
  Alcotest.(check (float 1e-9)) "accumulate" 5.0 (Weighted.weight w 0 0 1 0)

let test_weighted_rejects () =
  let net = two_solution_network () in
  let w = Weighted.create net in
  Alcotest.check_raises "negative"
    (Invalid_argument "Weighted.set_weight: negative weight") (fun () ->
      Weighted.set_weight w 0 0 1 0 (-1.));
  let net2 =
    Network.create ~names:[| "a"; "b" |] ~domains:[| [| 0 |]; [| 0 |] |]
  in
  let w2 = Weighted.create net2 in
  Alcotest.check_raises "unconstrained"
    (Invalid_argument "Weighted.set_weight: unconstrained variable pair")
    (fun () -> Weighted.set_weight w2 0 0 1 0 1.)

let prop_weighted_matches_brute =
  QCheck.Test.make ~name:"branch-and-bound matches exhaustive optimum"
    ~count:100 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let w = Weighted.create net in
      let rng = Rng.create (seed + 1000) in
      List.iter
        (fun (i, j) ->
          for vi = 0 to Network.domain_size net i - 1 do
            for vj = 0 to Network.domain_size net j - 1 do
              if Network.allowed net i vi j vj then
                Weighted.set_weight w i vi j vj (float_of_int (Rng.int rng 10))
            done
          done)
        (Network.constraint_pairs net);
      match (Weighted.solve w).Weighted.best, Weighted.brute_optimum w with
      | None, None -> true
      | Some (a, wa), Some (_, wb) ->
        abs_float (wa -. wb) < 1e-9
        && Network.verify net a
        && abs_float (Weighted.assignment_weight w a -. wa) < 1e-9
      | Some _, None | None, Some _ -> false)

(* ------------------------------------------------------------------ *)
(* Min-conflicts local search                                           *)
(* ------------------------------------------------------------------ *)

let test_local_search_paper_network () =
  let net = paper_network () in
  match (Local_search.solve net).Local_search.outcome with
  | Local_search.Solution a ->
    Alcotest.(check (array int)) "finds the unique solution" paper_solution a
  | Local_search.Stuck _ -> Alcotest.fail "min-conflicts should solve it"

let test_local_search_conflicts_metric () =
  let net = paper_network () in
  Alcotest.(check int) "solution has zero conflicts" 0
    (Local_search.conflicts net paper_solution);
  Alcotest.(check bool) "bad assignment conflicts" true
    (Local_search.conflicts net [| 0; 0; 0; 0 |] > 0)

let test_local_search_stuck_on_unsat () =
  let net = unsat_network () in
  match (Local_search.solve net).Local_search.outcome with
  | Local_search.Stuck (_, c) ->
    Alcotest.(check bool) "reports remaining conflicts" true (c > 0)
  | Local_search.Solution _ -> Alcotest.fail "unsatisfiable network solved?!"

let prop_local_search_sound =
  QCheck.Test.make ~name:"min-conflicts solutions verify" ~count:150
    QCheck.small_nat (fun seed ->
      let net = random_network seed in
      match
        (Local_search.solve
           ~config:{ Local_search.default_config with seed = seed + 7 }
           net)
          .Local_search.outcome
      with
      | Local_search.Solution a ->
        Network.verify net a && Brute.is_satisfiable net
      | Local_search.Stuck _ -> true)

(* ------------------------------------------------------------------ *)
(* Schemes.breakdown arithmetic                                        *)
(* ------------------------------------------------------------------ *)

let test_breakdown () =
  let shares =
    Schemes.breakdown ~base_checks:1000 ~enhanced_checks:100
      ~single:[ ("a", 700); ("b", 900); ("c", 400) ]
  in
  (* savings: a=300 b=100 c=600, total 1000 *)
  let get k = List.assoc k shares in
  Alcotest.(check (float 1e-9)) "a" 0.3 (get "a");
  Alcotest.(check (float 1e-9)) "b" 0.1 (get "b");
  Alcotest.(check (float 1e-9)) "c" 0.6 (get "c");
  (* degenerate: no saving at all *)
  let zero =
    Schemes.breakdown ~base_checks:100 ~enhanced_checks:100
      ~single:[ ("a", 100) ]
  in
  Alcotest.(check (float 1e-9)) "zero saving" 0. (List.assoc "a" zero)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_ac3_preserves_solutions; prop_ac3_never_empty; prop_weighted_matches_brute ]

let () =
  Alcotest.run "csp"
    [
      ( "network",
        [
          Alcotest.test_case "basics" `Quick test_network_basics;
          Alcotest.test_case "orientation" `Quick test_network_allowed_orientation;
          Alcotest.test_case "unconstrained pairs allowed" `Quick
            test_network_unconstrained_allowed;
          Alcotest.test_case "support counts" `Quick test_network_support_count;
          Alcotest.test_case "verify" `Quick test_network_verify;
          Alcotest.test_case "validation" `Quick test_network_validation;
          Alcotest.test_case "map_values" `Quick test_map_values;
        ] );
      ( "containers",
        [
          Alcotest.test_case "relation" `Quick test_relation;
          Alcotest.test_case "bitset" `Quick test_bitset;
          Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        ] );
      ( "solver",
        [
          Alcotest.test_case "paper network has the published unique solution"
            `Quick test_paper_network_unique_solution;
          Alcotest.test_case "every config finds it" `Quick
            test_all_configs_find_paper_solution;
          Alcotest.test_case "solve_values" `Quick test_solve_values;
          Alcotest.test_case "unsatisfiable detection" `Quick
            test_unsatisfiable_all_configs;
          Alcotest.test_case "abort on check limit" `Quick test_abort_on_check_limit;
          Alcotest.test_case "odd cycle coloring" `Quick test_odd_cycle;
          Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
          Alcotest.test_case "backjumping skips decoys" `Quick
            test_backjumping_actually_jumps;
        ] );
      ("solver-vs-brute", solver_props);
      ( "propagation",
        [
          Alcotest.test_case "AC-3 solves the paper network" `Quick
            test_ac3_paper_network;
          Alcotest.test_case "AC-3 detects wipeout" `Quick test_ac3_detects_wipeout;
        ] );
      ( "local-search",
        [
          Alcotest.test_case "solves the paper network" `Quick
            test_local_search_paper_network;
          Alcotest.test_case "conflicts metric" `Quick
            test_local_search_conflicts_metric;
          Alcotest.test_case "stuck on unsat" `Quick test_local_search_stuck_on_unsat;
          QCheck_alcotest.to_alcotest prop_local_search_sound;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "prefers heavier solution" `Quick
            test_weighted_prefers_heavier_solution;
          Alcotest.test_case "orientation" `Quick test_weighted_orientation;
          Alcotest.test_case "validation" `Quick test_weighted_rejects;
          Alcotest.test_case "breakdown arithmetic" `Quick test_breakdown;
        ] );
      ("properties", props);
    ]
