(* Conflict-driven solving: agreement, nogood soundness, store bounds.

   The cdl scheme changes the search order, learns nogoods and restarts,
   but none of that may change the one thing that matters: whether a
   consistent layout assignment exists.  Beyond the usual cross-scheme
   agreement, every nogood the engine learns is pinned against the
   brute-forced solution set of the original network — a learned nogood
   claims "no solution holds all these assignments", so a solution
   holding them all would prove the learning machinery unsound. *)

module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Cdl = Mlo_csp.Cdl
module Nogood = Mlo_csp.Nogood
module Brute = Mlo_csp.Brute
module Rng = Mlo_csp.Rng
module Stats = Mlo_csp.Stats

(* Same generator family as test_schemes: small random networks of 2-6
   variables, domains of 1-3 values, ~60% pair density, ~55% allowed
   pairs — dense enough that roughly half the instances are
   unsatisfiable and dead ends (hence learning) are common. *)
let random_network seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains =
    Array.init n (fun _ -> Array.init (1 + Rng.int rng 3) Fun.id)
  in
  let net = Network.create ~names ~domains in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.int rng 100 < 60 then begin
        let pairs = ref [] in
        for vi = 0 to Array.length domains.(i) - 1 do
          for vj = 0 to Array.length domains.(j) - 1 do
            if Rng.int rng 100 < 55 then pairs := (vi, vj) :: !pairs
          done
        done;
        Network.add_allowed net i j !pairs
      end
    done
  done;
  net

let dumb_verify net a =
  let n = Network.num_vars net in
  let in_range i v = v >= 0 && v < Network.domain_size net i in
  Array.length a = n
  && List.for_all (fun i -> in_range i a.(i)) (List.init n Fun.id)
  && List.for_all
       (fun (i, j) -> Network.allowed net i a.(i) j a.(j))
       (Network.constraint_pairs net)

(* Configurations that stress different parts of the machinery: the
   default, a restart-happy one (budget of 1 conflict forces a restart
   at nearly every dead end), and a forgetful one (store capped at 2
   nogoods, so reduction runs constantly). *)
let cdl_configs =
  [
    ("cdl", Cdl.default_config);
    ( "cdl-restartful",
      { Cdl.default_config with Cdl.restarts = 20; restart_base = 1 } );
    ("cdl-forgetful", { Cdl.default_config with Cdl.learn_limit = 2 });
    ( "cdl-ac",
      { Cdl.default_config with Cdl.preprocess = Solver.Arc_consistency } );
  ]

let prop_cdl_agrees =
  QCheck.Test.make ~name:"cdl agrees with Brute on satisfiability"
    ~count:300 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let expected = Brute.is_satisfiable net in
      List.for_all
        (fun (label, config) ->
          match (Cdl.solve ~config net).Solver.outcome with
          | Solver.Solution a ->
            if not expected then
              QCheck.Test.fail_reportf
                "%s found a solution on an unsatisfiable network" label;
            if not (dumb_verify net a) then
              QCheck.Test.fail_reportf
                "%s returned an inconsistent assignment" label;
            true
          | Solver.Unsatisfiable ->
            if expected then
              QCheck.Test.fail_reportf
                "%s reported unsatisfiable on a satisfiable network" label;
            true
          | Solver.Aborted ->
            QCheck.Test.fail_reportf "%s aborted without a check budget" label)
        cdl_configs)

(* Nogood soundness: a learned nogood states that no solution of the
   original network holds all its literals, so every brute-forced
   solution must miss at least one of them.  Checked for every nogood
   learned over the whole search, including unit bans. *)
let prop_nogoods_sound =
  QCheck.Test.make ~name:"every learned nogood excludes no solution"
    ~count:300 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let learned = ref [] in
      let comp = Network.compile net in
      let r =
        Cdl.solve_compiled
          ~config:
            { Cdl.default_config with Cdl.restarts = 10; restart_base = 2 }
          ~on_learn:(fun ~dead:_ lits -> learned := lits :: !learned)
          comp
      in
      (match r.Solver.outcome with
      | Solver.Aborted -> QCheck.Test.fail_report "aborted without budget"
      | _ -> ());
      let solutions = Brute.all_solutions net in
      List.for_all
        (fun lits ->
          List.for_all
            (fun sol ->
              let held = Array.for_all (fun (v, w) -> sol.(v) = w) lits in
              if held then
                QCheck.Test.fail_reportf
                  "a satisfying assignment holds all %d literals of a \
                   learned nogood"
                  (Array.length lits);
              true)
            solutions)
        !learned)

(* Unit-ban soundness across forgetting: single-literal nogoods become
   permanent per-variable bans that survive every reduce and restart, so
   a wrong one silently poisons the whole remaining search.  Run the
   engine with aggressive forgetting (store limit 2) and restarting,
   collect every unit nogood it commits to, and demand that the
   brute-forced solution set of the original network never contradicts a
   ban — and that the bans are indeed still held by a store squeezed
   down to its minimum. *)
let prop_unit_bans_sound =
  QCheck.Test.make
    ~name:"unit bans retained across forgetting exclude no solution"
    ~count:300 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let comp = Network.compile net in
      let units = ref [] in
      let config =
        { Cdl.default_config with
          Cdl.restarts = 10;
          restart_base = 1;
          learn_limit = 2 }
      in
      let r =
        Cdl.solve_compiled ~config
          ~on_learn:(fun ~dead:_ lits ->
            if Array.length lits = 1 then units := lits.(0) :: !units)
          comp
      in
      (match r.Solver.outcome with
      | Solver.Aborted -> QCheck.Test.fail_report "aborted without budget"
      | _ -> ());
      let solutions = Brute.all_solutions net in
      List.iter
        (fun (v, w) ->
          List.iter
            (fun sol ->
              if sol.(v) = w then
                QCheck.Test.fail_reportf
                  "unit ban v%d<>%d excludes a satisfying assignment" v w)
            solutions)
        !units;
      (* store-level retention: replay the same bans through a store that
         is then forgotten down to nothing — [banned] must still hold. *)
      let store = Nogood.create ~limit:2 comp in
      List.iter
        (fun (v, w) -> Nogood.ban store ~var:v ~value:w)
        !units;
      Nogood.reduce store ~limit:2;
      List.for_all (fun (v, w) -> Nogood.banned store v w) !units)

(* Restart and forgetting bookkeeping: restarts never exceed the
   configured cap, learned counts what on_learn saw, and the learned /
   forgotten counters are consistent. *)
let prop_restart_stats =
  QCheck.Test.make ~name:"restart/learn/forget counters are consistent"
    ~count:300 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let config =
        { Cdl.default_config with Cdl.restarts = 5; restart_base = 1;
          learn_limit = 4 }
      in
      let seen = ref 0 in
      let r =
        Cdl.solve_compiled ~config
          ~on_learn:(fun ~dead:_ _ -> incr seen)
          (Network.compile net)
      in
      let s = r.Solver.stats in
      s.Stats.restarts <= config.Cdl.restarts
      && s.Stats.learned = !seen
      && s.Stats.forgotten <= s.Stats.learned
      && s.Stats.forgotten >= 0)

(* The store bound is a hard invariant: however many nogoods are learned
   and whatever sizes they have, [Nogood.size] never exceeds the limit
   (driven directly through the store API, with learn bursts well past
   the cap). *)
let prop_store_bounded =
  QCheck.Test.make ~name:"nogood store never exceeds its limit" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 777) in
      let net = random_network seed in
      let comp = Network.compile net in
      let n = Network.num_vars net in
      let limit = 1 + Rng.int rng 6 in
      let store = Nogood.create ~limit comp in
      for _ = 1 to 200 do
        (* a random nogood over distinct variables at distinct levels *)
        let k = 1 + Rng.int rng n in
        let perm = Rng.shuffled_init rng n in
        let vars = Array.sub perm 0 k in
        let vals =
          Array.map (fun v -> Rng.int rng (Network.domain_size net v)) vars
        in
        let levels = Array.init k Fun.id in
        Nogood.learn store ~n:k ~vars ~vals ~levels;
        if Nogood.size store > max 2 limit then
          QCheck.Test.fail_reportf "store grew to %d (limit %d)"
            (Nogood.size store) limit
      done;
      Nogood.reduce store ~limit:1;
      Nogood.size store <= 1)

(* Clearer variant of the accounting identity: watched nogoods currently
   stored + forgotten = learned - bans, tracked explicitly. *)
let prop_store_accounting =
  QCheck.Test.make ~name:"learned = stored + forgotten + bans" ~count:100
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 1234) in
      let net = random_network seed in
      let comp = Network.compile net in
      let n = Network.num_vars net in
      let store = Nogood.create ~limit:3 comp in
      let bans = ref 0 in
      let dup_bans = ref 0 in
      let seen_bans = Hashtbl.create 16 in
      for _ = 1 to 100 do
        let k = 1 + Rng.int rng n in
        let perm = Rng.shuffled_init rng n in
        let vars = Array.sub perm 0 k in
        let vals =
          Array.map (fun v -> Rng.int rng (Network.domain_size net v)) vars
        in
        let levels = Array.init k Fun.id in
        if k = 1 then begin
          incr bans;
          let key = (vars.(0), vals.(0)) in
          if Hashtbl.mem seen_bans key then incr dup_bans
          else Hashtbl.add seen_bans key ()
        end;
        Nogood.learn store ~n:k ~vars ~vals ~levels
      done;
      Nogood.learned store
      = Nogood.size store + Nogood.forgotten store + !bans - !dup_bans)

let () =
  Alcotest.run "cdl"
    [
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest prop_cdl_agrees;
          QCheck_alcotest.to_alcotest prop_nogoods_sound;
          QCheck_alcotest.to_alcotest prop_unit_bans_sound;
        ] );
      ( "store",
        [
          QCheck_alcotest.to_alcotest prop_restart_stats;
          QCheck_alcotest.to_alcotest prop_store_bounded;
          QCheck_alcotest.to_alcotest prop_store_accounting;
        ] );
    ]
