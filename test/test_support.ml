(* Support-layer hardening: Stats arithmetic and JSON export, the
   monotonic clock, and idempotence of arc-consistency preprocessing. *)

module Stats = Mlo_csp.Stats
module Clock = Mlo_csp.Clock
module Network = Mlo_csp.Network
module Propagate = Mlo_csp.Propagate
module Bitset = Mlo_csp.Bitset
module Rng = Mlo_csp.Rng
module Json = Mlo_obs.Json

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let stats_gen =
  QCheck.Gen.(
    let nat = int_bound 10_000 in
    let hist = array_size (int_bound 6) nat in
    map
      (fun (((n, c, bt), (bj, pr, d)), (hd, hv)) ->
        let s = Stats.create () in
        s.Stats.nodes <- n;
        s.Stats.checks <- c;
        s.Stats.backtracks <- bt;
        s.Stats.backjumps <- bj;
        s.Stats.prunings <- pr;
        s.Stats.max_depth <- d;
        s.Stats.elapsed_s <- float_of_int n /. 7.;
        s.Stats.cpu_s <- float_of_int c /. 11.;
        s.Stats.nodes_by_depth <- hd;
        s.Stats.nodes_by_var <- hv;
        s)
      (pair (pair (triple nat nat nat) (triple nat nat nat)) (pair hist hist)))

let arbitrary_stats = QCheck.make ~print:(Fmt.to_to_string Stats.pp) stats_gen

let hist_at a i = if i < Array.length a then a.(i) else 0

let prop_add_componentwise =
  QCheck.Test.make ~name:"Stats.add sums componentwise" ~count:200
    (QCheck.pair arbitrary_stats arbitrary_stats) (fun (a, b) ->
      let s = Stats.add a b in
      s.Stats.nodes = a.Stats.nodes + b.Stats.nodes
      && s.Stats.checks = a.Stats.checks + b.Stats.checks
      && s.Stats.backtracks = a.Stats.backtracks + b.Stats.backtracks
      && s.Stats.backjumps = a.Stats.backjumps + b.Stats.backjumps
      && s.Stats.prunings = a.Stats.prunings + b.Stats.prunings
      && s.Stats.max_depth = max a.Stats.max_depth b.Stats.max_depth
      && Array.length s.Stats.nodes_by_depth
         = max
             (Array.length a.Stats.nodes_by_depth)
             (Array.length b.Stats.nodes_by_depth)
      && List.for_all
           (fun i ->
             hist_at s.Stats.nodes_by_depth i
             = hist_at a.Stats.nodes_by_depth i
               + hist_at b.Stats.nodes_by_depth i
             && hist_at s.Stats.nodes_by_var i
                = hist_at a.Stats.nodes_by_var i
                  + hist_at b.Stats.nodes_by_var i)
           (List.init 8 Fun.id))

let prop_add_zero_identity =
  QCheck.Test.make ~name:"Stats.add with a fresh stats is the identity"
    ~count:200 arbitrary_stats (fun a ->
      let s = Stats.add a (Stats.create ()) in
      Stats.to_json s = Stats.to_json a)

let prop_reset_is_fresh =
  QCheck.Test.make ~name:"Stats.reset round-trips to create" ~count:200
    arbitrary_stats (fun a ->
      Stats.reset a;
      Stats.to_json a = Stats.to_json (Stats.create ()))

let test_ensure_hists () =
  let s = Stats.create () in
  Stats.ensure_hists s 4;
  Alcotest.(check int) "sized" 4 (Array.length s.Stats.nodes_by_depth);
  s.Stats.nodes_by_depth.(3) <- 9;
  Stats.ensure_hists s 2;
  Alcotest.(check int) "never shrinks" 4 (Array.length s.Stats.nodes_by_depth);
  Stats.ensure_hists s 6;
  Alcotest.(check int) "grows" 6 (Array.length s.Stats.nodes_by_depth);
  Alcotest.(check int) "growth preserves contents" 9
    s.Stats.nodes_by_depth.(3);
  Alcotest.(check int) "new slots are zero" 0 s.Stats.nodes_by_depth.(5)

let test_to_json_shape () =
  let s = Stats.create () in
  s.Stats.nodes <- 12;
  s.Stats.checks <- 34;
  s.Stats.nodes_by_depth <- [| 5; 7 |];
  let j = Stats.to_json s in
  let num key =
    match Option.bind (Json.member key j) Json.to_float with
    | Some f -> f
    | None -> Alcotest.failf "missing numeric field %s" key
  in
  List.iter
    (fun (key, v) -> Alcotest.(check (float 0.)) key v (num key))
    [
      ("nodes", 12.); ("checks", 34.); ("backtracks", 0.); ("backjumps", 0.);
      ("prunings", 0.); ("max_depth", 0.); ("elapsed_s", 0.); ("cpu_s", 0.);
    ];
  (match Option.bind (Json.member "nodes_by_depth" j) Json.to_list with
  | Some [ Json.Num 5.; Json.Num 7. ] -> ()
  | _ -> Alcotest.fail "nodes_by_depth should be the array [5,7]");
  (* the export is valid JSON and survives a parse round-trip *)
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "round-trip" true (j = j')
  | Error e -> Alcotest.failf "Stats.to_json did not parse: %s" e

(* ------------------------------------------------------------------ *)
(* Clock                                                                *)
(* ------------------------------------------------------------------ *)

let test_clock_monotone () =
  let prev = ref (Clock.wall_ns ()) in
  for _ = 1 to 1000 do
    let now = Clock.wall_ns () in
    if now < !prev then Alcotest.fail "wall_ns went backwards";
    prev := now
  done;
  let t0 = Clock.wall_s () in
  let c0 = Clock.cpu_s () in
  (* burn a little CPU so both clocks must advance *)
  let acc = ref 0 in
  for i = 1 to 2_000_000 do
    acc := !acc + i
  done;
  ignore (Sys.opaque_identity !acc);
  Alcotest.(check bool) "wall_s advanced" true (Clock.wall_s () > t0);
  Alcotest.(check bool) "cpu_s advanced" true (Clock.cpu_s () > c0)

(* ------------------------------------------------------------------ *)
(* AC idempotence                                                       *)
(* ------------------------------------------------------------------ *)

(* Same generator family as test_compiled / test_schemes. *)
let random_network seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains =
    Array.init n (fun _ -> Array.init (1 + Rng.int rng 3) Fun.id)
  in
  let net = Network.create ~names ~domains in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.int rng 100 < 60 then begin
        let pairs = ref [] in
        for vi = 0 to Array.length domains.(i) - 1 do
          for vj = 0 to Array.length domains.(j) - 1 do
            if Rng.int rng 100 < 55 then pairs := (vi, vj) :: !pairs
          done
        done;
        Network.add_allowed net i j !pairs
      end
    done
  done;
  net

(* ac(ac(n)) = ac(n): restricting a network to its arc-consistent
   domains and re-running arc consistency must remove nothing more. *)
let prop_ac_idempotent name ac =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s is idempotent" name)
    ~count:300 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      match ac net with
      | Propagate.Wiped _ -> true
      | Propagate.Reduced doms ->
        let net' = Propagate.restrict net doms in
        (match ac net' with
        | Propagate.Wiped v ->
          QCheck.Test.fail_reportf
            "second pass wiped variable %d of an already-consistent network"
            v
        | Propagate.Reduced doms' ->
          List.for_all
            (fun i ->
              Bitset.count doms'.(i) = Network.domain_size net' i)
            (List.init (Network.num_vars net') Fun.id)))

let () =
  Alcotest.run "support"
    [
      ( "stats",
        [
          QCheck_alcotest.to_alcotest prop_add_componentwise;
          QCheck_alcotest.to_alcotest prop_add_zero_identity;
          QCheck_alcotest.to_alcotest prop_reset_is_fresh;
          Alcotest.test_case "ensure_hists" `Quick test_ensure_hists;
          Alcotest.test_case "to_json shape" `Quick test_to_json_shape;
        ] );
      ("clock", [ Alcotest.test_case "monotone" `Quick test_clock_monotone ]);
      ( "arc-consistency",
        [
          QCheck_alcotest.to_alcotest
            (prop_ac_idempotent "AC-3" Propagate.ac3);
          QCheck_alcotest.to_alcotest
            (prop_ac_idempotent "AC-2001" Propagate.ac2001);
        ] );
    ]
