(* Tests for the textual loop-nest language: lexer, parser, printer, and
   the parse/print round-trip. *)

module Lexer = Mlo_lang.Lexer
module Parser = Mlo_lang.Parser
module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Loop_nest = Mlo_ir.Loop_nest
module Access = Mlo_ir.Access
module Affine = Mlo_ir.Affine

let fig2_source =
  {|
# the paper's Figure 2
array Q1[127][64]
array Q2[127][64]

nest fig2:
  for i1 = 0 .. 63
    for i2 = 0 .. 63
      load Q1[i1+i2][i2]
      load Q2[i1+i2][i1]
|}

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

let token_list src =
  List.map (fun t -> t.Lexer.token) (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "token count" 8
    (List.length (token_list "array A[4] elem 8"));
  (match token_list "for i = 0 .. 63" with
  | [ Lexer.Kw_for; Lexer.Ident "i"; Lexer.Equals; Lexer.Int 0; Lexer.Dotdot;
      Lexer.Int 63; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "unexpected tokens");
  match token_list "2*i - j" with
  | [ Lexer.Int 2; Lexer.Star; Lexer.Ident "i"; Lexer.Minus; Lexer.Ident "j";
      Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "unexpected arithmetic tokens"

let test_lexer_comments_and_positions () =
  let toks = Lexer.tokenize "# all comment\n  nest" in
  (match toks with
  | [ { Lexer.token = Lexer.Kw_nest; line = 2; col = 3 }; { Lexer.token = Lexer.Eof; _ } ] -> ()
  | _ -> Alcotest.fail "comment not skipped or position wrong");
  Alcotest.(check int) "only eof in pure comment" 1
    (List.length (Lexer.tokenize "# nothing here"))

let test_lexer_errors () =
  (try
     ignore (Lexer.tokenize "a ? b");
     Alcotest.fail "expected lexer error"
   with Lexer.Error (msg, 1, 3) ->
     Alcotest.(check bool) "mentions char" true
       (String.length msg > 0));
  try
    ignore (Lexer.tokenize "a . b");
    Alcotest.fail "expected dotdot error"
  with Lexer.Error (_, 1, 3) -> ()

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

let test_parse_fig2 () =
  let prog = Parser.parse ~name:"fig2" fig2_source in
  Alcotest.(check (list string)) "arrays" [ "Q1"; "Q2" ] (Program.array_names prog);
  let nest = (Program.nests prog).(0) in
  Alcotest.(check int) "depth" 2 (Loop_nest.depth nest);
  Alcotest.(check int) "trip count (inclusive bounds)" (64 * 64)
    (Loop_nest.trip_count nest);
  let q1 = (Loop_nest.accesses nest).(0) in
  Alcotest.(check string) "array" "Q1" (Access.array_name q1);
  (* Q1[i1+i2][i2]: the access matrix of the paper *)
  Alcotest.(check bool) "matrix" true
    (Mlo_linalg.Intmat.equal (Access.matrix q1)
       (Mlo_linalg.Intmat.of_lists [ [ 1; 1 ]; [ 0; 1 ] ]))

let test_parse_expressions () =
  let prog =
    Parser.parse ~name:"t"
      {|
array A[200]
nest n:
  for i = 0 .. 9
    load A[3*i - 2]
    store A[-i + 19]
|}
  in
  let nest = (Program.nests prog).(0) in
  let a0 = (Loop_nest.accesses nest).(0) in
  let a1 = (Loop_nest.accesses nest).(1) in
  Alcotest.(check bool) "3*i - 2" true
    (Affine.equal a0.Access.indices.(0) (Affine.make [ 3 ] (-2)));
  Alcotest.(check bool) "-i + 19" true
    (Affine.equal a1.Access.indices.(0) (Affine.make [ -1 ] 19));
  Alcotest.(check bool) "store" true (Access.is_write a1)

let test_parse_elem_size () =
  let prog =
    Parser.parse ~name:"t"
      "array A[4][4] elem 8\nnest n:\n for i = 0 .. 3\n  for j = 0 .. 3\n   load A[i][j]"
  in
  Alcotest.(check int) "elem size" 8
    (Array_info.elem_size (Program.find_array prog "A"))

let test_parse_nonzero_lower_bound () =
  let prog =
    Parser.parse ~name:"t"
      "array A[10]\nnest n:\n for i = 2 .. 8\n  load A[i]"
  in
  let nest = (Program.nests prog).(0) in
  Alcotest.(check int) "trips" 7 (Loop_nest.trip_count nest)

(* Str is not a dependency; do the substring search by hand. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_error src expected_line expected_fragment =
  match Parser.parse ~name:"t" src with
  | _ -> Alcotest.failf "expected parse error for %S" src
  | exception Parser.Error (msg, line, _col) ->
    Alcotest.(check int) ("line of error in " ^ src) expected_line line;
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" msg expected_fragment)
      true
      (contains msg expected_fragment)

let test_parse_errors () =
  check_error "array A[4]\nnest n:\n for i = 0 .. 3\n  load A[k]" 4
    "unknown loop variable k";
  check_error "array A[4]\nnest n:\n for i = 0 .. 3\n  load B[i]" 0
    "undeclared array B";
  check_error "nest n:\n for i = 0 .. 3\n  load A[i]" 0 "undeclared";
  check_error "array A[4]\nnest n:\n for i = 0 .. 3" 3 "expected";
  check_error "array A[]\nnest n:\n for i = 0 .. 3\n  load A[i]" 1 "expected integer";
  check_error "array A[4][4]\nnest n:\n for i = 0 .. 3\n  load A[i]" 0 "rank"

let test_parse_duplicate_loop_var () =
  check_error
    "array A[4][4]\nnest n:\n for i = 0 .. 3\n  for i = 0 .. 3\n   load A[i][i]"
    2 "duplicate"

(* ------------------------------------------------------------------ *)
(* Round trip                                                           *)
(* ------------------------------------------------------------------ *)

let program_equal p1 p2 =
  Program.name p1 = Program.name p2
  && Array.for_all2 Array_info.equal (Program.arrays p1) (Program.arrays p2)
  && Array.length (Program.nests p1) = Array.length (Program.nests p2)
  && Array.for_all2 Loop_nest.equal (Program.nests p1) (Program.nests p2)

let test_roundtrip_fig2 () =
  let prog = Parser.parse ~name:"fig2" fig2_source in
  let printed = Parser.to_source prog in
  let reparsed = Parser.parse ~name:"fig2" printed in
  Alcotest.(check bool) "round trip" true (program_equal prog reparsed)

let test_roundtrip_workloads () =
  (* every benchmark program survives print-then-parse *)
  List.iter
    (fun spec ->
      let prog = spec.Mlo_workloads.Spec.program in
      let printed = Parser.to_source prog in
      let reparsed = Parser.parse ~name:(Program.name prog) printed in
      Alcotest.(check bool)
        (spec.Mlo_workloads.Spec.name ^ " round trips")
        true (program_equal prog reparsed))
    (Mlo_workloads.Suite.all ())

let prop_roundtrip_generated =
  QCheck.Test.make ~name:"generated programs survive print-then-parse"
    ~count:40 QCheck.small_nat (fun seed ->
      let params =
        {
          Mlo_workloads.Random_program.default with
          Mlo_workloads.Random_program.seed;
          num_arrays = 6;
          num_nests = 8;
          extent = 16;
          sim_extent = 16;
        }
      in
      let prog = Mlo_workloads.Random_program.generate params in
      let reparsed =
        Parser.parse ~name:(Program.name prog) (Parser.to_source prog)
      in
      program_equal prog reparsed)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "comments and positions" `Quick
            test_lexer_comments_and_positions;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "figure 2" `Quick test_parse_fig2;
          Alcotest.test_case "expressions" `Quick test_parse_expressions;
          Alcotest.test_case "elem size" `Quick test_parse_elem_size;
          Alcotest.test_case "nonzero lower bound" `Quick
            test_parse_nonzero_lower_bound;
          Alcotest.test_case "errors carry positions" `Quick test_parse_errors;
          Alcotest.test_case "duplicate loop variable" `Quick
            test_parse_duplicate_loop_var;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "figure 2" `Quick test_roundtrip_fig2;
          Alcotest.test_case "benchmark suite" `Quick test_roundtrip_workloads;
          QCheck_alcotest.to_alcotest prop_roundtrip_generated;
        ] );
    ]
