(* Tests for the propagation heuristic (the paper's comparison baseline). *)

module B = Mlo_ir.Builder
module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Layout = Mlo_layout.Layout
module Propagation = Mlo_heuristic.Propagation

let layout = Alcotest.testable Layout.pp Layout.equal

(* A program with two nests over the same arrays: the costly one reads
   them column-wise, the cheap one row-wise.  The heuristic must satisfy
   the costly nest. *)
let two_nest_program ~costly_first ~n =
  let colwise =
    let x = B.ctx [ "j"; "i" ] in
    let j = B.var x "j" and i = B.var x "i" in
    B.nest "colwise" x [ n; n ] [ B.read "X" [ i; j ]; B.write "Y" [ i; j ] ]
  in
  let rowwise =
    let x = B.ctx [ "i"; "j" ] in
    let i = B.var x "i" and j = B.var x "j" in
    B.nest "rowwise" x [ n / 4; n / 4 ]
      [ B.read "X" [ i; j ]; B.write "Y" [ i; j ] ]
  in
  let nests = if costly_first then [ colwise; rowwise ] else [ rowwise; colwise ] in
  Program.make ~name:"two-nest"
    [ Array_info.make "X" [ n; n ]; Array_info.make "Y" [ n; n ] ]
    nests

let test_heuristic_prioritizes_costly_nest () =
  (* regardless of program order, the costly column-wise nest is ranked
     first... but loop restructuring lets the nest adapt instead: the
     heuristic may interchange the colwise nest and keep row-major.
     What must hold: both arrays get the same layout (both nests access
     X and Y identically), and all arrays are assigned. *)
  List.iter
    (fun costly_first ->
      let prog = two_nest_program ~costly_first ~n:64 in
      let r = Propagation.optimize prog in
      Alcotest.(check int) "all arrays assigned" 2
        (List.length r.Propagation.layouts);
      let x = Propagation.lookup r "X" and y = Propagation.lookup r "Y" in
      (match (x, y) with
      | Some lx, Some ly ->
        Alcotest.check layout "X and Y agree" lx ly
      | _ -> Alcotest.fail "layouts missing");
      Alcotest.(check bool) "evaluations counted" true
        (r.Propagation.evaluations > 0))
    [ true; false ]

let test_heuristic_ranks_by_cost () =
  let prog = two_nest_program ~costly_first:false ~n:64 in
  let r = Propagation.optimize prog in
  (* nest 1 (colwise, 64x64) outranks nest 0 (rowwise, 16x16) *)
  Alcotest.(check (list int)) "importance order" [ 1; 0 ] r.Propagation.nest_order

let test_heuristic_fixed_layouts_propagate () =
  (* three nests: the most expensive wants X column-major; a middle one
     wants X row-major (loses); a third touches only Z *)
  let big =
    let x = B.ctx [ "j"; "i" ] in
    let j = B.var x "j" and i = B.var x "i" in
    B.nest "big" x [ 64; 64 ] [ B.read "X" [ i; j ]; B.write "X" [ i; j ] ]
  in
  let mid =
    let x = B.ctx [ "i"; "j" ] in
    let i = B.var x "i" and j = B.var x "j" in
    (* reads X along rows AND brings in Z: Z's layout is decided here *)
    B.nest "mid" x [ 16; 16 ] [ B.read "X" [ i; j ]; B.write "Z" [ j; i ] ]
  in
  let prog =
    Program.make ~name:"three"
      [ Array_info.make "X" [ 64; 64 ]; Array_info.make "Z" [ 64; 64 ] ]
      [ mid; big ]
  in
  let r = Propagation.optimize prog in
  (* X is fixed by the big nest (possibly adapted by loop interchange);
     Z must also have been assigned by the mid nest *)
  Alcotest.(check bool) "X assigned" true (Propagation.lookup r "X" <> None);
  Alcotest.(check bool) "Z assigned" true (Propagation.lookup r "Z" <> None)

let test_heuristic_defaults_unconstrained () =
  (* array touched only temporally: defaults to row-major *)
  let x = B.ctx [ "i"; "j" ] in
  let i = B.var x "i" in
  let nest = B.nest "t" x [ 8; 8 ] [ B.read "W" [ i; i ] ] in
  let prog = Program.make ~name:"w" [ Array_info.make "W" [ 8; 8 ] ] [ nest ] in
  let r = Propagation.optimize prog in
  Alcotest.(check (option layout)) "row-major default"
    (Some (Layout.row_major 2))
    (Propagation.lookup r "W")

let test_heuristic_one_d_arrays () =
  let x = B.ctx [ "i"; "j" ] in
  let i = B.var x "i" and j = B.var x "j" in
  let nest = B.nest "r" x [ 8; 8 ] [ B.read "V" [ j ]; B.write "M" [ i; j ] ] in
  let prog =
    Program.make ~name:"v"
      [ Array_info.make "V" [ 8 ]; Array_info.make "M" [ 8; 8 ] ]
      [ nest ]
  in
  let r = Propagation.optimize prog in
  Alcotest.(check (option layout)) "1-D trivial" (Some Layout.trivial)
    (Propagation.lookup r "V")

let prop_heuristic_total =
  QCheck.Test.make ~name:"heuristic assigns every array a layout of its rank"
    ~count:60 QCheck.small_nat (fun seed ->
      let params =
        {
          Mlo_workloads.Random_program.default with
          Mlo_workloads.Random_program.seed;
          num_arrays = 6;
          num_nests = 8;
          extent = 10;
          sim_extent = 10;
        }
      in
      let prog = Mlo_workloads.Random_program.generate params in
      let r = Propagation.optimize prog in
      Array.for_all
        (fun info ->
          match Propagation.lookup r (Array_info.name info) with
          | Some l -> Layout.rank l = Array_info.rank info
          | None -> false)
        (Program.arrays prog))

let () =
  Alcotest.run "heuristic"
    [
      ( "propagation",
        [
          Alcotest.test_case "prioritizes costly nests" `Quick
            test_heuristic_prioritizes_costly_nest;
          Alcotest.test_case "ranks by cost" `Quick test_heuristic_ranks_by_cost;
          Alcotest.test_case "propagates fixed layouts" `Quick
            test_heuristic_fixed_layouts_propagate;
          Alcotest.test_case "defaults for unconstrained arrays" `Quick
            test_heuristic_defaults_unconstrained;
          Alcotest.test_case "1-D arrays" `Quick test_heuristic_one_d_arrays;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_heuristic_total ] );
    ]
