(* Tests for hyperplane layouts, locality derivation and data
   transformations. *)

module Intvec = Mlo_linalg.Intvec
module Intmat = Mlo_linalg.Intmat
module Hyperplane = Mlo_layout.Hyperplane
module Layout = Mlo_layout.Layout
module Locality = Mlo_layout.Locality
module Transform = Mlo_layout.Transform
module Affine = Mlo_ir.Affine
module Access = Mlo_ir.Access

let vec = Alcotest.testable (Fmt.of_to_string Intvec.to_string) Intvec.equal
let layout = Alcotest.testable Layout.pp Layout.equal

(* ------------------------------------------------------------------ *)
(* Hyperplane                                                           *)
(* ------------------------------------------------------------------ *)

let test_hyperplane_canonical () =
  Alcotest.(check bool) "scaling collapses" true
    (Hyperplane.equal (Hyperplane.of_list [ 2; -2 ]) (Hyperplane.of_list [ 1; -1 ]));
  Alcotest.(check bool) "negation collapses" true
    (Hyperplane.equal (Hyperplane.of_list [ -1; 1 ]) (Hyperplane.of_list [ 1; -1 ]));
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Hyperplane.make: zero vector") (fun () ->
      ignore (Hyperplane.of_list [ 0; 0 ]))

let test_hyperplane_membership () =
  (* the paper's example: (5 3) and (7 5) share the diagonal (1 -1);
     (5 3) and (5 4) do not *)
  let d = Hyperplane.diagonal 2 in
  Alcotest.(check bool) "same diagonal" true
    (Hyperplane.same_member d [| 5; 3 |] [| 7; 5 |]);
  Alcotest.(check bool) "different diagonals" false
    (Hyperplane.same_member d [| 5; 3 |] [| 5; 4 |]);
  Alcotest.(check int) "constant" 2 (Hyperplane.constant_of d [| 5; 3 |])

let test_hyperplane_row_col () =
  let r = Hyperplane.row_major 2 in
  Alcotest.(check bool) "same row" true (Hyperplane.same_member r [| 3; 0 |] [| 3; 9 |]);
  Alcotest.(check bool) "different rows" false
    (Hyperplane.same_member r [| 3; 0 |] [| 4; 0 |]);
  Alcotest.(check string) "describe row" "row-major" (Hyperplane.describe r);
  Alcotest.(check string) "describe col" "column-major"
    (Hyperplane.describe (Hyperplane.col_major 2));
  Alcotest.(check string) "describe diag" "diagonal"
    (Hyperplane.describe (Hyperplane.diagonal 2));
  Alcotest.(check string) "describe other" "(1 2)"
    (Hyperplane.describe (Hyperplane.of_list [ 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* Layout                                                               *)
(* ------------------------------------------------------------------ *)

let test_layout_structure () =
  let l = Layout.row_major 3 in
  Alcotest.(check int) "rank" 3 (Layout.rank l);
  Alcotest.(check int) "k-1 hyperplanes" 2 (List.length (Layout.hyperplanes l));
  (* paper: 3-D column-major = hyperplanes (0 0 1) and (0 1 0) *)
  let c = Layout.col_major 3 in
  (match Layout.hyperplanes c with
  | [ y1; y2 ] ->
    Alcotest.check vec "Y1" [| 0; 0; 1 |] (Hyperplane.to_vec y1);
    Alcotest.check vec "Y2" [| 0; 1; 0 |] (Hyperplane.to_vec y2)
  | _ -> Alcotest.fail "expected two hyperplanes");
  Alcotest.(check int) "trivial rank" 1 (Layout.rank Layout.trivial)

let test_layout_validation () =
  Alcotest.check_raises "wrong count"
    (Invalid_argument "Layout.make: rank 3 needs 2 hyperplanes, got 1")
    (fun () -> ignore (Layout.make ~rank:3 [ Hyperplane.row_major 3 ]));
  Alcotest.check_raises "dependent"
    (Invalid_argument "Layout.make: hyperplanes linearly dependent") (fun () ->
      ignore
        (Layout.make ~rank:3
           [ Hyperplane.of_list [ 1; 1; 0 ]; Hyperplane.of_list [ 2; 2; 0 ] ]))

let test_layout_colocated () =
  (* 3-D column-major: elements sharing all but the first index are
     colocated *)
  let c = Layout.col_major 3 in
  Alcotest.(check bool) "same column" true
    (Layout.colocated c [| 0; 2; 3 |] [| 9; 2; 3 |]);
  Alcotest.(check bool) "different column" false
    (Layout.colocated c [| 0; 2; 3 |] [| 0; 3; 3 |])

let test_layout_serves () =
  Alcotest.(check bool) "row-major serves row walk" true
    (Layout.serves (Layout.row_major 2) [| 0; 1 |]);
  Alcotest.(check bool) "row-major fails column walk" false
    (Layout.serves (Layout.row_major 2) [| 1; 0 |]);
  Alcotest.(check bool) "diagonal serves diagonal walk" true
    (Layout.serves Layout.diagonal2 [| 1; 1 |]);
  Alcotest.(check bool) "temporal served by anything" true
    (Layout.serves Layout.diagonal2 [| 0; 0 |])

(* ------------------------------------------------------------------ *)
(* Locality                                                             *)
(* ------------------------------------------------------------------ *)

let fig2_q1 () =
  Access.read "Q1" [ Affine.make [ 1; 1 ] 0; Affine.make [ 0; 1 ] 0 ]

let fig2_q2 () =
  Access.read "Q2" [ Affine.make [ 1; 1 ] 0; Affine.make [ 1; 0 ] 0 ]

let test_locality_paper_example () =
  (* the paper's Section 2 result: Q1 wants (1 -1), Q2 wants (0 1) *)
  (match Locality.preferred_layout (fig2_q1 ()) with
  | Some l -> Alcotest.check layout "Q1 diagonal" Layout.diagonal2 l
  | None -> Alcotest.fail "Q1 should be constrained");
  match Locality.preferred_layout (fig2_q2 ()) with
  | Some l ->
    Alcotest.check layout "Q2 column-major" (Layout.col_major 2) l
  | None -> Alcotest.fail "Q2 should be constrained"

let test_locality_interchanged () =
  (* the paper: after interchanging the two loops, Q1 wants (0 1) and Q2
     wants (1 -1) *)
  let perm = [| 1; 0 |] in
  let q1 = Access.permute perm (fig2_q1 ()) in
  let q2 = Access.permute perm (fig2_q2 ()) in
  (match Locality.preferred_layout q1 with
  | Some l -> Alcotest.check layout "Q1 column-major" (Layout.col_major 2) l
  | None -> Alcotest.fail "constrained");
  match Locality.preferred_layout q2 with
  | Some l -> Alcotest.check layout "Q2 diagonal" Layout.diagonal2 l
  | None -> Alcotest.fail "constrained"

let test_locality_temporal () =
  (* A[i][i] in an (i, j) nest: innermost j never moves the element *)
  let a = Access.read "A" [ Affine.make [ 1; 0 ] 0; Affine.make [ 1; 0 ] 0 ] in
  Alcotest.(check (option layout)) "temporal -> None" None
    (Locality.preferred_layout a);
  Alcotest.(check int) "temporal scores 5" 5 (Locality.score Layout.diagonal2 a)

let test_locality_scores () =
  let q1 = fig2_q1 () in
  Alcotest.(check int) "serving layout scores 4" 4
    (Locality.score Layout.diagonal2 q1);
  Alcotest.(check int) "non-serving layout scores 0" 0
    (Locality.score (Layout.row_major 2) q1)

let test_candidate_layouts () =
  let q1 = fig2_q1 () and q2 = fig2_q2 () in
  let cands = Locality.candidate_layouts ~rank:2 [ q1; q2 ] in
  Alcotest.(check bool) "contains diagonal" true
    (List.exists (Layout.equal Layout.diagonal2) cands);
  Alcotest.(check bool) "contains column-major" true
    (List.exists (Layout.equal (Layout.col_major 2)) cands);
  Alcotest.(check bool) "contains row-major default" true
    (List.exists (Layout.equal (Layout.row_major 2)) cands);
  (* dedup: same access twice adds nothing *)
  Alcotest.(check int) "dedup" (List.length cands)
    (List.length (Locality.candidate_layouts ~rank:2 [ q1; q1; q2 ]))

(* ------------------------------------------------------------------ *)
(* Transform                                                            *)
(* ------------------------------------------------------------------ *)

let test_transform_identity () =
  let t = Transform.identity ~extents:[| 4; 6 |] in
  Alcotest.(check int) "footprint" 24 (Transform.footprint_cells t);
  Alcotest.(check (float 1e-9)) "no expansion" 1.0 (Transform.expansion t);
  (* row-major linearization *)
  Alcotest.(check int) "cell (0,0)" 0 (Transform.cell_index t [| 0; 0 |]);
  Alcotest.(check int) "cell (0,1)" 1 (Transform.cell_index t [| 0; 1 |]);
  Alcotest.(check int) "cell (1,0)" 6 (Transform.cell_index t [| 1; 0 |])

let test_transform_col_major () =
  let t = Transform.make (Layout.col_major 2) ~extents:[| 4; 6 |] in
  Alcotest.(check int) "footprint" 24 (Transform.footprint_cells t);
  (* same column -> consecutive cells *)
  let a = Transform.cell_index t [| 0; 0 |] in
  let b = Transform.cell_index t [| 1; 0 |] in
  Alcotest.(check int) "column neighbours adjacent" 1 (abs (a - b));
  let c = Transform.cell_index t [| 0; 1 |] in
  Alcotest.(check bool) "row neighbours far" true (abs (a - c) >= 4)

let test_transform_diagonal () =
  let t = Transform.make Layout.diagonal2 ~extents:[| 5; 5 |] in
  (* elements on one diagonal are contiguous *)
  let a = Transform.cell_index t [| 1; 1 |] in
  let b = Transform.cell_index t [| 2; 2 |] in
  Alcotest.(check int) "diagonal neighbours adjacent" 1 (abs (a - b));
  (* the bounding box of a sheared square doubles (paper footnote 2) *)
  Alcotest.(check bool) "expansion cost" true (Transform.expansion t > 1.0)

let test_transform_injective () =
  let layouts =
    [ Layout.row_major 2; Layout.col_major 2; Layout.diagonal2; Layout.anti_diagonal2 ]
  in
  List.iter
    (fun l ->
      let t = Transform.make l ~extents:[| 7; 5 |] in
      let seen = Hashtbl.create 64 in
      for i = 0 to 6 do
        for j = 0 to 4 do
          let c = Transform.cell_index t [| i; j |] in
          Alcotest.(check bool)
            (Printf.sprintf "%s cell in range" (Layout.describe l))
            true
            (c >= 0 && c < Transform.footprint_cells t);
          Alcotest.(check bool)
            (Printf.sprintf "%s injective" (Layout.describe l))
            false (Hashtbl.mem seen c);
          Hashtbl.add seen c ()
        done
      done)
    layouts

let test_transform_validation () =
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Transform.make: extents rank differs from layout rank")
    (fun () -> ignore (Transform.make Layout.diagonal2 ~extents:[| 4 |]))

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let gen_delta =
  QCheck.map
    (fun (a, b) -> [| a; b |])
    QCheck.(pair (int_range (-4) 4) (int_range (-4) 4))

let prop_derived_layout_serves =
  QCheck.Test.make ~name:"derived layout serves its delta" ~count:300 gen_delta
    (fun delta ->
      match Locality.layout_from_delta delta with
      | None -> Intvec.is_zero delta
      | Some l -> Layout.serves l delta)

let prop_colocated_iff_serves =
  QCheck.Test.make ~name:"colocated elements differ by a served delta"
    ~count:300
    QCheck.(pair gen_delta gen_delta)
    (fun (d1, d2) ->
      let l = Layout.diagonal2 in
      Layout.colocated l d1 d2 = Layout.serves l (Intvec.sub d2 d1))

let prop_transform_injective =
  QCheck.Test.make ~name:"transforms are injective on the data space"
    ~count:100
    QCheck.(pair (int_range (-3) 3) (int_range (-3) 3))
    (fun (a, b) ->
      let v = [| (if a = 0 && b = 0 then 1 else a); b |] in
      let l = Layout.of_hyperplane (Hyperplane.make v) in
      let t = Transform.make l ~extents:[| 6; 6 |] in
      let seen = Hashtbl.create 36 in
      let ok = ref true in
      for i = 0 to 5 do
        for j = 0 to 5 do
          let c = Transform.cell_index t [| i; j |] in
          if Hashtbl.mem seen c then ok := false;
          Hashtbl.add seen c ()
        done
      done;
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_derived_layout_serves; prop_colocated_iff_serves; prop_transform_injective ]

let () =
  Alcotest.run "layout"
    [
      ( "hyperplane",
        [
          Alcotest.test_case "canonical" `Quick test_hyperplane_canonical;
          Alcotest.test_case "membership" `Quick test_hyperplane_membership;
          Alcotest.test_case "row/col" `Quick test_hyperplane_row_col;
        ] );
      ( "layout",
        [
          Alcotest.test_case "structure" `Quick test_layout_structure;
          Alcotest.test_case "validation" `Quick test_layout_validation;
          Alcotest.test_case "colocated" `Quick test_layout_colocated;
          Alcotest.test_case "serves" `Quick test_layout_serves;
        ] );
      ( "locality",
        [
          Alcotest.test_case "paper figure 2" `Quick test_locality_paper_example;
          Alcotest.test_case "paper figure 2 interchanged" `Quick
            test_locality_interchanged;
          Alcotest.test_case "temporal reuse" `Quick test_locality_temporal;
          Alcotest.test_case "scores" `Quick test_locality_scores;
          Alcotest.test_case "candidate layouts" `Quick test_candidate_layouts;
        ] );
      ( "transform",
        [
          Alcotest.test_case "identity" `Quick test_transform_identity;
          Alcotest.test_case "column-major" `Quick test_transform_col_major;
          Alcotest.test_case "diagonal" `Quick test_transform_diagonal;
          Alcotest.test_case "injectivity" `Quick test_transform_injective;
          Alcotest.test_case "validation" `Quick test_transform_validation;
        ] );
      ("properties", props);
    ]
