(* Golden regression pins.

   The search is deterministic given a seed and the simulator is
   deterministic outright, so the exact consistency-check / node counts
   behind Table 2 and the exact cycle counts behind Table 3 are stable
   artifacts of the implementation.  Pinning them catches any silent
   change to search order, constraint generation or the cache model —
   the counters every experiment in the paper is reproduced through.

   If a change legitimately alters these numbers (a new heuristic
   tie-break, a domain-ordering fix), regenerate the strings below with
   the printed "actual" of the failing assertion and say why in the
   commit. *)

module Spec = Mlo_workloads.Spec
module Suite = Mlo_workloads.Suite
module Build = Mlo_netgen.Build
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Stats = Mlo_csp.Stats
module Tables = Mlo_experiments.Tables

let workloads = [ "med-im04"; "mxm"; "radar"; "shape"; "track" ]

(* ------------------------------------------------------------------ *)
(* Table 2: work counts (seed 1)                                        *)
(* ------------------------------------------------------------------ *)

let golden_table2 =
  "Med-Im04 h=240 b=623552 e=1057\n\
   MxM h=18 b=12 e=6\n\
   Radar h=798 b=18019 e=534\n\
   Shape h=1124 b=479076 e=801\n\
   Track h=940 b=1584 e=532"

let test_table2 () =
  let actual =
    Tables.run_table2 ~seed:1 ()
    |> List.map (fun r ->
           Printf.sprintf "%s h=%d b=%d e=%d" r.Tables.t2_name
             r.Tables.heuristic.Tables.work r.Tables.base.Tables.work
             r.Tables.enhanced.Tables.work)
    |> String.concat "\n"
  in
  Alcotest.(check string) "table2 work counts (seed 1)" golden_table2 actual

(* ------------------------------------------------------------------ *)
(* Solver node/check counts on the workload networks (seed 1)           *)
(* ------------------------------------------------------------------ *)

let golden_nodes =
  "med-im04 base n=549147 c=623552 enhanced n=594 c=1057\n\
   mxm base n=11 c=12 enhanced n=5 c=6\n\
   radar base n=16836 c=18019 enhanced n=82 c=534\n\
   shape base n=492577 c=479076 enhanced n=134 c=801\n\
   track base n=1037 c=1584 enhanced n=68 c=532"

let test_solver_nodes () =
  let actual =
    workloads
    |> List.map (fun name ->
           let build = Spec.extract (Suite.by_name name) in
           let net = build.Build.network in
           let run config =
             let r = Solver.solve ~config net in
             (match r.Solver.outcome with
             | Solver.Solution _ -> ()
             | Solver.Unsatisfiable | Solver.Aborted ->
               Alcotest.failf "%s: no solution" name);
             r.Solver.stats
           in
           let b = run (Schemes.base ~seed:1 ()) in
           let e = run (Schemes.enhanced ~seed:1 ()) in
           Printf.sprintf "%s base n=%d c=%d enhanced n=%d c=%d" name
             b.Stats.nodes b.Stats.checks e.Stats.nodes e.Stats.checks)
    |> String.concat "\n"
  in
  Alcotest.(check string) "solver node/check counts (seed 1)" golden_nodes
    actual

(* ------------------------------------------------------------------ *)
(* Table 3: simulated cycle counts (seed 1)                             *)
(* ------------------------------------------------------------------ *)

let golden_table3 =
  "Med-Im04 o=1982232 h=1646296 b=1632096 e=1639362\n\
   MxM o=73851486 h=38531412 b=43041988 e=39069274\n\
   Radar o=5938168 h=5363030 b=4940462 e=4940462\n\
   Shape o=8475572 h=7599182 b=6863176 e=6863176\n\
   Track o=6777168 h=5856812 b=5159550 e=5159550"

let test_table3 () =
  let actual =
    Tables.run_table3 ~seed:1 ()
    |> List.map (fun r ->
           Printf.sprintf "%s o=%d h=%d b=%d e=%d" r.Tables.t3_name
             r.Tables.original_cycles r.Tables.heuristic_cycles
             r.Tables.base_cycles r.Tables.enhanced_cycles)
    |> String.concat "\n"
  in
  Alcotest.(check string) "table3 cycle counts (seed 1)" golden_table3 actual

let () =
  Alcotest.run "golden"
    [
      ( "pins",
        [
          Alcotest.test_case "table2 work" `Slow test_table2;
          Alcotest.test_case "solver nodes" `Slow test_solver_nodes;
          Alcotest.test_case "table3 cycles" `Slow test_table3;
        ] );
    ]
