(* Unit and property tests for the exact linear-algebra substrate. *)

module Intvec = Mlo_linalg.Intvec
module Intmat = Mlo_linalg.Intmat
module Rat = Mlo_linalg.Rat
module Nullspace = Mlo_linalg.Nullspace
module Unimodular = Mlo_linalg.Unimodular

let vec = Alcotest.testable (Fmt.of_to_string Intvec.to_string) Intvec.equal

(* ------------------------------------------------------------------ *)
(* Intvec units                                                        *)
(* ------------------------------------------------------------------ *)

let test_basic_construction () =
  Alcotest.(check int) "dim" 3 (Intvec.dim (Intvec.of_list [ 1; 2; 3 ]));
  Alcotest.check vec "zero" [| 0; 0; 0 |] (Intvec.zero 3);
  Alcotest.check vec "unit" [| 0; 1; 0 |] (Intvec.unit 3 1);
  Alcotest.(check bool) "is_zero" true (Intvec.is_zero (Intvec.zero 4));
  Alcotest.(check bool) "not is_zero" false (Intvec.is_zero [| 0; 1 |])

let test_unit_out_of_range () =
  Alcotest.check_raises "unit oob" (Invalid_argument "Intvec.unit: index out of range")
    (fun () -> ignore (Intvec.unit 2 5))

let test_arith () =
  Alcotest.check vec "add" [| 4; 6 |] (Intvec.add [| 1; 2 |] [| 3; 4 |]);
  Alcotest.check vec "sub" [| -2; -2 |] (Intvec.sub [| 1; 2 |] [| 3; 4 |]);
  Alcotest.check vec "neg" [| -1; 2 |] (Intvec.neg [| 1; -2 |]);
  Alcotest.check vec "scale" [| 3; -6 |] (Intvec.scale 3 [| 1; -2 |]);
  Alcotest.(check int) "dot" 11 (Intvec.dot [| 1; 2 |] [| 3; 4 |])

let test_dot_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Intvec.dot: dimension mismatch") (fun () ->
      ignore (Intvec.dot [| 1 |] [| 1; 2 |]))

let test_gcd_content () =
  Alcotest.(check int) "gcd" 6 (Intvec.gcd 12 18);
  Alcotest.(check int) "gcd neg" 6 (Intvec.gcd (-12) 18);
  Alcotest.(check int) "gcd zero" 5 (Intvec.gcd 0 5);
  Alcotest.(check int) "gcd both zero" 0 (Intvec.gcd 0 0);
  Alcotest.(check int) "content" 4 (Intvec.content [| 8; -12; 4 |]);
  Alcotest.(check int) "content zero" 0 (Intvec.content [| 0; 0 |])

let test_canonical () =
  Alcotest.check vec "primitive" [| 2; -3; 1 |] (Intvec.primitive [| 8; -12; 4 |]);
  Alcotest.check vec "canonical flips sign" [| 1; -1 |]
    (Intvec.canonical [| -2; 2 |]);
  Alcotest.check vec "canonical keeps sign" [| 1; 1 |]
    (Intvec.canonical [| 3; 3 |]);
  Alcotest.check vec "canonical zero" [| 0; 0 |] (Intvec.canonical [| 0; 0 |])

let test_compare_order () =
  Alcotest.(check bool) "lex" true (Intvec.compare [| 1; 0 |] [| 1; 1 |] < 0);
  Alcotest.(check bool) "dim first" true (Intvec.compare [| 9 |] [| 0; 0 |] < 0);
  Alcotest.(check int) "equal" 0 (Intvec.compare [| 2; 3 |] [| 2; 3 |])

let test_pp () =
  Alcotest.(check string) "pp" "(1 -1)" (Intvec.to_string [| 1; -1 |]);
  Alcotest.(check string) "pp singleton" "(7)" (Intvec.to_string [| 7 |])

(* ------------------------------------------------------------------ *)
(* Rat units                                                           *)
(* ------------------------------------------------------------------ *)

let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

let test_rat_canonical () =
  Alcotest.check rat "reduce" (Rat.make 1 2) (Rat.make 2 4);
  Alcotest.check rat "sign" (Rat.make (-1) 2) (Rat.make 1 (-2));
  Alcotest.(check int) "den positive" 2 (Rat.den (Rat.make 3 (-2)));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () ->
      ignore (Rat.make 1 0))

let test_rat_arith () =
  Alcotest.check rat "add" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "sub" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "mul" (Rat.make 1 6) (Rat.mul (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "div" (Rat.make 3 2) (Rat.div (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "inv" (Rat.make (-2) 3) (Rat.inv (Rat.make (-3) 2));
  Alcotest.(check int) "compare" (-1) (Rat.compare (Rat.make 1 3) (Rat.make 1 2))

(* ------------------------------------------------------------------ *)
(* Intmat units                                                        *)
(* ------------------------------------------------------------------ *)

let test_mat_basic () =
  let m = Intmat.of_lists [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "rows" 2 (Intmat.rows m);
  Alcotest.(check int) "cols" 2 (Intmat.cols m);
  Alcotest.check vec "row" [| 3; 4 |] (Intmat.row m 1);
  Alcotest.check vec "col" [| 2; 4 |] (Intmat.col m 1);
  Alcotest.(check bool) "identity" true (Intmat.is_identity (Intmat.identity 3))

let test_mat_mul () =
  let a = Intmat.of_lists [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = Intmat.of_lists [ [ 5; 6 ]; [ 7; 8 ] ] in
  Alcotest.(check bool) "product" true
    (Intmat.equal (Intmat.mul a b) (Intmat.of_lists [ [ 19; 22 ]; [ 43; 50 ] ]));
  Alcotest.check vec "mul_vec" [| 5; 11 |] (Intmat.mul_vec a [| 1; 2 |]);
  Alcotest.check vec "vec_mul" [| 7; 10 |] (Intmat.vec_mul [| 1; 2 |] a)

let test_determinant () =
  Alcotest.(check int) "2x2" (-2)
    (Intmat.determinant (Intmat.of_lists [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.(check int) "identity" 1 (Intmat.determinant (Intmat.identity 4));
  Alcotest.(check int) "singular" 0
    (Intmat.determinant (Intmat.of_lists [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.(check int) "3x3" 1
    (Intmat.determinant
       (Intmat.of_lists [ [ 6; 10; 15 ]; [ 1; 2; 3 ]; [ 0; -1; -1 ] ]));
  (* row swap needed: leading zero pivot *)
  Alcotest.(check int) "pivot swap" (-1)
    (Intmat.determinant (Intmat.of_lists [ [ 0; 1 ]; [ 1; 0 ] ]))

let test_rank () =
  Alcotest.(check int) "full" 2 (Intmat.rank (Intmat.of_lists [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.(check int) "deficient" 1
    (Intmat.rank (Intmat.of_lists [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.(check int) "wide" 2
    (Intmat.rank (Intmat.of_lists [ [ 1; 0; 1 ]; [ 0; 1; 1 ] ]));
  Alcotest.(check int) "zero" 0 (Intmat.rank (Intmat.make 2 3 0))

let test_transpose () =
  let m = Intmat.of_lists [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  Alcotest.(check bool) "transpose" true
    (Intmat.equal (Intmat.transpose m)
       (Intmat.of_lists [ [ 1; 4 ]; [ 2; 5 ]; [ 3; 6 ] ]))

(* ------------------------------------------------------------------ *)
(* Nullspace units                                                     *)
(* ------------------------------------------------------------------ *)

let test_nullspace_simple () =
  (* x + y = 0 -> basis {(1 -1)} canonicalized *)
  let b = Nullspace.basis (Intmat.of_lists [ [ 1; 1 ] ]) in
  Alcotest.(check int) "size" 1 (List.length b);
  (match b with
  | [ v ] -> Alcotest.check vec "vector" [| 1; -1 |] v
  | _ -> Alcotest.fail "expected one vector");
  (* full-rank square: trivial nullspace *)
  Alcotest.(check int) "trivial" 0
    (List.length (Nullspace.basis (Intmat.identity 3)))

let test_nullspace_paper_example () =
  (* Figure 2: access Q1[i1+i2][i2]; stepping the inner loop changes the
     element by delta = (1, 1); the hyperplane orthogonal to it is
     (1 -1) - the diagonal layout. *)
  let b = Nullspace.basis (Intmat.of_lists [ [ 1; 1 ] ]) in
  (match b with
  | [ v ] -> Alcotest.check vec "diagonal" [| 1; -1 |] v
  | _ -> Alcotest.fail "one vector expected");
  (* access Q2[i1+i2][i1]: delta = (1, 0) -> hyperplane (0 1),
     column-major. *)
  let b2 = Nullspace.basis (Intmat.of_lists [ [ 1; 0 ] ]) in
  match b2 with
  | [ v ] -> Alcotest.check vec "column-major" [| 0; 1 |] v
  | _ -> Alcotest.fail "one vector expected"

let test_nullspace_rational_entries () =
  (* 2x + 3y = 0 has primitive integer solution (3, -2) *)
  let b = Nullspace.basis (Intmat.of_lists [ [ 2; 3 ] ]) in
  match b with
  | [ v ] -> Alcotest.check vec "cleared denominators" [| 3; -2 |] v
  | _ -> Alcotest.fail "one vector expected"

let test_left_basis () =
  (* columns of a are e1 and e2 of R^3; the left nullspace is spanned by
     e3 *)
  let a = Intmat.of_lists [ [ 1; 0 ]; [ 0; 1 ]; [ 0; 0 ] ] in
  (match Nullspace.left_basis a with
  | [ v ] -> Alcotest.check vec "orthogonal to both columns" [| 0; 0; 1 |] v
  | _ -> Alcotest.fail "one vector expected");
  (* difference vectors as rows use [basis] directly *)
  let rows = Intmat.of_lists [ [ 1; 0; 0 ]; [ 0; 1; 0 ] ] in
  match Nullspace.basis rows with
  | [ v ] -> Alcotest.check vec "orthogonal to both rows" [| 0; 0; 1 |] v
  | _ -> Alcotest.fail "one vector expected"

(* ------------------------------------------------------------------ *)
(* Unimodular units                                                    *)
(* ------------------------------------------------------------------ *)

let test_complete_primitive_examples () =
  let check_first_row y =
    let m = Unimodular.complete_primitive y in
    Alcotest.check vec "first row" y (Intmat.row m 0);
    Alcotest.(check bool) "unimodular" true (Intmat.is_unimodular m)
  in
  check_first_row [| 1; 0 |];
  check_first_row [| 0; 1 |];
  check_first_row [| 1; -1 |];
  check_first_row [| 1; 1 |];
  check_first_row [| 2; 3 |];
  check_first_row [| 6; 10; 15 |];
  check_first_row [| 0; 0; 1 |];
  check_first_row [| 3; -5; 7; 2 |]

let test_complete_primitive_rejects () =
  Alcotest.check_raises "not primitive"
    (Invalid_argument "Unimodular.complete_primitive: vector not primitive")
    (fun () -> ignore (Unimodular.complete_primitive [| 2; 4 |]))

let test_complete_rows () =
  let rows = [ [| 0; 0; 1 |]; [| 0; 1; 0 |] ] in
  let m = Unimodular.complete_rows rows in
  Alcotest.(check int) "square" 3 (Intmat.rows m);
  Alcotest.check vec "row0" [| 0; 0; 1 |] (Intmat.row m 0);
  Alcotest.check vec "row1" [| 0; 1; 0 |] (Intmat.row m 1);
  Alcotest.(check bool) "nonsingular" true (Intmat.is_nonsingular m)

let test_complete_rows_dependent () =
  Alcotest.check_raises "dependent"
    (Invalid_argument "Unimodular.complete_rows: rows linearly dependent")
    (fun () -> ignore (Unimodular.complete_rows [ [| 1; 1 |]; [| 2; 2 |] ]))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let small_int = QCheck.int_range (-20) 20

let gen_vec n = QCheck.array_of_size (QCheck.Gen.return n) small_int

let prop_canonical_idempotent =
  QCheck.Test.make ~name:"canonical is idempotent" ~count:500 (gen_vec 4)
    (fun v -> Intvec.equal (Intvec.canonical (Intvec.canonical v)) (Intvec.canonical v))

let prop_canonical_scale_invariant =
  QCheck.Test.make ~name:"canonical ignores positive scaling" ~count:500
    (QCheck.pair (gen_vec 3) (QCheck.int_range 1 5))
    (fun (v, k) ->
      Intvec.equal (Intvec.canonical (Intvec.scale k v)) (Intvec.canonical v))

let prop_canonical_negation_invariant =
  QCheck.Test.make ~name:"canonical identifies v and -v" ~count:500 (gen_vec 3)
    (fun v -> Intvec.equal (Intvec.canonical (Intvec.neg v)) (Intvec.canonical v))

let prop_primitive_content =
  QCheck.Test.make ~name:"primitive has content 1 (or is zero)" ~count:500
    (gen_vec 4) (fun v ->
      let p = Intvec.primitive v in
      Intvec.is_zero p || Intvec.content p = 1)

let prop_dot_bilinear =
  QCheck.Test.make ~name:"dot is bilinear" ~count:300
    (QCheck.triple (gen_vec 3) (gen_vec 3) (gen_vec 3))
    (fun (a, b, c) ->
      Intvec.dot (Intvec.add a b) c = Intvec.dot a c + Intvec.dot b c)

let gen_mat r c = QCheck.array_of_size (QCheck.Gen.return r) (gen_vec c)

let prop_det_transpose =
  QCheck.Test.make ~name:"det m = det m^T" ~count:200 (gen_mat 3 3) (fun m ->
      Intmat.determinant m = Intmat.determinant (Intmat.transpose m))

let prop_det_product =
  QCheck.Test.make ~name:"det (a b) = det a * det b" ~count:200
    (QCheck.pair (gen_mat 3 3) (gen_mat 3 3))
    (fun (a, b) ->
      Intmat.determinant (Intmat.mul a b)
      = Intmat.determinant a * Intmat.determinant b)

let prop_nullspace_orthogonal =
  QCheck.Test.make ~name:"nullspace vectors satisfy a x = 0" ~count:300
    (gen_mat 2 4)
    (fun m ->
      List.for_all (fun x -> Nullspace.member m x) (Nullspace.basis m))

let prop_nullspace_dimension =
  QCheck.Test.make ~name:"nullity = cols - rank" ~count:300 (gen_mat 2 4)
    (fun m ->
      List.length (Nullspace.basis m) = Intmat.cols m - Intmat.rank m)

let gen_primitive_vec n =
  QCheck.map
    ~rev:(fun v -> v)
    (fun v ->
      let v = Array.map (fun x -> (x mod 9) - 4) v in
      if Intvec.is_zero v then Intvec.unit n 0 else Intvec.primitive v)
    (gen_vec n)

let prop_unimodular_completion =
  QCheck.Test.make ~name:"primitive completion is unimodular with row 0 = y"
    ~count:400 (gen_primitive_vec 4) (fun y ->
      let m = Unimodular.complete_primitive y in
      Intmat.is_unimodular m && Intvec.equal (Intmat.row m 0) y)

let prop_rank_bounds =
  QCheck.Test.make ~name:"rank bounded by dims" ~count:300 (gen_mat 3 4)
    (fun m ->
      let r = Intmat.rank m in
      r >= 0 && r <= min (Intmat.rows m) (Intmat.cols m))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_canonical_idempotent;
      prop_canonical_scale_invariant;
      prop_canonical_negation_invariant;
      prop_primitive_content;
      prop_dot_bilinear;
      prop_det_transpose;
      prop_det_product;
      prop_nullspace_orthogonal;
      prop_nullspace_dimension;
      prop_unimodular_completion;
      prop_rank_bounds;
    ]

let () =
  Alcotest.run "linalg"
    [
      ( "intvec",
        [
          Alcotest.test_case "construction" `Quick test_basic_construction;
          Alcotest.test_case "unit out of range" `Quick test_unit_out_of_range;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "dot mismatch" `Quick test_dot_mismatch;
          Alcotest.test_case "gcd/content" `Quick test_gcd_content;
          Alcotest.test_case "canonical" `Quick test_canonical;
          Alcotest.test_case "compare" `Quick test_compare_order;
          Alcotest.test_case "pretty printing" `Quick test_pp;
        ] );
      ( "rat",
        [
          Alcotest.test_case "canonical form" `Quick test_rat_canonical;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
        ] );
      ( "intmat",
        [
          Alcotest.test_case "basics" `Quick test_mat_basic;
          Alcotest.test_case "multiplication" `Quick test_mat_mul;
          Alcotest.test_case "determinant" `Quick test_determinant;
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "transpose" `Quick test_transpose;
        ] );
      ( "nullspace",
        [
          Alcotest.test_case "simple" `Quick test_nullspace_simple;
          Alcotest.test_case "paper figure 2" `Quick test_nullspace_paper_example;
          Alcotest.test_case "rational entries" `Quick test_nullspace_rational_entries;
          Alcotest.test_case "left basis" `Quick test_left_basis;
        ] );
      ( "unimodular",
        [
          Alcotest.test_case "examples" `Quick test_complete_primitive_examples;
          Alcotest.test_case "rejects non-primitive" `Quick test_complete_primitive_rejects;
          Alcotest.test_case "complete rows" `Quick test_complete_rows;
          Alcotest.test_case "rejects dependent rows" `Quick test_complete_rows_dependent;
        ] );
      ("properties", props);
    ]
