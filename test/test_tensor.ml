(* Rank-3 (tensor) coverage: locality derivation with ordered hyperplane
   sets, 3-D transforms and address maps, dependence over deeper nests,
   and the end-to-end pipeline on tensor kernels. *)

module Intvec = Mlo_linalg.Intvec
module Layout = Mlo_layout.Layout
module Hyperplane = Mlo_layout.Hyperplane
module Locality = Mlo_layout.Locality
module Transform = Mlo_layout.Transform
module Program = Mlo_ir.Program
module Loop_nest = Mlo_ir.Loop_nest
module Access = Mlo_ir.Access
module Dependence = Mlo_ir.Dependence
module Kernels = Mlo_workloads.Kernels
module Build = Mlo_netgen.Build
module Solver = Mlo_csp.Solver
module Optimizer = Mlo_core.Optimizer
module Simulate = Mlo_cachesim.Simulate
module Address_map = Mlo_cachesim.Address_map

let layout = Alcotest.testable Layout.pp Layout.equal

(* ------------------------------------------------------------------ *)
(* 3-D locality                                                         *)
(* ------------------------------------------------------------------ *)

let test_rank3_locality_rotation () =
  let rot, _ = Kernels.rotate3 ~name:"r" ~n:8 ~dst:"D" ~src:"S" in
  let accs = Loop_nest.accesses rot in
  (* src[k][i][j]: stepping k changes the first index -> layout must keep
     the first axis fastest: hyperplanes orthogonal to (1 0 0) *)
  let src = accs.(0) in
  (match Locality.preferred_layout src with
  | Some l ->
    List.iter
      (fun y ->
        Alcotest.(check bool) "src hyperplanes orthogonal to e1" true
          (Hyperplane.orthogonal_to y [| 1; 0; 0 |]))
      (Layout.hyperplanes l);
    Alcotest.(check int) "two hyperplanes" 2 (List.length (Layout.hyperplanes l))
  | None -> Alcotest.fail "src constrained");
  (* dst[i][j][k]: stepping k changes the last index -> row-major *)
  match Locality.preferred_layout accs.(1) with
  | Some l -> Alcotest.check layout "dst row-major" (Layout.row_major 3) l
  | None -> Alcotest.fail "dst constrained"

let test_rank3_serves () =
  (* column-major 3-D serves first-axis walks only *)
  let c = Layout.col_major 3 in
  Alcotest.(check bool) "serves e1" true (Layout.serves c [| 1; 0; 0 |]);
  Alcotest.(check bool) "rejects e3" false (Layout.serves c [| 0; 0; 1 |]);
  let r = Layout.row_major 3 in
  Alcotest.(check bool) "row serves e3" true (Layout.serves r [| 0; 0; 1 |]);
  Alcotest.(check bool) "row rejects e1" false (Layout.serves r [| 1; 0; 0 |])

let prop_rank3_derived_serves =
  let gen =
    QCheck.map
      (fun (a, b, c) -> [| a; b; c |])
      QCheck.(triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3))
  in
  QCheck.Test.make ~name:"rank-3 derived layout serves its delta" ~count:300
    gen (fun delta ->
      match Locality.layout_from_delta delta with
      | None -> Intvec.is_zero delta
      | Some l -> Layout.rank l = 3 && Layout.serves l delta)

(* ------------------------------------------------------------------ *)
(* 3-D transforms and addresses                                         *)
(* ------------------------------------------------------------------ *)

let test_rank3_transform_col_major () =
  let t = Transform.make (Layout.col_major 3) ~extents:[| 4; 5; 6 |] in
  (* first-axis neighbours are adjacent in storage *)
  let a = Transform.cell_index t [| 0; 2; 3 |] in
  let b = Transform.cell_index t [| 1; 2; 3 |] in
  Alcotest.(check int) "first-axis adjacency" 1 (abs (a - b));
  Alcotest.(check int) "no holes" (4 * 5 * 6) (Transform.footprint_cells t)

let test_rank3_transform_injective () =
  List.iter
    (fun l ->
      let t = Transform.make l ~extents:[| 4; 4; 4 |] in
      let seen = Hashtbl.create 64 in
      for i = 0 to 3 do
        for j = 0 to 3 do
          for k = 0 to 3 do
            let c = Transform.cell_index t [| i; j; k |] in
            Alcotest.(check bool) "injective" false (Hashtbl.mem seen c);
            Hashtbl.add seen c ()
          done
        done
      done)
    [
      Layout.row_major 3;
      Layout.col_major 3;
      Layout.make ~rank:3
        [ Hyperplane.of_list [ 0; 1; 0 ]; Hyperplane.of_list [ 0; 0; 1 ] ];
      Layout.make ~rank:3
        [ Hyperplane.of_list [ 1; -1; 0 ]; Hyperplane.of_list [ 0; 0; 1 ] ];
    ]

let test_rank3_address_map () =
  let rot, req = Kernels.rotate3 ~name:"r" ~n:4 ~dst:"D" ~src:"S" in
  let prog = Program.make ~name:"p" (Kernels.declare req) [ rot ] in
  let layouts = function
    | "S" -> Some (Layout.col_major 3)
    | _ -> None
  in
  let amap = Address_map.build prog ~layouts in
  let a = Address_map.address amap "S" [| 0; 1; 2 |] in
  let b = Address_map.address amap "S" [| 1; 1; 2 |] in
  Alcotest.(check int) "col-major 3-D adjacency" 4 (abs (a - b))

(* ------------------------------------------------------------------ *)
(* Dependence on deeper nests                                           *)
(* ------------------------------------------------------------------ *)

let test_batched_matmul_fully_permutable () =
  let bm, _ = Kernels.batched_matmul ~name:"b" ~batches:2 ~n:4 ~c:"C" ~a:"A" ~b:"B" in
  Alcotest.(check int) "depth 4" 4 (Loop_nest.depth bm);
  Alcotest.(check int) "all 24 orders legal" 24
    (List.length (Dependence.legal_permutations bm))

let test_stencil7_in_bounds () =
  let st, req = Kernels.stencil7 ~name:"s" ~n:3 ~dst:"D" ~src:"S" in
  let prog = Program.make ~name:"p" (Kernels.declare req) [ st ] in
  Array.iter
    (fun nest ->
      Loop_nest.iter nest (fun iv ->
          Array.iter
            (fun acc ->
              let info = Program.find_array prog (Access.array_name acc) in
              let el = Access.element_at acc iv in
              Array.iteri
                (fun d x ->
                  if x < 0 || x >= Mlo_ir.Array_info.extent info d then
                    Alcotest.failf "out of bounds dim %d: %d" d x)
                el)
            (Loop_nest.accesses nest)))
    (Program.nests prog)

(* ------------------------------------------------------------------ *)
(* End-to-end                                                           *)
(* ------------------------------------------------------------------ *)

let test_rotation_pipeline () =
  let rot, req = Kernels.rotate3 ~name:"rot" ~n:24 ~dst:"D" ~src:"S" in
  let prog = Program.make ~name:"rot3" (Kernels.declare req) [ rot ] in
  let b = Build.build prog in
  (match Solver.solve ~config:(Mlo_csp.Schemes.enhanced ()) b.Build.network with
  | { Solver.outcome = Solver.Solution a; _ } ->
    (* the network demands src keeps its first axis fastest *)
    (match Build.lookup b a "S" with
    | Some l ->
      List.iter
        (fun y ->
          Alcotest.(check bool) "solution serves src" true
            (Hyperplane.orthogonal_to y [| 1; 0; 0 |]))
        (Layout.hyperplanes l)
    | None -> Alcotest.fail "S missing")
  | _ -> Alcotest.fail "rotation network must be satisfiable");
  let original = Optimizer.simulate_original prog in
  let sol = Optimizer.optimize (Optimizer.Enhanced 1) prog in
  let optimized = Optimizer.simulate sol in
  Alcotest.(check bool) "3-D layout optimization improves the rotation" true
    (Simulate.cycles optimized < Simulate.cycles original)

let test_mixed_rank_program () =
  (* rank-1, rank-2 and rank-3 arrays in one program *)
  let x = Mlo_ir.Builder.ctx [ "i"; "j" ] in
  let i = Mlo_ir.Builder.var x "i" and j = Mlo_ir.Builder.var x "j" in
  let nest =
    Mlo_ir.Builder.nest "mix" x [ 8; 8 ]
      [
        Mlo_ir.Builder.read "V" [ j ];
        Mlo_ir.Builder.read "M" [ j; i ];
        Mlo_ir.Builder.read "T" [ i; j; j ];
        Mlo_ir.Builder.write "M" [ j; i ];
      ]
  in
  let prog =
    Program.make ~name:"mixed"
      [
        Mlo_ir.Array_info.make "V" [ 8 ];
        Mlo_ir.Array_info.make "M" [ 8; 8 ];
        Mlo_ir.Array_info.make "T" [ 8; 8; 8 ];
      ]
      [ nest ]
  in
  let sol = Optimizer.optimize (Optimizer.Enhanced 1) prog in
  List.iter
    (fun (name, l) ->
      let expected_rank =
        Mlo_ir.Array_info.rank (Program.find_array prog name)
      in
      Alcotest.(check int) (name ^ " rank") expected_rank (Layout.rank l))
    sol.Optimizer.layouts

let () =
  Alcotest.run "tensor"
    [
      ( "locality",
        [
          Alcotest.test_case "rotation preferences" `Quick
            test_rank3_locality_rotation;
          Alcotest.test_case "serves" `Quick test_rank3_serves;
          QCheck_alcotest.to_alcotest prop_rank3_derived_serves;
        ] );
      ( "transform",
        [
          Alcotest.test_case "col-major adjacency" `Quick
            test_rank3_transform_col_major;
          Alcotest.test_case "injectivity" `Quick test_rank3_transform_injective;
          Alcotest.test_case "address map" `Quick test_rank3_address_map;
        ] );
      ( "dependence",
        [
          Alcotest.test_case "batched matmul permutable" `Quick
            test_batched_matmul_fully_permutable;
          Alcotest.test_case "stencil in bounds" `Quick test_stencil7_in_bounds;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "rotation end to end" `Quick test_rotation_pipeline;
          Alcotest.test_case "mixed ranks" `Quick test_mixed_rank_program;
        ] );
    ]
