(* Tests for constraint-network extraction: variants, demands, domains,
   pair construction, wildcards, and loop-order selection. *)

module B = Mlo_ir.Builder
module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Loop_nest = Mlo_ir.Loop_nest
module Layout = Mlo_layout.Layout
module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Brute = Mlo_csp.Brute
module Weighted = Mlo_csp.Weighted
module Variants = Mlo_netgen.Variants
module Build = Mlo_netgen.Build
module Select = Mlo_netgen.Select
module Kernels = Mlo_workloads.Kernels

let layout = Alcotest.testable Layout.pp Layout.equal

(* The paper's Figure 2 program. *)
let fig2_program ~n =
  let x = B.ctx [ "i1"; "i2" ] in
  let i1 = B.var x "i1" and i2 = B.var x "i2" in
  let nest =
    B.nest "fig2" x [ n; n ]
      B.[ read "Q1" [ i1 +: i2; i2 ]; read "Q2" [ i1 +: i2; i1 ] ]
  in
  Program.make ~name:"fig2"
    [
      Array_info.make "Q1" [ (2 * n) - 1; n ];
      Array_info.make "Q2" [ (2 * n) - 1; n ];
    ]
    [ nest ]

(* ------------------------------------------------------------------ *)
(* Variants                                                             *)
(* ------------------------------------------------------------------ *)

let test_variants_of_fig2 () =
  let prog = fig2_program ~n:8 in
  let nest = (Program.nests prog).(0) in
  let variants = Variants.of_nest nest in
  Alcotest.(check int) "two legal orders" 2 (List.length variants);
  (* identity: Q1 -> diagonal, Q2 -> column-major (paper Section 2) *)
  (match variants with
  | v0 :: v1 :: [] ->
    Alcotest.(check (option layout)) "Q1 identity" (Some Layout.diagonal2)
      (Variants.demanded_layout v0.Variants.nest "Q1");
    Alcotest.(check (option layout)) "Q2 identity" (Some (Layout.col_major 2))
      (Variants.demanded_layout v0.Variants.nest "Q2");
    (* interchanged: Q1 -> column-major, Q2 -> diagonal (paper) *)
    Alcotest.(check (option layout)) "Q1 interchanged" (Some (Layout.col_major 2))
      (Variants.demanded_layout v1.Variants.nest "Q1");
    Alcotest.(check (option layout)) "Q2 interchanged" (Some Layout.diagonal2)
      (Variants.demanded_layout v1.Variants.nest "Q2")
  | _ -> Alcotest.fail "expected 2 variants");
  Alcotest.(check (option layout)) "unknown array" None
    (Variants.demanded_layout nest "Q9")

let test_layouts_for () =
  let prog = fig2_program ~n:8 in
  let nest = (Program.nests prog).(0) in
  match Variants.of_nest nest with
  | v :: _ ->
    let demands = Variants.layouts_for v in
    Alcotest.(check int) "both arrays demanded" 2 (List.length demands);
    Alcotest.(check (option layout)) "Q1" (Some Layout.diagonal2)
      (List.assoc_opt "Q1" demands)
  | [] -> Alcotest.fail "no variants"

(* ------------------------------------------------------------------ *)
(* Build                                                                *)
(* ------------------------------------------------------------------ *)

let test_build_fig2 () =
  let prog = fig2_program ~n:8 in
  let b = Build.build prog in
  let net = b.Build.network in
  Alcotest.(check int) "two variables" 2 (Network.num_vars net);
  Alcotest.(check int) "one constraint" 1 (Network.num_constraints net);
  (* S(Q1,Q2) should allow exactly the two per-variant combinations *)
  let q1 = Build.var_of_array b "Q1" and q2 = Build.var_of_array b "Q2" in
  let allowed_combos =
    List.concat_map
      (fun v1 ->
        List.filter_map
          (fun v2 ->
            if Network.allowed net q1 v1 q2 v2 then
              Some
                ( Layout.describe (Network.value net q1 v1),
                  Layout.describe (Network.value net q2 v2) )
            else None)
          (List.init (Network.domain_size net q2) Fun.id))
      (List.init (Network.domain_size net q1) Fun.id)
  in
  Alcotest.(check int) "two combos" 2 (List.length allowed_combos);
  Alcotest.(check bool) "diag/col" true
    (List.mem ("diagonal", "column-major") allowed_combos);
  Alcotest.(check bool) "col/diag" true
    (List.mem ("column-major", "diagonal") allowed_combos)

let test_build_solution_valid () =
  let prog = fig2_program ~n:8 in
  let b = Build.build prog in
  match Solver.solve b.Build.network with
  | { Solver.outcome = Solver.Solution a; _ } ->
    Alcotest.(check bool) "verifies" true (Network.verify b.Build.network a);
    let layouts = Build.assignment_layouts b a in
    Alcotest.(check int) "all arrays" 2 (List.length layouts);
    (match Build.lookup b a "Q1" with
    | Some _ -> ()
    | None -> Alcotest.fail "Q1 missing");
    Alcotest.(check (option layout)) "unknown" None (Build.lookup b a "Zz")
  | _ -> Alcotest.fail "figure 2 network must be satisfiable"

let test_build_candidates_extend_domains () =
  let prog = fig2_program ~n:8 in
  let plain = Build.build prog in
  let extra = [ Layout.row_major 2; Layout.anti_diagonal2 ] in
  let rich = Build.build ~candidates:(fun _ -> extra) prog in
  Alcotest.(check bool) "domains grow" true
    (Network.total_domain_size rich.Build.network
    > Network.total_domain_size plain.Build.network);
  (* wrong-rank candidates are ignored *)
  let bad = Build.build ~candidates:(fun _ -> [ Layout.row_major 3 ]) prog in
  Alcotest.(check int) "wrong rank ignored"
    (Network.total_domain_size plain.Build.network)
    (Network.total_domain_size bad.Build.network)

let test_build_matmul_satisfiable () =
  (* MxM's network: wildcards for the temporal sides keep it satisfiable
     and A=row-major, B=column-major must be among the solutions *)
  let mm, req = Kernels.matmul ~name:"mm" ~n:8 ~c:"C" ~a:"A" ~b:"B" in
  let prog = Program.make ~name:"mm" (Kernels.declare req) [ mm ] in
  let b = Build.build prog in
  let net = b.Build.network in
  Alcotest.(check bool) "satisfiable" true (Brute.is_satisfiable net);
  let sols = Brute.all_solutions net in
  let has_classic =
    List.exists
      (fun a ->
        Build.lookup b a "A" = Some (Layout.row_major 2)
        && Build.lookup b a "B" = Some (Layout.col_major 2))
      sols
  in
  Alcotest.(check bool) "classic matmul layouts allowed" true has_classic

let test_build_weighted () =
  let prog = fig2_program ~n:8 in
  let b, w = Build.weighted prog in
  let q1 = Build.var_of_array b "Q1" and q2 = Build.var_of_array b "Q2" in
  (* every allowed pair carries the nest cost (8*8 iterations x 2 refs) *)
  let expected = float_of_int (8 * 8 * 2) in
  let found = ref false in
  for v1 = 0 to Network.domain_size b.Build.network q1 - 1 do
    for v2 = 0 to Network.domain_size b.Build.network q2 - 1 do
      if Network.allowed b.Build.network q1 v1 q2 v2 then begin
        found := true;
        Alcotest.(check (float 1e-9)) "pair weight" expected
          (Weighted.weight w q1 v1 q2 v2)
      end
    done
  done;
  Alcotest.(check bool) "some pair" true !found

let test_relax_adds_row_row () =
  (* engineer an unsatisfiable strict network: two nests with
     irreconcilable single demands for the same pair *)
  let x = B.ctx [ "i"; "j" ] in
  let i = B.var x "i" and j = B.var x "j" in
  let n1 = B.nest "rowish" x [ 4; 4 ] [ B.read "A" [ i; j ]; B.write "B" [ j; i ] ] in
  let prog =
    Program.make ~name:"conflict"
      [ Array_info.make "A" [ 4; 4 ]; Array_info.make "B" [ 4; 4 ] ]
      [ n1 ]
  in
  let strict = Build.build prog in
  let relaxed = Build.build ~relax:true prog in
  (* whatever the strict network allows, the relaxed one additionally
     allows (row-major, row-major) *)
  let a = Build.var_of_array relaxed "A" and b = Build.var_of_array relaxed "B" in
  let row_idx build name =
    let v = Build.var_of_array build name in
    let net = build.Build.network in
    let rec go k =
      if k >= Network.domain_size net v then raise Not_found
      else if Layout.equal (Network.value net v k) (Layout.row_major 2) then k
      else go (k + 1)
    in
    go 0
  in
  Alcotest.(check bool) "relaxed allows row/row" true
    (Network.allowed relaxed.Build.network a (row_idx relaxed "A") b
       (row_idx relaxed "B"));
  ignore strict

(* ------------------------------------------------------------------ *)
(* Select                                                               *)
(* ------------------------------------------------------------------ *)

let test_select_best_variant () =
  let prog = fig2_program ~n:8 in
  let nest = (Program.nests prog).(0) in
  (* if Q1 is diagonal and Q2 column-major, the original order is best *)
  let lookup1 = function
    | "Q1" -> Some Layout.diagonal2
    | "Q2" -> Some (Layout.col_major 2)
    | _ -> None
  in
  let v = Select.best_variant nest lookup1 in
  Alcotest.(check bool) "identity kept" true (v.Variants.perm = [| 0; 1 |]);
  (* with the swapped layouts, interchange wins *)
  let lookup2 = function
    | "Q1" -> Some (Layout.col_major 2)
    | "Q2" -> Some Layout.diagonal2
    | _ -> None
  in
  let v2 = Select.best_variant nest lookup2 in
  Alcotest.(check bool) "interchanged" true (v2.Variants.perm = [| 1; 0 |])

let test_select_restructure_preserves_semantics () =
  let prog = fig2_program ~n:8 in
  let lookup = function
    | "Q1" -> Some (Layout.col_major 2)
    | "Q2" -> Some Layout.diagonal2
    | _ -> None
  in
  let prog' = Select.restructure prog lookup in
  Alcotest.(check int) "same nest count"
    (Array.length (Program.nests prog))
    (Array.length (Program.nests prog'));
  (* the multiset of elements touched is preserved *)
  let touch p =
    let acc = ref [] in
    Array.iter
      (fun nest ->
        Loop_nest.iter nest (fun iv ->
            Array.iter
              (fun a ->
                acc :=
                  (Mlo_ir.Access.array_name a, Mlo_ir.Access.element_at a iv)
                  :: !acc)
              (Loop_nest.accesses nest)))
      (Program.nests p);
    List.sort compare !acc
  in
  Alcotest.(check bool) "same elements" true (touch prog = touch prog')

(* ------------------------------------------------------------------ *)
(* Properties on the generator                                          *)
(* ------------------------------------------------------------------ *)

let gen_params seed =
  {
    Mlo_workloads.Random_program.default with
    Mlo_workloads.Random_program.seed;
    num_arrays = 5;
    num_nests = 6;
    extent = 12;
    sim_extent = 8;
  }

let prop_generator_network_satisfiable =
  QCheck.Test.make ~name:"generated networks admit the intended solution"
    ~count:60 QCheck.small_nat (fun seed ->
      (* intended layouts for arrays some restructuring demands; arrays
         referenced only temporally fall back to the default (domain
         index 0), which every wildcard admits *)
      let params = gen_params seed in
      let prog = Mlo_workloads.Random_program.generate params in
      let b = Build.build prog in
      let intended = Mlo_workloads.Random_program.intended_layouts params in
      let net = b.Build.network in
      let assignment =
        Array.init (Network.num_vars net) (fun i ->
            let want = List.assoc (Network.name net i) intended in
            let dom = Network.domain net i in
            let rec find v =
              if v >= Array.length dom then 0
              else if Layout.equal dom.(v) want then v
              else find (v + 1)
            in
            find 0)
      in
      Network.verify net assignment)

let prop_generator_deterministic =
  QCheck.Test.make ~name:"generator is deterministic in its seed" ~count:30
    QCheck.small_nat (fun seed ->
      let params = gen_params seed in
      let p1 = Mlo_workloads.Random_program.generate params in
      let p2 = Mlo_workloads.Random_program.generate params in
      Network.total_domain_size (Build.build p1).Build.network
      = Network.total_domain_size (Build.build p2).Build.network
      && Program.data_size_bytes p1 = Program.data_size_bytes p2)

let prop_solver_solves_generated =
  QCheck.Test.make ~name:"enhanced scheme solves generated networks" ~count:40
    QCheck.small_nat (fun seed ->
      let prog = Mlo_workloads.Random_program.generate (gen_params seed) in
      let b = Build.build prog in
      match
        Solver.solve ~config:(Mlo_csp.Schemes.enhanced ()) b.Build.network
      with
      | { Solver.outcome = Solver.Solution a; _ } ->
        Network.verify b.Build.network a
      | _ -> false)

(* Build.shards must produce exactly the components of the whole-program
   build: same array partition, same per-array domains (same layout
   order), same constraints.  Generated with pooled references
   (group_size) so the programs regularly split into several
   components. *)
let sharded_params seed =
  {
    Mlo_workloads.Random_program.default with
    Mlo_workloads.Random_program.seed;
    num_arrays = 9;
    num_nests = 12;
    extent = 12;
    sim_extent = 8;
    group_size = 3;
  }

let prop_shards_equal_components =
  QCheck.Test.make ~name:"shards are exactly the whole build's components"
    ~count:40 QCheck.small_nat (fun seed ->
      let prog = Mlo_workloads.Random_program.generate (sharded_params seed) in
      let whole = Build.build prog in
      let shards = Build.shards prog in
      let sorted_partition names =
        List.sort compare (List.map (List.sort compare) names)
      in
      (* the array partition matches the constraint-graph components
         (plus nest-less arrays, which form singleton shards) *)
      let shard_names =
        Array.to_list
          (Array.map (fun s -> Array.to_list s.Build.constrained_arrays) shards)
      in
      let comp_names =
        Array.to_list (Array.map Array.to_list (Build.components whole))
      in
      sorted_partition shard_names = sorted_partition comp_names
      || QCheck.Test.fail_reportf "partition mismatch (seed %d)" seed)

let prop_shards_domains_and_constraints =
  QCheck.Test.make
    ~name:"shard domains and constraints equal the whole network's" ~count:40
    QCheck.small_nat (fun seed ->
      let prog = Mlo_workloads.Random_program.generate (sharded_params seed) in
      let whole = Build.build prog in
      let wnet = whole.Build.network in
      let shards = Build.shards prog in
      let constraints =
        Array.fold_left
          (fun acc s -> acc + Network.num_constraints s.Build.network)
          0 shards
      in
      constraints = Network.num_constraints wnet
      && Array.for_all
           (fun s ->
             let snet = s.Build.network in
             let wvar name = Build.var_of_array whole name in
             Array.for_all
               (fun name ->
                 let si = Build.var_of_array s name in
                 let wi = wvar name in
                 let sdom = Network.domain snet si
                 and wdom = Network.domain wnet wi in
                 Array.length sdom = Array.length wdom
                 && Array.for_all2 Layout.equal sdom wdom
                 && List.for_all
                      (fun sj ->
                        let wj = wvar (Network.name snet sj) in
                        let ok = ref true in
                        for vi = 0 to Array.length sdom - 1 do
                          for vj = 0 to Network.domain_size snet sj - 1 do
                            if
                              Network.allowed snet si vi sj vj
                              <> Network.allowed wnet wi vi wj vj
                            then ok := false
                          done
                        done;
                        !ok)
                      (Network.neighbors snet si))
               s.Build.constrained_arrays)
           shards)

let prop_shards_solutions_verify =
  QCheck.Test.make ~name:"per-shard solutions assemble into a whole solution"
    ~count:30 QCheck.small_nat (fun seed ->
      let prog = Mlo_workloads.Random_program.generate (sharded_params seed) in
      let whole = Build.build prog in
      let wnet = whole.Build.network in
      let assignment = Array.make (Network.num_vars wnet) 0 in
      Array.for_all
        (fun s ->
          match
            Solver.solve ~config:(Mlo_csp.Schemes.enhanced ()) s.Build.network
          with
          | { Solver.outcome = Solver.Solution a; _ } ->
            Array.iteri
              (fun si name ->
                assignment.(Build.var_of_array whole name) <- a.(si))
              s.Build.constrained_arrays;
            true
          | _ -> false)
        (Build.shards prog)
      && Network.verify wnet assignment)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_generator_network_satisfiable;
      prop_generator_deterministic;
      prop_solver_solves_generated;
      prop_shards_equal_components;
      prop_shards_domains_and_constraints;
      prop_shards_solutions_verify;
    ]

let () =
  Alcotest.run "netgen"
    [
      ( "variants",
        [
          Alcotest.test_case "figure 2 demands" `Quick test_variants_of_fig2;
          Alcotest.test_case "layouts_for" `Quick test_layouts_for;
        ] );
      ( "build",
        [
          Alcotest.test_case "figure 2 network" `Quick test_build_fig2;
          Alcotest.test_case "solution decodes" `Quick test_build_solution_valid;
          Alcotest.test_case "candidate palettes" `Quick
            test_build_candidates_extend_domains;
          Alcotest.test_case "matmul satisfiable via wildcards" `Quick
            test_build_matmul_satisfiable;
          Alcotest.test_case "weighted pairs carry nest cost" `Quick
            test_build_weighted;
          Alcotest.test_case "relax adds row/row" `Quick test_relax_adds_row_row;
        ] );
      ( "select",
        [
          Alcotest.test_case "best variant" `Quick test_select_best_variant;
          Alcotest.test_case "restructure preserves semantics" `Quick
            test_select_restructure_preserves_semantics;
        ] );
      ("properties", props);
    ]
