(* Tests for the cache simulator: set-associative LRU caches, the
   two-level hierarchy, address mapping, and trace-driven simulation. *)

module Cache = Mlo_cachesim.Cache
module Hierarchy = Mlo_cachesim.Hierarchy
module Address_map = Mlo_cachesim.Address_map
module Compiled_trace = Mlo_cachesim.Compiled_trace
module Simulate = Mlo_cachesim.Simulate
module B = Mlo_ir.Builder
module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Layout = Mlo_layout.Layout
module Hyperplane = Mlo_layout.Hyperplane
module Random_program = Mlo_workloads.Random_program
module Rng = Mlo_csp.Rng

(* ------------------------------------------------------------------ *)
(* Cache geometry                                                       *)
(* ------------------------------------------------------------------ *)

let test_geometry_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Cache.geometry: sizes must be positive powers of two")
    (fun () -> ignore (Cache.geometry ~size_bytes:100 ~assoc:2 ~line_bytes:32));
  Alcotest.check_raises "too small"
    (Invalid_argument "Cache.geometry: capacity below one set") (fun () ->
      ignore (Cache.geometry ~size_bytes:32 ~assoc:2 ~line_bytes:32))

let small_cache () =
  (* 4 sets x 2 ways x 16B lines = 128B *)
  Cache.create (Cache.geometry ~size_bytes:128 ~assoc:2 ~line_bytes:16)

let test_cache_hit_miss () =
  let c = small_cache () in
  Alcotest.(check int) "sets" 4 (Cache.sets c);
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit same line" true (Cache.access c 15);
  Alcotest.(check bool) "miss next line" false (Cache.access c 16);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c);
  Alcotest.(check int) "accesses" 3 (Cache.accesses c)

let test_cache_lru_eviction () =
  let c = small_cache () in
  (* three lines mapping to set 0: line addresses 0, 64, 128 (4 sets x
     16B = 64B stride) *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  Alcotest.(check bool) "both resident" true
    (Cache.contains c 0 && Cache.contains c 64);
  ignore (Cache.access c 128);
  (* LRU way held line 0 *)
  Alcotest.(check bool) "line 0 evicted" false (Cache.contains c 0);
  Alcotest.(check bool) "line 64 kept" true (Cache.contains c 64);
  (* touching 64 then inserting another keeps 64 (true LRU, not FIFO) *)
  ignore (Cache.access c 64);
  ignore (Cache.access c 192);
  Alcotest.(check bool) "line 128 evicted" false (Cache.contains c 128);
  Alcotest.(check bool) "line 64 still resident" true (Cache.contains c 64)

let test_cache_invalidate () =
  let c = small_cache () in
  ignore (Cache.access c 0);
  Cache.invalidate_all c;
  Alcotest.(check bool) "gone" false (Cache.contains c 0);
  Cache.reset_counters c;
  Alcotest.(check int) "counters reset" 0 (Cache.accesses c)

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                            *)
(* ------------------------------------------------------------------ *)

let test_hierarchy_latencies () =
  let h = Hierarchy.create Hierarchy.paper_config in
  let compute = Hierarchy.paper_config.Hierarchy.compute_cycles_per_access in
  (* cold: L1 miss, L2 miss -> 1 + 6 + 70 *)
  Alcotest.(check int) "cold access" (77 + compute) (Hierarchy.access h 0);
  (* hot: L1 hit -> 1 *)
  Alcotest.(check int) "L1 hit" (1 + compute) (Hierarchy.access h 0);
  (* evicted from L1 only: bring in enough conflicting lines *)
  let c = Hierarchy.counters h in
  Alcotest.(check int) "accesses" 2 c.Hierarchy.accesses;
  Alcotest.(check int) "l1 misses" 1 c.Hierarchy.l1_misses;
  Alcotest.(check int) "l2 misses" 1 c.Hierarchy.l2_misses

let test_hierarchy_l2_hit () =
  let h = Hierarchy.create Hierarchy.paper_config in
  let compute = Hierarchy.paper_config.Hierarchy.compute_cycles_per_access in
  ignore (Hierarchy.access h 0);
  (* L1: 8KB 2-way 32B lines -> 128 sets; addresses 0, 4096, 8192 map to
     set 0; third insertion evicts line 0 from L1.  L2: 64KB 4-way 64B
     lines -> 256 sets x 64B = 16KB stride; these stay resident. *)
  ignore (Hierarchy.access h 4096);
  ignore (Hierarchy.access h 8192);
  Alcotest.(check int) "L2 hit costs 1+6" (7 + compute) (Hierarchy.access h 0)

let test_hierarchy_reset () =
  let h = Hierarchy.create Hierarchy.paper_config in
  ignore (Hierarchy.access h 0);
  Hierarchy.reset h;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "cycles" 0 c.Hierarchy.cycles;
  Alcotest.(check int) "accesses" 0 c.Hierarchy.accesses

let test_miss_rates () =
  let c =
    {
      Hierarchy.accesses = 10;
      l1_hits = 5;
      l1_misses = 5;
      l2_hits = 4;
      l2_misses = 1;
      cycles = 0;
    }
  in
  Alcotest.(check (float 1e-9)) "l1" 0.5 (Hierarchy.l1_miss_rate c);
  Alcotest.(check (float 1e-9)) "l2" 0.2 (Hierarchy.l2_miss_rate c)

(* ------------------------------------------------------------------ *)
(* Address map                                                          *)
(* ------------------------------------------------------------------ *)

let two_array_program ~n =
  let x = B.ctx [ "i"; "j" ] in
  let i = B.var x "i" and j = B.var x "j" in
  let nest =
    B.nest "walk" x [ n; n ] [ B.read "A" [ i; j ]; B.write "B" [ i; j ] ]
  in
  Program.make ~name:"p"
    [ Array_info.make "A" [ n; n ]; Array_info.make "B" [ n; n ] ]
    [ nest ]

let test_address_map_disjoint () =
  let prog = two_array_program ~n:8 in
  let amap = Address_map.build prog ~layouts:(fun _ -> None) in
  Alcotest.(check bool) "B after A" true
    (Address_map.base amap "B" >= Address_map.base amap "A" + (8 * 8 * 4));
  (* all addresses distinct across both arrays *)
  let seen = Hashtbl.create 128 in
  List.iter
    (fun name ->
      for i = 0 to 7 do
        for j = 0 to 7 do
          let a = Address_map.address amap name [| i; j |] in
          Alcotest.(check bool) "fresh address" false (Hashtbl.mem seen a);
          Hashtbl.add seen a ()
        done
      done)
    [ "A"; "B" ];
  Alcotest.(check bool) "footprint covers" true
    (Address_map.footprint_bytes amap >= 2 * 8 * 8 * 4)

let test_address_map_alignment () =
  let prog = two_array_program ~n:8 in
  let amap = Address_map.build ~align:128 prog ~layouts:(fun _ -> None) in
  Alcotest.(check int) "A aligned" 0 (Address_map.base amap "A" mod 128);
  Alcotest.(check int) "B aligned" 0 (Address_map.base amap "B" mod 128)

let test_address_map_row_contiguity () =
  let prog = two_array_program ~n:8 in
  let amap = Address_map.build prog ~layouts:(fun _ -> None) in
  let a0 = Address_map.address amap "A" [| 2; 3 |] in
  let a1 = Address_map.address amap "A" [| 2; 4 |] in
  Alcotest.(check int) "row-major adjacency" 4 (a1 - a0)

let test_address_map_col_layout () =
  let prog = two_array_program ~n:8 in
  let layouts = function
    | "A" -> Some (Layout.col_major 2)
    | _ -> None
  in
  let amap = Address_map.build prog ~layouts in
  let a0 = Address_map.address amap "A" [| 2; 3 |] in
  let a1 = Address_map.address amap "A" [| 3; 3 |] in
  Alcotest.(check int) "column adjacency" 4 (abs (a1 - a0))

(* ------------------------------------------------------------------ *)
(* Simulation: layouts change cache behaviour                           *)
(* ------------------------------------------------------------------ *)

let column_walk_program ~n =
  (* walk B column-wise: j outer, i inner, read B[i][j] *)
  let x = B.ctx [ "j"; "i" ] in
  let j = B.var x "j" and i = B.var x "i" in
  let nest = B.nest "colwalk" x [ n; n ] [ B.read "B" [ i; j ] ] in
  Program.make ~name:"colwalk" [ Array_info.make "B" [ n; n ] ] [ nest ]

let test_layout_changes_misses () =
  let n = 64 in
  let prog = column_walk_program ~n in
  let row = Simulate.run prog ~layouts:(fun _ -> None) in
  let col =
    Simulate.run prog ~layouts:(fun _ -> Some (Layout.col_major 2))
  in
  (* a column walk through a row-major array misses on (almost) every
     access; through a column-major array it misses once per line *)
  Alcotest.(check bool) "col-major far fewer misses" true
    (col.Simulate.counters.Hierarchy.l1_misses * 4
    < row.Simulate.counters.Hierarchy.l1_misses);
  Alcotest.(check bool) "col-major fewer cycles" true
    (Simulate.cycles col < Simulate.cycles row);
  Alcotest.(check int) "trip count" (n * n) row.Simulate.trip_count

let test_simulate_deterministic () =
  let prog = column_walk_program ~n:32 in
  let r1 = Simulate.run prog ~layouts:(fun _ -> None) in
  let r2 = Simulate.run prog ~layouts:(fun _ -> None) in
  Alcotest.(check int) "same cycles" (Simulate.cycles r1) (Simulate.cycles r2)

let test_improvement_metrics () =
  let baseline =
    {
      Simulate.counters =
        {
          Hierarchy.accesses = 0;
          l1_hits = 0;
          l1_misses = 0;
          l2_hits = 0;
          l2_misses = 0;
          cycles = 200;
        };
      footprint_bytes = 0;
      trip_count = 0;
    }
  in
  let better = { baseline with Simulate.counters = { baseline.Simulate.counters with Hierarchy.cycles = 100 } } in
  Alcotest.(check (float 1e-9)) "speedup" 2.0 (Simulate.speedup ~baseline better);
  Alcotest.(check (float 1e-9)) "improvement" 50.0
    (Simulate.improvement_percent ~baseline better)

(* ------------------------------------------------------------------ *)
(* Compiled engine ≡ reference engine                                   *)
(* ------------------------------------------------------------------ *)

let counters_tuple (c : Hierarchy.counters) =
  ( c.Hierarchy.accesses,
    c.Hierarchy.l1_hits,
    c.Hierarchy.l1_misses,
    c.Hierarchy.l2_hits,
    c.Hierarchy.l2_misses,
    c.Hierarchy.cycles )

let report_ints (r : Simulate.report) =
  let a, b, c, d, e, f = counters_tuple r.Simulate.counters in
  [ a; b; c; d; e; f; r.Simulate.footprint_bytes; r.Simulate.trip_count ]

let check_reports_equal what a b =
  Alcotest.(check (list int))
    (what ^ ": counters/footprint/trips")
    (report_ints a) (report_ints b)

let matmul32_program () =
  let mm, req =
    Mlo_workloads.Kernels.matmul ~name:"mm" ~n:32 ~c:"C" ~a:"A" ~b:"B"
  in
  Program.make ~name:"bench-mm" (Mlo_workloads.Kernels.declare req) [ mm ]

let colB_layouts = function
  | "B" -> Some (Layout.col_major 2)
  | _ -> None

let test_engines_agree_matmul () =
  let prog = matmul32_program () in
  List.iter
    (fun (what, layouts) ->
      check_reports_equal what
        (Simulate.run_reference prog ~layouts)
        (Simulate.run prog ~layouts))
    [ ("row", fun _ -> None); ("colB", colB_layouts) ]

(* Pin the Table-3 matmul32 cycle counts exactly: any slip in the
   compiled address math (or in cache/hierarchy accounting) moves these
   numbers.  Values confirmed identical under both engines. *)
let pinned_matmul32_row_cycles = 292426
let pinned_matmul32_colB_cycles = 279040

let test_pinned_table3_cycles () =
  let prog = matmul32_program () in
  let row = Simulate.run prog ~layouts:(fun _ -> None) in
  let col = Simulate.run prog ~layouts:colB_layouts in
  Alcotest.(check int) "matmul32 row cycles" pinned_matmul32_row_cycles
    (Simulate.cycles row);
  Alcotest.(check int) "matmul32 colB cycles" pinned_matmul32_colB_cycles
    (Simulate.cycles col)

let test_engines_agree_suite () =
  List.iter
    (fun spec ->
      let prog = spec.Mlo_workloads.Spec.sim_program in
      check_reports_equal spec.Mlo_workloads.Spec.name
        (Simulate.run_reference prog ~layouts:(fun _ -> None))
        (Simulate.run prog ~layouts:(fun _ -> None)))
    (Mlo_workloads.Suite.all ())

(* Random-program equivalence: random affine programs (skewed accesses,
   temporal references, negative-stride lifts) under random per-array
   layout assignments from the 2-D palette. *)
let random_layout_assignment seed names =
  let rng = Rng.create seed in
  let palette =
    [|
      [| 1; 0 |]; [| 0; 1 |]; [| 1; -1 |]; [| 1; 1 |]; [| 1; 2 |];
      [| 2; 1 |]; [| 1; -2 |]; [| 2; -1 |];
    |]
  in
  let chosen =
    List.map
      (fun name ->
        if Rng.int rng 4 = 0 then (name, None)
        else
          let v = palette.(Rng.int rng (Array.length palette)) in
          (name, Some (Layout.of_hyperplane (Hyperplane.make v))))
      names
  in
  fun name -> List.assoc name chosen

let prop_compiled_equals_reference =
  QCheck.Test.make ~name:"compiled engine = reference engine" ~count:25
    (QCheck.int_range 0 10_000) (fun seed ->
      let prog =
        Random_program.generate
          {
            Random_program.default with
            name = Printf.sprintf "rand%d" seed;
            seed;
            num_arrays = 5;
            num_nests = 6;
            extent = 16;
          }
      in
      let layouts =
        random_layout_assignment (seed + 1) (Program.array_names prog)
      in
      let r = Simulate.run_reference prog ~layouts in
      let c = Simulate.run prog ~layouts in
      counters_tuple r.Simulate.counters = counters_tuple c.Simulate.counters
      && r.Simulate.footprint_bytes = c.Simulate.footprint_bytes
      && r.Simulate.trip_count = c.Simulate.trip_count)

let prop_run_many_matches_run =
  QCheck.Test.make ~name:"run_many = map run (4 domains)" ~count:10
    (QCheck.int_range 0 1_000) (fun seed ->
      let prog =
        Random_program.generate
          {
            Random_program.default with
            name = Printf.sprintf "many%d" seed;
            seed;
            num_arrays = 4;
            num_nests = 4;
            extent = 16;
          }
      in
      let names = Program.array_names prog in
      let layouts_list =
        List.init 6 (fun i -> random_layout_assignment (seed + i) names)
      in
      let batch = Simulate.run_many ~domains:4 prog ~layouts_list in
      let solo = List.map (fun layouts -> Simulate.run prog ~layouts) layouts_list in
      List.for_all2
        (fun (a : Simulate.report) (b : Simulate.report) ->
          counters_tuple a.Simulate.counters = counters_tuple b.Simulate.counters
          && a.Simulate.footprint_bytes = b.Simulate.footprint_bytes
          && a.Simulate.trip_count = b.Simulate.trip_count)
        batch solo)

let test_run_batch_mixed_programs () =
  let p1 = matmul32_program () in
  let p2 = column_walk_program ~n:32 in
  let jobs =
    [ (p1, (fun _ -> None)); (p2, (fun _ -> None)); (p1, colB_layouts) ]
  in
  let batch = Simulate.run_batch ~domains:2 jobs in
  let solo = List.map (fun (p, layouts) -> Simulate.run p ~layouts) jobs in
  List.iter2 (check_reports_equal "run_batch") solo batch

let test_address_map_unknown_array () =
  let prog = two_array_program ~n:4 in
  let amap = Address_map.build prog ~layouts:(fun _ -> None) in
  match Address_map.address amap "Z" [| 0; 0 |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    (* diagnosable: the message must name the offending array *)
    let mentions_z =
      let re = {|"Z"|} in
      let rec find i =
        i + String.length re <= String.length msg
        && (String.sub msg i (String.length re) = re || find (i + 1))
      in
      find 0
    in
    Alcotest.(check bool) "names the array" true mentions_z

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop_hits_plus_misses =
  QCheck.Test.make ~name:"hits + misses = accesses" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 200) (QCheck.int_range 0 4096))
    (fun addrs ->
      let c = small_cache () in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      Cache.hits c + Cache.misses c = List.length addrs)

let prop_second_access_hits =
  QCheck.Test.make ~name:"immediate re-access always hits" ~count:100
    (QCheck.int_range 0 100_000) (fun addr ->
      let c = small_cache () in
      ignore (Cache.access c addr);
      Cache.access c addr)

let prop_working_set_within_capacity_no_capacity_misses =
  QCheck.Test.make ~name:"small working sets only cold-miss" ~count:50
    (QCheck.int_range 1 4) (fun lines ->
      let c = small_cache () in
      (* [lines] distinct lines, all in different sets *)
      let addrs = List.init lines (fun i -> i * 16) in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      Cache.misses c = lines && Cache.hits c = lines)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_hits_plus_misses;
      prop_second_access_hits;
      prop_working_set_within_capacity_no_capacity_misses;
    ]

let equivalence_props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_compiled_equals_reference; prop_run_many_matches_run ]

let () =
  Alcotest.run "cachesim"
    [
      ( "cache",
        [
          Alcotest.test_case "geometry validation" `Quick test_geometry_validation;
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "L2 hits" `Quick test_hierarchy_l2_hit;
          Alcotest.test_case "reset" `Quick test_hierarchy_reset;
          Alcotest.test_case "miss rates" `Quick test_miss_rates;
        ] );
      ( "address_map",
        [
          Alcotest.test_case "disjoint arrays" `Quick test_address_map_disjoint;
          Alcotest.test_case "alignment" `Quick test_address_map_alignment;
          Alcotest.test_case "row contiguity" `Quick test_address_map_row_contiguity;
          Alcotest.test_case "column layout" `Quick test_address_map_col_layout;
          Alcotest.test_case "unknown array diagnosable" `Quick
            test_address_map_unknown_array;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "engines agree on matmul32" `Quick
            test_engines_agree_matmul;
          Alcotest.test_case "pinned Table-3 cycles" `Quick
            test_pinned_table3_cycles;
          Alcotest.test_case "engines agree on the suite" `Quick
            test_engines_agree_suite;
          Alcotest.test_case "run_batch mixed programs" `Quick
            test_run_batch_mixed_programs;
        ]
        @ equivalence_props );
      ( "simulate",
        [
          Alcotest.test_case "layout changes misses" `Quick test_layout_changes_misses;
          Alcotest.test_case "deterministic" `Quick test_simulate_deterministic;
          Alcotest.test_case "metrics" `Quick test_improvement_metrics;
        ] );
      ("properties", props);
    ]
