(* Branch-and-bound optimality, against an exhaustive oracle.

   The bnb scheme claims more than satisfiability: among all consistent
   assignments, it returns one of minimum separable cost.  That claim is
   checkable outright on small networks — enumerate every satisfying
   assignment with Brute, take the cheapest, and demand equality — and
   per connected component on the real workloads, where the components
   stay enumerable even when the whole network is not.  The synthetic
   costs are integer-valued floats, so sums are exact and the oracle
   comparison needs no tolerance; the workload costs are real profiler
   floats and get a relative epsilon for summation-order drift. *)

module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Bnb = Mlo_csp.Bnb
module Cdl = Mlo_csp.Cdl
module Brute = Mlo_csp.Brute
module Rng = Mlo_csp.Rng
module Stats = Mlo_csp.Stats
module Schemes = Mlo_csp.Schemes
module Trace = Mlo_obs.Trace
module Spec = Mlo_workloads.Spec
module Suite = Mlo_workloads.Suite
module Build = Mlo_netgen.Build
module Select = Mlo_netgen.Select
module Layout = Mlo_layout.Layout
module Locality = Mlo_analysis.Locality
module Optimizer = Mlo_core.Optimizer
module Simulate = Mlo_cachesim.Simulate
module Hierarchy = Mlo_cachesim.Hierarchy

(* Same generator family as test_cdl/test_schemes: small random networks
   of 2-6 variables, domains of 1-3 values, ~60% pair density, ~55%
   allowed pairs — roughly half the instances unsatisfiable. *)
let random_network seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains =
    Array.init n (fun _ -> Array.init (1 + Rng.int rng 3) Fun.id)
  in
  let net = Network.create ~names ~domains in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.int rng 100 < 60 then begin
        let pairs = ref [] in
        for vi = 0 to Array.length domains.(i) - 1 do
          for vj = 0 to Array.length domains.(j) - 1 do
            if Rng.int rng 100 < 55 then pairs := (vi, vj) :: !pairs
          done
        done;
        Network.add_allowed net i j !pairs
      end
    done
  done;
  net

let dumb_verify net a =
  let n = Network.num_vars net in
  let in_range i v = v >= 0 && v < Network.domain_size net i in
  Array.length a = n
  && List.for_all (fun i -> in_range i a.(i)) (List.init n Fun.id)
  && List.for_all
       (fun (i, j) -> Network.allowed net i a.(i) j a.(j))
       (Network.constraint_pairs net)

(* Integer-valued synthetic costs: every sum the engine or the oracle
   forms is a sum of small integers, exactly representable, so optimum
   equality is checked with [=]. *)
let random_costs seed net =
  let rng = Rng.create (seed + 424242) in
  Array.init (Network.num_vars net) (fun i ->
      Array.init (Network.domain_size net i) (fun _ ->
          float_of_int (Rng.int rng 100)))

(* Exhaustive optimum; [infinity] exactly when the network is
   unsatisfiable. *)
let oracle_min ~costs net =
  List.fold_left
    (fun best s -> Float.min best (Bnb.cost_of ~costs s))
    infinity (Brute.all_solutions net)

(* Configurations stressing different parts of the machinery: the exact
   default, incumbent seeding through the portfolio race, AC
   preprocessing (static minima stay full-domain, so the bound must
   remain admissible on the reduced domains), and a store capped at 2
   nogoods so forgetting runs constantly. *)
let bnb_configs =
  [
    ("bnb", Bnb.default_config);
    ("bnb-seeded", { Bnb.default_config with Bnb.race_seed = true });
    ( "bnb-ac",
      { Bnb.default_config with Bnb.preprocess = Solver.Arc_consistency } );
    ("bnb-forgetful", { Bnb.default_config with Bnb.learn_limit = 2 });
  ]

let prop_bnb_optimal =
  QCheck.Test.make ~name:"bnb cost equals the exhaustive optimum" ~count:300
    QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let costs = random_costs seed net in
      let comp = Network.compile net in
      let best = oracle_min ~costs net in
      List.for_all
        (fun (label, config) ->
          match (Bnb.solve_compiled ~config ~costs comp).Solver.outcome with
          | Solver.Solution a ->
            if best = infinity then
              QCheck.Test.fail_reportf
                "%s found a solution on an unsatisfiable network" label;
            if not (dumb_verify net a) then
              QCheck.Test.fail_reportf
                "%s returned an inconsistent assignment" label;
            let c = Bnb.cost_of ~costs a in
            if c <> best then
              QCheck.Test.fail_reportf "%s returned cost %g, optimum is %g"
                label c best;
            true
          | Solver.Unsatisfiable ->
            if best < infinity then
              QCheck.Test.fail_reportf
                "%s reported unsatisfiable on a satisfiable network" label;
            true
          | Solver.Aborted ->
            QCheck.Test.fail_reportf "%s aborted without a check budget" label)
        bnb_configs)

(* The component driver must preserve optimality: separable costs are
   additive across components, so the merged assignment's cost equals
   the whole-network optimum (serial and on a 2-domain pool). *)
let prop_bnb_components_optimal =
  QCheck.Test.make ~name:"component-wise bnb equals the whole-net optimum"
    ~count:200 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let costs = random_costs seed net in
      let cost name v =
        costs.(int_of_string (String.sub name 1 (String.length name - 1))).(v)
      in
      let best = oracle_min ~costs net in
      List.for_all
        (fun (label, domains) ->
          match
            (Bnb.branch_and_bound ?domains ~cost net).Solver.outcome
          with
          | Solver.Solution a ->
            if best = infinity || not (dumb_verify net a) then
              QCheck.Test.fail_reportf "%s: bad solution" label;
            if Bnb.cost_of ~costs a <> best then
              QCheck.Test.fail_reportf "%s: cost %g, optimum %g" label
                (Bnb.cost_of ~costs a) best;
            true
          | Solver.Unsatisfiable ->
            if best < infinity then
              QCheck.Test.fail_reportf "%s: unsat on satisfiable" label;
            true
          | Solver.Aborted ->
            QCheck.Test.fail_reportf "%s aborted without a budget" label)
        [ ("serial", None); ("2-domain", Some 2) ])

(* Satisfiability agreement with the first-solution schemes: bnb's
   verdict must match enhanced and cdl on every instance. *)
let prop_bnb_agrees =
  QCheck.Test.make
    ~name:"bnb agrees with enhanced/cdl on satisfiability" ~count:300
    QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let costs = random_costs seed net in
      let sat = function
        | Solver.Solution _ -> true
        | Solver.Unsatisfiable -> false
        | Solver.Aborted -> QCheck.Test.fail_report "aborted without budget"
      in
      let b = sat (Bnb.solve_compiled ~costs (Network.compile net)).Solver.outcome in
      let e =
        sat (Solver.solve ~config:(Schemes.enhanced ~seed:1 ()) net).Solver.outcome
      in
      let c = sat (Cdl.solve net).Solver.outcome in
      if b <> e || b <> c then
        QCheck.Test.fail_reportf "verdicts disagree: bnb=%b enhanced=%b cdl=%b"
          b e c;
      true)

(* Bound admissibility as a pure property: for any partial assignment
   consistent with a satisfying completion, the lower bound never
   exceeds the completion's cost (here with full-domain liveness, a
   superset of any forward-checked state — its minima can only be
   smaller, so the inequality is the strongest form). *)
let prop_lower_bound_admissible =
  QCheck.Test.make
    ~name:"lower bound never exceeds a satisfying completion" ~count:300
    QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let costs = random_costs seed net in
      let rng = Rng.create (seed + 31337) in
      let live _ _ = true in
      let take n l =
        List.filteri (fun i _ -> i < n) l
      in
      List.for_all
        (fun sol ->
          let partial =
            Array.map (fun v -> if Rng.int rng 100 < 50 then v else -1) sol
          in
          let lb = Bnb.lower_bound ~costs ~assignment:partial ~live in
          let c = Bnb.cost_of ~costs sol in
          if lb > c then
            QCheck.Test.fail_reportf
              "lower bound %g exceeds completion cost %g" lb c;
          (* degenerate case: a complete assignment bounds to its own
             exact cost *)
          Bnb.lower_bound ~costs ~assignment:sol ~live = c)
        (take 50 (Brute.all_solutions net)))

(* ------------------------------------------------------------------ *)
(* Incumbent trace                                                      *)
(* ------------------------------------------------------------------ *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

(* Costs of the "incumbent" instants, in emission order.  The trace
   renderer writes {"name":"incumbent",...,"args":{"cost":C},...} with
   fields in that order, so a textual scan is reliable. *)
let incumbent_costs dump =
  let rec go acc from =
    match find_sub dump "\"name\":\"incumbent\"" from with
    | None -> List.rev acc
    | Some i -> (
      match find_sub dump "\"cost\":" i with
      | None -> List.rev acc
      | Some j ->
        let start = j + 7 in
        let k = ref start in
        while
          !k < String.length dump
          &&
          match dump.[!k] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          incr k
        done;
        go (float_of_string (String.sub dump start (!k - start)) :: acc) !k)
  in
  go [] 0

let rec strictly_decreasing = function
  | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
  | _ -> true

(* Every incumbent instant improves strictly on the previous one, the
   count matches stats.incumbents, and the last one is the cost of the
   returned solution. *)
let test_incumbent_monotone () =
  let checked = ref 0 in
  for seed = 0 to 40 do
    let net = random_network seed in
    let costs = random_costs seed net in
    let comp = Network.compile net in
    List.iter
      (fun (label, config) ->
        Trace.start ();
        let r =
          Fun.protect
            ~finally:(fun () -> Trace.stop ())
            (fun () ->
              let r = Bnb.solve_compiled ~config ~costs comp in
              (r, Trace.dump ()))
        in
        let result, dump = r in
        let incs = incumbent_costs dump in
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d: incumbents strictly improve" label seed)
          true (strictly_decreasing incs);
        Alcotest.(check int)
          (Printf.sprintf "%s seed %d: instants match stats" label seed)
          result.Solver.stats.Stats.incumbents (List.length incs);
        match result.Solver.outcome with
        | Solver.Solution a ->
          incr checked;
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: last incumbent is the answer" label
               seed)
            true
            (match List.rev incs with
            | last :: _ -> last = Bnb.cost_of ~costs a
            | [] -> false)
        | Solver.Unsatisfiable ->
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d: no incumbents when unsat" label seed)
            0 (List.length incs)
        | Solver.Aborted -> Alcotest.fail "aborted without budget")
      [ ("bnb", Bnb.default_config);
        ("bnb-seeded", { Bnb.default_config with Bnb.race_seed = true }) ]
  done;
  (* the loop must have exercised the satisfiable path *)
  Alcotest.(check bool) "some satisfiable instances" true (!checked > 10)

(* ------------------------------------------------------------------ *)
(* Config validation                                                    *)
(* ------------------------------------------------------------------ *)

let test_invalid_config () =
  let net = random_network 3 in
  let costs = random_costs 3 net in
  let comp = Network.compile net in
  Alcotest.check_raises "negative slack rejected"
    (Invalid_argument "Bnb: bound_slack must be >= 0") (fun () ->
      ignore
        (Bnb.solve_compiled
           ~config:{ Bnb.default_config with Bnb.bound_slack = -0.5 }
           ~costs comp));
  Alcotest.check_raises "rank mismatch rejected"
    (Invalid_argument "Bnb: costs rank mismatch") (fun () ->
      ignore (Bnb.solve_compiled ~costs:[||] comp))

(* Positive slack keeps the (1 + s)-approximation guarantee. *)
let prop_bound_slack_approximates =
  QCheck.Test.make ~name:"slack solutions stay within (1+s) of optimal"
    ~count:200 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let costs = random_costs seed net in
      let comp = Network.compile net in
      let best = oracle_min ~costs net in
      let config = { Bnb.default_config with Bnb.bound_slack = 0.5 } in
      match (Bnb.solve_compiled ~config ~costs comp).Solver.outcome with
      | Solver.Solution a ->
        if best = infinity then
          QCheck.Test.fail_report "solution on an unsatisfiable network";
        Bnb.cost_of ~costs a <= (best *. 1.5) +. 1e-9
      | Solver.Unsatisfiable -> best = infinity
      | Solver.Aborted -> QCheck.Test.fail_report "aborted without budget")

(* ------------------------------------------------------------------ *)
(* The real pipeline: five benchmarks + the scale family                *)
(* ------------------------------------------------------------------ *)

(* The separable profiler cost the optimizer hands bnb, reconstructed
   here so the oracle can price arbitrary (variable, value) choices. *)
let profiler_cost spec build =
  let prof = Locality.profiler spec.Spec.program in
  let net = build.Build.network in
  fun name v ->
    Array.fold_left ( +. ) 0.0
      (prof ~array_name:name
         ~layout:(Network.value net (Build.var_of_array build name) v))

let assignment_cost cost net a =
  let total = ref 0.0 in
  Array.iteri (fun i v -> total := !total +. cost (Network.name net i) v) a;
  !total

(* Per-component oracle on a real workload network: every component
   whose assignment space is enumerable is brute-forced and its optimum
   compared against a bnb solve of the induced subnetwork.  Returns the
   number of components actually checked. *)
let check_component_oracles ~label ~cost net =
  let checked = ref 0 in
  Array.iter
    (fun vars ->
      let space =
        Array.fold_left
          (fun p i -> p *. float_of_int (Network.domain_size net i))
          1.0 vars
      in
      if space <= 20_000.0 then begin
        let sub = Network.induced net vars in
        let best =
          List.fold_left
            (fun b s -> Float.min b (assignment_cost cost sub s))
            infinity (Brute.all_solutions sub)
        in
        match (Bnb.solve ~cost sub).Solver.outcome with
        | Solver.Solution a ->
          incr checked;
          let c = assignment_cost cost sub a in
          Alcotest.(check bool)
            (Printf.sprintf "%s component of %d: bnb %.17g = oracle %.17g"
               label (Array.length vars) c best)
            true
            (Float.abs (c -. best) <= 1e-12 *. Float.max 1.0 best)
        | Solver.Unsatisfiable ->
          Alcotest.(check bool)
            (label ^ ": component unsat iff oracle found nothing")
            true (best = infinity)
        | Solver.Aborted -> Alcotest.fail (label ^ ": component solve aborted")
      end)
    (Network.components net);
  !checked

let test_benchmark_component_oracles () =
  let total = ref 0 in
  List.iter
    (fun spec ->
      let build = Spec.extract spec in
      let cost = profiler_cost spec build in
      total :=
        !total
        + check_component_oracles ~label:spec.Spec.name ~cost
            build.Build.network)
    (Suite.all ());
  Alcotest.(check bool)
    (Printf.sprintf "enumerable components were checked (%d)" !total)
    true (!total >= 1)

let test_scale_component_oracles () =
  List.iter
    (fun n ->
      let spec = Suite.scale n in
      let build = Spec.extract spec in
      let net = build.Build.network in
      let cost = profiler_cost spec build in
      let checked =
        check_component_oracles
          ~label:(Printf.sprintf "scale-%d" n)
          ~cost net
      in
      Alcotest.(check bool)
        (Printf.sprintf "scale-%d: checked %d components" n checked)
        true (checked >= 1);
      (* whole-network bnb (serial and parallel) never beats the sum the
         per-component solves establish, and never loses to the default
         first-solution scheme *)
      let solve_total domains =
        match (Bnb.branch_and_bound ?domains ~cost net).Solver.outcome with
        | Solver.Solution a -> assignment_cost cost net a
        | _ -> Alcotest.fail (Printf.sprintf "scale-%d: bnb found nothing" n)
      in
      let ser = solve_total None and par = solve_total (Some 2) in
      Alcotest.(check bool)
        (Printf.sprintf "scale-%d: serial = parallel (%.17g vs %.17g)" n ser
           par)
        true
        (Float.abs (ser -. par) <= 1e-9 *. Float.max 1.0 ser);
      match
        (Solver.solve_components ~config:(Schemes.enhanced ~seed:1 ()) net)
          .Solver.outcome
      with
      | Solver.Solution a ->
        let e = assignment_cost cost net a in
        Alcotest.(check bool)
          (Printf.sprintf "scale-%d: bnb (%.17g) <= enhanced (%.17g)" n ser e)
          true
          (ser <= e +. (1e-9 *. Float.max 1.0 e))
      | _ -> Alcotest.fail (Printf.sprintf "scale-%d: enhanced found nothing" n))
    [ 10; 100 ]

(* ------------------------------------------------------------------ *)
(* Cross-scheme dominance and the Med-Im04 golden                       *)
(* ------------------------------------------------------------------ *)

let other_schemes =
  [
    ("enhanced", Optimizer.Enhanced 1);
    ("enhanced-ac", Optimizer.Enhanced_ac 1);
    ("cdl", Optimizer.Cdl Cdl.default_config);
    ("portfolio", Optimizer.Portfolio Mlo_csp.Portfolio.default_config);
  ]

let test_cross_scheme_cost () =
  List.iter
    (fun spec ->
      let prog = spec.Spec.program in
      let sol =
        Optimizer.optimize ~candidates:spec.Spec.candidates
          (Optimizer.Bnb Bnb.default_config) prog
      in
      let cost_bnb =
        match sol.Optimizer.objective_value with
        | Some c -> c
        | None -> Alcotest.fail (spec.Spec.name ^ ": bnb without objective")
      in
      let st = Option.get sol.Optimizer.solver_stats in
      Alcotest.(check bool)
        (spec.Spec.name ^ ": at least one incumbent")
        true
        (st.Stats.incumbents >= 1);
      List.iter
        (fun (label, scheme) ->
          match
            Optimizer.optimize ~candidates:spec.Spec.candidates scheme prog
          with
          | other ->
            let c = Optimizer.objective_cost prog other.Optimizer.layouts in
            Alcotest.(check bool)
              (Printf.sprintf "%s: bnb (%.17g) <= %s (%.17g)" spec.Spec.name
                 cost_bnb label c)
              true
              (cost_bnb <= c +. (1e-9 *. Float.max 1.0 c))
          | exception Optimizer.No_solution _ -> ())
        other_schemes)
    (Suite.all ())

(* The two objectives are ordered by construction — the distinct-line
   count is the cold-miss floor of the miss estimate — and must actually
   diverge on layouts whose locality is not served (otherwise the
   [--objective] switch would be vacuous). *)
let test_objective_metrics () =
  let strict = ref false in
  List.iter
    (fun spec ->
      let prog = spec.Spec.program in
      let build = Spec.extract spec in
      let net = build.Build.network in
      for i = 0 to Network.num_vars net - 1 do
        let name = Network.name net i in
        for v = 0 to Network.domain_size net i - 1 do
          let layouts = [ (name, Network.value net i v) ] in
          let m =
            Optimizer.objective_cost ~objective:Optimizer.Estimated_misses prog
              layouts
          in
          let l =
            Optimizer.objective_cost ~objective:Optimizer.Distinct_lines prog
              layouts
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s/%d: lines (%g) <= misses (%g)"
               spec.Spec.name name v l m)
            true
            (l <= m +. (1e-9 *. Float.max 1.0 m));
          if l < m -. 1e-9 then strict := true
        done
      done)
    (Suite.all ());
  Alcotest.(check bool) "metrics diverge on some layout" true !strict

let simulated_cycles spec layouts =
  let lookup n = List.assoc_opt n layouts in
  let restructured = Select.restructure spec.Spec.sim_program lookup in
  (Simulate.run restructured ~layouts:lookup).Simulate.counters
    .Hierarchy.cycles

(* Med-Im04 is where the optimizing search visibly pays: the cost model
   prefers a cheaper satisfying assignment than the one the enhanced
   scheme stumbles on first.  The simulated-cycle totals are pinned like
   test_golden's Table-3 numbers (enhanced's golden is 1639362). *)
let test_med_im04_golden () =
  let spec = Suite.by_name "med-im04" in
  let sol =
    Optimizer.optimize ~candidates:spec.Spec.candidates
      (Optimizer.Bnb Bnb.default_config) spec.Spec.program
  in
  let st = Option.get sol.Optimizer.solver_stats in
  Alcotest.(check bool) "bound pruning fired" true (st.Stats.bounded > 0);
  let cycles = simulated_cycles spec sol.Optimizer.layouts in
  Alcotest.(check int) "Med-Im04 bnb cycles" 1630436 cycles;
  Alcotest.(check bool)
    (Printf.sprintf "no worse than enhanced's golden (%d vs 1639362)" cycles)
    true (cycles <= 1639362)

(* ------------------------------------------------------------------ *)
(* CLI error contract                                                   *)
(* ------------------------------------------------------------------ *)

(* Resolved against the test binary's own location so it works both
   under `dune runtest` (cwd = _build/default/test) and `dune exec`
   from the project root. *)
let layoutopt =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/layoutopt.exe"

let run_for_error args =
  let err = Filename.temp_file "layoutopt_bnb" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s >/dev/null 2>%s" layoutopt args
         (Filename.quote err))
  in
  let ic = open_in err in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove err;
  (code, List.rev !lines)

(* Bad bnb flags die like every other CLI validation: one line on
   stderr naming the problem, exit 2. *)
let check_one_line_error name args expect_prefix =
  let code, lines = run_for_error args in
  Alcotest.(check int) (name ^ ": exit code") 2 code;
  match lines with
  | [ line ] ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: %S starts with %S" name line expect_prefix)
      true
      (String.starts_with ~prefix:expect_prefix line)
  | _ ->
    Alcotest.fail
      (Printf.sprintf "%s: expected exactly one stderr line, got %d" name
         (List.length lines))

let test_cli_errors () =
  check_one_line_error "negative slack"
    "solve -s bnb -w mxm --bound-slack=-1"
    "layoutopt: --bound-slack must be non-negative";
  check_one_line_error "unknown objective"
    "solve -s bnb -w mxm --objective cycles"
    "layoutopt: unknown objective 'cycles'";
  check_one_line_error "unknown scheme still dies" "solve -s bogus -w mxm"
    "layoutopt: unknown scheme 'bogus'"

let () =
  Alcotest.run "bnb"
    [
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest prop_bnb_optimal;
          QCheck_alcotest.to_alcotest prop_bnb_components_optimal;
          QCheck_alcotest.to_alcotest prop_bnb_agrees;
        ] );
      ( "bound",
        [
          QCheck_alcotest.to_alcotest prop_lower_bound_admissible;
          QCheck_alcotest.to_alcotest prop_bound_slack_approximates;
          Alcotest.test_case "invalid configs rejected" `Quick
            test_invalid_config;
        ] );
      ( "trace",
        [ Alcotest.test_case "incumbents improve monotonically" `Quick
            test_incumbent_monotone ] );
      ( "workloads",
        [
          Alcotest.test_case "benchmark components match oracle" `Slow
            test_benchmark_component_oracles;
          Alcotest.test_case "scale components match oracle" `Slow
            test_scale_component_oracles;
          Alcotest.test_case "bnb never costlier than other schemes" `Slow
            test_cross_scheme_cost;
          Alcotest.test_case "objective metrics ordered and distinct" `Quick
            test_objective_metrics;
          Alcotest.test_case "Med-Im04 golden" `Slow test_med_im04_golden;
        ] );
      ( "cli",
        [ Alcotest.test_case "one-line errors, exit 2" `Quick test_cli_errors ]
      );
    ]
