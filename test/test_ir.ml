(* Tests for the loop-nest IR: affine expressions, accesses, nests,
   programs, dependence analysis and cost model. *)

module Intvec = Mlo_linalg.Intvec
module Intmat = Mlo_linalg.Intmat
module Affine = Mlo_ir.Affine
module Access = Mlo_ir.Access
module Loop_nest = Mlo_ir.Loop_nest
module Array_info = Mlo_ir.Array_info
module Program = Mlo_ir.Program
module Builder = Mlo_ir.Builder
module Dependence = Mlo_ir.Dependence
module Cost = Mlo_ir.Cost

let vec = Alcotest.testable (Fmt.of_to_string Intvec.to_string) Intvec.equal

(* ------------------------------------------------------------------ *)
(* Affine                                                               *)
(* ------------------------------------------------------------------ *)

let test_affine_basics () =
  let e = Affine.make [ 2; -1 ] 3 in
  Alcotest.(check int) "depth" 2 (Affine.depth e);
  Alcotest.(check int) "coeff 0" 2 (Affine.coeff e 0);
  Alcotest.(check int) "eval" 4 (Affine.eval e [| 1; 1 |]);
  Alcotest.(check int) "const eval" 7 (Affine.eval (Affine.const 2 7) [| 9; 9 |]);
  Alcotest.(check int) "var eval" 5 (Affine.eval (Affine.var 2 1) [| 3; 5 |])

let test_affine_arith () =
  let a = Affine.make [ 1; 0 ] 1 and b = Affine.make [ 0; 2 ] 2 in
  Alcotest.(check bool) "add" true
    (Affine.equal (Affine.add a b) (Affine.make [ 1; 2 ] 3));
  Alcotest.(check bool) "sub" true
    (Affine.equal (Affine.sub a b) (Affine.make [ 1; -2 ] (-1)));
  Alcotest.(check bool) "scale" true
    (Affine.equal (Affine.scale 3 a) (Affine.make [ 3; 0 ] 3));
  Alcotest.(check bool) "is_constant" true (Affine.is_constant (Affine.const 3 5));
  Alcotest.(check bool) "not constant" false (Affine.is_constant a)

let test_affine_permute () =
  let e = Affine.make [ 1; 2; 3 ] 0 in
  let p = Affine.permute [| 2; 0; 1 |] e in
  (* new depth 0 takes old depth 2's coefficient *)
  Alcotest.(check int) "coeff" 3 (Affine.coeff p 0);
  Alcotest.(check int) "coeff" 1 (Affine.coeff p 1);
  Alcotest.(check int) "coeff" 2 (Affine.coeff p 2)

let test_affine_pp () =
  let names = [| "i"; "j" |] in
  Alcotest.(check string) "mixed" "i+2*j-1"
    (Affine.to_string names (Affine.make [ 1; 2 ] (-1)));
  Alcotest.(check string) "zero" "0" (Affine.to_string names (Affine.const 2 0));
  Alcotest.(check string) "negative lead" "-i+j"
    (Affine.to_string names (Affine.make [ -1; 1 ] 0))

(* ------------------------------------------------------------------ *)
(* Array_info / Access                                                  *)
(* ------------------------------------------------------------------ *)

let test_array_info () =
  let a = Array_info.make ~elem_size:8 "A" [ 10; 20 ] in
  Alcotest.(check int) "rank" 2 (Array_info.rank a);
  Alcotest.(check int) "cells" 200 (Array_info.cells a);
  Alcotest.(check int) "bytes" 1600 (Array_info.size_bytes a);
  Alcotest.check_raises "empty" (Invalid_argument "Array_info.make: no dimensions")
    (fun () -> ignore (Array_info.make "X" []));
  Alcotest.check_raises "bad extent"
    (Invalid_argument "Array_info.make: non-positive extent") (fun () ->
      ignore (Array_info.make "X" [ 0 ]))

let fig2_accesses () =
  (* the paper's Figure 2: Q1[i1+i2][i2], Q2[i1+i2][i1] *)
  let q1 = Access.read "Q1" [ Affine.make [ 1; 1 ] 0; Affine.make [ 0; 1 ] 0 ] in
  let q2 = Access.read "Q2" [ Affine.make [ 1; 1 ] 0; Affine.make [ 1; 0 ] 0 ] in
  (q1, q2)

let test_access_matrix () =
  let q1, q2 = fig2_accesses () in
  Alcotest.(check bool) "Q1 matrix" true
    (Intmat.equal (Access.matrix q1) (Intmat.of_lists [ [ 1; 1 ]; [ 0; 1 ] ]));
  Alcotest.(check bool) "Q2 matrix" true
    (Intmat.equal (Access.matrix q2) (Intmat.of_lists [ [ 1; 1 ]; [ 1; 0 ] ]));
  Alcotest.check vec "element at" [| 5; 2 |] (Access.element_at q1 [| 3; 2 |]);
  Alcotest.(check int) "rank" 2 (Access.rank q1);
  Alcotest.(check int) "depth" 2 (Access.depth q1)

let test_access_offsets () =
  let a = Access.write "B" [ Affine.make [ 1; 0 ] 2; Affine.make [ 0; 1 ] (-1) ] in
  Alcotest.check vec "offset" [| 2; -1 |] (Access.offset a);
  Alcotest.(check bool) "is_write" true (Access.is_write a)

(* ------------------------------------------------------------------ *)
(* Loop_nest                                                            *)
(* ------------------------------------------------------------------ *)

let simple_nest () =
  let q1, q2 = fig2_accesses () in
  Loop_nest.make ~name:"fig2"
    [ { Loop_nest.var = "i1"; lo = 0; hi = 4 }; { Loop_nest.var = "i2"; lo = 0; hi = 3 } ]
    [ q1; q2 ]

let test_nest_basics () =
  let nest = simple_nest () in
  Alcotest.(check int) "depth" 2 (Loop_nest.depth nest);
  Alcotest.(check int) "trip count" 12 (Loop_nest.trip_count nest);
  Alcotest.(check (list string)) "arrays" [ "Q1"; "Q2" ]
    (Loop_nest.arrays_touched nest);
  Alcotest.check vec "innermost step" [| 0; 1 |] (Loop_nest.innermost_step nest)

let test_nest_iter_order () =
  let nest = simple_nest () in
  let seen = ref [] in
  Loop_nest.iter nest (fun iv -> seen := Intvec.copy iv :: !seen);
  let seen = List.rev !seen in
  Alcotest.(check int) "count" 12 (List.length seen);
  (match seen with
  | first :: second :: _ ->
    Alcotest.check vec "first" [| 0; 0 |] first;
    Alcotest.check vec "second (innermost varies)" [| 0; 1 |] second
  | _ -> Alcotest.fail "expected iterations");
  Alcotest.check vec "last" [| 3; 2 |] (List.nth seen 11)

let test_nest_permute () =
  let nest = simple_nest () in
  let swapped = Loop_nest.interchange nest in
  Alcotest.(check string) "outer var" "i2" (Loop_nest.loops swapped).(0).Loop_nest.var;
  (* Q1[i1+i2][i2] becomes, in (i2, i1) space, Q1[i2+i1][i2]: the access
     matrix columns swap *)
  let acc = (Loop_nest.accesses swapped).(0) in
  Alcotest.(check bool) "access permuted" true
    (Intmat.equal (Access.matrix acc) (Intmat.of_lists [ [ 1; 1 ]; [ 1; 0 ] ]));
  Alcotest.check_raises "bad perm"
    (Invalid_argument "Loop_nest.permute: not a permutation") (fun () ->
      ignore (Loop_nest.permute nest [| 0; 0 |]))

let test_nest_permutations () =
  let nest = simple_nest () in
  let perms = Loop_nest.permutations nest in
  Alcotest.(check int) "2! orders" 2 (List.length perms);
  (match perms with
  | (p0, n0) :: _ ->
    Alcotest.(check bool) "identity first" true (p0 = [| 0; 1 |]);
    Alcotest.(check bool) "identity nest unchanged" true (Loop_nest.equal n0 nest)
  | [] -> Alcotest.fail "no permutations")

let test_nest_validation () =
  Alcotest.check_raises "empty loop" (Invalid_argument "Loop_nest.make: empty loop")
    (fun () ->
      ignore
        (Loop_nest.make ~name:"bad"
           [ { Loop_nest.var = "i"; lo = 3; hi = 3 } ]
           [ Access.read "A" [ Affine.var 1 0 ] ]));
  Alcotest.check_raises "depth mismatch"
    (Invalid_argument "Loop_nest.make: access depth differs from nest depth")
    (fun () ->
      ignore
        (Loop_nest.make ~name:"bad"
           [ { Loop_nest.var = "i"; lo = 0; hi = 3 } ]
           [ Access.read "A" [ Affine.var 2 0 ] ]))

(* ------------------------------------------------------------------ *)
(* Builder                                                              *)
(* ------------------------------------------------------------------ *)

let test_builder () =
  let x = Builder.ctx [ "i"; "j" ] in
  let e = Builder.(var x "i" +: (2 *: var x "j") -: const x 1) in
  Alcotest.(check bool) "expression" true (Affine.equal e (Affine.make [ 1; 2 ] (-1)));
  let nest = Builder.nest "n" x [ 4; 5 ] [ Builder.read "A" [ e; e ] ] in
  Alcotest.(check int) "trip" 20 (Loop_nest.trip_count nest);
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Builder.var: unknown variable k") (fun () ->
      ignore (Builder.var x "k"))

(* ------------------------------------------------------------------ *)
(* Program                                                              *)
(* ------------------------------------------------------------------ *)

let small_program () =
  let nest = simple_nest () in
  Program.make ~name:"p"
    [ Array_info.make "Q1" [ 8; 4 ]; Array_info.make "Q2" [ 8; 4 ] ]
    [ nest ]

let test_program_basics () =
  let p = small_program () in
  Alcotest.(check (list string)) "names" [ "Q1"; "Q2" ] (Program.array_names p);
  Alcotest.(check int) "index" 1 (Program.array_index p "Q2");
  Alcotest.(check int) "data bytes" (2 * 8 * 4 * 4) (Program.data_size_bytes p);
  Alcotest.(check int) "nests touching" 1
    (List.length (Program.nests_touching p "Q1"));
  Alcotest.(check int) "total trips" 12 (Program.total_trip_count p)

let test_program_validation () =
  let nest = simple_nest () in
  Alcotest.check_raises "undeclared array"
    (Invalid_argument "Program.make: nest fig2 references undeclared array Q2")
    (fun () ->
      ignore (Program.make ~name:"p" [ Array_info.make "Q1" [ 8; 4 ] ] [ nest ]));
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Program.make: access to Q1 has rank 2, array has rank 1")
    (fun () ->
      ignore
        (Program.make ~name:"p"
           [ Array_info.make "Q1" [ 8 ]; Array_info.make "Q2" [ 8; 4 ] ]
           [ nest ]))

(* ------------------------------------------------------------------ *)
(* Dependence                                                           *)
(* ------------------------------------------------------------------ *)

let test_dependence_none_for_reads () =
  (* two reads: never a dependence *)
  let nest = simple_nest () in
  Alcotest.(check int) "no deps" 0 (List.length (Dependence.deps nest))

let test_dependence_uniform_distance () =
  (* A[i][j] written, A[i-1][j] read: distance (1, 0) *)
  let w = Access.write "A" [ Affine.make [ 1; 0 ] 0; Affine.make [ 0; 1 ] 0 ] in
  let r = Access.read "A" [ Affine.make [ 1; 0 ] (-1); Affine.make [ 0; 1 ] 0 ] in
  let nest =
    Loop_nest.make ~name:"dep"
      [ { Loop_nest.var = "i"; lo = 0; hi = 4 }; { Loop_nest.var = "j"; lo = 0; hi = 4 } ]
      [ w; r ]
  in
  (match Dependence.deps nest with
  | [ (0, 1, Dependence.Distance d) ] -> Alcotest.check vec "distance" [| 1; 0 |] d
  | l -> Alcotest.fail (Printf.sprintf "expected 1 distance, got %d" (List.length l)));
  (* interchange keeps it lexicographically positive: (0,1) ... wait, the
     permuted distance is (0, 1): still positive -> legal *)
  Alcotest.(check bool) "interchange legal" true
    (Dependence.legal_permutation nest [| 1; 0 |])

let test_dependence_blocks_interchange () =
  (* classic anti-ordering: A[i][j] = A[i-1][j+1]: distance (1, -1);
     interchanged becomes (-1, 1): lex negative -> illegal *)
  let w = Access.write "A" [ Affine.make [ 1; 0 ] 0; Affine.make [ 0; 1 ] 0 ] in
  let r = Access.read "A" [ Affine.make [ 1; 0 ] (-1); Affine.make [ 0; 1 ] 1 ] in
  let nest =
    Loop_nest.make ~name:"dep"
      [ { Loop_nest.var = "i"; lo = 0; hi = 4 }; { Loop_nest.var = "j"; lo = 0; hi = 4 } ]
      [ w; r ]
  in
  Alcotest.(check bool) "identity legal" true
    (Dependence.legal_permutation nest [| 0; 1 |]);
  Alcotest.(check bool) "interchange illegal" false
    (Dependence.legal_permutation nest [| 1; 0 |]);
  Alcotest.(check int) "only identity survives" 1
    (List.length (Dependence.legal_permutations nest))

let test_dependence_matmul_all_legal () =
  let nest, _ =
    Mlo_workloads.Kernels.matmul ~name:"mm" ~n:8 ~c:"C" ~a:"A" ~b:"B"
  in
  Alcotest.(check int) "all 6 orders legal" 6
    (List.length (Dependence.legal_permutations nest))

let test_dependence_gcd_independence () =
  (* A[2i] written, A[2i+1] read: even vs odd cells, never aliases *)
  let w = Access.write "A" [ Affine.make [ 2 ] 0 ] in
  let r = Access.read "A" [ Affine.make [ 2 ] 1 ] in
  let nest =
    Loop_nest.make ~name:"par" [ { Loop_nest.var = "i"; lo = 0; hi = 8 } ] [ w; r ]
  in
  Alcotest.(check int) "independent" 0 (List.length (Dependence.deps nest))

let stride_nest wc woff rc roff =
  (* non-uniform 1-d pair: A[wc*i + woff] written, A[rc*i + roff] read *)
  let w = Access.write "A" [ Affine.make [ wc ] woff ] in
  let r = Access.read "A" [ Affine.make [ rc ] roff ] in
  Loop_nest.make ~name:"stride"
    [ { Loop_nest.var = "i"; lo = 0; hi = 8 } ]
    [ w; r ]

let test_dependence_nonuniform_exact () =
  (* gcd(4,6)=2: an offset difference of 1 is unreachable (independent);
     of 2 reachable, and the Presburger engine resolves what the GCD
     era reported as Unknown into the exact forward direction: the
     realized distances are {-1, -2}, i.e. the read at i' precedes the
     write at i > i', a (<) dependence after normalization *)
  Alcotest.(check int) "offset-only conflict: independent" 0
    (List.length (Dependence.deps (stride_nest 4 0 6 1)));
  (match Dependence.deps (stride_nest 4 0 6 2) with
  | [ (0, 1, Dependence.Direction [| Dependence.Lt |]) ] -> ()
  | l -> Alcotest.failf "expected one (<) direction, got %d deps" (List.length l));
  (* coprime strides: gcd 1 divides every offset, so the GCD test could
     never exclude a dependence; the exact engine still resolves it *)
  match Dependence.deps (stride_nest 2 0 3 1) with
  | [ (0, 1, Dependence.Direction [| Dependence.Lt |]) ] -> ()
  | l -> Alcotest.failf "expected one (<) direction, got %d deps" (List.length l)

let test_dependence_transpose_pins_identity () =
  (* A[i][j] written, A[j][i] read: the realized distances are
     t*(1, -1) for t = 1..3, summarized as the direction vector (<, >)
     -- which indeed rejects the interchange, pinning the nest *)
  let w =
    Access.write "A" [ Affine.make [ 1; 0 ] 0; Affine.make [ 0; 1 ] 0 ]
  in
  let r =
    Access.read "A" [ Affine.make [ 0; 1 ] 0; Affine.make [ 1; 0 ] 0 ]
  in
  let nest =
    Loop_nest.make ~name:"transpose"
      [
        { Loop_nest.var = "i"; lo = 0; hi = 4 };
        { Loop_nest.var = "j"; lo = 0; hi = 4 };
      ]
      [ w; r ]
  in
  (match Dependence.deps nest with
  | [ (0, 1, Dependence.Direction [| Dependence.Lt; Dependence.Gt |]) ] -> ()
  | l -> Alcotest.failf "expected one (<, >) direction, got %d deps" (List.length l));
  Alcotest.(check bool) "interchange illegal" false
    (Dependence.legal_permutation nest [| 1; 0 |]);
  match Dependence.legal_permutations nest with
  | [ (p, n) ] ->
    Alcotest.(check bool) "only identity survives" true (p = [| 0; 1 |]);
    Alcotest.(check bool) "identity nest unchanged" true (Loop_nest.equal n nest)
  | l -> Alcotest.failf "expected only identity, got %d orders" (List.length l)

let test_dependence_pair_attribution () =
  (* three references, one dependent pair: deps must name the
     write/read pair carrying the distance, by access index *)
  let b = Access.read "B" [ Affine.make [ 1; 0 ] 0; Affine.make [ 0; 1 ] 0 ] in
  let w = Access.write "A" [ Affine.make [ 1; 0 ] 0; Affine.make [ 0; 1 ] 0 ] in
  let r = Access.read "A" [ Affine.make [ 1; 0 ] (-1); Affine.make [ 0; 1 ] 0 ] in
  let nest =
    Loop_nest.make ~name:"attr"
      [
        { Loop_nest.var = "i"; lo = 0; hi = 4 };
        { Loop_nest.var = "j"; lo = 0; hi = 4 };
      ]
      [ b; w; r ]
  in
  (match Dependence.deps nest with
  | [ (1, 2, Dependence.Distance d) ] ->
    Alcotest.check vec "distance" [| 1; 0 |] d
  | l -> Alcotest.failf "expected one attributed dep, got %d" (List.length l));
  match List.filter (fun (_, _, ds) -> ds <> []) (Dependence.pair_deps nest) with
  | [ (1, 2, _) ] -> ()
  | l -> Alcotest.failf "expected one carrying pair, got %d" (List.length l)

(* Regression (PR 10): the old analyzer's homogeneous nullity-1 case
   claimed the nullspace basis vector was the *only* realized distance.
   In truth every in-bounds multiple (both lex signs) is realized: the
   exact engine reports the direction set instead. *)
let test_dependence_homogeneous_distance_set () =
  let w = Access.write "A" [ Affine.make [ 1; 1 ] 0 ] in
  let r = Access.read "A" [ Affine.make [ 1; 1 ] 0 ] in
  let nest =
    Loop_nest.make ~name:"fold"
      [
        { Loop_nest.var = "i"; lo = 0; hi = 4 };
        { Loop_nest.var = "j"; lo = 0; hi = 4 };
      ]
      [ w; r ]
  in
  let ds = Dependence.deps nest in
  Alcotest.(check bool) "some dependence survives" true (ds <> []);
  List.iter
    (fun (_, _, d) ->
      match d with
      | Dependence.Distance v ->
        Alcotest.failf "old unsound single distance resurfaced: %s"
          (Format.asprintf "%a" Dependence.pp_dep (Dependence.Distance v))
      | Dependence.Direction dirs ->
        (* distances t*(1,-1) and t*(-1,1) are realized: the normalized
           summary must be (<, >), never a single exact vector *)
        if dirs <> [| Dependence.Lt; Dependence.Gt |] then
          Alcotest.failf "expected (<, >), got %s"
            (Format.asprintf "%a" Dependence.pp_dep d))
    ds;
  Alcotest.(check bool) "interchange still illegal" false
    (Dependence.legal_permutation nest [| 1; 0 |])

(* Regression (PR 10): a nullspace basis vector exceeding the trip count
   is unrealizable -- the GCD-era analyzer nevertheless reported it as an
   Exact dependence and rejected the interchange (a bounds-blind false
   dependence).  The bounded system proves independence. *)
let test_dependence_bounds_blind_false_dep_gone () =
  let w = Access.write "A" [ Affine.make [ 1; 4 ] 0 ] in
  let r = Access.read "A" [ Affine.make [ 1; 4 ] 0 ] in
  let nest =
    Loop_nest.make ~name:"narrow"
      [
        { Loop_nest.var = "i"; lo = 0; hi = 3 };
        { Loop_nest.var = "j"; lo = 0; hi = 8 };
      ]
      [ w; r ]
  in
  (* basis distance (4,-1) would need |delta_i| = 4 > 2 = max trip *)
  Alcotest.(check int) "proved independent" 0
    (List.length (Dependence.deps nest));
  Alcotest.(check int) "both orders legal" 2
    (List.length (Dependence.legal_permutations nest))

(* ------------------------------------------------------------------ *)
(* Cost                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cost () =
  let p = small_program () in
  let nest = (Program.nests p).(0) in
  Alcotest.(check int) "nest cost" 24 (Cost.nest_cost nest);
  let weights = Cost.nest_weights p in
  Alcotest.(check (float 1e-9)) "single nest weight" 1.0 weights.(0);
  match Cost.ranked_nests p with
  | [ (0, _) ] -> ()
  | _ -> Alcotest.fail "expected single ranked nest"

let test_cost_ranking () =
  let x = Builder.ctx [ "i"; "j" ] in
  let i = Builder.var x "i" and j = Builder.var x "j" in
  let small = Builder.nest "small" x [ 2; 2 ] [ Builder.read "A" [ i; j ] ] in
  let y = Builder.ctx [ "i"; "j" ] in
  let big =
    Builder.nest "big" y [ 10; 10 ]
      [ Builder.read "A" [ Builder.var y "i"; Builder.var y "j" ] ]
  in
  let p =
    Program.make ~name:"p" [ Array_info.make "A" [ 10; 10 ] ] [ small; big ]
  in
  match Cost.ranked_nests p with
  | (1, n1) :: (0, _) :: [] ->
    Alcotest.(check string) "big first" "big" (Loop_nest.name n1)
  | _ -> Alcotest.fail "expected big nest ranked first"

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let gen_perm d =
  QCheck.map
    (fun seed ->
      let rng = Mlo_csp.Rng.create seed in
      Mlo_csp.Rng.shuffled_init rng d)
    QCheck.small_nat

let prop_permute_preserves_elements =
  QCheck.Test.make ~name:"permuting a nest preserves the set of elements touched"
    ~count:100 (gen_perm 2) (fun perm ->
      let nest = simple_nest () in
      let permuted = Loop_nest.permute nest perm in
      let touch n =
        let acc = ref [] in
        Loop_nest.iter n (fun iv ->
            Array.iter
              (fun a -> acc := Access.element_at a iv :: !acc)
              (Loop_nest.accesses n));
        List.sort Intvec.compare !acc
      in
      List.equal Intvec.equal (touch nest) (touch permuted))

let prop_eval_add_homomorphic =
  QCheck.Test.make ~name:"eval of sum = sum of evals" ~count:200
    (QCheck.pair
       (QCheck.array_of_size (QCheck.Gen.return 3) (QCheck.int_range (-9) 9))
       (QCheck.array_of_size (QCheck.Gen.return 3) (QCheck.int_range (-9) 9)))
    (fun (c1, c2) ->
      let e1 = Affine.make (Array.to_list c1) 1 in
      let e2 = Affine.make (Array.to_list c2) 2 in
      let iv = [| 3; -1; 2 |] in
      Affine.eval (Affine.add e1 e2) iv = Affine.eval e1 iv + Affine.eval e2 iv)

let prop_trip_count_matches_iter =
  QCheck.Test.make ~name:"trip_count counts iterations" ~count:50
    (QCheck.pair (QCheck.int_range 1 5) (QCheck.int_range 1 5)) (fun (a, b) ->
      let x = Builder.ctx [ "i"; "j" ] in
      let nest =
        Builder.nest "n" x [ a; b ]
          [ Builder.read "A" [ Builder.var x "i"; Builder.var x "j" ] ]
      in
      let count = ref 0 in
      Loop_nest.iter nest (fun _ -> incr count);
      !count = Loop_nest.trip_count nest)

(* Random depth-3 nests with a uniform write/read pair: A[i][j][k]
   written, A[i-a][j-b][k-c] read for small a, b, c. *)
let gen_dep_nest =
  QCheck.map
    (fun seed ->
      let rng = Mlo_csp.Rng.create (seed + 1) in
      let off () = Mlo_csp.Rng.int rng 5 - 2 in
      let w =
        Access.write "A"
          [
            Affine.make [ 1; 0; 0 ] 0;
            Affine.make [ 0; 1; 0 ] 0;
            Affine.make [ 0; 0; 1 ] 0;
          ]
      in
      let r =
        Access.read "A"
          [
            Affine.make [ 1; 0; 0 ] (off ());
            Affine.make [ 0; 1; 0 ] (off ());
            Affine.make [ 0; 0; 1 ] (off ());
          ]
      in
      Loop_nest.make ~name:"dep"
        [
          { Loop_nest.var = "i"; lo = 0; hi = 4 };
          { Loop_nest.var = "j"; lo = 0; hi = 4 };
          { Loop_nest.var = "k"; lo = 0; hi = 4 };
        ]
        [ w; r ])
    QCheck.small_nat

let prop_legal_permutations_sound =
  QCheck.Test.make
    ~name:"legal_permutations: identity first, every order checks out"
    ~count:200 gen_dep_nest (fun nest ->
      match Dependence.legal_permutations nest with
      | [] -> QCheck.Test.fail_report "identity is always legal"
      | (p0, n0) :: rest ->
        p0 = Array.init (Array.length p0) Fun.id
        && Loop_nest.equal n0 nest
        && List.for_all
             (fun (p, _) -> Dependence.legal_permutation nest p)
             rest)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_permute_preserves_elements;
      prop_eval_add_homomorphic;
      prop_trip_count_matches_iter;
      prop_legal_permutations_sound;
    ]

let () =
  Alcotest.run "ir"
    [
      ( "affine",
        [
          Alcotest.test_case "basics" `Quick test_affine_basics;
          Alcotest.test_case "arithmetic" `Quick test_affine_arith;
          Alcotest.test_case "permute" `Quick test_affine_permute;
          Alcotest.test_case "pretty printing" `Quick test_affine_pp;
        ] );
      ( "access",
        [
          Alcotest.test_case "array info" `Quick test_array_info;
          Alcotest.test_case "access matrix" `Quick test_access_matrix;
          Alcotest.test_case "offsets" `Quick test_access_offsets;
        ] );
      ( "loop_nest",
        [
          Alcotest.test_case "basics" `Quick test_nest_basics;
          Alcotest.test_case "iteration order" `Quick test_nest_iter_order;
          Alcotest.test_case "permute" `Quick test_nest_permute;
          Alcotest.test_case "permutations" `Quick test_nest_permutations;
          Alcotest.test_case "validation" `Quick test_nest_validation;
        ] );
      ("builder", [ Alcotest.test_case "combinators" `Quick test_builder ]);
      ( "program",
        [
          Alcotest.test_case "basics" `Quick test_program_basics;
          Alcotest.test_case "validation" `Quick test_program_validation;
        ] );
      ( "dependence",
        [
          Alcotest.test_case "reads carry no dependence" `Quick
            test_dependence_none_for_reads;
          Alcotest.test_case "uniform distance" `Quick
            test_dependence_uniform_distance;
          Alcotest.test_case "illegal interchange detected" `Quick
            test_dependence_blocks_interchange;
          Alcotest.test_case "matmul fully permutable" `Quick
            test_dependence_matmul_all_legal;
          Alcotest.test_case "gcd independence" `Quick
            test_dependence_gcd_independence;
          Alcotest.test_case "non-uniform strides resolved exactly" `Quick
            test_dependence_nonuniform_exact;
          Alcotest.test_case "transpose pins to identity" `Quick
            test_dependence_transpose_pins_identity;
          Alcotest.test_case "pair attribution" `Quick
            test_dependence_pair_attribution;
          Alcotest.test_case "homogeneous distance set (regression)" `Quick
            test_dependence_homogeneous_distance_set;
          Alcotest.test_case "bounds-blind false dep gone (regression)" `Quick
            test_dependence_bounds_blind_false_dep_gone;
        ] );
      ( "cost",
        [
          Alcotest.test_case "basics" `Quick test_cost;
          Alcotest.test_case "ranking" `Quick test_cost_ranking;
        ] );
      ("properties", props);
    ]
