(* Trace-format tests: the trace_event JSON the obs layer emits parses,
   spans nest properly, cache counters are monotone, and the disabled
   sink emits nothing while leaving solver results untouched. *)

module Trace = Mlo_obs.Trace
module Trace_summary = Mlo_obs.Trace_summary
module Json = Mlo_obs.Json
module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Stats = Mlo_csp.Stats
module Rng = Mlo_csp.Rng
module Simulate = Mlo_cachesim.Simulate
module Kernels = Mlo_workloads.Kernels
module Program = Mlo_ir.Program

(* Every test leaves the global trace sink disabled, whatever happens. *)
let with_tracing f =
  Trace.start ();
  Fun.protect ~finally:Trace.stop f

let summarize () =
  match Json.parse (Trace.dump ()) with
  | Error e -> Alcotest.failf "trace did not parse: %s" e
  | Ok j -> (
    match Trace_summary.of_json j with
    | Error e -> Alcotest.failf "trace did not summarize: %s" e
    | Ok s -> s)

let span_count s cat name =
  match List.assoc_opt (cat, name) s.Trace_summary.spans with
  | Some st -> st.Trace_summary.span_count
  | None -> 0

(* Same generator family as test_compiled / test_schemes. *)
let random_network seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains =
    Array.init n (fun _ -> Array.init (1 + Rng.int rng 3) Fun.id)
  in
  let net = Network.create ~names ~domains in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.int rng 100 < 60 then begin
        let pairs = ref [] in
        for vi = 0 to Array.length domains.(i) - 1 do
          for vj = 0 to Array.length domains.(j) - 1 do
            if Rng.int rng 100 < 55 then pairs := (vi, vj) :: !pairs
          done
        done;
        Network.add_allowed net i j !pairs
      end
    done
  done;
  net

(* ------------------------------------------------------------------ *)
(* Span structure                                                       *)
(* ------------------------------------------------------------------ *)

let test_spans_nest () =
  with_tracing @@ fun () ->
  Trace.with_span ~cat:"t" "outer" (fun () ->
      Trace.with_span ~cat:"t" "inner" (fun () ->
          Trace.instant ~cat:"t" "tick");
      Trace.with_span ~cat:"t" "inner" (fun () -> ()));
  let s = summarize () in
  Alcotest.(check bool) "balanced" true s.Trace_summary.balanced;
  Alcotest.(check int) "max nesting" 2 s.Trace_summary.max_nesting;
  Alcotest.(check int) "outer once" 1 (span_count s "t" "outer");
  Alcotest.(check int) "inner twice" 2 (span_count s "t" "inner");
  Alcotest.(check (option int))
    "one instant" (Some 1)
    (List.assoc_opt ("t", "tick") s.Trace_summary.instants);
  (* six span events + one instant *)
  Alcotest.(check int) "event count" 7 s.Trace_summary.events

let test_spans_balanced_on_raise () =
  with_tracing @@ fun () ->
  (try
     Trace.with_span ~cat:"t" "boom" (fun () -> failwith "inside the span")
   with Failure _ -> ());
  let s = summarize () in
  Alcotest.(check bool) "balanced after raise" true s.Trace_summary.balanced;
  Alcotest.(check int) "span closed" 1 (span_count s "t" "boom")

let test_solver_trace_shape () =
  let net = random_network 23 in
  with_tracing @@ fun () ->
  ignore (Solver.solve ~config:(Schemes.enhanced ~seed:2 ()) net);
  let s = summarize () in
  Alcotest.(check bool) "balanced" true s.Trace_summary.balanced;
  Alcotest.(check bool) "has events" true (s.Trace_summary.events > 0);
  Alcotest.(check int) "one search span" 1 (span_count s "solver" "search")

(* ------------------------------------------------------------------ *)
(* Cache-simulation counters                                            *)
(* ------------------------------------------------------------------ *)

let matmul_prog n =
  let mm, req = Kernels.matmul ~name:"mm" ~n ~c:"C" ~a:"A" ~b:"B" in
  Program.make ~name:"trace-mm" (Kernels.declare req) [ mm ]

let test_counters_monotone () =
  (* 16^3 iterations x 4 accesses crosses the 8192-access sampling
     stride several times, so the counter track has real samples. *)
  let prog = matmul_prog 16 in
  with_tracing @@ fun () ->
  ignore (Simulate.run prog ~layouts:(fun _ -> None));
  let s = summarize () in
  Alcotest.(check bool) "balanced" true s.Trace_summary.balanced;
  Alcotest.(check int) "one simulate span" 1
    (span_count s "cachesim" "simulate");
  Alcotest.(check bool) "has counter tracks" true
    (s.Trace_summary.counters <> []);
  List.iter
    (fun ((name, key), c) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s sampled more than once" name key)
        true
        (c.Trace_summary.samples >= 2);
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s monotone" name key)
        true c.Trace_summary.monotone;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s final >= first" name key)
        true
        (c.Trace_summary.last >= c.Trace_summary.first))
    s.Trace_summary.counters

let test_traced_simulation_identical () =
  let prog = matmul_prog 16 in
  let untraced = Simulate.run prog ~layouts:(fun _ -> None) in
  let traced =
    with_tracing @@ fun () -> Simulate.run prog ~layouts:(fun _ -> None)
  in
  Alcotest.(check bool) "identical counters" true
    (untraced.Simulate.counters = traced.Simulate.counters);
  Alcotest.(check int) "identical trips" untraced.Simulate.trip_count
    traced.Simulate.trip_count

(* ------------------------------------------------------------------ *)
(* The no-op sink                                                       *)
(* ------------------------------------------------------------------ *)

let same_scalars (a : Stats.t) (b : Stats.t) =
  a.Stats.nodes = b.Stats.nodes
  && a.Stats.checks = b.Stats.checks
  && a.Stats.backtracks = b.Stats.backtracks
  && a.Stats.backjumps = b.Stats.backjumps
  && a.Stats.prunings = b.Stats.prunings
  && a.Stats.max_depth = b.Stats.max_depth

let prop_noop_sink =
  QCheck.Test.make
    ~name:"disabled sink emits nothing and changes no solver result"
    ~count:150 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      let config = Schemes.enhanced ~seed:(seed + 5) () in
      (* disabled: the dump must stay the empty array *)
      let quiet = Solver.solve ~config net in
      if Trace.enabled () then QCheck.Test.fail_report "tracing on by default";
      (match Json.parse (Trace.dump ()) with
      | Ok (Json.Arr []) -> ()
      | Ok _ -> QCheck.Test.fail_report "disabled sink emitted events"
      | Error e -> QCheck.Test.fail_reportf "empty dump did not parse: %s" e);
      (* enabled: same outcome, same counters, events present *)
      let traced, events =
        with_tracing @@ fun () ->
        let r = Solver.solve ~config net in
        (r, (summarize ()).Trace_summary.events)
      in
      if events = 0 then QCheck.Test.fail_report "enabled sink emitted nothing";
      if not (same_scalars quiet.Solver.stats traced.Solver.stats) then
        QCheck.Test.fail_report "tracing changed the solver's counters";
      match (quiet.Solver.outcome, traced.Solver.outcome) with
      | Solver.Solution a, Solver.Solution b -> a = b
      | Solver.Unsatisfiable, Solver.Unsatisfiable -> true
      | Solver.Aborted, Solver.Aborted -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                      *)
(* ------------------------------------------------------------------ *)

let json_gen =
  QCheck.Gen.(
    (* numbers built from eighths round-trip exactly through the
       printer's integral/%.17g split *)
    let num = map (fun n -> Json.Num (float_of_int n /. 8.)) (int_range (-8000) 8000) in
    let str = map (fun s -> Json.Str s) (string_size ~gen:printable (int_bound 12)) in
    let base = oneof [ return Json.Null; map (fun b -> Json.Bool b) bool; num; str ] in
    sized (fun size ->
        fix
          (fun self n ->
            if n <= 0 then base
            else
              frequency
                [
                  (2, base);
                  (1, map (fun l -> Json.Arr l) (list_size (int_bound 4) (self (n / 2))));
                  ( 1,
                    map
                      (fun kvs ->
                        (* object keys must be unique for round-trip equality *)
                        Json.Obj
                          (List.mapi (fun i (k, v) -> (Printf.sprintf "%d%s" i k, v)) kvs))
                      (list_size (int_bound 4)
                         (pair (string_size ~gen:printable (int_bound 6)) (self (n / 2)))) );
                ])
          (min size 5)))

let prop_json_roundtrip =
  QCheck.Test.make ~name:"Json.to_string round-trips through Json.parse"
    ~count:300
    (QCheck.make ~print:Json.to_string json_gen)
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' -> v = v'
      | Error e -> QCheck.Test.fail_reportf "did not parse: %s" e)

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_spans_nest;
          Alcotest.test_case "balanced on raise" `Quick
            test_spans_balanced_on_raise;
          Alcotest.test_case "solver trace shape" `Quick
            test_solver_trace_shape;
        ] );
      ( "counters",
        [
          Alcotest.test_case "monotone cache counters" `Quick
            test_counters_monotone;
          Alcotest.test_case "tracing changes no report" `Quick
            test_traced_simulation_identical;
        ] );
      ("no-op sink", [ QCheck_alcotest.to_alcotest prop_noop_sink ]);
      ("json", [ QCheck_alcotest.to_alcotest prop_json_roundtrip ]);
    ]
