(* Tests for the static analyzer: the program lint, the network
   structural checks, and the component-wise solver they justify.

   The load-bearing properties: the lint is quiet (no errors, no
   warnings) on every shipped program and reports exactly the defects a
   seeded-defect program contains; solve_components is
   decision-equivalent to the whole-network solve for every scheme; the
   structural goldens of the five benchmarks (components, width,
   induced width) stay pinned. *)

module Affine = Mlo_ir.Affine
module Access = Mlo_ir.Access
module Loop_nest = Mlo_ir.Loop_nest
module Array_info = Mlo_ir.Array_info
module Program = Mlo_ir.Program
module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Rng = Mlo_csp.Rng
module Stats = Mlo_csp.Stats
module Build = Mlo_netgen.Build
module Spec = Mlo_workloads.Spec
module Suite = Mlo_workloads.Suite
module Parser = Mlo_lang.Parser
module Diagnostic = Mlo_analysis.Diagnostic
module Lint = Mlo_analysis.Lint
module Netcheck = Mlo_analysis.Netcheck
module Explain = Mlo_core.Explain

let errors r =
  List.filter Diagnostic.is_error r.Lint.diagnostics

let warnings r =
  List.filter
    (fun d -> d.Diagnostic.severity = Diagnostic.Warning)
    r.Lint.diagnostics

(* ------------------------------------------------------------------ *)
(* Lint: no false positives on shipped programs                        *)
(* ------------------------------------------------------------------ *)

let test_lint_quiet_on_suite () =
  List.iter
    (fun spec ->
      let r = Lint.run spec.Spec.program in
      Alcotest.(check bool)
        (spec.Spec.name ^ " clean") true (Lint.clean r);
      Alcotest.(check int)
        (spec.Spec.name ^ " no warnings") 0 (List.length (warnings r)))
    (Suite.all ())

(* dune runtest runs from test/, dune exec from the workspace root *)
let example file =
  let candidates = [ "../examples/programs/" ^ file; "examples/programs/" ^ file ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.failf "example %s not found" file

let test_lint_quiet_on_examples () =
  List.iter
    (fun file ->
      let prog = Parser.parse_file (example file) in
      let r = Lint.run prog in
      Alcotest.(check int) (file ^ " no errors") 0 (List.length (errors r));
      Alcotest.(check int) (file ^ " no warnings") 0 (List.length (warnings r)))
    [ "fig2.mlo"; "matmul.mlo"; "nonuniform.mlo" ]

(* ------------------------------------------------------------------ *)
(* Lint: seeded defects are found, and only them                       *)
(* ------------------------------------------------------------------ *)

(* A copy of the mxm workload with two injected defects: a nest reading
   past the end of the first array's first dimension, and a declared
   array no nest references. *)
let seeded_mxm () =
  let prog = (Suite.by_name "mxm").Spec.program in
  let a0 = (Program.arrays prog).(0) in
  let e0 = Array_info.extent a0 0 in
  let oob_nest =
    Loop_nest.make ~name:"seeded_oob"
      [
        { Loop_nest.var = "i"; lo = 0; hi = 4 };
        { Loop_nest.var = "j"; lo = 0; hi = 4 };
      ]
      [
        Access.read (Array_info.name a0)
          [ Affine.make [ 1; 0 ] e0; Affine.make [ 0; 1 ] 0 ];
      ]
  in
  Program.make ~name:"mxm-seeded"
    (Array.to_list (Program.arrays prog) @ [ Array_info.make "DEADX" [ 8; 8 ] ])
    (Array.to_list (Program.nests prog) @ [ oob_nest ])

let test_lint_finds_seeded_defects () =
  let r = Lint.run (seeded_mxm ()) in
  (match errors r with
  | [ d ] ->
    Alcotest.(check string) "error code" "out-of-bounds" d.Diagnostic.code;
    Alcotest.(check bool) "error names the seeded nest" true
      (String.length d.Diagnostic.subject >= 10
      && String.sub d.Diagnostic.subject 0 10 = "seeded_oob")
  | l ->
    Alcotest.failf "expected exactly 1 error, got %d" (List.length l));
  match warnings r with
  | [ d ] ->
    Alcotest.(check string) "warning code" "dead-array" d.Diagnostic.code;
    Alcotest.(check string) "warning subject" "DEADX" d.Diagnostic.subject
  | l -> Alcotest.failf "expected exactly 1 warning, got %d" (List.length l)

let test_lint_bounds_interval_exact () =
  (* A[i-1] over i in [0,4): spans [-1, 2] — out of bounds below;
     A[i+j] over 4x4 iterations spans [0, 6] — fits extent 7 exactly *)
  let bad =
    Program.make ~name:"bad"
      [ Array_info.make "A" [ 4 ] ]
      [
        Loop_nest.make ~name:"n"
          [ { Loop_nest.var = "i"; lo = 0; hi = 4 } ]
          [ Access.read "A" [ Affine.make [ 1 ] (-1) ] ];
      ]
  in
  (match errors (Lint.run bad) with
  | [ d ] -> Alcotest.(check string) "code" "out-of-bounds" d.Diagnostic.code
  | l -> Alcotest.failf "expected 1 error, got %d" (List.length l));
  let tight =
    Program.make ~name:"tight"
      [ Array_info.make "A" [ 7 ] ]
      [
        Loop_nest.make ~name:"n"
          [
            { Loop_nest.var = "i"; lo = 0; hi = 4 };
            { Loop_nest.var = "j"; lo = 0; hi = 4 };
          ]
          [ Access.write "A" [ Affine.make [ 1; 1 ] 0 ] ];
      ]
  in
  Alcotest.(check int) "tight fit is clean" 0
    (List.length (errors (Lint.run tight)))

(* ------------------------------------------------------------------ *)
(* Netcheck: structure of small known networks                         *)
(* ------------------------------------------------------------------ *)

let all_pairs =
  [ (0, 0); (0, 1); (1, 0); (1, 1) ]

(* A - B - C chain over {0,1}: a tree, so width 1 along any
   reasonable order, and with AC preprocessing backtrack-free. *)
let chain_network () =
  let net =
    Network.create
      ~names:[| "A"; "B"; "C" |]
      ~domains:(Array.make 3 [| 0; 1 |])
  in
  Network.add_allowed net 0 1 [ (0, 0); (1, 1) ];
  Network.add_allowed net 1 2 [ (0, 1); (1, 0) ];
  net

let test_netcheck_chain () =
  let net = chain_network () in
  let r = Netcheck.analyze net in
  Alcotest.(check int) "one component" 1 (Array.length r.Netcheck.components);
  Alcotest.(check int) "width 1" 1 r.Netcheck.width;
  Alcotest.(check int) "induced width 1" 1 r.Netcheck.induced_width;
  Alcotest.(check bool) "backtrack-free" true r.Netcheck.backtrack_free;
  Alcotest.(check (option int)) "no wipe" None r.Netcheck.wiped;
  Alcotest.(check bool) "no unsat core" true (r.Netcheck.unsat_core = None);
  Alcotest.(check bool) "no explanation either" true
    (Explain.explain_unsat net = None);
  (* a triangle has width 2 whatever the order *)
  let tri =
    Network.create
      ~names:[| "A"; "B"; "C" |]
      ~domains:(Array.make 3 [| 0; 1 |])
  in
  Network.add_allowed tri 0 1 all_pairs;
  Network.add_allowed tri 1 2 all_pairs;
  Network.add_allowed tri 0 2 all_pairs;
  Alcotest.(check int) "triangle width 2" 2
    (Netcheck.width_along tri (Schemes.most_constraining_order tri));
  Alcotest.(check int) "triangle induced width 2" 2
    (Netcheck.induced_width_along tri [| 0; 1; 2 |])

(* A=B forced to 0 by one constraint, forced to 1 by another: AC wipes
   a domain, and exactly those two constraints form the minimal core —
   the two tautological constraints must be dropped from it. *)
let wiped_network () =
  let net =
    Network.create
      ~names:[| "A"; "B"; "C"; "D" |]
      ~domains:(Array.make 4 [| 0; 1 |])
  in
  Network.add_allowed net 0 1 [ (0, 0) ];
  Network.add_allowed net 1 2 [ (1, 0); (1, 1) ];
  Network.add_allowed net 0 2 all_pairs;
  Network.add_allowed net 2 3 all_pairs;
  net

let test_netcheck_unsat_core () =
  let net = wiped_network () in
  (match Netcheck.unsat_core net with
  | None -> Alcotest.fail "expected a wipe-out"
  | Some (core, wiped) ->
    Alcotest.(check (list (pair int int)))
      "deletion-minimal core"
      [ (0, 1); (1, 2) ]
      (List.sort compare core);
    Alcotest.(check bool) "wiped var is in the core" true
      (List.exists (fun (i, j) -> i = wiped || j = wiped) core));
  (match Explain.explain_unsat net with
  | None -> Alcotest.fail "expected an explanation"
  | Some u ->
    Alcotest.(check (list (pair string string)))
      "named core"
      [ ("A", "B"); ("B", "C") ]
      (List.sort compare u.Explain.core));
  let r = Netcheck.analyze net in
  Alcotest.(check bool) "wiped reported" true (r.Netcheck.wiped <> None);
  Alcotest.(check bool) "not backtrack-free" false r.Netcheck.backtrack_free;
  Alcotest.(check int) "unsat network has error diagnostics" 1
    (Diagnostic.exit_code (Netcheck.diagnostics ~name:(Network.name net) r))

let test_netcheck_redundant_and_arc_inconsistent () =
  let net = wiped_network () in
  let r = Netcheck.analyze net in
  Alcotest.(check (list (pair int int)))
    "tautological constraints detected"
    [ (0, 2); (2, 3) ]
    (List.sort compare r.Netcheck.redundant);
  let chain = chain_network () in
  let rc = Netcheck.analyze chain in
  Alcotest.(check (list (pair int int))) "chain: nothing redundant" []
    rc.Netcheck.redundant;
  Alcotest.(check (list (pair int int))) "chain: fully arc-consistent" []
    rc.Netcheck.arc_inconsistent

(* ------------------------------------------------------------------ *)
(* Components: structure and the component-wise solver                 *)
(* ------------------------------------------------------------------ *)

(* Two independent blocks (A=B, C<>D) plus a free variable E. *)
let two_block_network () =
  let net =
    Network.create
      ~names:[| "A"; "B"; "C"; "D"; "E" |]
      ~domains:(Array.make 5 [| 0; 1 |])
  in
  Network.add_allowed net 0 1 [ (0, 0); (1, 1) ];
  Network.add_allowed net 2 3 [ (0, 1); (1, 0) ];
  net

let test_components_structure () =
  let net = two_block_network () in
  Alcotest.(check (list (list int)))
    "blocks and the free singleton"
    [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ]
    (Array.to_list (Array.map Array.to_list (Network.components net)))

let test_solve_components_two_blocks () =
  let net = two_block_network () in
  let r = Solver.solve_components net in
  (match r.Solver.outcome with
  | Solver.Solution a ->
    Alcotest.(check bool) "solution verifies" true (Network.verify net a)
  | _ -> Alcotest.fail "expected a solution");
  (* wiping one component must make the whole network unsatisfiable *)
  let bad = two_block_network () in
  Network.add_allowed bad 2 4 [];
  match (Solver.solve_components bad).Solver.outcome with
  | Solver.Unsatisfiable -> ()
  | _ -> Alcotest.fail "expected unsatisfiable"

let test_build_components () =
  (* two nests touching disjoint array pairs: the extracted network
     splits into one component per nest *)
  let nest name a b =
    Loop_nest.make ~name
      [
        { Loop_nest.var = "i"; lo = 0; hi = 4 };
        { Loop_nest.var = "j"; lo = 0; hi = 4 };
      ]
      [
        Access.write a [ Affine.make [ 1; 0 ] 0; Affine.make [ 0; 1 ] 0 ];
        Access.read b [ Affine.make [ 0; 1 ] 0; Affine.make [ 1; 0 ] 0 ];
      ]
  in
  let prog =
    Program.make ~name:"blocks"
      (List.map (fun n -> Array_info.make n [ 4; 4 ]) [ "A"; "B"; "C"; "D" ])
      [ nest "n1" "A" "B"; nest "n2" "C" "D" ]
  in
  let build = Build.build prog in
  Alcotest.(check (list (list string)))
    "per-nest components"
    [ [ "A"; "B" ]; [ "C"; "D" ] ]
    (Array.to_list (Array.map Array.to_list (Build.components build)))

(* Same generator as test_csp/test_compiled: small random networks. *)
let random_network seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains =
    Array.init n (fun _ -> Array.init (1 + Rng.int rng 3) Fun.id)
  in
  let net = Network.create ~names ~domains in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.int rng 100 < 60 then begin
        let pairs = ref [] in
        for vi = 0 to Array.length domains.(i) - 1 do
          for vj = 0 to Array.length domains.(j) - 1 do
            if Rng.int rng 100 < 55 then pairs := (vi, vj) :: !pairs
          done
        done;
        Network.add_allowed net i j !pairs
      end
    done
  done;
  net

(* A sparser variant that regularly splits into several components. *)
let sparse_network seed =
  let rng = Rng.create (seed * 7919) in
  let n = 4 + Rng.int rng 5 in
  let names = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let domains =
    Array.init n (fun _ -> Array.init (1 + Rng.int rng 3) Fun.id)
  in
  let net = Network.create ~names ~domains in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.int rng 100 < 20 then begin
        let pairs = ref [] in
        for vi = 0 to Array.length domains.(i) - 1 do
          for vj = 0 to Array.length domains.(j) - 1 do
            if Rng.int rng 100 < 60 then pairs := (vi, vj) :: !pairs
          done
        done;
        Network.add_allowed net i j !pairs
      end
    done
  done;
  net

let prop_components_partition =
  QCheck.Test.make ~name:"components partition the variables" ~count:200
    QCheck.small_nat (fun seed ->
      let net = sparse_network seed in
      let comps = Network.components net in
      let seen = Array.make (Network.num_vars net) 0 in
      Array.iter (Array.iter (fun v -> seen.(v) <- seen.(v) + 1)) comps;
      Array.for_all (fun c -> c = 1) seen
      && Array.for_all
           (fun members ->
             Array.for_all
               (fun v ->
                 List.for_all
                   (fun w -> Array.exists (fun m -> m = w) members)
                   (Network.neighbors net v))
               members)
           comps)

let components_configs ~seed =
  [
    ("base", Schemes.base ~seed ());
    ("enhanced", Schemes.enhanced ~seed ());
    ("enhanced-ac", Schemes.enhanced_with_ac ~seed ());
    ("default", Solver.default_config);
    ( "fc+cbj",
      {
        Solver.default_config with
        lookahead = Solver.Forward_checking;
        backward = Solver.Conflict_directed;
      } );
    ( "min-domain",
      { Solver.default_config with var_policy = Solver.Min_domain } );
  ]

let prop_solve_components_equivalent gen_name gen =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "solve_components decision-equivalent to solve (%s)"
         gen_name)
    ~count:120 QCheck.small_nat (fun seed ->
      let net = gen seed in
      List.for_all
        (fun (label, config) ->
          let whole = Solver.solve ~config net in
          let split = Solver.solve_components ~config net in
          match (whole.Solver.outcome, split.Solver.outcome) with
          | Solver.Solution _, Solver.Solution a ->
            Network.verify net a
            || QCheck.Test.fail_reportf
                 "%s: component solution does not verify" label
          | Solver.Unsatisfiable, Solver.Unsatisfiable -> true
          | Solver.Aborted, Solver.Aborted -> true
          | w, s ->
            let l = function
              | Solver.Solution _ -> "solution"
              | Solver.Unsatisfiable -> "unsatisfiable"
              | Solver.Aborted -> "aborted"
            in
            QCheck.Test.fail_reportf "%s: whole=%s components=%s" label (l w)
              (l s))
        (components_configs ~seed:(seed + 1)))

let prop_single_component_identical =
  QCheck.Test.make
    ~name:"single-component networks take the identical solve path" ~count:150
    QCheck.small_nat (fun seed ->
      let net = random_network seed in
      QCheck.assume (Array.length (Network.components net) = 1);
      let config = Schemes.enhanced ~seed:(seed + 1) () in
      let a = Solver.solve ~config net in
      let b = Solver.solve_components ~config net in
      a.Solver.outcome = b.Solver.outcome
      && a.Solver.stats.Stats.nodes = b.Solver.stats.Stats.nodes
      && a.Solver.stats.Stats.checks = b.Solver.stats.Stats.checks
      && a.Solver.stats.Stats.backtracks = b.Solver.stats.Stats.backtracks)

(* ------------------------------------------------------------------ *)
(* Benchmark goldens: components, width, induced width                 *)
(* ------------------------------------------------------------------ *)

(* Structural fingerprints of the five extracted networks.  These are
   deterministic (the most-constraining order breaks ties by index and
   the AC fixpoint is unique), so any drift means network extraction or
   the analyzer changed. *)
let network_goldens =
  [
    (* name, vars, constraints, components, width, induced width,
       arc-inconsistent values, redundant constraints *)
    ("med-im04", 52, 176, 1, 8, 23, 203, 15);
    ("mxm", 5, 6, 1, 2, 2, 24, 0);
    ("radar", 57, 504, 1, 16, 36, 365, 19);
    ("shape", 80, 735, 1, 19, 53, 576, 1);
    ("track", 47, 507, 1, 22, 35, 341, 7);
  ]

let test_network_goldens () =
  List.iter
    (fun (name, vars, constraints, comps, width, iwidth, arc_incons, redundant) ->
      let build = Spec.extract (Suite.by_name name) in
      let r = Netcheck.analyze build.Build.network in
      let check label = Alcotest.(check int) (name ^ " " ^ label) in
      check "vars" vars r.Netcheck.vars;
      check "constraints" constraints r.Netcheck.constraints;
      check "components" comps (Array.length r.Netcheck.components);
      check "width" width r.Netcheck.width;
      check "induced width" iwidth r.Netcheck.induced_width;
      check "arc-inconsistent" arc_incons
        (List.length r.Netcheck.arc_inconsistent);
      check "redundant" redundant (List.length r.Netcheck.redundant);
      Alcotest.(check bool)
        (name ^ " no wipe") true
        (r.Netcheck.wiped = None))
    network_goldens

(* The domain-parallel component solve must be indistinguishable from
   the serial one: same outcome (bit-equal assignment) and identical
   merged stats, for every scheme.  Holds by construction when no check
   budget is set — each component's sub-solve is deterministic and the
   merge applies the serial stopping rule in component index order —
   and this property pins it against regressions in the worker-pool
   plumbing. *)
let stats_equal (a : Stats.t) (b : Stats.t) =
  a.Stats.nodes = b.Stats.nodes
  && a.Stats.checks = b.Stats.checks
  && a.Stats.backtracks = b.Stats.backtracks
  && a.Stats.backjumps = b.Stats.backjumps
  && a.Stats.prunings = b.Stats.prunings
  && a.Stats.max_depth = b.Stats.max_depth
  && a.Stats.nodes_by_depth = b.Stats.nodes_by_depth
  && a.Stats.nodes_by_var = b.Stats.nodes_by_var

let prop_parallel_components_identical gen_name gen =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "parallel solve_components identical to serial (%s)" gen_name)
    ~count:40 QCheck.small_nat (fun seed ->
      let net = gen seed in
      List.for_all
        (fun (label, config) ->
          let ser = Solver.solve_components ~config ~domains:1 net in
          let par = Solver.solve_components ~config ~domains:4 net in
          let outcome_ok =
            match (ser.Solver.outcome, par.Solver.outcome) with
            | Solver.Solution a, Solver.Solution b -> a = b
            | Solver.Unsatisfiable, Solver.Unsatisfiable -> true
            | Solver.Aborted, Solver.Aborted -> true
            | _ -> false
          in
          (outcome_ok && stats_equal ser.Solver.stats par.Solver.stats)
          || QCheck.Test.fail_reportf "%s: serial/parallel diverge (seed %d)"
               label seed)
        (components_configs ~seed:(seed + 1)))

let prop_parallel_single_component_identical =
  QCheck.Test.make
    ~name:"parallel solve_components on one component takes the fast path"
    ~count:40 QCheck.small_nat (fun seed ->
      let net = random_network seed in
      QCheck.assume (Array.length (Network.components net) = 1);
      let config = Schemes.enhanced ~seed:(seed + 1) () in
      let ser = Solver.solve_components ~config ~domains:1 net in
      let par = Solver.solve_components ~config ~domains:4 net in
      ser.Solver.outcome = par.Solver.outcome
      && stats_equal ser.Solver.stats par.Solver.stats)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_components_partition;
      prop_solve_components_equivalent "dense" random_network;
      prop_solve_components_equivalent "sparse" sparse_network;
      prop_single_component_identical;
      prop_parallel_components_identical "dense" random_network;
      prop_parallel_components_identical "sparse" sparse_network;
      prop_parallel_single_component_identical;
    ]

(* ------------------------------------------------------------------ *)
(* Diagnostic ordering determinism                                      *)
(* ------------------------------------------------------------------ *)

(* Diagnostic.sort is a total order on (severity, subject, code,
   message), so any input permutation renders to the same bytes — the
   contract every diagnostic producer (Lint, Netcheck, Costcheck) and
   the CI output comparisons lean on. *)
let test_diagnostic_sort_deterministic () =
  let d sev code subject msg = Diagnostic.make sev ~code ~subject msg in
  let diags =
    [
      d Diagnostic.Warning "dead-array" "B" "never read";
      d Diagnostic.Error "out-of-bounds" "A" "row overrun";
      d Diagnostic.Error "out-of-bounds" "A" "column overrun";
      d Diagnostic.Warning "dead-array" "A" "never read";
      d Diagnostic.Info "note" "C" "third";
      d Diagnostic.Error "singular-access" "A" "rank deficient";
    ]
  in
  let render ds =
    String.concat "\n"
      (List.map (Format.asprintf "%a" Diagnostic.pp) (Diagnostic.sort ds))
  in
  let reference = render diags in
  (* every rotation and the reverse must render byte-identically *)
  let rec rotations k l =
    if k = 0 then []
    else
      match l with
      | x :: rest -> (rest @ [ x ]) :: rotations (k - 1) (rest @ [ x ])
      | [] -> []
  in
  List.iteri
    (fun i perm ->
      Alcotest.(check string)
        (Printf.sprintf "permutation %d renders identically" i)
        reference (render perm))
    (List.rev diags :: rotations (List.length diags) diags);
  (* and the order itself is most-severe first *)
  match Diagnostic.sort diags with
  | first :: _ ->
    Alcotest.(check bool) "errors first" true
      (first.Diagnostic.severity = Diagnostic.Error)
  | [] -> Alcotest.fail "sort dropped diagnostics"

(* ------------------------------------------------------------------ *)
(* Depreport: the deps subcommand's engine                              *)
(* ------------------------------------------------------------------ *)

module Depreport = Mlo_analysis.Depreport
module Json = Mlo_obs.Json

(* nonuniform.mlo is built so only an exact test gets both nests right:
   transpose is genuinely pinned by a (<, >) dependence, while disjoint
   is a GCD-solvable pair whose loop bounds keep the accessed row
   ranges apart. *)
let test_depreport_nonuniform () =
  let prog = Parser.parse_file (example "nonuniform.mlo") in
  let r = Depreport.run prog in
  let by_name n =
    match
      List.find_opt (fun nr -> nr.Depreport.nest = n) r.Depreport.nests
    with
    | Some nr -> nr
    | None -> Alcotest.failf "nest %s missing from report" n
  in
  let transpose = by_name "transpose" and disjoint = by_name "disjoint" in
  Alcotest.(check bool) "transpose pinned" true (Depreport.pinned transpose);
  Alcotest.(check int) "transpose legal orders" 1
    transpose.Depreport.legal_orders;
  Alcotest.(check bool) "disjoint not pinned" false
    (Depreport.pinned disjoint);
  Alcotest.(check int) "disjoint legal orders" 2
    disjoint.Depreport.legal_orders;
  List.iter
    (fun pr ->
      Alcotest.(check (list Alcotest.reject))
        (pr.Depreport.src_ref ^ " independent")
        [] pr.Depreport.deps)
    disjoint.Depreport.pairs;
  Alcotest.(check bool) "engine did work" true (r.Depreport.checks > 0)

(* The JSON document is what CI greps; pin the schema-relevant shape. *)
let test_depreport_json_shape () =
  let prog = Parser.parse_file (example "nonuniform.mlo") in
  let r = Depreport.run prog in
  match Depreport.to_json r with
  | Json.Obj fields ->
    let get k =
      match List.assoc_opt k fields with
      | Some v -> v
      | None -> Alcotest.failf "field %s missing" k
    in
    (match get "program" with
     | Json.Str _ -> ()
     | _ -> Alcotest.fail "program is not a string");
    (match get "nests" with
     | Json.Arr nests ->
       Alcotest.(check int) "two nests" 2 (List.length nests);
       List.iter
         (function
           | Json.Obj nf ->
             List.iter
               (fun k ->
                 if not (List.mem_assoc k nf) then
                   Alcotest.failf "nest field %s missing" k)
               [ "nest"; "depth"; "pairs"; "legal_orders"; "total_orders";
                 "pinned" ]
           | _ -> Alcotest.fail "nest is not an object")
         nests
     | _ -> Alcotest.fail "nests is not an array");
    (match get "presburger" with
     | Json.Obj pf ->
       List.iter
         (fun k ->
           if not (List.mem_assoc k pf) then
             Alcotest.failf "presburger field %s missing" k)
         [ "checks"; "eliminations"; "splits"; "max_split_depth" ]
     | _ -> Alcotest.fail "presburger is not an object")
  | _ -> Alcotest.fail "report is not an object"

(* End-to-end: two runs of the full analysis pipeline on the same
   workload must produce byte-identical diagnostic renderings. *)
let test_pipeline_output_deterministic () =
  let render () =
    let spec = Suite.by_name "med-im04" in
    let lint = Lint.run spec.Spec.program in
    let build = Spec.extract spec in
    let name = Network.name build.Build.network in
    let report = Mlo_analysis.Netcheck.analyze build.Build.network in
    Format.asprintf "%a@.%a" Lint.pp lint (Netcheck.pp ~name) report
  in
  Alcotest.(check string) "two pipeline runs render identically" (render ())
    (render ())

let () =
  Alcotest.run "analysis"
    [
      ( "lint",
        [
          Alcotest.test_case "quiet on the suite" `Quick
            test_lint_quiet_on_suite;
          Alcotest.test_case "quiet on the examples" `Quick
            test_lint_quiet_on_examples;
          Alcotest.test_case "seeded defects found exactly" `Quick
            test_lint_finds_seeded_defects;
          Alcotest.test_case "bounds intervals are exact" `Quick
            test_lint_bounds_interval_exact;
        ] );
      ( "netcheck",
        [
          Alcotest.test_case "chain is backtrack-free" `Quick
            test_netcheck_chain;
          Alcotest.test_case "minimal unsat core" `Quick
            test_netcheck_unsat_core;
          Alcotest.test_case "redundant and arc-inconsistent" `Quick
            test_netcheck_redundant_and_arc_inconsistent;
        ] );
      ( "components",
        [
          Alcotest.test_case "structure" `Quick test_components_structure;
          Alcotest.test_case "two-block solve" `Quick
            test_solve_components_two_blocks;
          Alcotest.test_case "per-nest build components" `Quick
            test_build_components;
        ] );
      ("goldens", [ Alcotest.test_case "benchmark networks" `Quick
                      test_network_goldens ]);
      ( "depreport",
        [
          Alcotest.test_case "nonuniform verdicts" `Quick
            test_depreport_nonuniform;
          Alcotest.test_case "json shape" `Quick test_depreport_json_shape;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "sort renders deterministically" `Quick
            test_diagnostic_sort_deterministic;
          Alcotest.test_case "pipeline output is byte-stable" `Quick
            test_pipeline_output_deterministic;
        ] );
      ("properties", props);
    ]
