(* Gap-filling coverage: the Explain report, solver statistics, weighted
   search bounding, direct propagation primitives, and assorted printers
   and invariants not exercised elsewhere. *)

module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Weighted = Mlo_csp.Weighted
module Propagate = Mlo_csp.Propagate
module Bitset = Mlo_csp.Bitset
module Stats = Mlo_csp.Stats
module Rng = Mlo_csp.Rng
module B = Mlo_ir.Builder
module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Cost = Mlo_ir.Cost
module Layout = Mlo_layout.Layout
module Optimizer = Mlo_core.Optimizer
module Explain = Mlo_core.Explain

(* ------------------------------------------------------------------ *)
(* Explain                                                              *)
(* ------------------------------------------------------------------ *)

let fig2_program ~n =
  let x = B.ctx [ "i1"; "i2" ] in
  let i1 = B.var x "i1" and i2 = B.var x "i2" in
  let nest =
    B.nest "fig2" x [ n; n ]
      B.[ read "Q1" [ i1 +: i2; i2 ]; read "Q2" [ i1 +: i2; i1 ] ]
  in
  Program.make ~name:"fig2"
    [
      Array_info.make "Q1" [ (2 * n) - 1; n ];
      Array_info.make "Q2" [ (2 * n) - 1; n ];
    ]
    [ nest ]

let test_explain_all_served () =
  let prog = fig2_program ~n:8 in
  let sol = Optimizer.optimize (Optimizer.Enhanced 1) prog in
  let report = Explain.explain prog sol in
  Alcotest.(check (float 1e-9)) "fully served" 1.0 report.Explain.served_fraction;
  (match report.Explain.nests with
  | [ nr ] ->
    Alcotest.(check bool) "identity order kept" false nr.Explain.interchanged;
    Alcotest.(check int) "two refs" 2 (List.length nr.Explain.refs);
    List.iter
      (fun r ->
        match r.Explain.quality with
        | Explain.Spatial -> ()
        | Explain.Temporal | Explain.Unserved _ ->
          Alcotest.fail "figure 2 refs are spatial under the solution")
      nr.Explain.refs
  | _ -> Alcotest.fail "one nest expected");
  (* the report renders *)
  Alcotest.(check bool) "pp non-empty" true
    (String.length (Format.asprintf "%a" Explain.pp report) > 50)

let test_explain_flags_unserved () =
  (* force a bad layout: all row-major on a column-walking program *)
  let x = B.ctx [ "j"; "i" ] in
  let j = B.var x "j" and i = B.var x "i" in
  let nest = B.nest "colwalk" x [ 8; 8 ] [ B.read "M" [ i; j ] ] in
  let prog =
    Program.make ~name:"p" [ Array_info.make "M" [ 8; 8 ] ] [ nest ]
  in
  (* interchange would fix this, so pin it with a fake dependence-free
     report: explain against a hand-made solution that keeps the order *)
  let sol =
    {
      Optimizer.layouts = [ ("M", Layout.row_major 2) ];
      restructured = prog;
      solver_stats = None;
      heuristic_evaluations = None;
      pruned_values = None;
      portfolio_winner = None;
      objective_value = None;
      elapsed_s = 0.;
    }
  in
  let report = Explain.explain prog sol in
  Alcotest.(check (float 1e-9)) "nothing served" 0.0 report.Explain.served_fraction;
  match report.Explain.nests with
  | [ { Explain.refs = [ { Explain.quality = Explain.Unserved d; _ } ]; _ } ] ->
    Alcotest.(check bool) "stride is e1" true (d = [| 1; 0 |])
  | _ -> Alcotest.fail "expected one unserved ref"

(* ------------------------------------------------------------------ *)
(* Solver statistics                                                    *)
(* ------------------------------------------------------------------ *)

let chain_network k =
  (* v0 - v1 - ... - v_{k-1} with equality constraints: forces depth k *)
  let names = Array.init k (fun i -> Printf.sprintf "v%d" i) in
  let domains = Array.make k [| 0; 1 |] in
  let net = Network.create ~names ~domains in
  for i = 0 to k - 2 do
    Network.add_allowed net i (i + 1) [ (0, 0); (1, 1) ]
  done;
  net

let test_solver_max_depth () =
  let net = chain_network 6 in
  let r = Solver.solve net in
  (match r.Solver.outcome with
  | Solver.Solution _ -> ()
  | _ -> Alcotest.fail "chain is satisfiable");
  Alcotest.(check int) "max depth reaches the last level" 5
    r.Solver.stats.Stats.max_depth

let test_stats_add () =
  let a = Stats.create () and b = Stats.create () in
  a.Stats.checks <- 5;
  a.Stats.max_depth <- 3;
  a.Stats.elapsed_s <- 0.5;
  b.Stats.checks <- 7;
  b.Stats.max_depth <- 2;
  b.Stats.elapsed_s <- 0.25;
  let c = Stats.add a b in
  Alcotest.(check int) "checks sum" 12 c.Stats.checks;
  Alcotest.(check int) "depth max" 3 c.Stats.max_depth;
  Alcotest.(check (float 1e-9)) "time sums" 0.75 c.Stats.elapsed_s;
  Stats.reset a;
  Alcotest.(check int) "reset" 0 a.Stats.checks

(* ------------------------------------------------------------------ *)
(* Weighted bounding                                                    *)
(* ------------------------------------------------------------------ *)

let test_weighted_max_nodes () =
  let net = chain_network 8 in
  let w = Weighted.create net in
  let full = Weighted.solve w in
  Alcotest.(check bool) "unbounded finds optimum" true (full.Weighted.best <> None);
  let capped = Weighted.solve ~max_nodes:1 w in
  Alcotest.(check bool) "cap respected" true (capped.Weighted.nodes <= 2)

(* ------------------------------------------------------------------ *)
(* Propagation primitives                                               *)
(* ------------------------------------------------------------------ *)

let test_revise_direct () =
  let net =
    Network.create ~names:[| "a"; "b" |] ~domains:[| [| 0; 1; 2 |]; [| 0; 1 |] |]
  in
  Network.add_allowed net 0 1 [ (0, 0); (1, 1) ];
  let domains = [| Bitset.create_full 3; Bitset.create_full 2 |] in
  Alcotest.(check bool) "revise removes value 2 of a" true
    (Propagate.revise net domains 0 1);
  Alcotest.(check (list int)) "a reduced" [ 0; 1 ] (Bitset.to_list domains.(0));
  Alcotest.(check bool) "second revise is a no-op" false
    (Propagate.revise net domains 0 1);
  (* unconstrained pair: no-op *)
  let net2 = Network.create ~names:[| "a"; "b" |] ~domains:[| [| 0 |]; [| 0 |] |] in
  let d2 = [| Bitset.create_full 1; Bitset.create_full 1 |] in
  Alcotest.(check bool) "unconstrained no-op" false (Propagate.revise net2 d2 0 1)

(* ------------------------------------------------------------------ *)
(* Misc invariants                                                      *)
(* ------------------------------------------------------------------ *)

let test_cost_weights_sum () =
  let spec = Mlo_workloads.Suite.by_name "mxm" in
  let weights = Cost.nest_weights spec.Mlo_workloads.Spec.program in
  let sum = Array.fold_left ( +. ) 0. weights in
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 sum

let test_rng_split_decorrelated () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let a = List.init 16 (fun _ -> Rng.int parent 1000) in
  let b = List.init 16 (fun _ -> Rng.int child 1000) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_printer_smoke () =
  let prog = fig2_program ~n:4 in
  let s = Format.asprintf "%a" Program.pp prog in
  Alcotest.(check bool) "program pp mentions arrays" true
    (String.length s > 40);
  let nest = (Program.nests prog).(0) in
  let s2 = Format.asprintf "%a" Mlo_ir.Loop_nest.pp nest in
  Alcotest.(check bool) "nest pp mentions for" true
    (String.length s2 > 20)

let test_network_relation_view () =
  let net =
    Network.create ~names:[| "a"; "b" |] ~domains:[| [| 0; 1 |]; [| 0; 1; 2 |] |]
  in
  Network.add_allowed net 1 0 [ (2, 1) ];
  (* stored canonically; reading the (0,1) orientation transposes *)
  (match Network.relation net 0 1 with
  | Some rel ->
    Alcotest.(check bool) "pair visible" true (Mlo_csp.Relation.mem rel 1 2)
  | None -> Alcotest.fail "relation exists");
  match Network.relation net 1 0 with
  | Some rel -> Alcotest.(check bool) "reverse view" true (Mlo_csp.Relation.mem rel 2 1)
  | None -> Alcotest.fail "relation exists"

let test_transform_expansion_reported () =
  let t =
    Mlo_layout.Transform.make Mlo_layout.Layout.diagonal2 ~extents:[| 8; 8 |]
  in
  let s = Format.asprintf "%a" Mlo_layout.Transform.pp t in
  Alcotest.(check bool) "pp shows expansion" true (String.length s > 20);
  Alcotest.(check bool) "cells >= original" true
    (Mlo_layout.Transform.footprint_cells t >= Mlo_layout.Transform.original_cells t)

let () =
  Alcotest.run "extra"
    [
      ( "explain",
        [
          Alcotest.test_case "fully served program" `Quick test_explain_all_served;
          Alcotest.test_case "flags unserved refs" `Quick
            test_explain_flags_unserved;
        ] );
      ( "stats",
        [
          Alcotest.test_case "max depth" `Quick test_solver_max_depth;
          Alcotest.test_case "add/reset" `Quick test_stats_add;
        ] );
      ( "weighted",
        [ Alcotest.test_case "node cap" `Quick test_weighted_max_nodes ] );
      ( "propagation",
        [ Alcotest.test_case "revise" `Quick test_revise_direct ] );
      ( "misc",
        [
          Alcotest.test_case "cost weights sum to one" `Quick test_cost_weights_sum;
          Alcotest.test_case "rng split" `Quick test_rng_split_decorrelated;
          Alcotest.test_case "printers" `Quick test_printer_smoke;
          Alcotest.test_case "relation views" `Quick test_network_relation_view;
          Alcotest.test_case "transform expansion" `Quick
            test_transform_expansion_reported;
        ] );
    ]
