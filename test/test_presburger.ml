(* Oracle tests for the Presburger engine and the exact dependence
   analyzer: brute-force enumeration of small bounded systems and
   iteration spaces against the engine's verdicts — the same harness
   discipline as test_bnb.ml. *)

module P = Mlo_ir.Presburger
module Dependence = Mlo_ir.Dependence
module Loop_nest = Mlo_ir.Loop_nest
module Access = Mlo_ir.Access
module Affine = Mlo_ir.Affine
module Program = Mlo_ir.Program
module Rng = Mlo_csp.Rng
module Suite = Mlo_workloads.Suite
module Spec = Mlo_workloads.Spec
module Optimizer = Mlo_core.Optimizer

(* ------------------------------------------------------------------ *)
(* Engine unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let test_equality_gcd () =
  (* 2x + 4y = 5: even = odd, refuted during normalization *)
  let sys = P.make ~nvars:2 [ P.eq [| 2; 4 |] (-5) ] in
  Alcotest.(check bool) "2x+4y=5 infeasible" false (P.feasible sys);
  (* 3x + 5y = 1 is solvable (x=2, y=-1), even inside a small box *)
  let sys =
    P.make ~nvars:2
      (P.eq [| 3; 5 |] (-1)
      :: (P.between ~nvars:2 0 ~lo:(-4) ~hi:4
         @ P.between ~nvars:2 1 ~lo:(-4) ~hi:4))
  in
  Alcotest.(check bool) "3x+5y=1 feasible" true (P.feasible sys)

let test_integer_tightening () =
  (* 3 <= 2x <= 3 has the rational solution x = 3/2 and no integer one;
     gcd normalization with constant flooring refutes it outright *)
  let sys = P.make ~nvars:1 [ P.geq [| 2 |] (-3); P.leq [| 2 |] (-3) ] in
  Alcotest.(check bool) "3 <= 2x <= 3 infeasible" false (P.feasible sys);
  let sys = P.make ~nvars:1 [ P.geq [| 2 |] (-3); P.leq [| 2 |] (-4) ] in
  Alcotest.(check bool) "3 <= 2x <= 4 feasible" true (P.feasible sys)

let test_dark_shadow_splinter () =
  (* Pugh's classic: 27 <= 11x + 13y <= 45, -10 <= 7x - 9y <= 4 is
     real-feasible but has no integer point; the dark shadow fails and
     only splintering can refute it *)
  P.reset_stats ();
  let sys =
    P.make ~nvars:2
      [
        P.geq [| 11; 13 |] (-27);
        P.leq [| 11; 13 |] (-45);
        P.geq [| 7; -9 |] 10;
        P.leq [| 7; -9 |] (-4);
      ]
  in
  Alcotest.(check bool) "pugh system infeasible" false (P.feasible sys);
  Alcotest.(check bool) "splintering exercised" true ((P.stats ()).P.splits > 0);
  Alcotest.(check bool) "split depth recorded" true
    ((P.stats ()).P.max_split_depth >= 1);
  (* dropping the second band leaves integer points (e.g. x=1, y=2) *)
  let sys =
    P.make ~nvars:2 [ P.geq [| 11; 13 |] (-27); P.leq [| 11; 13 |] (-45) ]
  in
  Alcotest.(check bool) "single band feasible" true (P.feasible sys)

let test_range () =
  (* x + y = 5 over [0,4]^2: x ranges over [1,4], x - y over [-3,3] *)
  let sys =
    P.make ~nvars:2
      (P.eq [| 1; 1 |] (-5)
      :: (P.between ~nvars:2 0 ~lo:0 ~hi:4 @ P.between ~nvars:2 1 ~lo:0 ~hi:4))
  in
  (match P.range sys ~coeffs:[| 1; 0 |] ~lo:(-10) ~hi:10 with
  | Some (1, 4) -> ()
  | Some (a, b) -> Alcotest.failf "x range: expected (1,4), got (%d,%d)" a b
  | None -> Alcotest.fail "x range: expected feasible");
  (match P.range sys ~coeffs:[| 1; -1 |] ~lo:(-10) ~hi:10 with
  | Some (-3, 3) -> ()
  | Some (a, b) -> Alcotest.failf "x-y range: expected (-3,3), got (%d,%d)" a b
  | None -> Alcotest.fail "x-y range: expected feasible");
  let empty = P.add sys [ P.geq [| 1; 0 |] (-9) ] in
  Alcotest.(check bool) "range of infeasible is None" true
    (P.range empty ~coeffs:[| 1; 0 |] ~lo:(-10) ~hi:10 = None)

(* ------------------------------------------------------------------ *)
(* qcheck oracle: random bounded systems vs brute enumeration           *)
(* ------------------------------------------------------------------ *)

type rsys = {
  nvars : int;
  boxes : (int * int) array; (* inclusive *)
  extras : (bool * int array * int) list; (* is_eq, coeffs, const *)
  form : int array; (* objective form for the range oracle *)
}

let gen_sys =
  QCheck.map
    (fun seed ->
      let rng = Rng.create (seed + 7) in
      let nvars = 1 + Rng.int rng 3 in
      let boxes =
        Array.init nvars (fun _ ->
            let lo = Rng.int rng 4 - 3 in
            (lo, lo + Rng.int rng 5))
      in
      let extras =
        List.init (Rng.int rng 4) (fun _ ->
            ( Rng.int rng 3 = 0,
              Array.init nvars (fun _ -> Rng.int rng 7 - 3),
              Rng.int rng 13 - 6 ))
      in
      let form = Array.init nvars (fun _ -> Rng.int rng 7 - 3) in
      { nvars; boxes; extras; form })
    QCheck.small_nat

let to_system s =
  let cs = ref [] in
  Array.iteri
    (fun i (lo, hi) -> cs := P.between ~nvars:s.nvars i ~lo ~hi @ !cs)
    s.boxes;
  List.iter
    (fun (is_eq, c, k) ->
      cs := (if is_eq then P.eq c k else P.geq c k) :: !cs)
    s.extras;
  P.make ~nvars:s.nvars !cs

(* Call [f] on every integer point of the box satisfying the extras. *)
let brute_iter s f =
  let x = Array.make s.nvars 0 in
  let dot c = Array.fold_left ( + ) 0 (Array.mapi (fun i ci -> ci * x.(i)) c) in
  let ok () =
    List.for_all
      (fun (is_eq, c, k) ->
        let v = dot c + k in
        if is_eq then v = 0 else v >= 0)
      s.extras
  in
  let rec go i =
    if i = s.nvars then (if ok () then f x)
    else
      let lo, hi = s.boxes.(i) in
      for v = lo to hi do
        x.(i) <- v;
        go (i + 1)
      done
  in
  go 0

let brute_feasible s =
  let found = ref false in
  brute_iter s (fun _ -> found := true);
  !found

let prop_feasibility_oracle =
  QCheck.Test.make
    ~name:"feasibility agrees with brute-force enumeration" ~count:320 gen_sys
    (fun s -> P.feasible (to_system s) = brute_feasible s)

let prop_range_oracle =
  QCheck.Test.make ~name:"range agrees with brute-force extrema" ~count:200
    gen_sys (fun s ->
      let mn = ref max_int and mx = ref min_int in
      brute_iter s (fun x ->
          let v =
            Array.fold_left ( + ) 0 (Array.mapi (fun i c -> c * x.(i)) s.form)
          in
          if v < !mn then mn := v;
          if v > !mx then mx := v);
      (* outer bounds from interval arithmetic over the box *)
      let olo = ref 0 and ohi = ref 0 in
      Array.iteri
        (fun i c ->
          let lo, hi = s.boxes.(i) in
          if c > 0 then (olo := !olo + (c * lo); ohi := !ohi + (c * hi))
          else (olo := !olo + (c * hi); ohi := !ohi + (c * lo)))
        s.form;
      match P.range (to_system s) ~coeffs:s.form ~lo:!olo ~hi:!ohi with
      | None -> !mn > !mx (* brute found nothing either *)
      | Some (a, b) -> a = !mn && b = !mx)

(* ------------------------------------------------------------------ *)
(* qcheck oracle: dependence analysis vs brute-force execution          *)
(* ------------------------------------------------------------------ *)

(* Random small nests with an arbitrary (possibly non-uniform, possibly
   singular) write/read or write/write pair on one array. *)
let gen_nest =
  QCheck.map
    (fun seed ->
      let rng = Rng.create (seed + 31) in
      let depth = 2 + Rng.int rng 2 in
      let dims = 1 + Rng.int rng 2 in
      let loops =
        List.init depth (fun l ->
            {
              Loop_nest.var = Printf.sprintf "i%d" l;
              lo = 0;
              hi = 2 + Rng.int rng 3;
            })
      in
      let expr () =
        Affine.make (List.init depth (fun _ -> Rng.int rng 5 - 2)) (Rng.int rng 5 - 2)
      in
      let access mk = mk "A" (List.init dims (fun _ -> expr ())) in
      let w = access Access.write in
      let o =
        if Rng.int rng 4 = 0 then access Access.write else access Access.read
      in
      Loop_nest.make ~name:"rnd" loops [ w; o ])
    QCheck.small_nat

let iteration_vectors nest =
  let acc = ref [] in
  Loop_nest.iter nest (fun iv -> acc := Array.copy iv :: !acc);
  List.rev !acc

let lex_sign v =
  let rec go i =
    if i >= Array.length v then 0
    else if v.(i) > 0 then 1
    else if v.(i) < 0 then -1
    else go (i + 1)
  in
  go 0

(* Realized normalized distances between accesses [i] and [j]: every
   I <> I' touching the same element contributes |I' - I| with the lex
   sign flipped positive. *)
let realized nest i j =
  let accs = Loop_nest.accesses nest in
  let ivs = iteration_vectors nest in
  let out = ref [] in
  List.iter
    (fun iv ->
      List.iter
        (fun iv' ->
          if iv <> iv'
             && Access.element_at accs.(i) iv = Access.element_at accs.(j) iv'
          then begin
            let d = Array.init (Array.length iv) (fun l -> iv'.(l) - iv.(l)) in
            let d = if lex_sign d < 0 then Array.map (fun x -> -x) d else d in
            if not (List.mem d !out) then out := d :: !out
          end)
        ivs)
    ivs;
  !out

let dep_covers dep delta =
  match dep with
  | Dependence.Distance v -> v = delta
  | Dependence.Direction dirs ->
      Array.length dirs = Array.length delta
      && Array.for_all2
           (fun dir dl ->
             match dir with
             | Dependence.Lt -> dl >= 1
             | Dependence.Eq -> dl = 0
             | Dependence.Gt -> dl <= -1)
           dirs delta

let prop_deps_oracle =
  QCheck.Test.make
    ~name:"pair deps summarize exactly the realized distance set" ~count:250
    gen_nest (fun nest ->
      List.for_all
        (fun (i, j, ds) ->
          let r = realized nest i j in
          (* complete: every realized distance is covered by some dep *)
          List.for_all
            (fun delta -> List.exists (fun d -> dep_covers d delta) ds)
            r
          (* sound: every dep is witnessed by a realized distance and is
             normalized (first non-Eq component is Lt) *)
          && List.for_all
               (fun d ->
                 (match d with
                 | Dependence.Distance v -> List.mem v r
                 | Dependence.Direction dirs ->
                     (match
                        Array.to_list dirs
                        |> List.find_opt (fun x -> x <> Dependence.Eq)
                      with
                     | Some Dependence.Lt -> true
                     | _ -> false)
                     && List.exists (fun delta -> dep_covers d delta) r)
                 [@warning "-4"])
               ds
          && (ds = []) = (r = []))
        (Dependence.pair_deps nest))

let prop_legality_oracle =
  QCheck.Test.make
    ~name:"legal_permutation agrees with brute execution reordering"
    ~count:200 gen_nest (fun nest ->
      let accs = Loop_nest.accesses nest in
      let n = Array.length accs in
      let ivs = iteration_vectors nest in
      (* ordered conflicting access pairs (same array, >= one write) *)
      let pairs = ref [] in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Access.is_write accs.(i) || Access.is_write accs.(j) then
            pairs := (accs.(i), accs.(j)) :: !pairs
        done
      done;
      let apply perm iv = Array.init (Array.length perm) (fun p -> iv.(perm.(p))) in
      (* A reorder is legal iff every same-element pair executed in a
         strict source order stays in that order afterwards. *)
      let brute_legal perm =
        List.for_all
          (fun (a1, a2) ->
            List.for_all
              (fun iv ->
                List.for_all
                  (fun iv' ->
                    (not
                       (compare iv iv' < 0
                       && Access.element_at a1 iv = Access.element_at a2 iv'))
                    || compare (apply perm iv) (apply perm iv') < 0)
                  ivs)
              ivs)
          !pairs
      in
      List.for_all
        (fun (p, _) -> Dependence.legal_permutation nest p = brute_legal p)
        (Loop_nest.permutations nest))

(* ------------------------------------------------------------------ *)
(* Suite goldens: legal-order counts and end-to-end objective           *)
(* ------------------------------------------------------------------ *)

let legal_orders spec =
  Array.fold_left
    (fun acc nest -> acc + List.length (Dependence.legal_permutations nest))
    0
    (Program.nests spec.Spec.program)

let test_suite_legal_order_goldens () =
  (* GCD-era baseline, recorded before the rewrite: med-im04 240,
     mxm 18, radar 798, shape 1124, track 940 — all already maximal
     (every order legal), so exactness must keep them intact. *)
  List.iter2
    (fun spec expect ->
      Alcotest.(check int) spec.Spec.name expect (legal_orders spec))
    (Suite.all ())
    [ 240; 18; 798; 1124; 940 ]

let test_scale_gains_legal_orders () =
  (* The scale family's windowed-update nests (store Q[i+b][j], load
     Q[i][j+1]) carry the uniform distance (b, -1), which exceeds the
     i-trip count: the GCD-era analyzer reported it as an Exact
     dependence and rejected the interchange (1 legal order); the
     bounded system proves independence (2 legal orders). *)
  let spec = Suite.by_name "scale-10" in
  let nests = Program.nests spec.Spec.program in
  let shifted =
    Array.to_list nests
    |> List.filter (fun n ->
           let name = Loop_nest.name n in
           String.length name >= 5 && String.sub name 0 5 = "shift")
  in
  Alcotest.(check bool) "shift nests present" true (shifted <> []);
  List.iter
    (fun nest ->
      Alcotest.(check int) "proved independent" 0
        (List.length (Dependence.deps nest));
      Alcotest.(check int) "both orders legal (GCD era pinned to 1)" 2
        (List.length (Dependence.legal_permutations nest)))
    shifted;
  (* whole-family golden: 11 classic nests x 2 + shift nests x 2 *)
  Alcotest.(check int) "scale-10 legal orders" 24 (legal_orders spec)

let test_objective_never_worse () =
  (* End-to-end branch-and-bound objective on the five benchmarks must
     never regress past the GCD-era optima (legal-order sets only
     grow): med-im04 26132, mxm 67536, radar 97672, shape 136978,
     track 102167. *)
  List.iter2
    (fun spec bound ->
      let sol =
        Optimizer.optimize ~candidates:spec.Spec.candidates
          (Optimizer.Bnb Mlo_csp.Bnb.default_config)
          spec.Spec.program
      in
      match sol.Optimizer.objective_value with
      | Some v ->
          if v > bound +. 1e-6 then
            Alcotest.failf "%s: objective %.1f worse than GCD-era %.1f"
              spec.Spec.name v bound
      | None -> Alcotest.fail "bnb must report an objective")
    (Suite.all ())
    [ 26132.; 67536.; 97672.; 136978.; 102167. ]

(* ------------------------------------------------------------------ *)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_feasibility_oracle;
      prop_range_oracle;
      prop_deps_oracle;
      prop_legality_oracle;
    ]

let () =
  Alcotest.run "presburger"
    [
      ( "engine",
        [
          Alcotest.test_case "equality gcd refutation" `Quick test_equality_gcd;
          Alcotest.test_case "integer tightening" `Quick test_integer_tightening;
          Alcotest.test_case "dark shadow and splintering" `Quick
            test_dark_shadow_splinter;
          Alcotest.test_case "range extrema" `Quick test_range;
        ] );
      ("oracles", props);
      ( "goldens",
        [
          Alcotest.test_case "suite legal-order counts" `Quick
            test_suite_legal_order_goldens;
          Alcotest.test_case "scale family gains legal orders" `Quick
            test_scale_gains_legal_orders;
          Alcotest.test_case "objective never worse than GCD era" `Slow
            test_objective_never_worse;
        ] );
    ]
