(* Benchmark harness.

   Two parts:

   1. The reproduction: regenerate every table and figure of the paper
      (Table 1, Table 2, Figure 4, Table 3) and print them with the
      published numbers alongside.  These are single-shot runs - exactly
      what the experiments measure.

   2. Bechamel micro-benchmarks: one Test.make group per table/figure,
      timing the computational kernel each experiment stresses (network
      extraction for Table 1, the solver schemes for Table 2, the
      single-improvement schemes for Figure 4, trace-driven simulation
      for Table 3) on inputs small enough to sample repeatedly. *)

module Spec = Mlo_workloads.Spec
module Suite = Mlo_workloads.Suite
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Build = Mlo_netgen.Build
module Propagation = Mlo_heuristic.Propagation
module Simulate = Mlo_cachesim.Simulate
module Tables = Mlo_experiments.Tables
module Prune = Mlo_netgen.Prune
module Locality = Mlo_analysis.Locality
module Depreport = Mlo_analysis.Depreport
open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: the tables                                                   *)
(* ------------------------------------------------------------------ *)

let print_tables () =
  Format.printf "==================================================@.";
  Format.printf "Reproduction of Chen/Kandemir/Karakoy, DATE 2005@.";
  Format.printf "==================================================@.@.";
  Format.printf "%a@.@." Tables.print_table1 (Tables.run_table1 ());
  Format.printf "%a@.@." Tables.print_table2 (Tables.run_table2 ());
  Format.printf "%a@.@." Tables.print_fig4 (Tables.run_fig4 ());
  Format.printf "%a@.@." Tables.print_table3 (Tables.run_table3 ());
  Format.printf "%a@.@." Tables.print_ablation (Tables.run_ablation ())

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel micro-benchmarks                                    *)
(* ------------------------------------------------------------------ *)

let mxm = lazy (Suite.by_name "mxm")
let med = lazy (Suite.by_name "med-im04")

let table1_tests =
  List.map
    (fun spec ->
      Test.make
        ~name:(Printf.sprintf "table1/extract:%s" spec.Spec.name)
        (Staged.stage (fun () -> ignore (Spec.extract spec))))
    [ Lazy.force mxm; Lazy.force med ]

let table2_tests =
  List.concat_map
    (fun spec ->
      let build = Spec.extract spec in
      let net = build.Build.network in
      [
        Test.make
          ~name:(Printf.sprintf "table2/enhanced:%s" spec.Spec.name)
          (Staged.stage (fun () ->
               ignore (Solver.solve ~config:(Schemes.enhanced ()) net)));
        Test.make
          ~name:(Printf.sprintf "table2/heuristic:%s" spec.Spec.name)
          (Staged.stage (fun () ->
               ignore (Propagation.optimize spec.Spec.program)));
      ])
    [ Lazy.force mxm; Lazy.force med ]

let fig4_tests =
  let build = Spec.extract (Lazy.force mxm) in
  let net = build.Build.network in
  List.map
    (fun a ->
      Test.make
        ~name:(Printf.sprintf "fig4/%s" a.Schemes.label)
        (Staged.stage (fun () ->
             ignore (Solver.solve ~config:a.Schemes.config net))))
    (Schemes.figure4_schemes ~max_checks:50_000_000 ())

(* matmul32: the Table-3 sweep program, shared with the locality
   kernels below so the static estimate and the simulation time the
   same input. *)
let matmul32 =
  lazy
    (let n = 32 in
     let mm, req =
       Mlo_workloads.Kernels.matmul ~name:"mm" ~n ~c:"C" ~a:"A" ~b:"B"
     in
     Mlo_ir.Program.make ~name:"bench-mm" (Mlo_workloads.Kernels.declare req)
       [ mm ])

let colB = function
  | "B" -> Some (Mlo_layout.Layout.col_major 2)
  | _ -> None

(* The Table-3 sweep shape: one program, several layout assignments
   (here 8 = 4 code versions x 2, big enough to keep 4 domains busy). *)
let matmul32_sweep =
  List.concat (List.init 4 (fun _ -> [ (fun _ -> None); colB ]))

let table3_tests =
  let prog = Lazy.force matmul32 in
  let sweep = matmul32_sweep in
  [
    Test.make ~name:"table3/simulate:matmul32-row"
      (Staged.stage (fun () ->
           ignore (Simulate.run prog ~layouts:(fun _ -> None))));
    Test.make ~name:"table3/simulate:matmul32-colB"
      (Staged.stage (fun () -> ignore (Simulate.run prog ~layouts:colB)));
    Test.make ~name:"table3/reference:matmul32-row"
      (Staged.stage (fun () ->
           ignore (Simulate.run_reference prog ~layouts:(fun _ -> None))));
    Test.make ~name:"table3/compile:matmul32"
      (Staged.stage (fun () ->
           ignore (Mlo_cachesim.Compiled_trace.compile prog ~layouts:colB)));
    Test.make ~name:"table3/run_many:matmul32-x8-1dom"
      (Staged.stage (fun () ->
           ignore (Simulate.run_many ~domains:1 prog ~layouts_list:sweep)));
  ]
  (* Multi-domain scaling is only meaningful with real cores behind the
     domains; on a single-core box Domain.spawn is pure overhead, so the
     kernel would record noise.  recommended_domain_count is the same
     signal run_many's default uses. *)
  @ (if Domain.recommended_domain_count () >= 4 then
       [
         Test.make ~name:"table3/run_many:matmul32-x8-4dom"
           (Staged.stage (fun () ->
                ignore (Simulate.run_many ~domains:4 prog ~layouts_list:sweep)));
       ]
     else [])

(* Domain build with and without dominance pruning.  The extract/prune
   pair on the same spec isolates the pruning pass itself; Prune.apply
   re-runs the locality profiler per (array, candidate layout), so its
   cost scales with the domain sizes Table 1 reports. *)
let prune_tests =
  List.concat_map
    (fun spec ->
      [
        Test.make
          ~name:(Printf.sprintf "prune/extract:%s" spec.Spec.name)
          (Staged.stage (fun () -> ignore (Spec.extract spec)));
        Test.make
          ~name:(Printf.sprintf "prune/extract+prune:%s" spec.Spec.name)
          (Staged.stage (fun () ->
               ignore (Prune.apply (Spec.extract spec))));
      ])
    [ Lazy.force mxm; Lazy.force med ]

(* The workload-scaling axis: the synthetic scale family at 10/100/1000
   arrays (Suite.scale — component-rich networks, hundreds of nests).
   Per size: network extraction, the component solve alone (serial and,
   where the machine has real cores behind the domains, on 4 of them),
   and the end-to-end extract+solve pipeline.  The serial/parallel pair
   on the same pre-built network is the speedup column of
   BENCH_scale.json (--scale-json). *)
let scale_sizes = [ 10; 100; 1000 ]

(* Same gate as table3/run_many above: multi-domain kernels record pure
   spawn overhead on a box without cores to back the domains. *)
let scale_par_domains =
  if Domain.recommended_domain_count () >= 4 then Some 4 else None

let scale_builds =
  lazy
    (List.map
       (fun n ->
         let spec = Suite.scale n in
         (n, spec, Spec.extract spec))
       scale_sizes)

let scale_tests =
  lazy
    (List.concat_map
       (fun (n, spec, build) ->
         let net = build.Build.network in
         [
           Test.make
             ~name:(Printf.sprintf "scale/extract:scale-%d" n)
             (Staged.stage (fun () -> ignore (Spec.extract spec)));
           Test.make
             ~name:(Printf.sprintf "scale/solve-ser:scale-%d" n)
             (Staged.stage (fun () ->
                  ignore
                    (Solver.solve_components ~config:(Schemes.enhanced ()) net)));
           Test.make
             ~name:(Printf.sprintf "scale/e2e:scale-%d" n)
             (Staged.stage (fun () ->
                  ignore
                    (Solver.solve_components ~config:(Schemes.enhanced ())
                       (Spec.extract spec).Build.network)));
         ]
         @
         match scale_par_domains with
         | None -> []
         | Some domains ->
           [
             Test.make
               ~name:(Printf.sprintf "scale/solve-par%d:scale-%d" domains n)
               (Staged.stage (fun () ->
                    ignore
                      (Solver.solve_components ~config:(Schemes.enhanced ())
                         ~domains net)));
           ])
       (Lazy.force scale_builds))

(* The conflict-driven axis: the hard family (three-deep nests on the
   array ring near the phase transition, Suite.hard) at sizes where the
   paper's enhanced backjumper starts to thrash on rediscovered
   conflicts.  Per size: the enhanced solve, the nogood-learning solve
   (Cdl) and the racing portfolio on the same pre-built network.  The
   enhanced-vs-cdl p50 ratio is the speedup column of BENCH_hard.json
   (--hard-json). *)
let hard_sizes = [ 20; 80; 150; 200 ]

let hard_builds =
  lazy
    (List.map
       (fun n ->
         let spec = Suite.hard n in
         (n, spec, Spec.extract spec))
       hard_sizes)

let hard_tests =
  lazy
    (List.concat_map
       (fun (n, _spec, build) ->
         let net = build.Build.network in
         let compiled = Mlo_csp.Network.compile net in
         [
           Test.make
             ~name:(Printf.sprintf "hard/solve-enh:hard-%d" n)
             (Staged.stage (fun () ->
                  ignore
                    (Solver.solve_components ~config:(Schemes.enhanced ()) net)));
           Test.make
             ~name:(Printf.sprintf "hard/solve-cdl:hard-%d" n)
             (Staged.stage (fun () ->
                  ignore
                    (Mlo_csp.Cdl.solve_components
                       ~config:Mlo_csp.Cdl.default_config net)));
           Test.make
             ~name:(Printf.sprintf "hard/solve-portfolio:hard-%d" n)
             (Staged.stage (fun () ->
                  ignore (Mlo_csp.Portfolio.race ~domains:2 compiled)));
         ])
       (Lazy.force hard_builds))

(* Static miss estimate vs trace-driven simulation on the same
   matmul32 sweep: locality/estimate-sweep is the closed-form analyzer
   over the 8 layout assignments table3/run_many walks address by
   address.  The ratio of the two is the speedup the cost model buys. *)
let locality_tests =
  let prog = Lazy.force matmul32 in
  [
    Test.make ~name:"locality/analyze:matmul32"
      (Staged.stage (fun () ->
           ignore (Locality.analyze prog ~layouts:colB)));
    Test.make ~name:"locality/estimate-sweep:matmul32-x8"
      (Staged.stage (fun () ->
           List.iter
             (fun layouts -> ignore (Locality.analyze prog ~layouts))
             matmul32_sweep));
  ]

(* The exact dependence axis: the full Omega-test analysis (per-pair
   direction-vector enumeration plus the legal-permutation filter) over
   a paper benchmark and a conflict-heavy one.  This is the static
   analysis every deps/lint/optimize run pays up front; the kernels pin
   its cost next to the solver stages it feeds. *)
let deps_tests =
  List.map
    (fun spec ->
      Test.make
        ~name:(Printf.sprintf "deps/analyze:%s" spec.Spec.name)
        (Staged.stage (fun () ->
             ignore (Depreport.run spec.Spec.program))))
    [ Lazy.force mxm; Lazy.force med ]

(* The optimizing axis: branch and bound over the static cost model on
   the paper networks, next to the first-solution learner on the same
   pre-built network — the pair prices the optimality proof.  The
   profiler is staged outside the timed thunk (its memo makes repeat
   queries cheap anyway), so the kernel times the search itself. *)
let bnb_tests =
  List.concat_map
    (fun spec ->
      let build = Spec.extract spec in
      let net = build.Build.network in
      let prof = Locality.profiler spec.Spec.program in
      let cost name v =
        Array.fold_left ( +. ) 0.0
          (prof ~array_name:name
             ~layout:(Mlo_csp.Network.value net (Build.var_of_array build name) v))
      in
      [
        Test.make
          ~name:(Printf.sprintf "bnb/solve-bnb:%s" spec.Spec.name)
          (Staged.stage (fun () ->
               ignore (Mlo_csp.Bnb.branch_and_bound ~cost net)));
        Test.make
          ~name:(Printf.sprintf "bnb/solve-cdl:%s" spec.Spec.name)
          (Staged.stage (fun () ->
               ignore
                 (Mlo_csp.Cdl.solve_components
                    ~config:Mlo_csp.Cdl.default_config net)));
      ])
    [ Lazy.force mxm; Lazy.force med ]

(* The certifying axis: the same hard-80 cdl solve bare and with proof
   event recording (the per-search work `solve --proof` adds — the
   bare-vs-events p50 ratio is the under-10% logging-overhead claim of
   DESIGN.md Section 16, recorded as data in BENCH_solver.json), the
   one-time certificate assembly (header digest plus step list, a fixed
   O(network) cost independent of search length), and the independent
   checker replaying the finished certificate. *)
let record_cdl net =
  let comp_data = Hashtbl.create 8 in
  let on_event ~comp ~vars ev =
    let _, steps_r, outcome_r =
      match Hashtbl.find_opt comp_data comp with
      | Some s -> s
      | None ->
        let s = (vars, ref [], ref None) in
        Hashtbl.add comp_data comp s;
        s
    in
    match ev with
    | Solver.Learned { dead; lits } ->
      steps_r :=
        Mlo_verify.Proof.Ng
          {
            comp;
            dead = vars.(dead);
            lits = Array.map (fun (x, v) -> (vars.(x), v)) lits;
          }
        :: !steps_r
    | Solver.Incumbent _ -> ()
    | Solver.Finished o -> outcome_r := Some o
  in
  let r =
    Mlo_csp.Cdl.solve_components ~config:Mlo_csp.Cdl.default_config
      ~on_event net
  in
  (r, comp_data)

let assemble_cdl ~workload net (r, comp_data) =
  let unsat =
    match r.Solver.outcome with Solver.Unsatisfiable -> true | _ -> false
  in
  let steps =
    Hashtbl.fold (fun k _ acc -> k :: acc) comp_data []
    |> List.sort compare
    |> List.concat_map (fun k ->
           let vars, steps_r, outcome_r = Hashtbl.find comp_data k in
           let keep =
             (not unsat)
             ||
             match !outcome_r with
             | Some Solver.Unsatisfiable -> true
             | _ -> false
           in
           if not keep then []
           else
             Mlo_verify.Proof.Comp { id = k; vars = Array.copy vars }
             :: List.rev !steps_r)
  in
  let verdict =
    match r.Solver.outcome with
    | Solver.Solution a -> Mlo_verify.Proof.Sat a
    | Solver.Unsatisfiable -> Mlo_verify.Proof.Unsat
    | Solver.Aborted -> Mlo_verify.Proof.Aborted
  in
  let n = Mlo_csp.Network.num_vars net in
  {
    Mlo_verify.Proof.header =
      {
        Mlo_verify.Proof.workload;
        scheme = "cdl";
        objective = None;
        pruned = false;
        slack = 0.0;
        names = Array.init n (Mlo_csp.Network.name net);
        domain_sizes = Array.init n (Mlo_csp.Network.domain_size net);
        digest = Mlo_verify.Proof.digest net;
      };
    steps;
    verdict = Some verdict;
  }

let proof_tests =
  lazy
    (let _, _, build =
       List.find (fun (n, _, _) -> n = 80) (Lazy.force hard_builds)
     in
     let net = build.Build.network in
     let recorded = record_cdl net in
     let proof = assemble_cdl ~workload:"hard-80" net recorded in
     [
       Test.make ~name:"proof/solve-cdl:hard-80"
         (Staged.stage (fun () ->
              ignore
                (Mlo_csp.Cdl.solve_components
                   ~config:Mlo_csp.Cdl.default_config net)));
       Test.make ~name:"proof/solve-cdl+events:hard-80"
         (Staged.stage (fun () -> ignore (record_cdl net)));
       Test.make ~name:"proof/assemble:hard-80"
         (Staged.stage (fun () ->
              ignore (assemble_cdl ~workload:"hard-80" net recorded)));
       Test.make ~name:"proof/check:hard-80"
         (Staged.stage (fun () ->
              match Mlo_verify.Checker.check net proof with
              | Ok () -> ()
              | Error msg -> failwith msg));
     ])

(* Per-kernel robust statistics over the raw per-sample ns/run values.
   Percentiles use linear interpolation between order statistics; MAD is
   the median absolute deviation from the median (unscaled), a spread
   estimate that one cache-cold outlier can't distort the way a standard
   deviation can. *)
type stats = { p50 : float; p90 : float; p99 : float; mad : float; samples : int }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let stats_of samples =
  let a = Array.copy samples in
  Array.sort compare a;
  let p50 = percentile a 0.5 in
  let dev = Array.map (fun x -> Float.abs (x -. p50)) a in
  Array.sort compare dev;
  {
    p50;
    p90 = percentile a 0.9;
    p99 = percentile a 0.99;
    mad = percentile dev 0.5;
    samples = Array.length a;
  }

(* Runs every kernel whose name starts with [filter] (default: all) and
   returns (name, stats, OLS ns/run) rows, in test order.  The stats
   come straight from the raw per-sample measurements; OLS is
   bechamel's usual run-predictor fit. *)
let benchmark ?(filter = "") ~quota () =
  let tests =
    table1_tests @ table2_tests @ fig4_tests @ table3_tests @ prune_tests
    @ locality_tests @ deps_tests @ bnb_tests @ Lazy.force scale_tests
    @ Lazy.force hard_tests @ Lazy.force proof_tests
  in
  let tests =
    if filter = "" then tests
    else List.filter (fun t -> String.starts_with ~prefix:filter (Test.name t)) tests
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second quota) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let label = Measure.label Instance.monotonic_clock in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.fold
        (fun name (b : Benchmark.t) acc ->
          let st =
            stats_of
              (Array.map
                 (fun m ->
                   Measurement_raw.get ~label m /. Measurement_raw.run m)
                 b.Benchmark.lr)
          in
          let est =
            match Hashtbl.find_opt results name with
            | Some r -> (
              match Analyze.OLS.estimates r with
              | Some [ e ] -> Some e
              | Some _ | None -> None)
            | None -> None
          in
          (name, st, est) :: acc)
        raw []
      |> List.sort compare)
    tests

let print_benchmark rows =
  Format.printf "Bechamel micro-benchmarks (monotonic clock, ns/run):@.";
  Format.printf "  %-34s %12s %12s %12s %9s %6s %12s@." "kernel" "p50" "p90"
    "p99" "mad" "n" "ols";
  List.iter
    (fun (name, st, est) ->
      Format.printf "  %-34s %12.1f %12.1f %12.1f %9.1f %6d" name st.p50
        st.p90 st.p99 st.mad st.samples;
      (match est with
      | Some e -> Format.printf " %12.1f" e
      | None -> Format.printf " %12s" "-");
      Format.printf "@.")
    rows;
  Format.printf "@."

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Schema "memlayout-bench/2": per-kernel percentile objects.  /1 was a
   flat name->median map; any consumer keying on "kernels".<name> being a
   number must switch on the "schema" field. *)
let write_json file rows =
  let oc = open_out file in
  output_string oc
    "{\n\
    \  \"schema\": \"memlayout-bench/2\",\n\
    \  \"clock\": \"monotonic\",\n\
    \  \"unit\": \"ns/run\",\n\
    \  \"kernels\": {\n";
  List.iteri
    (fun i (name, st, _) ->
      Printf.fprintf oc
        "    \"%s\": { \"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, \"mad\": \
         %.1f, \"samples\": %d }%s\n"
        (json_escape name) st.p50 st.p90 st.p99 st.mad st.samples
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  }\n}\n";
  close_out oc;
  Format.printf "wrote %d kernel stats to %s@." (List.length rows) file

(* Schema "memlayout-scale-bench/1": one object per scale-family size
   with network shape (arrays/nests/components), the end-to-end and
   per-stage percentile stats, and the serial-vs-parallel solve speedup
   (p50 ratio on the same pre-built network).  On machines without
   enough cores to back 4 domains the parallel kernel does not run and
   both "solve_par" and "speedup_par" are null — recorded honestly
   rather than timing domain-spawn overhead. *)
let write_scale_json file rows =
  let find kind n =
    List.find_opt
      (fun (name, _, _) ->
        String.equal name (Printf.sprintf "scale/%s:scale-%d" kind n))
      rows
    |> Option.map (fun (_, st, _) -> st)
  in
  let stat_json = function
    | Some st ->
      Printf.sprintf
        "{ \"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, \"mad\": %.1f, \
         \"samples\": %d }"
        st.p50 st.p90 st.p99 st.mad st.samples
    | None -> "null"
  in
  let par_kind =
    Option.map (fun d -> Printf.sprintf "solve-par%d" d) scale_par_domains
  in
  let oc = open_out file in
  output_string oc
    "{\n\
    \  \"schema\": \"memlayout-scale-bench/1\",\n\
    \  \"clock\": \"monotonic\",\n\
    \  \"unit\": \"ns/run\",\n";
  Printf.fprintf oc "  \"parallel_domains\": %s,\n"
    (match scale_par_domains with Some d -> string_of_int d | None -> "null");
  output_string oc "  \"sizes\": {\n";
  let sizes = Lazy.force scale_builds in
  List.iteri
    (fun i (n, spec, build) ->
      let net = build.Build.network in
      let ser = find "solve-ser" n in
      let par = Option.map (fun k -> find k n) par_kind |> Option.join in
      let speedup =
        match (ser, par) with
        | Some s, Some p when p.p50 > 0. ->
          Printf.sprintf "%.2f" (s.p50 /. p.p50)
        | _ -> "null"
      in
      Printf.fprintf oc
        "    \"scale-%d\": {\n\
        \      \"arrays\": %d, \"nests\": %d, \"components\": %d,\n\
        \      \"extract\": %s,\n\
        \      \"solve_ser\": %s,\n\
        \      \"solve_par\": %s,\n\
        \      \"e2e\": %s,\n\
        \      \"speedup_par\": %s\n\
        \    }%s\n"
        n
        (Array.length (Mlo_ir.Program.arrays spec.Spec.program))
        (Array.length (Mlo_ir.Program.nests spec.Spec.program))
        (Array.length (Mlo_csp.Network.components net))
        (stat_json (find "extract" n))
        (stat_json ser) (stat_json par)
        (stat_json (find "e2e" n))
        speedup
        (if i = List.length sizes - 1 then "" else ",")
    )
    sizes;
  output_string oc "  }\n}\n";
  close_out oc;
  Format.printf "wrote scale stats for %d sizes to %s@." (List.length sizes)
    file

(* Schema "memlayout-hard-bench/1": one object per hard-family size with
   network shape, per-scheme percentile stats on the same pre-built
   network, and the enhanced-vs-learning p50 speedups — the conflict-
   driven solving claim of DESIGN.md Section 14, recorded as data. *)
let write_hard_json file rows =
  let find kind n =
    List.find_opt
      (fun (name, _, _) ->
        String.equal name (Printf.sprintf "hard/%s:hard-%d" kind n))
      rows
    |> Option.map (fun (_, st, _) -> st)
  in
  let stat_json = function
    | Some st ->
      Printf.sprintf
        "{ \"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, \"mad\": %.1f, \
         \"samples\": %d }"
        st.p50 st.p90 st.p99 st.mad st.samples
    | None -> "null"
  in
  let speedup over = function
    | Some (e : stats), Some (s : stats) when s.p50 > 0. && over ->
      Printf.sprintf "%.2f" (e.p50 /. s.p50)
    | _ -> "null"
  in
  let oc = open_out file in
  output_string oc
    "{\n\
    \  \"schema\": \"memlayout-hard-bench/1\",\n\
    \  \"clock\": \"monotonic\",\n\
    \  \"unit\": \"ns/run\",\n\
    \  \"sizes\": {\n";
  let sizes = Lazy.force hard_builds in
  List.iteri
    (fun i (n, spec, build) ->
      let net = build.Build.network in
      let enh = find "solve-enh" n in
      let cdl = find "solve-cdl" n in
      let pf = find "solve-portfolio" n in
      Printf.fprintf oc
        "    \"hard-%d\": {\n\
        \      \"arrays\": %d, \"nests\": %d, \"components\": %d,\n\
        \      \"solve_enhanced\": %s,\n\
        \      \"solve_cdl\": %s,\n\
        \      \"solve_portfolio\": %s,\n\
        \      \"speedup_cdl\": %s,\n\
        \      \"speedup_portfolio\": %s\n\
        \    }%s\n"
        n
        (Array.length (Mlo_ir.Program.arrays spec.Spec.program))
        (Array.length (Mlo_ir.Program.nests spec.Spec.program))
        (Array.length (Mlo_csp.Network.components net))
        (stat_json enh) (stat_json cdl) (stat_json pf)
        (speedup true (enh, cdl))
        (speedup true (enh, pf))
        (if i = List.length sizes - 1 then "" else ","))
    sizes;
  output_string oc "  }\n}\n";
  close_out oc;
  Format.printf "wrote hard stats for %d sizes to %s@." (List.length sizes)
    file

let usage () =
  prerr_endline
    "usage: bench [--tables | --json [FILE] | --scale-json [FILE] | \
     --hard-json [FILE] | --smoke [FILTER]]\n\
     \  (default)        print the paper's tables then run the micro-benchmarks\n\
     \  --tables         print the paper's tables only\n\
     \  --json [FILE]    run the micro-benchmarks and dump per-kernel medians\n\
     \                   as JSON (default FILE: BENCH_solver.json)\n\
     \  --scale-json [FILE]  run only the scale/ group and dump per-size\n\
     \                   percentiles and the serial-vs-parallel solve speedup\n\
     \                   (default FILE: BENCH_scale.json)\n\
     \  --hard-json [FILE]  run only the hard/ group and dump per-size\n\
     \                   percentiles and the enhanced-vs-cdl/portfolio solve\n\
     \                   speedups (default FILE: BENCH_hard.json)\n\
     \  --smoke [FILTER] short benchmark run, no tables (CI); FILTER, if\n\
     \                   given, runs only kernels whose name starts with it\n\
     \                   (e.g. table3/ or scale/)";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | [ _ ] ->
    print_tables ();
    print_benchmark (benchmark ~quota:0.5 ())
  | [ _; "--tables" ] -> print_tables ()
  | _ :: "--json" :: rest ->
    let file =
      match rest with
      | [] -> "BENCH_solver.json"
      | [ f ] -> f
      | _ -> usage ()
    in
    let rows = benchmark ~quota:0.5 () in
    print_benchmark rows;
    write_json file rows
  | _ :: "--scale-json" :: rest ->
    let file =
      match rest with
      | [] -> "BENCH_scale.json"
      | [ f ] -> f
      | _ -> usage ()
    in
    let rows = benchmark ~filter:"scale/" ~quota:0.5 () in
    print_benchmark rows;
    write_scale_json file rows
  | _ :: "--hard-json" :: rest ->
    let file =
      match rest with
      | [] -> "BENCH_hard.json"
      | [ f ] -> f
      | _ -> usage ()
    in
    let rows = benchmark ~filter:"hard/" ~quota:1.0 () in
    print_benchmark rows;
    write_hard_json file rows
  | [ _; "--smoke" ] -> print_benchmark (benchmark ~quota:0.05 ())
  | [ _; "--smoke"; filter ] ->
    print_benchmark (benchmark ~filter ~quota:0.05 ())
  | _ -> usage ()
