(** Dense integer vectors.

    Vectors are immutable by convention: every exported operation returns a
    fresh array and never mutates its arguments.  They are the carrier for
    hyperplane vectors, index vectors, and iteration vectors throughout the
    library. *)

type t = int array

val dim : t -> int
(** [dim v] is the number of components of [v]. *)

val make : int -> int -> t
(** [make n c] is the [n]-dimensional vector whose components are all [c]. *)

val zero : int -> t
(** [zero n] is the [n]-dimensional zero vector. *)

val unit : int -> int -> t
(** [unit n i] is the [i]-th standard basis vector of dimension [n]
    (0-indexed).  Raises [Invalid_argument] if [i] is out of range. *)

val of_list : int list -> t
(** [of_list xs] converts a list to a vector. *)

val to_list : t -> int list
(** [to_list v] converts a vector to a list. *)

val copy : t -> t
(** [copy v] is a fresh vector equal to [v]. *)

val equal : t -> t -> bool
(** Structural equality (same dimension, same components). *)

val compare : t -> t -> int
(** Total order: first by dimension, then lexicographically. *)

val hash : t -> int
(** Hash compatible with {!equal}. *)

val dot : t -> t -> int
(** [dot a b] is the inner product.  Raises [Invalid_argument] on dimension
    mismatch. *)

val add : t -> t -> t
(** Componentwise sum. *)

val sub : t -> t -> t
(** Componentwise difference. *)

val neg : t -> t
(** Componentwise negation. *)

val scale : int -> t -> t
(** [scale k v] multiplies every component by [k]. *)

val is_zero : t -> bool
(** [is_zero v] is true iff every component is 0. *)

val gcd : int -> int -> int
(** Non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val content : t -> int
(** [content v] is the gcd of the absolute values of the components
    (0 for the zero vector). *)

val primitive : t -> t
(** [primitive v] divides [v] by its content, yielding a vector whose
    components have gcd 1.  The zero vector is returned unchanged. *)

val canonical : t -> t
(** [canonical v] is the canonical representative of the hyperplane family
    containing [v]: primitive, with the first nonzero component positive.
    The zero vector is returned unchanged.  Two vectors describe the same
    hyperplane family iff their canonical forms are equal. *)

val first_nonzero : t -> int option
(** Index of the first nonzero component, if any. *)

val infinity_norm : t -> int
(** Maximum absolute component value (0 for the empty vector). *)

val pp : Format.formatter -> t -> unit
(** Prints as ["(a b c)"], matching the paper's notation. *)

val to_string : t -> string
(** [to_string v] is [Format.asprintf "%a" pp v]. *)
