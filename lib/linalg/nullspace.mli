(** Integer nullspace computation.

    The layout-derivation problem of the paper reduces to: given the
    difference vectors between array elements accessed by successive loop
    iterations, find integer hyperplane vectors [y] with [y . d = 0] for
    every difference [d].  This module computes a basis of primitive
    integer vectors for that space. *)

val basis : Intmat.t -> Intvec.t list
(** [basis a] is a list of linearly independent primitive integer vectors
    spanning the rational nullspace [{ x | a x = 0 }] of [a] (with [x] a
    column vector of dimension [cols a]).  The list has length
    [cols a - rank a].  Each vector is in {!Intvec.canonical} form. *)

val left_basis : Intmat.t -> Intvec.t list
(** [left_basis a] is the left nullspace: primitive row vectors [y] of
    dimension [rows a] with [y a = 0], i.e. orthogonal to every {e column}
    of [a].  For hyperplane derivation from difference vectors stored as
    {e rows}, use {!basis} directly. *)

val orthogonal : Intvec.t list -> Intvec.t -> bool
(** [orthogonal ds y] checks [Intvec.dot y d = 0] for every [d] in [ds]. *)

val member : Intmat.t -> Intvec.t -> bool
(** [member a x] is true iff [a x = 0]. *)
