(** Dense integer matrices.

    A matrix is an array of rows; all rows have equal length.  As with
    {!Intvec}, exported operations are non-mutating.  These matrices carry
    array access functions (rows indexed by loop variables) and data
    transforms (rows are hyperplane vectors). *)

type t = int array array

val rows : t -> int
val cols : t -> int
(** [cols m] is the common row length; 0 for a matrix with no rows. *)

val make : int -> int -> int -> t
(** [make r c x] is the [r]x[c] matrix filled with [x].
    Raises [Invalid_argument] on negative dimensions. *)

val identity : int -> t
(** [identity n] is the [n]x[n] identity matrix. *)

val of_rows : Intvec.t list -> t
(** Builds a matrix from row vectors.  Raises [Invalid_argument] if the
    rows have differing lengths. *)

val of_lists : int list list -> t
(** [of_lists rows] is [of_rows (List.map Intvec.of_list rows)]. *)

val row : t -> int -> Intvec.t
(** [row m i] is a copy of row [i]. *)

val col : t -> int -> Intvec.t
(** [col m j] is a copy of column [j]. *)

val to_rows : t -> Intvec.t list
val copy : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val transpose : t -> t

val mul : t -> t -> t
(** Matrix product.  Raises [Invalid_argument] on dimension mismatch. *)

val mul_vec : t -> Intvec.t -> Intvec.t
(** [mul_vec m v] is the matrix-vector product [m * v] ([v] a column). *)

val vec_mul : Intvec.t -> t -> Intvec.t
(** [vec_mul v m] is the vector-matrix product [v * m] ([v] a row). *)

val add : t -> t -> t
val scale : int -> t -> t

val determinant : t -> int
(** Exact determinant by fraction-free (Bareiss) elimination.
    Raises [Invalid_argument] if the matrix is not square. *)

val rank : t -> int
(** Rank over the rationals. *)

val is_square : t -> bool
val is_identity : t -> bool

val is_unimodular : t -> bool
(** True iff the matrix is square with determinant +1 or -1. *)

val is_nonsingular : t -> bool
(** True iff the matrix is square with nonzero determinant. *)

val append_row : t -> Intvec.t -> t
(** [append_row m v] is [m] with [v] appended as the last row. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
