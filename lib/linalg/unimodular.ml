(* Extended gcd: egcd a b = (g, u, v) with u*a + v*b = g = gcd a b, g >= 0. *)
let rec egcd a b =
  if b = 0 then
    if a >= 0 then (a, 1, 0) else (-a, -1, 0)
  else
    let g, u, v = egcd b (a mod b) in
    (g, v, u - (a / b * v))

(* Unimodular completion of a primitive vector, by induction on dimension.

   For y = (a1, a2 .. ak) with g = gcd(a2..ak) and v = (a2..ak)/g primitive:
   recursively complete v to a unimodular V with first row v, and pick u, w
   with u*a1 + w*g = 1.  Then
       [ a1    g*v      ]
       [ -w    u*v      ]
       [ 0     V[1..]   ]
   is unimodular with first row y (checked by cofactor expansion along the
   first column; both minors reduce to det V up to the Bezout identity). *)
let rec complete_primitive y =
  let k = Intvec.dim y in
  if k = 0 then invalid_arg "Unimodular.complete_primitive: empty vector";
  if Intvec.content y <> 1 then
    invalid_arg "Unimodular.complete_primitive: vector not primitive";
  if k = 1 then [| [| y.(0) |] |]
  else begin
    let a1 = y.(0) in
    let rest = Array.sub y 1 (k - 1) in
    if Intvec.is_zero rest then begin
      (* gcd(a1) = 1 so a1 = +-1: diag(a1, 1, .., 1) works. *)
      let m = Intmat.identity k in
      m.(0).(0) <- a1;
      m
    end
    else begin
      let g = Intvec.content rest in
      let v = Array.map (fun x -> x / g) rest in
      let vm = complete_primitive v in
      let _, u, w = egcd a1 g in
      let m = Intmat.make k k 0 in
      m.(0).(0) <- a1;
      for j = 1 to k - 1 do
        m.(0).(j) <- g * v.(j - 1)
      done;
      m.(1).(0) <- -w;
      for j = 1 to k - 1 do
        m.(1).(j) <- u * v.(j - 1)
      done;
      for i = 2 to k - 1 do
        for j = 1 to k - 1 do
          m.(i).(j) <- vm.(i - 1).(j - 1)
        done
      done;
      m
    end
  end

let complete_rows ys =
  match ys with
  | [] -> invalid_arg "Unimodular.complete_rows: no rows"
  | y0 :: _ ->
    let k = Intvec.dim y0 in
    List.iter
      (fun y ->
        if Intvec.dim y <> k then
          invalid_arg "Unimodular.complete_rows: ragged rows")
      ys;
    let given = Intmat.of_rows ys in
    if Intmat.rank given <> List.length ys then
      invalid_arg "Unimodular.complete_rows: rows linearly dependent";
    let rec extend acc r i =
      if r = k then acc
      else if i >= k then
        (* cannot happen: independent rows always extend with basis vectors *)
        invalid_arg "Unimodular.complete_rows: completion failed"
      else begin
        let candidate = Intmat.append_row acc (Intvec.unit k i) in
        if Intmat.rank candidate = r + 1 then extend candidate (r + 1) (i + 1)
        else extend acc r (i + 1)
      end
    in
    extend given (List.length ys) 0

let complete_layout ys =
  match ys with
  | [ y ] when Intvec.content y = 1 -> complete_primitive y
  | _ -> complete_rows ys
