(** Completion of hyperplane rows to invertible data-transform matrices.

    A memory layout given as hyperplane rows [Y1 .. Ym] (m < k) only
    partially determines a data transformation of a k-dimensional array.
    To actually remap indices we complete the rows to a nonsingular (and,
    when a single primitive row is given, unimodular) k x k matrix whose
    leading rows are the given hyperplanes. *)

val complete_primitive : Intvec.t -> Intmat.t
(** [complete_primitive y] is a unimodular matrix (determinant +1 or -1)
    whose first row is [y].  [y] must be primitive (content 1); raises
    [Invalid_argument] otherwise.  Uses the classical extended-gcd
    construction by induction on the dimension. *)

val complete_rows : Intvec.t list -> Intmat.t
(** [complete_rows ys] extends the linearly independent rows [ys] to a
    nonsingular square matrix by greedily appending standard basis vectors
    that increase the rank.  The first [List.length ys] rows of the result
    are exactly [ys].  Raises [Invalid_argument] if [ys] is empty, has
    ragged dimensions, or is linearly dependent. *)

val complete_layout : Intvec.t list -> Intmat.t
(** [complete_layout ys] is the data-transform matrix for a layout given by
    hyperplane rows [ys]: for a single primitive row it returns the
    unimodular completion ({!complete_primitive}); otherwise it falls back
    to {!complete_rows}.  In either case the result [t] is nonsingular and
    [row t i = List.nth ys i] for each given row. *)
