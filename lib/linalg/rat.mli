(** Exact rational arithmetic on machine integers.

    Rationals are kept in canonical form: the denominator is positive and
    the numerator and denominator are coprime.  Used for exact Gaussian
    elimination in {!Nullspace} and {!Intmat}; the matrices arising from
    affine loop nests are tiny, so machine-word numerators are ample. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the canonical rational [num/den].
    Raises [Division_by_zero] if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div a b] raises [Division_by_zero] if [b] is zero. *)

val neg : t -> t
val inv : t -> t
(** [inv a] raises [Division_by_zero] if [a] is zero. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool
val sign : t -> int
val abs : t -> t

val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
