(* Nullspace by rational reduced row echelon form.  For each free column f
   the corresponding basis vector sets x_f = 1 and x_{p_i} = -rref(i, f)
   for pivot columns p_i; denominators are then cleared and the result is
   put in canonical (primitive, sign-fixed) form. *)

let rref a =
  let r = Intmat.rows a and c = Intmat.cols a in
  let m = Array.init r (fun i -> Array.map Rat.of_int a.(i)) in
  let pivots = ref [] in
  let pr = ref 0 in
  for j = 0 to c - 1 do
    if !pr < r then begin
      let rec find i =
        if i >= r then None
        else if not (Rat.is_zero m.(i).(j)) then Some i
        else find (i + 1)
      in
      match find !pr with
      | None -> ()
      | Some i ->
        let tmp = m.(!pr) in
        m.(!pr) <- m.(i);
        m.(i) <- tmp;
        let p = m.(!pr).(j) in
        for j' = 0 to c - 1 do
          m.(!pr).(j') <- Rat.div m.(!pr).(j') p
        done;
        for i' = 0 to r - 1 do
          if i' <> !pr && not (Rat.is_zero m.(i').(j)) then begin
            let f = m.(i').(j) in
            for j' = 0 to c - 1 do
              m.(i').(j') <- Rat.sub m.(i').(j') (Rat.mul f m.(!pr).(j'))
            done
          end
        done;
        pivots := (!pr, j) :: !pivots;
        incr pr
    end
  done;
  (m, List.rev !pivots)

let lcm a b = if a = 0 || b = 0 then abs (a + b) else abs (a / Intvec.gcd a b * b)

let basis a =
  let c = Intmat.cols a in
  if c = 0 then []
  else if Intmat.rows a = 0 then
    List.init c (fun i -> Intvec.unit c i)
  else begin
    let m, pivots = rref a in
    let pivot_cols = List.map snd pivots in
    let is_pivot j = List.mem j pivot_cols in
    let free_cols =
      List.filter (fun j -> not (is_pivot j)) (List.init c Fun.id)
    in
    let vector_for f =
      (* rational solution with x_f = 1 *)
      let x = Array.make c Rat.zero in
      x.(f) <- Rat.one;
      List.iter (fun (i, p) -> x.(p) <- Rat.neg m.(i).(f)) pivots;
      (* clear denominators *)
      let l = Array.fold_left (fun acc r -> lcm acc (Rat.den r)) 1 x in
      let v = Array.map (fun r -> Rat.num r * (l / Rat.den r)) x in
      Intvec.canonical v
    in
    List.map vector_for free_cols
  end

let left_basis a = basis (Intmat.transpose a)

let orthogonal ds y = List.for_all (fun d -> Intvec.dot y d = 0) ds
let member a x = Intvec.is_zero (Intmat.mul_vec a x)
