type t = int array array

let rows = Array.length
let cols m = if rows m = 0 then 0 else Array.length m.(0)

let make r c x =
  if r < 0 || c < 0 then invalid_arg "Intmat.make: negative dimension";
  Array.init r (fun _ -> Array.make c x)

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0))

let of_rows vs =
  match vs with
  | [] -> [||]
  | v0 :: rest ->
    let c = Intvec.dim v0 in
    List.iter
      (fun v ->
        if Intvec.dim v <> c then invalid_arg "Intmat.of_rows: ragged rows")
      rest;
    Array.of_list (List.map Array.copy vs)

let of_lists ls = of_rows (List.map Intvec.of_list ls)
let row m i = Array.copy m.(i)
let col m j = Array.init (rows m) (fun i -> m.(i).(j))
let to_rows m = Array.to_list (Array.map Array.copy m)
let copy m = Array.map Array.copy m

let equal a b =
  rows a = rows b && cols a = cols b
  &&
  let rec go i = i >= rows a || (Intvec.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let c = Int.compare (rows a) (rows b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= rows a then 0
      else
        let c = Intvec.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let transpose m =
  let r = rows m and c = cols m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let mul a b =
  if cols a <> rows b then invalid_arg "Intmat.mul: dimension mismatch";
  let n = cols a in
  Array.init (rows a) (fun i ->
      Array.init (cols b) (fun j ->
          let s = ref 0 in
          for k = 0 to n - 1 do
            s := !s + (a.(i).(k) * b.(k).(j))
          done;
          !s))

let mul_vec m v =
  if cols m <> Intvec.dim v then invalid_arg "Intmat.mul_vec: dimension mismatch";
  Array.init (rows m) (fun i -> Intvec.dot m.(i) v)

let vec_mul v m =
  if Intvec.dim v <> rows m then invalid_arg "Intmat.vec_mul: dimension mismatch";
  Array.init (cols m) (fun j ->
      let s = ref 0 in
      for i = 0 to rows m - 1 do
        s := !s + (v.(i) * m.(i).(j))
      done;
      !s)

let add a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg "Intmat.add: dimension mismatch";
  Array.init (rows a) (fun i -> Intvec.add a.(i) b.(i))

let scale k m = Array.map (Intvec.scale k) m
let is_square m = rows m = cols m

(* Bareiss fraction-free elimination: all intermediate divisions are exact,
   so the computation stays in the integers. *)
let determinant m =
  if not (is_square m) then invalid_arg "Intmat.determinant: not square";
  let n = rows m in
  if n = 0 then 1
  else begin
    let a = copy m in
    let sign = ref 1 in
    let prev = ref 1 in
    let res = ref None in
    (try
       for k = 0 to n - 2 do
         if a.(k).(k) = 0 then begin
           (* find a pivot row below k *)
           let rec find i =
             if i >= n then None else if a.(i).(k) <> 0 then Some i else find (i + 1)
           in
           match find (k + 1) with
           | None ->
             res := Some 0;
             raise Exit
           | Some i ->
             let tmp = a.(k) in
             a.(k) <- a.(i);
             a.(i) <- tmp;
             sign := - !sign
         end;
         for i = k + 1 to n - 1 do
           for j = k + 1 to n - 1 do
             a.(i).(j) <-
               ((a.(i).(j) * a.(k).(k)) - (a.(i).(k) * a.(k).(j))) / !prev
           done;
           a.(i).(k) <- 0
         done;
         prev := a.(k).(k)
       done
     with Exit -> ());
    match !res with Some d -> d | None -> !sign * a.(n - 1).(n - 1)
  end

(* Rank over Q via rational Gaussian elimination. *)
let rank m =
  let r = rows m and c = cols m in
  if r = 0 || c = 0 then 0
  else begin
    let a = Array.map (Array.map Rat.of_int) m in
    let rk = ref 0 in
    let pivot_row = ref 0 in
    for j = 0 to c - 1 do
      if !pivot_row < r then begin
        (* find nonzero entry in column j at or below pivot_row *)
        let rec find i =
          if i >= r then None
          else if not (Rat.is_zero a.(i).(j)) then Some i
          else find (i + 1)
        in
        match find !pivot_row with
        | None -> ()
        | Some i ->
          let tmp = a.(!pivot_row) in
          a.(!pivot_row) <- a.(i);
          a.(i) <- tmp;
          let p = a.(!pivot_row).(j) in
          for i' = !pivot_row + 1 to r - 1 do
            if not (Rat.is_zero a.(i').(j)) then begin
              let f = Rat.div a.(i').(j) p in
              for j' = j to c - 1 do
                a.(i').(j') <- Rat.sub a.(i').(j') (Rat.mul f a.(!pivot_row).(j'))
              done
            end
          done;
          incr pivot_row;
          incr rk
      end
    done;
    !rk
  end

let is_identity m = is_square m && equal m (identity (rows m))
let is_unimodular m = is_square m && abs (determinant m) = 1
let is_nonsingular m = is_square m && determinant m <> 0

let append_row m v =
  if rows m > 0 && Intvec.dim v <> cols m then
    invalid_arg "Intmat.append_row: dimension mismatch";
  Array.append (copy m) [| Array.copy v |]

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i r ->
      if i > 0 then Format.fprintf ppf "@,";
      Intvec.pp ppf r)
    m;
  Format.fprintf ppf "@]"

let to_string m = Format.asprintf "%a" pp m
