type t = int array

let dim = Array.length

let make n c =
  if n < 0 then invalid_arg "Intvec.make: negative dimension";
  Array.make n c

let zero n = make n 0

let unit n i =
  if i < 0 || i >= n then invalid_arg "Intvec.unit: index out of range";
  let v = zero n in
  v.(i) <- 1;
  v

let of_list = Array.of_list
let to_list = Array.to_list
let copy = Array.copy

let equal a b =
  dim a = dim b
  &&
  let rec go i = i >= dim a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let c = Int.compare (dim a) (dim b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= dim a then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash v = Array.fold_left (fun acc x -> (acc * 31) + x + 17) (dim v) v

let check_same_dim name a b =
  if dim a <> dim b then invalid_arg (name ^ ": dimension mismatch")

let dot a b =
  check_same_dim "Intvec.dot" a b;
  let s = ref 0 in
  for i = 0 to dim a - 1 do
    s := !s + (a.(i) * b.(i))
  done;
  !s

let map2 name f a b =
  check_same_dim name a b;
  Array.init (dim a) (fun i -> f a.(i) b.(i))

let add a b = map2 "Intvec.add" ( + ) a b
let sub a b = map2 "Intvec.sub" ( - ) a b
let neg a = Array.map (fun x -> -x) a
let scale k a = Array.map (fun x -> k * x) a
let is_zero v = Array.for_all (fun x -> x = 0) v

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let content v = Array.fold_left (fun g x -> gcd g x) 0 v

let primitive v =
  let g = content v in
  if g = 0 || g = 1 then copy v else Array.map (fun x -> x / g) v

let first_nonzero v =
  let rec go i =
    if i >= dim v then None else if v.(i) <> 0 then Some i else go (i + 1)
  in
  go 0

let canonical v =
  let p = primitive v in
  match first_nonzero p with
  | None -> p
  | Some i -> if p.(i) < 0 then neg p else p

let infinity_norm v = Array.fold_left (fun m x -> max m (abs x)) 0 v

let pp ppf v =
  Format.fprintf ppf "(";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%d" x)
    v;
  Format.fprintf ppf ")"

let to_string v = Format.asprintf "%a" pp v
