(** The previously proposed heuristic the paper compares against
    (Section 5, after Leung and Zahorjan).

    The loop nests are ordered by an importance criterion (estimated
    time, here {!Mlo_ir.Cost.nest_cost}).  Nests are processed most
    important first: for each nest the heuristic picks a good combination
    of loop restructuring and memory layouts for the arrays it accesses,
    but only arrays whose layout is still undetermined may be assigned —
    layouts fixed by more important nests are propagated in unchanged.
    Arrays left unconstrained at the end default to row-major. *)

type result = {
  layouts : (string * Mlo_layout.Layout.t) list;
      (** one layout per declared array, declaration order *)
  nest_order : int list;
      (** nest indices in the importance order processed *)
  evaluations : int;
      (** (restructuring x layout) combinations scored — the work metric
          reported alongside solver consistency checks *)
  elapsed_s : float;
}

val optimize : Mlo_ir.Program.t -> result

val lookup : result -> string -> Mlo_layout.Layout.t option
(** Layout assigned to an array, if declared. *)
