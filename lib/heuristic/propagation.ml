module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Loop_nest = Mlo_ir.Loop_nest
module Cost = Mlo_ir.Cost
module Layout = Mlo_layout.Layout
module Locality = Mlo_layout.Locality
module Variants = Mlo_netgen.Variants

type result = {
  layouts : (string * Layout.t) list;
  nest_order : int list;
  evaluations : int;
  elapsed_s : float;
}

let default_layout info =
  let rank = Array_info.rank info in
  if rank = 1 then Layout.trivial else Layout.row_major rank

(* Score a variant given fixed layouts; arrays not yet fixed are scored
   with the layout the variant itself demands for them (the combination
   being evaluated), and arrays the variant leaves free with their
   eventual default — a free array's references are temporal, so any
   stand-in layout scores them exactly. *)
let variant_score prog fixed demanded nest =
  let lookup name =
    match Hashtbl.find_opt fixed name with
    | Some l -> Some l
    | None -> (
      match List.assoc_opt name demanded with
      | Some l -> Some l
      | None -> (
        match Program.find_array prog name with
        | info -> Some (default_layout info)
        | exception Not_found -> None))
  in
  Locality.nest_score lookup nest

let optimize prog =
  let t0 = Mlo_csp.Clock.wall_s () in
  let fixed : (string, Layout.t) Hashtbl.t = Hashtbl.create 16 in
  let evaluations = ref 0 in
  let ranked = Cost.ranked_nests prog in
  List.iter
    (fun (_idx, nest) ->
      let variants = Variants.of_nest nest in
      let scored =
        List.map
          (fun v ->
            let demanded = Variants.layouts_for v in
            incr evaluations;
            (v, demanded, variant_score prog fixed demanded v.Variants.nest))
          variants
      in
      let best =
        match scored with
        | [] -> None
        | first :: rest ->
          Some
            (List.fold_left
               (fun ((_, _, bs) as b) ((_, _, s) as c) ->
                 if s > bs then c else b)
               first rest)
      in
      match best with
      | None -> ()
      | Some (_v, demanded, _score) ->
        (* propagate: fix layouts only for arrays not yet determined *)
        List.iter
          (fun (name, layout) ->
            if not (Hashtbl.mem fixed name) then Hashtbl.replace fixed name layout)
          demanded)
    ranked;
  let layouts =
    Array.to_list (Program.arrays prog)
    |> List.map (fun info ->
           let name = Array_info.name info in
           match Hashtbl.find_opt fixed name with
           | Some l -> (name, l)
           | None -> (name, default_layout info))
  in
  {
    layouts;
    nest_order = List.map fst ranked;
    evaluations = !evaluations;
    elapsed_s = Mlo_csp.Clock.wall_s () -. t0;
  }

let lookup r name = List.assoc_opt name r.layouts
