(** Shared Domain worker pool.

    One atomic work index, [domains - 1] spawned domains plus the
    caller: the cheapest complete pool for embarrassingly parallel
    index-addressed work.  Both the trace-simulation sweep
    ({!Mlo_cachesim.Simulate.run_many}) and the component-wise solver
    ({!Mlo_csp.Solver.solve_components}) drive their fan-out through
    this module, so the spawn/join discipline lives in exactly one
    place. *)

val parallel_iter : domains:int -> int -> (int -> unit) -> unit
(** [parallel_iter ~domains n f] runs [f 0 .. f (n-1)], each exactly
    once, distributing indices over [min domains n] domains (the caller
    counts as one).  [domains <= 1] degenerates to a plain serial loop —
    no domain is spawned.  [f] must only touch index-private or
    atomically-shared state; exceptions escaping [f] on a spawned domain
    are re-raised at the join. *)

val default_domains : unit -> int
(** [min 8 (Domain.recommended_domain_count ())]: enough to win on
    desktop core counts without oversubscribing CI runners. *)
