(* Work-stealing-free parallel for: one atomic index, [domains - 1]
   spawned domains plus the caller.  [f] must only touch index-private
   (or atomically-shared) state. *)
let parallel_iter ~domains n f =
  let domains = max 1 (min domains n) in
  if domains = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          f i;
          go ()
        end
      in
      go ()
    in
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned
  end

let default_domains () = min 8 (Domain.recommended_domain_count ())
