type t = {
  name : string;
  arrays : Array_info.t array;
  nests : Loop_nest.t array;
}

let make ~name arrays nests =
  if nests = [] then invalid_arg "Program.make: no loop nests";
  let names = List.map Array_info.name arrays in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Program.make: duplicate array names";
  let table = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace table (Array_info.name a) a) arrays;
  List.iter
    (fun nest ->
      Array.iter
        (fun acc ->
          match Hashtbl.find_opt table (Access.array_name acc) with
          | None ->
            invalid_arg
              (Printf.sprintf "Program.make: nest %s references undeclared array %s"
                 (Loop_nest.name nest) (Access.array_name acc))
          | Some info ->
            if Access.rank acc <> Array_info.rank info then
              invalid_arg
                (Printf.sprintf
                   "Program.make: access to %s has rank %d, array has rank %d"
                   (Access.array_name acc) (Access.rank acc)
                   (Array_info.rank info)))
        (Loop_nest.accesses nest))
    nests;
  { name; arrays = Array.of_list arrays; nests = Array.of_list nests }

let name t = t.name
let arrays t = Array.copy t.arrays
let nests t = Array.copy t.nests

let find_array t n =
  match Array.find_opt (fun a -> String.equal (Array_info.name a) n) t.arrays with
  | Some a -> a
  | None -> raise Not_found

let array_names t = Array.to_list (Array.map Array_info.name t.arrays)

let array_index t n =
  let rec go i =
    if i >= Array.length t.arrays then raise Not_found
    else if String.equal (Array_info.name t.arrays.(i)) n then i
    else go (i + 1)
  in
  go 0

let nests_touching t n =
  Array.to_list t.nests
  |> List.filter (fun nest -> List.mem n (Loop_nest.arrays_touched nest))

let data_size_bytes t =
  Array.fold_left (fun acc a -> acc + Array_info.size_bytes a) 0 t.arrays

let total_trip_count t =
  Array.fold_left (fun acc nest -> acc + Loop_nest.trip_count nest) 0 t.nests

let pp ppf t =
  Format.fprintf ppf "@[<v>program %s@,@," t.name;
  Array.iter (fun a -> Format.fprintf ppf "%a@," Array_info.pp a) t.arrays;
  Array.iteri
    (fun i nest ->
      Format.fprintf ppf "@,// nest %d: %s@,%a" i (Loop_nest.name nest)
        Loop_nest.pp nest)
    t.nests;
  Format.fprintf ppf "@]"
