type t = { name : string; extents : int array; elem_size : int }

let make ?(elem_size = 4) name extents =
  if extents = [] then invalid_arg "Array_info.make: no dimensions";
  if List.exists (fun e -> e <= 0) extents then
    invalid_arg "Array_info.make: non-positive extent";
  if elem_size <= 0 then invalid_arg "Array_info.make: non-positive elem_size";
  { name; extents = Array.of_list extents; elem_size }

let name a = a.name
let rank a = Array.length a.extents
let extents a = Array.copy a.extents
let extent a i = a.extents.(i)
let elem_size a = a.elem_size
let cells a = Array.fold_left ( * ) 1 a.extents
let size_bytes a = cells a * a.elem_size

let equal a b =
  String.equal a.name b.name
  && a.extents = b.extents
  && a.elem_size = b.elem_size

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.extents b.extents in
    if c <> 0 then c else Int.compare a.elem_size b.elem_size

let pp ppf a =
  Format.fprintf ppf "%s[" a.name;
  Array.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf "][";
      Format.fprintf ppf "%d" e)
    a.extents;
  Format.fprintf ppf "] (%dB elems)" a.elem_size
