(** A whole application: array declarations plus a sequence of loop nests.

    This is the unit the constraint network is extracted from: the same
    array may appear in many nests with conflicting layout preferences,
    which is exactly the program-wide selection problem the paper solves. *)

type t = private {
  name : string;
  arrays : Array_info.t array;
  nests : Loop_nest.t array;
}

val make : name:string -> Array_info.t list -> Loop_nest.t list -> t
(** Builds a program.  Raises [Invalid_argument] if array names collide,
    a nest references an undeclared array, an access's rank differs from
    the declared array rank, or there are no nests. *)

val name : t -> string
val arrays : t -> Array_info.t array
val nests : t -> Loop_nest.t array

val find_array : t -> string -> Array_info.t
(** Raises [Not_found] if no array has the given name. *)

val array_names : t -> string list
(** Declaration order. *)

val array_index : t -> string -> int
(** Position of the named array in declaration order; raises [Not_found]. *)

val nests_touching : t -> string -> Loop_nest.t list
(** Nests that reference the named array, in program order. *)

val data_size_bytes : t -> int
(** Total bytes across all declared arrays (the paper's Table 1 "Data
    Size" column). *)

val total_trip_count : t -> int
(** Sum of nest trip counts; used as the denominator for nest weights. *)

val pp : Format.formatter -> t -> unit
