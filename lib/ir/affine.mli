(** Affine index expressions over the loop variables of a nest.

    An expression [c0 + c1*i1 + ... + cd*id] is stored as a coefficient
    vector indexed by loop depth (outermost loop first) plus a constant.
    The dimension of the coefficient vector must equal the depth of the
    enclosing loop nest. *)

type t = { coeffs : Mlo_linalg.Intvec.t; const : int }

val make : int list -> int -> t
(** [make coeffs const] builds an expression from its coefficient list
    (outermost loop first) and constant term. *)

val const : int -> int -> t
(** [const depth c] is the constant expression [c] in a nest of depth
    [depth]. *)

val var : int -> int -> t
(** [var depth j] is the loop variable at depth [j] (0-indexed, outermost
    first) in a nest of depth [depth]. *)

val depth : t -> int
(** Number of loop variables the expression ranges over. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val neg : t -> t

val eval : t -> Mlo_linalg.Intvec.t -> int
(** [eval e iter] evaluates [e] at the iteration vector [iter].
    Raises [Invalid_argument] on depth mismatch. *)

val coeff : t -> int -> int
(** [coeff e j] is the coefficient of the depth-[j] loop variable. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val permute : int array -> t -> t
(** [permute perm e] rewrites [e] for a permuted loop nest: [perm.(p) = q]
    means the loop at old depth [q] moves to new depth [p].  The resulting
    expression's coefficient at new depth [p] is [coeff e perm.(p)]. *)

val is_constant : t -> bool

val pp : string array -> Format.formatter -> t -> unit
(** [pp names ppf e] prints [e] using [names.(j)] for the depth-[j] loop
    variable, e.g. ["i1+i2+3"]. *)

val to_string : string array -> t -> string
