type ctx = string array

let ctx names =
  if names = [] then invalid_arg "Builder.ctx: no variables";
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Builder.ctx: duplicate variables";
  Array.of_list names

let vars x = Array.to_list x

let var x name =
  let rec go j =
    if j >= Array.length x then
      invalid_arg (Printf.sprintf "Builder.var: unknown variable %s" name)
    else if String.equal x.(j) name then Affine.var (Array.length x) j
    else go (j + 1)
  in
  go 0

let const x c = Affine.const (Array.length x) c
let ( +: ) = Affine.add
let ( -: ) = Affine.sub
let ( *: ) = Affine.scale
let read = Access.read
let write = Access.write
let loop ?(lo = 0) v hi = { Loop_nest.var = v; lo; hi }

let nest name x his accesses =
  if List.length his <> Array.length x then
    invalid_arg "Builder.nest: bound count differs from context size";
  let loops = List.map2 (fun v hi -> loop v hi) (vars x) his in
  Loop_nest.make ~name loops accesses
