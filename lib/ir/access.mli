(** Array references inside a loop nest.

    A reference [Q[f1(I)]..[fk(I)]] is an array name, a read/write kind,
    and one affine index expression per array dimension.  The linear parts
    of the index expressions form the {e access matrix} [F] (k rows, one
    per array dimension; d columns, one per loop), so the element touched
    at iteration [I] is [F I + o] with [o] the offset vector. *)

type kind = Read | Write

type t = { array_name : string; kind : kind; indices : Affine.t array }

val make : kind -> string -> Affine.t list -> t
(** [make kind name indices] builds a reference.  Raises [Invalid_argument]
    if [indices] is empty or the expressions have differing depths. *)

val read : string -> Affine.t list -> t
val write : string -> Affine.t list -> t

val array_name : t -> string
val kind : t -> kind
val is_write : t -> bool
val rank : t -> int
(** Number of array dimensions indexed. *)

val depth : t -> int
(** Depth of the enclosing loop nest the indices range over. *)

val matrix : t -> Mlo_linalg.Intmat.t
(** The access matrix [F]: row [r] holds the loop-variable coefficients of
    the [r]-th index expression. *)

val offset : t -> Mlo_linalg.Intvec.t
(** The constant offset vector [o]. *)

val element_at : t -> Mlo_linalg.Intvec.t -> Mlo_linalg.Intvec.t
(** [element_at a iter] is the index vector of the array element touched at
    iteration [iter] (i.e. [F iter + o]). *)

val permute : int array -> t -> t
(** Rewrite the reference for a permuted loop nest (see {!Affine.permute}). *)

val equal : t -> t -> bool
val pp : string array -> Format.formatter -> t -> unit
(** [pp names ppf a] prints e.g. ["Q1[i1+i2][i2]"]. *)
