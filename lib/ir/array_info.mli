(** Array declarations: name, per-dimension extents, element size.

    Extents are constant (the benchmarks are embedded kernels with known
    sizes); element size is in bytes and feeds the data-size accounting of
    Table 1 and the address generation of the cache simulator. *)

type t = private { name : string; extents : int array; elem_size : int }

val make : ?elem_size:int -> string -> int list -> t
(** [make name extents] declares array [name] with the given per-dimension
    extents.  [elem_size] defaults to 4 bytes (32-bit words, matching the
    embedded benchmarks).  Raises [Invalid_argument] if [extents] is empty,
    any extent is [<= 0], or [elem_size <= 0]. *)

val name : t -> string
val rank : t -> int
(** Number of dimensions. *)

val extents : t -> int array
val extent : t -> int -> int
val elem_size : t -> int

val cells : t -> int
(** Total number of elements (product of extents). *)

val size_bytes : t -> int
(** [cells t * elem_size t]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
