(* Omega-test integer linear feasibility.  See the .mli for the
   algorithm outline; this file keeps the classic structure: normalize,
   eliminate equalities, then Fourier-Motzkin with dark-shadow
   tightening and splintering as the integer-exactness fallback. *)

type op = Geq | Eq

type cstr = { op : op; coeffs : int array; const : int }

type system = { nvars : int; cstrs : cstr list }

let geq coeffs const = { op = Geq; coeffs = Array.copy coeffs; const }

let leq coeffs const =
  { op = Geq; coeffs = Array.map (fun c -> -c) coeffs; const = -const }

let eq coeffs const = { op = Eq; coeffs = Array.copy coeffs; const }

let unit_coeffs nvars i v =
  let c = Array.make nvars 0 in
  c.(i) <- v;
  c

let between ~nvars i ~lo ~hi =
  [ { op = Geq; coeffs = unit_coeffs nvars i 1; const = -lo };
    { op = Geq; coeffs = unit_coeffs nvars i (-1); const = hi } ]

let check_width nvars c =
  if Array.length c.coeffs <> nvars then
    invalid_arg "Presburger: constraint width does not match nvars"

let make ~nvars cstrs =
  List.iter (check_width nvars) cstrs;
  { nvars; cstrs }

let add sys cstrs =
  List.iter (check_width sys.nvars) cstrs;
  { sys with cstrs = cstrs @ sys.cstrs }

(* ------------------------------------------------------------------ *)
(* Stats *)

let checks_c = Atomic.make 0
let elims_c = Atomic.make 0
let splits_c = Atomic.make 0
let depth_c = Atomic.make 0

type stats = {
  checks : int;
  eliminations : int;
  splits : int;
  max_split_depth : int;
}

let stats () =
  {
    checks = Atomic.get checks_c;
    eliminations = Atomic.get elims_c;
    splits = Atomic.get splits_c;
    max_split_depth = Atomic.get depth_c;
  }

let reset_stats () =
  Atomic.set checks_c 0;
  Atomic.set elims_c 0;
  Atomic.set splits_c 0;
  Atomic.set depth_c 0

let note_depth d =
  let rec go () =
    let cur = Atomic.get depth_c in
    if d > cur && not (Atomic.compare_and_set depth_c cur d) then go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Arithmetic helpers *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Floor division/modulo (OCaml's (/) truncates toward zero). *)
let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let coeffs_gcd c = Array.fold_left (fun g a -> gcd g a) 0 c

let all_zero c = Array.for_all (fun a -> a = 0) c

(* Symmetric residue of [b] modulo [m]: congruent to [b], magnitude at
   most [m/2].  For [|a| = m-1] this is [-sign a], which is what makes
   the mod-elimination substitution produce a unit coefficient. *)
let mhat b m =
  let r = ((b mod m) + m) mod m in
  if 2 * r >= m then r - m else r

exception Infeasible

(* ------------------------------------------------------------------ *)
(* Normalization.

   Equalities: divide by the coefficient gcd; a constant the gcd does
   not divide refutes the system.  Inequalities: divide and floor the
   constant (integer tightening).  Trivial constraints are dropped or
   refute.  Raises [Infeasible]. *)

let norm_eq c =
  if all_zero c.coeffs then if c.const = 0 then None else raise Infeasible
  else
    let g = coeffs_gcd c.coeffs in
    if g = 1 then Some c
    else if c.const mod g <> 0 then raise Infeasible
    else
      Some
        {
          c with
          coeffs = Array.map (fun a -> a / g) c.coeffs;
          const = c.const / g;
        }

let norm_geq c =
  if all_zero c.coeffs then if c.const >= 0 then None else raise Infeasible
  else
    let g = coeffs_gcd c.coeffs in
    if g = 1 then Some c
    else
      Some
        {
          c with
          coeffs = Array.map (fun a -> a / g) c.coeffs;
          const = fdiv c.const g;
        }

(* Dedup inequalities with identical coefficient vectors: the smallest
   constant is the strongest ([c.x >= -k], larger [k] is weaker). *)
let dedup_geqs geqs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let key = Array.to_list c.coeffs in
      match Hashtbl.find_opt tbl key with
      | Some prev when prev.const <= c.const -> ()
      | _ -> Hashtbl.replace tbl key c)
    geqs;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []

(* ------------------------------------------------------------------ *)
(* Core recursion. *)

let substitute ~k ~sign ~coeffs ~const d =
  (* [sign * x_k + coeffs.x + const = 0] with [coeffs.(k) = 0] defines
     [x_k = -sign * (coeffs.x + const)]; eliminate [x_k] from [d]. *)
  let dk = d.coeffs.(k) in
  if dk = 0 then d
  else
    let f = -sign * dk in
    let cs =
      Array.mapi
        (fun i a -> if i = k then 0 else a + (f * coeffs.(i)))
        d.coeffs
    in
    { d with coeffs = cs; const = d.const + (f * const) }

let append_var c = { c with coeffs = Array.append c.coeffs [| 0 |] }

let rec solve depth nvars eqs geqs =
  match
    let eqs = List.filter_map norm_eq eqs in
    (eqs, geqs)
  with
  | exception Infeasible -> false
  | [], geqs -> solve_geqs depth nvars geqs
  | eqs, geqs -> solve_eq depth nvars eqs geqs

(* Eliminate one equality, preferring a variable with a unit
   coefficient; otherwise shrink coefficients via the symmetric-mod
   substitution until a unit appears. *)
and solve_eq depth nvars eqs geqs =
  (* Pick the equality/variable with the smallest nonzero |coeff|. *)
  let best = ref None in
  List.iter
    (fun e ->
      Array.iteri
        (fun i a ->
          if a <> 0 then
            match !best with
            | Some (_, _, m) when m <= abs a -> ()
            | _ -> best := Some (e, i, abs a))
        e.coeffs)
    eqs;
  match !best with
  | None -> assert false (* norm_eq drops all-zero equalities *)
  | Some (e, k, m) when m = 1 ->
      Atomic.incr elims_c;
      let sign = e.coeffs.(k) in
      let coeffs = Array.mapi (fun i a -> if i = k then 0 else a) e.coeffs in
      let sub = substitute ~k ~sign ~coeffs ~const:e.const in
      let removed = ref false in
      let eqs =
        List.filter_map
          (fun d ->
            if (not !removed) && d == e then begin
              removed := true;
              None
            end
            else Some (sub d))
          eqs
      in
      solve depth nvars eqs (List.map sub geqs)
  | Some (e, k, m) ->
      (* x_k's coefficient has magnitude m >= 2 everywhere: introduce a
         fresh variable s and the derived equality
           sum_i mhat(a_i) x_i - (m+1) s + mhat(c) = 0
         whose x_k coefficient is -sign(a_k) (a unit), because
         |a_k| = (m+1) - 1.  Every integer solution extends with the
         unique integer s, so feasibility is preserved. *)
      ignore k;
      let md = m + 1 in
      let derived =
        let cs = Array.make (nvars + 1) 0 in
        Array.iteri (fun i a -> cs.(i) <- mhat a md) e.coeffs;
        cs.(nvars) <- -md;
        { op = Eq; coeffs = cs; const = mhat e.const md }
      in
      let eqs = List.map append_var eqs in
      let geqs = List.map append_var geqs in
      solve depth (nvars + 1) (derived :: eqs) geqs

(* Fourier-Motzkin over the remaining inequalities. *)
and solve_geqs depth nvars geqs =
  match List.filter_map norm_geq geqs with
  | exception Infeasible -> false
  | [] -> true
  | geqs -> (
      let geqs = dedup_geqs geqs in
      (* Occurrence counts per variable. *)
      let lower = Array.make nvars 0 and upper = Array.make nvars 0 in
      List.iter
        (fun c ->
          Array.iteri
            (fun i a ->
              if a > 0 then lower.(i) <- lower.(i) + 1
              else if a < 0 then upper.(i) <- upper.(i) + 1)
            c.coeffs)
        geqs;
      (* A variable bounded on one side only projects out exactly by
         dropping its constraints. *)
      let one_sided = ref (-1) in
      for i = nvars - 1 downto 0 do
        if lower.(i) + upper.(i) > 0 && (lower.(i) = 0 || upper.(i) = 0) then
          one_sided := i
      done;
      if !one_sided >= 0 then (
        Atomic.incr elims_c;
        let k = !one_sided in
        solve_geqs depth nvars
          (List.filter (fun c -> c.coeffs.(k) = 0) geqs))
      else
        (* Choose the cheapest two-sided variable, preferring ones
           whose elimination is exact (all lower or all upper
           coefficients are units). *)
        let best = ref None in
        for i = 0 to nvars - 1 do
          if lower.(i) > 0 then begin
            let max_l = ref 0 and max_u = ref 0 in
            List.iter
              (fun c ->
                let a = c.coeffs.(i) in
                if a > 0 then max_l := max !max_l a
                else if a < 0 then max_u := max !max_u (-a))
              geqs;
            let exact = !max_l = 1 || !max_u = 1 in
            let cost = lower.(i) * upper.(i) in
            match !best with
            | Some (_, e, c, _) when (e && not exact) || (e = exact && c <= cost)
              ->
                ()
            | _ -> best := Some (i, exact, cost, !max_u)
          end
        done;
        match !best with
        | None -> true (* no variable occurs: constants already checked *)
        | Some (k, exact, _, max_u) ->
            Atomic.incr elims_c;
            let rest = List.filter (fun c -> c.coeffs.(k) = 0) geqs in
            let lowers = List.filter (fun c -> c.coeffs.(k) > 0) geqs in
            let uppers = List.filter (fun c -> c.coeffs.(k) < 0) geqs in
            let combine ~dark l u =
              let a = l.coeffs.(k) and b = -u.coeffs.(k) in
              let cs =
                Array.mapi
                  (fun i al -> (b * al) + (a * u.coeffs.(i)))
                  l.coeffs
              in
              let tight = if dark then (a - 1) * (b - 1) else 0 in
              { op = Geq; coeffs = cs; const = (b * l.const) + (a * u.const) - tight }
            in
            let combos ~dark =
              List.concat_map
                (fun l -> List.map (fun u -> combine ~dark l u) uppers)
                lowers
            in
            if exact then solve_geqs depth nvars (combos ~dark:false @ rest)
            else if solve_geqs depth nvars (combos ~dark:true @ rest) then true
            else if not (solve_geqs depth nvars (combos ~dark:false @ rest))
            then false
            else splinter depth nvars geqs k lowers max_u)

(* Dark shadow infeasible, real shadow feasible: any integer solution
   must sit within Pugh's gap above some lower bound on x_k.  Case
   split on a.x_k = -(R + c) + j for each lower bound and each j in
   the finite window, re-solving the full system with that equality. *)
and splinter depth nvars geqs k lowers max_u =
  note_depth (depth + 1);
  List.exists
    (fun l ->
      let a = l.coeffs.(k) in
      let jmax = ((a * max_u) - a - max_u) / max_u in
      let rec try_j j =
        if j > jmax then false
        else begin
          Atomic.incr splits_c;
          let eq = { op = Eq; coeffs = l.coeffs; const = l.const - j } in
          if solve (depth + 1) nvars [ eq ] geqs then true else try_j (j + 1)
        end
      in
      try_j 0)
    lowers

(* ------------------------------------------------------------------ *)

let feasible sys =
  Atomic.incr checks_c;
  let eqs, geqs = List.partition (fun c -> c.op = Eq) sys.cstrs in
  solve 0 sys.nvars eqs geqs

let range sys ~coeffs ~lo ~hi =
  if Array.length coeffs <> sys.nvars then
    invalid_arg "Presburger.range: coefficient width does not match nvars";
  if not (feasible sys) then None
  else begin
    (* Smallest v in [lo, hi] with feasible(form <= v). *)
    let rec bs_min l h =
      if l >= h then l
      else
        let mid = l + ((h - l) / 2) in
        if feasible (add sys [ leq coeffs (-mid) ]) then bs_min l mid
        else bs_min (mid + 1) h
    in
    (* Largest v in [lo, hi] with feasible(form >= v). *)
    let rec bs_max l h =
      if l >= h then l
      else
        let mid = l + ((h - l + 1) / 2) in
        if feasible (add sys [ geq coeffs (-mid) ]) then bs_max mid h
        else bs_max l (mid - 1)
    in
    Some (bs_min lo hi, bs_max lo hi)
  end
