(** Data-dependence analysis for loop-permutation legality.

    Data transformations need no legality check (the paper's motivation),
    but the network generator also enumerates {e loop restructurings} of
    each nest, and those must preserve dependences.  A loop permutation is
    legal iff every dependence distance vector stays lexicographically
    non-negative after its components are permuted.

    The analysis is exact for uniformly generated references (equal access
    matrices): distances solve [F d = o2 - o1].  Non-uniform pairs are
    first subjected to a per-dimension GCD independence test; if that
    cannot rule the dependence out, the pair is treated conservatively as
    a dependence of unknown direction, which pins the nest to its original
    loop order. *)

type distance =
  | Exact of Mlo_linalg.Intvec.t
      (** A concrete distance vector (lexicographically non-negative). *)
  | Unknown
      (** Conservative: direction unknown, only the identity order is
          safe. *)

val pair_distances : Loop_nest.t -> (int * int * distance list) list
(** Dependence distances attributed to the reference pair that produced
    them: [(i, j, ds)] relates the nest's [i]-th and [j]-th accesses
    (body order, [i <= j]) to the distances between them ([[]] when the
    pair is proved independent).  Only pairs to the same array with at
    least one write appear.  The analyzer uses this to name the exact
    pair whose [Unknown] distance pins a nest to its source loop
    order. *)

val distances : Loop_nest.t -> distance list
(** Dependence distances between every ordered pair of references to the
    same array in which at least one reference writes.  Loop-independent
    dependences (zero distance) are omitted: they are preserved by any
    permutation of a single statement body. *)

val legal_permutation : Loop_nest.t -> int array -> bool
(** [legal_permutation nest perm] is true iff applying [perm] (new depth
    [p] takes old loop [perm.(p)]) preserves every dependence of [nest].
    The identity permutation is always legal. *)

val legal_permutations : Loop_nest.t -> (int array * Loop_nest.t) list
(** The subset of {!Loop_nest.permutations} that is dependence-legal
    (always includes the identity, listed first). *)
