(** Exact data-dependence analysis for loop-permutation legality.

    Data transformations need no legality check (the paper's motivation),
    but the network generator also enumerates {e loop restructurings} of
    each nest, and those must preserve dependences.  A loop permutation
    is legal iff every dependence stays lexicographically forward after
    its components are permuted.

    Each conflicting reference pair (same array, at least one write) is
    decided {e exactly} on the bounded iteration space with the
    {!Presburger} engine: the system [{F1.I + o1 = F2.I' + o2,
    bounds(I), bounds(I')}] either has no integer solution (proven
    independence — in particular, distances that exceed trip counts no
    longer count as dependences), or its solutions are summarized by
    enumerating the Banerjee direction-vector hierarchy — each level's
    [*] is refined into [<]/[=]/[>] with infeasible subtrees pruned.  A
    leaf whose per-level distance is unique collapses to an exact
    {!Distance}; otherwise it is reported as a {!Direction} vector.
    There is no [Unknown]: every verdict is a proof. *)

type direction =
  | Lt  (** source iteration earlier on this level ([delta >= 1]) *)
  | Eq  (** same iteration on this level ([delta = 0]) *)
  | Gt  (** source iteration later on this level ([delta <= -1]) *)

type dep =
  | Distance of Mlo_linalg.Intvec.t
      (** The unique realized distance vector (lexicographically
          positive). *)
  | Direction of direction array
      (** A feasible direction vector whose first non-[Eq] component is
          [Lt] (after normalization), with at least one non-unique
          distance component. *)

val pair_deps : Loop_nest.t -> (int * int * dep list) list
(** Dependences attributed to the reference pair that produced them:
    [(i, j, ds)] relates the nest's [i]-th and [j]-th accesses (body
    order, [i <= j]) to their dependences ([[]] when the pair is proved
    independent).  Only pairs to the same array with at least one write
    appear, in ascending body order.  Loop-independent dependences
    (all-[Eq], zero distance) are omitted: they are preserved by any
    permutation of a single statement body. *)

val deps : Loop_nest.t -> (int * int * dep) list
(** Every dependence of the nest, flattened but still attributed to its
    [(i, j)] access pair so diagnostics can name the responsible
    references. *)

val dep_legal : int array -> dep -> bool
(** [dep_legal perm dep] is true iff the single dependence [dep] stays
    lexicographically forward under [perm].  Diagnostics use it to name
    the dependence blocking a rejected loop order. *)

val legal_permutation : Loop_nest.t -> int array -> bool
(** [legal_permutation nest perm] is true iff applying [perm] (new depth
    [p] takes old loop [perm.(p)]) preserves every dependence of [nest]:
    each permuted distance stays lexicographically non-negative and each
    permuted direction vector's first non-[Eq] component is [Lt].  The
    identity permutation is always legal. *)

val legal_permutations : Loop_nest.t -> (int array * Loop_nest.t) list
(** The subset of {!Loop_nest.permutations} that is dependence-legal
    (always includes the identity, listed first).  The dependence set is
    computed once and reused across candidate orders. *)

val direction_char : direction -> char
(** ['<'], ['='] or ['>'] — for diagnostics and reports. *)

val pp_dep : Format.formatter -> dep -> unit
(** [(1, 0)] for distances, [(<, >)] for direction vectors. *)
