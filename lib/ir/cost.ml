let nest_cost nest =
  Loop_nest.trip_count nest * Array.length (Loop_nest.accesses nest)

let nest_weights prog =
  let nests = Program.nests prog in
  let costs = Array.map (fun n -> float_of_int (nest_cost n)) nests in
  let total = Array.fold_left ( +. ) 0. costs in
  if total = 0. then Array.map (fun _ -> 0.) costs
  else Array.map (fun c -> c /. total) costs

let ranked_nests prog =
  let nests = Program.nests prog in
  let indexed = Array.to_list (Array.mapi (fun i n -> (i, n)) nests) in
  List.stable_sort
    (fun (i1, n1) (i2, n2) ->
      let c = Int.compare (nest_cost n2) (nest_cost n1) in
      if c <> 0 then c else Int.compare i1 i2)
    indexed
