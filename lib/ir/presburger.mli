(** Exact integer linear feasibility over bounded systems (Omega test).

    The dependence analyzer needs a {e decision procedure} for systems
    of linear equalities and inequalities over the integers: "do
    iterations [I], [I'] within their loop bounds touch the same array
    element with [I' - I] in a given direction cone?".  A GCD test or a
    rational relaxation can only answer "maybe"; this module answers
    yes or no, exactly.

    The algorithm is the Omega test (Pugh 1991) specialized to the tiny
    systems loop nests produce:

    - {b normalization} — every constraint is divided by the gcd of its
      variable coefficients; for inequalities the constant is floored
      ({e integer tightening}), for equalities a non-dividing constant
      refutes the system outright.
    - {b equality elimination} — a variable with a unit coefficient is
      substituted away; when no unit coefficient exists, Pugh's
      symmetric-modulo substitution introduces a fresh variable whose
      coefficients are strictly smaller, until a unit appears.
    - {b Fourier–Motzkin with shadows} — variables bounded on one side
      only are projected out by dropping their constraints (an exact
      projection).  Otherwise each lower/upper pair [(a·x >= α,
      b·x <= β)] combines into the {e real shadow} [a·β >= b·α] and the
      {e dark shadow} [a·β - b·α >= (a-1)(b-1)].  When every pair has
      [a = 1] or [b = 1] the two coincide and the elimination is exact;
      the variable-order heuristic prefers such variables, so the box
      bounds contributed by loop ranges (always unit-coefficient) keep
      eliminations exact in the common case.
    - {b splintering} — when the dark shadow is infeasible but the real
      shadow is not, the system is feasible iff an integer point lies
      close above some lower bound: the engine case-splits on
      [a·x = α + j] for the finitely many [j] Pugh's bound allows and
      recurses.

    All arithmetic is machine-integer; the systems arising from
    constant-bounded loop nests keep every intermediate coefficient
    tiny. *)

type cstr
(** One linear constraint over variables [x_0 .. x_{n-1}]. *)

val geq : int array -> int -> cstr
(** [geq coeffs c] is the constraint [coeffs . x + c >= 0]. *)

val leq : int array -> int -> cstr
(** [leq coeffs c] is the constraint [coeffs . x + c <= 0]. *)

val eq : int array -> int -> cstr
(** [eq coeffs c] is the constraint [coeffs . x + c = 0]. *)

val between : nvars:int -> int -> lo:int -> hi:int -> cstr list
(** [between ~nvars i ~lo ~hi] bounds variable [i] into the inclusive
    interval [[lo, hi]] (two unit-coefficient constraints). *)

type system
(** An immutable conjunction of constraints over a fixed variable
    count.  Systems are cheap persistent values: {!add} shares the
    existing constraints. *)

val make : nvars:int -> cstr list -> system
(** [make ~nvars cs] builds a system over [nvars] variables.  Raises
    [Invalid_argument] if a constraint's coefficient vector has a
    different length. *)

val add : system -> cstr list -> system
(** [add sys cs] is [sys] with the extra constraints conjoined. *)

val feasible : system -> bool
(** [feasible sys] is true iff an integer point satisfies every
    constraint.  Exact: never a conservative answer in either
    direction. *)

val range : system -> coeffs:int array -> lo:int -> hi:int -> (int * int) option
(** [range sys ~coeffs ~lo ~hi] is the exact [(min, max)] of the linear
    form [coeffs . x] over the integer solutions of [sys], or [None]
    when [sys] is infeasible.  [lo] and [hi] must be {e valid} outer
    bounds for the form over the solution set (interval arithmetic over
    the system's box bounds suffices); the extrema are found by binary
    search on feasibility queries inside them. *)

(** {2 Effort counters}

    Cumulative, process-wide counters of the engine's work, for the
    [deps] report and the bench harness.  Atomic, so Domain-parallel
    analyses account correctly. *)

type stats = {
  checks : int;  (** top-level {!feasible} / {!range} probe calls *)
  eliminations : int;  (** variables eliminated (FM or equality) *)
  splits : int;  (** splinter case-splits taken *)
  max_split_depth : int;  (** deepest nesting of splits seen *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
