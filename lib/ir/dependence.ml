module Intvec = Mlo_linalg.Intvec
module Intmat = Mlo_linalg.Intmat
module P = Presburger

type direction = Lt | Eq | Gt
type dep = Distance of Intvec.t | Direction of direction array

let direction_char = function Lt -> '<' | Eq -> '=' | Gt -> '>'

let pp_dep ppf d =
  let inner =
    match d with
    | Distance v -> Array.to_list (Array.map string_of_int v)
    | Direction v ->
        Array.to_list (Array.map (fun x -> String.make 1 (direction_char x)) v)
  in
  Format.fprintf ppf "(%s)" (String.concat ", " inner)

let lex_sign v =
  match Intvec.first_nonzero v with
  | None -> 0
  | Some i -> if v.(i) > 0 then 1 else -1

(* ------------------------------------------------------------------ *)
(* The conflict system for a reference pair: variables x_0..x_{d-1} are
   the source iteration I, x_d..x_{2d-1} the sink iteration I'; both
   range over the nest's bounds and the accessed elements coincide:
   F1.I + o1 = F2.I' + o2, one equality per array dimension. *)

let conflict_system nest a1 a2 =
  let loops = Loop_nest.loops nest in
  let d = Array.length loops in
  let nvars = 2 * d in
  let cstrs = ref [] in
  Array.iteri
    (fun j l ->
      let lo = l.Loop_nest.lo and hi = l.Loop_nest.hi - 1 in
      cstrs :=
        P.between ~nvars j ~lo ~hi
        @ P.between ~nvars (d + j) ~lo ~hi
        @ !cstrs)
    loops;
  let m1 = Access.matrix a1 and m2 = Access.matrix a2 in
  let o1 = Access.offset a1 and o2 = Access.offset a2 in
  for r = 0 to Intmat.rows m1 - 1 do
    let c = Array.make nvars 0 in
    for j = 0 to d - 1 do
      c.(j) <- m1.(r).(j);
      c.(d + j) <- -m2.(r).(j)
    done;
    cstrs := P.eq c (o1.(r) - o2.(r)) :: !cstrs
  done;
  P.make ~nvars !cstrs

(* delta_j = x_{d+j} - x_j, the level-j dependence distance. *)
let delta_coeffs nvars d j =
  let c = Array.make nvars 0 in
  c.(d + j) <- 1;
  c.(j) <- -1;
  c

let dir_cstr nvars d j = function
  | Lt -> P.geq (delta_coeffs nvars d j) (-1) (* delta_j >= 1 *)
  | Eq -> P.eq (delta_coeffs nvars d j) 0
  | Gt ->
      let c = delta_coeffs nvars d j in
      P.geq (Array.map (fun x -> -x) c) (-1) (* delta_j <= -1 *)

let flip_dir = function Lt -> Gt | Gt -> Lt | Eq -> Eq

(* Enumerate the Banerjee direction hierarchy: refine each level's [*]
   into Lt/Eq/Gt, pruning infeasible prefixes.  A feasible leaf whose
   first non-Eq level is Gt is the mirror of a forward dependence (sink
   precedes source in program order); it is flipped so every reported
   dep is lexicographically forward.  Leaves whose per-level distance
   range is a single point collapse to an exact [Distance]. *)
let pair_deps_for nest a1 a2 =
  let loops = Loop_nest.loops nest in
  let d = Array.length loops in
  let nvars = 2 * d in
  let base = conflict_system nest a1 a2 in
  if not (P.feasible base) then []
  else begin
    let found = ref [] in
    let emit dep = if not (List.mem dep !found) then found := dep :: !found in
    let leaf sys dirs =
      if not (List.for_all (fun x -> x = Eq) dirs) then begin
        let flipped =
          match List.find_opt (fun x -> x <> Eq) dirs with
          | Some Gt -> true
          | _ -> false
        in
        let ranges =
          List.mapi
            (fun j dir ->
              match dir with
              | Eq -> (0, 0)
              | _ -> (
                  let span = loops.(j).Loop_nest.hi - 1 - loops.(j).Loop_nest.lo in
                  match
                    P.range sys ~coeffs:(delta_coeffs nvars d j) ~lo:(-span)
                      ~hi:span
                  with
                  | Some r -> r
                  | None -> assert false (* the leaf is feasible *)))
            dirs
        in
        if List.for_all (fun (a, b) -> a = b) ranges then
          let v = Array.of_list (List.map fst ranges) in
          emit (Distance (if flipped then Array.map (fun x -> -x) v else v))
        else
          let dirs = Array.of_list dirs in
          emit (Direction (if flipped then Array.map flip_dir dirs else dirs))
      end
    in
    let rec go level sys dirs =
      if level = d then leaf sys (List.rev dirs)
      else
        List.iter
          (fun dir ->
            let sys' = P.add sys [ dir_cstr nvars d level dir ] in
            if P.feasible sys' then go (level + 1) sys' (dir :: dirs))
          [ Lt; Eq; Gt ]
    in
    go 0 base [];
    List.rev !found
  end

let pair_deps nest =
  let accs = Loop_nest.accesses nest in
  let n = Array.length accs in
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i do
      let a1 = accs.(i) and a2 = accs.(j) in
      if
        String.equal (Access.array_name a1) (Access.array_name a2)
        && (Access.is_write a1 || Access.is_write a2)
        && not (i = j && not (Access.is_write a1))
      then out := (i, j, pair_deps_for nest a1 a2) :: !out
    done
  done;
  !out

let deps nest =
  List.concat_map (fun (i, j, ds) -> List.map (fun d -> (i, j, d)) ds)
    (pair_deps nest)

(* ------------------------------------------------------------------ *)
(* Permutation legality. *)

let is_identity perm =
  let ok = ref true in
  Array.iteri (fun i x -> if i <> x then ok := false) perm;
  !ok

let dep_legal perm = function
  | Distance dv ->
      lex_sign (Array.init (Array.length perm) (fun p -> dv.(perm.(p)))) >= 0
  | Direction dirs ->
      let n = Array.length perm in
      let rec scan p =
        p >= n
        ||
        match dirs.(perm.(p)) with
        | Lt -> true
        | Gt -> false
        | Eq -> scan (p + 1)
      in
      scan 0

let legal_permutation nest perm =
  is_identity perm
  || List.for_all (fun (_, _, dep) -> dep_legal perm dep) (deps nest)

let legal_permutations nest =
  let ds = deps nest in
  List.filter
    (fun (perm, _) ->
      is_identity perm
      || List.for_all (fun (_, _, dep) -> dep_legal perm dep) ds)
    (Loop_nest.permutations nest)
