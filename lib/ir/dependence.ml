module Intvec = Mlo_linalg.Intvec
module Intmat = Mlo_linalg.Intmat
module Rat = Mlo_linalg.Rat
module Nullspace = Mlo_linalg.Nullspace

type distance = Exact of Intvec.t | Unknown

let lex_sign v =
  match Intvec.first_nonzero v with
  | None -> 0
  | Some i -> if v.(i) > 0 then 1 else -1

(* Solve F d = b over the rationals by Gauss-Jordan on [F | b].
   Returns [None] if inconsistent, [Some (d0, nullity)] with [d0] the
   particular solution taking all free variables to 0 (when integral),
   and the nullspace dimension. *)
let solve_particular f b =
  let r = Intmat.rows f and c = Intmat.cols f in
  let m =
    Array.init r (fun i ->
        Array.init (c + 1) (fun j ->
            Rat.of_int (if j < c then f.(i).(j) else b.(i))))
  in
  let pivots = ref [] in
  let pr = ref 0 in
  for j = 0 to c - 1 do
    if !pr < r then begin
      let rec find i =
        if i >= r then None
        else if not (Rat.is_zero m.(i).(j)) then Some i
        else find (i + 1)
      in
      match find !pr with
      | None -> ()
      | Some i ->
        let tmp = m.(!pr) in
        m.(!pr) <- m.(i);
        m.(i) <- tmp;
        let p = m.(!pr).(j) in
        for j' = 0 to c do
          m.(!pr).(j') <- Rat.div m.(!pr).(j') p
        done;
        for i' = 0 to r - 1 do
          if i' <> !pr && not (Rat.is_zero m.(i').(j)) then begin
            let fct = m.(i').(j) in
            for j' = 0 to c do
              m.(i').(j') <- Rat.sub m.(i').(j') (Rat.mul fct m.(!pr).(j'))
            done
          end
        done;
        pivots := (!pr, j) :: !pivots;
        incr pr
    end
  done;
  let pivots = List.rev !pivots in
  (* inconsistent iff some zero row has nonzero rhs *)
  let inconsistent =
    let rec check i =
      if i >= r then false
      else
        let zero_lhs =
          let rec z j = j >= c || (Rat.is_zero m.(i).(j) && z (j + 1)) in
          z 0
        in
        if zero_lhs && not (Rat.is_zero m.(i).(c)) then true else check (i + 1)
    in
    check 0
  in
  if inconsistent then None
  else begin
    let d0 = Array.make c Rat.zero in
    List.iter (fun (i, j) -> d0.(j) <- m.(i).(c)) pivots;
    let integral = Array.for_all (fun x -> Rat.den x = 1) d0 in
    let nullity = c - List.length pivots in
    if integral then Some (Array.map Rat.num d0, nullity) else Some ([||], nullity)
    (* [||] signals a rational-only particular solution: for dependence
       purposes, a non-integral unique solution means no integer
       dependence when nullity = 0; with free variables integral points
       may still exist, so callers must treat it conservatively. *)
  end

(* Per-dimension GCD test for a non-uniform pair: f1(I) = f2(I') has an
   integer solution in (I, I') only if gcd of all coefficients divides the
   constant difference, for every array dimension. *)
let gcd_test a1 a2 =
  let m1 = Access.matrix a1 and m2 = Access.matrix a2 in
  let o1 = Access.offset a1 and o2 = Access.offset a2 in
  let dims = Intmat.rows m1 in
  let solvable = ref true in
  for r = 0 to dims - 1 do
    let g = ref 0 in
    Array.iter (fun x -> g := Intvec.gcd !g x) m1.(r);
    Array.iter (fun x -> g := Intvec.gcd !g x) m2.(r);
    let diff = o2.(r) - o1.(r) in
    if !g = 0 then begin
      if diff <> 0 then solvable := false
    end
    else if diff mod !g <> 0 then solvable := false
  done;
  !solvable

let pair_distance a1 a2 =
  let m1 = Access.matrix a1 and m2 = Access.matrix a2 in
  if Intmat.equal m1 m2 then begin
    (* uniform: F d = o1 - o2 *)
    let b = Intvec.sub (Access.offset a1) (Access.offset a2) in
    match solve_particular m1 b with
    | None -> []
    | Some (d0, 0) ->
      if Array.length d0 = 0 then [] (* unique but non-integral: no dep *)
      else if Intvec.is_zero d0 then [] (* loop-independent *)
      else [ Exact (if lex_sign d0 < 0 then Intvec.neg d0 else d0) ]
    | Some (d0, 1) when Array.length d0 > 0 && Intvec.is_zero d0 ->
      (* homogeneous with a one-dimensional solution line: distances are
         the multiples of the basis vector *)
      (match Nullspace.basis m1 with
      | [ n ] -> [ Exact n ]
      | _ -> [ Unknown ])
    | Some _ -> [ Unknown ]
  end
  else if gcd_test a1 a2 then [ Unknown ]
  else []

let pair_distances nest =
  let accs = Loop_nest.accesses nest in
  let out = ref [] in
  let n = Array.length accs in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a1 = accs.(i) and a2 = accs.(j) in
      if
        String.equal (Access.array_name a1) (Access.array_name a2)
        && (Access.is_write a1 || Access.is_write a2)
        && not (i = j && not (Access.is_write a1))
      then out := (i, j, pair_distance a1 a2) :: !out
    done
  done;
  !out

let distances nest =
  List.concat_map (fun (_, _, ds) -> ds) (pair_distances nest)

let is_identity perm =
  let ok = ref true in
  Array.iteri (fun i x -> if i <> x then ok := false) perm;
  !ok

let legal_permutation nest perm =
  if is_identity perm then true
  else
    let apply d = Array.init (Array.length perm) (fun p -> d.(perm.(p))) in
    List.for_all
      (fun dist ->
        match dist with
        | Unknown -> false
        | Exact d -> lex_sign (apply d) >= 0)
      (distances nest)

let legal_permutations nest =
  List.filter
    (fun (perm, _) -> legal_permutation nest perm)
    (Loop_nest.permutations nest)
