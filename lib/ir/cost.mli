(** Nest importance for the heuristic baseline and weighted constraints.

    The paper's heuristic "orders the loop nests according to an importance
    criterion (e.g., time taken by each nest)"; we use the iteration count
    times the number of references — a static proxy for memory time. *)

val nest_cost : Loop_nest.t -> int
(** [trip_count * number of accesses]: total references issued. *)

val nest_weights : Program.t -> float array
(** Per-nest cost normalized to sum to 1, in program order. *)

val ranked_nests : Program.t -> (int * Loop_nest.t) list
(** Nests with their program-order index, sorted by decreasing cost
    (most important first); ties broken by program order. *)
