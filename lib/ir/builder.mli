(** Readable construction of loop nests.

    A [ctx] names the loop variables of the nest being built (outermost
    first); index expressions are then written with [var]/[const] and the
    [+:], [-:], [*:] operators, e.g.

    {[
      let x = Builder.ctx [ "i1"; "i2" ] in
      Builder.(read "Q1" [ var x "i1" +: var x "i2"; var x "i2" ])
    ]} *)

type ctx

val ctx : string list -> ctx
(** Declares the loop variables of the nest, outermost first.  Raises
    [Invalid_argument] on duplicates or an empty list. *)

val vars : ctx -> string list

val var : ctx -> string -> Affine.t
(** The expression consisting of a single loop variable.  Raises
    [Invalid_argument] if the name is not in the context. *)

val const : ctx -> int -> Affine.t

val ( +: ) : Affine.t -> Affine.t -> Affine.t
val ( -: ) : Affine.t -> Affine.t -> Affine.t
val ( *: ) : int -> Affine.t -> Affine.t

val read : string -> Affine.t list -> Access.t
val write : string -> Affine.t list -> Access.t

val loop : ?lo:int -> string -> int -> Loop_nest.loop
(** [loop v n] is [for (v = lo; v < n; v++)] with [lo] defaulting to 0. *)

val nest : string -> ctx -> int list -> Access.t list -> Loop_nest.t
(** [nest name x his accesses] builds a nest whose loops are the context
    variables with upper bounds [his] (all lower bounds 0).  Raises
    [Invalid_argument] if [his] length differs from the context size. *)
