module Intvec = Mlo_linalg.Intvec

type loop = { var : string; lo : int; hi : int }

type t = { name : string; loops : loop array; accesses : Access.t array }

let make ~name loops accesses =
  if loops = [] then invalid_arg "Loop_nest.make: no loops";
  if accesses = [] then invalid_arg "Loop_nest.make: no accesses";
  List.iter
    (fun l -> if l.hi <= l.lo then invalid_arg "Loop_nest.make: empty loop")
    loops;
  let vars = List.map (fun l -> l.var) loops in
  if List.length (List.sort_uniq String.compare vars) <> List.length vars then
    invalid_arg "Loop_nest.make: duplicate loop variable names";
  let d = List.length loops in
  List.iter
    (fun a ->
      if Access.depth a <> d then
        invalid_arg "Loop_nest.make: access depth differs from nest depth")
    accesses;
  { name; loops = Array.of_list loops; accesses = Array.of_list accesses }

let name t = t.name
let depth t = Array.length t.loops
let loops t = Array.copy t.loops
let accesses t = Array.copy t.accesses
let var_names t = Array.map (fun l -> l.var) t.loops

let trip_count t =
  Array.fold_left (fun acc l -> acc * (l.hi - l.lo)) 1 t.loops

let arrays_touched t =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun a ->
      let n = Access.array_name a in
      if not (Hashtbl.mem seen n) then begin
        Hashtbl.add seen n ();
        order := n :: !order
      end)
    t.accesses;
  List.rev !order

let iter t f =
  let d = depth t in
  let iv = Array.make d 0 in
  let rec go level =
    if level = d then f iv
    else begin
      let l = t.loops.(level) in
      for x = l.lo to l.hi - 1 do
        iv.(level) <- x;
        go (level + 1)
      done
    end
  in
  go 0

let innermost_step t = Intvec.unit (depth t) (depth t - 1)

let permute t perm =
  let d = depth t in
  if Array.length perm <> d then
    invalid_arg "Loop_nest.permute: wrong permutation length";
  let seen = Array.make d false in
  Array.iter
    (fun q ->
      if q < 0 || q >= d || seen.(q) then
        invalid_arg "Loop_nest.permute: not a permutation";
      seen.(q) <- true)
    perm;
  {
    t with
    loops = Array.init d (fun p -> t.loops.(perm.(p)));
    accesses = Array.map (Access.permute perm) t.accesses;
  }

let interchange t =
  if depth t <> 2 then invalid_arg "Loop_nest.interchange: depth must be 2";
  permute t [| 1; 0 |]

(* All permutations of 0..d-1 in a stable order with the identity first. *)
let all_perms d =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: ys as l -> (x :: l) :: List.map (fun z -> y :: z) (insert x ys)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert x) (perms xs)
  in
  let ps = perms (List.init d Fun.id) in
  let arr = List.map Array.of_list ps in
  let is_id p = Array.for_all2 ( = ) p (Array.init d Fun.id) in
  let id, rest = List.partition is_id arr in
  id @ rest

let permutations t =
  let d = depth t in
  if d > 6 then invalid_arg "Loop_nest.permutations: depth too large";
  List.map (fun p -> (p, permute t p)) (all_perms d)

let equal a b =
  String.equal a.name b.name
  && a.loops = b.loops
  && Array.length a.accesses = Array.length b.accesses
  && Array.for_all2 Access.equal a.accesses b.accesses

let pp ppf t =
  let names = var_names t in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun level l ->
      Format.fprintf ppf "%sfor (%s = %d; %s < %d; %s++)@,"
        (String.make (2 * level) ' ')
        l.var l.lo l.var l.hi l.var)
    t.loops;
  let indent = String.make (2 * depth t) ' ' in
  Array.iter
    (fun a ->
      Format.fprintf ppf "%s%s %a;@," indent
        (match Access.kind a with Access.Read -> "load " | Access.Write -> "store")
        (Access.pp names) a)
    t.accesses;
  Format.fprintf ppf "@]"
