module Intvec = Mlo_linalg.Intvec
module Intmat = Mlo_linalg.Intmat

type kind = Read | Write

type t = { array_name : string; kind : kind; indices : Affine.t array }

let make kind array_name indices =
  match indices with
  | [] -> invalid_arg "Access.make: no index expressions"
  | e0 :: rest ->
    let d = Affine.depth e0 in
    List.iter
      (fun e ->
        if Affine.depth e <> d then
          invalid_arg "Access.make: index expressions of differing depth")
      rest;
    { array_name; kind; indices = Array.of_list indices }

let read name indices = make Read name indices
let write name indices = make Write name indices
let array_name a = a.array_name
let kind a = a.kind
let is_write a = a.kind = Write
let rank a = Array.length a.indices
let depth a = Affine.depth a.indices.(0)

let matrix a =
  Array.map (fun e -> Array.init (depth a) (fun j -> Affine.coeff e j)) a.indices

let offset a = Array.map (fun (e : Affine.t) -> e.Affine.const) a.indices

let element_at a iter =
  Array.map (fun e -> Affine.eval e iter) a.indices

let permute perm a =
  { a with indices = Array.map (Affine.permute perm) a.indices }

let equal a b =
  String.equal a.array_name b.array_name
  && a.kind = b.kind
  && Array.length a.indices = Array.length b.indices
  && Array.for_all2 Affine.equal a.indices b.indices

let pp names ppf a =
  Format.fprintf ppf "%s" a.array_name;
  Array.iter (fun e -> Format.fprintf ppf "[%a]" (Affine.pp names) e) a.indices
