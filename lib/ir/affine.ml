module Intvec = Mlo_linalg.Intvec

type t = { coeffs : Intvec.t; const : int }

let make coeffs const = { coeffs = Intvec.of_list coeffs; const }
let const depth c = { coeffs = Intvec.zero depth; const = c }
let var depth j = { coeffs = Intvec.unit depth j; const = 0 }
let depth e = Intvec.dim e.coeffs

let add a b =
  { coeffs = Intvec.add a.coeffs b.coeffs; const = a.const + b.const }

let sub a b =
  { coeffs = Intvec.sub a.coeffs b.coeffs; const = a.const - b.const }

let scale k a = { coeffs = Intvec.scale k a.coeffs; const = k * a.const }
let neg a = scale (-1) a
let eval e iter = Intvec.dot e.coeffs iter + e.const
let coeff e j = e.coeffs.(j)
let equal a b = Intvec.equal a.coeffs b.coeffs && a.const = b.const

let compare a b =
  let c = Intvec.compare a.coeffs b.coeffs in
  if c <> 0 then c else Int.compare a.const b.const

let permute perm e =
  if Array.length perm <> depth e then
    invalid_arg "Affine.permute: permutation length mismatch";
  { e with coeffs = Array.init (depth e) (fun p -> e.coeffs.(perm.(p))) }

let is_constant e = Intvec.is_zero e.coeffs

let pp names ppf e =
  let printed = ref false in
  let pp_term coefficient symbol =
    if coefficient <> 0 then begin
      if !printed then
        Format.pp_print_string ppf (if coefficient > 0 then "+" else "-")
      else if coefficient < 0 then Format.pp_print_string ppf "-";
      let a = abs coefficient in
      (match symbol with
      | Some s -> if a = 1 then Format.fprintf ppf "%s" s else Format.fprintf ppf "%d*%s" a s
      | None -> Format.fprintf ppf "%d" a);
      printed := true
    end
  in
  Array.iteri (fun j c -> pp_term c (Some names.(j))) e.coeffs;
  pp_term e.const None;
  if not !printed then Format.fprintf ppf "0"

let to_string names e = Format.asprintf "%a" (pp names) e
