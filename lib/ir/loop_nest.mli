(** Perfectly nested affine loops with constant bounds.

    Loops are listed outermost first.  Each loop has an inclusive lower
    bound, an exclusive upper bound and a unit step — the shape of the
    embedded kernels the paper evaluates.  The body is a list of array
    references executed once per iteration, in order. *)

type loop = { var : string; lo : int; hi : int }
(** One loop level: [for (var = lo; var < hi; var++)]. *)

type t = private {
  name : string;
  loops : loop array;
  accesses : Access.t array;
}

val make : name:string -> loop list -> Access.t list -> t
(** Builds a nest.  Raises [Invalid_argument] if there are no loops, a loop
    is empty ([hi <= lo]), loop variable names collide, there are no
    accesses, or an access depth differs from the number of loops. *)

val name : t -> string
val depth : t -> int
val loops : t -> loop array
val accesses : t -> Access.t array
val var_names : t -> string array

val trip_count : t -> int
(** Number of iterations (product of per-loop trip counts). *)

val arrays_touched : t -> string list
(** Names of arrays referenced by the nest, without duplicates, in first-
    occurrence order. *)

val iter : t -> (Mlo_linalg.Intvec.t -> unit) -> unit
(** [iter t f] calls [f] on every iteration vector in lexicographic
    (program) order.  The vector passed to [f] is reused across calls; the
    callback must copy it if it needs to retain it. *)

val innermost_step : t -> Mlo_linalg.Intvec.t
(** The iteration-space direction of two successive iterations that do not
    cross loop bounds: the unit vector of the innermost loop.  This is the
    [I_n - I] of the paper's Section 2. *)

val permute : t -> int array -> t
(** [permute t perm] reorders the loops: the loop at new depth [p] is the
    old loop [perm.(p)].  Accesses are rewritten accordingly.  Raises
    [Invalid_argument] if [perm] is not a permutation of [0 .. depth-1]. *)

val interchange : t -> t
(** Swaps the loops of a depth-2 nest.  Raises [Invalid_argument] if the
    nest depth is not 2. *)

val permutations : t -> (int array * t) list
(** All [depth!] loop orders of the nest, paired with the permutation that
    produced each (identity first).  Depth is expected to be small
    (kernels are depth 2-3); raises [Invalid_argument] above depth 6. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
