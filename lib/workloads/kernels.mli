(** Reusable loop-nest builders for realistic array kernels.

    Every builder takes the loop bound(s) and array names and returns a
    {!Mlo_ir.Loop_nest.t} plus the array declarations it requires (the
    caller merges declarations across kernels; see {!declare}). *)

type arrays = (string * int list) list
(** Required arrays: name and extents.  When several kernels require the
    same array the extents must agree (checked by {!declare}). *)

val declare : ?elem_size:int -> arrays -> Mlo_ir.Array_info.t list
(** Merges requirements into declarations.  Raises [Invalid_argument] on
    conflicting extents for one name. *)

val matmul :
  name:string -> n:int -> c:string -> a:string -> b:string ->
  Mlo_ir.Loop_nest.t * arrays
(** [c\[i\]\[j\] += a\[i\]\[k\] * b\[k\]\[j\]] over i,j,k in [0,n): the
    classic kernel whose arrays want row-major (a), column-major (b) and
    anything (c). *)

val transpose_copy :
  name:string -> n:int -> dst:string -> src:string ->
  Mlo_ir.Loop_nest.t * arrays
(** [dst\[i\]\[j\] = src\[j\]\[i\]]: dst wants row-major, src wants
    column-major. *)

val stencil5 :
  name:string -> n:int -> dst:string -> src:string ->
  Mlo_ir.Loop_nest.t * arrays
(** Five-point stencil [dst\[i\]\[j\] = f(src\[i±1\]\[j\], src\[i\]\[j±1\])]
    over the interior of an [(n+2) x (n+2)] grid; both arrays want
    row-major. *)

val diagonal_sweep :
  name:string -> n:int -> q1:string -> q2:string ->
  Mlo_ir.Loop_nest.t * arrays
(** The paper's Figure 2 nest: [... q1\[i1+i2\]\[i2\] ... q2\[i1+i2\]\[i1\] ...];
    q1 wants the diagonal layout (1 -1), q2 wants column-major. *)

val fill :
  name:string -> n:int -> dst:string -> Mlo_ir.Loop_nest.t * arrays
(** [dst\[i\]\[j\] = 0]: write-only initialization sweep (prefers
    row-major; constrains nothing else). *)

val row_scale :
  name:string -> n:int -> dst:string -> Mlo_ir.Loop_nest.t * arrays
(** [dst\[i\]\[j\] *= s]: an in-place row-wise update pass. *)

val row_reduce :
  name:string -> n:int -> dst:string -> src:string ->
  Mlo_ir.Loop_nest.t * arrays
(** [dst\[i\] += src\[i\]\[j\]]: src wants row-major; dst is 1-D. *)

val col_reduce :
  name:string -> n:int -> dst:string -> src:string ->
  Mlo_ir.Loop_nest.t * arrays
(** [dst\[j\] += src\[i\]\[j\]] with j outer: src wants column-major. *)

(** {1 Rank-3 (tensor) kernels} *)

val rotate3 :
  name:string -> n:int -> dst:string -> src:string ->
  Mlo_ir.Loop_nest.t * arrays
(** Axis rotation of a cube: [dst\[i\]\[j\]\[k\] = src\[k\]\[i\]\[j\]].
    dst wants its last axis fastest (row-major); src wants its {e first}
    axis fastest — only a 3-D layout change can serve both. *)

val stencil7 :
  name:string -> n:int -> dst:string -> src:string ->
  Mlo_ir.Loop_nest.t * arrays
(** Seven-point 3-D stencil over the interior of an [(n+2)^3] grid; both
    arrays want row-major. *)

val batched_matmul :
  name:string -> batches:int -> n:int -> c:string -> a:string -> b:string ->
  Mlo_ir.Loop_nest.t * arrays
(** [c\[t\]\[i\]\[j\] += a\[t\]\[i\]\[k\] * b\[t\]\[k\]\[j\]] over a batch
    index [t]: a depth-4 nest whose 3-D operands inherit the classic
    matmul preferences per slice. *)
