(** The five benchmarks of the paper's Table 1, as synthetic equivalents.

    MxM is the one benchmark whose structure the paper names precisely
    (triple matrix multiplication), so it is hand-built from kernels; the
    other four are instantiations of {!Random_program} whose parameters
    were tuned to land near the published total domain sizes and data
    sizes while exercising the access-pattern conflicts their application
    domains imply (reconstruction sweeps, transposed passes, distance
    transforms, tracking updates).  Substitution rationale: DESIGN.md
    Section 2. *)

val med_im04 : unit -> Spec.t
(** Medical image reconstruction: stencil-and-transpose mix,
    paper: domain 258, 825.55KB. *)

val mxm : unit -> Spec.t
(** Triple matrix multiplication [D = A * B * C] via a temporary,
    paper: domain 34, 1173.56KB. *)

val radar : unit -> Spec.t
(** Radar imaging: skewed sweeps, paper: domain 422, 905.28KB. *)

val shape : unit -> Spec.t
(** Pattern recognition / shape analysis: the largest network,
    paper: domain 656, 1284.06KB. *)

val track : unit -> Spec.t
(** Visual tracking control, paper: domain 388, 744.80KB. *)

val all : unit -> Spec.t list
(** The five, in Table-1 order. *)

val scale : ?seed:int -> ?group_size:int -> int -> Spec.t
(** The scale family ({!Random_program.scale}) wrapped as a spec:
    synthetic component-rich programs at 10/100/1000+ arrays for
    throughput work, with zeroed paper columns (they reproduce nothing)
    and no candidate padding. *)

val hard : ?seed:int -> int -> Spec.t
(** The hard family ({!Random_program.hard}) wrapped as a spec: dense
    single-component networks near the satisfiability phase transition,
    for separating the learning solver from the plain backjumpers.
    Paper columns zeroed, no candidate padding. *)

val by_name : string -> Spec.t
(** Case-insensitive lookup ("mxm", "radar", ...).  Names of the form
    "scale-N" (e.g. "scale-100") and "hard-N" (e.g. "hard-20")
    instantiate the synthetic families at [N] arrays.  Raises
    [Not_found]. *)
