(** Seeded synthetic benchmark generator.

    The paper's benchmarks are proprietary embedded codes; what the
    constraint-network experiments actually consume is the {e structure}
    they induce: how many arrays, how many nests touch each array, and how
    often different nests pull the same array toward different layouts.
    This generator reproduces that structure deterministically from a
    seed:

    - every array gets an {e intended} layout drawn from the classic
      palette (row-major, column-major, diagonal, anti-diagonal);
    - {e aligned} nests reference their arrays with an access pattern
      whose innermost-loop stride prefers exactly the intended layout, so
      the assignment taking every demanded array to its intended layout
      (and arrays referenced only temporally to the default) is a
      solution of the extracted network by construction;
    - {e conflicting} nests (a seeded fraction) instead pull their arrays
      toward alternative layouts, and are paired with a cheaper aligned
      twin over the same arrays so that every constrained array pair still
      allows the intended combination — conflicts enlarge domains and
      constraint sets (hard search) without making the network
      unsatisfiable;
    - skewed outer strides enrich the per-array candidate sets the way
      loop restructurings do in the paper.

    The same structure can be instantiated at any loop extent: the full
    Table-1 data size for network extraction, a scaled extent for fast
    trace-driven simulation. *)

type params = {
  name : string;
  seed : int;
  num_arrays : int;
  num_nests : int;  (** aligned nests; conflicting nests add twins *)
  extent : int;
      (** the shared square array extent; every array is extent x extent
          and per-nest loop bounds shrink so skewed references stay in
          bounds *)
  sim_extent : int;  (** array extent for the simulation instance *)
  min_arrays_per_nest : int;
  max_arrays_per_nest : int;
  conflict_percent : int;  (** chance (in %) that a nest conflicts *)
  skew_percent : int;  (** chance (in %) of a skewed outer stride *)
  temporal_percent : int;
      (** chance (in %) that a reference is innermost-invariant: such
          references demand no layout, so the network gets wildcard pairs
          (any layout of that array is allowed with the partner's
          demand) — looser, paper-sized constraints *)
  elem_size : int;
  group_size : int;
      (** when positive, arrays are partitioned into pools of this size
          and every nest draws all its references from one pool — the
          extracted network then decomposes into at least
          [num_arrays / group_size] independent components.  [0] (the
          default) keeps the classic behaviour: any nest may reference
          any array. *)
  twin_percent : int;
      (** chance (in %) that a conflicting nest is paired with the
          aligned twin that re-anchors the intended layouts.  At the
          default [100] every conflict is anchored and the planted
          solution survives (and no random draw is consumed, so classic
          workloads are unchanged); lower values leave some conflicts
          unanchored, pushing the network toward the satisfiability
          phase transition — {!intended_layouts} is then only a hint,
          not a guaranteed solution. *)
  palette_size : int;
      (** when positive, intended and conflicting draws use only the
          first [palette_size] entries of the layout palette
          (row-major, column-major, diagonal, ...), so every nest
          competes over the same few layouts and domains stay tight.
          [0] (the default) draws from the whole 8-entry palette. *)
  ref_conflict_percent : int;
      (** when positive, switches generation to the mixed regime: every
          nest draws each non-temporal reference's pull independently —
          intended with probability [100 - ref_conflict_percent],
          a conflicting alternative otherwise — and no twins are
          generated ([conflict_percent]/[twin_percent] are ignored).
          Demands then overlap across nests without agreeing wholesale,
          which is what puts the network near the phase transition
          instead of making it trivially satisfiable or trivially
          wiped.  [0] (the default) keeps the classic per-nest
          regime. *)
  nest_depth : int;
      (** loops per nest.  [2] (the default) is the classic shape: one
          outer stride and one inner (delta) stride per reference.  [3]
          or more switches generation to the deep regime: every
          non-temporal reference carries one palette delta per loop, so
          its demanded layout is decided by which loop the legal
          restructurings put innermost, and every palette layout keeps a
          support in every pair constraint — the arc-consistency-blind
          shape the hard family is built on.  Requires
          [nest_depth <= palette size] (clamped otherwise). *)
  shift_nests : int;
      (** number of windowed-update nests appended after the classic
          ones: nest [shift{s}] stores [Q[i+b][j]] and loads
          [Q[i][j+1]] over [i, j < b = extent/2].  The reference pair
          is uniform with distance [(b, -1)] — beyond the [i] trip
          count, so the exact dependence analysis proves independence
          and keeps both loop orders legal, while a bounds-blind
          analysis would pin the nest.  Each such nest touches a single
          array (no new pair constraints) and is generated without
          consuming random draws, so [0] (the default everywhere but
          the scale family) is bit-identical to the pre-shift
          generator. *)
}

val default : params
(** A small, balanced configuration (8 arrays, 12 nests, 64x64 arrays). *)

val scale : ?seed:int -> ?group_size:int -> int -> params
(** [scale n] is the scale-family configuration at [n] arrays
    ("scale-{n}"): nests at [2n/5] (at least 8), pools of [group_size]
    (default 8) arrays so the network splits into [~n/8] components,
    paper-like conflict/skew/temporal rates, [max 1 (n/10)] windowed
    shift nests whose legality only the exact dependence engine can
    liberate, and a halved simulation extent.  Designed to stress end-to-end throughput at 10/100/1000
    arrays; see DESIGN.md Section 13. *)

val hard : ?seed:int -> int -> params
(** [hard n] is the hard-family configuration at [n] arrays
    ("hard-{n}"): [2n] three-deep nests drawing contiguous windows on
    the array ring, over a 3-layout palette, with half the references
    scrambling their planted slot order.  Pair constraints are unions
    of matchings in which every value keeps a support, so the
    inconsistencies hide from arc consistency and surface only deep in
    the search.  Built to separate learning solvers from plain
    backjumpers; see DESIGN.md Section 14. *)

val generate : params -> Mlo_ir.Program.t
(** The program at full size. *)

val generate_sim : params -> Mlo_ir.Program.t
(** Same structure at [sim_extent]. *)

val intended_layouts : params -> (string * Mlo_layout.Layout.t) list
(** The planted solution: the layout each array was generated to prefer.
    The extracted network always admits it (see module doc). *)
