module Layout = Mlo_layout.Layout
module Hyperplane = Mlo_layout.Hyperplane
module Program = Mlo_ir.Program

let layout2 coeffs = Layout.of_hyperplane (Hyperplane.of_list coeffs)

let palette6 =
  List.map layout2
    [ [ 1; 0 ]; [ 0; 1 ]; [ 1; -1 ]; [ 1; 1 ]; [ 1; 2 ]; [ 2; 1 ] ]

let palette8 = palette6 @ List.map layout2 [ [ 1; -2 ]; [ 2; -1 ] ]
let palette10 = palette8 @ List.map layout2 [ [ 1; 3 ]; [ 3; 1 ] ]
let palette12 = palette10 @ List.map layout2 [ [ 1; -3 ]; [ 3; -1 ] ]

(* Canonical enumeration: the eight classics, then coprime (a, +-b) pairs
   by increasing max coefficient. *)
let enumeration =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let tail = ref [] in
  for m = 3 to 8 do
    for a = 1 to m - 1 do
      if gcd m a = 1 then
        tail := !tail @ [ [ a; m ]; [ m; a ]; [ a; -m ]; [ m; -a ] ]
    done
  done;
  palette8 @ List.map layout2 !tail

let palette n =
  if n <= 0 || n > List.length enumeration then
    invalid_arg "Candidates.palette: size out of range";
  List.filteri (fun i _ -> i < n) enumeration

(* Layouts with coefficients >= 5: the generator and the loop
   restructurings never demand them, so they are pure search-space
   padding. *)
let junk_pool = List.filteri (fun i _ -> i >= 24) enumeration

let pad_to_domain prog ~target =
  let build = Mlo_netgen.Build.build prog in
  let measured =
    Mlo_csp.Network.total_domain_size build.Mlo_netgen.Build.network
  in
  if measured > target then
    invalid_arg
      (Printf.sprintf
         "Candidates.pad_to_domain: strict domain %d already exceeds %d"
         measured target);
  let names = Program.array_names prog in
  let n = List.length names in
  let deficit = target - measured in
  if deficit > n * List.length junk_pool then
    invalid_arg "Candidates.pad_to_domain: deficit too large to pad";
  let table = Hashtbl.create 32 in
  List.iteri
    (fun r name ->
      let count = (deficit / n) + (if r < deficit mod n then 1 else 0) in
      Hashtbl.replace table name (List.filteri (fun i _ -> i < count) junk_pool))
    names;
  fun name ->
    match Hashtbl.find_opt table name with Some p -> p | None -> []

let by_position prog plan =
  if plan = [] then invalid_arg "Candidates.by_position: empty plan";
  let names = Program.array_names prog in
  let table = Hashtbl.create 32 in
  let last_palette = snd (List.nth plan (List.length plan - 1)) in
  let expanded = List.concat_map (fun (k, p) -> List.init k (fun _ -> p)) plan in
  let rec assign names palettes =
    match (names, palettes) with
    | [], _ -> ()
    | n :: rest, p :: ps ->
      Hashtbl.replace table n p;
      assign rest ps
    | n :: rest, [] ->
      Hashtbl.replace table n last_palette;
      assign rest []
  in
  assign names expanded;
  fun name ->
    match Hashtbl.find_opt table name with
    | Some p -> p
    | None -> last_palette
