module B = Mlo_ir.Builder
module Array_info = Mlo_ir.Array_info
module Loop_nest = Mlo_ir.Loop_nest

type arrays = (string * int list) list

let declare ?elem_size reqs =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (name, extents) ->
      match Hashtbl.find_opt table name with
      | None ->
        Hashtbl.replace table name extents;
        order := name :: !order
      | Some prev ->
        if prev <> extents then
          invalid_arg
            (Printf.sprintf "Kernels.declare: conflicting extents for %s" name))
    reqs;
  List.rev_map
    (fun name -> Array_info.make ?elem_size name (Hashtbl.find table name))
    !order

let matmul ~name ~n ~c ~a ~b =
  let x = B.ctx [ "i"; "j"; "k" ] in
  let i = B.var x "i" and j = B.var x "j" and k = B.var x "k" in
  let nest =
    B.nest name x [ n; n; n ]
      [
        B.read c [ i; j ];
        B.read a [ i; k ];
        B.read b [ k; j ];
        B.write c [ i; j ];
      ]
  in
  (nest, [ (c, [ n; n ]); (a, [ n; n ]); (b, [ n; n ]) ])

let transpose_copy ~name ~n ~dst ~src =
  let x = B.ctx [ "i"; "j" ] in
  let i = B.var x "i" and j = B.var x "j" in
  let nest =
    B.nest name x [ n; n ] [ B.read src [ j; i ]; B.write dst [ i; j ] ]
  in
  (nest, [ (dst, [ n; n ]); (src, [ n; n ]) ])

let stencil5 ~name ~n ~dst ~src =
  let x = B.ctx [ "i"; "j" ] in
  let i = B.var x "i" and j = B.var x "j" in
  let one = B.const x 1 and two = B.const x 2 in
  let nest =
    B.nest name x [ n; n ]
      B.
        [
          read src [ i +: one; j +: one ];
          read src [ i; j +: one ];
          read src [ i +: two; j +: one ];
          read src [ i +: one; j ];
          read src [ i +: one; j +: two ];
          write dst [ i +: one; j +: one ];
        ]
  in
  (nest, [ (dst, [ n + 2; n + 2 ]); (src, [ n + 2; n + 2 ]) ])

let diagonal_sweep ~name ~n ~q1 ~q2 =
  let x = B.ctx [ "i1"; "i2" ] in
  let i1 = B.var x "i1" and i2 = B.var x "i2" in
  let nest =
    B.nest name x [ n; n ]
      B.[ read q1 [ i1 +: i2; i2 ]; read q2 [ i1 +: i2; i1 ]; write q1 [ i1 +: i2; i2 ] ]
  in
  (nest, [ (q1, [ (2 * n) - 1; n ]); (q2, [ (2 * n) - 1; n ]) ])

let fill ~name ~n ~dst =
  let x = B.ctx [ "i"; "j" ] in
  let i = B.var x "i" and j = B.var x "j" in
  let nest = B.nest name x [ n; n ] [ B.write dst [ i; j ] ] in
  (nest, [ (dst, [ n; n ]) ])

let row_scale ~name ~n ~dst =
  let x = B.ctx [ "i"; "j" ] in
  let i = B.var x "i" and j = B.var x "j" in
  let nest =
    B.nest name x [ n; n ] [ B.read dst [ i; j ]; B.write dst [ i; j ] ]
  in
  (nest, [ (dst, [ n; n ]) ])

let row_reduce ~name ~n ~dst ~src =
  let x = B.ctx [ "i"; "j" ] in
  let i = B.var x "i" and j = B.var x "j" in
  let nest =
    B.nest name x [ n; n ]
      [ B.read src [ i; j ]; B.read dst [ i ]; B.write dst [ i ] ]
  in
  (nest, [ (dst, [ n ]); (src, [ n; n ]) ])

let col_reduce ~name ~n ~dst ~src =
  let x = B.ctx [ "j"; "i" ] in
  let j = B.var x "j" and i = B.var x "i" in
  let nest =
    B.nest name x [ n; n ]
      [ B.read src [ i; j ]; B.read dst [ j ]; B.write dst [ j ] ]
  in
  (nest, [ (dst, [ n ]); (src, [ n; n ]) ])

let rotate3 ~name ~n ~dst ~src =
  let x = B.ctx [ "i"; "j"; "k" ] in
  let i = B.var x "i" and j = B.var x "j" and k = B.var x "k" in
  let nest =
    B.nest name x [ n; n; n ]
      [ B.read src [ k; i; j ]; B.write dst [ i; j; k ] ]
  in
  (nest, [ (dst, [ n; n; n ]); (src, [ n; n; n ]) ])

let stencil7 ~name ~n ~dst ~src =
  let x = B.ctx [ "i"; "j"; "k" ] in
  let i = B.var x "i" and j = B.var x "j" and k = B.var x "k" in
  let one = B.const x 1 and two = B.const x 2 in
  let c v = B.(v +: one) in
  let nest =
    B.nest name x [ n; n; n ]
      B.
        [
          read src [ c i; c j; c k ];
          read src [ i; c j; c k ];
          read src [ i +: two; c j; c k ];
          read src [ c i; j; c k ];
          read src [ c i; j +: two; c k ];
          read src [ c i; c j; k ];
          read src [ c i; c j; k +: two ];
          write dst [ c i; c j; c k ];
        ]
  in
  (nest, [ (dst, [ n + 2; n + 2; n + 2 ]); (src, [ n + 2; n + 2; n + 2 ]) ])

let batched_matmul ~name ~batches ~n ~c ~a ~b =
  let x = B.ctx [ "t"; "i"; "j"; "k" ] in
  let t = B.var x "t" and i = B.var x "i" and j = B.var x "j" and k = B.var x "k" in
  let nest =
    B.nest name x [ batches; n; n; n ]
      [
        B.read c [ t; i; j ];
        B.read a [ t; i; k ];
        B.read b [ t; k; j ];
        B.write c [ t; i; j ];
      ]
  in
  ( nest,
    [ (c, [ batches; n; n ]); (a, [ batches; n; n ]); (b, [ batches; n; n ]) ] )
