module Program = Mlo_ir.Program

let spec ~name ~description ~program ~sim_program ~candidates ~domain
    ~data_kb ~solution:(h, b, e) ~exec:(o, he, be, ee) =
  {
    Spec.name;
    description;
    program;
    sim_program;
    candidates;
    paper_domain_size = domain;
    paper_data_kb = data_kb;
    paper_solution =
      { Spec.heuristic_s = h; base_s = b; enhanced_s = e };
    paper_exec =
      {
        Spec.original_s = o;
        heuristic_exec_s = he;
        base_exec_s = be;
        enhanced_exec_s = ee;
      };
  }

(* ------------------------------------------------------------------ *)
(* MxM: D = A * B * C via temporary T1 (hand-built)                     *)
(* ------------------------------------------------------------------ *)

let mxm_program ~n =
  let init_t1, req0 = Kernels.fill ~name:"init_t1" ~n ~dst:"T1" in
  let mm1, req1 = Kernels.matmul ~name:"mm1" ~n ~c:"T1" ~a:"A" ~b:"B" in
  let init_d, req2 = Kernels.fill ~name:"init_d" ~n ~dst:"D" in
  let mm2, req3 = Kernels.matmul ~name:"mm2" ~n ~c:"D" ~a:"T1" ~b:"C" in
  let scale_d, req4 = Kernels.row_scale ~name:"scale_d" ~n ~dst:"D" in
  let arrays = Kernels.declare (req0 @ req1 @ req2 @ req3 @ req4) in
  Program.make ~name:"MxM" arrays [ init_t1; mm1; init_d; mm2; scale_d ]

let mxm () =
  let program = mxm_program ~n:245 in
  spec ~name:"MxM" ~description:"triple matrix multiplication"
    ~program
    ~sim_program:(mxm_program ~n:128)
    ~candidates:
      (Candidates.by_position program
         [ (3, Candidates.palette6); (2, Candidates.palette8) ])
    ~domain:34 ~data_kb:1173.56
    ~solution:(5.18, 36.62, 9.24)
    ~exec:(69.31, 28.33, 28.33, 28.33)

(* ------------------------------------------------------------------ *)
(* Generator-based workloads                                            *)
(* ------------------------------------------------------------------ *)

let generated params ~description ~domain ~data_kb ~solution ~exec =
  let program = Random_program.generate params in
  let sim_program =
    if params.Random_program.sim_extent = params.Random_program.extent then
      program
    else Random_program.generate_sim params
  in
  spec ~name:params.Random_program.name ~description ~program ~sim_program
    ~candidates:(Candidates.pad_to_domain program ~target:domain)
    ~domain ~data_kb ~solution ~exec

let med_im04 () =
  generated
    {
      Random_program.name = "Med-Im04";
      seed = 104;
      num_arrays = 52;
      num_nests = 100;
      extent = 64;
      sim_extent = 64;
      min_arrays_per_nest = 2;
      max_arrays_per_nest = 3;
      conflict_percent = 25;
      skew_percent = 55;
      temporal_percent = 30;
      elem_size = 4;
      group_size = 0;
      twin_percent = 100;
      palette_size = 0;
      ref_conflict_percent = 0;
      nest_depth = 2;
      shift_nests = 0;
    }
    ~description:"medical image reconstruction" ~domain:258 ~data_kb:825.55
    ~solution:(7.14, 97.34, 12.22)
    ~exec:(204.27, 128.14, 82.55, 81.07)

let radar () =
  generated
    {
      Random_program.name = "Radar";
      seed = 7;
      num_arrays = 57;
      num_nests = 300;
      extent = 64;
      sim_extent = 64;
      min_arrays_per_nest = 2;
      max_arrays_per_nest = 3;
      conflict_percent = 30;
      skew_percent = 75;
      temporal_percent = 20;
      elem_size = 4;
      group_size = 0;
      twin_percent = 100;
      palette_size = 0;
      ref_conflict_percent = 0;
      nest_depth = 2;
      shift_nests = 0;
    }
    ~description:"radar imaging" ~domain:422 ~data_kb:905.28
    ~solution:(11.33, 129.51, 53.81)
    ~exec:(192.44, 110.78, 83.92, 85.15)

let shape () =
  generated
    {
      Random_program.name = "Shape";
      seed = 656;
      num_arrays = 80;
      num_nests = 420;
      extent = 64;
      sim_extent = 64;
      min_arrays_per_nest = 2;
      max_arrays_per_nest = 3;
      conflict_percent = 35;
      skew_percent = 90;
      temporal_percent = 15;
      elem_size = 4;
      group_size = 0;
      twin_percent = 100;
      palette_size = 0;
      ref_conflict_percent = 0;
      nest_depth = 2;
      shift_nests = 0;
    }
    ~description:"pattern recognition and shape analysis" ~domain:656
    ~data_kb:1284.06
    ~solution:(16.52, 197.17, 82.06)
    ~exec:(233.58, 140.30, 106.45, 106.45)

let track () =
  generated
    {
      Random_program.name = "Track";
      seed = 388;
      num_arrays = 47;
      num_nests = 360;
      extent = 64;
      sim_extent = 64;
      min_arrays_per_nest = 2;
      max_arrays_per_nest = 3;
      conflict_percent = 35;
      skew_percent = 90;
      temporal_percent = 15;
      elem_size = 4;
      group_size = 0;
      twin_percent = 100;
      palette_size = 0;
      ref_conflict_percent = 0;
      nest_depth = 2;
      shift_nests = 0;
    }
    ~description:"visual tracking control" ~domain:388 ~data_kb:744.80
    ~solution:(10.09, 155.02, 68.50)
    ~exec:(231.00, 127.61, 97.28, 95.30)

let all () = [ med_im04 (); mxm (); radar (); shape (); track () ]

(* ------------------------------------------------------------------ *)
(* Scale family                                                         *)
(* ------------------------------------------------------------------ *)

(* Synthetic throughput workloads, not paper reproductions: the paper
   columns are zeroed and the candidate set is whatever the nests
   demand (no padding to a published domain size). *)
let scale ?seed ?group_size n =
  let params = Random_program.scale ?seed ?group_size n in
  let program = Random_program.generate params in
  let sim_program = Random_program.generate_sim params in
  spec ~name:params.Random_program.name
    ~description:
      (Printf.sprintf "scale family: %d arrays, %d+ nests, ~%d components"
         n params.Random_program.num_nests
         ((n + max 1 params.Random_program.group_size - 1)
         / max 1 params.Random_program.group_size))
    ~program ~sim_program
    ~candidates:(fun _ -> [])
    ~domain:0 ~data_kb:0.
    ~solution:(0., 0., 0.)
    ~exec:(0., 0., 0., 0.)

(* ------------------------------------------------------------------ *)
(* Hard family                                                          *)
(* ------------------------------------------------------------------ *)

(* Phase-transition workloads for the conflict-driven solver bench:
   three-deep nests over windows of an array ring, half the references
   scrambled ({!Random_program.hard}).  Like the scale family these
   reproduce no paper numbers, so the paper columns are zeroed and the
   candidate set is whatever the nests demand. *)
let hard ?seed n =
  let params = Random_program.hard ?seed n in
  let program = Random_program.generate params in
  let sim_program = Random_program.generate_sim params in
  spec ~name:params.Random_program.name
    ~description:
      (Printf.sprintf
         "hard family: %d arrays, %d deep nests on the array ring, near \
          the phase transition"
         n params.Random_program.num_nests)
    ~program ~sim_program
    ~candidates:(fun _ -> [])
    ~domain:0 ~data_kb:0.
    ~solution:(0., 0., 0.)
    ~exec:(0., 0., 0., 0.)

let by_name name =
  let target = String.lowercase_ascii name in
  match
    List.find_opt
      (fun s -> String.lowercase_ascii s.Spec.name = target)
      (all ())
  with
  | Some s -> s
  | None -> (
    (* "scale-N" / "hard-N" instantiate the synthetic families at N
       arrays *)
    match String.split_on_char '-' target with
    | [ "scale"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> scale n
      | Some _ | None -> raise Not_found)
    | [ "hard"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> hard n
      | Some _ | None -> raise Not_found)
    | _ -> raise Not_found)
