(** Candidate-layout palettes for network domains.

    The paper's Table 1 "Domain Size" counts the layouts each array may
    assume — the candidate set a compiler enumerates, not just the
    layouts some nest asks for.  These palettes are the canonical 2-D
    hyperplane families with small coefficients; benchmarks assign richer
    palettes to some arrays to reproduce the published search-space
    sizes. *)

val palette6 : Mlo_layout.Layout.t list
(** row, column, diagonal, anti-diagonal, (1 2), (2 1). *)

val palette8 : Mlo_layout.Layout.t list
(** {!palette6} plus (1 -2), (2 -1) — the generator's full demand set. *)

val palette10 : Mlo_layout.Layout.t list
(** {!palette8} plus (1 3), (3 1). *)

val palette12 : Mlo_layout.Layout.t list
(** {!palette10} plus (1 -3), (3 -1). *)

val palette : int -> Mlo_layout.Layout.t list
(** [palette n] is the first [n] layouts of the canonical 2-D enumeration:
    the eight classic families first (row, column, the two diagonals and
    the four (1 2)-style skews — the generator's full demand set), then
    coprime hyperplane vectors by increasing coefficient magnitude.
    Raises [Invalid_argument] if [n] exceeds the enumeration (88) or is
    not positive. *)

val pad_to_domain :
  Mlo_ir.Program.t -> target:int -> string -> Mlo_layout.Layout.t list
(** [pad_to_domain prog ~target] measures the strict (demand-only)
    network of [prog] and returns a candidate function that pads the
    per-array domains with high-coefficient layouts (never demanded by
    any restructuring, so constraints are unaffected except through
    wildcards) until the total domain size is exactly [target].  The
    padding is spread round-robin over the arrays in declaration order.
    Raises [Invalid_argument] if the strict network already exceeds
    [target] or the deficit cannot be covered. *)

val by_position :
  Mlo_ir.Program.t ->
  (int * Mlo_layout.Layout.t list) list ->
  string ->
  Mlo_layout.Layout.t list
(** [by_position prog plan] assigns palettes by declaration order:
    [plan = \[(k1, p1); (k2, p2); ...\]] gives the first [k1] arrays
    palette [p1], the next [k2] palette [p2], and so on; arrays beyond
    the plan (and unknown names) get the last palette of the plan.
    Raises [Invalid_argument] on an empty plan. *)
