module Intvec = Mlo_linalg.Intvec
module Affine = Mlo_ir.Affine
module Access = Mlo_ir.Access
module Loop_nest = Mlo_ir.Loop_nest
module Array_info = Mlo_ir.Array_info
module Program = Mlo_ir.Program
module Hyperplane = Mlo_layout.Hyperplane
module Layout = Mlo_layout.Layout
module Rng = Mlo_csp.Rng

type params = {
  name : string;
  seed : int;
  num_arrays : int;
  num_nests : int;
  extent : int;
  sim_extent : int;
  min_arrays_per_nest : int;
  max_arrays_per_nest : int;
  conflict_percent : int;
  skew_percent : int;
  temporal_percent : int;
  elem_size : int;
  group_size : int;
  twin_percent : int;
  palette_size : int;
  ref_conflict_percent : int;
  nest_depth : int;
  shift_nests : int;
}

let default =
  {
    name = "random";
    seed = 1;
    num_arrays = 8;
    num_nests = 12;
    extent = 64;
    sim_extent = 64;
    min_arrays_per_nest = 2;
    max_arrays_per_nest = 3;
    conflict_percent = 30;
    skew_percent = 30;
    temporal_percent = 30;
    elem_size = 4;
    group_size = 0;
    twin_percent = 100;
    palette_size = 0;
    ref_conflict_percent = 0;
    nest_depth = 2;
    shift_nests = 0;
  }

(* The scale family: component-rich programs from tens to thousands of
   arrays.  Grouping arrays into pools of [group_size] makes the
   extracted network decompose into at least [num_arrays / group_size]
   connected components (arrays of different groups never share a nest),
   which is the shape whole-program inputs actually have — and the shape
   the parallel component solver feeds on.  Nest count grows at 2/5 the
   array count so per-group constraint density stays near the paper's
   benchmarks; [sim_extent] is halved to keep trace-driven validation of
   the big instances affordable. *)
let scale ?(seed = 11) ?(group_size = 8) num_arrays =
  {
    name = Printf.sprintf "scale-%d" num_arrays;
    seed = seed + num_arrays;
    num_arrays;
    num_nests = max 8 (2 * num_arrays / 5);
    extent = 64;
    sim_extent = 32;
    min_arrays_per_nest = 2;
    max_arrays_per_nest = 4;
    conflict_percent = 30;
    skew_percent = 60;
    temporal_percent = 20;
    elem_size = 4;
    group_size;
    twin_percent = 100;
    palette_size = 0;
    ref_conflict_percent = 0;
    nest_depth = 2;
    shift_nests = max 1 (num_arrays / 10);
  }

(* The hard family: one dense co-reference component near the
   satisfiability phase transition.  Nests are 3-deep over a 3-layout
   palette, so every legal loop order induces one of three layout
   demands per reference and the extracted pair constraints become
   matching-like relations in which EVERY value keeps a support — arc
   consistency and forward checking are blind to them, and the search
   must discover globally-inconsistent loop-order choices deep in the
   tree.  Most references put the planted (intended) layout on the
   innermost loop; [ref_conflict_percent] of them scramble their slot
   order, which breaks the planted solution locally and tunes the
   instance toward the transition.  This is the regime where plain
   conflict-directed backjumping rediscovers the same deep conflicts
   endlessly while nogood learning prunes them once. *)
let hard ?(seed = 23) num_arrays =
  {
    name = Printf.sprintf "hard-%d" num_arrays;
    seed = seed + (3 * num_arrays);
    num_arrays;
    num_nests = 2 * num_arrays;
    extent = 64;
    sim_extent = 32;
    min_arrays_per_nest = 3;
    max_arrays_per_nest = 4;
    conflict_percent = 0;
    skew_percent = 0;
    temporal_percent = 10;
    elem_size = 4;
    group_size = 0;
    twin_percent = 0;
    palette_size = 3;
    ref_conflict_percent = 50;
    nest_depth = 3;
    shift_nests = 0;
  }

(* The 2-D layout palette of the paper's examples: row-major,
   column-major, both diagonals, and the skewed families the Section 3
   network uses (e.g. (1 2)). *)
let palette =
  [|
    [| 1; 0 |];
    [| 0; 1 |];
    [| 1; -1 |];
    [| 1; 1 |];
    [| 1; 2 |];
    [| 2; 1 |];
    [| 1; -2 |];
    [| 2; -1 |];
  |]

let array_name q = Printf.sprintf "Q%d" (q + 1)

(* The layouts this configuration draws from: the first [palette_size]
   entries when positive (tight domains — every nest competes over the
   same few layouts), the whole palette otherwise. *)
let palette_for p =
  if p.palette_size > 0 then
    Array.sub palette 0 (min p.palette_size (Array.length palette))
  else palette

let intended_vector p q =
  (* stable per-array draw, independent of nest generation *)
  let rng = Rng.create ((p.seed * 7919) + q) in
  let pal = palette_for p in
  pal.(Rng.int rng (Array.length pal))

let intended_layouts p =
  List.init p.num_arrays (fun q ->
      ( array_name q,
        Layout.of_hyperplane (Hyperplane.make (intended_vector p q)) ))

(* Innermost-loop stride that makes layout [y] the preferred one:
   the canonical vector orthogonal to [y] in 2-D. *)
let delta_for y = Intvec.canonical [| y.(1); -y.(0) |]

let independent_outer rng ~skew_percent delta =
  let skewed = Rng.int rng 100 < skew_percent in
  let candidates =
    if skewed then
      [
        [| 1; 1 |]; [| 1; -1 |]; [| 1; 2 |]; [| 2; 1 |]; [| 1; -2 |];
        [| 2; -1 |]; [| 1; 0 |]; [| 0; 1 |];
      ]
    else [ [| 1; 0 |]; [| 0; 1 |] ]
  in
  let independent o = (o.(0) * delta.(1)) - (o.(1) * delta.(0)) <> 0 in
  let ok = List.filter independent candidates in
  List.nth ok (Rng.int rng (List.length ok))

(* A planned reference: one stride column per loop, outermost first.
   Two-loop nests keep the classic [outer; inner] shape (inner zero for
   temporal references); deeper nests carry one palette delta per loop
   so the demanded layout depends on which loop ends up innermost. *)
type planned_ref = {
  array_ : int;
  cols : Intvec.t array; (* length = nest depth *)
  fixed : int; (* minor index for rows with no loop dependence *)
  write : bool;
}

type planned_nest = { label : string; refs : planned_ref list; cheap : bool }

(* All arrays share one square extent; loop bounds shrink per nest so
   skewed references stay inside it: with per-row coefficient weight
   w = sum_l |cols_l(r)|, indices span w * (bound - 1), so the nest
   runs its loops to bound = (extent - 1) / w_max + 1. *)
let ref_weight r =
  let w d = Array.fold_left (fun acc c -> acc + abs c.(d)) 0 r.cols in
  max (max (w 0) (w 1)) 1

let nest_bound ~extent refs =
  let wmax = List.fold_left (fun acc r -> max acc (ref_weight r)) 1 refs in
  max 2 (((extent - 1) / wmax) + 1)

let plan p =
  let rng = Rng.create p.seed in
  let pick_arrays () =
    let k =
      p.min_arrays_per_nest
      + Rng.int rng (p.max_arrays_per_nest - p.min_arrays_per_nest + 1)
    in
    if p.group_size <= 0 || p.group_size >= p.num_arrays then begin
      let k = min k p.num_arrays in
      let perm = Rng.shuffled_init rng p.num_arrays in
      Array.to_list (Array.sub perm 0 k)
    end
    else begin
      (* grouped: a nest only ever references arrays of one group, so
         groups are independent components of the extracted network *)
      let ngroups = (p.num_arrays + p.group_size - 1) / p.group_size in
      let g = Rng.int rng ngroups in
      let lo = g * p.group_size in
      let size = min p.group_size (p.num_arrays - lo) in
      let k = min k size in
      let perm = Rng.shuffled_init rng size in
      List.init k (fun i -> lo + perm.(i))
    end
  in
  (* Deep nests draw contiguous windows on the array ring instead of
     independent samples: overlapping windows re-cover the same array
     pairs, so each pair constraint is a union of several distinct
     matchings (loose, arc-consistent relations) rather than a single
     tight bijection, and the constraint graph is a ring of short
     chords — the bounded-width shape on which chronological search
     keeps re-solving the same subproblems while learned nogoods cache
     them. *)
  let pick_window () =
    let k =
      p.min_arrays_per_nest
      + Rng.int rng (p.max_arrays_per_nest - p.min_arrays_per_nest + 1)
    in
    let k = min k p.num_arrays in
    let start = Rng.int rng p.num_arrays in
    List.init k (fun i -> (start + i) mod p.num_arrays)
  in
  (* [conflict] is consulted once per non-temporal reference: per-nest
     modes pass a constant, the mixed mode (ref_conflict_percent > 0)
     passes a fresh draw — per-reference mixing is what keeps demands
     overlapping across nests instead of scattering wholesale. *)
  let make_refs arrays_chosen ~conflict ~allow_temporal =
    List.mapi
      (fun pos q ->
        if allow_temporal && Rng.int rng 100 < p.temporal_percent then begin
          (* innermost-invariant reference: no layout demand, so the
             restructurings that see it constrain only the other arrays
             (wildcard pairs in the network) *)
          let o = independent_outer rng ~skew_percent:p.skew_percent [| 0; 1 |] in
          {
            array_ = q;
            cols = [| o; [| 0; 0 |] |];
            fixed = Rng.int rng 4;
            write = pos = 0;
          }
        end
        else begin
          let y =
            if conflict () then begin
              let alternatives =
                Array.to_list (palette_for p)
                |> List.filter (fun v ->
                       not (Intvec.equal v (intended_vector p q)))
              in
              List.nth alternatives (Rng.int rng (List.length alternatives))
            end
            else intended_vector p q
          in
          let delta = delta_for y in
          let o = independent_outer rng ~skew_percent:p.skew_percent delta in
          { array_ = q; cols = [| o; delta |]; fixed = 0; write = pos = 0 }
        end)
      arrays_chosen
  in
  (* Deep references (nest_depth >= 3): one palette delta per loop, so
     under each legal loop order the reference demands the layout whose
     delta sits on the innermost loop.  The nests are read-only — no
     dependences, every loop order legal — so each nest contributes a
     full matching between its arrays' palettes: every domain value
     keeps a support in every pair constraint and arc consistency
     cannot see the inconsistencies, which live in the global choice of
     innermost loop per nest.  Aligned references put the intended
     layout on the last loop, so the original (identity) order is the
     planted one — and temporal references, whose single active column
     sits on the first loop, stay demand-free under it; with
     probability [ref_conflict_percent] a reference scrambles its
     slots instead, locally breaking the planted order. *)
  let make_refs_deep arrays_chosen =
    let pal = palette_for p in
    let depth = max 2 (min p.nest_depth (Array.length pal)) in
    List.map
      (fun q ->
        if Rng.int rng 100 < p.temporal_percent then begin
          (* one active column: innermost-invariant (no demand) except
             under the orders that rotate that column innermost *)
          let o = delta_for pal.(Rng.int rng (Array.length pal)) in
          let cols =
            Array.init depth (fun l -> if l = 0 then o else [| 0; 0 |])
          in
          { array_ = q; cols; fixed = Rng.int rng 4; write = false }
        end
        else begin
          let y0 = intended_vector p q in
          let rest =
            Array.of_list
              (List.filter
                 (fun v -> not (Intvec.equal v y0))
                 (Array.to_list pal))
          in
          let perm = Rng.shuffled_init rng (Array.length rest) in
          let slots =
            Array.init depth (fun l ->
                if l = depth - 1 then y0 else rest.(perm.(l)))
          in
          if Rng.int rng 100 < p.ref_conflict_percent then begin
            let sp = Rng.shuffled_init rng depth in
            let orig = Array.copy slots in
            Array.iteri (fun l _ -> slots.(l) <- orig.(sp.(l))) slots
          end;
          {
            array_ = q;
            cols = Array.map delta_for slots;
            fixed = 0;
            write = false;
          }
        end)
      arrays_chosen
  in
  let nests = ref [] in
  for n = 0 to p.num_nests - 1 do
    if p.nest_depth >= 3 then
      let arrays_chosen = pick_window () in
      (* deep regime: hardness comes from the per-nest innermost-loop
         choice, not from per-nest conflicts or twins *)
      nests :=
        { label = Printf.sprintf "deep%d" n;
          refs = make_refs_deep arrays_chosen;
          cheap = false }
        :: !nests
    else begin
    let arrays_chosen = pick_arrays () in
    if p.ref_conflict_percent > 0 then begin
      (* mixed mode: every nest blends intended and conflicting pulls at
         reference granularity; no twins, satisfiability is statistical
         (the hard family's phase-transition regime) *)
      let refs =
        make_refs arrays_chosen
          ~conflict:(fun () -> Rng.int rng 100 < p.ref_conflict_percent)
          ~allow_temporal:true
      in
      nests := { label = Printf.sprintf "mixed%d" n; refs; cheap = false } :: !nests
    end
    else begin
    let conflicting = Rng.int rng 100 < p.conflict_percent in
    if conflicting then begin
      (* expensive conflicting nest ... *)
      let refs =
        make_refs arrays_chosen ~conflict:(fun () -> true) ~allow_temporal:true
      in
      nests :=
        { label = Printf.sprintf "conflict%d" n; refs; cheap = false } :: !nests;
      (* ... plus (with probability [twin_percent]) its cheaper aligned
         twin over the same arrays, keeping the intended combination
         available in every constraint the conflicting nest creates.
         The twin never draws temporal references: it must anchor the
         intended pair for every array pair of the nest.  The
         short-circuit matters: at the default 100% no random draw is
         consumed, so classic workloads generate bit-identically. *)
      if p.twin_percent >= 100 || Rng.int rng 100 < p.twin_percent then begin
        let twin_refs =
          make_refs arrays_chosen ~conflict:(fun () -> false)
            ~allow_temporal:false
        in
        nests :=
          { label = Printf.sprintf "aligned%d_twin" n;
            refs = twin_refs;
            cheap = true }
          :: !nests
      end
    end
    else begin
      let refs =
        make_refs arrays_chosen ~conflict:(fun () -> false) ~allow_temporal:true
      in
      nests := { label = Printf.sprintf "aligned%d" n; refs; cheap = false } :: !nests
    end
    end
    end
  done;
  List.rev !nests

(* Materialize index expressions for a reference at a given loop bound:
   constants lift negative strides back into [0, extent). *)
let reference_indices ~bound r =
  List.init 2 (fun d ->
      let coeffs = Array.map (fun c -> c.(d)) r.cols in
      let neg_magnitude =
        Array.fold_left (fun acc c -> acc + max 0 (-c)) 0 coeffs
      in
      let lift =
        if Array.for_all (fun c -> c = 0) coeffs then r.fixed
        else neg_magnitude * (bound - 1)
      in
      Affine.{ coeffs; const = lift })

let loop_vars = [| "i"; "j"; "k"; "l"; "m"; "n" |]

(* Windowed-update nests (the [shift_nests] axis): store Q[i+b][j],
   load Q[i][j+1] over i, j in [0, b) with b = extent/2.  The pair is
   uniform with distance (b, -1) — beyond the i trip count, so the
   exact dependence engine proves independence and frees the
   interchange, where a bounds-blind analysis pins the nest to its
   source order.  Each nest references a single array, so it adds no
   pair constraints: component structure and satisfiability of the
   classic nests are untouched.  Deterministic and RNG-free, so
   [shift_nests = 0] configurations generate bit-identically to the
   pre-shift family. *)
let shift_nest p ~extent s =
  let b = max 1 (extent / 2) in
  let q = s mod p.num_arrays in
  let loops =
    [
      { Loop_nest.var = "i"; lo = 0; hi = b };
      { Loop_nest.var = "j"; lo = 0; hi = b };
    ]
  in
  let store =
    Access.make Access.Write (array_name q)
      [
        Affine.{ coeffs = [| 1; 0 |]; const = b };
        Affine.{ coeffs = [| 0; 1 |]; const = 0 };
      ]
  in
  let load =
    Access.make Access.Read (array_name q)
      [
        Affine.{ coeffs = [| 1; 0 |]; const = 0 };
        Affine.{ coeffs = [| 0; 1 |]; const = 1 };
      ]
  in
  Loop_nest.make ~name:(Printf.sprintf "shift%d" s) loops [ store; load ]

let realize p ~extent =
  let planned = plan p in
  let arrays =
    List.init p.num_arrays (fun q ->
        Array_info.make ~elem_size:p.elem_size (array_name q) [ extent; extent ])
  in
  let nests =
    List.map
      (fun pn ->
        let bound = nest_bound ~extent pn.refs in
        let bound = if pn.cheap then max 2 (bound / 2) else bound in
        let depth =
          match pn.refs with r :: _ -> Array.length r.cols | [] -> 2
        in
        let loops =
          List.init depth (fun l ->
              let var =
                if l < Array.length loop_vars then loop_vars.(l)
                else Printf.sprintf "i%d" l
              in
              { Loop_nest.var; lo = 0; hi = bound })
        in
        let accesses =
          List.map
            (fun r ->
              let kind = if r.write then Access.Write else Access.Read in
              Access.make kind (array_name r.array_)
                (reference_indices ~bound r))
            pn.refs
        in
        Loop_nest.make ~name:pn.label loops accesses)
      planned
  in
  let shifts = List.init (max 0 p.shift_nests) (shift_nest p ~extent) in
  Program.make ~name:p.name arrays (nests @ shifts)

let generate p = realize p ~extent:p.extent
let generate_sim p = realize p ~extent:p.sim_extent
