module Intvec = Mlo_linalg.Intvec
module Affine = Mlo_ir.Affine
module Access = Mlo_ir.Access
module Loop_nest = Mlo_ir.Loop_nest
module Array_info = Mlo_ir.Array_info
module Program = Mlo_ir.Program
module Hyperplane = Mlo_layout.Hyperplane
module Layout = Mlo_layout.Layout
module Rng = Mlo_csp.Rng

type params = {
  name : string;
  seed : int;
  num_arrays : int;
  num_nests : int;
  extent : int;
  sim_extent : int;
  min_arrays_per_nest : int;
  max_arrays_per_nest : int;
  conflict_percent : int;
  skew_percent : int;
  temporal_percent : int;
  elem_size : int;
  group_size : int;
}

let default =
  {
    name = "random";
    seed = 1;
    num_arrays = 8;
    num_nests = 12;
    extent = 64;
    sim_extent = 64;
    min_arrays_per_nest = 2;
    max_arrays_per_nest = 3;
    conflict_percent = 30;
    skew_percent = 30;
    temporal_percent = 30;
    elem_size = 4;
    group_size = 0;
  }

(* The scale family: component-rich programs from tens to thousands of
   arrays.  Grouping arrays into pools of [group_size] makes the
   extracted network decompose into at least [num_arrays / group_size]
   connected components (arrays of different groups never share a nest),
   which is the shape whole-program inputs actually have — and the shape
   the parallel component solver feeds on.  Nest count grows at 2/5 the
   array count so per-group constraint density stays near the paper's
   benchmarks; [sim_extent] is halved to keep trace-driven validation of
   the big instances affordable. *)
let scale ?(seed = 11) ?(group_size = 8) num_arrays =
  {
    name = Printf.sprintf "scale-%d" num_arrays;
    seed = seed + num_arrays;
    num_arrays;
    num_nests = max 8 (2 * num_arrays / 5);
    extent = 64;
    sim_extent = 32;
    min_arrays_per_nest = 2;
    max_arrays_per_nest = 4;
    conflict_percent = 30;
    skew_percent = 60;
    temporal_percent = 20;
    elem_size = 4;
    group_size;
  }

(* The 2-D layout palette of the paper's examples: row-major,
   column-major, both diagonals, and the skewed families the Section 3
   network uses (e.g. (1 2)). *)
let palette =
  [|
    [| 1; 0 |];
    [| 0; 1 |];
    [| 1; -1 |];
    [| 1; 1 |];
    [| 1; 2 |];
    [| 2; 1 |];
    [| 1; -2 |];
    [| 2; -1 |];
  |]

let array_name q = Printf.sprintf "Q%d" (q + 1)

let intended_vector p q =
  (* stable per-array draw, independent of nest generation *)
  let rng = Rng.create ((p.seed * 7919) + q) in
  palette.(Rng.int rng (Array.length palette))

let intended_layouts p =
  List.init p.num_arrays (fun q ->
      ( array_name q,
        Layout.of_hyperplane (Hyperplane.make (intended_vector p q)) ))

(* Innermost-loop stride that makes layout [y] the preferred one:
   the canonical vector orthogonal to [y] in 2-D. *)
let delta_for y = Intvec.canonical [| y.(1); -y.(0) |]

let independent_outer rng ~skew_percent delta =
  let skewed = Rng.int rng 100 < skew_percent in
  let candidates =
    if skewed then
      [
        [| 1; 1 |]; [| 1; -1 |]; [| 1; 2 |]; [| 2; 1 |]; [| 1; -2 |];
        [| 2; -1 |]; [| 1; 0 |]; [| 0; 1 |];
      ]
    else [ [| 1; 0 |]; [| 0; 1 |] ]
  in
  let independent o = (o.(0) * delta.(1)) - (o.(1) * delta.(0)) <> 0 in
  let ok = List.filter independent candidates in
  List.nth ok (Rng.int rng (List.length ok))

(* A planned reference: outer and inner stride columns, or a temporal
   reference whose inner column is zero with a fixed minor index. *)
type planned_ref = {
  array_ : int;
  outer : Intvec.t;
  inner : Intvec.t; (* zero vector for temporal references *)
  fixed : int; (* minor index for rows with no loop dependence *)
  write : bool;
}

type planned_nest = { label : string; refs : planned_ref list; cheap : bool }

(* All arrays share one square extent; loop bounds shrink per nest so
   skewed references stay inside it: with per-row coefficient weight
   w = |outer_r| + |inner_r|, indices span w * (bound - 1), so the nest
   runs its loops to bound = (extent - 1) / w_max + 1. *)
let ref_weight r =
  let w d = abs r.outer.(d) + abs r.inner.(d) in
  max (max (w 0) (w 1)) 1

let nest_bound ~extent refs =
  let wmax = List.fold_left (fun acc r -> max acc (ref_weight r)) 1 refs in
  max 2 (((extent - 1) / wmax) + 1)

let plan p =
  let rng = Rng.create p.seed in
  let pick_arrays () =
    let k =
      p.min_arrays_per_nest
      + Rng.int rng (p.max_arrays_per_nest - p.min_arrays_per_nest + 1)
    in
    if p.group_size <= 0 || p.group_size >= p.num_arrays then begin
      let k = min k p.num_arrays in
      let perm = Rng.shuffled_init rng p.num_arrays in
      Array.to_list (Array.sub perm 0 k)
    end
    else begin
      (* grouped: a nest only ever references arrays of one group, so
         groups are independent components of the extracted network *)
      let ngroups = (p.num_arrays + p.group_size - 1) / p.group_size in
      let g = Rng.int rng ngroups in
      let lo = g * p.group_size in
      let size = min p.group_size (p.num_arrays - lo) in
      let k = min k size in
      let perm = Rng.shuffled_init rng size in
      List.init k (fun i -> lo + perm.(i))
    end
  in
  let make_refs arrays_chosen ~conflicting ~allow_temporal =
    List.mapi
      (fun pos q ->
        if allow_temporal && Rng.int rng 100 < p.temporal_percent then begin
          (* innermost-invariant reference: no layout demand, so the
             restructurings that see it constrain only the other arrays
             (wildcard pairs in the network) *)
          let o = independent_outer rng ~skew_percent:p.skew_percent [| 0; 1 |] in
          {
            array_ = q;
            outer = o;
            inner = [| 0; 0 |];
            fixed = Rng.int rng 4;
            write = pos = 0;
          }
        end
        else begin
          let y =
            if conflicting then begin
              let alternatives =
                Array.to_list palette
                |> List.filter (fun v ->
                       not (Intvec.equal v (intended_vector p q)))
              in
              List.nth alternatives (Rng.int rng (List.length alternatives))
            end
            else intended_vector p q
          in
          let delta = delta_for y in
          let o = independent_outer rng ~skew_percent:p.skew_percent delta in
          { array_ = q; outer = o; inner = delta; fixed = 0; write = pos = 0 }
        end)
      arrays_chosen
  in
  let nests = ref [] in
  for n = 0 to p.num_nests - 1 do
    let arrays_chosen = pick_arrays () in
    let conflicting = Rng.int rng 100 < p.conflict_percent in
    if conflicting then begin
      (* expensive conflicting nest ... *)
      let refs = make_refs arrays_chosen ~conflicting:true ~allow_temporal:true in
      nests :=
        { label = Printf.sprintf "conflict%d" n; refs; cheap = false } :: !nests;
      (* ... plus its cheaper aligned twin over the same arrays, keeping
         the intended combination available in every constraint the
         conflicting nest creates.  The twin never draws temporal
         references: it must anchor the intended pair for every array
         pair of the nest. *)
      let twin_refs =
        make_refs arrays_chosen ~conflicting:false ~allow_temporal:false
      in
      nests :=
        { label = Printf.sprintf "aligned%d_twin" n; refs = twin_refs; cheap = true }
        :: !nests
    end
    else begin
      let refs =
        make_refs arrays_chosen ~conflicting:false ~allow_temporal:true
      in
      nests := { label = Printf.sprintf "aligned%d" n; refs; cheap = false } :: !nests
    end
  done;
  List.rev !nests

(* Materialize index expressions for a reference at a given loop bound:
   constants lift negative strides back into [0, extent). *)
let reference_indices ~bound r =
  List.init 2 (fun d ->
      let co = r.outer.(d) and cd = r.inner.(d) in
      let neg_magnitude = max 0 (-co) + max 0 (-cd) in
      let lift =
        if co = 0 && cd = 0 then r.fixed else neg_magnitude * (bound - 1)
      in
      Affine.{ coeffs = [| co; cd |]; const = lift })

let realize p ~extent =
  let planned = plan p in
  let arrays =
    List.init p.num_arrays (fun q ->
        Array_info.make ~elem_size:p.elem_size (array_name q) [ extent; extent ])
  in
  let nests =
    List.map
      (fun pn ->
        let bound = nest_bound ~extent pn.refs in
        let bound = if pn.cheap then max 2 (bound / 2) else bound in
        let loops =
          [
            { Loop_nest.var = "i"; lo = 0; hi = bound };
            { Loop_nest.var = "j"; lo = 0; hi = bound };
          ]
        in
        let accesses =
          List.map
            (fun r ->
              let kind = if r.write then Access.Write else Access.Read in
              Access.make kind (array_name r.array_)
                (reference_indices ~bound r))
            pn.refs
        in
        Loop_nest.make ~name:pn.label loops accesses)
      planned
  in
  Program.make ~name:p.name arrays nests

let generate p = realize p ~extent:p.extent
let generate_sim p = realize p ~extent:p.sim_extent
