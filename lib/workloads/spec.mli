(** Benchmark descriptors: a program plus the paper's published numbers.

    Each workload carries two versions of the same program: [program] at
    the full Table-1 data size (used for network extraction and the data
    size / domain size accounting) and [sim_program], identical in
    structure but with scaled extents, used for trace-driven simulation so
    Table 3 regenerates in seconds.  The published numbers are embedded so
    the benches can print paper-vs-measured side by side. *)

type solution_times = { heuristic_s : float; base_s : float; enhanced_s : float }
(** Paper Table 2 (seconds on the authors' 500 MHz Sparc). *)

type exec_times = {
  original_s : float;
  heuristic_exec_s : float;
  base_exec_s : float;
  enhanced_exec_s : float;
}
(** Paper Table 3 (simulated seconds). *)

type t = {
  name : string;
  description : string;
  program : Mlo_ir.Program.t;
  sim_program : Mlo_ir.Program.t;
  candidates : string -> Mlo_layout.Layout.t list;
      (** per-array candidate-layout palette, fed to
          {!Mlo_netgen.Build.build} so domains have the Table-1 sizes *)
  paper_domain_size : int;  (** Table 1 "Domain Size" *)
  paper_data_kb : float;  (** Table 1 "Data Size" in KB *)
  paper_solution : solution_times;
  paper_exec : exec_times;
}

val extract : ?relax:bool -> t -> Mlo_netgen.Build.t
(** The constraint network of [program] with this spec's candidate
    palettes. *)

val data_kb : t -> float
(** Measured data size of [program], in KB. *)

val pp : Format.formatter -> t -> unit
