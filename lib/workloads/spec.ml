type solution_times = { heuristic_s : float; base_s : float; enhanced_s : float }

type exec_times = {
  original_s : float;
  heuristic_exec_s : float;
  base_exec_s : float;
  enhanced_exec_s : float;
}

type t = {
  name : string;
  description : string;
  program : Mlo_ir.Program.t;
  sim_program : Mlo_ir.Program.t;
  candidates : string -> Mlo_layout.Layout.t list;
  paper_domain_size : int;
  paper_data_kb : float;
  paper_solution : solution_times;
  paper_exec : exec_times;
}

let extract ?relax t =
  Mlo_obs.Trace.with_span ~cat:"workload" "extract"
    ~args:[ ("workload", Mlo_obs.Trace.Str t.name) ]
  @@ fun () -> Mlo_netgen.Build.build ?relax ~candidates:t.candidates t.program

let data_kb t =
  float_of_int (Mlo_ir.Program.data_size_bytes t.program) /. 1024.

let pp ppf t =
  Format.fprintf ppf "%s: %s (%d arrays, %d nests, %.2fKB)" t.name
    t.description
    (Array.length (Mlo_ir.Program.arrays t.program))
    (Array.length (Mlo_ir.Program.nests t.program))
    (data_kb t)
