module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Loop_nest = Mlo_ir.Loop_nest
module Access = Mlo_ir.Access
module Layout = Mlo_layout.Layout
module Hierarchy = Mlo_cachesim.Hierarchy
module Address_map = Mlo_cachesim.Address_map

type segment = { first_nest : int; last_nest : int }

let uniform_segments prog k =
  let n = Array.length (Program.nests prog) in
  if k < 1 || k > n then invalid_arg "Dynamic.uniform_segments: bad count";
  List.init k (fun s ->
      let first = s * n / k in
      let last = ((s + 1) * n / k) - 1 in
      { first_nest = first; last_nest = last })

let segment_program prog seg =
  let nests = Program.nests prog in
  let n = Array.length nests in
  if seg.first_nest < 0 || seg.last_nest >= n || seg.first_nest > seg.last_nest
  then invalid_arg "Dynamic.segment_program: bad segment";
  let sub =
    Array.to_list (Array.sub nests seg.first_nest (seg.last_nest - seg.first_nest + 1))
  in
  Program.make
    ~name:(Printf.sprintf "%s.seg%d-%d" (Program.name prog) seg.first_nest seg.last_nest)
    (Array.to_list (Program.arrays prog))
    sub

type plan = {
  segments : segment list;
  per_segment : (string * Layout.t) list list;
  changes : (int * string) list;
}

let touched_by prog seg name =
  let nests = Program.nests prog in
  let rec go i =
    i <= seg.last_nest
    && (List.mem name (Loop_nest.arrays_touched nests.(i)) || go (i + 1))
  in
  go seg.first_nest

let plan ?candidates ?max_checks ~seed prog ~segments =
  let solved =
    List.map
      (fun seg ->
        let sub = segment_program prog seg in
        let sol =
          Optimizer.optimize ?candidates ?max_checks (Optimizer.Enhanced seed) sub
        in
        (seg, sol.Optimizer.layouts))
      segments
  in
  (* arrays a segment does not touch keep their previous layout: remapping
     them would be pure waste, and the sub-solver's choice for them is
     arbitrary *)
  let per_segment =
    match solved with
    | [] -> []
    | (first_seg, first) :: rest ->
      ignore first_seg;
      let _, acc =
        List.fold_left
          (fun (prev, acc) (seg, cur) ->
            let merged =
              List.map
                (fun (name, layout) ->
                  if touched_by prog seg name then (name, layout)
                  else
                    match List.assoc_opt name prev with
                    | Some keep -> (name, keep)
                    | None -> (name, layout))
                cur
            in
            (merged, merged :: acc))
          (first, [ first ]) rest
      in
      List.rev acc
  in
  let changes =
    match per_segment with
    | [] -> []
    | first :: rest ->
      let _, changes =
        List.fold_left
          (fun (prev, acc) (idx, cur) ->
            let acc =
              List.fold_left
                (fun acc (name, layout) ->
                  match List.assoc_opt name prev with
                  | Some old when not (Layout.equal old layout) ->
                    (idx, name) :: acc
                  | Some _ | None -> acc)
                acc cur
            in
            (cur, acc))
          (first, [])
          (List.mapi (fun i l -> (i + 1, l)) rest)
      in
      List.rev changes
  in
  { segments; per_segment; changes }

(* ------------------------------------------------------------------ *)
(* Optimal segmentation                                                 *)
(* ------------------------------------------------------------------ *)

module Locality = Mlo_layout.Locality

let optimal_segments ?candidates ?max_checks ?(change_cost = 10.0) ~seed prog =
  let nests = Program.nests prog in
  let n = Array.length nests in
  if n > 32 then
    invalid_arg "Dynamic.optimal_segments: too many nests for exact DP";
  (* layouts of the enhanced solution for the segment [i..j], memoized *)
  let seg_layouts = Hashtbl.create 64 in
  (* [None] marks a candidate segment whose network could not be solved
     within budget: the DP prices it as infinitely expensive rather than
     aborting (single-nest segments always remain as a fallback). *)
  let layouts_of i j =
    match Hashtbl.find_opt seg_layouts (i, j) with
    | Some l -> l
    | None ->
      let l =
        match
          let sub = segment_program prog { first_nest = i; last_nest = j } in
          Optimizer.optimize ?candidates ?max_checks (Optimizer.Enhanced seed)
            sub
        with
        | sol -> Some sol.Optimizer.layouts
        | exception Optimizer.No_solution _ -> None
      in
      Hashtbl.replace seg_layouts (i, j) l;
      l
  in
  (* locality left on the table by a segment under its own layouts:
     unserved reference iterations, after each nest picks its best legal
     loop order *)
  let max_ref_score = 5 in
  let seg_penalty i j =
    match layouts_of i j with
    | None -> infinity
    | Some layouts ->
    let lookup name = List.assoc_opt name layouts in
    let total = ref 0.0 in
    for k = i to j do
      let v = Mlo_netgen.Select.best_variant nests.(k) lookup in
      let nest = v.Mlo_netgen.Variants.nest in
      let per_iter =
        Array.fold_left
          (fun acc a ->
            let s =
              match lookup (Access.array_name a) with
              | Some l -> Locality.score l a
              | None -> max_ref_score
            in
            acc + (max_ref_score - s))
          0 (Loop_nest.accesses nest)
      in
      total :=
        !total +. float_of_int (per_iter * Loop_nest.trip_count nest)
    done;
    !total
  in
  (* copy traffic paid when moving from segment [pi..pj] to [i..j] *)
  let transition (pi, pj) (i, j) =
    match (layouts_of pi pj, layouts_of i j) with
    | None, _ | _, None -> infinity
    | Some prev, Some cur ->
      Array.fold_left
        (fun acc info ->
          let name = Array_info.name info in
          if not (touched_by prog { first_nest = i; last_nest = j } name) then
            acc (* untouched arrays are not remapped (see plan) *)
          else
            match (List.assoc_opt name prev, List.assoc_opt name cur) with
            | Some a, Some b when not (Layout.equal a b) ->
              acc +. (change_cost *. float_of_int (Array_info.cells info))
            | _, _ -> acc)
        0.0 (Program.arrays prog)
  in
  (* g.(i).(j) = best cost covering [0..j] with last segment [i..j] *)
  let g = Array.make_matrix n n infinity in
  let choice = Array.make_matrix n n (-1) in
  for j = 0 to n - 1 do
    for i = 0 to j do
      let own = seg_penalty i j in
      if i = 0 then g.(i).(j) <- own
      else begin
        for i' = 0 to i - 1 do
          let c = g.(i').(i - 1) +. transition (i', i - 1) (i, j) +. own in
          if c < g.(i).(j) then begin
            g.(i).(j) <- c;
            choice.(i).(j) <- i'
          end
        done
      end
    done
  done;
  (* best last segment *)
  let best_i = ref 0 in
  for i = 1 to n - 1 do
    if g.(i).(n - 1) < g.(!best_i).(n - 1) then best_i := i
  done;
  let rec unwind i j acc =
    let seg = { first_nest = i; last_nest = j } in
    if i = 0 then seg :: acc
    else unwind choice.(i).(j) (i - 1) (seg :: acc)
  in
  unwind !best_i (n - 1) []

type report = {
  compute : Hierarchy.counters;
  copy_accesses : int;
  remaps : int;
}

(* Walk a nest, issuing every reference through the hierarchy at the
   addresses of the given map. *)
let run_nest hier amap nest =
  let accesses = Loop_nest.accesses nest in
  let names = Array.map Access.array_name accesses in
  Loop_nest.iter nest (fun iter ->
      Array.iteri
        (fun k a ->
          let element = Access.element_at a iter in
          ignore (Hierarchy.access hier (Address_map.address amap names.(k) element)))
        accesses)

(* Remap one array: read each element at its old address, write it at the
   new one. *)
let remap hier ~old_map ~new_map info =
  let name = Array_info.name info in
  let extents = Array_info.extents info in
  let rank = Array.length extents in
  let idx = Array.make rank 0 in
  let count = ref 0 in
  let rec go d =
    if d = rank then begin
      ignore (Hierarchy.access hier (Address_map.address old_map name idx));
      ignore (Hierarchy.access hier (Address_map.address new_map name idx));
      count := !count + 2
    end
    else
      for x = 0 to extents.(d) - 1 do
        idx.(d) <- x;
        go (d + 1)
      done
  in
  go 0;
  !count

let simulate_plan ?(config = Hierarchy.paper_config) prog plan =
  let hier = Hierarchy.create config in
  let copy_accesses = ref 0 in
  let remaps = ref 0 in
  let prev_map = ref None in
  List.iteri
    (fun i (seg, layouts) ->
      let lookup name = List.assoc_opt name layouts in
      let sub = segment_program prog seg in
      let restructured = Mlo_netgen.Select.restructure sub lookup in
      let amap = Address_map.build prog ~layouts:lookup in
      (match !prev_map with
      | None -> ()
      | Some (prev_amap, prev_layouts) ->
        Array.iter
          (fun info ->
            let name = Array_info.name info in
            let changed =
              match (List.assoc_opt name prev_layouts, lookup name) with
              | Some a, Some b -> not (Layout.equal a b)
              | _, _ -> false
            in
            if changed then begin
              incr remaps;
              copy_accesses :=
                !copy_accesses + remap hier ~old_map:prev_amap ~new_map:amap info
            end)
          (Program.arrays prog));
      ignore i;
      Array.iter (run_nest hier amap) (Program.nests restructured);
      prev_map := Some (amap, layouts))
    (List.combine plan.segments plan.per_segment);
  {
    compute = Hierarchy.counters hier;
    copy_accesses = !copy_accesses;
    remaps = !remaps;
  }
