(** Dynamic memory layouts (the paper's second future-work item).

    "We would like to expand our constraint network formulation to
    accommodate dynamic memory layouts, i.e., layouts that can change
    during execution based on the requirements of the different segments
    of the program."

    A program is split into contiguous segments of nests.  Each segment's
    sub-program gets its own constraint network and layout assignment;
    between consecutive segments every array whose layout changes is
    physically remapped (each element read from the old placement and
    written to the new one, through the simulated cache hierarchy), so
    the profit of a better per-segment layout is weighed against real
    copy traffic. *)

type segment = { first_nest : int; last_nest : int }
(** Inclusive range of nest indices (program order). *)

val uniform_segments : Mlo_ir.Program.t -> int -> segment list
(** [uniform_segments prog k] splits the nests into [k] contiguous
    segments of near-equal count.  Raises [Invalid_argument] if [k] is
    not in [1 .. nests]. *)

val segment_program : Mlo_ir.Program.t -> segment -> Mlo_ir.Program.t
(** The sub-program of one segment (all arrays declared, only the
    segment's nests).  Raises [Invalid_argument] on an out-of-range or
    empty segment. *)

type plan = {
  segments : segment list;
  per_segment : (string * Mlo_layout.Layout.t) list list;
      (** layout assignment per segment, same order as [segments] *)
  changes : (int * string) list;
      (** (segment index, array) pairs where a remap happens at the
          segment's entry *)
}

val plan :
  ?candidates:(string -> Mlo_layout.Layout.t list) ->
  ?max_checks:int ->
  seed:int ->
  Mlo_ir.Program.t ->
  segments:segment list ->
  plan
(** Solves each segment's network with the enhanced scheme.
    Raises {!Optimizer.No_solution} if some segment has none. *)

val optimal_segments :
  ?candidates:(string -> Mlo_layout.Layout.t list) ->
  ?max_checks:int ->
  ?change_cost:float ->
  seed:int ->
  Mlo_ir.Program.t ->
  segment list
(** Chooses segment boundaries by dynamic programming over a static cost
    model: each candidate segment is scored by how much locality its own
    enhanced-scheme layouts leave on the table (unserved references
    weighted by trip count), and each boundary pays [change_cost] cycles
    per element of every array whose layout changes (default 10.0,
    roughly one L1-miss round trip per copied element).  Exact under the
    model; O(nests^3) segment solves, so intended for programs with at
    most a few dozen nests (raises [Invalid_argument] above 32 nests).
    Feed the result to {!plan} / {!simulate_plan}. *)

type report = {
  compute : Mlo_cachesim.Hierarchy.counters;
      (** all traffic: segment execution plus remap copies *)
  copy_accesses : int;  (** accesses attributable to remapping *)
  remaps : int;  (** number of array remaps performed *)
}

val simulate_plan :
  ?config:Mlo_cachesim.Hierarchy.config ->
  Mlo_ir.Program.t ->
  plan ->
  report
(** Runs the segments through one persistent cache hierarchy, performing
    the remap copies between segments.  Each segment's nests run in their
    best legal loop order for that segment's layouts. *)
