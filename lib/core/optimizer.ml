module Program = Mlo_ir.Program
module Layout = Mlo_layout.Layout
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Stats = Mlo_csp.Stats
module Build = Mlo_netgen.Build
module Select = Mlo_netgen.Select
module Propagation = Mlo_heuristic.Propagation
module Simulate = Mlo_cachesim.Simulate
module Hierarchy = Mlo_cachesim.Hierarchy
module Trace = Mlo_obs.Trace

type scheme =
  | Heuristic
  | Base of int
  | Enhanced of int
  | Enhanced_ac of int
  | Custom of Solver.config
  | Cdl of Mlo_csp.Cdl.config
  | Portfolio of Mlo_csp.Portfolio.config
  | Bnb of Mlo_csp.Bnb.config

type objective = Estimated_misses | Distinct_lines

type solution = {
  layouts : (string * Layout.t) list;
  restructured : Program.t;
  solver_stats : Stats.t option;
  heuristic_evaluations : int option;
  pruned_values : Mlo_netgen.Prune.info option;
  portfolio_winner : string option;
  objective_value : float option;
  elapsed_s : float;
}

exception No_solution of string

let config_of_scheme ?max_checks = function
  | Heuristic | Cdl _ | Portfolio _ | Bnb _ -> None
  | Base seed -> Some (Schemes.base ~seed ?max_checks ())
  | Enhanced seed -> Some (Schemes.enhanced ~seed ?max_checks ())
  | Enhanced_ac seed -> Some (Schemes.enhanced_with_ac ~seed ?max_checks ())
  | Custom c -> Some c

let scheme_label = function
  | Heuristic -> "heuristic"
  | Base _ -> "base"
  | Enhanced _ -> "enhanced"
  | Enhanced_ac _ -> "enhanced-ac"
  | Custom _ -> "custom"
  | Cdl _ -> "cdl"
  | Portfolio _ -> "portfolio"
  | Bnb _ -> "bnb"

let objective_label = function
  | Estimated_misses -> "misses"
  | Distinct_lines -> "lines"

let metric_of_objective = function
  | Estimated_misses -> Mlo_analysis.Locality.Misses
  | Distinct_lines -> Mlo_analysis.Locality.Lines

(* The separable layout charge the branch-and-bound scheme minimizes:
   one array under one candidate layout, every other array at its
   default, summed over the nests (Locality.profiler memoizes, so
   repeated queries from component solves pay hashtable lookups). *)
let layout_cost ?geometry ~objective prog =
  let prof =
    Mlo_analysis.Locality.profiler ?geometry
      ~metric:(metric_of_objective objective) prog
  in
  fun ~array_name ~layout ->
    Array.fold_left ( +. ) 0.0 (prof ~array_name ~layout)

let objective_cost ?geometry ?(objective = Estimated_misses) prog layouts =
  let cost = layout_cost ?geometry ~objective prog in
  List.fold_left
    (fun acc (name, layout) -> acc +. cost ~array_name:name ~layout)
    0.0 layouts

let optimize ?candidates ?max_checks ?(prune_dominated = false) ?(domains = 1)
    ?(objective = Estimated_misses) scheme prog =
  Trace.with_span ~cat:"optimizer" "optimize"
    ~args:
      [
        ("program", Trace.Str (Program.name prog));
        ("scheme", Trace.Str (scheme_label scheme));
      ]
  @@ fun () ->
  let t0 = Mlo_csp.Clock.wall_s () in
  match scheme with
  | Heuristic ->
    let r =
      Trace.with_span ~cat:"optimizer" "heuristic" (fun () ->
          Propagation.optimize prog)
    in
    let lookup name = Propagation.lookup r name in
    let restructured =
      Trace.with_span ~cat:"optimizer" "restructure" (fun () ->
          Select.restructure prog lookup)
    in
    {
      layouts = r.Propagation.layouts;
      restructured;
      solver_stats = None;
      heuristic_evaluations = Some r.Propagation.evaluations;
      pruned_values = None;
      portfolio_winner = None;
      objective_value = None;
      elapsed_s = Mlo_csp.Clock.wall_s () -. t0;
    }
  | Base _ | Enhanced _ | Enhanced_ac _ | Custom _ | Cdl _ | Portfolio _
  | Bnb _ ->
    let build =
      Trace.with_span ~cat:"optimizer" "build-network" (fun () ->
          Build.build ?candidates prog)
    in
    let build, prune_info =
      if prune_dominated then
        let b, info = Mlo_netgen.Prune.apply build in
        (b, Some info)
      else (build, None)
    in
    (* Component-wise search: independent subnetworks are solved
       separately (decision-equivalent to the whole-network solve; a
       single-component network takes the identical path), across
       [domains] worker domains when more than one is requested.  The
       portfolio instead races its members on the whole network, using
       [domains] to size the racing pool. *)
    let result, winner =
      match scheme with
      | Cdl cfg ->
        let cfg =
          match max_checks with
          | None -> cfg
          | Some m -> { cfg with Mlo_csp.Cdl.max_checks = Some m }
        in
        ( Mlo_csp.Cdl.solve_components ~config:cfg ~domains
            build.Build.network,
          None )
      | Portfolio cfg ->
        let cfg =
          match max_checks with
          | None -> cfg
          | Some m -> { cfg with Mlo_csp.Portfolio.max_checks = Some m }
        in
        let r =
          Mlo_csp.Portfolio.race ~config:cfg ~domains
            (Mlo_csp.Network.compile build.Build.network)
        in
        ( {
            Solver.outcome = r.Mlo_csp.Portfolio.outcome;
            stats = r.Mlo_csp.Portfolio.stats;
          },
          r.Mlo_csp.Portfolio.winner )
      | Bnb cfg ->
        let cfg =
          match max_checks with
          | None -> cfg
          | Some m -> { cfg with Mlo_csp.Bnb.max_checks = Some m }
        in
        let cost_of_layout = layout_cost ~objective prog in
        let net = build.Build.network in
        let cost name v =
          cost_of_layout ~array_name:name
            ~layout:
              (Mlo_csp.Network.value net (Build.var_of_array build name) v)
        in
        ( Trace.with_span ~cat:"optimizer" "bnb"
            ~args:[ ("objective", Trace.Str (objective_label objective)) ]
            (fun () ->
              Mlo_csp.Bnb.branch_and_bound ~config:cfg ~domains ~cost net),
          None )
      | Heuristic | Base _ | Enhanced _ | Enhanced_ac _ | Custom _ ->
        let config =
          Option.get (config_of_scheme ?max_checks scheme)
        in
        (Solver.solve_components ~config ~domains build.Build.network, None)
    in
    (match result.Solver.outcome with
    | Solver.Unsatisfiable ->
      let detail =
        match Mlo_analysis.Netcheck.unsat_core build.Build.network with
        | Some (core, wiped) ->
          let name = Mlo_csp.Network.name build.Build.network in
          Printf.sprintf
            "; no arc-consistent value for %s, minimal unsat core: %s"
            (name wiped)
            (String.concat ", "
               (List.map (fun (i, j) -> name i ^ "-" ^ name j) core))
        | None -> ""
      in
      raise
        (No_solution (Program.name prog ^ ": network unsatisfiable" ^ detail))
    | Solver.Aborted ->
      raise (No_solution (Program.name prog ^ ": check budget exhausted"))
    | Solver.Solution assignment ->
      let layouts = Build.assignment_layouts build assignment in
      let lookup name = List.assoc_opt name layouts in
      let restructured =
        Trace.with_span ~cat:"optimizer" "restructure" (fun () ->
            Select.restructure prog lookup)
      in
      let objective_value =
        match scheme with
        | Bnb _ -> Some (objective_cost ~objective prog layouts)
        | _ -> None
      in
      {
        layouts;
        restructured;
        solver_stats = Some result.Solver.stats;
        heuristic_evaluations = None;
        pruned_values = prune_info;
        portfolio_winner = winner;
        objective_value;
        elapsed_s = Mlo_csp.Clock.wall_s () -. t0;
      })

let lookup sol name = List.assoc_opt name sol.layouts

let simulate ?config sol =
  Simulate.run ?config sol.restructured ~layouts:(lookup sol)

let simulate_original ?config prog =
  Simulate.run ?config prog ~layouts:(fun _ -> None)

let simulate_many ?config ?domains sols =
  Simulate.run_batch ?config ?domains
    (List.map (fun sol -> (sol.restructured, lookup sol)) sols)

let simulate_versions ?config ?domains prog sols =
  match
    Simulate.run_batch ?config ?domains
      ((prog, fun _ -> None)
      :: List.map (fun sol -> (sol.restructured, lookup sol)) sols)
  with
  | original :: optimized -> (original, optimized)
  | [] -> assert false
