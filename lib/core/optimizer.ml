module Program = Mlo_ir.Program
module Layout = Mlo_layout.Layout
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Stats = Mlo_csp.Stats
module Build = Mlo_netgen.Build
module Select = Mlo_netgen.Select
module Propagation = Mlo_heuristic.Propagation
module Simulate = Mlo_cachesim.Simulate
module Hierarchy = Mlo_cachesim.Hierarchy
module Trace = Mlo_obs.Trace

type scheme =
  | Heuristic
  | Base of int
  | Enhanced of int
  | Enhanced_ac of int
  | Custom of Solver.config
  | Cdl of Mlo_csp.Cdl.config
  | Portfolio of Mlo_csp.Portfolio.config
  | Bnb of Mlo_csp.Bnb.config

type objective = Estimated_misses | Distinct_lines

type solution = {
  layouts : (string * Layout.t) list;
  restructured : Program.t;
  solver_stats : Stats.t option;
  heuristic_evaluations : int option;
  pruned_values : Mlo_netgen.Prune.info option;
  portfolio_winner : string option;
  objective_value : float option;
  elapsed_s : float;
}

exception No_solution of string

let config_of_scheme ?max_checks = function
  | Heuristic | Cdl _ | Portfolio _ | Bnb _ -> None
  | Base seed -> Some (Schemes.base ~seed ?max_checks ())
  | Enhanced seed -> Some (Schemes.enhanced ~seed ?max_checks ())
  | Enhanced_ac seed -> Some (Schemes.enhanced_with_ac ~seed ?max_checks ())
  | Custom c -> Some c

let scheme_label = function
  | Heuristic -> "heuristic"
  | Base _ -> "base"
  | Enhanced _ -> "enhanced"
  | Enhanced_ac _ -> "enhanced-ac"
  | Custom _ -> "custom"
  | Cdl _ -> "cdl"
  | Portfolio _ -> "portfolio"
  | Bnb _ -> "bnb"

let objective_label = function
  | Estimated_misses -> "misses"
  | Distinct_lines -> "lines"

let metric_of_objective = function
  | Estimated_misses -> Mlo_analysis.Locality.Misses
  | Distinct_lines -> Mlo_analysis.Locality.Lines

(* The separable layout charge the branch-and-bound scheme minimizes:
   one array under one candidate layout, every other array at its
   default, summed over the nests (Locality.profiler memoizes, so
   repeated queries from component solves pay hashtable lookups). *)
let layout_cost ?geometry ~objective prog =
  let prof =
    Mlo_analysis.Locality.profiler ?geometry
      ~metric:(metric_of_objective objective) prog
  in
  fun ~array_name ~layout ->
    Array.fold_left ( +. ) 0.0 (prof ~array_name ~layout)

let objective_cost ?geometry ?(objective = Estimated_misses) prog layouts =
  let cost = layout_cost ?geometry ~objective prog in
  List.fold_left
    (fun acc (name, layout) -> acc +. cost ~array_name:name ~layout)
    0.0 layouts

let optimize ?candidates ?max_checks ?(prune_dominated = false) ?(domains = 1)
    ?(objective = Estimated_misses) ?proof scheme prog =
  Trace.with_span ~cat:"optimizer" "optimize"
    ~args:
      [
        ("program", Trace.Str (Program.name prog));
        ("scheme", Trace.Str (scheme_label scheme));
      ]
  @@ fun () ->
  let t0 = Mlo_csp.Clock.wall_s () in
  match scheme with
  | Heuristic ->
    let r =
      Trace.with_span ~cat:"optimizer" "heuristic" (fun () ->
          Propagation.optimize prog)
    in
    let lookup name = Propagation.lookup r name in
    let restructured =
      Trace.with_span ~cat:"optimizer" "restructure" (fun () ->
          Select.restructure prog lookup)
    in
    {
      layouts = r.Propagation.layouts;
      restructured;
      solver_stats = None;
      heuristic_evaluations = Some r.Propagation.evaluations;
      pruned_values = None;
      portfolio_winner = None;
      objective_value = None;
      elapsed_s = Mlo_csp.Clock.wall_s () -. t0;
    }
  | Base _ | Enhanced _ | Enhanced_ac _ | Custom _ | Cdl _ | Portfolio _
  | Bnb _ ->
    let build0 =
      Trace.with_span ~cat:"optimizer" "build-network" (fun () ->
          Build.build ?candidates prog)
    in
    let build, prune_info =
      if prune_dominated then
        let b, info = Mlo_netgen.Prune.apply build0 in
        (b, Some info)
      else (build0, None)
    in
    (* ---- proof logging -------------------------------------------
       Certificates are stated against the *original* network
       [build0], so everything the solvers report on the (possibly
       pruned) view is translated back through the survivor map.
       Per-component event streams are buffered by the engines and
       replayed serially, so the collection below is single-threaded
       even under [domains > 1]. *)
    let net0 = build0.Build.network in
    let netp = build.Build.network in
    let surv =
      match prune_info with
      | Some info -> fun i v -> info.Mlo_netgen.Prune.survivors.(i).(v)
      | None -> fun _ v -> v
    in
    let costs0 =
      (* separable cost table over the original domains, for incumbent
         steps and the verifier's bound checks *)
      lazy
        (let cost_of_layout = layout_cost ~objective prog in
         Array.init
           (Mlo_csp.Network.num_vars net0)
           (fun i ->
             let name = Mlo_csp.Network.name net0 i in
             Array.init (Mlo_csp.Network.domain_size net0 i) (fun v ->
                 cost_of_layout ~array_name:name
                   ~layout:(Mlo_csp.Network.value net0 i v))))
    in
    let comp_data :
        (int, int array * Mlo_verify.Proof.step list ref * Solver.outcome option ref)
        Hashtbl.t =
      Hashtbl.create 8
    in
    let on_event_fn ~comp ~vars ev =
      let _, steps_r, outcome_r =
        match Hashtbl.find_opt comp_data comp with
        | Some slot -> slot
        | None ->
          let slot = (vars, ref [], ref None) in
          Hashtbl.add comp_data comp slot;
          slot
      in
      match ev with
      | Solver.Learned { dead; lits } ->
        let glits = Array.map (fun (x, v) -> (vars.(x), surv vars.(x) v)) lits in
        steps_r :=
          Mlo_verify.Proof.Ng { comp; dead = vars.(dead); lits = glits }
          :: !steps_r
      | Solver.Incumbent { assignment } ->
        let glits = Array.mapi (fun x v -> (vars.(x), surv vars.(x) v)) assignment in
        let costs0 = Lazy.force costs0 in
        let cost =
          Array.fold_left (fun acc (x, v) -> acc +. costs0.(x).(v)) 0.0 glits
        in
        steps_r := Mlo_verify.Proof.Inc { comp; lits = glits; cost } :: !steps_r
      | Solver.Finished o -> outcome_r := Some o
    in
    let on_event = Option.map (fun _ -> on_event_fn) proof in
    let all_vars = lazy (Array.init (Mlo_csp.Network.num_vars netp) Fun.id) in
    let preprocess_ac =
      match scheme with
      | Cdl cfg -> cfg.Mlo_csp.Cdl.preprocess = Solver.Arc_consistency
      | Bnb cfg -> cfg.Mlo_csp.Bnb.preprocess = Solver.Arc_consistency
      | Portfolio _ -> false
      | Heuristic | Base _ | Enhanced _ | Enhanced_ac _ | Custom _ -> (
        match config_of_scheme ?max_checks scheme with
        | Some c -> c.Solver.preprocess = Solver.Arc_consistency
        | None -> false)
    in
    let assemble_proof outcome =
      let open Mlo_verify.Proof in
      let num0 = Mlo_csp.Network.num_vars net0 in
      let header =
        {
          workload = Program.name prog;
          scheme = scheme_label scheme;
          objective =
            (match scheme with
            | Bnb _ -> Some (objective_label objective)
            | _ -> None);
          pruned = prune_dominated;
          slack =
            (match scheme with
            | Bnb cfg -> cfg.Mlo_csp.Bnb.bound_slack
            | _ -> 0.0);
          names = Array.init num0 (Mlo_csp.Network.name net0);
          domain_sizes = Array.init num0 (Mlo_csp.Network.domain_size net0);
          digest = digest net0;
        }
      in
      let pre_steps =
        let dels = ref [] in
        (match prune_info with
        | Some info ->
          List.iter
            (fun (var, value, by) ->
              dels := Del { var; value; reason = Dominated by } :: !dels)
            info.Mlo_netgen.Prune.removed
        | None -> ());
        (if preprocess_ac then
           match Mlo_csp.Propagate.ac2001 netp with
           | Mlo_csp.Propagate.Reduced doms ->
             Array.iteri
               (fun i bs ->
                 for v = 0 to Mlo_csp.Network.domain_size netp i - 1 do
                   if not (Mlo_csp.Bitset.mem bs v) then
                     dels :=
                       Del { var = i; value = surv i v; reason = Arc_inconsistent }
                       :: !dels
                 done)
               doms
           | Mlo_csp.Propagate.Wiped _ ->
             (* the checker's own fixpoint derives the wipe; nothing to
                justify beyond the network itself *)
             ());
        List.rev !dels
      in
      let unsat_only =
        match outcome with Solver.Unsatisfiable -> true | _ -> false
      in
      let comp_steps =
        Hashtbl.fold (fun k _ acc -> k :: acc) comp_data []
        |> List.sort compare
        |> List.concat_map (fun k ->
               let vars, steps_r, outcome_r = Hashtbl.find comp_data k in
               let keep =
                 (not unsat_only)
                 ||
                 match !outcome_r with
                 | Some Solver.Unsatisfiable -> true
                 | _ -> false
               in
               if not keep then []
               else
                 let steps = List.rev !steps_r in
                 let steps =
                   (* an UNSAT certificate must carry no incumbents *)
                   if unsat_only then
                     List.filter (function Inc _ -> false | _ -> true) steps
                   else steps
                 in
                 Comp { id = k; vars = Array.copy vars } :: steps)
      in
      let verdict =
        match outcome with
        | Solver.Unsatisfiable -> Unsat
        | Solver.Aborted -> Aborted
        | Solver.Solution a ->
          let ga = Array.mapi surv a in
          (match scheme with
          | Bnb _ ->
            let costs0 = Lazy.force costs0 in
            let cost = ref 0.0 in
            Array.iteri (fun i v -> cost := !cost +. costs0.(i).(v)) ga;
            Optimal { cost = !cost; assignment = ga }
          | _ -> Sat ga)
      in
      { header; steps = pre_steps @ comp_steps; verdict = Some verdict }
    in
    (* Component-wise search: independent subnetworks are solved
       separately (decision-equivalent to the whole-network solve; a
       single-component network takes the identical path), across
       [domains] worker domains when more than one is requested.  The
       portfolio instead races its members on the whole network, using
       [domains] to size the racing pool. *)
    let result, winner =
      match scheme with
      | Cdl cfg ->
        let cfg =
          match max_checks with
          | None -> cfg
          | Some m -> { cfg with Mlo_csp.Cdl.max_checks = Some m }
        in
        ( Mlo_csp.Cdl.solve_components ~config:cfg ~domains ?on_event
            build.Build.network,
          None )
      | Portfolio cfg ->
        let cfg =
          match max_checks with
          | None -> cfg
          | Some m -> { cfg with Mlo_csp.Portfolio.max_checks = Some m }
        in
        (* the race runs on the whole network, so its certificate is a
           single component covering every variable *)
        let on_learn =
          Option.map
            (fun f ~dead lits ->
              f ~comp:0 ~vars:(Lazy.force all_vars)
                (Solver.Learned { dead; lits }))
            on_event
        in
        let r =
          Mlo_csp.Portfolio.race ~config:cfg ~domains ?on_learn
            (Mlo_csp.Network.compile build.Build.network)
        in
        Option.iter
          (fun f ->
            f ~comp:0 ~vars:(Lazy.force all_vars)
              (Solver.Finished r.Mlo_csp.Portfolio.outcome))
          on_event;
        ( {
            Solver.outcome = r.Mlo_csp.Portfolio.outcome;
            stats = r.Mlo_csp.Portfolio.stats;
          },
          r.Mlo_csp.Portfolio.winner )
      | Bnb cfg ->
        let cfg =
          match max_checks with
          | None -> cfg
          | Some m -> { cfg with Mlo_csp.Bnb.max_checks = Some m }
        in
        let cost_of_layout = layout_cost ~objective prog in
        let net = build.Build.network in
        let cost name v =
          cost_of_layout ~array_name:name
            ~layout:
              (Mlo_csp.Network.value net (Build.var_of_array build name) v)
        in
        ( Trace.with_span ~cat:"optimizer" "bnb"
            ~args:[ ("objective", Trace.Str (objective_label objective)) ]
            (fun () ->
              Mlo_csp.Bnb.branch_and_bound ~config:cfg ~domains ?on_event
                ~cost net),
          None )
      | Heuristic | Base _ | Enhanced _ | Enhanced_ac _ | Custom _ ->
        let config =
          Option.get (config_of_scheme ?max_checks scheme)
        in
        (Solver.solve_components ~config ~domains build.Build.network, None)
    in
    Option.iter (fun sink -> sink (assemble_proof result.Solver.outcome)) proof;
    (match result.Solver.outcome with
    | Solver.Unsatisfiable ->
      let detail =
        match Mlo_analysis.Netcheck.unsat_core build.Build.network with
        | Some (core, wiped) ->
          let name = Mlo_csp.Network.name build.Build.network in
          Printf.sprintf
            "; no arc-consistent value for %s, minimal unsat core: %s"
            (name wiped)
            (String.concat ", "
               (List.map (fun (i, j) -> name i ^ "-" ^ name j) core))
        | None -> ""
      in
      raise
        (No_solution (Program.name prog ^ ": network unsatisfiable" ^ detail))
    | Solver.Aborted ->
      raise (No_solution (Program.name prog ^ ": check budget exhausted"))
    | Solver.Solution assignment ->
      let layouts = Build.assignment_layouts build assignment in
      let lookup name = List.assoc_opt name layouts in
      let restructured =
        Trace.with_span ~cat:"optimizer" "restructure" (fun () ->
            Select.restructure prog lookup)
      in
      let objective_value =
        match scheme with
        | Bnb _ -> Some (objective_cost ~objective prog layouts)
        | _ -> None
      in
      {
        layouts;
        restructured;
        solver_stats = Some result.Solver.stats;
        heuristic_evaluations = None;
        pruned_values = prune_info;
        portfolio_winner = winner;
        objective_value;
        elapsed_s = Mlo_csp.Clock.wall_s () -. t0;
      })

let lookup sol name = List.assoc_opt name sol.layouts

let simulate ?config sol =
  Simulate.run ?config sol.restructured ~layouts:(lookup sol)

let simulate_original ?config prog =
  Simulate.run ?config prog ~layouts:(fun _ -> None)

let simulate_many ?config ?domains sols =
  Simulate.run_batch ?config ?domains
    (List.map (fun sol -> (sol.restructured, lookup sol)) sols)

let simulate_versions ?config ?domains prog sols =
  match
    Simulate.run_batch ?config ?domains
      ((prog, fun _ -> None)
      :: List.map (fun sol -> (sol.restructured, lookup sol)) sols)
  with
  | original :: optimized -> (original, optimized)
  | [] -> assert false
