module Intvec = Mlo_linalg.Intvec
module Program = Mlo_ir.Program
module Loop_nest = Mlo_ir.Loop_nest
module Access = Mlo_ir.Access
module Layout = Mlo_layout.Layout
module Locality = Mlo_layout.Locality

type ref_quality = Temporal | Spatial | Unserved of Intvec.t

type ref_report = {
  array_name : string;
  kind : Access.kind;
  quality : ref_quality;
}

type nest_report = {
  nest_name : string;
  loop_order : string list;
  interchanged : bool;
  refs : ref_report list;
  trip_count : int;
}

type t = {
  layouts : (string * Layout.t) list;
  nests : nest_report list;
  served_fraction : float;
}

let ref_quality lookup a =
  let delta = Locality.access_delta a in
  if Intvec.is_zero delta then Temporal
  else
    match lookup (Access.array_name a) with
    | Some layout when Layout.serves layout delta -> Spatial
    | Some _ | None -> Unserved delta

let explain original sol =
  let lookup name = Optimizer.lookup sol name in
  let originals = Program.nests original in
  if Array.length originals
     <> Array.length (Program.nests sol.Optimizer.restructured)
  then
    invalid_arg
      "Explain.explain: solution does not belong to the given program";
  let nests =
    Array.to_list
      (Array.mapi
         (fun i nest ->
           let refs =
             Array.to_list
               (Array.map
                  (fun a ->
                    {
                      array_name = Access.array_name a;
                      kind = Access.kind a;
                      quality = ref_quality lookup a;
                    })
                  (Loop_nest.accesses nest))
           in
           let source_order =
             Array.to_list (Loop_nest.var_names originals.(i))
           in
           let loop_order = Array.to_list (Loop_nest.var_names nest) in
           {
             nest_name = Loop_nest.name nest;
             loop_order;
             interchanged = loop_order <> source_order;
             refs;
             trip_count = Loop_nest.trip_count nest;
           })
         (Program.nests sol.Optimizer.restructured))
  in
  let served, total =
    List.fold_left
      (fun (s, t) nr ->
        let w = nr.trip_count in
        List.fold_left
          (fun (s, t) r ->
            match r.quality with
            | Temporal | Spatial -> (s + w, t + w)
            | Unserved _ -> (s, t + w))
          (s, t) nr.refs)
      (0, 0) nests
  in
  {
    layouts = sol.Optimizer.layouts;
    nests;
    served_fraction = (if total = 0 then 1. else float_of_int served /. float_of_int total);
  }

let pp_quality ppf = function
  | Temporal -> Format.fprintf ppf "temporal"
  | Spatial -> Format.fprintf ppf "spatial"
  | Unserved delta -> Format.fprintf ppf "UNSERVED stride %a" Intvec.pp delta

let pp ppf t =
  Format.fprintf ppf "@[<v>layouts:@,";
  List.iter
    (fun (name, l) ->
      Format.fprintf ppf "  %-8s %s@," name (Layout.describe l))
    t.layouts;
  Format.fprintf ppf "@,nests:@,";
  List.iter
    (fun nr ->
      Format.fprintf ppf "  %s: order (%s)%s, %d iterations@," nr.nest_name
        (String.concat " " nr.loop_order)
        (if nr.interchanged then " [restructured]" else "")
        nr.trip_count;
      List.iter
        (fun r ->
          Format.fprintf ppf "    %s %-8s %a@,"
            (match r.kind with Access.Read -> "load " | Access.Write -> "store")
            r.array_name pp_quality r.quality)
        nr.refs)
    t.nests;
  Format.fprintf ppf "@,%.1f%% of reference executions served@]"
    (100. *. t.served_fraction)

type unsat = {
  wiped : string;
  core : (string * string) list;
  core_verified : bool;
}

let explain_unsat net =
  match Mlo_analysis.Netcheck.unsat_core net with
  | None -> None
  | Some (core, wiped) ->
    let name = Mlo_csp.Network.name net in
    Some
      {
        wiped = name wiped;
        core = List.map (fun (i, j) -> (name i, name j)) core;
        core_verified = Mlo_verify.Checker.refutes ~only:core net;
      }

let pp_unsat ppf u =
  Format.fprintf ppf
    "@[<v>no arc-consistent value for %s; minimal unsat core (%d \
     constraints, %s):@,"
    u.wiped (List.length u.core)
    (if u.core_verified then "independently verified"
     else "VERIFICATION FAILED")
  ;
  List.iter (fun (a, b) -> Format.fprintf ppf "  %s-%s@," a b) u.core;
  Format.fprintf ppf "@]"
