(** Human-readable account of an optimization result.

    For every nest of the optimized program: the loop order chosen, and
    for every reference whether the chosen layouts give it temporal
    reuse, spatial locality, or nothing (with the data-space stride that
    explains why).  This is the report a compiler writer reads to trust
    the tool's decision — and what the CLI's [--explain] prints. *)

type ref_quality =
  | Temporal  (** innermost-invariant: served by any layout *)
  | Spatial  (** successive iterations stay in one storage line *)
  | Unserved of Mlo_linalg.Intvec.t
      (** the data-space stride no layout hyperplane absorbs *)

type ref_report = {
  array_name : string;
  kind : Mlo_ir.Access.kind;
  quality : ref_quality;
}

type nest_report = {
  nest_name : string;
  loop_order : string list;  (** outermost first, after restructuring *)
  interchanged : bool;  (** loop order differs from the source order *)
  refs : ref_report list;
  trip_count : int;
}

type t = {
  layouts : (string * Mlo_layout.Layout.t) list;
  nests : nest_report list;
  served_fraction : float;
      (** trip-weighted share of references with temporal or spatial
          quality *)
}

val explain : Mlo_ir.Program.t -> Optimizer.solution -> t
(** [explain original solution] compares the original program with the
    solution's restructured one. *)

val pp : Format.formatter -> t -> unit

(** {1 Unsatisfiable networks}

    When the constraint network has no solution, the useful report is
    {e why}: the smallest set of constraints that already admits no
    choice.  {!explain_unsat} surfaces the analyzer's minimal unsat
    core ({!Mlo_analysis.Netcheck.unsat_core}) with variables decoded
    to array names. *)

type unsat = {
  wiped : string;  (** variable whose domain arc consistency empties *)
  core : (string * string) list;
      (** deletion-minimal constraints that still force the wipe-out *)
  core_verified : bool;
      (** the core re-checked by the independent certificate checker
          ({!Mlo_verify.Checker.refutes}): its own propagation over
          exactly these constraints reproduces the wipe-out *)
}

val explain_unsat : 'a Mlo_csp.Network.t -> unsat option
(** [None] when arc consistency cannot prove the network unsatisfiable
    (the domains survive AC-2001). *)

val pp_unsat : Format.formatter -> unsat -> unit
