(** End-to-end memory-layout optimization.

    Ties the pipeline together: extract the constraint network from a
    program, solve it with a chosen scheme (or run the propagation
    heuristic), pick the matching loop restructurings, and optionally
    simulate the optimized program on the embedded cache hierarchy.  This
    is the facade a compiler pass (or the examples and benches of this
    repository) calls. *)

type scheme =
  | Heuristic  (** the paper's comparison baseline (Leung-Zahorjan style) *)
  | Base of int  (** the paper's base scheme with the given seed *)
  | Enhanced of int  (** the paper's enhanced scheme with the given seed *)
  | Enhanced_ac of int
      (** enhanced scheme with AC-2001 arc-consistency preprocessing *)
  | Custom of Mlo_csp.Solver.config
  | Cdl of Mlo_csp.Cdl.config
      (** conflict-driven search with nogood learning, VSIDS ordering and
          Luby restarts ({!Mlo_csp.Cdl}) *)
  | Portfolio of Mlo_csp.Portfolio.config
      (** racing portfolio over enhanced / enhanced-ac / cdl /
          min-conflicts ({!Mlo_csp.Portfolio}) *)
  | Bnb of Mlo_csp.Bnb.config
      (** optimizing branch and bound ({!Mlo_csp.Bnb}): searches the
          satisfying assignments for the one minimizing the static cost
          model's [objective], instead of stopping at the first *)

type objective = Estimated_misses | Distinct_lines
(** What the [Bnb] scheme minimizes, per array and candidate layout,
    summed over the program's nests: the closed-form L1 miss estimate
    ({!Mlo_analysis.Locality.profiler}, the default) or the distinct
    L1 line count (the capacity-blind cold-miss floor). *)

type solution = {
  layouts : (string * Mlo_layout.Layout.t) list;
      (** chosen layout per array, declaration order *)
  restructured : Mlo_ir.Program.t;
      (** the program with each nest in its best legal loop order for the
          chosen layouts *)
  solver_stats : Mlo_csp.Stats.t option;
      (** search-effort counters ([None] for [Heuristic]) *)
  heuristic_evaluations : int option;
      (** combinations scored ([Some] only for [Heuristic]) *)
  pruned_values : Mlo_netgen.Prune.info option;
      (** dominance-pruning counts ([Some] only when [optimize] ran with
          [~prune_dominated:true] and a network scheme) *)
  portfolio_winner : string option;
      (** which portfolio member's answer was taken ([Some] only for
          [Portfolio]) *)
  objective_value : float option;
      (** the chosen layouts' total cost under the requested objective
          ([Some] only for [Bnb]; computed by {!objective_cost}) *)
  elapsed_s : float;  (** end-to-end solution time *)
}

exception No_solution of string
(** Raised when a constraint-network scheme proves the network
    unsatisfiable or exceeds its check budget. *)

val scheme_label : scheme -> string
(** Short stable name ("heuristic", "base", "enhanced", "enhanced-ac",
    "custom", "cdl", "portfolio", "bnb") — used for trace span arguments
    and CLI messages. *)

val objective_label : objective -> string
(** "misses" or "lines" — the CLI's [--objective] vocabulary. *)

val objective_cost :
  ?geometry:Mlo_cachesim.Cache.geometry ->
  ?objective:objective ->
  Mlo_ir.Program.t ->
  (string * Mlo_layout.Layout.t) list ->
  float
(** Total cost of a layout assignment under an objective: per array, the
    {!Mlo_analysis.Locality.profiler} charge of its layout (every other
    array at its default), summed over the listed arrays in list order.
    This is the exact function the [Bnb] scheme minimizes over the
    satisfying assignments, so solutions of different schemes compare
    directly through it. *)

val layout_cost :
  ?geometry:Mlo_cachesim.Cache.geometry ->
  objective:objective ->
  Mlo_ir.Program.t ->
  array_name:string ->
  layout:Mlo_layout.Layout.t ->
  float
(** The separable per-(array, layout) charge underlying both the [Bnb]
    scheme and {!objective_cost}: the array's whole-program cost under
    the layout with every other array at its default.  Exposed so the
    certificate checker can rebuild the exact cost table an [Optimal]
    proof was logged against. *)

val optimize :
  ?candidates:(string -> Mlo_layout.Layout.t list) ->
  ?max_checks:int ->
  ?prune_dominated:bool ->
  ?domains:int ->
  ?objective:objective ->
  ?proof:(Mlo_verify.Proof.t -> unit) ->
  scheme ->
  Mlo_ir.Program.t ->
  solution
(** Runs the full pipeline.  [candidates] enriches network domains (see
    {!Mlo_netgen.Build.build}); [max_checks] bounds solver effort;
    [prune_dominated] (default [false]) drops dominated layout values
    from every domain before solving ({!Mlo_netgen.Prune.apply} —
    satisfiability-preserving, ignored by [Heuristic]); [domains]
    (default 1: serial) solves independent network components on that
    many OCaml domains ({!Mlo_csp.Solver.solve_components} — outcome and
    merged stats are identical to the serial solve).  For [Portfolio],
    [domains] instead sizes the racing pool (the portfolio runs on the
    whole network) and [solution.portfolio_winner] names the member whose
    answer was taken.  [objective] (default [Estimated_misses]) selects
    the cost the [Bnb] scheme minimizes; the other schemes ignore it.

    [proof] receives a {!Mlo_verify.Proof.t} certificate of the solver
    run, stated against the {e original} (pre-prune, pre-AC) network:
    preprocessing removals as justified [Del] steps, learned nogoods and
    branch-and-bound incumbents per component, and a verdict matching
    the outcome ([Sat], [Unsat], [Optimal] for [Bnb] solutions, or
    [Aborted]).  The sink is called before {!No_solution} is raised, so
    UNSAT and budget-abort certificates are still delivered.  Ignored by
    [Heuristic] (there is nothing to certify). *)

val lookup : solution -> string -> Mlo_layout.Layout.t option

val simulate :
  ?config:Mlo_cachesim.Hierarchy.config ->
  solution ->
  Mlo_cachesim.Simulate.report
(** Trace-driven simulation of the restructured program under the chosen
    layouts. *)

val simulate_original :
  ?config:Mlo_cachesim.Hierarchy.config ->
  Mlo_ir.Program.t ->
  Mlo_cachesim.Simulate.report
(** The unoptimized baseline: original loop orders, row-major layouts. *)

val simulate_many :
  ?config:Mlo_cachesim.Hierarchy.config ->
  ?domains:int ->
  solution list ->
  Mlo_cachesim.Simulate.report list
(** Simulate several solutions (possibly of different programs) on the
    domain pool of {!Mlo_cachesim.Simulate.run_batch}; reports in input
    order. *)

val simulate_versions :
  ?config:Mlo_cachesim.Hierarchy.config ->
  ?domains:int ->
  Mlo_ir.Program.t ->
  solution list ->
  Mlo_cachesim.Simulate.report * Mlo_cachesim.Simulate.report list
(** [simulate_versions prog sols] runs the original program and every
    optimized version as one parallel batch — the Table-3 sweep.  Returns
    the original's report and the per-solution reports in input order. *)
