(** Solver certificates: the [memlayout-proof/1] format.

    A proof is a newline-delimited JSON artifact emitted by
    [Optimizer.optimize ~proof] and checked — against the original,
    pre-preprocessing network — by {!Checker.check}. All variable and
    value indices in a proof refer to the {e original} network (before
    dominance pruning and before arc-consistency preprocessing);
    preprocessing itself appears as justified [Del] steps.

    The format is line-oriented so that partial proofs from aborted or
    cancelled runs are still parseable (and then rejected by the
    checker for lack of a supported verdict). *)

type del_reason =
  | Dominated of int
      (** The value was removed by dominance pruning; the payload is a
          kept value of the same variable that dominates it. *)
  | Arc_inconsistent
      (** The value was removed by AC preprocessing: it has no support
          in some neighboring domain. The checker re-derives this with
          its own propagation, so no witness is recorded. *)

type step =
  | Del of { var : int; value : int; reason : del_reason }
      (** Preprocessing removed [value] from [var]'s domain. *)
  | Comp of { id : int; vars : int array }
      (** Declares component [id] as the variable set [vars]. Every
          later step tagged with [id] may only involve these
          variables. *)
  | Ng of { comp : int; dead : int; lits : (int * int) array }
      (** A learned nogood: the assignments [lits] cannot all hold in
          any (cost-improving, under an optimality certificate)
          solution. [dead] is the variable whose domain wiped at the
          dead end — a hint telling the checker which variable to
          probe first. *)
  | Inc of { comp : int; lits : (int * int) array; cost : float }
      (** A branch-and-bound incumbent for component [comp]: a full,
          consistent assignment of the component's variables with the
          given separable cost. Lowers the component's bound. *)

type verdict =
  | Sat of int array
  | Unsat
  | Optimal of { cost : float; assignment : int array }
  | Aborted

type header = {
  workload : string;  (** suite workload name, for network rebuild *)
  scheme : string;  (** solver scheme label, informational *)
  objective : string option;  (** cost objective, for [Optimal] proofs *)
  pruned : bool;  (** whether dominance pruning ran *)
  slack : float;  (** bnb bound slack: the optimum is (1+slack)-approx *)
  names : string array;  (** variable (array) names, in index order *)
  domain_sizes : int array;  (** original domain sizes *)
  digest : string;  (** {!digest} of the original network *)
}

type t = { header : header; steps : step list; verdict : verdict option }

val schema : string
(** ["memlayout-proof/1"] *)

val digest : 'a Mlo_csp.Network.t -> string
(** FNV-1a 64-bit digest (16 hex chars) of the network's canonical
    description: variable names, domain sizes, and every constraint's
    allowed-pair bitmap. Two networks with the same digest have the
    same constraint structure for the checker's purposes. *)

val to_lines : t -> string list
(** One JSON object per line: header first, then steps in order, then
    the verdict (if any). *)

val of_lines : string list -> (t, string) result
(** Parse the NDJSON lines of a proof. Blank lines are skipped. A
    missing verdict yields [verdict = None] (the checker rejects it);
    malformed JSON or unknown step kinds are an [Error]. *)

val write : string -> t -> unit
(** [write path t] writes the proof to [path], one line per object. *)

val read : string -> (t, string) result
(** [read path] loads and parses a proof file. *)
