module Network = Mlo_csp.Network

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt
let tolerance eps x = eps *. Float.max 1.0 (Float.abs x)

(* The checker keeps one mutable "root" state: the live value sets of
   every variable, maintained at its own propagation fixpoint (arc
   revision over the raw relations plus accepted-nogood rules).  Step
   checks that need to reason hypothetically — "assume these literals,
   does propagation conflict?" — run on the same state through an undo
   trail, so nothing is copied on the hot path. *)

let check ?(eps = 1e-6) ?costs net (proof : Proof.t) =
  let n = Network.num_vars net in
  try
    (* ---- header ---------------------------------------------------- *)
    let h = proof.Proof.header in
    if Array.length h.Proof.names <> n || Array.length h.Proof.domain_sizes <> n
    then reject "header: variable count mismatch (%d in proof, %d in network)"
        (Array.length h.Proof.names) n;
    let dsize = Array.init n (Network.domain_size net) in
    for i = 0 to n - 1 do
      if h.Proof.names.(i) <> Network.name net i then
        reject "header: variable %d is %S in the proof, %S in the network" i
          h.Proof.names.(i) (Network.name net i);
      if h.Proof.domain_sizes.(i) <> dsize.(i) then
        reject "header: domain size mismatch for %s" (Network.name net i)
    done;
    if h.Proof.digest <> Proof.digest net then
      reject "header: network digest mismatch (proof %s, network %s)"
        h.Proof.digest (Proof.digest net);
    let slack = h.Proof.slack in
    if not (Float.is_finite slack && slack >= 0.0) then
      reject "header: slack must be finite and non-negative";
    (* ---- verdict context ------------------------------------------- *)
    let verdict =
      match proof.Proof.verdict with
      | None -> reject "missing verdict (truncated proof?)"
      | Some v -> v
    in
    let optimal_ctx =
      match verdict with Proof.Optimal _ -> true | _ -> false
    in
    let costs =
      if not optimal_ctx then None
      else
        match costs with
        | None -> reject "optimality certificate requires a cost model"
        | Some c ->
            if Array.length c <> n then
              reject "cost table: variable count mismatch";
            Array.iteri
              (fun i row ->
                if Array.length row <> dsize.(i) then
                  reject "cost table: domain size mismatch for %s"
                    (Network.name net i))
              c;
            Some c
    in
    (* ---- state ----------------------------------------------------- *)
    let live = Array.init n (fun i -> Array.make dsize.(i) true) in
    let cnt = Array.copy dsize in
    let nbrs = Array.init n (fun i -> Array.of_list (Network.neighbors net i)) in
    let comp_of = Array.make n (-1) in
    let comp_members : (int, int array) Hashtbl.t = Hashtbl.create 8 in
    let comp_order = ref [] in
    let bcomp : (int, float) Hashtbl.t = Hashtbl.create 8 in
    let comp_dead : (int, unit) Hashtbl.t = Hashtbl.create 4 in
    let global_dead = ref false in
    let incs_seen = ref false in
    (* nogood database: lits plus owning component, and per-variable
       occurrence lists *)
    let ng_comp = ref (Array.make 16 (-1)) in
    let ng_lits = ref (Array.make 16 [||]) in
    let ng_count = ref 0 in
    let add_ng c lits =
      if !ng_count = Array.length !ng_lits then begin
        let bigger_l = Array.make (2 * !ng_count) [||] in
        let bigger_c = Array.make (2 * !ng_count) (-1) in
        Array.blit !ng_lits 0 bigger_l 0 !ng_count;
        Array.blit !ng_comp 0 bigger_c 0 !ng_count;
        ng_lits := bigger_l;
        ng_comp := bigger_c
      end;
      !ng_lits.(!ng_count) <- lits;
      !ng_comp.(!ng_count) <- c;
      incr ng_count;
      !ng_count - 1
    in
    let occ = Array.make n [] in
    (* ---- propagation ----------------------------------------------- *)
    let module Wipe = struct
      exception E of int
    end in
    let assuming = ref false in
    let trail = ref [] in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let enqueue i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    let clear_queue () =
      Queue.iter (fun j -> queued.(j) <- false) queue;
      Queue.clear queue
    in
    let mark_dead c =
      if optimal_ctx && c >= 0 then Hashtbl.replace comp_dead c ()
      else global_dead := true
    in
    let remove i v =
      if live.(i).(v) then begin
        live.(i).(v) <- false;
        cnt.(i) <- cnt.(i) - 1;
        if !assuming then trail := (i, v) :: !trail;
        if cnt.(i) = 0 then
          if !assuming then raise (Wipe.E i) else mark_dead comp_of.(i);
        enqueue i
      end
    in
    let rollback m =
      while !trail != m do
        match !trail with
        | (i, v) :: rest ->
            live.(i).(v) <- true;
            cnt.(i) <- cnt.(i) + 1;
            trail := rest
        | [] -> assert false
      done
    in
    let held (x, v) = cnt.(x) = 1 && live.(x).(v) in
    let lit_dead (x, v) = not live.(x).(v) in
    let eval_ng id =
      let lits = !ng_lits.(id) in
      if not (Array.exists lit_dead lits) then begin
        let unheld_idx = ref (-1) and unheld = ref 0 in
        Array.iteri
          (fun k l ->
            if not (held l) then begin
              unheld_idx := k;
              incr unheld
            end)
          lits;
        if !unheld = 0 then begin
          if !assuming then raise (Wipe.E (fst lits.(0)))
          else mark_dead !ng_comp.(id)
        end
        else if !unheld = 1 then
          let x, v = lits.(!unheld_idx) in
          remove x v
      end
    in
    let revise i j =
      (* drop values of i with no live support in j *)
      for v = 0 to dsize.(i) - 1 do
        if live.(i).(v) then begin
          let sup = ref false in
          for w = 0 to dsize.(j) - 1 do
            if (not !sup) && live.(j).(w) && Network.allowed net i v j w then
              sup := true
          done;
          if not !sup then remove i v
        end
      done
    in
    let propagate () =
      while not (Queue.is_empty queue) do
        let j = Queue.pop queue in
        queued.(j) <- false;
        Array.iter (fun i -> revise i j) nbrs.(j);
        List.iter eval_ng occ.(j)
      done
    in
    let assume_lit (x, v) =
      if not live.(x).(v) then raise (Wipe.E x);
      for w = 0 to dsize.(x) - 1 do
        if w <> v then remove x w
      done
    in
    (* [with_assumed lits k ~on_conflict] restricts each literal's
       variable to the literal's value, propagates, and runs [k] on the
       resulting state ([on_conflict] on a domain wipeout); the state is
       rolled back either way. Nests (probes run on top of an assumed
       nogood). *)
    let with_assumed lits k ~on_conflict =
      let saved = !assuming in
      let m = !trail in
      assuming := true;
      let result =
        try
          Array.iter assume_lit lits;
          propagate ();
          k ()
        with Wipe.E w ->
          clear_queue ();
          on_conflict w
      in
      assuming := saved;
      rollback m;
      result
    in
    (* ---- cost bounds ----------------------------------------------- *)
    let bound_of c = Option.value (Hashtbl.find_opt bcomp c) ~default:infinity in
    let comp_lb c =
      match costs with
      | None -> neg_infinity
      | Some costs ->
          Array.fold_left
            (fun acc x ->
              if cnt.(x) = 0 then acc
              else begin
                let m = ref infinity in
                let row = costs.(x) in
                for v = 0 to dsize.(x) - 1 do
                  if live.(x).(v) && row.(v) < !m then m := row.(v)
                done;
                acc +. !m
              end)
            0.0 (Hashtbl.find comp_members c)
    in
    (* Admissible-bound refutation: no assignment of component [c]
       compatible with the current state can cost less than the
       component's incumbent bound. *)
    let bound_refuted c =
      optimal_ctx
      &&
      let b = bound_of c in
      b < infinity && comp_lb c *. (1.0 +. slack) >= b -. tolerance eps b
    in
    (* [probe_refutes x]: every live value of [x], assumed on top of the
       current state, propagates to an in-component conflict or trips
       the bound rule — i.e. [x] has no viable value, refuting the
       state. *)
    let probe_refutes ~conflict_ok ~bound_ok x =
      let ok = ref true in
      for v = 0 to dsize.(x) - 1 do
        if !ok && live.(x).(v) then
          ok := with_assumed [| (x, v) |] bound_ok ~on_conflict:conflict_ok
      done;
      !ok
    in
    let ng_refuted c dead members lits =
      Array.exists lit_dead lits
      ||
      let conflict_ok w = (not optimal_ctx) || comp_of.(w) = c in
      let bound_ok () = bound_refuted c in
      with_assumed lits ~on_conflict:conflict_ok (fun () ->
          bound_refuted c
          || probe_refutes ~conflict_ok ~bound_ok dead
          || Array.exists
               (fun x ->
                 x <> dead && cnt.(x) > 1
                 && probe_refutes ~conflict_ok ~bound_ok x)
               members)
    in
    (* ---- initial fixpoint ------------------------------------------ *)
    for i = 0 to n - 1 do
      enqueue i
    done;
    propagate ();
    (* ---- replay ---------------------------------------------------- *)
    let seen = Array.make n 0 in
    let stamp = ref 0 in
    let fail_at sn fmt =
      Printf.ksprintf
        (fun s -> raise (Reject (Printf.sprintf "step %d: %s" sn s)))
        fmt
    in
    let check_lits ~what ~sn c lits =
      incr stamp;
      Array.iter
        (fun (x, v) ->
          if x < 0 || x >= n then
            fail_at sn "%s: variable %d out of range" what x;
          if v < 0 || v >= dsize.(x) then
            fail_at sn "%s: value %d out of range for %s" what v
              (Network.name net x);
          if comp_of.(x) <> c then
            fail_at sn "%s: variable %s outside component %d" what
              (Network.name net x) c;
          if seen.(x) = !stamp then
            fail_at sn "%s: duplicate variable %s" what (Network.name net x);
          seen.(x) <- !stamp)
        lits
    in
    List.iteri
      (fun idx step ->
        let sn = idx + 1 in
        let fail fmt = fail_at sn fmt in
        match step with
        | Proof.Inc { comp = c; lits; cost } ->
            incs_seen := true;
            if not optimal_ctx then
              fail "incumbent step outside an optimality certificate";
            if not !global_dead then begin
              let members =
                match Hashtbl.find_opt comp_members c with
                | None -> fail "incumbent for undeclared component %d" c
                | Some m -> m
              in
              if Array.length lits <> Array.length members then
                fail "incumbent does not cover component %d exactly" c;
              check_lits ~what:"incumbent" ~sn c lits;
              if not (Float.is_finite cost) then
                fail "incumbent cost is not finite";
              (match costs with
              | Some costs ->
                  let rc =
                    Array.fold_left
                      (fun acc (x, v) -> acc +. costs.(x).(v))
                      0.0 lits
                  in
                  if Float.abs (rc -. cost) > tolerance eps cost then
                    fail "incumbent cost %.17g does not match recomputed %.17g"
                      cost rc
              | None -> ());
              if not (cost < bound_of c) then
                fail "incumbent %.17g does not improve the bound %.17g" cost
                  (bound_of c);
              let a = Array.make n (-1) in
              Array.iter (fun (x, v) -> a.(x) <- v) lits;
              if not (Network.consistent_partial net a) then
                fail "incumbent violates a constraint";
              Hashtbl.replace bcomp c cost
            end
        | Proof.Del { var; value; reason } ->
            if not !global_dead then begin
              if var < 0 || var >= n then fail "variable %d out of range" var;
              if value < 0 || value >= dsize.(var) then
                fail "value %d out of range for %s" value (Network.name net var);
              match reason with
              | Proof.Arc_inconsistent ->
                  if live.(var).(value) then
                    fail "ac deletion of %s value %d: the value still has support"
                      (Network.name net var) value
              | Proof.Dominated by ->
                  if live.(var).(value) then begin
                    if by < 0 || by >= dsize.(var) || by = value then
                      fail "invalid dominance witness %d" by;
                    if not live.(var).(by) then
                      fail "dominance witness %d of %s is not live" by
                        (Network.name net var);
                    List.iter
                      (fun j ->
                        for w = 0 to dsize.(j) - 1 do
                          if
                            live.(j).(w)
                            && Network.allowed net var value j w
                            && not (Network.allowed net var by j w)
                          then
                            fail
                              "dominance witness %d does not cover a support \
                               of %s value %d in %s"
                              by (Network.name net var) value
                              (Network.name net j)
                        done)
                      (Network.neighbors net var);
                    (match costs with
                    | Some costs ->
                        if
                          costs.(var).(by)
                          > costs.(var).(value)
                            +. tolerance eps costs.(var).(value)
                        then
                          fail
                            "dominance witness %d costs more than the removed \
                             value %d of %s"
                            by value (Network.name net var)
                    | None -> ());
                    remove var value;
                    propagate ()
                  end
            end
        | Proof.Comp { id; vars } ->
            if not !global_dead then begin
              if id < 0 then fail "negative component id";
              if Hashtbl.mem comp_members id then
                fail "component %d redeclared" id;
              if Array.length vars = 0 then fail "empty component";
              Array.iter
                (fun x ->
                  if x < 0 || x >= n then fail "variable %d out of range" x;
                  if comp_of.(x) <> -1 then
                    fail "variable %s claimed by two components"
                      (Network.name net x))
                vars;
              Array.iter (fun x -> comp_of.(x) <- id) vars;
              Array.iter
                (fun x ->
                  List.iter
                    (fun y ->
                      if comp_of.(y) <> id then
                        fail
                          "component %d is not constraint-closed: %s has a \
                           neighbor outside it"
                          id (Network.name net x))
                    (Network.neighbors net x))
                vars;
              Hashtbl.replace comp_members id vars;
              comp_order := id :: !comp_order
            end
        | Proof.Ng { comp = c; dead; lits } ->
            if not !global_dead then begin
              match Hashtbl.find_opt comp_members c with
              | None -> fail "nogood for undeclared component %d" c
              | Some _ when Hashtbl.mem comp_dead c ->
                  (* the component is already refuted at the root: any
                     nogood over it is implied *)
                  ()
              | Some members ->
                  if Array.length lits = 0 then fail "empty nogood";
                  check_lits ~what:"nogood" ~sn c lits;
                  if dead < 0 || dead >= n || comp_of.(dead) <> c then
                    fail "dead variable outside component %d" c;
                  if not (ng_refuted c dead members lits) then
                    fail "nogood is not derivable from the network and \
                          earlier steps";
                  if Array.length lits = 1 then begin
                    let x, v = lits.(0) in
                    remove x v;
                    propagate ()
                  end
                  else begin
                    let id = add_ng c lits in
                    Array.iter (fun (x, _) -> occ.(x) <- id :: occ.(x)) lits;
                    eval_ng id;
                    propagate ()
                  end
            end)
      proof.Proof.steps;
    (* ---- verdict --------------------------------------------------- *)
    (match verdict with
    | Proof.Aborted -> reject "aborted run carries no certificate"
    | Proof.Sat a ->
        if Array.length a <> n then reject "sat assignment has wrong length";
        Array.iteri
          (fun i v ->
            if v < 0 || v >= dsize.(i) then
              reject "sat assignment: value out of range for %s"
                (Network.name net i))
          a;
        if not (Network.verify net a) then
          reject "sat assignment violates a constraint"
    | Proof.Unsat ->
        if !incs_seen then reject "unsat verdict despite incumbent steps";
        let refuted =
          !global_dead
          || Hashtbl.length comp_dead > 0
          ||
          let found = ref false in
          let x = ref 0 in
          while (not !found) && !x < n do
            if
              cnt.(!x) > 0
              && probe_refutes
                   ~conflict_ok:(fun _ -> true)
                   ~bound_ok:(fun () -> false)
                   !x
            then found := true;
            incr x
          done;
          !found
        in
        if not refuted then reject "unsatisfiability not established"
    | Proof.Optimal { cost; assignment } ->
        let costs = match costs with Some c -> c | None -> assert false in
        if not (Float.is_finite cost) then reject "claimed optimum is not finite";
        for i = 0 to n - 1 do
          if comp_of.(i) < 0 then
            reject "variable %s is not covered by any component"
              (Network.name net i)
        done;
        if Array.length assignment <> n then
          reject "optimal assignment has wrong length";
        Array.iteri
          (fun i v ->
            if v < 0 || v >= dsize.(i) then
              reject "optimal assignment: value out of range for %s"
                (Network.name net i))
          assignment;
        if not (Network.verify net assignment) then
          reject "optimal assignment violates a constraint";
        let rc = ref 0.0 in
        Array.iteri (fun i v -> rc := !rc +. costs.(i).(v)) assignment;
        if Float.abs (!rc -. cost) > tolerance eps cost then
          reject "claimed optimum %.17g does not match the assignment's \
                  recomputed cost %.17g" cost !rc;
        let comps = List.rev !comp_order in
        let sum =
          List.fold_left (fun acc c -> acc +. bound_of c) 0.0 comps
        in
        if not (Float.is_finite sum) then
          reject "a component has no incumbent bound";
        if Float.abs (sum -. cost) > tolerance eps cost then
          reject "component bounds sum to %.17g, not the claimed %.17g" sum
            cost;
        List.iter
          (fun c ->
            let ok =
              Hashtbl.mem comp_dead c
              || bound_refuted c
              ||
              let members = Hashtbl.find comp_members c in
              Array.exists
                (fun x ->
                  cnt.(x) > 1
                  && probe_refutes
                       ~conflict_ok:(fun w -> comp_of.(w) = c)
                       ~bound_ok:(fun () -> bound_refuted c)
                       x)
                members
            in
            if not ok then
              reject "component %d: optimality of its bound is not established"
                c)
          comps);
    Ok ()
  with
  | Reject msg -> Error msg
  | Invalid_argument msg -> Error (Printf.sprintf "malformed proof: %s" msg)

let refutes ?only net =
  let n = Network.num_vars net in
  if n = 0 then false
  else begin
    let dsize = Array.init n (Network.domain_size net) in
    let adj = Array.make n [] in
    let add i j =
      if i >= 0 && j >= 0 && i < n && j < n && i <> j then
        adj.(i) <- j :: adj.(i)
    in
    let pairs =
      match only with None -> Network.constraint_pairs net | Some ps -> ps
    in
    List.iter
      (fun (i, j) ->
        add i j;
        add j i)
      pairs;
    let live = Array.init n (fun i -> Array.make dsize.(i) true) in
    let cnt = Array.copy dsize in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let enqueue i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    for i = 0 to n - 1 do
      enqueue i
    done;
    let wiped = ref false in
    while (not !wiped) && not (Queue.is_empty queue) do
      let j = Queue.pop queue in
      queued.(j) <- false;
      List.iter
        (fun i ->
          if not !wiped then
            for v = 0 to dsize.(i) - 1 do
              if live.(i).(v) then begin
                let sup = ref false in
                for w = 0 to dsize.(j) - 1 do
                  if (not !sup) && live.(j).(w) && Network.allowed net i v j w
                  then sup := true
                done;
                if not !sup then begin
                  live.(i).(v) <- false;
                  cnt.(i) <- cnt.(i) - 1;
                  if cnt.(i) = 0 then wiped := true else enqueue i
                end
              end
            done)
        adj.(j)
    done;
    !wiped
  end
