module Json = Mlo_obs.Json
module Network = Mlo_csp.Network

let schema = "memlayout-proof/1"

type del_reason = Dominated of int | Arc_inconsistent

type step =
  | Del of { var : int; value : int; reason : del_reason }
  | Comp of { id : int; vars : int array }
  | Ng of { comp : int; dead : int; lits : (int * int) array }
  | Inc of { comp : int; lits : (int * int) array; cost : float }

type verdict =
  | Sat of int array
  | Unsat
  | Optimal of { cost : float; assignment : int array }
  | Aborted

type header = {
  workload : string;
  scheme : string;
  objective : string option;
  pruned : bool;
  slack : float;
  names : string array;
  domain_sizes : int array;
  digest : string;
}

type t = { header : header; steps : step list; verdict : verdict option }

(* ---- digest ------------------------------------------------------- *)

let digest net =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let byte b = h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) prime in
  let str s =
    String.iter (fun c -> byte (Char.code c)) s;
    byte 0
  in
  let int i =
    str (string_of_int i)
  in
  let n = Network.num_vars net in
  int n;
  for i = 0 to n - 1 do
    str (Network.name net i);
    int (Network.domain_size net i)
  done;
  List.iter
    (fun (i, j) ->
      int i;
      int j;
      (* relation bitmap, packed 8 value pairs per hashed byte; the
         relation is looked up once per pair, not once per value pair *)
      let mem =
        match Network.relation net i j with
        | None -> fun _ _ -> true
        | Some rel -> Mlo_csp.Relation.mem rel
      in
      let acc = ref 0 and fill = ref 0 in
      let bit b =
        acc := (!acc lsl 1) lor (if b then 1 else 0);
        incr fill;
        if !fill = 8 then begin
          byte !acc;
          acc := 0;
          fill := 0
        end
      in
      for vi = 0 to Network.domain_size net i - 1 do
        for vj = 0 to Network.domain_size net j - 1 do
          bit (mem vi vj)
        done
      done;
      if !fill > 0 then byte (!acc lsl (8 - !fill)))
    (Network.constraint_pairs net);
  Printf.sprintf "%016Lx" !h

(* ---- serialization ------------------------------------------------ *)

let num i = Json.Num (float_of_int i)
let int_arr a = Json.Arr (Array.to_list a |> List.map num)
let lits_arr lits =
  Json.Arr (Array.to_list lits |> List.map (fun (x, v) -> Json.Arr [ num x; num v ]))

let header_json h =
  Json.Obj
    [
      ("t", Json.Str "header");
      ("schema", Json.Str schema);
      ("workload", Json.Str h.workload);
      ("scheme", Json.Str h.scheme);
      ("objective", (match h.objective with None -> Json.Null | Some o -> Json.Str o));
      ("pruned", Json.Bool h.pruned);
      ("slack", Json.Num h.slack);
      ("vars", Json.Arr (Array.to_list h.names |> List.map (fun s -> Json.Str s)));
      ("domains", int_arr h.domain_sizes);
      ("digest", Json.Str h.digest);
    ]

let step_json = function
  | Del { var; value; reason = Dominated by } ->
      Json.Obj
        [ ("t", Json.Str "del"); ("var", num var); ("value", num value);
          ("why", Json.Str "dominated"); ("by", num by) ]
  | Del { var; value; reason = Arc_inconsistent } ->
      Json.Obj
        [ ("t", Json.Str "del"); ("var", num var); ("value", num value);
          ("why", Json.Str "ac") ]
  | Comp { id; vars } ->
      Json.Obj [ ("t", Json.Str "comp"); ("id", num id); ("vars", int_arr vars) ]
  | Ng { comp; dead; lits } ->
      Json.Obj
        [ ("t", Json.Str "ng"); ("comp", num comp); ("dead", num dead);
          ("lits", lits_arr lits) ]
  | Inc { comp; lits; cost } ->
      Json.Obj
        [ ("t", Json.Str "inc"); ("comp", num comp); ("lits", lits_arr lits);
          ("cost", Json.Num cost) ]

let verdict_json = function
  | Sat a -> Json.Obj [ ("t", Json.Str "verdict"); ("v", Json.Str "sat"); ("assignment", int_arr a) ]
  | Unsat -> Json.Obj [ ("t", Json.Str "verdict"); ("v", Json.Str "unsat") ]
  | Optimal { cost; assignment } ->
      Json.Obj
        [ ("t", Json.Str "verdict"); ("v", Json.Str "optimal");
          ("cost", Json.Num cost); ("assignment", int_arr assignment) ]
  | Aborted -> Json.Obj [ ("t", Json.Str "verdict"); ("v", Json.Str "aborted") ]

let to_lines t =
  (Json.to_string (header_json t.header)
  :: List.map (fun s -> Json.to_string (step_json s)) t.steps)
  @ match t.verdict with None -> [] | Some v -> [ Json.to_string (verdict_json v) ]

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (to_lines t))

(* ---- parsing ------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int j =
  match Json.to_float j with
  | Some f when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error "expected an integer"

let int_field name j =
  let* v = field name j in
  as_int v

let str_field name j =
  let* v = field name j in
  match Json.to_str v with Some s -> Ok s | None -> Error (Printf.sprintf "field %S: expected a string" name)

let float_field name j =
  let* v = field name j in
  match Json.to_float v with Some f -> Ok f | None -> Error (Printf.sprintf "field %S: expected a number" name)

let int_array_field name j =
  let* v = field name j in
  match Json.to_list v with
  | None -> Error (Printf.sprintf "field %S: expected an array" name)
  | Some l ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | x :: rest -> (
            match as_int x with Ok i -> go (i :: acc) rest | Error e -> Error e)
      in
      go [] l

let lits_field name j =
  let* v = field name j in
  match Json.to_list v with
  | None -> Error (Printf.sprintf "field %S: expected an array" name)
  | Some l ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | Json.Arr [ x; v ] :: rest -> (
            match (as_int x, as_int v) with
            | Ok x, Ok v -> go ((x, v) :: acc) rest
            | _ -> Error "literal: expected [var,value]")
        | _ -> Error "literal: expected [var,value]"
      in
      go [] l

let parse_header j =
  let* s = str_field "schema" j in
  if s <> schema then Error (Printf.sprintf "unsupported proof schema %S" s)
  else
    let* workload = str_field "workload" j in
    let* scheme = str_field "scheme" j in
    let* obj = field "objective" j in
    let objective = Json.to_str obj in
    let* pruned =
      let* p = field "pruned" j in
      match p with Json.Bool b -> Ok b | _ -> Error "field \"pruned\": expected a bool"
    in
    let* slack = float_field "slack" j in
    let* vars = field "vars" j in
    let* names =
      match Json.to_list vars with
      | None -> Error "field \"vars\": expected an array"
      | Some l ->
          let rec go acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | x :: rest -> (
                match Json.to_str x with
                | Some s -> go (s :: acc) rest
                | None -> Error "field \"vars\": expected strings")
          in
          go [] l
    in
    let* domain_sizes = int_array_field "domains" j in
    let* digest = str_field "digest" j in
    Ok { workload; scheme; objective; pruned; slack; names; domain_sizes; digest }

let parse_step j =
  let* t = str_field "t" j in
  match t with
  | "del" ->
      let* var = int_field "var" j in
      let* value = int_field "value" j in
      let* why = str_field "why" j in
      let* reason =
        match why with
        | "dominated" ->
            let* by = int_field "by" j in
            Ok (Dominated by)
        | "ac" -> Ok Arc_inconsistent
        | w -> Error (Printf.sprintf "unknown deletion reason %S" w)
      in
      Ok (Del { var; value; reason })
  | "comp" ->
      let* id = int_field "id" j in
      let* vars = int_array_field "vars" j in
      Ok (Comp { id; vars })
  | "ng" ->
      let* comp = int_field "comp" j in
      let* dead = int_field "dead" j in
      let* lits = lits_field "lits" j in
      Ok (Ng { comp; dead; lits })
  | "inc" ->
      let* comp = int_field "comp" j in
      let* lits = lits_field "lits" j in
      let* cost = float_field "cost" j in
      Ok (Inc { comp; lits; cost })
  | k -> Error (Printf.sprintf "unknown step kind %S" k)

let parse_verdict j =
  let* v = str_field "v" j in
  match v with
  | "sat" ->
      let* a = int_array_field "assignment" j in
      Ok (Sat a)
  | "unsat" -> Ok Unsat
  | "optimal" ->
      let* cost = float_field "cost" j in
      let* assignment = int_array_field "assignment" j in
      Ok (Optimal { cost; assignment })
  | "aborted" -> Ok Aborted
  | v -> Error (Printf.sprintf "unknown verdict %S" v)

let of_lines lines =
  let lines =
    List.filteri (fun _ l -> String.trim l <> "") lines
  in
  match lines with
  | [] -> Error "empty proof"
  | first :: rest -> (
      let parse_line no line k =
        match Json.parse line with
        | Error e -> Error (Printf.sprintf "line %d: %s" no e)
        | Ok j -> (
            match k j with
            | Error e -> Error (Printf.sprintf "line %d: %s" no e)
            | Ok v -> Ok v)
      in
      let* header =
        parse_line 1
          first
          (fun j ->
            let* t = str_field "t" j in
            if t <> "header" then Error "first line must be the proof header"
            else parse_header j)
      in
      let rec go no acc verdict = function
        | [] -> Ok { header; steps = List.rev acc; verdict }
        | line :: rest -> (
            match verdict with
            | Some _ -> Error (Printf.sprintf "line %d: content after the verdict" no)
            | None ->
                let* item =
                  parse_line no line (fun j ->
                      let* t = str_field "t" j in
                      if t = "verdict" then
                        let* v = parse_verdict j in
                        Ok (`Verdict v)
                      else
                        let* s = parse_step j in
                        Ok (`Step s))
                in
                (match item with
                | `Verdict v -> go (no + 1) acc (Some v) rest
                | `Step s -> go (no + 1) (s :: acc) None rest))
      in
      go 2 [] None rest)

let read path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        List.rev !lines)
  with
  | exception Sys_error e -> Error e
  | lines -> of_lines lines
