(** Independent certificate checker.

    The checker validates a {!Proof.t} against the {e original}
    network using only the raw relation predicates
    ([Network.allowed] / [Network.verify]) plus its own small
    propagation core — it shares no code with the search engines
    ([Compiled], [Cdl], [Bnb] are never consulted), so a bug in the
    solvers cannot also hide in the checker.

    Justification rules, per step kind:

    - [Del _ Arc_inconsistent]: the value must already be dead in the
      checker's own arc-consistency fixpoint of the current state.
    - [Del _ (Dominated by)]: the witness [by] must be live, its
      supports must be a superset of the removed value's supports over
      live domains, and — under an optimality certificate — its cost
      must not exceed the removed value's.
    - [Ng _]: the nogood must be subsumed (a literal already dead),
      or assuming its literals must yield a propagation conflict in
      the step's component, or refute via the component bound, or
      every live value of some component variable must probe-refute
      (assume it on top of the literals; propagation conflicts or the
      bound rule fires).
    - [Inc _]: only valid under an [Optimal] verdict; must cover the
      component exactly, be consistent on the original network, match
      the recomputed separable cost, and strictly improve the
      component's bound.

    Accepted nogoods strengthen the checker's root state (unit
    nogoods delete the value outright), so later steps may build on
    earlier ones — the RUP-style replay. *)

val check :
  ?eps:float ->
  ?costs:float array array ->
  'a Mlo_csp.Network.t ->
  Proof.t ->
  (unit, string) result
(** [check net proof] replays [proof] against [net] (the original,
    pre-preprocessing network). [costs.(i).(v)] is the separable cost
    of the original value [v] of variable [i]; it is required for
    [Optimal] verdicts. [eps] (default [1e-6]) is the relative
    tolerance for all cost comparisons. The [Error] message names the
    first failing step. *)

val refutes : ?only:(int * int) list -> 'a Mlo_csp.Network.t -> bool
(** [refutes ?only net] is [true] when the checker's own
    arc-consistency fixpoint wipes out some variable's domain — an
    independent confirmation that [net] is unsatisfiable. With
    [~only], propagation uses just the listed constraint pairs, so a
    reported unsat {e core} can be validated in isolation. *)
