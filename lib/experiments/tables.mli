(** Regeneration of every table and figure of the paper's evaluation.

    Each [run_*] function measures this implementation on the synthetic
    benchmark suite and returns structured rows carrying both the
    published value and the measured one; [print_*] renders them in the
    paper's layout.  Absolute values differ from the paper (different
    machines, different decade); the claims being reproduced are the
    orderings and rough ratios — see EXPERIMENTS.md. *)

(** {1 Table 1 — benchmark codes} *)

type table1_row = {
  t1_name : string;
  description : string;
  domain_size : int;  (** measured: total network domain size *)
  paper_domain_size : int;
  data_kb : float;  (** measured *)
  paper_data_kb : float;
}

val run_table1 : unit -> table1_row list
val print_table1 : Format.formatter -> table1_row list -> unit

(** {1 Table 2 — solution times} *)

type effort = {
  work : int;  (** heuristic: combinations scored; solvers: checks *)
  seconds : float;
  capped : bool;  (** the check budget was exhausted *)
}

type table2_row = {
  t2_name : string;
  heuristic : effort;
  base : effort;
  enhanced : effort;
  t2_pruned : int;
      (** values removed by dominance pruning (0 unless requested) *)
  paper : Mlo_workloads.Spec.solution_times;
}

val run_table2 :
  ?seed:int -> ?max_checks:int -> ?prune_dominated:bool -> unit -> table2_row list
(** [max_checks] (default [2_000_000_000]) bounds the base scheme on
    networks where random chronological backtracking degenerates.
    [prune_dominated] (default [false]) applies
    {!Mlo_netgen.Prune.apply} to every network before the solver runs;
    the heuristic column is unaffected (it never sees the network). *)

val print_table2 : Format.formatter -> table2_row list -> unit

(** {1 Figure 4 — breakdown of enhanced-scheme benefits} *)

type fig4_row = {
  f4_name : string;
  shares : (string * float) list;
      (** fraction of the base-to-enhanced saving attributed to each
          single improvement, in the paper's legend order *)
}

val run_fig4 : ?seed:int -> ?max_checks:int -> unit -> fig4_row list
val print_fig4 : Format.formatter -> fig4_row list -> unit

(** {1 Table 3 — execution times of the optimized codes} *)

type table3_row = {
  t3_name : string;
  original_cycles : int;
  heuristic_cycles : int;
  base_cycles : int;
  enhanced_cycles : int;
  paper : Mlo_workloads.Spec.exec_times;
}

val run_table3 :
  ?seed:int -> ?max_checks:int -> ?domains:int -> unit -> table3_row list
(** Simulates each benchmark's [sim_program] in four versions: original
    (row-major, original loop order), heuristic, base-scheme and
    enhanced-scheme optimized.  The four simulations of each benchmark
    run as one parallel batch over [domains] OCaml domains (default: see
    {!Mlo_cachesim.Simulate.run_batch}). *)

val print_table3 : Format.formatter -> table3_row list -> unit

(** {1 Ablation — solver design choices beyond the paper} *)

type ablation_row = {
  ab_name : string;  (** benchmark *)
  per_scheme : (string * effort) list;
      (** work/time for: base, the three single improvements, enhanced,
          enhanced+CBJ, enhanced+FC, AC-3-preprocessed enhanced, and
          min-conflicts local search (work = reassignment steps; capped
          means it got stuck) *)
}

val run_ablation : ?seed:int -> ?max_checks:int -> unit -> ablation_row list
val print_ablation : Format.formatter -> ablation_row list -> unit

val improvement : original:int -> int -> float
(** Percent cycle reduction relative to the original version. *)

val average_improvement : table3_row list -> (table3_row -> int) -> float
(** Average percent improvement of a version (selected by the accessor)
    over the original, across rows — the paper's "on average" summary. *)
