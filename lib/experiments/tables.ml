module Spec = Mlo_workloads.Spec
module Suite = Mlo_workloads.Suite
module Network = Mlo_csp.Network
module Solver = Mlo_csp.Solver
module Schemes = Mlo_csp.Schemes
module Stats = Mlo_csp.Stats
module Build = Mlo_netgen.Build
module Propagation = Mlo_heuristic.Propagation
module Simulate = Mlo_cachesim.Simulate
module Optimizer = Mlo_core.Optimizer
module Trace = Mlo_obs.Trace

let default_max_checks = 2_000_000_000

(* One span per (experiment, workload) row so a trace of [table2]/
   [table3] rolls up into per-benchmark wall-time phases. *)
let row_span experiment name f =
  Trace.with_span ~cat:"experiment" (experiment ^ ":" ^ name) f

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)
(* ------------------------------------------------------------------ *)

type table1_row = {
  t1_name : string;
  description : string;
  domain_size : int;
  paper_domain_size : int;
  data_kb : float;
  paper_data_kb : float;
}

let run_table1 () =
  List.map
    (fun spec ->
      let build = Spec.extract spec in
      {
        t1_name = spec.Spec.name;
        description = spec.Spec.description;
        domain_size = Network.total_domain_size build.Build.network;
        paper_domain_size = spec.Spec.paper_domain_size;
        data_kb = Spec.data_kb spec;
        paper_data_kb = spec.Spec.paper_data_kb;
      })
    (Suite.all ())

let print_table1 ppf rows =
  Format.fprintf ppf "@[<v>Table 1: Benchmark codes.@,";
  Format.fprintf ppf "%-10s %-38s %13s %13s %15s %15s@," "Benchmark"
    "Description" "Domain" "(paper)" "Data" "(paper)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-38s %13d %13d %13.2fKB %13.2fKB@," r.t1_name
        r.description r.domain_size r.paper_domain_size r.data_kb
        r.paper_data_kb)
    rows;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Table 2                                                              *)
(* ------------------------------------------------------------------ *)

type effort = { work : int; seconds : float; capped : bool }

type table2_row = {
  t2_name : string;
  heuristic : effort;
  base : effort;
  enhanced : effort;
  t2_pruned : int;
  paper : Spec.solution_times;
}

let solve_effort config net =
  let r = Solver.solve ~config net in
  {
    work = r.Solver.stats.Stats.checks;
    seconds = r.Solver.stats.Stats.elapsed_s;
    capped = r.Solver.outcome = Solver.Aborted;
  }

let run_table2 ?(seed = 1) ?(max_checks = default_max_checks)
    ?(prune_dominated = false) () =
  List.map
    (fun spec ->
      row_span "table2" spec.Spec.name @@ fun () ->
      let build = Spec.extract spec in
      let build, pruned =
        if prune_dominated then
          let b, info = Mlo_netgen.Prune.apply build in
          (b, Mlo_netgen.Prune.total info)
        else (build, 0)
      in
      let net = build.Build.network in
      let h = Propagation.optimize spec.Spec.program in
      {
        t2_name = spec.Spec.name;
        heuristic =
          {
            work = h.Propagation.evaluations;
            seconds = h.Propagation.elapsed_s;
            capped = false;
          };
        base = solve_effort (Schemes.base ~seed ~max_checks ()) net;
        enhanced = solve_effort (Schemes.enhanced ~seed ~max_checks ()) net;
        t2_pruned = pruned;
        paper = spec.Spec.paper_solution;
      })
    (Suite.all ())

let pp_effort ppf e =
  Format.fprintf ppf "%s%-11d %9.4fs"
    (if e.capped then ">" else " ")
    e.work e.seconds

let print_table2 ppf rows =
  Format.fprintf ppf
    "@[<v>Table 2: Solution times (work = consistency checks; heuristic work = combinations scored).@,";
  Format.fprintf ppf "%-10s | %22s | %22s | %22s | paper h/b/e (s)@,"
    "Benchmark" "Heuristic" "Base" "Enhanced";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s | %a | %a | %a | %.2f / %.2f / %.2f%s@,"
        r.t2_name pp_effort r.heuristic pp_effort r.base pp_effort r.enhanced
        r.paper.Spec.heuristic_s r.paper.Spec.base_s r.paper.Spec.enhanced_s
        (if r.t2_pruned > 0 then
           Printf.sprintf " | pruned %d" r.t2_pruned
         else ""))
    rows;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Figure 4                                                             *)
(* ------------------------------------------------------------------ *)

type fig4_row = { f4_name : string; shares : (string * float) list }

let run_fig4 ?(seed = 1) ?(max_checks = default_max_checks) () =
  List.map
    (fun spec ->
      row_span "fig4" spec.Spec.name @@ fun () ->
      let build = Spec.extract spec in
      let net = build.Build.network in
      let checks config = (solve_effort config net).work in
      let base_checks = checks (Schemes.base ~seed ~max_checks ()) in
      let enhanced_checks = checks (Schemes.enhanced ~seed ~max_checks ()) in
      let single =
        List.map
          (fun a ->
            (a.Schemes.label, checks a.Schemes.config))
          (Schemes.figure4_schemes ~seed ~max_checks ())
      in
      {
        f4_name = spec.Spec.name;
        shares = Schemes.breakdown ~base_checks ~enhanced_checks ~single;
      })
    (Suite.all ())

let print_fig4 ppf rows =
  Format.fprintf ppf
    "@[<v>Figure 4: Breakdown of benefits of the enhanced scheme (share of base-to-enhanced saving).@,";
  (match rows with
  | [] -> ()
  | r0 :: _ ->
    Format.fprintf ppf "%-10s" "Benchmark";
    List.iter (fun (l, _) -> Format.fprintf ppf " %20s" l) r0.shares;
    Format.fprintf ppf "@,");
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s" r.f4_name;
      List.iter (fun (_, s) -> Format.fprintf ppf " %19.1f%%" (100. *. s)) r.shares;
      Format.fprintf ppf "@,")
    rows;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Table 3                                                              *)
(* ------------------------------------------------------------------ *)

type table3_row = {
  t3_name : string;
  original_cycles : int;
  heuristic_cycles : int;
  base_cycles : int;
  enhanced_cycles : int;
  paper : Spec.exec_times;
}

(* The base scheme's random decisions occasionally degenerate; retry a
   few seeds before giving up, as any practical implementation would. *)
let optimize_with_retries scheme_of_seed ~candidates ~max_checks ~seed prog =
  let rec go attempt =
    if attempt >= 5 then
      raise
        (Optimizer.No_solution
           (Mlo_ir.Program.name prog ^ ": all retry seeds exhausted"))
    else
      try
        Optimizer.optimize ~candidates ~max_checks
          (scheme_of_seed (seed + attempt))
          prog
      with Optimizer.No_solution _ -> go (attempt + 1)
  in
  go 0

let run_table3 ?(seed = 1) ?(max_checks = default_max_checks) ?domains () =
  List.map
    (fun spec ->
      row_span "table3" spec.Spec.name @@ fun () ->
      let prog = spec.Spec.sim_program in
      let candidates = spec.Spec.candidates in
      let heuristic_sol = Optimizer.optimize Optimizer.Heuristic prog in
      let base_sol =
        optimize_with_retries
          (fun s -> Optimizer.Base s)
          ~candidates ~max_checks ~seed prog
      in
      let enhanced_sol =
        optimize_with_retries
          (fun s -> Optimizer.Enhanced s)
          ~candidates ~max_checks ~seed prog
      in
      (* the 4-version sweep simulates as one parallel batch *)
      let original, optimized =
        Optimizer.simulate_versions ?domains prog
          [ heuristic_sol; base_sol; enhanced_sol ]
      in
      match optimized with
      | [ heuristic; base; enhanced ] ->
        {
          t3_name = spec.Spec.name;
          original_cycles = Simulate.cycles original;
          heuristic_cycles = Simulate.cycles heuristic;
          base_cycles = Simulate.cycles base;
          enhanced_cycles = Simulate.cycles enhanced;
          paper = spec.Spec.paper_exec;
        }
      | _ -> assert false)
    (Suite.all ())

(* ------------------------------------------------------------------ *)
(* Ablation                                                             *)
(* ------------------------------------------------------------------ *)

type ablation_row = {
  ab_name : string;
  per_scheme : (string * effort) list;
}

let run_ablation ?(seed = 1) ?(max_checks = default_max_checks) () =
  List.map
    (fun spec ->
      row_span "ablation" spec.Spec.name @@ fun () ->
      let build = Spec.extract spec in
      let net = build.Build.network in
      let schemes =
        [ ("base", Schemes.base ~seed ~max_checks ()) ]
        @ List.map
            (fun a -> (a.Schemes.label, a.Schemes.config))
            (Schemes.figure4_schemes ~seed ~max_checks ())
        @ [ ("enhanced", Schemes.enhanced ~seed ~max_checks ()) ]
        @ List.map
            (fun a -> (a.Schemes.label, a.Schemes.config))
            (Schemes.extension_schemes ~seed ~max_checks ())
      in
      let per_scheme =
        List.map (fun (label, config) -> (label, solve_effort config net)) schemes
      in
      (* AC-2001 preprocessing is covered by extension_schemes's
         Enhanced+AC entry: work counts search checks only, seconds
         include propagation *)
      let min_conflicts =
        let t0 = Mlo_csp.Clock.wall_s () in
        let r =
          Mlo_csp.Local_search.solve
            ~config:{ Mlo_csp.Local_search.default_config with seed }
            net
        in
        {
          work = r.Mlo_csp.Local_search.steps;
          seconds = Mlo_csp.Clock.wall_s () -. t0;
          capped =
            (match r.Mlo_csp.Local_search.outcome with
            | Mlo_csp.Local_search.Solution _ -> false
            | Mlo_csp.Local_search.Stuck _ -> true);
        }
      in
      {
        ab_name = spec.Spec.name;
        per_scheme = per_scheme @ [ ("MinConflicts", min_conflicts) ];
      })
    (Suite.all ())

let print_ablation ppf rows =
  Format.fprintf ppf
    "@[<v>Ablation: solver design choices (work = consistency checks; \
     MinConflicts = reassignment steps, '>' = stuck).@,";
  (match rows with
  | [] -> ()
  | r0 :: _ ->
    Format.fprintf ppf "%-10s" "Benchmark";
    List.iter (fun (l, _) -> Format.fprintf ppf " %18s" l) r0.per_scheme;
    Format.fprintf ppf "@,");
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s" r.ab_name;
      List.iter
        (fun (_, e) ->
          Format.fprintf ppf " %s%17d" (if e.capped then ">" else " ") e.work)
        r.per_scheme;
      Format.fprintf ppf "@,")
    rows;
  Format.fprintf ppf "@]"

let improvement ~original cycles =
  100. *. (1. -. (float_of_int cycles /. float_of_int original))

let average_improvement rows accessor =
  let sum =
    List.fold_left
      (fun acc r -> acc +. improvement ~original:r.original_cycles (accessor r))
      0. rows
  in
  sum /. float_of_int (List.length rows)

let print_table3 ppf rows =
  Format.fprintf ppf
    "@[<v>Table 3: Execution (simulated cycles; %% = improvement over original).@,";
  Format.fprintf ppf "%-10s %14s %20s %20s %20s | paper o/h/b/e (s)@,"
    "Benchmark" "Original" "Heuristic" "Base" "Enhanced";
  List.iter
    (fun r ->
      let pct c = improvement ~original:r.original_cycles c in
      Format.fprintf ppf
        "%-10s %14d %13d %5.1f%% %13d %5.1f%% %13d %5.1f%% | %.2f / %.2f / %.2f / %.2f@,"
        r.t3_name r.original_cycles r.heuristic_cycles (pct r.heuristic_cycles)
        r.base_cycles (pct r.base_cycles) r.enhanced_cycles
        (pct r.enhanced_cycles) r.paper.Spec.original_s
        r.paper.Spec.heuristic_exec_s r.paper.Spec.base_exec_s
        r.paper.Spec.enhanced_exec_s)
    rows;
  Format.fprintf ppf "Average improvement: heuristic %.2f%%, base %.2f%%, enhanced %.2f%%"
    (average_improvement rows (fun r -> r.heuristic_cycles))
    (average_improvement rows (fun r -> r.base_cycles))
    (average_improvement rows (fun r -> r.enhanced_cycles));
  Format.fprintf ppf "@,(paper: 42.49%%, 57.17%%, 57.95%%)@]"
