module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Layout = Mlo_layout.Layout
module Transform = Mlo_layout.Transform

type entry = { base : int; transform : Transform.t; elem_size : int }

type t = { entries : (string, entry) Hashtbl.t; footprint : int }

let round_up x align = (x + align - 1) / align * align

type transform_cache = (string, Layout.t * Transform.t) Hashtbl.t

let transform_cache () : transform_cache = Hashtbl.create 32

let build ?(align = 64) ?cache prog ~layouts =
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Address_map.build: align must be a positive power of two";
  let entries = Hashtbl.create 16 in
  let cursor = ref 0 in
  Array.iter
    (fun info ->
      let name = Array_info.name info in
      let rank = Array_info.rank info in
      let layout =
        match layouts name with
        | Some l ->
          if Layout.rank l <> rank then
            invalid_arg
              (Printf.sprintf "Address_map.build: layout rank for %s" name);
          l
        | None -> if rank = 1 then Layout.trivial else Layout.row_major rank
      in
      let transform =
        let fresh () = Transform.make layout ~extents:(Array_info.extents info) in
        match cache with
        | None -> fresh ()
        | Some tbl -> (
          match Hashtbl.find_opt tbl name with
          | Some (l, t) when Layout.equal l layout -> t
          | Some _ | None ->
            let t = fresh () in
            Hashtbl.replace tbl name (layout, t);
            t)
      in
      let elem_size = Array_info.elem_size info in
      let base = round_up !cursor align in
      cursor := base + (Transform.footprint_cells transform * elem_size);
      Hashtbl.replace entries name { base; transform; elem_size })
    (Program.arrays prog);
  { entries; footprint = !cursor }

let entry t name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Address_map: unknown array %S (not in the program \
                       this map was built from)" name)

let address t name idx =
  let e = entry t name in
  e.base + (Transform.cell_index e.transform idx * e.elem_size)

let footprint_bytes t = t.footprint
let base t name = (entry t name).base
let transform t name = (entry t name).transform
let elem_size t name = (entry t name).elem_size
