(** One level of set-associative cache with LRU replacement.

    Addresses are byte addresses (plain [int]s); a cache maps them to
    lines of [line_bytes] and tracks only tags — no data is stored, as the
    simulator is trace-driven.  Writes allocate like reads (the paper's
    embedded data caches). *)

type geometry = {
  size_bytes : int;  (** total capacity *)
  assoc : int;  (** ways per set *)
  line_bytes : int;  (** line (block) size *)
}

val geometry : size_bytes:int -> assoc:int -> line_bytes:int -> geometry
(** Validates a geometry.  Raises [Invalid_argument] unless all three are
    positive powers of two and [size_bytes >= assoc * line_bytes]. *)

type t

val create : geometry -> t

val access : t -> int -> bool
(** [access t addr] touches the line containing byte [addr]; true on hit.
    On miss the line is filled, evicting the set's LRU way. *)

val contains : t -> int -> bool
(** Lookup without side effects. *)

val invalidate_all : t -> unit

val sets : t -> int
val hits : t -> int
val misses : t -> int
val accesses : t -> int
val reset_counters : t -> unit

val pp : Format.formatter -> t -> unit
