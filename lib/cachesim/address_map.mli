(** Laying the program's arrays out in a flat byte address space.

    Every array gets a base address (line-aligned) and an address map
    derived from its chosen layout ({!Mlo_layout.Transform}); the address
    of an element is [base + cell_index * elem_size].  Skewed layouts can
    enlarge an array's footprint (bounding-box holes) — reflected in the
    bases of subsequent arrays, exactly as a compiler's data remapping
    would. *)

type t

type transform_cache
(** A reusable per-array-name memo of linearized transforms, for callers
    that build many maps over the same program varying only a few
    layouts (the locality profiler probes one array at a time).  Not
    thread-safe; share one per thread of queries. *)

val transform_cache : unit -> transform_cache

val build :
  ?align:int ->
  ?cache:transform_cache ->
  Mlo_ir.Program.t ->
  layouts:(string -> Mlo_layout.Layout.t option) ->
  t
(** [build prog ~layouts] assigns addresses in declaration order.  Arrays
    for which [layouts] returns [None] keep the row-major default.
    [align] (default 64) must be a positive power of two; array bases are
    rounded up to it.  With [cache], an array whose resolved layout
    equals the one cached under its name reuses the cached transform
    instead of re-linearizing it ({!Mlo_layout.Transform.make} is pure in
    (layout, extents), and a name's extents are fixed within a program).
    Raises [Invalid_argument] if a provided layout's rank differs from
    the array's. *)

val address : t -> string -> Mlo_linalg.Intvec.t -> int
(** Byte address of an array element (by original index vector).
    Raises [Invalid_argument] naming the array if it is not part of the
    program this map was built from (an optimizer/simulator mismatch). *)

val footprint_bytes : t -> int
(** Total bytes spanned, including transform holes and alignment. *)

val base : t -> string -> int
val transform : t -> string -> Mlo_layout.Transform.t
val elem_size : t -> string -> int
