(** Laying the program's arrays out in a flat byte address space.

    Every array gets a base address (line-aligned) and an address map
    derived from its chosen layout ({!Mlo_layout.Transform}); the address
    of an element is [base + cell_index * elem_size].  Skewed layouts can
    enlarge an array's footprint (bounding-box holes) — reflected in the
    bases of subsequent arrays, exactly as a compiler's data remapping
    would. *)

type t

val build :
  ?align:int ->
  Mlo_ir.Program.t ->
  layouts:(string -> Mlo_layout.Layout.t option) ->
  t
(** [build prog ~layouts] assigns addresses in declaration order.  Arrays
    for which [layouts] returns [None] keep the row-major default.
    [align] (default 64) must be a positive power of two; array bases are
    rounded up to it.  Raises [Invalid_argument] if a provided layout's
    rank differs from the array's. *)

val address : t -> string -> Mlo_linalg.Intvec.t -> int
(** Byte address of an array element (by original index vector).
    Raises [Invalid_argument] naming the array if it is not part of the
    program this map was built from (an optimizer/simulator mismatch). *)

val footprint_bytes : t -> int
(** Total bytes spanned, including transform holes and alignment. *)

val base : t -> string -> int
val transform : t -> string -> Mlo_layout.Transform.t
val elem_size : t -> string -> int
