module Program = Mlo_ir.Program
module Loop_nest = Mlo_ir.Loop_nest
module Access = Mlo_ir.Access
module Trace = Mlo_obs.Trace

type report = {
  counters : Hierarchy.counters;
  footprint_bytes : int;
  trip_count : int;
}

(* The interpretive engine, kept verbatim as the oracle the compiled
   engine is tested against: per access it evaluates the affine index
   expressions, looks the array up by name and applies the layout
   transform's matrix arithmetic. *)
let run_reference ?(config = Hierarchy.paper_config) prog ~layouts =
  Trace.with_span ~cat:"cachesim" "simulate-reference" @@ fun () ->
  let amap = Address_map.build prog ~layouts in
  let hier = Hierarchy.create config in
  let trips = ref 0 in
  Array.iter
    (fun nest ->
      let accesses = Loop_nest.accesses nest in
      (* precompute per-access array names to avoid re-allocating *)
      let names = Array.map Access.array_name accesses in
      Loop_nest.iter nest (fun iter ->
          incr trips;
          Array.iteri
            (fun k a ->
              let element = Access.element_at a iter in
              let addr = Address_map.address amap names.(k) element in
              ignore (Hierarchy.access hier addr))
            accesses))
    (Program.nests prog);
  {
    counters = Hierarchy.counters hier;
    footprint_bytes = Address_map.footprint_bytes amap;
    trip_count = !trips;
  }

let report_of_compiled ?config ct =
  {
    counters = Compiled_trace.simulate ?config ct;
    footprint_bytes = Compiled_trace.footprint_bytes ct;
    trip_count = Compiled_trace.trip_count ct;
  }

let run ?config prog ~layouts =
  report_of_compiled ?config (Compiled_trace.compile prog ~layouts)

(* ------------------------------------------------------------------ *)
(* Parallel batch evaluation                                            *)
(* ------------------------------------------------------------------ *)

(* The Domain pool lives in Mlo_support.Pool (shared with the
   component-wise solver); each simulation owns its hierarchy and
   compiled trace, so jobs are index-private as the pool requires. *)
let parallel_iter = Mlo_support.Pool.parallel_iter
let default_domains = Mlo_support.Pool.default_domains

let collect ?config ~domains jobs =
  let n = Array.length jobs in
  Trace.with_span ~cat:"cachesim" "sweep"
    ~args:[ ("jobs", Trace.Int n); ("domains", Trace.Int domains) ]
  @@ fun () ->
  let results = Array.make n None in
  parallel_iter ~domains n (fun i ->
      results.(i) <- Some (report_of_compiled ?config (jobs.(i) ())));
  Array.to_list
    (Array.map
       (function Some r -> r | None -> assert false)
       results)

let run_many ?config ?domains prog ~layouts_list =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  let skel = Compiled_trace.skeleton prog in
  let jobs =
    Array.of_list
      (List.map
         (fun layouts () -> Compiled_trace.instantiate skel ~layouts)
         layouts_list)
  in
  collect ?config ~domains jobs

let run_batch ?config ?domains progs =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  let jobs =
    Array.of_list
      (List.map
         (fun (prog, layouts) () -> Compiled_trace.compile prog ~layouts)
         progs)
  in
  collect ?config ~domains jobs

let cycles r = r.counters.Hierarchy.cycles

let speedup ~baseline r = float_of_int (cycles baseline) /. float_of_int (cycles r)

let improvement_percent ~baseline r =
  100. *. (1. -. (float_of_int (cycles r) /. float_of_int (cycles baseline)))

let pp_report ppf r =
  Format.fprintf ppf "%a footprint=%dB trips=%d" Hierarchy.pp_counters
    r.counters r.footprint_bytes r.trip_count
