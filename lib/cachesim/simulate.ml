module Program = Mlo_ir.Program
module Loop_nest = Mlo_ir.Loop_nest
module Access = Mlo_ir.Access

type report = {
  counters : Hierarchy.counters;
  footprint_bytes : int;
  trip_count : int;
}

let run ?(config = Hierarchy.paper_config) prog ~layouts =
  let amap = Address_map.build prog ~layouts in
  let hier = Hierarchy.create config in
  let trips = ref 0 in
  Array.iter
    (fun nest ->
      let accesses = Loop_nest.accesses nest in
      (* precompute per-access array names to avoid re-allocating *)
      let names = Array.map Access.array_name accesses in
      Loop_nest.iter nest (fun iter ->
          incr trips;
          Array.iteri
            (fun k a ->
              let element = Access.element_at a iter in
              let addr = Address_map.address amap names.(k) element in
              ignore (Hierarchy.access hier addr))
            accesses))
    (Program.nests prog);
  {
    counters = Hierarchy.counters hier;
    footprint_bytes = Address_map.footprint_bytes amap;
    trip_count = !trips;
  }

let cycles r = r.counters.Hierarchy.cycles

let speedup ~baseline r = float_of_int (cycles baseline) /. float_of_int (cycles r)

let improvement_percent ~baseline r =
  100. *. (1. -. (float_of_int (cycles r) /. float_of_int (cycles baseline)))

let pp_report ppf r =
  Format.fprintf ppf "%a footprint=%dB trips=%d" Hierarchy.pp_counters
    r.counters r.footprint_bytes r.trip_count
