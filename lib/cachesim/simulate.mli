(** Trace-driven execution of a program under chosen layouts.

    Walks every loop nest in program order, issuing one data access per
    array reference per iteration to the cache hierarchy, at the address
    the layout assignment dictates.  This is the substitute for the
    paper's SimpleScalar runs: it reproduces the memory behaviour that
    Table 3's execution times measure. *)

type report = {
  counters : Hierarchy.counters;
  footprint_bytes : int;
  trip_count : int;  (** total loop iterations executed *)
}

val run :
  ?config:Hierarchy.config ->
  Mlo_ir.Program.t ->
  layouts:(string -> Mlo_layout.Layout.t option) ->
  report
(** Simulates the program as written (no loop restructuring is applied
    here; restructure first with {!Mlo_netgen.Select} if desired) on a
    cold hierarchy.  [config] defaults to {!Hierarchy.paper_config}. *)

val cycles : report -> int

val speedup : baseline:report -> report -> float
(** [speedup ~baseline r] is [cycles baseline / cycles r]. *)

val improvement_percent : baseline:report -> report -> float
(** Percentage reduction in cycles relative to [baseline] (the paper's
    Table 3 summary metric). *)

val pp_report : Format.formatter -> report -> unit
