(** Trace-driven execution of a program under chosen layouts.

    Walks every loop nest in program order, issuing one data access per
    array reference per iteration to the cache hierarchy, at the address
    the layout assignment dictates.  This is the substitute for the
    paper's SimpleScalar runs: it reproduces the memory behaviour that
    Table 3's execution times measure.

    Two engines produce identical counters: {!run} drives the compiled
    address streams of {!Compiled_trace} (allocation-free inner loop),
    {!run_reference} keeps the interpretive per-access evaluation as the
    oracle.  {!run_many} amortizes trace compilation across layout
    assignments and fans the simulations out over OCaml 5 domains. *)

type report = {
  counters : Hierarchy.counters;
  footprint_bytes : int;
  trip_count : int;  (** total loop iterations executed *)
}

val run :
  ?config:Hierarchy.config ->
  Mlo_ir.Program.t ->
  layouts:(string -> Mlo_layout.Layout.t option) ->
  report
(** Simulates the program as written (no loop restructuring is applied
    here; restructure first with {!Mlo_netgen.Select} if desired) on a
    cold hierarchy.  [config] defaults to {!Hierarchy.paper_config}. *)

val run_reference :
  ?config:Hierarchy.config ->
  Mlo_ir.Program.t ->
  layouts:(string -> Mlo_layout.Layout.t option) ->
  report
(** The pre-compilation engine: same semantics and counters as {!run},
    evaluated interpretively (affine eval + name lookup + transform
    arithmetic per access).  Kept as the equivalence oracle. *)

val run_many :
  ?config:Hierarchy.config ->
  ?domains:int ->
  Mlo_ir.Program.t ->
  layouts_list:(string -> Mlo_layout.Layout.t option) list ->
  report list
(** Evaluate one program under each of N layout assignments, reusing the
    compiled iteration skeleton across assignments and running the
    independent simulations on [domains] OCaml domains (default:
    [min 8 (Domain.recommended_domain_count ())], capped at N; pass
    [~domains:1] to force a serial sweep).  The layout functions must be
    pure — they are called from worker domains.  Reports come back in
    input order. *)

val run_batch :
  ?config:Hierarchy.config ->
  ?domains:int ->
  (Mlo_ir.Program.t * (string -> Mlo_layout.Layout.t option)) list ->
  report list
(** Like {!run_many} for jobs that differ in program as well as layouts
    (e.g. Table 3's per-version restructured programs): each job is
    compiled and simulated on the domain pool, reports in input order. *)

val cycles : report -> int

val speedup : baseline:report -> report -> float
(** [speedup ~baseline r] is [cycles baseline / cycles r]. *)

val improvement_percent : baseline:report -> report -> float
(** Percentage reduction in cycles relative to [baseline] (the paper's
    Table 3 summary metric). *)

val pp_report : Format.formatter -> report -> unit
