type config = {
  l1 : Cache.geometry;
  l2 : Cache.geometry;
  l1_latency : int;
  l2_latency : int;
  memory_latency : int;
  compute_cycles_per_access : int;
}

let paper_config =
  {
    l1 = Cache.geometry ~size_bytes:8192 ~assoc:2 ~line_bytes:32;
    l2 = Cache.geometry ~size_bytes:65536 ~assoc:4 ~line_bytes:64;
    l1_latency = 1;
    l2_latency = 6;
    memory_latency = 70;
    compute_cycles_per_access = 1;
  }

type t = {
  config : config;
  l1 : Cache.t;
  l2 : Cache.t;
  (* per-level total access cost, compute cycles included, hoisted out
     of the per-access path *)
  cost_l1 : int;
  cost_l2 : int;
  cost_mem : int;
  mutable cycles : int;
}

let create config =
  {
    config;
    l1 = Cache.create config.l1;
    l2 = Cache.create config.l2;
    cost_l1 = config.l1_latency + config.compute_cycles_per_access;
    cost_l2 =
      config.l1_latency + config.l2_latency + config.compute_cycles_per_access;
    cost_mem =
      config.l1_latency + config.l2_latency + config.memory_latency
      + config.compute_cycles_per_access;
    cycles = 0;
  }

type counters = {
  accesses : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  cycles : int;
}

let access t addr =
  let cost =
    if Cache.access t.l1 addr then t.cost_l1
    else if Cache.access t.l2 addr then t.cost_l2
    else t.cost_mem
  in
  t.cycles <- t.cycles + cost;
  cost

let counters t =
  {
    accesses = Cache.accesses t.l1;
    l1_hits = Cache.hits t.l1;
    l1_misses = Cache.misses t.l1;
    l2_hits = Cache.hits t.l2;
    l2_misses = Cache.misses t.l2;
    cycles = t.cycles;
  }

let reset t =
  Cache.invalidate_all t.l1;
  Cache.invalidate_all t.l2;
  Cache.reset_counters t.l1;
  Cache.reset_counters t.l2;
  t.cycles <- 0

let l1_miss_rate c =
  if c.accesses = 0 then 0. else float_of_int c.l1_misses /. float_of_int c.accesses

let l2_miss_rate c =
  let probes = c.l2_hits + c.l2_misses in
  if probes = 0 then 0. else float_of_int c.l2_misses /. float_of_int probes

let pp_counters ppf c =
  Format.fprintf ppf
    "accesses=%d L1(h=%d m=%d %.2f%%) L2(h=%d m=%d %.2f%%) cycles=%d"
    c.accesses c.l1_hits c.l1_misses
    (100. *. l1_miss_rate c)
    c.l2_hits c.l2_misses
    (100. *. l2_miss_rate c)
    c.cycles
