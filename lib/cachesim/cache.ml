type geometry = { size_bytes : int; assoc : int; line_bytes : int }

let is_pow2 x = x > 0 && x land (x - 1) = 0

let geometry ~size_bytes ~assoc ~line_bytes =
  if not (is_pow2 size_bytes && is_pow2 assoc && is_pow2 line_bytes) then
    invalid_arg "Cache.geometry: sizes must be positive powers of two";
  if size_bytes < assoc * line_bytes then
    invalid_arg "Cache.geometry: capacity below one set";
  { size_bytes; assoc; line_bytes }

type t = {
  geom : geometry;
  num_sets : int;
  line_shift : int;
  set_shift : int; (* log2 num_sets, hoisted out of the per-access path *)
  set_mask : int; (* num_sets - 1 *)
  assoc : int;
  tags : int array; (* num_sets * assoc; -1 = invalid *)
  stamps : int array; (* LRU timestamps, parallel to tags *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let log2 x =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 x

let create geom =
  let num_sets = geom.size_bytes / (geom.assoc * geom.line_bytes) in
  {
    geom;
    num_sets;
    line_shift = log2 geom.line_bytes;
    set_shift = log2 num_sets;
    set_mask = num_sets - 1;
    assoc = geom.assoc;
    tags = Array.make (num_sets * geom.assoc) (-1);
    stamps = Array.make (num_sets * geom.assoc) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let locate t addr =
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  let tag = line lsr t.set_shift in
  (set * t.assoc, tag)

(* Probe the set; the hit slot, or -1 on miss (sentinel, not [option],
   so the hot path never allocates). *)
let probe t base tag =
  let rec go w =
    if w >= t.assoc then -1
    else if t.tags.(base + w) = tag then base + w
    else go (w + 1)
  in
  go 0

let contains t addr =
  let base, tag = locate t addr in
  probe t base tag >= 0

let access t addr =
  let base, tag = locate t addr in
  t.clock <- t.clock + 1;
  let slot = probe t base tag in
  if slot >= 0 then begin
    t.stamps.(slot) <- t.clock;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* victim = LRU way (or an invalid way if one exists) *)
    let victim = ref base in
    for w = 1 to t.assoc - 1 do
      if t.stamps.(base + w) < t.stamps.(!victim) then victim := base + w
    done;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.clock;
    false
  end

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0

let sets t = t.num_sets
let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0

let pp ppf t =
  Format.fprintf ppf "%dB %d-way %dB-line: %d hits / %d misses"
    t.geom.size_bytes t.geom.assoc t.geom.line_bytes t.hits t.misses
