module Program = Mlo_ir.Program
module Loop_nest = Mlo_ir.Loop_nest
module Access = Mlo_ir.Access
module Transform = Mlo_layout.Transform
module Trace = Mlo_obs.Trace

(* ------------------------------------------------------------------ *)
(* Skeleton: the layout-independent part of a compiled trace            *)
(* ------------------------------------------------------------------ *)

type skel_access = {
  sa_name : string;
  sa_matrix : int array array; (* rank rows x depth cols *)
  sa_offset : int array; (* rank *)
}

type skel_nest = {
  sn_counts : int array; (* per-level trip count, outermost first *)
  sn_lows : int array; (* per-level lower bound *)
  sn_accesses : skel_access array;
}

type skeleton = {
  sk_prog : Program.t;
  sk_nests : skel_nest array;
  sk_trips : int;
}

let skeleton prog =
  let nests =
    Array.map
      (fun nest ->
        let loops = Loop_nest.loops nest in
        {
          sn_counts = Array.map (fun l -> l.Loop_nest.hi - l.Loop_nest.lo) loops;
          sn_lows = Array.map (fun l -> l.Loop_nest.lo) loops;
          sn_accesses =
            Array.map
              (fun a ->
                {
                  sa_name = Access.array_name a;
                  sa_matrix = Access.matrix a;
                  sa_offset = Access.offset a;
                })
              (Loop_nest.accesses nest);
        })
      (Program.nests prog)
  in
  let trips =
    Array.fold_left
      (fun acc n -> acc + Array.fold_left ( * ) 1 n.sn_counts)
      0 nests
  in
  { sk_prog = prog; sk_nests = nests; sk_trips = trips }

(* ------------------------------------------------------------------ *)
(* Compiled trace: affine address streams                               *)
(* ------------------------------------------------------------------ *)

type compiled_nest = {
  counts : int array; (* per-level trip count *)
  addr0 : int array; (* per access, byte address at the nest's lower corner *)
  deltas : int array array; (* deltas.(level).(access): byte increment *)
}

type t = {
  nests : compiled_nest array;
  footprint : int;
  trips : int;
  skel : skeleton; (* kept so the affine forms stay inspectable *)
}

type access_form = {
  form_array : string;
  form_addr0 : int; (* byte address at the nest's lower corner *)
  form_deltas : int array; (* per level, outermost first *)
}

type nest_form = {
  form_nest : string;
  form_counts : int array; (* per-level trip count, outermost first *)
  form_accesses : access_form array;
}

let instantiate skel ~layouts =
  Trace.with_span ~cat:"cachesim" "compile-trace" @@ fun () ->
  let amap = Address_map.build skel.sk_prog ~layouts in
  let nests =
    Array.map
      (fun sn ->
        let depth = Array.length sn.sn_counts in
        let na = Array.length sn.sn_accesses in
        let addr0 = Array.make na 0 in
        let deltas = Array.make_matrix depth na 0 in
        Array.iteri
          (fun k sa ->
            let base = Address_map.base amap sa.sa_name in
            let elem = Address_map.elem_size amap sa.sa_name in
            let lin, c0 = Transform.linear_map (Address_map.transform amap sa.sa_name) in
            let rank = Array.length sa.sa_offset in
            (* address(iter) = base + elem * (c0 + sum_j lin_j * (A_j . iter + off_j))
               collapses to addr0 + sum_level delta_level * (iter_level - low_level) *)
            let cell0 = ref c0 in
            for j = 0 to rank - 1 do
              let row = sa.sa_matrix.(j) in
              let v = ref sa.sa_offset.(j) in
              for l = 0 to depth - 1 do
                v := !v + (row.(l) * sn.sn_lows.(l))
              done;
              cell0 := !cell0 + (lin.(j) * !v)
            done;
            addr0.(k) <- base + (elem * !cell0);
            for l = 0 to depth - 1 do
              let d = ref 0 in
              for j = 0 to rank - 1 do
                d := !d + (lin.(j) * sa.sa_matrix.(j).(l))
              done;
              deltas.(l).(k) <- elem * !d
            done)
          sn.sn_accesses;
        { counts = sn.sn_counts; addr0; deltas })
      skel.sk_nests
  in
  {
    nests;
    footprint = Address_map.footprint_bytes amap;
    trips = skel.sk_trips;
    skel;
  }

let compile prog ~layouts = instantiate (skeleton prog) ~layouts

let footprint_bytes t = t.footprint
let trip_count t = t.trips

let forms t =
  let prog_nests = Program.nests t.skel.sk_prog in
  Array.mapi
    (fun i cn ->
      let sn = t.skel.sk_nests.(i) in
      {
        form_nest = Loop_nest.name prog_nests.(i);
        form_counts = Array.copy cn.counts;
        form_accesses =
          Array.init
            (Array.length sn.sn_accesses)
            (fun k ->
              {
                form_array = sn.sn_accesses.(k).sa_name;
                form_addr0 = cn.addr0.(k);
                form_deltas =
                  Array.init (Array.length cn.counts) (fun l ->
                      cn.deltas.(l).(k));
              });
      })
    t.nests

(* Compiled forms of a subset of the nests, without materializing the
   whole trace: the same address map (bases shift with every footprint
   before them, so it must cover the full program) and the same affine
   folds as [instantiate], but run only for the requested nest indices.
   This is the locality profiler's query shape — one array's layout
   varies, only the nests touching it need re-deriving — and with a
   transform cache the per-query cost is one Transform.make plus the
   touched nests' folds instead of the whole program's. *)
let forms_of_nests ?cache skel ~layouts ~nests:nest_idx =
  let amap = Address_map.build ?cache skel.sk_prog ~layouts in
  let prog_nests = Program.nests skel.sk_prog in
  Array.map
    (fun i ->
      let sn = skel.sk_nests.(i) in
      let depth = Array.length sn.sn_counts in
      {
        form_nest = Loop_nest.name prog_nests.(i);
        form_counts = Array.copy sn.sn_counts;
        form_accesses =
          Array.map
            (fun sa ->
              let base = Address_map.base amap sa.sa_name in
              let elem = Address_map.elem_size amap sa.sa_name in
              let lin, c0 =
                Transform.linear_map (Address_map.transform amap sa.sa_name)
              in
              let rank = Array.length sa.sa_offset in
              let cell0 = ref c0 in
              for j = 0 to rank - 1 do
                let row = sa.sa_matrix.(j) in
                let v = ref sa.sa_offset.(j) in
                for l = 0 to depth - 1 do
                  v := !v + (row.(l) * sn.sn_lows.(l))
                done;
                cell0 := !cell0 + (lin.(j) * !v)
              done;
              let deltas =
                Array.init depth (fun l ->
                    let d = ref 0 in
                    for j = 0 to rank - 1 do
                      d := !d + (lin.(j) * sa.sa_matrix.(j).(l))
                    done;
                    elem * !d)
              in
              {
                form_array = sa.sa_name;
                form_addr0 = base + (elem * !cell0);
                form_deltas = deltas;
              })
            sn.sn_accesses;
      })
    nest_idx

(* ------------------------------------------------------------------ *)
(* Flattened two-level hierarchy                                        *)
(* ------------------------------------------------------------------ *)

(* The probe/fill path of Cache+Hierarchy specialized into one record of
   flat arrays and ints, so a simulated access is shifts, masks and array
   reads with no cross-module calls and no allocation.  The replacement
   and accounting logic mirrors Cache.access / Hierarchy.access exactly
   (enforced by the equivalence properties in test/test_cachesim.ml). *)
type level = {
  tags : int array;
  stamps : int array;
  line_shift : int;
  set_shift : int;
  set_mask : int;
  assoc : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

type hier = {
  l1 : level;
  l2 : level;
  cost_l1 : int; (* L1 hit, compute included *)
  cost_l2 : int; (* L1 miss, L2 hit *)
  cost_mem : int; (* miss in both *)
  mutable cycles : int;
}

let log2 x =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 x

let make_level (g : Cache.geometry) =
  let num_sets = g.Cache.size_bytes / (g.Cache.assoc * g.Cache.line_bytes) in
  {
    tags = Array.make (num_sets * g.Cache.assoc) (-1);
    stamps = Array.make (num_sets * g.Cache.assoc) 0;
    line_shift = log2 g.Cache.line_bytes;
    set_shift = log2 num_sets;
    set_mask = num_sets - 1;
    assoc = g.Cache.assoc;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let make_hier (config : Hierarchy.config) =
  {
    l1 = make_level config.Hierarchy.l1;
    l2 = make_level config.Hierarchy.l2;
    cost_l1 =
      config.Hierarchy.l1_latency + config.Hierarchy.compute_cycles_per_access;
    cost_l2 =
      config.Hierarchy.l1_latency + config.Hierarchy.l2_latency
      + config.Hierarchy.compute_cycles_per_access;
    cost_mem =
      config.Hierarchy.l1_latency + config.Hierarchy.l2_latency
      + config.Hierarchy.memory_latency
      + config.Hierarchy.compute_cycles_per_access;
    cycles = 0;
  }

(* Same victim policy as Cache.access: first way with the strictly
   smallest stamp (invalid ways keep stamp 0 and lose every comparison
   against it, so they fill in way order). *)
let[@inline] level_access lv addr =
  let line = addr lsr lv.line_shift in
  let base = (line land lv.set_mask) * lv.assoc in
  let tag = line lsr lv.set_shift in
  lv.clock <- lv.clock + 1;
  let tags = lv.tags in
  let slot = ref (-1) in
  let w = ref 0 in
  while !slot < 0 && !w < lv.assoc do
    if Array.unsafe_get tags (base + !w) = tag then slot := base + !w;
    incr w
  done;
  if !slot >= 0 then begin
    Array.unsafe_set lv.stamps !slot lv.clock;
    lv.hits <- lv.hits + 1;
    true
  end
  else begin
    lv.misses <- lv.misses + 1;
    let stamps = lv.stamps in
    let victim = ref base in
    for w = 1 to lv.assoc - 1 do
      if Array.unsafe_get stamps (base + w) < Array.unsafe_get stamps !victim
      then victim := base + w
    done;
    Array.unsafe_set tags !victim tag;
    Array.unsafe_set stamps !victim lv.clock;
    false
  end

let[@inline] hier_access h addr =
  let cost =
    if level_access h.l1 addr then h.cost_l1
    else if level_access h.l2 addr then h.cost_l2
    else h.cost_mem
  in
  h.cycles <- h.cycles + cost

let hier_counters h =
  {
    Hierarchy.accesses = h.l1.hits + h.l1.misses;
    l1_hits = h.l1.hits;
    l1_misses = h.l1.misses;
    l2_hits = h.l2.hits;
    l2_misses = h.l2.misses;
    cycles = h.cycles;
  }

(* ------------------------------------------------------------------ *)
(* The nest walk                                                        *)
(* ------------------------------------------------------------------ *)

let simulate_nest h nest =
  let depth = Array.length nest.counts in
  let na = Array.length nest.addr0 in
  let cur = Array.copy nest.addr0 in
  let rec go level =
    let c = nest.counts.(level) in
    let dl = nest.deltas.(level) in
    if level = depth - 1 then begin
      for _ = 1 to c do
        for k = 0 to na - 1 do
          hier_access h (Array.unsafe_get cur k)
        done;
        for k = 0 to na - 1 do
          Array.unsafe_set cur k
            (Array.unsafe_get cur k + Array.unsafe_get dl k)
        done
      done
    end
    else
      for _ = 1 to c do
        go (level + 1);
        for k = 0 to na - 1 do
          cur.(k) <- cur.(k) + dl.(k)
        done
      done;
    (* rewind this level so the caller's increments stay incremental *)
    for k = 0 to na - 1 do
      cur.(k) <- cur.(k) - (c * dl.(k))
    done
  in
  go 0

(* Traced variant of [simulate_nest]: the identical walk, plus a
   per-access countdown that fires [emit] every [sample_every] accesses.
   Kept as a separate copy so the untraced inner loop carries no hook
   branch; counter parity with [simulate_nest] is qcheck-enforced in
   test/test_trace.ml. *)
let simulate_nest_traced h nest ~countdown ~sample_every ~emit =
  let depth = Array.length nest.counts in
  let na = Array.length nest.addr0 in
  let cur = Array.copy nest.addr0 in
  let tick () =
    decr countdown;
    if !countdown <= 0 then begin
      countdown := sample_every;
      emit ()
    end
  in
  let rec go level =
    let c = nest.counts.(level) in
    let dl = nest.deltas.(level) in
    if level = depth - 1 then begin
      for _ = 1 to c do
        for k = 0 to na - 1 do
          hier_access h (Array.unsafe_get cur k);
          tick ()
        done;
        for k = 0 to na - 1 do
          Array.unsafe_set cur k
            (Array.unsafe_get cur k + Array.unsafe_get dl k)
        done
      done
    end
    else
      for _ = 1 to c do
        go (level + 1);
        for k = 0 to na - 1 do
          cur.(k) <- cur.(k) + dl.(k)
        done
      done;
    for k = 0 to na - 1 do
      cur.(k) <- cur.(k) - (c * dl.(k))
    done
  in
  go 0

(* Counter sampling period when tracing is enabled (accesses between
   "cache" counter events); the final totals are always emitted. *)
let trace_sample_every = 8192

let simulate ?(config = Hierarchy.paper_config) t =
  let h = make_hier config in
  if not (Trace.enabled ()) then begin
    Array.iter (fun nest -> simulate_nest h nest) t.nests;
    hier_counters h
  end
  else
    Trace.with_span ~cat:"cachesim" "simulate"
      ~args:[ ("trips", Trace.Int t.trips) ]
      (fun () ->
        let emit () =
          Trace.counter ~cat:"cachesim" "cache"
            [
              ("l1_hits", float_of_int h.l1.hits);
              ("l1_misses", float_of_int h.l1.misses);
              ("l2_hits", float_of_int h.l2.hits);
              ("l2_misses", float_of_int h.l2.misses);
              ("cycles", float_of_int h.cycles);
            ]
        in
        let countdown = ref trace_sample_every in
        Array.iter
          (fun nest ->
            simulate_nest_traced h nest ~countdown
              ~sample_every:trace_sample_every ~emit)
          t.nests;
        emit ();
        hier_counters h)
