(** Two-level data-cache hierarchy with fixed latencies.

    Models the paper's evaluation platform: an embedded processor with an
    8KB 2-way L1 data cache (32-byte lines), a unified 64KB 4-way L2
    (64-byte lines), and latencies of 1, 6 and 70 cycles for L1, L2 and
    main memory.  Each data access costs the latency of the level that
    services it (L1 always probed, then L2, then memory). *)

type config = {
  l1 : Cache.geometry;
  l2 : Cache.geometry;
  l1_latency : int;
  l2_latency : int;
  memory_latency : int;
  compute_cycles_per_access : int;
      (** fixed pipeline cost charged per reference, covering address
          arithmetic and the ALU work of the 2-issue core; keeps the
          simulated "execution time" from being memory-only *)
}

val paper_config : config
(** The machine of the paper's Section 5. *)

type t

val create : config -> t

type counters = {
  accesses : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  cycles : int;
}

val access : t -> int -> int
(** [access t addr] performs one data access and returns its cost in
    cycles (compute cost included). *)

val counters : t -> counters
val reset : t -> unit
(** Clears both cache contents and counters (a cold restart). *)

val l1_miss_rate : counters -> float
val l2_miss_rate : counters -> float
(** L2 misses per L2 access (i.e. per L1 miss); 0 when L2 is idle. *)

val pp_counters : Format.formatter -> counters -> unit
