(** Compiled address streams: the trace-driven simulator's hot core.

    For every [(nest, access, layout)] triple the byte address is the
    composition of two affine maps — the access function
    ({!Mlo_ir.Access.element_at}) and the layout's linearized transform
    ({!Mlo_layout.Transform.cell_index}) — and is therefore itself affine
    in the iteration vector:

    {v addr(iter) = addr0 + sum_level delta_level * (iter_level - lo_level) v}

    [compile] folds base address, element size, transform matrix,
    bounding-box mins and row-major strides into that single form, once
    per access; the nest walk then maintains one current address per
    access and adds a precomputed per-level delta at each loop advance —
    no allocation, no string lookups and no matrix arithmetic per
    simulated access.  The cache hierarchy is likewise specialized into
    flat arrays so a simulated access is a handful of shifts, masks and
    array reads.

    The engine is bit-identical in all counters to the interpretive path
    kept as {!Simulate.run_reference} (qcheck-enforced). *)

type skeleton
(** The layout-independent part: per-nest trip counts, loop lower bounds
    and access matrices.  Built once per program and shared across layout
    assignments (and across domains — it is immutable). *)

type t
(** A fully compiled trace: [skeleton] specialized to one layout
    assignment's address map. *)

val skeleton : Mlo_ir.Program.t -> skeleton

val instantiate :
  skeleton -> layouts:(string -> Mlo_layout.Layout.t option) -> t
(** Specialize a skeleton to one layout assignment.  Cost is linear in
    the number of accesses (not iterations).  Raises like
    {!Address_map.build} on rank mismatches. *)

val compile :
  Mlo_ir.Program.t -> layouts:(string -> Mlo_layout.Layout.t option) -> t
(** [skeleton] followed by [instantiate]. *)

val footprint_bytes : t -> int
val trip_count : t -> int
(** Total loop iterations the trace executes (statically known). *)

type access_form = {
  form_array : string;  (** array the access reads or writes *)
  form_addr0 : int;  (** byte address at the nest's lower corner *)
  form_deltas : int array;
      (** per-level byte increment, outermost first: the access touches
          [form_addr0 + sum_l form_deltas.(l) * k_l] for
          [0 <= k_l < form_counts.(l)] *)
}

type nest_form = {
  form_nest : string;
  form_counts : int array;  (** per-level trip count, outermost first *)
  form_accesses : access_form array;
}

val forms_of_nests :
  ?cache:Address_map.transform_cache ->
  skeleton ->
  layouts:(string -> Mlo_layout.Layout.t option) ->
  nests:int array ->
  nest_form array
(** The compiled affine forms of just the listed nests (by program nest
    index, result in argument order), bit-identical to the corresponding
    entries of [forms (instantiate skel ~layouts)] — the address map
    still covers the whole program (bases depend on every preceding
    footprint), but only the listed nests' forms are derived.  [cache]
    (see {!Address_map.transform_cache}) amortizes the per-array
    transforms across many calls that vary few layouts. *)

val forms : t -> nest_form array
(** The compiled affine address forms, one per nest in program order.
    This is the static view the locality analyzer
    ({!Mlo_analysis.Locality}) consumes: every simulated address is
    described exactly by these lattices, so reuse distances and line
    counts can be derived without walking the stream.  Fresh arrays —
    safe to mutate. *)

val simulate : ?config:Hierarchy.config -> t -> Hierarchy.counters
(** Run the compiled trace on a cold hierarchy and return its counters.
    [config] defaults to {!Hierarchy.paper_config}. *)
