type token =
  | Ident of string
  | Int of int
  | Kw_array
  | Kw_elem
  | Kw_nest
  | Kw_for
  | Kw_load
  | Kw_store
  | Lbracket
  | Rbracket
  | Equals
  | Dotdot
  | Plus
  | Minus
  | Star
  | Colon
  | Eof

type located = { token : token; line : int; col : int }

exception Error of string * int * int

let keyword = function
  | "array" -> Some Kw_array
  | "elem" -> Some Kw_elem
  | "nest" -> Some Kw_nest
  | "for" -> Some Kw_for
  | "load" -> Some Kw_load
  | "store" -> Some Kw_store
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let out = ref [] in
  let emit token l c = out := { token; line = l; col = c } :: !out in
  let i = ref 0 in
  let advance () =
    if !i < n then begin
      if src.[!i] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr i
    end
  in
  while !i < n do
    let c = src.[!i] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v -> emit (Int v) l0 c0
      | None -> raise (Error (Printf.sprintf "number too large: %s" text, l0, c0))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      match keyword text with
      | Some kw -> emit kw l0 c0
      | None -> emit (Ident text) l0 c0
    end
    else begin
      match c with
      | '[' -> emit Lbracket l0 c0; advance ()
      | ']' -> emit Rbracket l0 c0; advance ()
      | '=' -> emit Equals l0 c0; advance ()
      | '+' -> emit Plus l0 c0; advance ()
      | '-' -> emit Minus l0 c0; advance ()
      | '*' -> emit Star l0 c0; advance ()
      | ':' -> emit Colon l0 c0; advance ()
      | '.' ->
        advance ();
        if !i < n && src.[!i] = '.' then begin
          advance ();
          emit Dotdot l0 c0
        end
        else raise (Error ("expected '..'", l0, c0))
      | _ -> raise (Error (Printf.sprintf "illegal character %C" c, l0, c0))
    end
  done;
  emit Eof !line !col;
  List.rev !out

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int v -> Printf.sprintf "integer %d" v
  | Kw_array -> "'array'"
  | Kw_elem -> "'elem'"
  | Kw_nest -> "'nest'"
  | Kw_for -> "'for'"
  | Kw_load -> "'load'"
  | Kw_store -> "'store'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Equals -> "'='"
  | Dotdot -> "'..'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Colon -> "':'"
  | Eof -> "end of input"
