module Affine = Mlo_ir.Affine
module Access = Mlo_ir.Access
module Loop_nest = Mlo_ir.Loop_nest
module Array_info = Mlo_ir.Array_info
module Program = Mlo_ir.Program

exception Error of string * int * int

(* ------------------------------------------------------------------ *)
(* Token stream                                                         *)
(* ------------------------------------------------------------------ *)

type state = { toks : Lexer.located array; mutable pos : int }

let peek st = st.toks.(st.pos)

let next st =
  let t = st.toks.(st.pos) in
  if t.Lexer.token <> Lexer.Eof then st.pos <- st.pos + 1;
  t

let fail_at (t : Lexer.located) msg = raise (Error (msg, t.Lexer.line, t.Lexer.col))

let expect st want =
  let t = next st in
  if t.Lexer.token <> want then
    fail_at t
      (Printf.sprintf "expected %s, found %s" (Lexer.describe want)
         (Lexer.describe t.Lexer.token))

let expect_int st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.Int v -> v
  | Lexer.Minus -> (
    let t2 = next st in
    match t2.Lexer.token with
    | Lexer.Int v -> -v
    | other -> fail_at t2 ("expected integer, found " ^ Lexer.describe other))
  | other -> fail_at t ("expected integer, found " ^ Lexer.describe other)

let expect_ident st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.Ident s -> s
  | other -> fail_at t ("expected identifier, found " ^ Lexer.describe other)

(* ------------------------------------------------------------------ *)
(* Index-expression AST (depth-independent)                             *)
(* ------------------------------------------------------------------ *)

type term = { coeff : int; var : string option; tline : int; tcol : int }

type access_ast = {
  kind : Access.kind;
  array_name : string;
  indices : term list list;
}

(* term := INT | IDENT | INT '*' IDENT, with an optional leading sign
   handled by the caller *)
let parse_term st ~sign =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.Int v ->
    ignore (next st);
    if peek st |> fun p -> p.Lexer.token = Lexer.Star then begin
      ignore (next st);
      let name = expect_ident st in
      { coeff = sign * v; var = Some name; tline = t.Lexer.line; tcol = t.Lexer.col }
    end
    else { coeff = sign * v; var = None; tline = t.Lexer.line; tcol = t.Lexer.col }
  | Lexer.Ident name ->
    ignore (next st);
    { coeff = sign; var = Some name; tline = t.Lexer.line; tcol = t.Lexer.col }
  | other -> fail_at t ("expected index term, found " ^ Lexer.describe other)

let parse_expr st =
  let leading_sign =
    match (peek st).Lexer.token with
    | Lexer.Minus ->
      ignore (next st);
      -1
    | Lexer.Plus ->
      ignore (next st);
      1
    | Lexer.Int _ | Lexer.Ident _ | Lexer.Kw_array | Lexer.Kw_elem
    | Lexer.Kw_nest | Lexer.Kw_for | Lexer.Kw_load | Lexer.Kw_store
    | Lexer.Lbracket | Lexer.Rbracket | Lexer.Equals | Lexer.Dotdot
    | Lexer.Star | Lexer.Colon | Lexer.Eof -> 1
  in
  let first = parse_term st ~sign:leading_sign in
  let rec more acc =
    match (peek st).Lexer.token with
    | Lexer.Plus ->
      ignore (next st);
      more (parse_term st ~sign:1 :: acc)
    | Lexer.Minus ->
      ignore (next st);
      more (parse_term st ~sign:(-1) :: acc)
    | Lexer.Int _ | Lexer.Ident _ | Lexer.Kw_array | Lexer.Kw_elem
    | Lexer.Kw_nest | Lexer.Kw_for | Lexer.Kw_load | Lexer.Kw_store
    | Lexer.Lbracket | Lexer.Rbracket | Lexer.Equals | Lexer.Dotdot
    | Lexer.Star | Lexer.Colon | Lexer.Eof -> List.rev acc
  in
  more [ first ]

(* ------------------------------------------------------------------ *)
(* Declarations, accesses, loops                                        *)
(* ------------------------------------------------------------------ *)

let parse_decl st =
  (* 'array' already consumed *)
  let name = expect_ident st in
  let rec dims acc =
    match (peek st).Lexer.token with
    | Lexer.Lbracket ->
      ignore (next st);
      let e = expect_int st in
      expect st Lexer.Rbracket;
      dims (e :: acc)
    | _ -> List.rev acc
  in
  let extents = dims [] in
  if extents = [] then fail_at (peek st) "array needs at least one dimension";
  let elem_size =
    match (peek st).Lexer.token with
    | Lexer.Kw_elem ->
      ignore (next st);
      expect_int st
    | _ -> 4
  in
  let t = peek st in
  match Array_info.make ~elem_size name extents with
  | info -> info
  | exception Invalid_argument msg -> fail_at t msg

let parse_access st =
  let kw = next st in
  let kind =
    match kw.Lexer.token with
    | Lexer.Kw_load -> Access.Read
    | Lexer.Kw_store -> Access.Write
    | other -> fail_at kw ("expected 'load' or 'store', found " ^ Lexer.describe other)
  in
  let array_name = expect_ident st in
  let rec indices acc =
    match (peek st).Lexer.token with
    | Lexer.Lbracket ->
      ignore (next st);
      let e = parse_expr st in
      expect st Lexer.Rbracket;
      indices (e :: acc)
    | _ -> List.rev acc
  in
  let idx = indices [] in
  if idx = [] then fail_at kw "access needs at least one index";
  { kind; array_name; indices = idx }

(* loop := 'for' IDENT '=' INT '..' INT body *)
let rec parse_loop st =
  expect st Lexer.Kw_for;
  let var = expect_ident st in
  expect st Lexer.Equals;
  let lo = expect_int st in
  expect st Lexer.Dotdot;
  let hi_inclusive = expect_int st in
  let loop = { Loop_nest.var; lo; hi = hi_inclusive + 1 } in
  match (peek st).Lexer.token with
  | Lexer.Kw_for ->
    let loops, accesses = parse_loop st in
    (loop :: loops, accesses)
  | Lexer.Kw_load | Lexer.Kw_store ->
    let rec accs acc =
      match (peek st).Lexer.token with
      | Lexer.Kw_load | Lexer.Kw_store -> accs (parse_access st :: acc)
      | _ -> List.rev acc
    in
    ([ loop ], accs [])
  | other ->
    fail_at (peek st)
      ("expected a nested 'for' or an access, found " ^ Lexer.describe other)

let materialize_access ~vars ast =
  let depth = List.length vars in
  let expr_of terms =
    List.fold_left
      (fun acc { coeff; var; tline; tcol } ->
        match var with
        | None -> Affine.add acc (Affine.const depth coeff)
        | Some name -> (
          match List.assoc_opt name vars with
          | Some d -> Affine.add acc (Affine.scale coeff (Affine.var depth d))
          | None ->
            raise (Error (Printf.sprintf "unknown loop variable %s" name, tline, tcol))))
      (Affine.const depth 0) terms
  in
  Access.make ast.kind ast.array_name (List.map expr_of ast.indices)

let parse_nest st =
  (* 'nest' already consumed *)
  let t0 = peek st in
  let name = expect_ident st in
  expect st Lexer.Colon;
  let loops, access_asts = parse_loop st in
  let vars = List.mapi (fun d l -> (l.Loop_nest.var, d)) loops in
  let accesses = List.map (materialize_access ~vars) access_asts in
  match Loop_nest.make ~name loops accesses with
  | nest -> nest
  | exception Invalid_argument msg -> fail_at t0 msg

let parse ~name source =
  let toks = Array.of_list (Lexer.tokenize source) in
  let st = { toks; pos = 0 } in
  let rec decls acc =
    match (peek st).Lexer.token with
    | Lexer.Kw_array ->
      ignore (next st);
      decls (parse_decl st :: acc)
    | _ -> List.rev acc
  in
  let arrays = decls [] in
  let rec nests acc =
    match (peek st).Lexer.token with
    | Lexer.Kw_nest ->
      ignore (next st);
      nests (parse_nest st :: acc)
    | Lexer.Eof -> List.rev acc
    | other ->
      fail_at (peek st) ("expected 'nest' or end of input, found " ^ Lexer.describe other)
  in
  let nests = nests [] in
  match Program.make ~name arrays nests with
  | prog -> prog
  | exception Invalid_argument msg -> raise (Error (msg, 0, 0))

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let source = really_input_string ic n in
  close_in ic;
  try parse ~name:(Filename.basename path) source
  with Lexer.Error (msg, l, c) -> raise (Error (msg, l, c))

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let to_source prog =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# program %s\n" (Program.name prog));
  Array.iter
    (fun info ->
      Buffer.add_string buf (Printf.sprintf "array %s" (Array_info.name info));
      Array.iter
        (fun e -> Buffer.add_string buf (Printf.sprintf "[%d]" e))
        (Array_info.extents info);
      if Array_info.elem_size info <> 4 then
        Buffer.add_string buf (Printf.sprintf " elem %d" (Array_info.elem_size info));
      Buffer.add_char buf '\n')
    (Program.arrays prog);
  Array.iter
    (fun nest ->
      Buffer.add_string buf (Printf.sprintf "\nnest %s:\n" (Loop_nest.name nest));
      let names = Loop_nest.var_names nest in
      Array.iteri
        (fun level l ->
          Buffer.add_string buf
            (Printf.sprintf "%sfor %s = %d .. %d\n"
               (String.make (2 * (level + 1)) ' ')
               l.Loop_nest.var l.Loop_nest.lo (l.Loop_nest.hi - 1)))
        (Loop_nest.loops nest);
      let indent = String.make (2 * (Loop_nest.depth nest + 1)) ' ' in
      Array.iter
        (fun a ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s" indent
               (match Access.kind a with
               | Access.Read -> "load"
               | Access.Write -> "store")
               (Access.array_name a));
          Array.iter
            (fun e ->
              Buffer.add_string buf
                (Printf.sprintf "[%s]" (Affine.to_string names e)))
            a.Access.indices;
          Buffer.add_char buf '\n')
        (Loop_nest.accesses nest))
    (Program.nests prog);
  Buffer.contents buf
