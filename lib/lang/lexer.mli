(** Tokenizer for the textual loop-nest language.

    The language is line-oriented only in its comments ([#] to end of
    line); tokens otherwise flow freely.  Every token carries the line
    and column where it starts (1-based), which the parser propagates
    into error messages. *)

type token =
  | Ident of string
  | Int of int
  | Kw_array
  | Kw_elem
  | Kw_nest
  | Kw_for
  | Kw_load
  | Kw_store
  | Lbracket
  | Rbracket
  | Equals
  | Dotdot
  | Plus
  | Minus
  | Star
  | Colon
  | Eof

type located = { token : token; line : int; col : int }

exception Error of string * int * int
(** [Error (message, line, col)]. *)

val tokenize : string -> located list
(** Tokenizes a whole source string; the last element is always [Eof].
    Raises {!Error} on an illegal character or malformed number. *)

val describe : token -> string
(** Human name for error messages, e.g. ["'['"] or ["identifier"]. *)
