(** Parser for the textual loop-nest language.

    The concrete syntax, in EBNF ([#] starts a comment):

    {v
    program := decl* nest+
    decl    := "array" IDENT ("[" INT "]")+ ("elem" INT)?
    nest    := "nest" IDENT ":" loop
    loop    := "for" IDENT "=" INT ".." INT body
    body    := loop | access+
    access  := ("load" | "store") IDENT ("[" expr "]")+
    expr    := ("+"|"-")? term (("+"|"-") term)*
    term    := INT | IDENT | INT "*" IDENT
    v}

    Loops are perfectly nested ([body] is either one nested loop or the
    access list of the innermost level); bounds are inclusive on both
    sides, matching mathematical range notation ([for i = 0 .. 63] runs
    64 iterations).  Example:

    {v
    # the paper's Figure 2
    array Q1[127][64]
    array Q2[127][64]

    nest fig2:
      for i1 = 0 .. 63
        for i2 = 0 .. 63
          load Q1[i1+i2][i2]
          load Q2[i1+i2][i1]
    v} *)

exception Error of string * int * int
(** [Error (message, line, col)] — syntax or semantic error with source
    position. *)

val parse : name:string -> string -> Mlo_ir.Program.t
(** [parse ~name source] parses a whole program.  [name] is the program
    name (typically the file name).  Raises {!Error} on syntax errors,
    references to undeclared loop variables, duplicate declarations, or
    any {!Mlo_ir.Program.make} validation failure (re-raised with a
    position of the offending nest). *)

val parse_file : string -> Mlo_ir.Program.t
(** Reads and parses a file; the program is named after the path.
    Raises [Sys_error] on I/O failure and {!Error} as {!parse}. *)

val to_source : Mlo_ir.Program.t -> string
(** Pretty-prints a program back to the concrete syntax; the result
    re-parses to a structurally equal program. *)
