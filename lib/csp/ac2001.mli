(** Arc consistency with last-support memoization (AC-2001/3.1), running
    on the compiled network view.

    Used by {!Solver} for optional preprocessing and wrapped by
    {!Propagate.ac2001}.  Computes the same (unique) arc-consistency
    closure as {!Propagate.ac3}, but each revision re-checks one
    remembered support bit instead of re-scanning the neighbour domain,
    and replacement supports are found by word-parallel row scans. *)

val run : Compiled.t -> (Bitset.t array, int) result
(** [run comp] is [Ok domains] (arc-consistent, all non-empty) or
    [Error i] when variable [i]'s domain wiped out (no solution). *)
