(* Fixed-capacity bitsets backed by int words, 32 bits per word.

   32 (not Sys.int_size - 1) keeps word/bit indexing a shift and a mask
   instead of a division by 63, and every realistic layout domain in this
   code base fits a single word anyway.  The word layout is shared with
   the raw support rows of the compiled constraint network (see
   {!Compiled}): bit [v] of value [v] lives in word [v lsr 5] at bit
   position [v land 31]. *)

type t = { mutable card : int; words : int array; capacity : int }

let bits_per_word = 32
let words_for n = (n + bits_per_word - 1) / bits_per_word

(* SWAR popcount of a 32-bit value held in an OCaml int. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0f0f0f0f in
  (* OCaml ints are wider than 32 bits: product bytes above bit 31 are
     not truncated away, so isolate the accumulator byte explicitly *)
  ((x * 0x01010101) lsr 24) land 0xff

(* Number of trailing zeros of a non-zero 32-bit value. *)
let ntz x = popcount ((x land -x) - 1)

let create_empty n =
  if n < 0 then invalid_arg "Bitset.create_empty: negative capacity";
  { card = 0; words = Array.make (words_for n) 0; capacity = n }

let full_words n =
  let w = Array.make (words_for n) 0 in
  let full = words_for n in
  for k = 0 to full - 1 do
    let bits = min bits_per_word (n - (k * bits_per_word)) in
    w.(k) <- (1 lsl bits) - 1
  done;
  w

let create_full n =
  if n < 0 then invalid_arg "Bitset.create_full: negative capacity";
  { card = n; words = full_words n; capacity = n }

let capacity t = t.capacity

let mem t i =
  i >= 0 && i < t.capacity
  && Array.unsafe_get t.words (i lsr 5) land (1 lsl (i land 31)) <> 0

let add t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset.add: out of range";
  let w = i lsr 5 and b = 1 lsl (i land 31) in
  if t.words.(w) land b = 0 then begin
    t.words.(w) <- t.words.(w) lor b;
    t.card <- t.card + 1
  end

let remove t i =
  if i >= 0 && i < t.capacity then begin
    let w = i lsr 5 and b = 1 lsl (i land 31) in
    if t.words.(w) land b <> 0 then begin
      t.words.(w) <- t.words.(w) land lnot b;
      t.card <- t.card - 1
    end
  end

let count t = t.card
let is_empty t = t.card = 0

let copy t =
  { card = t.card; words = Array.copy t.words; capacity = t.capacity }

let blit ~src ~dst =
  if src.capacity <> dst.capacity then invalid_arg "Bitset.blit: capacity mismatch";
  Array.blit src.words 0 dst.words 0 (Array.length src.words);
  dst.card <- src.card

let iter f t =
  for k = 0 to Array.length t.words - 1 do
    let bits = ref t.words.(k) in
    while !bits <> 0 do
      let b = !bits land - !bits in
      f ((k * bits_per_word) + ntz !bits);
      bits := !bits lxor b
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let to_array t =
  let a = Array.make t.card 0 in
  let k = ref 0 in
  iter
    (fun i ->
      a.(!k) <- i;
      incr k)
    t;
  a

(* [iter] spelled out so callers on a hot path pay no closure; writes the
   members ascending into [a] starting at [off], returns how many. *)
let fill_array t a off =
  let k = ref off in
  for w = 0 to Array.length t.words - 1 do
    let bits = ref (Array.unsafe_get t.words w) in
    while !bits <> 0 do
      a.(!k) <- (w * bits_per_word) + ntz !bits;
      incr k;
      bits := !bits land (!bits - 1)
    done
  done;
  !k - off

let choose t =
  let rec go k =
    if k >= Array.length t.words then None
    else if t.words.(k) <> 0 then Some ((k * bits_per_word) + ntz t.words.(k))
    else go (k + 1)
  in
  go 0

let equal a b =
  a.capacity = b.capacity && a.card = b.card && a.words = b.words

(* ---- raw support rows (same word layout, borrowed storage) ---- *)

type row = int array

let row_make n = Array.make (words_for n) 0
let row_add row i = row.(i lsr 5) <- row.(i lsr 5) lor (1 lsl (i land 31))

let row_mem row i =
  Array.unsafe_get row (i lsr 5) land (1 lsl (i land 31)) <> 0

let row_count row =
  let c = ref 0 in
  for k = 0 to Array.length row - 1 do
    c := !c + popcount row.(k)
  done;
  !c

let check_row t row =
  if Array.length row <> Array.length t.words then
    invalid_arg "Bitset: row width mismatch"

let inter_count t row =
  check_row t row;
  let c = ref 0 in
  for k = 0 to Array.length row - 1 do
    c := !c + popcount (Array.unsafe_get t.words k land Array.unsafe_get row k)
  done;
  !c

let inter_exists t row =
  check_row t row;
  let rec go k =
    k < Array.length row
    && (Array.unsafe_get t.words k land Array.unsafe_get row k <> 0
        || go (k + 1))
  in
  go 0

let inter_choose t row =
  check_row t row;
  let rec go k =
    if k >= Array.length row then None
    else
      let w = Array.unsafe_get t.words k land Array.unsafe_get row k in
      if w <> 0 then Some ((k * bits_per_word) + ntz w) else go (k + 1)
  in
  go 0

let iter_diff f t row =
  check_row t row;
  for k = 0 to Array.length row - 1 do
    let bits = ref (Array.unsafe_get t.words k land lnot (Array.unsafe_get row k)) in
    while !bits <> 0 do
      let b = !bits land - !bits in
      f ((k * bits_per_word) + ntz !bits);
      bits := !bits lxor b
    done
  done

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun i ->
      if not !first then Format.fprintf ppf ",";
      Format.fprintf ppf "%d" i;
      first := false)
    t;
  Format.fprintf ppf "}"
