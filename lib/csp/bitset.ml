type t = { mutable card : int; words : Bytes.t; capacity : int }

let words_for n = (n + 7) / 8

let create_empty n =
  if n < 0 then invalid_arg "Bitset.create_empty: negative capacity";
  { card = 0; words = Bytes.make (words_for n) '\000'; capacity = n }

let create_full n =
  let t = create_empty n in
  for i = 0 to n - 1 do
    let w = i lsr 3 and b = i land 7 in
    Bytes.unsafe_set t.words w
      (Char.chr (Char.code (Bytes.unsafe_get t.words w) lor (1 lsl b)))
  done;
  t.card <- n;
  t

let capacity t = t.capacity

let mem t i =
  i >= 0 && i < t.capacity
  && Char.code (Bytes.unsafe_get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset.add: out of range";
  if not (mem t i) then begin
    let w = i lsr 3 and b = i land 7 in
    Bytes.unsafe_set t.words w
      (Char.chr (Char.code (Bytes.unsafe_get t.words w) lor (1 lsl b)));
    t.card <- t.card + 1
  end

let remove t i =
  if i >= 0 && i < t.capacity && mem t i then begin
    let w = i lsr 3 and b = i land 7 in
    Bytes.unsafe_set t.words w
      (Char.chr (Char.code (Bytes.unsafe_get t.words w) land lnot (1 lsl b) land 0xff));
    t.card <- t.card - 1
  end

let count t = t.card
let is_empty t = t.card = 0

let copy t =
  { card = t.card; words = Bytes.copy t.words; capacity = t.capacity }

let blit ~src ~dst =
  if src.capacity <> dst.capacity then invalid_arg "Bitset.blit: capacity mismatch";
  Bytes.blit src.words 0 dst.words 0 (Bytes.length src.words);
  dst.card <- src.card

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let choose t =
  let rec go i =
    if i >= t.capacity then None else if mem t i then Some i else go (i + 1)
  in
  go 0

let equal a b =
  a.capacity = b.capacity && a.card = b.card && Bytes.equal a.words b.words

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun i ->
      if not !first then Format.fprintf ppf ",";
      Format.fprintf ppf "%d" i;
      first := false)
    t;
  Format.fprintf ppf "}"
