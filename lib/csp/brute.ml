exception Done

let enumerate ?limit net f =
  let n = Network.num_vars net in
  let a = Array.make n (-1) in
  let found = ref 0 in
  let rec go i =
    if i = n then begin
      f (Array.copy a);
      incr found;
      match limit with Some l when !found >= l -> raise Done | Some _ | None -> ()
    end
    else
      for v = 0 to Network.domain_size net i - 1 do
        let ok =
          let rec chk j =
            j >= i || (Network.allowed net i v j a.(j) && chk (j + 1))
          in
          chk 0
        in
        if ok then begin
          a.(i) <- v;
          go (i + 1);
          a.(i) <- -1
        end
      done
  in
  (try go 0 with Done -> ());
  !found

let count_solutions ?limit net = enumerate ?limit net (fun _ -> ())

let all_solutions ?limit net =
  let acc = ref [] in
  ignore (enumerate ?limit net (fun a -> acc := a :: !acc));
  List.rev !acc

let first_solution net =
  match all_solutions ~limit:1 net with [] -> None | a :: _ -> Some a

let is_satisfiable net = count_solutions ~limit:1 net > 0
