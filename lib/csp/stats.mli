(** Search-effort counters.

    Consistency checks are the machine-independent proxy for the paper's
    Table 2 solution times; wall-clock seconds are also recorded when the
    search is timed. *)

type t = {
  mutable nodes : int;  (** variable instantiations attempted *)
  mutable checks : int;  (** binary consistency checks performed *)
  mutable backtracks : int;  (** chronological backward steps *)
  mutable backjumps : int;  (** non-chronological backward steps *)
  mutable prunings : int;  (** domain values removed by lookahead *)
  mutable max_depth : int;  (** deepest consistent partial instantiation *)
  mutable elapsed_s : float;  (** wall-clock seconds, if timed *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> t
(** Componentwise sum (elapsed times add too); inputs unchanged. *)

val pp : Format.formatter -> t -> unit
