(** Search-effort counters.

    Consistency checks are the machine-independent proxy for the paper's
    Table 2 solution times; both monotonic wall-clock and CPU seconds are
    also recorded when the search is timed.

    On the compiled solver core a "check" is one support-row lookup:
    under no lookahead that is exactly one binary consistency check, as
    before; under forward checking one row lookup prunes a whole
    neighbour domain word-parallel, so [checks] counts row fetches rather
    than the per-value probes the byte-at-a-time implementation
    performed ({!Solver.solve_reference} retains the historical
    accounting). *)

type t = {
  mutable nodes : int;  (** variable instantiations attempted *)
  mutable checks : int;  (** support-row lookups / consistency checks *)
  mutable backtracks : int;  (** chronological backward steps *)
  mutable backjumps : int;  (** non-chronological backward steps *)
  mutable prunings : int;  (** domain values removed by lookahead *)
  mutable learned : int;
      (** nogoods recorded by the conflict-driven scheme ({!Cdl}); 0 for
          the non-learning schemes *)
  mutable forgotten : int;  (** learned nogoods dropped by store reduction *)
  mutable restarts : int;  (** Luby restarts taken by the search *)
  mutable bounded : int;
      (** subtrees cut by the branch-and-bound lower bound ({!Bnb}); 0
          for the satisfiability-only schemes *)
  mutable incumbents : int;
      (** strict incumbent improvements recorded by {!Bnb} (the first
          solution found counts as one) *)
  mutable max_depth : int;  (** deepest consistent partial instantiation *)
  mutable elapsed_s : float;
      (** monotonic wall-clock seconds ({!Clock.wall_s}), if timed *)
  mutable cpu_s : float;  (** process CPU seconds ({!Clock.cpu_s}) *)
  mutable nodes_by_depth : int array;
      (** instantiation attempts per search level ([[||]] until
          {!ensure_hists}; filled by the compiled engine only —
          {!Solver.solve_reference} predates the histograms and is kept
          as the unmodified oracle) *)
  mutable nodes_by_var : int array;
      (** instantiation attempts per variable index (same caveats) *)
}

val create : unit -> t
val reset : t -> unit

val ensure_hists : t -> int -> unit
(** Size both histograms to at least [n] slots, preserving contents, so
    the recorder can bump unguarded. *)

val add : t -> t -> t
(** Componentwise sum (elapsed times add too, histograms merge
    slot-wise at the longer length); inputs unchanged. *)

val to_json : t -> Mlo_obs.Json.t
(** All counters plus both histograms as a flat JSON object (stable
    keys: the scalar field names, [nodes_by_depth], [nodes_by_var]). *)

val pp : Format.formatter -> t -> unit
