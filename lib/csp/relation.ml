type t = {
  left : int;
  right : int;
  bits : Bytes.t; (* row-major left x right *)
  lsup : int array;
  rsup : int array;
  mutable pairs : int;
  mutable memo_transpose : t option;
      (* cached transposed snapshot; invalidated by add *)
}

let create ~left ~right =
  if left <= 0 || right <= 0 then invalid_arg "Relation.create: empty domain";
  {
    left;
    right;
    bits = Bytes.make (((left * right) + 7) / 8) '\000';
    lsup = Array.make left 0;
    rsup = Array.make right 0;
    pairs = 0;
    memo_transpose = None;
  }

let left_size t = t.left
let right_size t = t.right

let bit_index t l r = (l * t.right) + r

let mem t l r =
  l >= 0 && l < t.left && r >= 0 && r < t.right
  &&
  let i = bit_index t l r in
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t l r =
  if l < 0 || l >= t.left || r < 0 || r >= t.right then
    invalid_arg "Relation.add: out of range";
  if not (mem t l r) then begin
    let i = bit_index t l r in
    let w = i lsr 3 and b = i land 7 in
    Bytes.unsafe_set t.bits w
      (Char.chr (Char.code (Bytes.unsafe_get t.bits w) lor (1 lsl b)));
    t.lsup.(l) <- t.lsup.(l) + 1;
    t.rsup.(r) <- t.rsup.(r) + 1;
    t.pairs <- t.pairs + 1;
    t.memo_transpose <- None
  end

let pair_count t = t.pairs
let left_support t l = t.lsup.(l)
let right_support t r = t.rsup.(r)

let supports_of_left t l =
  List.filter (fun r -> mem t l r) (List.init t.right Fun.id)

let supports_of_right t r =
  List.filter (fun l -> mem t l r) (List.init t.left Fun.id)

let fold f t init =
  let acc = ref init in
  for l = 0 to t.left - 1 do
    for r = 0 to t.right - 1 do
      if mem t l r then acc := f l r !acc
    done
  done;
  !acc

let transpose t =
  match t.memo_transpose with
  | Some t' -> t'
  | None ->
    let t' = create ~left:t.right ~right:t.left in
    ignore (fold (fun l r () -> add t' r l) t ());
    t.memo_transpose <- Some t';
    t'

let copy t =
  {
    left = t.left;
    right = t.right;
    bits = Bytes.copy t.bits;
    lsup = Array.copy t.lsup;
    rsup = Array.copy t.rsup;
    pairs = t.pairs;
    memo_transpose = None;
  }

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  ignore
    (fold
       (fun l r () ->
         if not !first then Format.fprintf ppf ", ";
         Format.fprintf ppf "(%d,%d)" l r;
         first := false)
       t ());
  Format.fprintf ppf "}"
