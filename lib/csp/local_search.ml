type config = { seed : int; max_steps : int; restarts : int }

let default_config = { seed = 0; max_steps = 10_000; restarts = 10 }

type outcome = Solution of int array | Stuck of int array * int

type result = { outcome : outcome; steps : int }

let conflicts net a =
  List.fold_left
    (fun acc (i, j) -> if Network.allowed net i a.(i) j a.(j) then acc else acc + 1)
    0
    (Network.constraint_pairs net)

(* Number of constraints involving [var] violated when it takes [v]. *)
let var_conflicts net a var v =
  List.fold_left
    (fun acc j -> if Network.allowed net var v j a.(j) then acc else acc + 1)
    0 (Network.neighbors net var)

let solve ?(config = default_config) net =
  let n = Network.num_vars net in
  let rng = Rng.create config.seed in
  let steps = ref 0 in
  let best = ref None in
  let note a c =
    match !best with
    | Some (_, bc) when bc <= c -> ()
    | Some _ | None -> best := Some (Array.copy a, c)
  in
  let random_assignment () =
    Array.init n (fun i -> Rng.int rng (Network.domain_size net i))
  in
  let conflicted_vars a =
    List.filter
      (fun i -> var_conflicts net a i a.(i) > 0)
      (List.init n Fun.id)
  in
  let rec restart r =
    if r >= config.restarts then
      match !best with
      | Some (a, c) -> { outcome = Stuck (a, c); steps = !steps }
      | None -> { outcome = Stuck ([||], max_int); steps = !steps }
    else begin
      let a = random_assignment () in
      let rec improve k =
        let bad = conflicted_vars a in
        if bad = [] then Some (Array.copy a)
        else if k >= config.max_steps then begin
          note a (conflicts net a);
          None
        end
        else begin
          incr steps;
          let var = List.nth bad (Rng.int rng (List.length bad)) in
          (* min-conflict value, random tie-break *)
          let d = Network.domain_size net var in
          let scored =
            List.init d (fun v -> (var_conflicts net a var v, v))
          in
          let min_c = List.fold_left (fun m (c, _) -> min m c) max_int scored in
          let ties = List.filter (fun (c, _) -> c = min_c) scored in
          let _, v = List.nth ties (Rng.int rng (List.length ties)) in
          a.(var) <- v;
          improve (k + 1)
        end
      in
      match improve 0 with
      | Some a -> { outcome = Solution a; steps = !steps }
      | None -> restart (r + 1)
    end
  in
  let r = restart 0 in
  (match r.outcome with
  | Solution a -> assert (Network.verify net a)
  | Stuck _ -> ());
  r

(* Compiled-view variant for the racing portfolio: same algorithm, but
   every query is an O(1) probe into the immutable compiled tables, so
   it can run on a worker Domain while siblings share the view.  Arrays
   replace the list scans of the reference above. *)
let solve_compiled ?(config = default_config) ?cancel comp =
  let n = Compiled.num_vars comp in
  let rng = Rng.create config.seed in
  let steps = ref 0 in
  let cancelled =
    match cancel with
    | None -> fun () -> false
    | Some c -> fun () -> !steps land 127 = 0 && c ()
  in
  let best = ref None in
  let var_conflicts a var v =
    let nbrs = Compiled.neighbors comp var in
    let acc = ref 0 in
    for k = 0 to Array.length nbrs - 1 do
      let j = Array.unsafe_get nbrs k in
      if not (Compiled.allowed comp var v j a.(j)) then incr acc
    done;
    !acc
  in
  let conflicts a =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      let nbrs = Compiled.neighbors comp i in
      for k = 0 to Array.length nbrs - 1 do
        let j = nbrs.(k) in
        if j > i && not (Compiled.allowed comp i a.(i) j a.(j)) then incr acc
      done
    done;
    !acc
  in
  let note a c =
    match !best with
    | Some (_, bc) when bc <= c -> ()
    | Some _ | None -> best := Some (Array.copy a, c)
  in
  let bad = Array.make (max 1 n) 0 in
  let fill_bad a =
    let m = ref 0 in
    for i = 0 to n - 1 do
      if var_conflicts a i a.(i) > 0 then begin
        bad.(!m) <- i;
        incr m
      end
    done;
    !m
  in
  let stuck () =
    match !best with
    | Some (a, c) -> { outcome = Stuck (a, c); steps = !steps }
    | None -> { outcome = Stuck ([||], max_int); steps = !steps }
  in
  let rec restart r =
    if r >= config.restarts then stuck ()
    else begin
      let a =
        Array.init n (fun i -> Rng.int rng (Compiled.domain_size comp i))
      in
      let rec improve k =
        let m = fill_bad a in
        if m = 0 then Some (Array.copy a)
        else if k >= config.max_steps || cancelled () then begin
          note a (conflicts a);
          None
        end
        else begin
          incr steps;
          let var = bad.(Rng.int rng m) in
          (* min-conflict value, random tie-break (reservoir over ties) *)
          let d = Compiled.domain_size comp var in
          let min_c = ref max_int and pick = ref a.(var) and ties = ref 0 in
          for v = 0 to d - 1 do
            let c = var_conflicts a var v in
            if c < !min_c then begin
              min_c := c;
              pick := v;
              ties := 1
            end
            else if c = !min_c then begin
              incr ties;
              if Rng.int rng !ties = 0 then pick := v
            end
          done;
          a.(var) <- !pick;
          improve (k + 1)
        end
      in
      match improve 0 with
      | Some a -> { outcome = Solution a; steps = !steps }
      | None -> if cancelled () then stuck () else restart (r + 1)
    end
  in
  let r = restart 0 in
  (match r.outcome with
  | Solution a -> assert (Compiled.verify comp a)
  | Stuck _ -> ());
  r
