type config = { seed : int; max_steps : int; restarts : int }

let default_config = { seed = 0; max_steps = 10_000; restarts = 10 }

type outcome = Solution of int array | Stuck of int array * int

type result = { outcome : outcome; steps : int }

let conflicts net a =
  List.fold_left
    (fun acc (i, j) -> if Network.allowed net i a.(i) j a.(j) then acc else acc + 1)
    0
    (Network.constraint_pairs net)

(* Number of constraints involving [var] violated when it takes [v]. *)
let var_conflicts net a var v =
  List.fold_left
    (fun acc j -> if Network.allowed net var v j a.(j) then acc else acc + 1)
    0 (Network.neighbors net var)

let solve ?(config = default_config) net =
  let n = Network.num_vars net in
  let rng = Rng.create config.seed in
  let steps = ref 0 in
  let best = ref None in
  let note a c =
    match !best with
    | Some (_, bc) when bc <= c -> ()
    | Some _ | None -> best := Some (Array.copy a, c)
  in
  let random_assignment () =
    Array.init n (fun i -> Rng.int rng (Network.domain_size net i))
  in
  let conflicted_vars a =
    List.filter
      (fun i -> var_conflicts net a i a.(i) > 0)
      (List.init n Fun.id)
  in
  let rec restart r =
    if r >= config.restarts then
      match !best with
      | Some (a, c) -> { outcome = Stuck (a, c); steps = !steps }
      | None -> { outcome = Stuck ([||], max_int); steps = !steps }
    else begin
      let a = random_assignment () in
      let rec improve k =
        let bad = conflicted_vars a in
        if bad = [] then Some (Array.copy a)
        else if k >= config.max_steps then begin
          note a (conflicts net a);
          None
        end
        else begin
          incr steps;
          let var = List.nth bad (Rng.int rng (List.length bad)) in
          (* min-conflict value, random tie-break *)
          let d = Network.domain_size net var in
          let scored =
            List.init d (fun v -> (var_conflicts net a var v, v))
          in
          let min_c = List.fold_left (fun m (c, _) -> min m c) max_int scored in
          let ties = List.filter (fun (c, _) -> c = min_c) scored in
          let _, v = List.nth ties (Rng.int rng (List.length ties)) in
          a.(var) <- v;
          improve (k + 1)
        end
      in
      match improve 0 with
      | Some a -> { outcome = Solution a; steps = !steps }
      | None -> restart (r + 1)
    end
  in
  let r = restart 0 in
  (match r.outcome with
  | Solution a -> assert (Network.verify net a)
  | Stuck _ -> ());
  r
