(** Exhaustive reference solver.

    Enumerates the full Cartesian product of the domains; exponential, so
    only usable on small networks.  Serves as the oracle for property
    tests: every {!Solver} configuration must agree with it on
    satisfiability, and weighted branch-and-bound must match its optimum. *)

val is_satisfiable : 'a Network.t -> bool

val count_solutions : ?limit:int -> 'a Network.t -> int
(** Number of complete consistent assignments, stopping early at [limit]
    if given. *)

val all_solutions : ?limit:int -> 'a Network.t -> int array list
(** The solutions themselves (value index per variable), lexicographic
    order, at most [limit] of them if given. *)

val first_solution : 'a Network.t -> int array option
