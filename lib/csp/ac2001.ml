(* AC-2001/3.1 on the compiled network view.

   Classic AC-3 re-scans a whole neighbour domain on every revision;
   AC-2001 remembers, per (directed constraint, value), the last support
   it found and re-checks only that one bit.  When the last support dies,
   the replacement is the smallest member of (current neighbour domain
   intersect support row) — one word-parallel scan of the row.  Supports
   only ever shrink, so restarting from the smallest is correct and the
   per-arc work is amortized O(domain / word size).

   The fixpoint (the arc-consistency closure) is unique, so the result
   matches AC-3's exactly — property-tested in test_compiled.ml. *)

module Trace = Mlo_obs.Trace

let run comp =
  Trace.with_span ~cat:"solver" "ac2001"
    ~args:[ ("vars", Trace.Int (Compiled.num_vars comp)) ]
  @@ fun () ->
  let tr = Trace.enabled () in
  let n = Compiled.num_vars comp in
  let domains =
    Array.init n (fun i -> Bitset.create_full (Compiled.domain_size comp i))
  in
  (* last.(h).(vi): last support found for [i = vi] under directed handle
     [h], or -1 before the first find *)
  let last = Array.make (Compiled.num_handles comp) [||] in
  for i = 0 to n - 1 do
    Array.iter
      (fun j ->
        last.(Compiled.handle comp i j) <-
          Array.make (Compiled.domain_size comp i) (-1))
      (Compiled.neighbors comp i)
  done;
  let revise i j =
    let h = Compiled.handle comp i j in
    let lasth = last.(h) in
    let removed = ref false in
    Bitset.iter
      (fun vi ->
        let l = lasth.(vi) in
        if not (l >= 0 && Bitset.mem domains.(j) l) then
          match Bitset.inter_choose domains.(j) (Compiled.row comp h vi) with
          | Some w -> lasth.(vi) <- w
          | None ->
            Bitset.remove domains.(i) vi;
            removed := true)
      domains.(i);
    !removed
  in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    Array.iter (fun j -> if j > i then begin
        Queue.add (i, j) queue;
        Queue.add (j, i) queue
      end)
      (Compiled.neighbors comp i)
  done;
  let wiped = ref None in
  while (not (Queue.is_empty queue)) && !wiped = None do
    let i, j = Queue.pop queue in
    if revise i j then begin
      if tr then
        Trace.instant ~cat:"solver" "ac-revise"
          ~args:[ ("var", Trace.Int i); ("against", Trace.Int j) ];
      if Bitset.is_empty domains.(i) then wiped := Some i
      else
        Array.iter
          (fun k -> if k <> j then Queue.add (k, i) queue)
          (Compiled.neighbors comp i)
    end
  done;
  match !wiped with Some i -> Error i | None -> Ok domains
