(** Binary constraint networks [CN = <P, M, S>] (paper Section 3).

    [P] is a set of variables (the arrays), [M] gives each variable a
    finite domain (its candidate layouts), and [S] is a set of binary
    constraints: for a pair of variables, the set of allowed value pairs.
    Pairs of variables with no constraint in [S] are unconstrained.

    The network is polymorphic in the domain-value type: the layout
    pipeline instantiates it at [Layout.t], the tests also use plain
    integers and strings. *)

type 'a t

val create : names:string array -> domains:'a array array -> 'a t
(** [create ~names ~domains] builds a network with no constraints.
    Raises [Invalid_argument] if lengths differ, or any domain is empty. *)

val num_vars : 'a t -> int
val name : 'a t -> int -> string
val domain : 'a t -> int -> 'a array
(** A copy of the variable's domain values. *)

val domain_size : 'a t -> int -> int
val value : 'a t -> int -> int -> 'a
(** [value t i v] is the [v]-th domain value of variable [i]. *)

val total_domain_size : 'a t -> int
(** Sum of domain sizes over all variables: the paper's Table 1
    "Domain Size" column. *)

val add_allowed : 'a t -> int -> int -> (int * int) list -> unit
(** [add_allowed t i j pairs] adds the given [(vi, vj)] value-index pairs
    to the constraint between [i] and [j], creating it if absent (an
    absent constraint allows everything; once created, only added pairs
    are allowed).  Orientation follows the argument order.  Raises
    [Invalid_argument] if [i = j] or an index is out of range. *)

val constrained : 'a t -> int -> int -> bool
(** Whether a constraint exists between the two variables. *)

val allowed : 'a t -> int -> int -> int -> int -> bool
(** [allowed t i vi j vj] is false only if a constraint exists between [i]
    and [j] and excludes the pair. *)

val support_count : 'a t -> int -> int -> int -> int
(** [support_count t i vi j] is the number of values of [j] compatible
    with [i = vi]; [domain_size t j] when the pair is unconstrained. *)

val relation : 'a t -> int -> int -> Relation.t option
(** The relation between [i] and [j], oriented with [i] on the left.
    When stored the other way the returned transpose is a cached
    snapshot (rebuilt only after the constraint is next mutated):
    treat it as read-only. *)

val compile : 'a t -> Compiled.t
(** The dense, value-index-only view of the network the solver and
    AC-2001 run on: an n x n directed constraint-handle matrix, int-word
    support rows, support popcounts, neighbour arrays (see {!Compiled}).
    Memoized; invalidated by {!add_allowed}. *)

val neighbors : 'a t -> int -> int list
(** Variables sharing a constraint with the given one, ascending. *)

val degree : 'a t -> int -> int
val num_constraints : 'a t -> int
val constraint_pairs : 'a t -> (int * int) list
(** All constrained pairs [(i, j)] with [i < j], ascending. *)

val verify : 'a t -> int array -> bool
(** [verify t a] checks the complete assignment [a] (value index per
    variable) against every constraint.  Raises [Invalid_argument] if the
    assignment has the wrong length or an index is out of range. *)

val consistent_partial : 'a t -> int array -> bool
(** Like {!verify} for a partial instantiation: entries of [-1] are
    unassigned, and only constraints between assigned variables are
    checked — the paper's "consistent partial instantiation". *)

val components : 'a t -> int array array
(** Connected components of the constraint graph ({!Compiled.components}
    on the memoized compiled view): members ascending, components ordered
    by smallest member, unconstrained variables singleton. *)

val induced : 'a t -> int array -> 'a t
(** [induced t vars] is the subnetwork on exactly the variables [vars]
    (order preserved — sub-variable [k] is [vars.(k)]), keeping the
    constraints whose endpoints both survive.  Constraints that allow
    nothing are preserved as such.  Raises [Invalid_argument] on a
    duplicate or out-of-range variable. *)

val restrict_domains : 'a t -> bool array array -> 'a t
(** [restrict_domains t keep] is a fresh network with the same variables
    but only the values [v] of variable [i] with [keep.(i).(v)], order
    preserved, and every relation re-indexed onto the surviving values.
    Constraints whose allowed pairs all vanish are preserved as empty
    relations (they allow nothing).  This is the substrate of sound
    domain preprocessing (dominance pruning in [Mlo_netgen]): removing a
    value whose supports in every constraint are a subset of a kept
    value's cannot change satisfiability.  Raises [Invalid_argument] if
    a mask's shape disagrees with its domain or a mask would empty a
    domain. *)

val map_values : ('a -> 'b) -> 'a t -> 'b t
(** Same structure with converted domain values. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
