(* Dense, cache-friendly view of a binary constraint network.

   The hashtable-of-relations representation (Network) is convenient to
   build incrementally but costly to query: every consistency check
   allocates an (i, j) tuple key, hashes it, and probes a byte-packed
   bitmap.  The compiled view lowers the network into flat arrays:

   - [handle]: an n x n matrix of directed constraint handles, both
     orientations precomputed, so no transpose is ever taken on the hot
     path and [allowed] is two array reads and a bit test;
   - [rows]: per (handle, value) support rows as int-word bitsets in the
     Bitset word layout, so forward checking prunes a whole neighbour
     domain with word-wise [land]/popcount and AC-2001 finds supports by
     scanning words;
   - [supcnt]: per (handle, value) support popcounts, read in O(1) by the
     least-constraining value ordering;
   - [neighbors]: int arrays instead of sorted lists.

   Construction lives in {!Network.compile} (which memoizes it); this
   module only defines the representation and its read-only operations. *)

type t = {
  n : int;
  dom_size : int array;
  neighbors : int array array; (* ascending, mirrors Network.neighbors *)
  handle : int array; (* (i * n + j) -> directed handle, or -1 *)
  rows : Bitset.row array array; (* rows.(h).(vi): supports over dom(j) *)
  supcnt : int array array; (* supcnt.(h).(vi) = popcount rows.(h).(vi) *)
}

let make ~dom_size ~neighbors ~handle ~rows ~supcnt =
  { n = Array.length dom_size; dom_size; neighbors; handle; rows; supcnt }

let num_vars t = t.n
let domain_size t i = t.dom_size.(i)
let neighbors t i = t.neighbors.(i)
let degree t i = Array.length t.neighbors.(i)

let handle t i j = Array.unsafe_get t.handle ((i * t.n) + j)
let constrained t i j = i <> j && handle t i j >= 0
let num_handles t = Array.length t.rows

let row t h vi = t.rows.(h).(vi)

let allowed t i vi j vj =
  let h = handle t i j in
  h < 0 || Bitset.row_mem (Array.unsafe_get t.rows h).(vi) vj

let support_count t i vi j =
  let h = handle t i j in
  if h < 0 then t.dom_size.(j) else t.supcnt.(h).(vi)

(* Connected components of the constraint graph by breadth-first sweep.
   Components are emitted in order of their smallest variable, members
   ascending; unconstrained variables form singleton components. *)
let components t =
  let seen = Array.make t.n false in
  let queue = Array.make t.n 0 in
  let out = ref [] in
  for start = 0 to t.n - 1 do
    if not seen.(start) then begin
      seen.(start) <- true;
      queue.(0) <- start;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let v = queue.(!head) in
        incr head;
        let nbrs = t.neighbors.(v) in
        for k = 0 to Array.length nbrs - 1 do
          let j = nbrs.(k) in
          if not seen.(j) then begin
            seen.(j) <- true;
            queue.(!tail) <- j;
            incr tail
          end
        done
      done;
      let members = Array.sub queue 0 !tail in
      Array.sort Int.compare members;
      out := members :: !out
    end
  done;
  Array.of_list (List.rev !out)

let verify t a =
  if Array.length a <> t.n then
    invalid_arg "Compiled.verify: assignment length differs from variable count";
  Array.iteri
    (fun i v ->
      if v < 0 || v >= t.dom_size.(i) then
        invalid_arg "Compiled.verify: value index out of range")
    a;
  let ok = ref true in
  for i = 0 to t.n - 1 do
    let nbrs = t.neighbors.(i) in
    for k = 0 to Array.length nbrs - 1 do
      let j = nbrs.(k) in
      if j > i && not (allowed t i a.(i) j a.(j)) then ok := false
    done
  done;
  !ok
