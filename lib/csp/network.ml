type 'a t = {
  names : string array;
  domains : 'a array array;
  cons : (int * int, Relation.t) Hashtbl.t; (* keyed (i, j) with i < j *)
  neighbors : int list array; (* kept sorted ascending *)
  mutable compiled : Compiled.t option; (* memoized dense view *)
}

let create ~names ~domains =
  if Array.length names <> Array.length domains then
    invalid_arg "Network.create: names/domains length mismatch";
  Array.iter
    (fun d -> if Array.length d = 0 then invalid_arg "Network.create: empty domain")
    domains;
  {
    names = Array.copy names;
    domains = Array.map Array.copy domains;
    cons = Hashtbl.create 64;
    neighbors = Array.make (Array.length names) [];
    compiled = None;
  }

let num_vars t = Array.length t.names
let name t i = t.names.(i)
let domain t i = Array.copy t.domains.(i)
let domain_size t i = Array.length t.domains.(i)
let value t i v = t.domains.(i).(v)

let total_domain_size t =
  Array.fold_left (fun acc d -> acc + Array.length d) 0 t.domains

let key i j = if i < j then (i, j) else (j, i)

let check_var t i =
  if i < 0 || i >= num_vars t then invalid_arg "Network: variable out of range"

let insert_sorted x l =
  let rec go = function
    | [] -> [ x ]
    | y :: ys as l' -> if x < y then x :: l' else if x = y then l' else y :: go ys
  in
  go l

let add_allowed t i j pairs =
  check_var t i;
  check_var t j;
  if i = j then invalid_arg "Network.add_allowed: i = j";
  t.compiled <- None;
  let a, b = key i j in
  let rel =
    match Hashtbl.find_opt t.cons (a, b) with
    | Some r -> r
    | None ->
      let r =
        Relation.create
          ~left:(Array.length t.domains.(a))
          ~right:(Array.length t.domains.(b))
      in
      Hashtbl.replace t.cons (a, b) r;
      t.neighbors.(a) <- insert_sorted b t.neighbors.(a);
      t.neighbors.(b) <- insert_sorted a t.neighbors.(b);
      r
  in
  List.iter
    (fun (vi, vj) ->
      let l, r = if i < j then (vi, vj) else (vj, vi) in
      Relation.add rel l r)
    pairs

let constrained t i j = i <> j && Hashtbl.mem t.cons (key i j)

let allowed t i vi j vj =
  match Hashtbl.find_opt t.cons (key i j) with
  | None -> true
  | Some rel -> if i < j then Relation.mem rel vi vj else Relation.mem rel vj vi

let support_count t i vi j =
  match Hashtbl.find_opt t.cons (key i j) with
  | None -> domain_size t j
  | Some rel ->
    if i < j then Relation.left_support rel vi else Relation.right_support rel vi

let relation t i j =
  match Hashtbl.find_opt t.cons (key i j) with
  | None -> None
  | Some rel -> if i < j then Some rel else Some (Relation.transpose rel)

let neighbors t i =
  check_var t i;
  t.neighbors.(i)

let degree t i = List.length (neighbors t i)
let num_constraints t = Hashtbl.length t.cons

let constraint_pairs t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.cons []
  |> List.sort Stdlib.compare

let check_assignment_shape t a partial =
  if Array.length a <> num_vars t then
    invalid_arg "Network: assignment length differs from variable count";
  Array.iteri
    (fun i v ->
      if v >= Array.length t.domains.(i) || (v < 0 && not (partial && v = -1))
      then invalid_arg "Network: value index out of range")
    a

let consistent_with t a partial =
  check_assignment_shape t a partial;
  Hashtbl.fold
    (fun (i, j) rel ok ->
      ok
      && (a.(i) = -1 || a.(j) = -1 || Relation.mem rel a.(i) a.(j)))
    t.cons true

let verify t a = consistent_with t a false
let consistent_partial t a = consistent_with t a true

let map_values f t =
  let cons = Hashtbl.create (Hashtbl.length t.cons) in
  Hashtbl.iter (fun k rel -> Hashtbl.replace cons k (Relation.copy rel)) t.cons;
  {
    names = Array.copy t.names;
    domains = Array.map (Array.map f) t.domains;
    cons;
    neighbors = Array.copy t.neighbors;
    compiled = None;
  }

(* Lower the hashtable-of-relations representation into the dense
   Compiled view: both constraint orientations, support rows as int-word
   bitsets, support popcounts, neighbour arrays.  Memoized until the next
   [add_allowed]; O(sum of |dom i| * |dom j| over constrained pairs). *)
let compile t =
  match t.compiled with
  | Some c -> c
  | None ->
    let n = num_vars t in
    let dom_size = Array.init n (fun i -> Array.length t.domains.(i)) in
    let neighbors = Array.map Array.of_list t.neighbors in
    let handle = Array.make (n * n) (-1) in
    let pairs = constraint_pairs t in
    let m = List.length pairs in
    let rows = Array.make (2 * m) [||] in
    let supcnt = Array.make (2 * m) [||] in
    List.iteri
      (fun k (i, j) ->
        let rel = Hashtbl.find t.cons (i, j) in
        let hij = 2 * k and hji = (2 * k) + 1 in
        handle.((i * n) + j) <- hij;
        handle.((j * n) + i) <- hji;
        let li = dom_size.(i) and lj = dom_size.(j) in
        let rij = Array.init li (fun _ -> Bitset.row_make lj) in
        let rji = Array.init lj (fun _ -> Bitset.row_make li) in
        for vi = 0 to li - 1 do
          for vj = 0 to lj - 1 do
            if Relation.mem rel vi vj then begin
              Bitset.row_add rij.(vi) vj;
              Bitset.row_add rji.(vj) vi
            end
          done
        done;
        rows.(hij) <- rij;
        rows.(hji) <- rji;
        supcnt.(hij) <- Array.init li (Relation.left_support rel);
        supcnt.(hji) <- Array.init lj (Relation.right_support rel))
      pairs;
    let c = Compiled.make ~dom_size ~neighbors ~handle ~rows ~supcnt in
    t.compiled <- Some c;
    c

let components t = Compiled.components (compile t)

(* Induced subnetwork: keep only the listed variables (order preserved)
   and the constraints between them.  Empty relations (constraints that
   allow nothing) are preserved as empty relations. *)
let induced t vars =
  let n = num_vars t in
  let pos = Array.make n (-1) in
  Array.iteri
    (fun k v ->
      check_var t v;
      if pos.(v) >= 0 then invalid_arg "Network.induced: duplicate variable";
      pos.(v) <- k)
    vars;
  let sub =
    create
      ~names:(Array.map (fun v -> t.names.(v)) vars)
      ~domains:(Array.map (fun v -> t.domains.(v)) vars)
  in
  Hashtbl.iter
    (fun (i, j) rel ->
      if pos.(i) >= 0 && pos.(j) >= 0 then begin
        let pairs = ref [] in
        for vi = 0 to Array.length t.domains.(i) - 1 do
          for vj = 0 to Array.length t.domains.(j) - 1 do
            if Relation.mem rel vi vj then pairs := (vi, vj) :: !pairs
          done
        done;
        add_allowed sub pos.(i) pos.(j) !pairs
      end)
    t.cons;
  sub

(* Value-level restriction: keep only the flagged values of every
   domain (order preserved) and re-index the relations.  A constraint
   whose allowed pairs are all dropped survives as an empty relation
   (allows nothing), mirroring [induced].  Sound preprocessing —
   e.g. dominance pruning in Mlo_netgen — removes only values whose
   remaining supports are covered by a kept value, so satisfiability is
   unchanged. *)
let restrict_domains t keep =
  if Array.length keep <> num_vars t then
    invalid_arg "Network.restrict_domains: mask length differs from variables";
  let maps =
    Array.mapi
      (fun i k ->
        if Array.length k <> Array.length t.domains.(i) then
          invalid_arg "Network.restrict_domains: mask/domain length mismatch";
        let idx = ref [] in
        Array.iteri (fun v b -> if b then idx := v :: !idx) k;
        let idx = Array.of_list (List.rev !idx) in
        if Array.length idx = 0 then
          invalid_arg "Network.restrict_domains: mask empties a domain";
        idx)
      keep
  in
  let sub =
    create ~names:t.names
      ~domains:
        (Array.mapi (fun i idx -> Array.map (fun v -> t.domains.(i).(v)) idx) maps)
  in
  let inv =
    Array.mapi
      (fun i idx ->
        let m = Array.make (Array.length t.domains.(i)) (-1) in
        Array.iteri (fun nv ov -> m.(ov) <- nv) idx;
        m)
      maps
  in
  Hashtbl.iter
    (fun (i, j) rel ->
      let pairs = ref [] in
      for vi = 0 to Array.length t.domains.(i) - 1 do
        for vj = 0 to Array.length t.domains.(j) - 1 do
          if inv.(i).(vi) >= 0 && inv.(j).(vj) >= 0 && Relation.mem rel vi vj
          then pairs := (inv.(i).(vi), inv.(j).(vj)) :: !pairs
        done
      done;
      add_allowed sub i j !pairs)
    t.cons;
  sub

let pp pp_value ppf t =
  Format.fprintf ppf "@[<v>network: %d variables, %d constraints@," (num_vars t)
    (num_constraints t);
  Array.iteri
    (fun i n ->
      Format.fprintf ppf "  %s: {" n;
      Array.iteri
        (fun v x ->
          if v > 0 then Format.fprintf ppf ", ";
          pp_value ppf x)
        t.domains.(i);
      Format.fprintf ppf "}@,")
    t.names;
  List.iter
    (fun (i, j) ->
      match Hashtbl.find_opt t.cons (i, j) with
      | None -> ()
      | Some rel ->
        Format.fprintf ppf "  S(%s,%s): %d pairs@," t.names.(i) t.names.(j)
          (Relation.pair_count rel))
    (constraint_pairs t);
  Format.fprintf ppf "@]"
