(* Learned-nogood store: watched-value propagation, bounded forgetting.
   See nogood.mli for the scheme; soundness notes inline. *)

type ng = {
  vars : int array;
  vals : int array;
  mutable act : float;
  mutable alive : bool;
  mutable w1 : int;  (* watched literal, index into [vars]/[vals] *)
  mutable w2 : int;
}

type t = {
  md : int;  (* watch-index stride: max domain size *)
  limit : int;
  mutable ngs : ng array;  (* slots [0 .. n-1] used; may hold dead ngs *)
  mutable n : int;
  mutable live : int;
  mutable watch : int list array;  (* (var * md + value) -> watcher ids *)
  bans : Bitset.t array;  (* unit nogoods, one bitset per variable *)
  mutable inc : float;  (* activity bump increment (VSIDS-style) *)
  mutable n_learned : int;
  mutable n_forgotten : int;
}

type event = Quiet | Wiped of int | Violated of int

let dummy = { vars = [||]; vals = [||]; act = 0.; alive = false; w1 = 0; w2 = 0 }

let create ?(limit = 4000) c =
  let nv = Compiled.num_vars c in
  let md = ref 1 in
  for v = 0 to nv - 1 do
    md := max !md (Compiled.domain_size c v)
  done;
  {
    md = !md;
    limit = max 2 limit;
    ngs = Array.make 64 dummy;
    n = 0;
    live = 0;
    watch = Array.make (max 1 (nv * !md)) [];
    bans = Array.init nv (fun v -> Bitset.create_empty (max 1 (Compiled.domain_size c v)));
    inc = 1.0;
    n_learned = 0;
    n_forgotten = 0;
  }

let size t = t.live
let learned t = t.n_learned
let forgotten t = t.n_forgotten
let banned t var value = Bitset.mem t.bans.(var) value

let ban t ~var ~value =
  if not (Bitset.mem t.bans.(var) value) then begin
    Bitset.add t.bans.(var) value;
    t.n_learned <- t.n_learned + 1
  end

let iter_lits t id f =
  let g = t.ngs.(id) in
  for i = 0 to Array.length g.vars - 1 do
    f g.vars.(i) g.vals.(i)
  done

let rescale_if_needed t =
  if t.inc > 1e100 then begin
    for i = 0 to t.n - 1 do
      t.ngs.(i).act <- t.ngs.(i).act *. 1e-100
    done;
    t.inc <- t.inc *. 1e-100
  end

let bump t id =
  let g = t.ngs.(id) in
  g.act <- g.act +. t.inc;
  rescale_if_needed t

let decay t = t.inc <- t.inc /. 0.999

let unwatch_all t =
  Array.fill t.watch 0 (Array.length t.watch) []

let add_watch t id i =
  let g = t.ngs.(id) in
  let w = (g.vars.(i) * t.md) + g.vals.(i) in
  t.watch.(w) <- id :: t.watch.(w)

(* Compact the slot array (dropping dead nogoods) and rebuild every watch
   list from the surviving watches.  O(slots + watch array); restart
   boundaries only. *)
let rebuild t =
  unwatch_all t;
  let j = ref 0 in
  for i = 0 to t.n - 1 do
    let g = t.ngs.(i) in
    if g.alive then begin
      t.ngs.(!j) <- g;
      add_watch t !j g.w1;
      add_watch t !j g.w2;
      incr j
    end
  done;
  Array.fill t.ngs !j (t.n - !j) dummy;
  t.n <- !j;
  t.live <- !j

(* Forget down to [limit] live nogoods: largest literal count first (the
   count doubles as LBD — conflict sets carry one literal per level),
   ties by lowest activity; binaries only when nothing else is left. *)
let reduce t ~limit =
  let limit = max 0 limit in
  if t.live > limit then begin
    let order = Array.make t.live 0 in
    let j = ref 0 in
    for i = 0 to t.n - 1 do
      if t.ngs.(i).alive then begin
        order.(!j) <- i;
        incr j
      end
    done;
    let weight i =
      let g = t.ngs.(i) in
      (* binaries sort after everything bigger regardless of activity *)
      if Array.length g.vars <= 2 then (0, g.act) else (Array.length g.vars, g.act)
    in
    Array.sort
      (fun a b ->
        let sa, aa = weight a and sb, ab = weight b in
        if sa <> sb then compare sb sa else compare aa ab)
      order;
    let drop = t.live - limit in
    for k = 0 to drop - 1 do
      t.ngs.(order.(k)).alive <- false
    done;
    t.n_forgotten <- t.n_forgotten + drop;
    rebuild t
  end

let grow t =
  if t.n = Array.length t.ngs then begin
    let bigger = Array.make (2 * t.n) dummy in
    Array.blit t.ngs 0 bigger 0 t.n;
    t.ngs <- bigger
  end

let learn t ~n ~vars ~vals ~levels =
  if n <= 0 then invalid_arg "Nogood.learn: empty nogood";
  if n = 1 then ban t ~var:vars.(0) ~value:vals.(0)
  else begin
    (* Stay within the store bound: halve before overflowing so learning
       bursts between restarts do not thrash the reducer (but always
       leave room for the insert below, even at tiny limits). *)
    if t.live >= t.limit then
      reduce t ~limit:(min (t.limit - 1) (max 2 (t.limit / 2)));
    (* Watch the two deepest literals: the backjump that follows this
       conflict unassigns them first, restoring non-held watches. *)
    let w1 = ref 0 in
    for i = 1 to n - 1 do
      if levels.(i) > levels.(!w1) then w1 := i
    done;
    let w2 = ref (if !w1 = 0 then 1 else 0) in
    for i = 0 to n - 1 do
      if i <> !w1 && levels.(i) > levels.(!w2) then w2 := i
    done;
    grow t;
    let g =
      {
        vars = Array.sub vars 0 n;
        vals = Array.sub vals 0 n;
        act = t.inc;
        alive = true;
        w1 = !w1;
        w2 = !w2;
      }
    in
    let id = t.n in
    t.ngs.(id) <- g;
    t.n <- t.n + 1;
    t.live <- t.live + 1;
    add_watch t id !w1;
    add_watch t id !w2;
    t.n_learned <- t.n_learned + 1
  end

let on_assign t ~var ~value ~held ~prune =
  let wi = (var * t.md) + value in
  let firing = t.watch.(wi) in
  let keep = ref [] in
  let event = ref Quiet in
  List.iter
    (fun id ->
      let g = t.ngs.(id) in
      if g.alive then begin
        (* Which watch fired?  (A moved watch leaves no stale entry, but a
           dead-then-compacted store can alias ids; be defensive.) *)
        let fired =
          if g.vars.(g.w1) = var && g.vals.(g.w1) = value then 1
          else if g.vars.(g.w2) = var && g.vals.(g.w2) = value then 2
          else 0
        in
        if fired = 0 then () (* stale entry: drop *)
        else begin
          let ow1 = g.w1 and ow2 = g.w2 in
          let other = if fired = 1 then ow2 else ow1 in
          (* try to move the fired watch to another non-held literal *)
          let len = Array.length g.vars in
          let r = ref (-1) in
          let i = ref 0 in
          while !r < 0 && !i < len do
            if !i <> ow1 && !i <> ow2 && not (held g.vars.(!i) g.vals.(!i))
            then r := !i;
            incr i
          done;
          if !r >= 0 then begin
            if fired = 1 then g.w1 <- !r else g.w2 <- !r;
            add_watch t id !r
            (* not kept on this literal's list *)
          end
          else begin
            keep := id :: !keep;
            if held g.vars.(other) g.vals.(other) then begin
              (* every literal held: the holders' levels are a conflict *)
              g.act <- g.act +. t.inc;
              rescale_if_needed t;
              match !event with Violated _ -> () | _ -> event := Violated id
            end
            else begin
              (* all but [other] held: force its value out.  The engine's
                 callback skips assigned variables and already-pruned
                 values, blames the held literals' levels, and reports a
                 wipeout. *)
              g.act <- g.act +. t.inc;
              rescale_if_needed t;
              if prune id ~var:g.vars.(other) ~value:g.vals.(other) then
                match !event with
                | Quiet -> event := Wiped g.vars.(other)
                | _ -> ()
            end
          end
        end
      end)
    firing;
  t.watch.(wi) <- !keep;
  !event
