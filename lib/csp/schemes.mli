(** The paper's named solver configurations (Section 4 / Section 5).

    The {e base scheme} makes all three decisions randomly / naively:
    random variable selection, random value selection, chronological
    backtracking.  The {e enhanced scheme} replaces all three: the
    most-constraining variable is instantiated first, values are tried in
    least-constraining order, and dead-ends backjump along the constraint
    graph.  The three intermediate schemes used for Figure 4 enable one
    improvement at a time. *)

val base : ?seed:int -> ?max_checks:int -> unit -> Solver.config
val enhanced : ?seed:int -> ?max_checks:int -> unit -> Solver.config

val base_plus_variable_selection :
  ?seed:int -> ?max_checks:int -> unit -> Solver.config
(** Base scheme with only the variable-selection improvement. *)

val base_plus_value_selection :
  ?seed:int -> ?max_checks:int -> unit -> Solver.config
(** Base scheme with only the value-selection improvement. *)

val base_plus_backjumping :
  ?seed:int -> ?max_checks:int -> unit -> Solver.config
(** Base scheme with only backjumping. *)

val enhanced_with_ac : ?seed:int -> ?max_checks:int -> unit -> Solver.config
(** Enhanced scheme with AC-2001 arc-consistency preprocessing
    ({!Solver.preprocess}): every domain the search and its heuristics
    range over is first reduced to its arc-consistent core. *)

type ablation = {
  label : string;
  config : Solver.config;
}

val figure4_schemes : ?seed:int -> ?max_checks:int -> unit -> ablation list
(** The three single-improvement schemes, in the paper's Figure 4 order:
    variable selection, value selection, backjumping. *)

val extension_schemes : ?seed:int -> ?max_checks:int -> unit -> ablation list
(** Beyond the paper: enhanced scheme with conflict-directed backjumping,
    with forward checking, and with AC-2001 preprocessing. *)

val most_constraining_order : 'a Network.t -> int array
(** The static variable order the enhanced scheme's most-constraining
    rule follows when the search never backtracks: repeatedly the
    unselected variable with (most constraints to unselected variables,
    then most to already-selected ones, then smallest domain), lowest
    index on ties — the same triple the dynamic selection scores.  This
    is the ordering {!Mlo_analysis.Netcheck} measures width and induced
    width along (Freuder's backtrack-free condition). *)

val breakdown :
  base_checks:int -> enhanced_checks:int -> single:(string * int) list ->
  (string * float) list
(** Figure-4 arithmetic: given the base cost, the all-enhancements cost
    and each single-improvement cost (same units), attribute the total
    saving [base - enhanced] to the individual improvements
    proportionally to their individual savings [base - single_i], clamped
    at zero.  Returns (label, fraction) summing to 1 when any saving
    exists. *)
