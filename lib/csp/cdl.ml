(* Conflict-driven engine: the solver's FC + conflict-directed search
   core, plus nogood learning (see nogood.ml), VSIDS activities and Luby
   restarts.  Structured after Solver.solve_compiled; differences are
   commented.  Soundness notes:

   - A learned nogood is the set of assignments at the dead end's
     conflict-set levels: CBJ semantics say those assignments (alone)
     admit no extension of the dead-end variable, so no solution holds
     them all.  Supersets of conflict sets stay valid, so the coarse
     per-variable blame below only weakens nogoods, never breaks them.
   - A nogood-forced pruning is blamed on the levels of all its held
     literals (blaming just the current level would be unsound: the
     pruning survives backtracking above the other literals' levels).
     Blame bits for levels whose trail entry lives elsewhere can go
     stale after backjumps — stale bits only add premises to later
     conflict sets, which keeps them valid (and the matrix is cleared on
     restart, bounding the drift).
   - Unit nogoods are global bans: a singleton conflict set means the
     assignment alone admits no extension, independent of the rest of
     the tree. *)

module Trace = Mlo_obs.Trace
open Solver

type config = {
  restarts : int;
  restart_base : int;
  learn_limit : int;
  preprocess : Solver.preprocess;
  max_checks : int option;
}

let default_config =
  {
    restarts = 50;
    restart_base = 100;
    learn_limit = 4000;
    preprocess = Solver.No_preprocess;
    max_checks = None;
  }

(* luby 1, 2, 3, ... = 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

exception Restart_now
exception Abort

type cstep = CFound | CFail of int

let solve_compiled ?(config = default_config) ?cancel ?on_learn comp =
  let n = Compiled.num_vars comp in
  let stats = Stats.create () in
  Stats.ensure_hists stats n;
  let tr = Trace.enabled () in
  let t_wall = Clock.wall_s () and t_cpu = Clock.cpu_s () in
  let finish outcome =
    stats.Stats.elapsed_s <- Clock.wall_s () -. t_wall;
    stats.Stats.cpu_s <- Clock.cpu_s () -. t_cpu;
    { outcome; stats }
  in
  let base =
    match config.preprocess with
    | Solver.No_preprocess -> Some None
    | Solver.Arc_consistency -> (
      match Ac2001.run comp with
      | Error _wiped -> None
      | Ok domains -> Some (Some domains))
  in
  match base with
  | None -> finish Unsatisfiable
  | Some reduced ->
    let store = Nogood.create ~limit:config.learn_limit comp in
    let assignment = Array.make n (-1) in
    let level_of = Array.make n (-1) in
    let var_at = Array.make n (-1) in
    let lw = Lset.words n in
    let conf = Lset.make_mat n n in
    let carry = Lset.make_mat 1 n in
    let fresh_domains () =
      match reduced with
      | Some d -> Array.map Bitset.copy d
      | None ->
        Array.init n (fun i -> Bitset.create_full (Compiled.domain_size comp i))
    in
    let domains = fresh_domains () in
    let trail = Array.make n [] in
    let pruned_by = Lset.make_mat n n in
    (* VSIDS state: variable and (variable, value) activities.  [vact]
       starts at the static degree so the pre-conflict order matches the
       most-constraining heuristic; value activities start flat. *)
    let vact = Array.init n (fun v -> float_of_int (Compiled.degree comp v)) in
    let max_dom = ref 1 in
    for i = 0 to n - 1 do
      if Compiled.domain_size comp i > !max_dom then
        max_dom := Compiled.domain_size comp i
    done;
    let md = !max_dom in
    let qact = Array.make (n * md) 0.0 in
    let inc = ref 1.0 in
    let decay_rate = 0.95 in
    let rescale () =
      if !inc > 1e100 then begin
        for v = 0 to n - 1 do
          vact.(v) <- vact.(v) *. 1e-100
        done;
        for i = 0 to (n * md) - 1 do
          qact.(i) <- qact.(i) *. 1e-100
        done;
        inc := !inc *. 1e-100
      end
    in

    let check_limit =
      match config.max_checks with Some m -> m | None -> max_int
    in
    let bump_check =
      match cancel with
      | None ->
        fun () ->
          stats.Stats.checks <- stats.Stats.checks + 1;
          if stats.Stats.checks > check_limit then raise Abort
      | Some cancelled ->
        fun () ->
          stats.Stats.checks <- stats.Stats.checks + 1;
          if stats.Stats.checks > check_limit then raise Abort;
          if stats.Stats.checks land 255 = 0 && cancelled () then raise Abort
    in

    (* VSIDS variable selection: highest activity, ties by smaller
       current domain, then lower index. *)
    let select_var () =
      let best = ref (-1) in
      let ba = ref 0.0 and bd = ref 0 in
      for v = 0 to n - 1 do
        if level_of.(v) < 0 then
          if !best < 0 then begin
            best := v;
            ba := vact.(v);
            bd := Bitset.count domains.(v)
          end
          else if vact.(v) > !ba then begin
            best := v;
            ba := vact.(v);
            bd := Bitset.count domains.(v)
          end
          else if vact.(v) = !ba then begin
            let d = Bitset.count domains.(v) in
            if d < !bd then begin
              best := v;
              bd := d
            end
          end
      done;
      if !best < 0 then invalid_arg "Cdl: no unassigned variable";
      !best
    in

    let cand = Array.make (n * md) 0 in
    let score_scratch = Array.make md 0.0 in

    (* Live values minus banned ones, ordered by value activity
       (descending; ties by lower value index). *)
    let fill_candidates var level =
      let off = level * md in
      let m0 = Bitset.fill_array domains.(var) cand off in
      let m = ref 0 in
      for k = 0 to m0 - 1 do
        let v = cand.(off + k) in
        if not (Nogood.banned store var v) then begin
          cand.(off + !m) <- v;
          incr m
        end
      done;
      let m = !m in
      let qoff = var * md in
      let scores = score_scratch in
      for k = 0 to m - 1 do
        scores.(k) <- qact.(qoff + cand.(off + k))
      done;
      for k = 1 to m - 1 do
        let s = scores.(k) and v = cand.(off + k) in
        let p = ref k in
        while
          !p > 0
          && (scores.(!p - 1) < s
              || (scores.(!p - 1) = s && cand.(off + !p - 1) > v))
        do
          scores.(!p) <- scores.(!p - 1);
          cand.(off + !p) <- cand.(off + !p - 1);
          decr p
        done;
        scores.(!p) <- s;
        cand.(off + !p) <- v
      done;
      m
    in

    let prune level j w =
      Bitset.remove domains.(j) w;
      trail.(level) <- (j, w) :: trail.(level);
      Lset.add pruned_by (j * lw) level;
      stats.Stats.prunings <- stats.Stats.prunings + 1
    in

    let undo_level level =
      List.iter (fun (j, w) -> Bitset.add domains.(j) w) trail.(level);
      List.iter
        (fun (j, _) -> Lset.remove pruned_by (j * lw) level)
        trail.(level);
      trail.(level) <- []
    in

    let fc_assign var v level =
      let nbrs = Compiled.neighbors comp var in
      let wiped = ref false in
      let k = ref 0 in
      while (not !wiped) && !k < Array.length nbrs do
        let j = nbrs.(!k) in
        incr k;
        if level_of.(j) < 0 then begin
          bump_check ();
          let row = Compiled.row comp (Compiled.handle comp var j) v in
          Bitset.iter_diff (fun w -> prune level j w) domains.(j) row;
          if Bitset.is_empty domains.(j) then begin
            wiped := true;
            Lset.union_below pruned_by (j * lw) conf (level * lw) level lw
          end
        end
      done;
      not !wiped
    in

    let held y w = assignment.(y) = w in
    (* Nogood-forced pruning: remove the last non-held literal's value,
       blaming every held literal's level (see the soundness note at the
       top).  The store cannot see domains, so applicability is checked
       here. *)
    let ng_prune level id ~var:x ~value:w =
      if level_of.(x) >= 0 || not (Bitset.mem domains.(x) w) then false
      else begin
        Bitset.remove domains.(x) w;
        trail.(level) <- (x, w) :: trail.(level);
        Lset.add pruned_by (x * lw) level;
        Nogood.iter_lits store id (fun y u ->
            if assignment.(y) = u then Lset.add pruned_by (x * lw) level_of.(y));
        stats.Stats.prunings <- stats.Stats.prunings + 1;
        Bitset.is_empty domains.(x)
      end
    in

    (* Propagate the new assignment through the learned store; [false]
       means this value dies here (culprits merged into this level's
       conflict set, prunings undone by the caller). *)
    let ng_assign var v level =
      bump_check ();
      match
        Nogood.on_assign store ~var ~value:v ~held ~prune:(ng_prune level)
      with
      | Nogood.Quiet -> true
      | Nogood.Wiped x ->
        Lset.union_below pruned_by (x * lw) conf (level * lw) level lw;
        false
      | Nogood.Violated id ->
        Nogood.iter_lits store id (fun y u ->
            if assignment.(y) = u && level_of.(y) < level then
              Lset.add conf (level * lw) level_of.(y));
        false
    in

    (* Per-run conflict budget; Restart_now unwinds to the run loop. *)
    let budget = ref max_int in
    let conflicts = ref 0 in
    let runs_done = ref 0 in

    let lvars = Array.make n 0 in
    let lvals = Array.make n 0 in
    let llvls = Array.make n 0 in

    let dead_end var level =
      let off = level * lw in
      Lset.keep_below conf off level lw;
      (* Gather the culprit assignments (ascending levels), bump every
         participant — conflict-side VSIDS — and learn the nogood. *)
      let cnt = ref 0 in
      Lset.iter
        (fun l ->
          let y = var_at.(l) in
          lvars.(!cnt) <- y;
          lvals.(!cnt) <- assignment.(y);
          llvls.(!cnt) <- l;
          incr cnt;
          vact.(y) <- vact.(y) +. !inc;
          qact.((y * md) + assignment.(y)) <-
            qact.((y * md) + assignment.(y)) +. !inc)
        conf off lw;
      vact.(var) <- vact.(var) +. !inc;
      inc := !inc /. decay_rate;
      rescale ();
      if !cnt = 0 then CFail (-1)
      else begin
        let forgotten0 = Nogood.forgotten store in
        Nogood.learn store ~n:!cnt ~vars:lvars ~vals:lvals ~levels:llvls;
        (match on_learn with
        | None -> ()
        | Some f ->
            f ~dead:var (Array.init !cnt (fun i -> (lvars.(i), lvals.(i)))));
        Nogood.decay store;
        stats.Stats.learned <- stats.Stats.learned + 1;
        let dropped = Nogood.forgotten store - forgotten0 in
        if dropped > 0 then begin
          stats.Stats.forgotten <- stats.Stats.forgotten + dropped;
          if tr then
            Trace.instant ~cat:"solver" "forget"
              ~args:[ ("dropped", Trace.Int dropped) ]
        end;
        if tr then
          Trace.instant ~cat:"solver" "learn"
            ~args:
              [ ("size", Trace.Int !cnt); ("level", Trace.Int level) ];
        incr conflicts;
        if !conflicts > !budget then raise Restart_now;
        let target = llvls.(!cnt - 1) in
        if target = level - 1 then
          stats.Stats.backtracks <- stats.Stats.backtracks + 1
        else stats.Stats.backjumps <- stats.Stats.backjumps + 1;
        Lset.copy conf off carry 0 lw;
        Lset.remove carry 0 target;
        CFail target
      end
    in

    let rec search level =
      if level = n then CFound
      else begin
        if level > stats.Stats.max_depth then stats.Stats.max_depth <- level;
        let var = select_var () in
        var_at.(level) <- var;
        level_of.(var) <- level;
        (* conflict-directed under FC: own-domain prunings share blame *)
        Lset.copy pruned_by (var * lw) conf (level * lw) lw;
        let res = try_values var level (fill_candidates var level) 0 in
        level_of.(var) <- -1;
        var_at.(level) <- -1;
        res
      end

    and try_values var level m k =
      if k >= m then dead_end var level
      else begin
        let v = cand.((level * md) + k) in
        stats.Stats.nodes <- stats.Stats.nodes + 1;
        stats.Stats.nodes_by_depth.(level) <-
          stats.Stats.nodes_by_depth.(level) + 1;
        stats.Stats.nodes_by_var.(var) <- stats.Stats.nodes_by_var.(var) + 1;
        if tr then
          Trace.instant ~cat:"solver" "decision"
            ~args:
              [
                ("var", Trace.Int var);
                ("value", Trace.Int v);
                ("level", Trace.Int level);
              ];
        assignment.(var) <- v;
        let ok = fc_assign var v level && ng_assign var v level in
        if not ok then begin
          assignment.(var) <- -1;
          undo_level level;
          try_values var level m (k + 1)
        end
        else
          match search (level + 1) with
          | CFound -> CFound
          | CFail target ->
            assignment.(var) <- -1;
            undo_level level;
            if target < level then CFail target
            else begin
              Lset.union_below carry 0 conf (level * lw) level lw;
              try_values var level m (k + 1)
            end
      end
    in

    let reset_run () =
      Array.fill assignment 0 n (-1);
      Array.fill level_of 0 n (-1);
      Array.fill var_at 0 n (-1);
      Array.fill trail 0 n [];
      Lset.clear pruned_by 0 (n * lw);
      let d = fresh_domains () in
      Array.blit d 0 domains 0 n
    in

    let rec run i =
      budget :=
        if i < config.restarts then config.restart_base * luby (i + 1)
        else max_int;
      conflicts := 0;
      match search 0 with
      | CFound -> Solution (Array.copy assignment)
      | CFail _ -> Unsatisfiable
      | exception Restart_now ->
        runs_done := i + 1;
        stats.Stats.restarts <- stats.Stats.restarts + 1;
        if tr then
          Trace.instant ~cat:"solver" "restart"
            ~args:
              [
                ("run", Trace.Int (i + 1));
                ("learned", Trace.Int (Nogood.size store));
              ];
        let forgotten0 = Nogood.forgotten store in
        Nogood.reduce store ~limit:config.learn_limit;
        let dropped = Nogood.forgotten store - forgotten0 in
        if dropped > 0 then begin
          stats.Stats.forgotten <- stats.Stats.forgotten + dropped;
          if tr then
            Trace.instant ~cat:"solver" "forget"
              ~args:[ ("dropped", Trace.Int dropped) ]
        end;
        reset_run ();
        run (i + 1)
    in

    let outcome =
      try
        Trace.with_span ~cat:"solver" "cdl-search"
          ~args:[ ("vars", Trace.Int n) ]
          (fun () -> run 0)
      with Abort -> Aborted
    in
    (match outcome with
    | Solution a -> assert (Compiled.verify comp a)
    | Unsatisfiable | Aborted -> ());
    finish outcome

let solve ?config net = solve_compiled ?config (Network.compile net)

let solve_components ?(config = default_config) ?domains ?on_event net =
  (* Proof logging across components: each worker buffers its own
     component's events in a dedicated slot (distinct array cells, so
     parallel workers never share), and the buffers are replayed to
     [on_event] serially, in component order, after the driver returns.
     Components the driver never ran (cancelled siblings) have no
     buffer and deliver nothing. *)
  let buffers =
    match on_event with
    | None -> [||]
    | Some _ -> Array.make (max 1 (Array.length (Network.components net))) None
  in
  let r =
    Solver.component_driver ?domains ~max_checks:config.max_checks
      ~run:(fun ~comp ~vars ~max_checks ~cancel sub ->
        let config = { config with max_checks } in
        match on_event with
        | None -> solve_compiled ~config ?cancel (Network.compile sub)
        | Some _ ->
            let evs = ref [] in
            let on_learn ~dead lits =
              evs := Solver.Learned { dead; lits } :: !evs
            in
            let r =
              solve_compiled ~config ?cancel ~on_learn (Network.compile sub)
            in
            evs := Solver.Finished r.Solver.outcome :: !evs;
            buffers.(comp) <- Some (vars, List.rev !evs);
            r)
      net
  in
  (match on_event with
  | None -> ()
  | Some f ->
      Array.iteri
        (fun k slot ->
          match slot with
          | None -> ()
          | Some (vars, evs) -> List.iter (fun ev -> f ~comp:k ~vars ev) evs)
        buffers);
  r
