let make ?(seed = 1) ?max_checks ?(preprocess = Solver.No_preprocess)
    var_policy val_policy backward lookahead =
  {
    Solver.var_policy;
    val_policy;
    backward;
    lookahead;
    preprocess;
    seed;
    max_checks;
  }

let base ?seed ?max_checks () =
  make ?seed ?max_checks Solver.Random_var Solver.Random_val
    Solver.Chronological Solver.No_lookahead

let enhanced ?seed ?max_checks () =
  make ?seed ?max_checks Solver.Most_constraining Solver.Least_constraining
    Solver.Graph_based Solver.No_lookahead

let base_plus_variable_selection ?seed ?max_checks () =
  make ?seed ?max_checks Solver.Most_constraining Solver.Random_val
    Solver.Chronological Solver.No_lookahead

let base_plus_value_selection ?seed ?max_checks () =
  make ?seed ?max_checks Solver.Random_var Solver.Least_constraining
    Solver.Chronological Solver.No_lookahead

let base_plus_backjumping ?seed ?max_checks () =
  make ?seed ?max_checks Solver.Random_var Solver.Random_val
    Solver.Graph_based Solver.No_lookahead

let enhanced_with_ac ?seed ?max_checks () =
  make ?seed ?max_checks ~preprocess:Solver.Arc_consistency
    Solver.Most_constraining Solver.Least_constraining Solver.Graph_based
    Solver.No_lookahead

type ablation = { label : string; config : Solver.config }

let figure4_schemes ?seed ?max_checks () =
  [
    {
      label = "Variable Selection";
      config = base_plus_variable_selection ?seed ?max_checks ();
    };
    {
      label = "Value Selection";
      config = base_plus_value_selection ?seed ?max_checks ();
    };
    {
      label = "Backjumping";
      config = base_plus_backjumping ?seed ?max_checks ();
    };
  ]

let extension_schemes ?seed ?max_checks () =
  [
    {
      label = "Enhanced+CBJ";
      config =
        make ?seed ?max_checks Solver.Most_constraining
          Solver.Least_constraining Solver.Conflict_directed
          Solver.No_lookahead;
    };
    {
      label = "Enhanced+FC";
      config =
        make ?seed ?max_checks Solver.Most_constraining
          Solver.Least_constraining Solver.Graph_based
          Solver.Forward_checking;
    };
    { label = "Enhanced+AC"; config = enhanced_with_ac ?seed ?max_checks () };
  ]

(* Static replay of the enhanced scheme's variable selection: repeatedly
   take the unselected variable with (most constraints to unselected,
   then most to selected, then smallest full domain), lowest index on
   ties — the order the search visits variables when it never backtracks.
   The incremental un_deg/as_deg bookkeeping mirrors the solver's. *)
let most_constraining_order net =
  let comp = Network.compile net in
  let n = Compiled.num_vars comp in
  let un_deg = Array.init n (fun i -> Compiled.degree comp i) in
  let as_deg = Array.make n 0 in
  let selected = Array.make n false in
  let order = Array.make n (-1) in
  for k = 0 to n - 1 do
    let best = ref (-1) and b0 = ref 0 and b1 = ref 0 and b2 = ref 0 in
    for v = 0 to n - 1 do
      if not selected.(v) then begin
        let s0 = un_deg.(v)
        and s1 = as_deg.(v)
        and s2 = -Compiled.domain_size comp v in
        if
          !best < 0 || s0 > !b0
          || (s0 = !b0 && (s1 > !b1 || (s1 = !b1 && s2 > !b2)))
        then begin
          best := v;
          b0 := s0;
          b1 := s1;
          b2 := s2
        end
      end
    done;
    let v = !best in
    order.(k) <- v;
    selected.(v) <- true;
    Array.iter
      (fun j ->
        un_deg.(j) <- un_deg.(j) - 1;
        as_deg.(j) <- as_deg.(j) + 1)
      (Compiled.neighbors comp v)
  done;
  order

let breakdown ~base_checks ~enhanced_checks ~single =
  let total_saving = max 0 (base_checks - enhanced_checks) in
  let savings =
    List.map
      (fun (label, cost) -> (label, float_of_int (max 0 (base_checks - cost))))
      single
  in
  let sum = List.fold_left (fun acc (_, s) -> acc +. s) 0. savings in
  if total_saving = 0 || sum = 0. then
    List.map (fun (label, _) -> (label, 0.)) savings
  else List.map (fun (label, s) -> (label, s /. sum)) savings
