let make ?(seed = 1) ?max_checks ?(preprocess = Solver.No_preprocess)
    var_policy val_policy backward lookahead =
  {
    Solver.var_policy;
    val_policy;
    backward;
    lookahead;
    preprocess;
    seed;
    max_checks;
  }

let base ?seed ?max_checks () =
  make ?seed ?max_checks Solver.Random_var Solver.Random_val
    Solver.Chronological Solver.No_lookahead

let enhanced ?seed ?max_checks () =
  make ?seed ?max_checks Solver.Most_constraining Solver.Least_constraining
    Solver.Graph_based Solver.No_lookahead

let base_plus_variable_selection ?seed ?max_checks () =
  make ?seed ?max_checks Solver.Most_constraining Solver.Random_val
    Solver.Chronological Solver.No_lookahead

let base_plus_value_selection ?seed ?max_checks () =
  make ?seed ?max_checks Solver.Random_var Solver.Least_constraining
    Solver.Chronological Solver.No_lookahead

let base_plus_backjumping ?seed ?max_checks () =
  make ?seed ?max_checks Solver.Random_var Solver.Random_val
    Solver.Graph_based Solver.No_lookahead

let enhanced_with_ac ?seed ?max_checks () =
  make ?seed ?max_checks ~preprocess:Solver.Arc_consistency
    Solver.Most_constraining Solver.Least_constraining Solver.Graph_based
    Solver.No_lookahead

type ablation = { label : string; config : Solver.config }

let figure4_schemes ?seed ?max_checks () =
  [
    {
      label = "Variable Selection";
      config = base_plus_variable_selection ?seed ?max_checks ();
    };
    {
      label = "Value Selection";
      config = base_plus_value_selection ?seed ?max_checks ();
    };
    {
      label = "Backjumping";
      config = base_plus_backjumping ?seed ?max_checks ();
    };
  ]

let extension_schemes ?seed ?max_checks () =
  [
    {
      label = "Enhanced+CBJ";
      config =
        make ?seed ?max_checks Solver.Most_constraining
          Solver.Least_constraining Solver.Conflict_directed
          Solver.No_lookahead;
    };
    {
      label = "Enhanced+FC";
      config =
        make ?seed ?max_checks Solver.Most_constraining
          Solver.Least_constraining Solver.Graph_based
          Solver.Forward_checking;
    };
    { label = "Enhanced+AC"; config = enhanced_with_ac ?seed ?max_checks () };
  ]

let breakdown ~base_checks ~enhanced_checks ~single =
  let total_saving = max 0 (base_checks - enhanced_checks) in
  let savings =
    List.map
      (fun (label, cost) -> (label, float_of_int (max 0 (base_checks - cost))))
      single
  in
  let sum = List.fold_left (fun acc (_, s) -> acc +. s) 0. savings in
  if total_saving = 0 || sum = 0. then
    List.map (fun (label, _) -> (label, 0.)) savings
  else List.map (fun (label, s) -> (label, s /. sum)) savings
