(** Racing solver portfolio.

    Runs complementary solving strategies on the same compiled network —
    the paper's [enhanced] backjumper, its AC-preprocessed variant, the
    conflict-driven learner ({!Cdl}) and a stochastic min-conflicts
    member ({!Local_search.solve_compiled}) — and takes the first
    decisive answer.  Members race across a {!Mlo_support.Pool} Domain
    pool; the first to finish with a decision publishes it through an
    atomic and the losers are cancelled through the engines' cooperative
    [cancel] hook (polled on their check/step counters).

    A decision is [Solution] or [Unsatisfiable] from a systematic
    member, or a verified [Solution] from the stochastic member — a
    [Stuck] stochastic run proves nothing and never wins.  Every member
    is complete or sound-by-verification, so the portfolio is as
    decision-correct as its members; which member wins (and therefore
    which solution is returned) can vary across runs when Domains race,
    but the satisfiability verdict cannot.

    With one Domain the race degenerates to running the members in
    order, [cdl] first — so a single-core portfolio behaves like [cdl]
    with zero-cost fallbacks behind it. *)

type config = {
  seed : int;  (** seed for the members' random policies *)
  max_checks : int option;
      (** per-member check budget; the portfolio aborts only if every
          systematic member aborts *)
  cdl : Cdl.config;  (** configuration of the learning member *)
  local : Local_search.config;  (** configuration of the stochastic member *)
}

val default_config : config

val member_names : string array
(** Member labels in racing order:
    [[| "cdl"; "enhanced"; "enhanced-ac"; "local-search" |]]. *)

type report = {
  outcome : Solver.outcome;
  stats : Stats.t;
      (** merged across all members (work the race actually spent);
          elapsed/cpu are the race's own wall and CPU times, and
          [learned]/[forgotten]/[restarts] come from the learning
          member *)
  winner : string option;
      (** name of the member whose answer was taken; [None] when no
          member reached a decision (all aborted) *)
}

val race :
  ?config:config ->
  ?domains:int ->
  ?cancel:(unit -> bool) ->
  ?on_learn:(dead:int -> (int * int) array -> unit) ->
  Compiled.t ->
  report
(** Race the members over [domains] Domains (default
    {!Mlo_support.Pool.default_domains}; the caller participates).
    [cancel] aborts the whole race (all members poll it in addition to
    the race's own decided flag).  Solutions are verified against the
    compiled network before being returned.  [on_learn] receives the
    conflict-driven member's learned nogoods — buffered during the race
    and replayed serially after it, and only when cdl actually won, so
    proofs never mix a cancelled loser's partial log into the winner's
    certificate. *)

val solve : ?config:config -> ?domains:int -> 'a Network.t -> Solver.result
(** {!race} on [Network.compile net], flattened to a {!Solver.result}
    (the winner is still visible via [stats] and the [portfolio-winner]
    trace instant). *)
