type t = {
  mutable nodes : int;
  mutable checks : int;
  mutable backtracks : int;
  mutable backjumps : int;
  mutable prunings : int;
  mutable learned : int;
  mutable forgotten : int;
  mutable restarts : int;
  mutable bounded : int;
  mutable incumbents : int;
  mutable max_depth : int;
  mutable elapsed_s : float;
  mutable cpu_s : float;
  mutable nodes_by_depth : int array;
  mutable nodes_by_var : int array;
}

let create () =
  {
    nodes = 0;
    checks = 0;
    backtracks = 0;
    backjumps = 0;
    prunings = 0;
    learned = 0;
    forgotten = 0;
    restarts = 0;
    bounded = 0;
    incumbents = 0;
    max_depth = 0;
    elapsed_s = 0.;
    cpu_s = 0.;
    nodes_by_depth = [||];
    nodes_by_var = [||];
  }

let reset t =
  t.nodes <- 0;
  t.checks <- 0;
  t.backtracks <- 0;
  t.backjumps <- 0;
  t.prunings <- 0;
  t.learned <- 0;
  t.forgotten <- 0;
  t.restarts <- 0;
  t.bounded <- 0;
  t.incumbents <- 0;
  t.max_depth <- 0;
  t.elapsed_s <- 0.;
  t.cpu_s <- 0.;
  t.nodes_by_depth <- [||];
  t.nodes_by_var <- [||]

let ensure_hists t n =
  let grow a =
    if Array.length a >= n then a
    else begin
      let b = Array.make n 0 in
      Array.blit a 0 b 0 (Array.length a);
      b
    end
  in
  t.nodes_by_depth <- grow t.nodes_by_depth;
  t.nodes_by_var <- grow t.nodes_by_var

let merge_hist a b =
  let la = Array.length a and lb = Array.length b in
  Array.init (max la lb) (fun i ->
      (if i < la then a.(i) else 0) + if i < lb then b.(i) else 0)

let add a b =
  {
    nodes = a.nodes + b.nodes;
    checks = a.checks + b.checks;
    backtracks = a.backtracks + b.backtracks;
    backjumps = a.backjumps + b.backjumps;
    prunings = a.prunings + b.prunings;
    learned = a.learned + b.learned;
    forgotten = a.forgotten + b.forgotten;
    restarts = a.restarts + b.restarts;
    bounded = a.bounded + b.bounded;
    incumbents = a.incumbents + b.incumbents;
    max_depth = max a.max_depth b.max_depth;
    elapsed_s = a.elapsed_s +. b.elapsed_s;
    cpu_s = a.cpu_s +. b.cpu_s;
    nodes_by_depth = merge_hist a.nodes_by_depth b.nodes_by_depth;
    nodes_by_var = merge_hist a.nodes_by_var b.nodes_by_var;
  }

let to_json t =
  let open Mlo_obs.Json in
  let hist a = Arr (Array.to_list (Array.map (fun v -> Num (float_of_int v)) a)) in
  Obj
    [
      ("nodes", Num (float_of_int t.nodes));
      ("checks", Num (float_of_int t.checks));
      ("backtracks", Num (float_of_int t.backtracks));
      ("backjumps", Num (float_of_int t.backjumps));
      ("prunings", Num (float_of_int t.prunings));
      ("learned", Num (float_of_int t.learned));
      ("forgotten", Num (float_of_int t.forgotten));
      ("restarts", Num (float_of_int t.restarts));
      ("bounded", Num (float_of_int t.bounded));
      ("incumbents", Num (float_of_int t.incumbents));
      ("max_depth", Num (float_of_int t.max_depth));
      ("elapsed_s", Num t.elapsed_s);
      ("cpu_s", Num t.cpu_s);
      ("nodes_by_depth", hist t.nodes_by_depth);
      ("nodes_by_var", hist t.nodes_by_var);
    ]

let pp ppf t =
  Format.fprintf ppf
    "nodes=%d checks=%d backtracks=%d backjumps=%d prunings=%d%s%s depth=%d \
     time=%.4fs cpu=%.4fs"
    t.nodes t.checks t.backtracks t.backjumps t.prunings
    (if t.learned + t.forgotten + t.restarts = 0 then ""
     else
       Printf.sprintf " learned=%d forgotten=%d restarts=%d" t.learned
         t.forgotten t.restarts)
    (if t.bounded + t.incumbents = 0 then ""
     else Printf.sprintf " bounded=%d incumbents=%d" t.bounded t.incumbents)
    t.max_depth t.elapsed_s t.cpu_s
