type t = {
  mutable nodes : int;
  mutable checks : int;
  mutable backtracks : int;
  mutable backjumps : int;
  mutable prunings : int;
  mutable max_depth : int;
  mutable elapsed_s : float;
  mutable cpu_s : float;
}

let create () =
  {
    nodes = 0;
    checks = 0;
    backtracks = 0;
    backjumps = 0;
    prunings = 0;
    max_depth = 0;
    elapsed_s = 0.;
    cpu_s = 0.;
  }

let reset t =
  t.nodes <- 0;
  t.checks <- 0;
  t.backtracks <- 0;
  t.backjumps <- 0;
  t.prunings <- 0;
  t.max_depth <- 0;
  t.elapsed_s <- 0.;
  t.cpu_s <- 0.

let add a b =
  {
    nodes = a.nodes + b.nodes;
    checks = a.checks + b.checks;
    backtracks = a.backtracks + b.backtracks;
    backjumps = a.backjumps + b.backjumps;
    prunings = a.prunings + b.prunings;
    max_depth = max a.max_depth b.max_depth;
    elapsed_s = a.elapsed_s +. b.elapsed_s;
    cpu_s = a.cpu_s +. b.cpu_s;
  }

let pp ppf t =
  Format.fprintf ppf
    "nodes=%d checks=%d backtracks=%d backjumps=%d prunings=%d depth=%d \
     time=%.4fs cpu=%.4fs"
    t.nodes t.checks t.backtracks t.backjumps t.prunings t.max_depth
    t.elapsed_s t.cpu_s
