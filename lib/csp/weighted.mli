(** Weighted constraint networks (the paper's first future-work item).

    "We would like to give weights to constraints.  This will help us
    distinguish between different solutions to a given network."  Each
    allowed value pair of each constraint carries a non-negative weight
    (the layout pipeline uses the cost of the nests that proposed the
    pair); the goal becomes finding the consistent complete assignment of
    maximum total weight, found here by depth-first branch-and-bound with
    an admissible per-constraint upper bound. *)

type 'a t

val create : 'a Network.t -> 'a t
(** Wraps a network; all allowed pairs start with weight 0.  The wrapped
    network is shared, not copied: hard constraints added later are
    seen. *)

val network : 'a t -> 'a Network.t

val set_weight : 'a t -> int -> int -> int -> int -> float -> unit
(** [set_weight t i vi j vj w] sets the weight of the pair.  Weights are
    meaningful only for allowed pairs of constrained variable pairs.
    Raises [Invalid_argument] if [w < 0], [i = j], or the pair of
    variables is unconstrained. *)

val add_weight : 'a t -> int -> int -> int -> int -> float -> unit
(** Accumulating variant of {!set_weight}. *)

val weight : 'a t -> int -> int -> int -> int -> float

val assignment_weight : 'a t -> int array -> float
(** Total weight of a complete assignment over all constrained pairs.
    The assignment need not be consistent; inconsistent pairs contribute
    their stored weight (0 unless explicitly set). *)

type result = {
  best : (int array * float) option;
      (** maximum-weight consistent assignment, if any *)
  nodes : int;  (** branch-and-bound nodes explored *)
}

val solve : ?max_nodes:int -> 'a t -> result
(** Exact branch-and-bound maximization.  [max_nodes] bounds the search
    (the incumbent found so far is still returned, flagged by [nodes]
    reaching the limit). *)

val brute_optimum : 'a t -> (int array * float) option
(** Exhaustive reference optimum (exponential; tests only). *)
