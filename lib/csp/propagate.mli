(** Constraint propagation: arc consistency (AC-3).

    Not part of the paper's two schemes; implemented as a preprocessing
    ablation.  Removing arc-inconsistent values before the search starts
    can never remove a solution, so any solver configuration run on the
    reduced network remains complete. *)

type outcome =
  | Reduced of Bitset.t array
      (** Arc-consistent domains, one bitset per variable (all
          non-empty). *)
  | Wiped of int  (** This variable's domain emptied: no solution. *)

val ac3 : 'a Network.t -> outcome
(** Standard AC-3 over the constraint graph.  The input network is not
    modified. *)

val ac2001 : 'a Network.t -> outcome
(** AC-2001/3.1 on the compiled network view ({!Ac2001}): same (unique)
    fixpoint as {!ac3}, each revision re-checking one remembered support
    instead of re-scanning the neighbour domain.  The input network is
    not modified (its memoized compiled view may be built). *)

val restrict : 'a Network.t -> Bitset.t array -> 'a Network.t
(** [restrict net domains] builds a new network whose variable domains are
    the members of [domains] (value order preserved) and whose constraints
    are the old ones re-indexed.  Raises [Invalid_argument] if a domain is
    empty or capacities disagree with the network. *)

val revise : 'a Network.t -> Bitset.t array -> int -> int -> bool
(** [revise net domains i j] removes from [domains.(i)] every value with
    no support in [domains.(j)] under the constraint between [i] and [j];
    true iff something was removed.  No-op (false) for unconstrained
    pairs. *)
