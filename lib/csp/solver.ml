type var_policy =
  | Lexicographic_var
  | Random_var
  | Most_constraining
  | Min_domain

type val_policy = Lexicographic_val | Random_val | Least_constraining

type backward_policy = Chronological | Graph_based | Conflict_directed

type lookahead = No_lookahead | Forward_checking

type config = {
  var_policy : var_policy;
  val_policy : val_policy;
  backward : backward_policy;
  lookahead : lookahead;
  seed : int;
  max_checks : int option;
}

let default_config =
  {
    var_policy = Lexicographic_var;
    val_policy = Lexicographic_val;
    backward = Chronological;
    lookahead = No_lookahead;
    seed = 0;
    max_checks = None;
  }

type outcome = Solution of int array | Unsatisfiable | Aborted

type result = { outcome : outcome; stats : Stats.t }

exception Abort

module Int_set = Set.Make (Int)

(* Outcome of exploring one level: either a full solution was found below,
   or the search must resume at [target] (-1 = no level left, the network
   is unsatisfiable), carrying conflict levels to merge there. *)
type step = Found | Fail of int * Int_set.t

let solve ?(config = default_config) net =
  let n = Network.num_vars net in
  let stats = Stats.create () in
  let rng = Rng.create config.seed in
  let fc = config.lookahead = Forward_checking in
  let assignment = Array.make n (-1) in
  let level_of = Array.make n (-1) in
  let var_at = Array.make n (-1) in
  let conf = Array.make n Int_set.empty in
  let domains =
    Array.init n (fun i -> Bitset.create_full (Network.domain_size net i))
  in
  let trail = Array.make n [] in
  let pruned_by = Array.make n Int_set.empty in

  let check i vi j vj =
    stats.Stats.checks <- stats.Stats.checks + 1;
    (match config.max_checks with
    | Some m when stats.Stats.checks > m -> raise Abort
    | Some _ | None -> ());
    Network.allowed net i vi j vj
  in

  let unassigned () =
    let rec go i acc = if i < 0 then acc else go (i - 1) (if level_of.(i) < 0 then i :: acc else acc) in
    go (n - 1) []
  in

  let assigned_neighbor_levels var =
    List.fold_left
      (fun acc j -> if level_of.(j) >= 0 then Int_set.add level_of.(j) acc else acc)
      Int_set.empty (Network.neighbors net var)
  in

  let degree_split var =
    List.fold_left
      (fun (to_unassigned, to_assigned) j ->
        if level_of.(j) < 0 then (to_unassigned + 1, to_assigned)
        else (to_unassigned, to_assigned + 1))
      (0, 0) (Network.neighbors net var)
  in

  let current_domain_size var =
    if fc then Bitset.count domains.(var) else Network.domain_size net var
  in

  (* Pick the maximum-score variable, lowest index on ties. *)
  let best_by score vars =
    match vars with
    | [] -> invalid_arg "Solver: no unassigned variable"
    | v0 :: rest ->
      let best = ref v0 and best_score = ref (score v0) in
      List.iter
        (fun v ->
          let s = score v in
          if Stdlib.compare s !best_score > 0 then begin
            best := v;
            best_score := s
          end)
        rest;
      !best
  in

  let select_var () =
    let vars = unassigned () in
    match config.var_policy with
    | Lexicographic_var -> List.hd vars
    | Random_var -> List.nth vars (Rng.int rng (List.length vars))
    | Most_constraining ->
      let score v =
        let to_unassigned, to_assigned = degree_split v in
        (to_unassigned, to_assigned, -current_domain_size v)
      in
      best_by score vars
    | Min_domain ->
      let score v =
        let to_unassigned, to_assigned = degree_split v in
        (-current_domain_size v, to_unassigned + to_assigned)
      in
      best_by score vars
  in

  (* Number of options [var = v] leaves open in uninstantiated neighbours'
     domains; heuristic table lookups are not counted as consistency
     checks. *)
  let promise var v =
    List.fold_left
      (fun acc j ->
        if level_of.(j) >= 0 then acc
        else if fc then
          Bitset.fold
            (fun w c -> if Network.allowed net var v j w then c + 1 else c)
            domains.(j) 0
          + acc
        else acc + Network.support_count net var v j)
      0 (Network.neighbors net var)
  in

  let candidate_values var =
    let avail =
      if fc then Bitset.to_list domains.(var)
      else List.init (Network.domain_size net var) Fun.id
    in
    match config.val_policy with
    | Lexicographic_val -> avail
    | Random_val ->
      let a = Array.of_list avail in
      Rng.shuffle rng a;
      Array.to_list a
    | Least_constraining ->
      let scored = List.map (fun v -> (promise var v, v)) avail in
      let sorted =
        List.stable_sort
          (fun (s1, v1) (s2, v2) ->
            let c = Int.compare s2 s1 in
            if c <> 0 then c else Int.compare v1 v2)
          scored
      in
      List.map snd sorted
  in

  (* Check [var = v] against instantiated neighbours in instantiation
     order; on conflict record the culprit level for conflict-directed
     jumping.  Under forward checking surviving domain values are already
     consistent with all instantiated variables, so this is skipped. *)
  let consistent_with_assigned var v level =
    let neighbors_by_level =
      List.filter (fun j -> level_of.(j) >= 0) (Network.neighbors net var)
      |> List.sort (fun a b -> Int.compare level_of.(a) level_of.(b))
    in
    let rec go = function
      | [] -> true
      | j :: rest ->
        if check var v j assignment.(j) then go rest
        else begin
          if config.backward = Conflict_directed then
            conf.(level) <- Int_set.add level_of.(j) conf.(level);
          false
        end
    in
    go neighbors_by_level
  in

  let prune level j w =
    Bitset.remove domains.(j) w;
    trail.(level) <- (j, w) :: trail.(level);
    pruned_by.(j) <- Int_set.add level pruned_by.(j);
    stats.Stats.prunings <- stats.Stats.prunings + 1
  in

  let undo_level level =
    List.iter (fun (j, w) -> Bitset.add domains.(j) w) trail.(level);
    List.iter
      (fun (j, _) -> pruned_by.(j) <- Int_set.remove level pruned_by.(j))
      trail.(level);
    trail.(level) <- []
  in

  (* Prune future neighbours against [var = v]; false on a domain wipeout
     (conflict levels of the wiped variable are merged into this level's
     conflict set). *)
  let fc_assign var v level =
    let wiped = ref false in
    List.iter
      (fun j ->
        if (not !wiped) && level_of.(j) < 0 then begin
          let dead =
            Bitset.fold
              (fun w acc -> if check var v j w then acc else w :: acc)
              domains.(j) []
          in
          List.iter (fun w -> prune level j w) dead;
          if Bitset.is_empty domains.(j) then begin
            wiped := true;
            if config.backward <> Chronological then
              conf.(level) <-
                Int_set.union conf.(level)
                  (Int_set.filter (fun l -> l < level) pruned_by.(j))
          end
        end)
      (Network.neighbors net var);
    not !wiped
  in

  let dead_end level =
    match config.backward with
    | Chronological ->
      stats.Stats.backtracks <- stats.Stats.backtracks + 1;
      Fail (level - 1, Int_set.empty)
    | Graph_based | Conflict_directed -> (
      let culprits = Int_set.filter (fun l -> l < level) conf.(level) in
      match Int_set.max_elt_opt culprits with
      | None -> Fail (-1, Int_set.empty)
      | Some target ->
        if target = level - 1 then
          stats.Stats.backtracks <- stats.Stats.backtracks + 1
        else stats.Stats.backjumps <- stats.Stats.backjumps + 1;
        Fail (target, Int_set.remove target culprits))
  in

  let rec search level =
    if level = n then Found
    else begin
      if level > stats.Stats.max_depth then stats.Stats.max_depth <- level;
      let var = select_var () in
      var_at.(level) <- var;
      level_of.(var) <- level;
      (* Under forward checking, values already pruned from [var]'s own
         domain were removed by earlier assignments; those levels share
         responsibility for any dead-end here. *)
      conf.(level) <-
        (match config.backward with
        | Graph_based -> assigned_neighbor_levels var
        | Conflict_directed -> if fc then pruned_by.(var) else Int_set.empty
        | Chronological -> Int_set.empty);
      let res = try_values var level (candidate_values var) in
      level_of.(var) <- -1;
      var_at.(level) <- -1;
      res
    end

  and try_values var level values =
    match values with
    | [] -> dead_end level
    | v :: rest ->
      stats.Stats.nodes <- stats.Stats.nodes + 1;
      let pre_ok = fc || consistent_with_assigned var v level in
      if not pre_ok then try_values var level rest
      else begin
        assignment.(var) <- v;
        let fc_ok = if fc then fc_assign var v level else true in
        if not fc_ok then begin
          assignment.(var) <- -1;
          undo_level level;
          try_values var level rest
        end
        else
          match search (level + 1) with
          | Found -> Found
          | Fail (target, merge) ->
            assignment.(var) <- -1;
            if fc then undo_level level;
            if target < level then Fail (target, merge)
            else begin
              conf.(level) <- Int_set.union conf.(level) merge;
              try_values var level rest
            end
      end
  in

  let t0 = Sys.time () in
  let outcome =
    try
      match search 0 with
      | Found -> Solution (Array.copy assignment)
      | Fail _ -> Unsatisfiable
    with Abort -> Aborted
  in
  stats.Stats.elapsed_s <- Sys.time () -. t0;
  (match outcome with
  | Solution a -> assert (Network.verify net a)
  | Unsatisfiable | Aborted -> ());
  { outcome; stats }

let solve_values ?config net =
  let r = solve ?config net in
  match r.outcome with
  | Solution a ->
    Some (Array.mapi (fun i v -> Network.value net i v) a, r)
  | Unsatisfiable | Aborted -> None
