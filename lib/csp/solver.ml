module Trace = Mlo_obs.Trace

type var_policy =
  | Lexicographic_var
  | Random_var
  | Most_constraining
  | Min_domain

type val_policy = Lexicographic_val | Random_val | Least_constraining

type backward_policy = Chronological | Graph_based | Conflict_directed

type lookahead = No_lookahead | Forward_checking

type preprocess = No_preprocess | Arc_consistency

type config = {
  var_policy : var_policy;
  val_policy : val_policy;
  backward : backward_policy;
  lookahead : lookahead;
  preprocess : preprocess;
  seed : int;
  max_checks : int option;
}

let default_config =
  {
    var_policy = Lexicographic_var;
    val_policy = Lexicographic_val;
    backward = Chronological;
    lookahead = No_lookahead;
    preprocess = No_preprocess;
    seed = 0;
    max_checks = None;
  }

type outcome = Solution of int array | Unsatisfiable | Aborted

type event =
  | Learned of { dead : int; lits : (int * int) array }
  | Incumbent of { assignment : int array }
  | Finished of outcome

type result = { outcome : outcome; stats : Stats.t }

exception Abort

module Int_set = Set.Make (Int)

(* Outcome of exploring one level: either a full solution was found below,
   or the search must resume at [target] (-1 = no level left, the network
   is unsatisfiable), carrying conflict levels to merge there. *)
type step = Found | Fail of int * Int_set.t

(* Sets of search levels as word masks, one flat-matrix row per level —
   see {!Lset}.  Shared with the conflict-driven engine ({!Cdl}), which
   blames nogood prunings through the same representation. *)

(* Compiled-engine analogue of [step]: the conflict levels to merge at
   the target travel in a single pre-allocated carry buffer instead of a
   set payload (only one failure unwinds at a time). *)
type cstep = CFound | CFail of int

(* ------------------------------------------------------------------ *)
(* Compiled fast path                                                   *)
(* ------------------------------------------------------------------ *)

(* The search below replicates [solve_reference] decision for decision
   (same variable/value orders, same RNG draw sequence, same conflict
   sets), so outcomes and node/backtrack/backjump counts are identical;
   only the cost of each primitive changes.  [checks] counts support-row
   lookups: identical to the reference under no lookahead, one per
   neighbour domain (instead of one per value) under forward checking. *)
let solve_compiled ?(config = default_config) ?cancel comp =
  let n = Compiled.num_vars comp in
  let stats = Stats.create () in
  Stats.ensure_hists stats n;
  (* Tracing gate read once per solve: per-node events cost one local
     branch when disabled. *)
  let tr = Trace.enabled () in
  let rng = Rng.create config.seed in
  let fc = config.lookahead = Forward_checking in
  let t_wall = Clock.wall_s () and t_cpu = Clock.cpu_s () in
  let finish outcome =
    stats.Stats.elapsed_s <- Clock.wall_s () -. t_wall;
    stats.Stats.cpu_s <- Clock.cpu_s () -. t_cpu;
    { outcome; stats }
  in
  (* Optional AC-2001 preprocessing: shrink the domains the search (and,
     under forward checking, the pruning) starts from.  Propagation work
     is not counted in [stats.checks]. *)
  let live =
    match config.preprocess with
    | No_preprocess -> Some None
    | Arc_consistency -> (
      match Ac2001.run comp with
      | Error _wiped -> None
      | Ok domains -> Some (Some domains))
  in
  match live with
  | None -> finish Unsatisfiable
  | Some live ->
    let assignment = Array.make n (-1) in
    let level_of = Array.make n (-1) in
    (* Conflict sets and the backjump carry buffer exist only for the
       jumping strategies; chronological backtracking never reads them.
       [conf] is one level-set row per level; [lw] words each. *)
    let cbj = config.backward <> Chronological in
    let lw = Lset.words n in
    let conf = if cbj then Lset.make_mat n n else [||] in
    let carry = if cbj then Lset.make_mat 1 n else [||] in
    (* [domains], the undo trail and the pruning blame sets back forward
       checking only; non-FC configs read sizes straight off the compiled
       view (or the AC-reduced domains) and need none of the state. *)
    let domains =
      if not fc then [||]
      else
        match live with
        | Some reduced -> Array.map Bitset.copy reduced
        | None ->
          Array.init n (fun i -> Bitset.create_full (Compiled.domain_size comp i))
    in
    let trail = if fc then Array.make n [] else [||] in
    let pruned_by = if fc then Lset.make_mat n n else [||] in
    (* Per-variable counts of unassigned/assigned neighbours, maintained
       incrementally at (un)assignment so the variable-selection scan is
       O(1) per candidate instead of O(degree). *)
    let un_deg = Array.init n (fun i -> Compiled.degree comp i) in
    let as_deg = Array.make n 0 in
    let mark_assigned var =
      let nbrs = Compiled.neighbors comp var in
      for k = 0 to Array.length nbrs - 1 do
        let j = nbrs.(k) in
        un_deg.(j) <- un_deg.(j) - 1;
        as_deg.(j) <- as_deg.(j) + 1
      done
    in
    let mark_unassigned var =
      let nbrs = Compiled.neighbors comp var in
      for k = 0 to Array.length nbrs - 1 do
        let j = nbrs.(k) in
        un_deg.(j) <- un_deg.(j) + 1;
        as_deg.(j) <- as_deg.(j) - 1
      done
    in

    let check_limit =
      match config.max_checks with Some m -> m | None -> max_int
    in
    (* Cooperative cancellation piggybacks on the check counter (every
       256th check), so solves without a [cancel] pay nothing and solves
       with one pay a closure call amortized over 256 table probes. *)
    let bump_check =
      match cancel with
      | None ->
        fun () ->
          stats.Stats.checks <- stats.Stats.checks + 1;
          if stats.Stats.checks > check_limit then raise Abort
      | Some cancelled ->
        fun () ->
          stats.Stats.checks <- stats.Stats.checks + 1;
          if stats.Stats.checks > check_limit then raise Abort;
          if stats.Stats.checks land 255 = 0 && cancelled () then raise Abort
    in

    (* [conf row level := levels of var's instantiated neighbours] *)
    let conf_from_neighbors level var =
      let off = level * lw in
      Lset.clear conf off lw;
      let nbrs = Compiled.neighbors comp var in
      for k = 0 to Array.length nbrs - 1 do
        let j = Array.unsafe_get nbrs k in
        if level_of.(j) >= 0 then Lset.add conf off level_of.(j)
      done
    in

    let current_domain_size var =
      if fc then Bitset.count domains.(var)
      else
        match live with
        | Some reduced -> Bitset.count reduced.(var)
        | None -> Compiled.domain_size comp var
    in

    (* Pick the maximum-score variable, lowest index on ties; scores are
       int triples compared lexicographically (strict improvement only,
       matching the reference's [Stdlib.compare s best > 0] scan). *)
    let best_by score0 score1 score2 =
      let best = ref (-1) in
      let b0 = ref 0 and b1 = ref 0 and b2 = ref 0 in
      for v = 0 to n - 1 do
        if level_of.(v) < 0 then begin
          let s0 = score0 v in
          if !best < 0 || s0 >= !b0 then begin
            let s1 = score1 v and s2 = score2 v in
            if
              !best < 0 || s0 > !b0
              || (s0 = !b0 && (s1 > !b1 || (s1 = !b1 && s2 > !b2)))
            then begin
              best := v;
              b0 := s0;
              b1 := s1;
              b2 := s2
            end
          end
        end
      done;
      if !best < 0 then invalid_arg "Solver: no unassigned variable";
      !best
    in

    (* dispatch on the policy once so per-node selection builds no
       closures (the [best_by] score functions are hoisted) *)
    let select_var =
      match config.var_policy with
      | Lexicographic_var ->
        let rec first i =
          if i >= n then invalid_arg "Solver: no unassigned variable"
          else if level_of.(i) < 0 then i
          else first (i + 1)
        in
        fun () -> first 0
      | Random_var ->
        fun () ->
          let cnt = ref 0 in
          for i = 0 to n - 1 do
            if level_of.(i) < 0 then incr cnt
          done;
          let k = ref (Rng.int rng !cnt) in
          let picked = ref (-1) in
          let i = ref 0 in
          while !picked < 0 do
            if level_of.(!i) < 0 then
              if !k = 0 then picked := !i else decr k;
            incr i
          done;
          !picked
      | Most_constraining ->
        let s0 v = un_deg.(v) in
        let s1 v = as_deg.(v) in
        let s2 v = -current_domain_size v in
        fun () -> best_by s0 s1 s2
      | Min_domain ->
        let s0 v = -current_domain_size v in
        let s1 v = un_deg.(v) + as_deg.(v) in
        let s2 _ = 0 in
        fun () -> best_by s0 s1 s2
    in

    (* Number of options [var = v] leaves open in uninstantiated
       neighbours' domains; heuristic table lookups are not counted as
       checks.  With full domains this is the precomputed support count;
       otherwise a word-parallel intersection popcount. *)
    let promise =
      (* dispatch on the domain source once, outside the hot loops *)
      match (fc, live) with
      | true, _ ->
        fun var v ->
          let nbrs = Compiled.neighbors comp var in
          let acc = ref 0 in
          for k = 0 to Array.length nbrs - 1 do
            let j = Array.unsafe_get nbrs k in
            if level_of.(j) < 0 then
              acc :=
                !acc
                + Bitset.inter_count domains.(j)
                    (Compiled.row comp (Compiled.handle comp var j) v)
          done;
          !acc
      | false, Some reduced ->
        fun var v ->
          let nbrs = Compiled.neighbors comp var in
          let acc = ref 0 in
          for k = 0 to Array.length nbrs - 1 do
            let j = Array.unsafe_get nbrs k in
            if level_of.(j) < 0 then
              acc :=
                !acc
                + Bitset.inter_count reduced.(j)
                    (Compiled.row comp (Compiled.handle comp var j) v)
          done;
          !acc
      | false, None ->
        fun var v ->
          let nbrs = Compiled.neighbors comp var in
          let acc = ref 0 in
          for k = 0 to Array.length nbrs - 1 do
            let j = Array.unsafe_get nbrs k in
            if level_of.(j) < 0 then
              acc := !acc + Compiled.support_count comp var v j
          done;
          !acc
    in

    let max_dom = ref 0 in
    for i = 0 to n - 1 do
      if Compiled.domain_size comp i > !max_dom then
        max_dom := Compiled.domain_size comp i
    done;
    let md = max 1 !max_dom in
    let score_scratch = Array.make md 0 in
    (* Per-level candidate buffers, flattened to one stride-[md] array:
       a level's value order must survive the recursive search below it,
       and every level above is done with its own, so a level-indexed
       slice removes all per-node allocation. *)
    let cand = Array.make (n * md) 0 in

    (* Fill [cand] slice [level] with [var]'s live values in the
       configured order and return how many there are. *)
    let fill_candidates var level =
      let off = level * md in
      let m =
        if fc then Bitset.fill_array domains.(var) cand off
        else
          match live with
          | Some reduced -> Bitset.fill_array reduced.(var) cand off
          | None ->
            let d = Compiled.domain_size comp var in
            for v = 0 to d - 1 do
              cand.(off + v) <- v
            done;
            d
      in
      (match config.val_policy with
      | Lexicographic_val -> ()
      | Random_val ->
        (* prefix Fisher–Yates: draw for draw what [Rng.shuffle] does on
           an array of length exactly [m] *)
        for i = m - 1 downto 1 do
          let j = Rng.int rng (i + 1) in
          let t = cand.(off + i) in
          cand.(off + i) <- cand.(off + j);
          cand.(off + j) <- t
        done
      | Least_constraining ->
        (* in-place insertion sort by (score desc, value asc) — a total
           order, so the result is the reference comparator's, without
           tuple or closure allocation *)
        let scores = score_scratch in
        for k = 0 to m - 1 do
          scores.(k) <- promise var cand.(off + k)
        done;
        for k = 1 to m - 1 do
          let s = scores.(k) and v = cand.(off + k) in
          let p = ref k in
          while
            !p > 0
            && (scores.(!p - 1) < s
                || (scores.(!p - 1) = s && cand.(off + !p - 1) > v))
          do
            scores.(!p) <- scores.(!p - 1);
            cand.(off + !p) <- cand.(off + !p - 1);
            decr p
          done;
          scores.(!p) <- s;
          cand.(off + !p) <- v
        done);
      m
    in

    (* Check [var = v] against instantiated neighbours in instantiation
       order; on conflict record the culprit level for conflict-directed
       jumping.  Under forward checking surviving domain values are
       already consistent with all instantiated variables, so this is
       skipped. *)
    let nbr_scratch = Array.make n 0 in
    let consistent_with_assigned var v level =
      let nbrs = Compiled.neighbors comp var in
      let cnt = ref 0 in
      for k = 0 to Array.length nbrs - 1 do
        let j = nbrs.(k) in
        if level_of.(j) >= 0 then begin
          (* insertion sort by level, ascending *)
          let p = ref !cnt in
          while !p > 0 && level_of.(nbr_scratch.(!p - 1)) > level_of.(j) do
            nbr_scratch.(!p) <- nbr_scratch.(!p - 1);
            decr p
          done;
          nbr_scratch.(!p) <- j;
          incr cnt
        end
      done;
      let rec go k =
        if k >= !cnt then true
        else begin
          let j = nbr_scratch.(k) in
          bump_check ();
          if Compiled.allowed comp var v j assignment.(j) then go (k + 1)
          else begin
            if config.backward = Conflict_directed then
              Lset.add conf (level * lw) level_of.(j);
            false
          end
        end
      in
      go 0
    in

    let prune level j w =
      Bitset.remove domains.(j) w;
      trail.(level) <- (j, w) :: trail.(level);
      Lset.add pruned_by (j * lw) level;
      stats.Stats.prunings <- stats.Stats.prunings + 1;
      if tr then
        Trace.instant ~cat:"solver" "prune"
          ~args:
            [
              ("var", Trace.Int j);
              ("value", Trace.Int w);
              ("level", Trace.Int level);
            ]
    in

    let undo_level level =
      List.iter (fun (j, w) -> Bitset.add domains.(j) w) trail.(level);
      List.iter
        (fun (j, _) -> Lset.remove pruned_by (j * lw) level)
        trail.(level);
      trail.(level) <- []
    in

    (* Prune future neighbours against [var = v]; false on a domain
       wipeout (conflict levels of the wiped variable are merged into
       this level's conflict set).  One support-row fetch prunes a whole
       neighbour domain word-parallel. *)
    let fc_assign var v level =
      let nbrs = Compiled.neighbors comp var in
      let wiped = ref false in
      let k = ref 0 in
      while (not !wiped) && !k < Array.length nbrs do
        let j = nbrs.(!k) in
        incr k;
        if level_of.(j) < 0 then begin
          bump_check ();
          let row = Compiled.row comp (Compiled.handle comp var j) v in
          Bitset.iter_diff (fun w -> prune level j w) domains.(j) row;
          if Bitset.is_empty domains.(j) then begin
            wiped := true;
            if config.backward <> Chronological then
              Lset.union_below pruned_by (j * lw) conf (level * lw) level lw
          end
        end
      done;
      not !wiped
    in

    let dead_end level =
      match config.backward with
      | Chronological ->
        stats.Stats.backtracks <- stats.Stats.backtracks + 1;
        if tr then
          Trace.instant ~cat:"solver" "backtrack"
            ~args:[ ("level", Trace.Int level) ];
        CFail (level - 1)
      | Graph_based | Conflict_directed ->
        (* this level's conf row is dead after this node, filter it in
           place *)
        let off = level * lw in
        Lset.keep_below conf off level lw;
        let target = Lset.max_elt conf off lw in
        if target < 0 then CFail (-1)
        else begin
          if target = level - 1 then begin
            stats.Stats.backtracks <- stats.Stats.backtracks + 1;
            if tr then
              Trace.instant ~cat:"solver" "backtrack"
                ~args:[ ("level", Trace.Int level) ]
          end
          else begin
            stats.Stats.backjumps <- stats.Stats.backjumps + 1;
            if tr then
              Trace.instant ~cat:"solver" "backjump"
                ~args:
                  [
                    ("level", Trace.Int level);
                    ("target", Trace.Int target);
                    ("distance", Trace.Int (level - target));
                  ]
          end;
          Lset.copy conf off carry 0 lw;
          Lset.remove carry 0 target;
          CFail target
        end
    in

    let rec search level =
      if level = n then CFound
      else begin
        if level > stats.Stats.max_depth then stats.Stats.max_depth <- level;
        let var = select_var () in
        level_of.(var) <- level;
        mark_assigned var;
        (* Under forward checking, values already pruned from [var]'s own
           domain were removed by earlier assignments; those levels share
           responsibility for any dead-end here. *)
        (match config.backward with
        | Graph_based -> conf_from_neighbors level var
        | Conflict_directed ->
          if fc then Lset.copy pruned_by (var * lw) conf (level * lw) lw
          else Lset.clear conf (level * lw) lw
        | Chronological -> ());
        let res = try_values var level (fill_candidates var level) 0 in
        mark_unassigned var;
        level_of.(var) <- -1;
        res
      end

    and try_values var level m k =
      if k >= m then dead_end level
      else begin
        let v = cand.((level * md) + k) in
        stats.Stats.nodes <- stats.Stats.nodes + 1;
        stats.Stats.nodes_by_depth.(level) <-
          stats.Stats.nodes_by_depth.(level) + 1;
        stats.Stats.nodes_by_var.(var) <- stats.Stats.nodes_by_var.(var) + 1;
        if tr then
          Trace.instant ~cat:"solver" "decision"
            ~args:
              [
                ("var", Trace.Int var);
                ("value", Trace.Int v);
                ("level", Trace.Int level);
              ];
        let pre_ok = fc || consistent_with_assigned var v level in
        if not pre_ok then try_values var level m (k + 1)
        else begin
          assignment.(var) <- v;
          let fc_ok = if fc then fc_assign var v level else true in
          if not fc_ok then begin
            assignment.(var) <- -1;
            undo_level level;
            try_values var level m (k + 1)
          end
          else
            match search (level + 1) with
            | CFound -> CFound
            | CFail target ->
              assignment.(var) <- -1;
              if fc then undo_level level;
              if target < level then CFail target
              else begin
                if cbj then
                  Lset.union_below carry 0 conf (level * lw) level lw;
                try_values var level m (k + 1)
              end
        end
      end
    in

    let outcome =
      try
        match
          Trace.with_span ~cat:"solver" "search"
            ~args:[ ("vars", Trace.Int n) ]
            (fun () -> search 0)
        with
        | CFound -> Solution (Array.copy assignment)
        | CFail _ -> Unsatisfiable
      with Abort -> Aborted
    in
    finish outcome

let solve ?config net = solve_compiled ?config (Network.compile net)

(* Merge one component's stats into the whole-network accumulator.
   [vars] maps component-local variable indices back to network indices;
   depth histograms add up because a component search never exceeds the
   whole-network depth. *)
let merge_component_stats stats ~n ~vars (s : Stats.t) =
  stats.Stats.nodes <- stats.Stats.nodes + s.Stats.nodes;
  stats.Stats.checks <- stats.Stats.checks + s.Stats.checks;
  stats.Stats.backtracks <- stats.Stats.backtracks + s.Stats.backtracks;
  stats.Stats.backjumps <- stats.Stats.backjumps + s.Stats.backjumps;
  stats.Stats.prunings <- stats.Stats.prunings + s.Stats.prunings;
  stats.Stats.learned <- stats.Stats.learned + s.Stats.learned;
  stats.Stats.forgotten <- stats.Stats.forgotten + s.Stats.forgotten;
  stats.Stats.restarts <- stats.Stats.restarts + s.Stats.restarts;
  stats.Stats.bounded <- stats.Stats.bounded + s.Stats.bounded;
  stats.Stats.incumbents <- stats.Stats.incumbents + s.Stats.incumbents;
  if s.Stats.max_depth > stats.Stats.max_depth then
    stats.Stats.max_depth <- s.Stats.max_depth;
  Array.iteri
    (fun d c ->
      if d < n then
        stats.Stats.nodes_by_depth.(d) <- stats.Stats.nodes_by_depth.(d) + c)
    s.Stats.nodes_by_depth;
  Array.iteri
    (fun lv c ->
      if lv < Array.length vars then
        stats.Stats.nodes_by_var.(vars.(lv)) <-
          stats.Stats.nodes_by_var.(vars.(lv)) + c)
    s.Stats.nodes_by_var

(* Component-wise search.  Variables in different connected components
   of the constraint graph share no constraint, so the network's
   solutions are exactly the products of per-component solutions:
   solving components independently is decision-equivalent to the
   whole-network search (same satisfiability; any merged assignment
   verifies), while dead-ends can no longer thrash across unrelated
   components and backjump distances stay within a component.  A
   single-component network takes the exact whole-network path, so the
   decomposition is free when there is nothing to split.

   With [domains > 1] the components are solved on a Domain pool.
   [Network.induced] only reads the immutable constraint store of the
   parent network, so the whole induce/compile/solve chain runs inside
   the workers.  The merge walks components in index order and stops at
   the first non-solution exactly like the serial loop, so outcomes and
   merged stats are identical to [domains = 1] whenever the budget does
   not bite (without [max_checks] they always are; later components'
   results are simply discarded past the first failure).  The check
   budget is shared through an atomic spent-counter: each component
   starts with what its predecessors have left, and the first budget
   exhaustion flips an abort flag that the sibling solves poll (the
   [cancel] hook above), so one exhausted Domain cancels the rest
   instead of letting every worker burn a full budget.

   The driver is generic in the per-component engine ([run]) so the
   conflict-driven scheme ({!Cdl}) and the portfolio reuse the exact
   decomposition, budget-sharing and merge logic. *)
let component_driver ?(domains = 1) ~max_checks ~run net =
  let comp = Network.compile net in
  let comps = Compiled.components comp in
  if Array.length comps <= 1 then
    run ~comp:0
      ~vars:(Array.init (Network.num_vars net) Fun.id)
      ~max_checks ~cancel:None net
  else begin
    let ncomps = Array.length comps in
    let domains = max 1 (min domains ncomps) in
    Trace.with_span ~cat:"solver" "solve-components"
      ~args:
        [ ("components", Trace.Int ncomps); ("domains", Trace.Int domains) ]
    @@ fun () ->
    let n = Compiled.num_vars comp in
    let t_wall = Clock.wall_s () and t_cpu = Clock.cpu_s () in
    let stats = Stats.create () in
    Stats.ensure_hists stats n;
    let assignment = Array.make n (-1) in
    (* [None] = never ran (siblings were cancelled before it started). *)
    let results = Array.make ncomps None in
    if domains = 1 then begin
      (* The check budget is global: each component consumes what the
         previous ones left over, mirroring the whole-network abort. *)
      let remaining = ref max_checks in
      let stop = ref false in
      for k = 0 to ncomps - 1 do
        if not !stop then begin
          let sub = Network.induced net comps.(k) in
          let r =
            run ~comp:k ~vars:comps.(k) ~max_checks:!remaining ~cancel:None sub
          in
          results.(k) <- Some r;
          (match !remaining with
          | Some m -> remaining := Some (max 0 (m - r.stats.Stats.checks))
          | None -> ());
          match r.outcome with
          | Solution _ -> ()
          | Unsatisfiable | Aborted -> stop := true
        end
      done
    end
    else begin
      let spent = Atomic.make 0 in
      let exhausted = Atomic.make false in
      let cancel () = Atomic.get exhausted in
      Mlo_support.Pool.parallel_iter ~domains ncomps (fun k ->
          if not (Atomic.get exhausted) then begin
            let budget =
              Option.map (fun m -> max 0 (m - Atomic.get spent)) max_checks
            in
            let sub = Network.induced net comps.(k) in
            let r =
              run ~comp:k ~vars:comps.(k) ~max_checks:budget
                ~cancel:(Some cancel) sub
            in
            results.(k) <- Some r;
            if max_checks <> None then
              ignore (Atomic.fetch_and_add spent r.stats.Stats.checks);
            match r.outcome with
            | Aborted -> Atomic.set exhausted true
            | Solution _ | Unsatisfiable -> ()
          end)
    end;
    (* Merge in component order up to (and including) the first
       non-solution — the serial stopping rule, applied after the fact. *)
    let failed = ref None in
    (try
       for k = 0 to ncomps - 1 do
         match results.(k) with
         | None ->
           failed := Some Aborted;
           raise Exit
         | Some r -> (
           merge_component_stats stats ~n ~vars:comps.(k) r.stats;
           match r.outcome with
           | Solution a ->
             Array.iteri (fun lv v -> assignment.(comps.(k).(lv)) <- v) a
           | (Unsatisfiable | Aborted) as o ->
             failed := Some o;
             raise Exit)
       done
     with Exit -> ());
    stats.Stats.elapsed_s <- Clock.wall_s () -. t_wall;
    stats.Stats.cpu_s <- Clock.cpu_s () -. t_cpu;
    let outcome =
      match !failed with
      | Some o -> o
      | None -> Solution (Array.copy assignment)
    in
    { outcome; stats }
  end

let solve_components ?(config = default_config) ?domains net =
  component_driver ?domains ~max_checks:config.max_checks
    ~run:(fun ~comp:_ ~vars:_ ~max_checks ~cancel sub ->
      let config = { config with max_checks } in
      solve_compiled ~config ?cancel (Network.compile sub))
    net

let solve_values ?config net =
  let r = solve ?config net in
  match r.outcome with
  | Solution a ->
    Some (Array.mapi (fun i v -> Network.value net i v) a, r)
  | Unsatisfiable | Aborted -> None

(* ------------------------------------------------------------------ *)
(* Reference implementation                                             *)
(* ------------------------------------------------------------------ *)

(* The original hashtable-probing engine, kept verbatim as the executable
   specification of the search: the property tests assert the compiled
   path above reproduces its outcomes and node/backtrack/backjump counts
   for every scheme.  Ignores [config.preprocess]; counts one check per
   value probe under forward checking (the historical accounting). *)
let solve_reference ?(config = default_config) net =
  let n = Network.num_vars net in
  let stats = Stats.create () in
  let rng = Rng.create config.seed in
  let fc = config.lookahead = Forward_checking in
  let assignment = Array.make n (-1) in
  let level_of = Array.make n (-1) in
  let var_at = Array.make n (-1) in
  let conf = Array.make n Int_set.empty in
  let domains =
    Array.init n (fun i -> Bitset.create_full (Network.domain_size net i))
  in
  let trail = Array.make n [] in
  let pruned_by = Array.make n Int_set.empty in

  let check i vi j vj =
    stats.Stats.checks <- stats.Stats.checks + 1;
    (match config.max_checks with
    | Some m when stats.Stats.checks > m -> raise Abort
    | Some _ | None -> ());
    Network.allowed net i vi j vj
  in

  let unassigned () =
    let rec go i acc = if i < 0 then acc else go (i - 1) (if level_of.(i) < 0 then i :: acc else acc) in
    go (n - 1) []
  in

  let assigned_neighbor_levels var =
    List.fold_left
      (fun acc j -> if level_of.(j) >= 0 then Int_set.add level_of.(j) acc else acc)
      Int_set.empty (Network.neighbors net var)
  in

  let degree_split var =
    List.fold_left
      (fun (to_unassigned, to_assigned) j ->
        if level_of.(j) < 0 then (to_unassigned + 1, to_assigned)
        else (to_unassigned, to_assigned + 1))
      (0, 0) (Network.neighbors net var)
  in

  let current_domain_size var =
    if fc then Bitset.count domains.(var) else Network.domain_size net var
  in

  (* Pick the maximum-score variable, lowest index on ties. *)
  let best_by score vars =
    match vars with
    | [] -> invalid_arg "Solver: no unassigned variable"
    | v0 :: rest ->
      let best = ref v0 and best_score = ref (score v0) in
      List.iter
        (fun v ->
          let s = score v in
          if Stdlib.compare s !best_score > 0 then begin
            best := v;
            best_score := s
          end)
        rest;
      !best
  in

  let select_var () =
    let vars = unassigned () in
    match config.var_policy with
    | Lexicographic_var -> List.hd vars
    | Random_var -> List.nth vars (Rng.int rng (List.length vars))
    | Most_constraining ->
      let score v =
        let to_unassigned, to_assigned = degree_split v in
        (to_unassigned, to_assigned, -current_domain_size v)
      in
      best_by score vars
    | Min_domain ->
      let score v =
        let to_unassigned, to_assigned = degree_split v in
        (-current_domain_size v, to_unassigned + to_assigned)
      in
      best_by score vars
  in

  (* Number of options [var = v] leaves open in uninstantiated neighbours'
     domains; heuristic table lookups are not counted as consistency
     checks. *)
  let promise var v =
    List.fold_left
      (fun acc j ->
        if level_of.(j) >= 0 then acc
        else if fc then
          Bitset.fold
            (fun w c -> if Network.allowed net var v j w then c + 1 else c)
            domains.(j) 0
          + acc
        else acc + Network.support_count net var v j)
      0 (Network.neighbors net var)
  in

  let candidate_values var =
    let avail =
      if fc then Bitset.to_list domains.(var)
      else List.init (Network.domain_size net var) Fun.id
    in
    match config.val_policy with
    | Lexicographic_val -> avail
    | Random_val ->
      let a = Array.of_list avail in
      Rng.shuffle rng a;
      Array.to_list a
    | Least_constraining ->
      let scored = List.map (fun v -> (promise var v, v)) avail in
      let sorted =
        List.stable_sort
          (fun (s1, v1) (s2, v2) ->
            let c = Int.compare s2 s1 in
            if c <> 0 then c else Int.compare v1 v2)
          scored
      in
      List.map snd sorted
  in

  (* Check [var = v] against instantiated neighbours in instantiation
     order; on conflict record the culprit level for conflict-directed
     jumping.  Under forward checking surviving domain values are already
     consistent with all instantiated variables, so this is skipped. *)
  let consistent_with_assigned var v level =
    let neighbors_by_level =
      List.filter (fun j -> level_of.(j) >= 0) (Network.neighbors net var)
      |> List.sort (fun a b -> Int.compare level_of.(a) level_of.(b))
    in
    let rec go = function
      | [] -> true
      | j :: rest ->
        if check var v j assignment.(j) then go rest
        else begin
          if config.backward = Conflict_directed then
            conf.(level) <- Int_set.add level_of.(j) conf.(level);
          false
        end
    in
    go neighbors_by_level
  in

  let prune level j w =
    Bitset.remove domains.(j) w;
    trail.(level) <- (j, w) :: trail.(level);
    pruned_by.(j) <- Int_set.add level pruned_by.(j);
    stats.Stats.prunings <- stats.Stats.prunings + 1
  in

  let undo_level level =
    List.iter (fun (j, w) -> Bitset.add domains.(j) w) trail.(level);
    List.iter
      (fun (j, _) -> pruned_by.(j) <- Int_set.remove level pruned_by.(j))
      trail.(level);
    trail.(level) <- []
  in

  (* Prune future neighbours against [var = v]; false on a domain wipeout
     (conflict levels of the wiped variable are merged into this level's
     conflict set). *)
  let fc_assign var v level =
    let wiped = ref false in
    List.iter
      (fun j ->
        if (not !wiped) && level_of.(j) < 0 then begin
          let dead =
            Bitset.fold
              (fun w acc -> if check var v j w then acc else w :: acc)
              domains.(j) []
          in
          List.iter (fun w -> prune level j w) dead;
          if Bitset.is_empty domains.(j) then begin
            wiped := true;
            if config.backward <> Chronological then
              conf.(level) <-
                Int_set.union conf.(level)
                  (Int_set.filter (fun l -> l < level) pruned_by.(j))
          end
        end)
      (Network.neighbors net var);
    not !wiped
  in

  let dead_end level =
    match config.backward with
    | Chronological ->
      stats.Stats.backtracks <- stats.Stats.backtracks + 1;
      Fail (level - 1, Int_set.empty)
    | Graph_based | Conflict_directed -> (
      let culprits = Int_set.filter (fun l -> l < level) conf.(level) in
      match Int_set.max_elt_opt culprits with
      | None -> Fail (-1, Int_set.empty)
      | Some target ->
        if target = level - 1 then
          stats.Stats.backtracks <- stats.Stats.backtracks + 1
        else stats.Stats.backjumps <- stats.Stats.backjumps + 1;
        Fail (target, Int_set.remove target culprits))
  in

  let rec search level =
    if level = n then Found
    else begin
      if level > stats.Stats.max_depth then stats.Stats.max_depth <- level;
      let var = select_var () in
      var_at.(level) <- var;
      level_of.(var) <- level;
      (* Under forward checking, values already pruned from [var]'s own
         domain were removed by earlier assignments; those levels share
         responsibility for any dead-end here. *)
      conf.(level) <-
        (match config.backward with
        | Graph_based -> assigned_neighbor_levels var
        | Conflict_directed -> if fc then pruned_by.(var) else Int_set.empty
        | Chronological -> Int_set.empty);
      let res = try_values var level (candidate_values var) in
      level_of.(var) <- -1;
      var_at.(level) <- -1;
      res
    end

  and try_values var level values =
    match values with
    | [] -> dead_end level
    | v :: rest ->
      stats.Stats.nodes <- stats.Stats.nodes + 1;
      let pre_ok = fc || consistent_with_assigned var v level in
      if not pre_ok then try_values var level rest
      else begin
        assignment.(var) <- v;
        let fc_ok = if fc then fc_assign var v level else true in
        if not fc_ok then begin
          assignment.(var) <- -1;
          undo_level level;
          try_values var level rest
        end
        else
          match search (level + 1) with
          | Found -> Found
          | Fail (target, merge) ->
            assignment.(var) <- -1;
            if fc then undo_level level;
            if target < level then Fail (target, merge)
            else begin
              conf.(level) <- Int_set.union conf.(level) merge;
              try_values var level rest
            end
      end
  in

  let t_wall = Clock.wall_s () and t_cpu = Clock.cpu_s () in
  let outcome =
    try
      match search 0 with
      | Found -> Solution (Array.copy assignment)
      | Fail _ -> Unsatisfiable
    with Abort -> Aborted
  in
  stats.Stats.elapsed_s <- Clock.wall_s () -. t_wall;
  stats.Stats.cpu_s <- Clock.cpu_s () -. t_cpu;
  (match outcome with
  | Solution a -> assert (Network.verify net a)
  | Unsatisfiable | Aborted -> ());
  { outcome; stats }
