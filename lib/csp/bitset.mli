(** Fixed-capacity bitsets over [0 .. capacity-1].

    Used for pruned domains during forward checking and arc consistency.
    Mutable; callers own copies. *)

type t

val create_full : int -> t
(** [create_full n] contains every element of [0 .. n-1]. *)

val create_empty : int -> t

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val count : t -> int
(** Cardinality, maintained in O(1). *)

val is_empty : t -> bool
val copy : t -> t
val blit : src:t -> dst:t -> unit
(** Overwrites [dst] with the contents of [src] (equal capacities). *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val choose : t -> int option
(** Smallest member, if any. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
