(** Fixed-capacity bitsets over [0 .. capacity-1].

    Used for pruned domains during forward checking and arc consistency.
    Mutable; callers own copies.

    The backing store is int words, 32 bits per word, and the word layout
    is shared with the compiled constraint network's raw support {!row}s,
    so forward checking and arc consistency can prune and probe a whole
    domain word-parallel ([land] + popcount) instead of per value. *)

type t

val create_full : int -> t
(** [create_full n] contains every element of [0 .. n-1]. *)

val create_empty : int -> t

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val count : t -> int
(** Cardinality, maintained in O(1). *)

val is_empty : t -> bool
val copy : t -> t
val blit : src:t -> dst:t -> unit
(** Overwrites [dst] with the contents of [src] (equal capacities). *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val to_array : t -> int array
(** Members ascending. *)

val fill_array : t -> int array -> int -> int
(** [fill_array t a off] writes the members ascending into [a] starting
    at index [off] and returns the member count.  Allocation-free. *)

val choose : t -> int option
(** Smallest member, if any. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Raw support rows}

    A {!row} is a borrowed bit vector in the same word layout as a bitset
    of equal capacity: bit [v] lives in word [v lsr 5] at position
    [v land 31].  The compiled network ({!Compiled}) stores one row per
    (constraint direction, value); the operations below combine a mutable
    domain with such a row word-parallel.  All of them raise
    [Invalid_argument] if the row has a different word count than the
    bitset. *)

type row = int array

val bits_per_word : int
val words_for : int -> int
(** Words needed for a capacity. *)

val row_make : int -> row
(** All-zero row for the given capacity. *)

val row_add : row -> int -> unit
val row_mem : row -> int -> bool
val row_count : row -> int
(** Popcount of the whole row. *)

val inter_count : t -> row -> int
(** [inter_count t row] is [|t ∩ row|] (word-wise [land] + popcount). *)

val inter_exists : t -> row -> bool
val inter_choose : t -> row -> int option
(** Smallest member of the intersection, if any. *)

val iter_diff : (int -> unit) -> t -> row -> unit
(** [iter_diff f t row] applies [f] to every member of [t] {e not} in
    [row], ascending — the values forward checking must prune. *)

val popcount : int -> int
(** Popcount of one 32-bit word held in an int. *)
