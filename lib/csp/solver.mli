(** Systematic search over constraint networks (paper Section 4).

    The engine is a depth-first backtracking search with pluggable
    policies covering the paper's two schemes and several extensions:

    - {b variable ordering} — which uninstantiated variable to assign
      next (the paper's first random decision, and its "maximally
      constrains the rest of the search space" improvement);
    - {b value ordering} — which layout to try first (the second random
      decision, and the "maximize options for future assignments"
      improvement);
    - {b backward policy} — where to resume after a dead-end:
      chronological backtracking, the paper's backjumping (jump to the
      deepest instantiated variable sharing a constraint with the
      dead-end variable), or conflict-directed backjumping;
    - {b lookahead} — optionally prune future domains (forward checking),
      an extension the paper does not evaluate;
    - {b preprocess} — optionally establish arc consistency (AC-2001)
      before the search starts, shrinking every domain the search and the
      lookahead run over.

    All policies are complete: if the network has a solution, every
    configuration finds one (possibly a different one, as the paper notes
    for its Table 3).

    {!solve} runs on the {e compiled} network view ({!Network.compile}):
    consistency checks are O(1) dense-table probes and forward checking
    prunes whole neighbour domains word-parallel.  {!solve_reference} is
    the original hashtable-probing engine, kept as the executable
    specification: both produce identical outcomes and identical
    node/backtrack/backjump counts for every configuration (property
    tested); under forward checking they count [checks] differently (see
    {!Stats}). *)

type var_policy =
  | Lexicographic_var  (** lowest-numbered uninstantiated variable *)
  | Random_var  (** uniformly random uninstantiated variable *)
  | Most_constraining
      (** most constraints to the rest of the network; ties broken by
          constraints to instantiated variables, then smaller domain *)
  | Min_domain
      (** smallest current domain (differs from [Most_constraining] only
          under forward checking); ties broken by degree *)

type val_policy =
  | Lexicographic_val
  | Random_val
  | Least_constraining
      (** maximize the number of compatible values left in uninstantiated
          neighbours' domains *)

type backward_policy =
  | Chronological  (** undo the most recent instantiation *)
  | Graph_based
      (** the paper's backjumping: return to the deepest instantiated
          variable adjacent (in the constraint graph) to the dead-end
          variable, skipping non-culprits *)
  | Conflict_directed
      (** jump to the deepest variable that actually conflicted; subsumes
          [Graph_based] *)

type lookahead = No_lookahead | Forward_checking

type preprocess =
  | No_preprocess
  | Arc_consistency
      (** run AC-2001 first; arc-inconsistent values never appear in any
          solution, so completeness is preserved.  Propagation work is
          not counted in [Stats.checks]. *)

type config = {
  var_policy : var_policy;
  val_policy : val_policy;
  backward : backward_policy;
  lookahead : lookahead;
  preprocess : preprocess;
  seed : int;  (** seed for the random policies *)
  max_checks : int option;
      (** abort the search after this many consistency checks *)
}

val default_config : config
(** Lexicographic orderings, chronological backtracking, no lookahead,
    no preprocessing, seed 0, no check limit. *)

type outcome =
  | Solution of int array  (** value index per variable *)
  | Unsatisfiable
  | Aborted  (** check limit exhausted *)

type result = { outcome : outcome; stats : Stats.t }

val solve : ?config:config -> 'a Network.t -> result
(** Runs the search on [Network.compile net] (memoized — repeated solves
    of the same network compile once).  The returned assignment (if any)
    satisfies {!Network.verify}. *)

val solve_compiled :
  ?config:config -> ?cancel:(unit -> bool) -> Compiled.t -> result
(** Runs the search directly on an already-compiled view.  [cancel] is a
    cooperative cancellation hook polled every 256 consistency checks;
    when it returns [true] the solve finishes with [Aborted] (partial
    stats intact).  Used by the parallel component solver to cancel
    sibling Domains once the shared check budget is exhausted. *)

val solve_components : ?config:config -> ?domains:int -> 'a Network.t -> result
(** Component-wise search: solves each connected component of the
    constraint graph ({!Network.components}) as an independent
    subnetwork and merges the per-component solutions.  Variables in
    different components share no constraint, so this is
    decision-equivalent to {!solve} — same satisfiability, and any
    returned assignment satisfies {!Network.verify} — while dead-ends
    never thrash across unrelated components (the stats can only
    improve).  A single-component network takes exactly the {!solve}
    path: outcome and counters are identical.  [config.max_checks] is a
    global budget consumed across components; stats are summed
    (histograms are merged onto whole-network variable indices and
    per-component depths).

    [domains] (default 1) spreads the per-component solves over a Domain
    pool ({!Mlo_support.Pool}); components are independent, so workers
    share nothing but the atomic budget counter.  Results are merged in
    component order with the serial stopping rule, so outcome and merged
    stats are identical to the serial path whenever the check budget
    does not bite — and always identical when [max_checks] is [None].
    Under a budget, the first Domain to exhaust it cancels the siblings
    (each component starts from what the completed ones have left, so
    the total overrun is bounded by the number of in-flight solves). *)

val component_driver :
  ?domains:int ->
  max_checks:int option ->
  run:
    (comp:int ->
    vars:int array ->
    max_checks:int option ->
    cancel:(unit -> bool) option ->
    'a Network.t ->
    result) ->
  'a Network.t ->
  result
(** The machinery behind {!solve_components}, generic in the
    per-component engine: decomposes the network, shares the [max_checks]
    budget across components (atomically under [domains > 1], with
    sibling cancellation through [cancel]), and merges results in
    component order with the serial stopping rule.  [comp] is the
    component's index and [vars] maps its local variable indices back to
    the whole network (proof emission relies on both).  A
    single-component network is passed to [run] whole, as component 0
    with the identity mapping.  {!Cdl.solve_components} and the
    portfolio build on this. *)

type event =
  | Learned of { dead : int; lits : (int * int) array }
      (** A nogood was learned at a dead end: the (component-local)
          assignments [lits] cannot jointly extend to a solution (for
          {!Bnb}, to one improving the incumbent); [dead] is the
          variable whose domain wiped. *)
  | Incumbent of { assignment : int array }
      (** Branch and bound found an improving incumbent (a fresh copy,
          component-local indices). *)
  | Finished of outcome
      (** The component's search ended; always the component's last
          event. *)
(** Solver events for proof logging, reported per component by
    {!Cdl.solve_components} and {!Bnb.solve_components} via their
    [on_event] callbacks.  Variable indices are local to the component;
    the [vars] array of the enclosing component maps them back. *)

val solve_values : ?config:config -> 'a Network.t -> ('a array * result) option
(** Convenience: like {!solve} but materializes the domain values of the
    solution; [None] when unsatisfiable or aborted. *)

val solve_reference : ?config:config -> 'a Network.t -> result
(** The original (pre-compilation) engine, kept as the executable
    specification for equivalence testing: same outcomes and same
    node/backtrack/backjump counts as {!solve} for every configuration.
    Slower; counts one check per value probe under forward checking;
    ignores [config.preprocess]. *)
