(** Systematic search over constraint networks (paper Section 4).

    The engine is a depth-first backtracking search with pluggable
    policies covering the paper's two schemes and several extensions:

    - {b variable ordering} — which uninstantiated variable to assign
      next (the paper's first random decision, and its "maximally
      constrains the rest of the search space" improvement);
    - {b value ordering} — which layout to try first (the second random
      decision, and the "maximize options for future assignments"
      improvement);
    - {b backward policy} — where to resume after a dead-end:
      chronological backtracking, the paper's backjumping (jump to the
      deepest instantiated variable sharing a constraint with the
      dead-end variable), or conflict-directed backjumping;
    - {b lookahead} — optionally prune future domains (forward checking),
      an extension the paper does not evaluate.

    All policies are complete: if the network has a solution, every
    configuration finds one (possibly a different one, as the paper notes
    for its Table 3). *)

type var_policy =
  | Lexicographic_var  (** lowest-numbered uninstantiated variable *)
  | Random_var  (** uniformly random uninstantiated variable *)
  | Most_constraining
      (** most constraints to the rest of the network; ties broken by
          constraints to instantiated variables, then smaller domain *)
  | Min_domain
      (** smallest current domain (differs from [Most_constraining] only
          under forward checking); ties broken by degree *)

type val_policy =
  | Lexicographic_val
  | Random_val
  | Least_constraining
      (** maximize the number of compatible values left in uninstantiated
          neighbours' domains *)

type backward_policy =
  | Chronological  (** undo the most recent instantiation *)
  | Graph_based
      (** the paper's backjumping: return to the deepest instantiated
          variable adjacent (in the constraint graph) to the dead-end
          variable, skipping non-culprits *)
  | Conflict_directed
      (** jump to the deepest variable that actually conflicted; subsumes
          [Graph_based] *)

type lookahead = No_lookahead | Forward_checking

type config = {
  var_policy : var_policy;
  val_policy : val_policy;
  backward : backward_policy;
  lookahead : lookahead;
  seed : int;  (** seed for the random policies *)
  max_checks : int option;
      (** abort the search after this many consistency checks *)
}

val default_config : config
(** Lexicographic orderings, chronological backtracking, no lookahead,
    seed 0, no check limit. *)

type outcome =
  | Solution of int array  (** value index per variable *)
  | Unsatisfiable
  | Aborted  (** check limit exhausted *)

type result = { outcome : outcome; stats : Stats.t }

val solve : ?config:config -> 'a Network.t -> result
(** Runs the search.  The returned assignment (if any) satisfies
    {!Network.verify}. *)

val solve_values : ?config:config -> 'a Network.t -> ('a array * result) option
(** Convenience: like {!solve} but materializes the domain values of the
    solution; [None] when unsatisfiable or aborted. *)
