(** Allowed-pair relations backing binary constraints.

    A relation between a variable with [left] domain values and one with
    [right] domain values records which [(l, r)] pairs are permitted.
    Support counts per value are maintained incrementally; the
    least-constraining value ordering reads them in O(1). *)

type t

val create : left:int -> right:int -> t
(** Empty relation (no pair allowed) over the given domain sizes. *)

val left_size : t -> int
val right_size : t -> int

val add : t -> int -> int -> unit
(** [add t l r] permits the pair; idempotent.  Raises [Invalid_argument]
    out of range. *)

val mem : t -> int -> int -> bool
val pair_count : t -> int

val left_support : t -> int -> int
(** [left_support t l] is the number of right values compatible with [l]. *)

val right_support : t -> int -> int
(** [right_support t r] is the number of left values compatible with [r]. *)

val supports_of_left : t -> int -> int list
(** Right values compatible with the given left value, ascending. *)

val supports_of_right : t -> int -> int list

val transpose : t -> t
(** The same relation viewed from the other side.  The result is a cached
    snapshot, shared between calls until the relation is next mutated:
    treat it as read-only, and {!copy} it before calling {!add} on it. *)

val copy : t -> t
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over allowed pairs in ascending [(l, r)] order. *)

val pp : Format.formatter -> t -> unit
