type 'a t = {
  net : 'a Network.t;
  weights : (int * int, float array array) Hashtbl.t; (* keyed (i, j), i < j *)
}

let create net = { net; weights = Hashtbl.create 32 }
let network t = t.net

let key i j = if i < j then (i, j) else (j, i)

let matrix t i j =
  let a, b = key i j in
  match Hashtbl.find_opt t.weights (a, b) with
  | Some m -> m
  | None ->
    let m =
      Array.init
        (Network.domain_size t.net a)
        (fun _ -> Array.make (Network.domain_size t.net b) 0.)
    in
    Hashtbl.replace t.weights (a, b) m;
    m

let set_weight t i vi j vj w =
  if i = j then invalid_arg "Weighted.set_weight: i = j";
  if w < 0. then invalid_arg "Weighted.set_weight: negative weight";
  if not (Network.constrained t.net i j) then
    invalid_arg "Weighted.set_weight: unconstrained variable pair";
  let m = matrix t i j in
  let l, r = if i < j then (vi, vj) else (vj, vi) in
  m.(l).(r) <- w

let weight t i vi j vj =
  let a, b = key i j in
  match Hashtbl.find_opt t.weights (a, b) with
  | None -> 0.
  | Some m ->
    let l, r = if i < j then (vi, vj) else (vj, vi) in
    m.(l).(r)

let add_weight t i vi j vj w =
  set_weight t i vi j vj (weight t i vi j vj +. w)

let assignment_weight t a =
  List.fold_left
    (fun acc (i, j) -> acc +. weight t i a.(i) j a.(j))
    0.
    (Network.constraint_pairs t.net)

type result = { best : (int array * float) option; nodes : int }

(* Admissible upper bound for the weight still collectable from the pairs
   not yet fully assigned: max over the compatible entries of each
   constraint matrix, with assigned sides fixed. *)
let solve ?max_nodes t =
  let net = t.net in
  let n = Network.num_vars net in
  let pairs = Network.constraint_pairs net in
  let a = Array.make n (-1) in
  let best = ref None in
  let best_w = ref neg_infinity in
  let nodes = ref 0 in
  let stop = ref false in
  let pair_bound (i, j) =
    let m =
      match Hashtbl.find_opt t.weights (i, j) with
      | Some m -> m
      | None -> [||]
    in
    let get vi vj =
      if Array.length m = 0 then 0. else m.(vi).(vj)
    in
    let candidates_i =
      if a.(i) >= 0 then [ a.(i) ]
      else List.init (Network.domain_size net i) Fun.id
    in
    let candidates_j =
      if a.(j) >= 0 then [ a.(j) ]
      else List.init (Network.domain_size net j) Fun.id
    in
    List.fold_left
      (fun acc vi ->
        List.fold_left
          (fun acc vj ->
            if Network.allowed net i vi j vj then max acc (get vi vj) else acc)
          acc candidates_j)
      0. candidates_i
  in
  let upper_bound () =
    List.fold_left (fun acc p -> acc +. pair_bound p) 0. pairs
  in
  let rec go i =
    if !stop then ()
    else if i = n then begin
      let w = assignment_weight t a in
      if w > !best_w then begin
        best_w := w;
        best := Some (Array.copy a, w)
      end
    end
    else begin
      incr nodes;
      (match max_nodes with
      | Some m when !nodes > m -> stop := true
      | Some _ | None -> ());
      if not !stop then
        for v = 0 to Network.domain_size net i - 1 do
          let consistent =
            let rec chk j =
              j >= i || (Network.allowed net i v j a.(j) && chk (j + 1))
            in
            chk 0
          in
          if consistent && not !stop then begin
            a.(i) <- v;
            if upper_bound () > !best_w then go (i + 1);
            a.(i) <- -1
          end
        done
    end
  in
  go 0;
  { best = !best; nodes = !nodes }

let brute_optimum t =
  let sols = Brute.all_solutions t.net in
  List.fold_left
    (fun acc a ->
      let w = assignment_weight t a in
      match acc with
      | Some (_, bw) when bw >= w -> acc
      | Some _ | None -> Some (a, w))
    None sols
