(** Deterministic pseudo-random numbers for the solver's random policies.

    The paper's base scheme "makes random decisions at several points";
    reproducible experiments need those decisions to be a pure function of
    a seed, independent of the global [Random] state.  This is a small
    splitmix64-style generator: fast, well distributed, and stable across
    runs and platforms. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator.  Generators are mutable and not
    thread-safe; create one per solver run. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    if [bound <= 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffled_init : t -> int -> int array
(** [shuffled_init t n] is a random permutation of [0 .. n-1]. *)

val split : t -> t
(** A generator decorrelated from the parent (for independent substreams). *)
