(** Min-conflicts local search over constraint networks.

    A contrasting solution method to the systematic search of {!Solver}:
    start from a random complete assignment and repeatedly reassign a
    conflicted variable to the value violating the fewest constraints
    (ties broken randomly), with random restarts.  Incomplete — it can
    neither prove unsatisfiability nor guarantee a solution — but often
    very fast on loosely constrained networks, making it a useful
    ablation against the paper's backtracking schemes. *)

type config = {
  seed : int;
  max_steps : int;  (** reassignments per restart *)
  restarts : int;
}

val default_config : config
(** seed 0, 10_000 steps, 10 restarts. *)

type outcome =
  | Solution of int array
  | Stuck of int array * int
      (** best assignment found and its number of violated constraints *)

type result = {
  outcome : outcome;
  steps : int;  (** total reassignments across restarts *)
}

val solve : ?config:config -> 'a Network.t -> result
(** Runs min-conflicts.  A returned [Solution] always satisfies
    {!Network.verify}. *)

val solve_compiled :
  ?config:config -> ?cancel:(unit -> bool) -> Compiled.t -> result
(** Min-conflicts against the compiled view only — {!Compiled.t} is
    immutable, so this is safe to run on a worker Domain while siblings
    read the same view (unlike {!solve}, whose network queries touch lazy
    caches).  [cancel] is polled every few reassignments; a cancelled run
    returns its best-so-far [Stuck].  Used as the stochastic member of
    the racing portfolio. *)

val conflicts : 'a Network.t -> int array -> int
(** Number of constraints a complete assignment violates. *)
