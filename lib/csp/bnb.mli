(** Optimizing branch and bound over a separable assignment cost.

    The satisfiability engines stop at the first consistent assignment;
    this one searches the whole satisfying space for the assignment of
    minimum total cost, where the cost is {e separable}: a per-(variable,
    value) charge [costs.(i).(v)] summed over the assignment.  The layout
    pipeline charges each (array, layout) its whole-program miss estimate
    from the static locality model ({!Mlo_analysis.Locality.profiler}),
    so the optimum is the layout assignment the cost model likes best.

    The search is the conflict-directed forward-checking core of {!Cdl}
    (same conflict sets, same learned-nogood store) extended with:

    - an {b admissible lower bound} at every node — the cost of the
      assignments made so far plus, for every unassigned variable, the
      minimum cost over its {e live} (forward-checked) domain.  A static
      per-variable minimum is maintained as a drift-free per-level
      prefix; the live-domain refinement is recomputed per node;
    - {b incumbent pruning} — a subtree whose bound cannot strictly beat
      the best solution found so far is refuted exactly like a wipeout,
      blamed on the assignments that contribute cost above their static
      minima (and, for live-domain refinements, on the assignments that
      pruned the refined domains), so backjumping and nogood learning
      apply to cost refutations too;
    - {b cost-aware value ordering} — cheapest value first, so the first
      descent is greedy and the first incumbent is already good.

    Learned nogoods here mean "no completion holding these literals
    {e strictly beats} the incumbent at learn time"; the incumbent only
    improves and is itself kept, so exclusions never lose the optimum
    (only equal-cost duplicates).  On unsatisfiable networks no incumbent
    ever exists and every nogood is a plain {!Cdl} conflict nogood, so
    the satisfiability verdict is as sound as [cdl]'s.

    Costs are additive across connected components, so per-component
    optima compose: {!solve_components} runs the engine through
    {!Solver.component_driver} and the merged assignment is optimal
    whenever each component solve is. *)

type config = {
  bound_slack : float;
      (** prune when [bound * (1 + slack) >= incumbent]: 0 (the default)
          is exact; [s > 0] trades optimality for speed with a
          [(1 + s)]-approximation guarantee.  Negative slack is an
          [Invalid_argument]. *)
  race_seed : bool;
      (** seed the incumbent by racing the first-solution schemes
          ({!Portfolio.race} on one Domain, [cdl] first) before the
          optimizing search starts; an [Unsatisfiable] race verdict is
          returned immediately.  Default [false]. *)
  preprocess : Solver.preprocess;
  learn_limit : int;  (** bound of the learned-nogood store, as in {!Cdl} *)
  max_checks : int option;
}

val default_config : config
(** Exact bound (slack 0), no incumbent seeding, no preprocessing,
    learn limit 4000, no check budget. *)

val cost_of : costs:float array array -> int array -> float
(** Canonical total cost of a complete assignment: [costs.(i).(a.(i))]
    summed left to right by variable index.  Every cost the engine
    compares or returns is computed by this one fold, so equal
    assignments always get bit-identical costs. *)

val lower_bound :
  costs:float array array ->
  assignment:int array ->
  live:(int -> int -> bool) ->
  float
(** The engine's admissible bound as a pure function, exposed for the
    property tests: entries of [-1] in [assignment] are unassigned and
    contribute the minimum cost over their live values ([live i v]);
    assigned entries contribute their exact cost.  For every complete
    consistent extension [c] of [assignment] within the live domains,
    [lower_bound ... <= cost_of ~costs c]. *)

val solve_compiled :
  ?config:config ->
  ?cancel:(unit -> bool) ->
  ?on_learn:(dead:int -> (int * int) array -> unit) ->
  ?on_leaf:(int array -> unit) ->
  costs:float array array ->
  Compiled.t ->
  Solver.result
(** Branch and bound on a compiled view.  [costs] must have one row per
    variable and one entry per domain value ([Invalid_argument]
    otherwise).  [Solution a] is a verified consistent assignment; with
    the default slack it has minimum {!cost_of} over all consistent
    assignments.  When the check budget (or [cancel]) interrupts a
    search that already holds an incumbent, that incumbent is returned
    as an {e anytime} [Solution] — consistent, but possibly not optimal;
    [Aborted] means the budget died before any solution was found.
    [stats.bounded] counts cost-pruned subtrees and [stats.incumbents]
    the strict incumbent improvements.

    Proof-logging hooks: [on_learn] receives each learned nogood (a
    fresh literal array plus the wiped variable), [on_leaf] each strict
    incumbent improvement (a fresh copy of the assignment, including
    one seeded by [race_seed]), in chronological order. *)

val solve :
  ?config:config -> cost:(string -> int -> float) -> 'a Network.t ->
  Solver.result
(** {!solve_compiled} on the whole network, with the cost table built
    from [cost name value_index] per variable. *)

val solve_components :
  ?config:config ->
  ?domains:int ->
  ?on_event:(comp:int -> vars:int array -> Solver.event -> unit) ->
  cost:(string -> int -> float) ->
  'a Network.t ->
  Solver.result
(** Component-wise branch and bound via {!Solver.component_driver}: each
    connected component is minimized independently ([cost] is queried by
    variable {e name}, which {!Network.induced} preserves) and the
    per-component optima concatenate into the global optimum, because a
    separable cost never couples variables that share no constraint.
    [domains] spreads components over a Domain pool as usual.
    [on_event] receives each component's {!Solver.event} stream
    (nogoods and incumbents in chronological order, [Finished] last),
    buffered per component and replayed serially in component order —
    safe under [domains > 1]. *)

val branch_and_bound :
  ?config:config ->
  ?domains:int ->
  ?on_event:(comp:int -> vars:int array -> Solver.event -> unit) ->
  cost:(string -> int -> float) ->
  'a Network.t ->
  Solver.result
(** Alias of {!solve_components} — the optimizing entry point the rest
    of the pipeline calls. *)
