(* Time sources for solver statistics and experiment timings.

   Both clocks are direct clock_gettime(2) stubs returning integer
   nanoseconds, so a read is one (vdso-backed, for CLOCK_MONOTONIC)
   call and no allocation — cheap enough to time every solve, including
   microsecond-scale ones.  CLOCK_MONOTONIC is the same source as
   bechamel's monotonic-clock instance, so solver-reported times and
   micro-benchmark numbers are directly comparable. *)

external wall_ns : unit -> int = "mlo_clock_monotonic_ns" [@@noalloc]
external cpu_ns : unit -> int = "mlo_clock_cputime_ns" [@@noalloc]

let wall_s () = float_of_int (wall_ns ()) *. 1e-9
let cpu_s () = float_of_int (cpu_ns ()) *. 1e-9
