type outcome = Reduced of Bitset.t array | Wiped of int

let revise net domains i j =
  if not (Network.constrained net i j) then false
  else begin
    let removed = ref false in
    let dead =
      Bitset.fold
        (fun vi acc ->
          let supported =
            Bitset.fold
              (fun vj ok -> ok || Network.allowed net i vi j vj)
              domains.(j) false
          in
          if supported then acc else vi :: acc)
        domains.(i) []
    in
    List.iter
      (fun vi ->
        Bitset.remove domains.(i) vi;
        removed := true)
      dead;
    !removed
  end

let ac3 net =
  let n = Network.num_vars net in
  let domains =
    Array.init n (fun i -> Bitset.create_full (Network.domain_size net i))
  in
  let queue = Queue.create () in
  List.iter
    (fun (i, j) ->
      Queue.add (i, j) queue;
      Queue.add (j, i) queue)
    (Network.constraint_pairs net);
  let wiped = ref None in
  while (not (Queue.is_empty queue)) && !wiped = None do
    let i, j = Queue.pop queue in
    if revise net domains i j then
      if Bitset.is_empty domains.(i) then wiped := Some i
      else
        List.iter
          (fun k -> if k <> j then Queue.add (k, i) queue)
          (Network.neighbors net i)
  done;
  match !wiped with Some i -> Wiped i | None -> Reduced domains

let ac2001 net =
  match Ac2001.run (Network.compile net) with
  | Error i -> Wiped i
  | Ok domains -> Reduced domains

let restrict net domains =
  let n = Network.num_vars net in
  if Array.length domains <> n then
    invalid_arg "Propagate.restrict: domain count mismatch";
  let keep = Array.init n (fun i -> Array.of_list (Bitset.to_list domains.(i))) in
  Array.iteri
    (fun i k ->
      if Array.length k = 0 then
        invalid_arg "Propagate.restrict: empty domain";
      if Bitset.capacity domains.(i) <> Network.domain_size net i then
        invalid_arg "Propagate.restrict: capacity mismatch")
    keep;
  (* old value index -> new index, or -1 if dropped *)
  let back =
    Array.init n (fun i ->
        let m = Array.make (Network.domain_size net i) (-1) in
        Array.iteri (fun nw old -> m.(old) <- nw) keep.(i);
        m)
  in
  let names = Array.init n (Network.name net) in
  let doms =
    Array.init n (fun i -> Array.map (Network.value net i) keep.(i))
  in
  let net' = Network.create ~names ~domains:doms in
  List.iter
    (fun (i, j) ->
      match Network.relation net i j with
      | None -> ()
      | Some rel ->
        let pairs =
          Relation.fold
            (fun vi vj acc ->
              let vi' = back.(i).(vi) and vj' = back.(j).(vj) in
              if vi' >= 0 && vj' >= 0 then (vi', vj') :: acc else acc)
            rel []
        in
        Network.add_allowed net' i j pairs)
    (Network.constraint_pairs net);
  net'
