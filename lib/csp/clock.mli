(** Time sources for solver statistics and experiment timings. *)

val wall_ns : unit -> int
(** Monotonic wall-clock nanoseconds (CLOCK_MONOTONIC, arbitrary origin
    — meaningful only as differences).  Allocation-free. *)

val cpu_ns : unit -> int
(** Process CPU nanoseconds (CLOCK_PROCESS_CPUTIME_ID).  Allocation-free. *)

val wall_s : unit -> float
(** [wall_ns] in seconds.  Same source as the bechamel monotonic-clock
    instance, so solver times and bench numbers are comparable. *)

val cpu_s : unit -> float
(** [cpu_ns] in seconds. *)
