(* Word-mask level sets (see lset.mli).  Extracted from the solver so the
   conflict-driven engine shares the exact representation. *)

let bits = 63
let words n = ((max 1 n) + bits - 1) / bits
let make_mat rows n = Array.make (max 1 (rows * words n)) 0
let clear s off lw = Array.fill s off lw 0

let add s off l =
  let k = off + (l / bits) in
  s.(k) <- s.(k) lor (1 lsl (l mod bits))

let remove s off l =
  let k = off + (l / bits) in
  s.(k) <- s.(k) land lnot (1 lsl (l mod bits))

let mem s off l = s.(off + (l / bits)) land (1 lsl (l mod bits)) <> 0

let copy src soff dst doff lw = Array.blit src soff dst doff lw

(* [dst := dst U (src /\ [0, limit))] *)
let union_below src soff dst doff limit lw =
  let w = limit / bits in
  let last = min w (lw - 1) in
  for k = 0 to last do
    let m = if k = w then (1 lsl (limit mod bits)) - 1 else -1 in
    dst.(doff + k) <- dst.(doff + k) lor (src.(soff + k) land m)
  done

(* in place: drop members >= limit *)
let keep_below s off limit lw =
  let w = limit / bits in
  if w < lw then begin
    s.(off + w) <- s.(off + w) land ((1 lsl (limit mod bits)) - 1);
    Array.fill s (off + w + 1) (lw - w - 1) 0
  end

let top_bit w =
  let r = ref 0 and w = ref w in
  if !w lsr 32 <> 0 then (r := !r + 32; w := !w lsr 32);
  if !w lsr 16 <> 0 then (r := !r + 16; w := !w lsr 16);
  if !w lsr 8 <> 0 then (r := !r + 8; w := !w lsr 8);
  if !w lsr 4 <> 0 then (r := !r + 4; w := !w lsr 4);
  if !w lsr 2 <> 0 then (r := !r + 2; w := !w lsr 2);
  if !w lsr 1 <> 0 then incr r;
  !r

(* highest member, or -1 when empty *)
let max_elt s off lw =
  let rec go k =
    if k < 0 then -1
    else if s.(off + k) <> 0 then (k * bits) + top_bit s.(off + k)
    else go (k - 1)
  in
  go (lw - 1)

let iter f s off lw =
  for k = 0 to lw - 1 do
    let w = ref s.(off + k) in
    while !w <> 0 do
      let b = !w land - !w in
      f ((k * bits) + top_bit b);
      w := !w land lnot b
    done
  done

let count s off lw =
  let acc = ref 0 in
  for k = 0 to lw - 1 do
    let w = ref s.(off + k) in
    while !w <> 0 do
      w := !w land (!w - 1);
      incr acc
    done
  done;
  !acc
