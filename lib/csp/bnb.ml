(* Optimizing branch and bound: the Cdl engine's FC + conflict-directed
   core and nogood store, with the restarts/VSIDS machinery replaced by
   an admissible separable-cost bound, incumbent pruning and cost-aware
   value ordering.  Soundness notes beyond cdl.ml's:

   - The bound is kept as a drift-free per-level prefix: [acc.(l)] is
     the cost of the assignments at levels < l and [rem.(l)] the sum of
     the static (full-domain) per-variable minima of the variables
     unassigned at levels < l; both are extended by one addition per
     assignment and never subtracted from, so backtracking restores the
     parent's exact values by construction.  The live-domain refinement
     (per unassigned variable, min over the forward-checked domain minus
     the static minimum, always >= 0) is recomputed at each node.
   - A cost refutation is blamed on the levels of the assigned variables
     charged above their static minima, plus — for each refined
     unassigned variable — the levels that pruned its domain
     ([pruned_by]).  Under any other assignment holding exactly those
     literals the same charges and at least the same domain prunings
     recur, so the bound is at least as large and the refutation stands:
     cost conflict sets obey the same CBJ contract as wipeout ones, and
     supersets remain valid.
   - A nogood learned while an incumbent of cost B exists means "no
     completion holding these literals costs < B".  B only decreases and
     is always achieved by the stored incumbent, so replaying the nogood
     can only skip solutions that do not improve on the final answer.
     With no incumbent (unsatisfiable networks) every nogood is a plain
     constraint nogood, as in Cdl.
   - A solution leaf is treated as a refutation blamed on every level:
     the search resumes with the chronologically previous value, which
     keeps it exhaustive below the pruning bound. *)

module Trace = Mlo_obs.Trace
open Solver

type config = {
  bound_slack : float;
  race_seed : bool;
  preprocess : Solver.preprocess;
  learn_limit : int;
  max_checks : int option;
}

let default_config =
  {
    bound_slack = 0.0;
    race_seed = false;
    preprocess = Solver.No_preprocess;
    learn_limit = 4000;
    max_checks = None;
  }

exception Abort

let cost_of ~costs a =
  let total = ref 0.0 in
  Array.iteri (fun i v -> total := !total +. costs.(i).(v)) a;
  !total

let lower_bound ~costs ~assignment ~live =
  let total = ref 0.0 in
  Array.iteri
    (fun i row ->
      if assignment.(i) >= 0 then total := !total +. row.(assignment.(i))
      else begin
        let m = ref infinity in
        Array.iteri (fun v c -> if live i v && c < !m then m := c) row;
        total := !total +. !m
      end)
    costs;
  !total

(* Add [b]'s counters into the mutable [a] (same variable universe):
   used to fold the seeding race's effort into the engine's stats. *)
let merge_into (a : Stats.t) (b : Stats.t) =
  a.Stats.nodes <- a.Stats.nodes + b.Stats.nodes;
  a.Stats.checks <- a.Stats.checks + b.Stats.checks;
  a.Stats.backtracks <- a.Stats.backtracks + b.Stats.backtracks;
  a.Stats.backjumps <- a.Stats.backjumps + b.Stats.backjumps;
  a.Stats.prunings <- a.Stats.prunings + b.Stats.prunings;
  a.Stats.learned <- a.Stats.learned + b.Stats.learned;
  a.Stats.forgotten <- a.Stats.forgotten + b.Stats.forgotten;
  a.Stats.restarts <- a.Stats.restarts + b.Stats.restarts;
  if b.Stats.max_depth > a.Stats.max_depth then
    a.Stats.max_depth <- b.Stats.max_depth;
  let fold dst src =
    Array.iteri
      (fun i c -> if i < Array.length dst then dst.(i) <- dst.(i) + c)
      src
  in
  fold a.Stats.nodes_by_depth b.Stats.nodes_by_depth;
  fold a.Stats.nodes_by_var b.Stats.nodes_by_var

let solve_compiled ?(config = default_config) ?cancel ?on_learn ?on_leaf ~costs
    comp =
  let n = Compiled.num_vars comp in
  if
    Float.is_nan config.bound_slack || config.bound_slack < 0.0
  then invalid_arg "Bnb: bound_slack must be >= 0";
  if Array.length costs <> n then invalid_arg "Bnb: costs rank mismatch";
  Array.iteri
    (fun i row ->
      if Array.length row <> Compiled.domain_size comp i then
        invalid_arg "Bnb: costs domain mismatch")
    costs;
  let stats = Stats.create () in
  Stats.ensure_hists stats n;
  let tr = Trace.enabled () in
  let t_wall = Clock.wall_s () and t_cpu = Clock.cpu_s () in
  let finish outcome =
    stats.Stats.elapsed_s <- Clock.wall_s () -. t_wall;
    stats.Stats.cpu_s <- Clock.cpu_s () -. t_cpu;
    { outcome; stats }
  in
  if n = 0 then finish (Solution [||])
  else begin
    let base =
      match config.preprocess with
      | Solver.No_preprocess -> Some None
      | Solver.Arc_consistency -> (
        match Ac2001.run comp with
        | Error _wiped -> None
        | Ok domains -> Some (Some domains))
    in
    match base with
    | None -> finish Unsatisfiable
    | Some reduced ->
      let store = Nogood.create ~limit:config.learn_limit comp in
      let assignment = Array.make n (-1) in
      let level_of = Array.make n (-1) in
      let var_at = Array.make n (-1) in
      let lw = Lset.words n in
      let conf = Lset.make_mat n n in
      let carry = Lset.make_mat 1 n in
      let domains =
        match reduced with
        | Some d -> Array.map Bitset.copy d
        | None ->
          Array.init n (fun i ->
              Bitset.create_full (Compiled.domain_size comp i))
      in
      let trail = Array.make n [] in
      let pruned_by = Lset.make_mat n n in

      (* Static full-domain minima: admissible for the live domains too
         (a minimum over a superset can only be smaller). *)
      let static_min =
        Array.map (fun row -> Array.fold_left Float.min infinity row) costs
      in
      let total_static = Array.fold_left ( +. ) 0.0 static_min in
      let acc = Array.make (n + 1) 0.0 in
      let rem = Array.make (n + 1) total_static in

      (* The incumbent: best complete consistent assignment so far, with
         its canonical cost as the pruning bound. *)
      let incumbent = ref None in
      let bound = ref infinity in
      let record_incumbent a =
        let cost = cost_of ~costs a in
        if cost < !bound then begin
          bound := cost;
          (match !incumbent with
          | Some b -> Array.blit a 0 b 0 n
          | None -> incumbent := Some (Array.copy a));
          stats.Stats.incumbents <- stats.Stats.incumbents + 1;
          (match on_leaf with None -> () | Some f -> f (Array.copy a));
          if tr then
            Trace.instant ~cat:"solver" "incumbent"
              ~args:[ ("cost", Trace.Float cost) ]
        end
      in

      let check_limit =
        match config.max_checks with Some m -> m | None -> max_int
      in
      let bump_check =
        match cancel with
        | None ->
          fun () ->
            stats.Stats.checks <- stats.Stats.checks + 1;
            if stats.Stats.checks > check_limit then raise Abort
        | Some cancelled ->
          fun () ->
            stats.Stats.checks <- stats.Stats.checks + 1;
            if stats.Stats.checks > check_limit then raise Abort;
            if stats.Stats.checks land 255 = 0 && cancelled () then raise Abort
      in

      (* Smallest live domain, ties by higher degree then lower index:
         the optimality proof visits the whole bounded space, so the
         fail-first order pays twice. *)
      let select_var () =
        let best = ref (-1) and bd = ref max_int and bdeg = ref (-1) in
        for v = 0 to n - 1 do
          if level_of.(v) < 0 then begin
            let d = Bitset.count domains.(v) in
            let deg = Compiled.degree comp v in
            if d < !bd || (d = !bd && deg > !bdeg) then begin
              best := v;
              bd := d;
              bdeg := deg
            end
          end
        done;
        if !best < 0 then invalid_arg "Bnb: no unassigned variable";
        !best
      in

      let max_dom = ref 1 in
      for i = 0 to n - 1 do
        if Compiled.domain_size comp i > !max_dom then
          max_dom := Compiled.domain_size comp i
      done;
      let md = !max_dom in
      let cand = Array.make (n * md) 0 in

      (* Live values minus banned ones, cheapest first (ties by lower
         value index): the greedy first descent doubles as the first
         incumbent. *)
      let fill_candidates var level =
        let off = level * md in
        let m0 = Bitset.fill_array domains.(var) cand off in
        let m = ref 0 in
        for k = 0 to m0 - 1 do
          let v = cand.(off + k) in
          if not (Nogood.banned store var v) then begin
            cand.(off + !m) <- v;
            incr m
          end
        done;
        let m = !m in
        let c = costs.(var) in
        for k = 1 to m - 1 do
          let v = cand.(off + k) in
          let s = c.(v) in
          let p = ref k in
          while
            !p > 0
            && (c.(cand.(off + !p - 1)) > s
                || (c.(cand.(off + !p - 1)) = s && cand.(off + !p - 1) > v))
          do
            cand.(off + !p) <- cand.(off + !p - 1);
            decr p
          done;
          cand.(off + !p) <- v
        done;
        m
      in

      let prune level j w =
        Bitset.remove domains.(j) w;
        trail.(level) <- (j, w) :: trail.(level);
        Lset.add pruned_by (j * lw) level;
        stats.Stats.prunings <- stats.Stats.prunings + 1
      in

      let undo_level level =
        List.iter (fun (j, w) -> Bitset.add domains.(j) w) trail.(level);
        List.iter
          (fun (j, _) -> Lset.remove pruned_by (j * lw) level)
          trail.(level);
        trail.(level) <- []
      in

      let fc_assign var v level =
        let nbrs = Compiled.neighbors comp var in
        let wiped = ref false in
        let k = ref 0 in
        while (not !wiped) && !k < Array.length nbrs do
          let j = nbrs.(!k) in
          incr k;
          if level_of.(j) < 0 then begin
            bump_check ();
            let row = Compiled.row comp (Compiled.handle comp var j) v in
            Bitset.iter_diff (fun w -> prune level j w) domains.(j) row;
            if Bitset.is_empty domains.(j) then begin
              wiped := true;
              Lset.union_below pruned_by (j * lw) conf (level * lw) level lw
            end
          end
        done;
        not !wiped
      in

      let held y w = assignment.(y) = w in
      let ng_prune level id ~var:x ~value:w =
        if level_of.(x) >= 0 || not (Bitset.mem domains.(x) w) then false
        else begin
          Bitset.remove domains.(x) w;
          trail.(level) <- (x, w) :: trail.(level);
          Lset.add pruned_by (x * lw) level;
          Nogood.iter_lits store id (fun y u ->
              if assignment.(y) = u then
                Lset.add pruned_by (x * lw) level_of.(y));
          stats.Stats.prunings <- stats.Stats.prunings + 1;
          Bitset.is_empty domains.(x)
        end
      in

      let ng_assign var v level =
        bump_check ();
        match
          Nogood.on_assign store ~var ~value:v ~held ~prune:(ng_prune level)
        with
        | Nogood.Quiet -> true
        | Nogood.Wiped x ->
          Lset.union_below pruned_by (x * lw) conf (level * lw) level lw;
          false
        | Nogood.Violated id ->
          Nogood.iter_lits store id (fun y u ->
              if assignment.(y) = u && level_of.(y) < level then
                Lset.add conf (level * lw) level_of.(y));
          false
      in

      (* The bound test for the node just entered (the assignment at
         [level] is in place and its lookahead succeeded).  When it
         fires, the cost conflict set is merged into this level's row
         and the caller treats the value like a wipeout. *)
      let bound_prune level =
        !bound < infinity
        && begin
             let lb = ref (acc.(level + 1) +. rem.(level + 1)) in
             for j = 0 to n - 1 do
               if level_of.(j) < 0 then begin
                 let c = costs.(j) in
                 let m = ref infinity in
                 Bitset.iter (fun v -> if c.(v) < !m then m := c.(v)) domains.(j);
                 if !m > static_min.(j) then lb := !lb +. (!m -. static_min.(j))
               end
             done;
             let lb = !lb in
             if lb *. (1.0 +. config.bound_slack) < !bound then false
             else begin
               for y = 0 to n - 1 do
                 let l = level_of.(y) in
                 if l >= 0 && l < level && costs.(y).(assignment.(y)) > static_min.(y)
                 then Lset.add conf (level * lw) l
               done;
               for j = 0 to n - 1 do
                 if level_of.(j) < 0 then begin
                   let c = costs.(j) in
                   let m = ref infinity in
                   Bitset.iter
                     (fun v -> if c.(v) < !m then m := c.(v))
                     domains.(j);
                   if !m > static_min.(j) then
                     Lset.union_below pruned_by (j * lw) conf (level * lw)
                       level lw
                 end
               done;
               stats.Stats.bounded <- stats.Stats.bounded + 1;
               if tr then
                 Trace.instant ~cat:"solver" "bound-prune"
                   ~args:
                     [
                       ("lb", Trace.Float lb);
                       ("incumbent", Trace.Float !bound);
                       ("level", Trace.Int level);
                     ];
               true
             end
           end
      in

      let lvars = Array.make n 0 in
      let lvals = Array.make n 0 in
      let llvls = Array.make n 0 in

      let dead_end level =
        let off = level * lw in
        Lset.keep_below conf off level lw;
        let cnt = ref 0 in
        Lset.iter
          (fun l ->
            let y = var_at.(l) in
            lvars.(!cnt) <- y;
            lvals.(!cnt) <- assignment.(y);
            llvls.(!cnt) <- l;
            incr cnt)
          conf off lw;
        if !cnt = 0 then -1
        else begin
          let forgotten0 = Nogood.forgotten store in
          Nogood.learn store ~n:!cnt ~vars:lvars ~vals:lvals ~levels:llvls;
          (match on_learn with
          | None -> ()
          | Some f ->
              f ~dead:var_at.(level)
                (Array.init !cnt (fun i -> (lvars.(i), lvals.(i)))));
          stats.Stats.learned <- stats.Stats.learned + 1;
          let dropped = Nogood.forgotten store - forgotten0 in
          if dropped > 0 then begin
            stats.Stats.forgotten <- stats.Stats.forgotten + dropped;
            if tr then
              Trace.instant ~cat:"solver" "forget"
                ~args:[ ("dropped", Trace.Int dropped) ]
          end;
          if tr then
            Trace.instant ~cat:"solver" "learn"
              ~args:[ ("size", Trace.Int !cnt); ("level", Trace.Int level) ];
          let target = llvls.(!cnt - 1) in
          if target = level - 1 then
            stats.Stats.backtracks <- stats.Stats.backtracks + 1
          else stats.Stats.backjumps <- stats.Stats.backjumps + 1;
          Lset.copy conf off carry 0 lw;
          Lset.remove carry 0 target;
          target
        end
      in

      (* search returns the backjump target level (-1 = the whole tree
         is exhausted).  Solution leaves record the incumbent and fail
         back chronologically, blamed on every level, so the search
         keeps exhausting the space below the bound. *)
      let rec search level =
        if level = n then begin
          record_incumbent assignment;
          Lset.clear carry 0 lw;
          for l = 0 to n - 2 do
            Lset.add carry 0 l
          done;
          n - 1
        end
        else begin
          if level > stats.Stats.max_depth then stats.Stats.max_depth <- level;
          let var = select_var () in
          var_at.(level) <- var;
          level_of.(var) <- level;
          Lset.copy pruned_by (var * lw) conf (level * lw) lw;
          let res = try_values var level (fill_candidates var level) 0 in
          level_of.(var) <- -1;
          var_at.(level) <- -1;
          res
        end

      and try_values var level m k =
        if k >= m then dead_end level
        else begin
          let v = cand.((level * md) + k) in
          stats.Stats.nodes <- stats.Stats.nodes + 1;
          stats.Stats.nodes_by_depth.(level) <-
            stats.Stats.nodes_by_depth.(level) + 1;
          stats.Stats.nodes_by_var.(var) <- stats.Stats.nodes_by_var.(var) + 1;
          if tr then
            Trace.instant ~cat:"solver" "decision"
              ~args:
                [
                  ("var", Trace.Int var);
                  ("value", Trace.Int v);
                  ("level", Trace.Int level);
                ];
          assignment.(var) <- v;
          acc.(level + 1) <- acc.(level) +. costs.(var).(v);
          rem.(level + 1) <- rem.(level) -. static_min.(var);
          let ok =
            fc_assign var v level && ng_assign var v level
            && not (bound_prune level)
          in
          if not ok then begin
            assignment.(var) <- -1;
            undo_level level;
            try_values var level m (k + 1)
          end
          else begin
            let target = search (level + 1) in
            assignment.(var) <- -1;
            undo_level level;
            if target < level then target
            else begin
              Lset.union_below carry 0 conf (level * lw) level lw;
              try_values var level m (k + 1)
            end
          end
        end
      in

      let seed_verdict =
        if not config.race_seed then None
        else begin
          let pcfg =
            {
              Portfolio.default_config with
              Portfolio.max_checks = config.max_checks;
            }
          in
          let r = Portfolio.race ~config:pcfg ~domains:1 ?cancel comp in
          merge_into stats r.Portfolio.stats;
          match r.Portfolio.outcome with
          | Solution a ->
            record_incumbent a;
            None
          | Unsatisfiable -> Some Unsatisfiable
          | Aborted -> None
        end
      in
      match seed_verdict with
      | Some verdict -> finish verdict
      | None ->
        let outcome =
          try
            Trace.with_span ~cat:"solver" "bnb-search"
              ~args:[ ("vars", Trace.Int n) ]
              (fun () ->
                ignore (search 0 : int);
                match !incumbent with
                | Some a -> Solution (Array.copy a)
                | None -> Unsatisfiable)
          with Abort -> (
            (* anytime: an interrupted search still returns its best
               consistent assignment when it has one *)
            match !incumbent with
            | Some a -> Solution (Array.copy a)
            | None -> Aborted)
        in
        (match outcome with
        | Solution a -> assert (Compiled.verify comp a)
        | Unsatisfiable | Aborted -> ());
        finish outcome
  end

let costs_of_network ~cost net =
  Array.init (Network.num_vars net) (fun i ->
      let name = Network.name net i in
      Array.init (Network.domain_size net i) (fun v -> cost name v))

let solve ?config ~cost net =
  solve_compiled ?config
    ~costs:(costs_of_network ~cost net)
    (Network.compile net)

let solve_components ?(config = default_config) ?domains ?on_event ~cost net =
  (* Same per-component event buffering as {!Cdl.solve_components}:
     workers fill distinct slots, the replay to [on_event] is serial and
     in component order, [Finished] closes each component's stream. *)
  let buffers =
    match on_event with
    | None -> [||]
    | Some _ -> Array.make (max 1 (Array.length (Network.components net))) None
  in
  let r =
    Solver.component_driver ?domains ~max_checks:config.max_checks
      ~run:(fun ~comp ~vars ~max_checks ~cancel sub ->
        let config = { config with max_checks } in
        let costs = costs_of_network ~cost sub in
        match on_event with
        | None -> solve_compiled ~config ?cancel ~costs (Network.compile sub)
        | Some _ ->
            let evs = ref [] in
            let on_learn ~dead lits =
              evs := Solver.Learned { dead; lits } :: !evs
            in
            let on_leaf assignment =
              evs := Solver.Incumbent { assignment } :: !evs
            in
            let r =
              solve_compiled ~config ?cancel ~on_learn ~on_leaf ~costs
                (Network.compile sub)
            in
            evs := Solver.Finished r.Solver.outcome :: !evs;
            buffers.(comp) <- Some (vars, List.rev !evs);
            r)
      net
  in
  (match on_event with
  | None -> ()
  | Some f ->
      Array.iteri
        (fun k slot ->
          match slot with
          | None -> ()
          | Some (vars, evs) -> List.iter (fun ev -> f ~comp:k ~vars ev) evs)
        buffers);
  r

let branch_and_bound ?config ?domains ?on_event ~cost net =
  solve_components ?config ?domains ?on_event ~cost net
