(* Racing portfolio: see portfolio.mli.  The race state is two atomics —
   a decided flag the engines poll through their [cancel] hooks, and a
   winner index claimed by compare-and-set so exactly one member
   publishes.  Everything the workers share (the compiled view, the
   member configs) is immutable; per-member results land in dedicated
   array slots. *)

module Trace = Mlo_obs.Trace

type config = {
  seed : int;
  max_checks : int option;
  cdl : Cdl.config;
  local : Local_search.config;
}

let default_config =
  {
    seed = 0;
    max_checks = None;
    cdl = Cdl.default_config;
    local = Local_search.default_config;
  }

let member_names = [| "cdl"; "enhanced"; "enhanced-ac"; "local-search" |]

type report = {
  outcome : Solver.outcome;
  stats : Stats.t;
  winner : string option;
}

(* Stochastic member's effort, folded into the merged stats: one
   reassignment step is the closest analogue of a node. *)
let stats_of_steps steps =
  let s = Stats.create () in
  s.Stats.nodes <- steps;
  s

let race ?(config = default_config) ?domains ?cancel ?on_learn comp =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Mlo_support.Pool.default_domains ()
  in
  let nmembers = Array.length member_names in
  let t_wall = Clock.wall_s () and t_cpu = Clock.cpu_s () in
  Trace.with_span ~cat:"solver" "portfolio"
    ~args:
      [
        ("members", Trace.Int nmembers);
        ("domains", Trace.Int (min domains nmembers));
      ]
  @@ fun () ->
  let decided = Atomic.make false in
  let winner = Atomic.make (-1) in
  let aborted_race () = match cancel with Some c -> c () | None -> false in
  let member_cancel () = Atomic.get decided || aborted_race () in
  let outcomes : Solver.outcome option array = Array.make nmembers None in
  let member_stats = Array.make nmembers None in
  let cdl_learned = ref [] in
  let claim k outcome =
    outcomes.(k) <- Some outcome;
    let decisive =
      match outcome with
      | Solver.Solution _ | Solver.Unsatisfiable -> true
      | Solver.Aborted -> false
    in
    if decisive && Atomic.compare_and_set winner (-1) k then
      Atomic.set decided true
  in
  let run k =
    if not (member_cancel ()) then
      match member_names.(k) with
      | "cdl" ->
        let cfg = { config.cdl with Cdl.max_checks = config.max_checks } in
        (* Only the cdl worker's Domain touches this buffer; it is
           replayed to the caller after the race, and only when cdl
           actually won, so a cancelled loser leaks no partial log. *)
        let learned = ref [] in
        let on_learn ~dead lits = learned := (dead, lits) :: !learned in
        let r =
          Cdl.solve_compiled ~config:cfg ~cancel:member_cancel ~on_learn comp
        in
        cdl_learned := List.rev !learned;
        member_stats.(k) <- Some r.Solver.stats;
        claim k r.Solver.outcome
      | "enhanced" ->
        let cfg =
          { (Schemes.enhanced ~seed:config.seed ()) with
            Solver.max_checks = config.max_checks }
        in
        let r = Solver.solve_compiled ~config:cfg ~cancel:member_cancel comp in
        member_stats.(k) <- Some r.Solver.stats;
        claim k r.Solver.outcome
      | "enhanced-ac" ->
        let cfg =
          { (Schemes.enhanced_with_ac ~seed:(config.seed + 101) ()) with
            Solver.max_checks = config.max_checks }
        in
        let r = Solver.solve_compiled ~config:cfg ~cancel:member_cancel comp in
        member_stats.(k) <- Some r.Solver.stats;
        claim k r.Solver.outcome
      | _ ->
        (* local-search: a Solution decides the race, a Stuck run proves
           nothing and simply records its effort *)
        let cfg = { config.local with Local_search.seed = config.seed + 211 } in
        let r = Local_search.solve_compiled ~config:cfg ~cancel:member_cancel comp in
        member_stats.(k) <- Some (stats_of_steps r.Local_search.steps);
        (match r.Local_search.outcome with
        | Local_search.Solution a -> claim k (Solver.Solution a)
        | Local_search.Stuck _ -> outcomes.(k) <- Some Solver.Aborted)
  in
  Mlo_support.Pool.parallel_iter ~domains:(min domains nmembers) nmembers run;
  let stats = Stats.create () in
  let merged =
    Array.fold_left
      (fun acc s -> match s with None -> acc | Some s -> Stats.add acc s)
      stats member_stats
  in
  merged.Stats.elapsed_s <- Clock.wall_s () -. t_wall;
  merged.Stats.cpu_s <- Clock.cpu_s () -. t_cpu;
  let w = Atomic.get winner in
  let outcome =
    if w < 0 then Solver.Aborted
    else
      match outcomes.(w) with
      | Some o -> o
      | None -> Solver.Aborted (* unreachable: claimed means recorded *)
  in
  (match outcome with
  | Solver.Solution a -> assert (Compiled.verify comp a)
  | Solver.Unsatisfiable | Solver.Aborted -> ());
  let winner_name = if w < 0 then None else Some member_names.(w) in
  (match (on_learn, winner_name) with
  | Some f, Some "cdl" ->
      List.iter (fun (dead, lits) -> f ~dead lits) !cdl_learned
  | _ -> ());
  Trace.instant ~cat:"solver" "portfolio-winner"
    ~args:
      [
        ( "winner",
          Trace.Str (match winner_name with Some n -> n | None -> "none") );
      ];
  { outcome; stats = merged; winner = winner_name }

let solve ?config ?domains net =
  let r = race ?config ?domains (Network.compile net) in
  { Solver.outcome = r.outcome; stats = r.stats }
