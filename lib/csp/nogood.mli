(** Learned-nogood store with watched-value propagation.

    A nogood is a set of [(variable, value)] literals recording that no
    solution of the network holds all of them simultaneously.  The
    conflict-driven engine ({!Cdl}) derives one from every dead end — the
    assignments at the levels of the conflict set the backjumper already
    computes — and feeds assignments back through {!on_assign} so earlier
    conflicts prune later subtrees.

    {2 Watched values}

    Each stored nogood watches two of its literals.  A literal is {e
    held} when its variable is currently assigned its value; the store
    only needs to react when a watched literal becomes held, so
    {!on_assign} walks just the nogoods watching [(var, value)].  Each
    one first tries to move the fired watch to another non-held literal;
    when none exists every literal but the second watch is held, and the
    nogood forces that last value out of its variable's candidate set (a
    propagation, blamed on the levels of all held literals via the
    [prune] callback) or — if the second watch is held too — reports the
    nogood violated outright.  Watches never need maintenance on
    backtracking or restarts: unassignment only un-holds literals.

    Missing a propagation is sound (nogoods only prune redundant search;
    the engine's own consistency checks still reject every non-solution),
    so the store is free to stop scanning early and to forget nogoods.

    {2 Unit nogoods and forgetting}

    Single-literal nogoods are globally sound value bans kept outside the
    watch store as per-variable bitsets ({!banned}) and are never
    forgotten.  The watched store is bounded: when learning would exceed
    the limit it drops the worst half — largest literal count first
    (a nogood's literal count equals its LBD here: conflict sets hold one
    literal per level), ties broken by lowest activity, binaries last —
    so {!size} never exceeds the limit. *)

type t

val create : ?limit:int -> Compiled.t -> t
(** Empty store over the compiled network's variables and value indices.
    [limit] bounds the number of watched (size >= 2) nogoods retained
    (default 4000; clamped to at least 2). *)

(** Outcome of {!on_assign}. *)
type event =
  | Quiet  (** no wipeout, no violation *)
  | Wiped of int
      (** propagation emptied this variable's candidate set (the [prune]
          callback returned [true]) *)
  | Violated of int
      (** every literal of this nogood is held; the holder's levels are a
          conflict set ({!iter_lits}) *)

val learn :
  t -> n:int -> vars:int array -> vals:int array -> levels:int array -> unit
(** Record the nogood formed by the first [n] entries of [vars]/[vals]
    (copied; caller keeps ownership).  [levels] gives each literal's
    assignment level at learn time: the two deepest become the initial
    watches, so the watches go non-held as soon as the engine backjumps.
    [n = 1] records a permanent ban instead; [n = 0] is a caller error
    (an empty conflict set means unsatisfiable — handle it before
    learning).  May trigger a reduction to stay within the store limit. *)

val on_assign :
  t ->
  var:int ->
  value:int ->
  held:(int -> int -> bool) ->
  prune:(int -> var:int -> value:int -> bool) ->
  event
(** Propagate the assignment [var := value] through the nogoods watching
    that literal.  [held v w] must say whether variable [v] is currently
    assigned value [w] (the just-made assignment included).  [prune id
    ~var ~value] must remove [value] from [var]'s candidate set, blaming
    the levels of the held literals of nogood [id] (walk them with
    {!iter_lits}), and return whether the candidate set wiped out.  The
    store cannot see candidate sets: the callback must itself skip (and
    return [false] for) variables that are assigned or whose set no
    longer contains the value.  The whole watch list is scanned; a
    violation outranks a wipeout in the returned event. *)

val iter_lits : t -> int -> (int -> int -> unit) -> unit
(** [iter_lits t id f] applies [f var value] to every literal of the
    stored nogood [id] (valid inside the {!on_assign} callbacks and for
    the id of a {!event} just returned). *)

val banned : t -> int -> int -> bool
(** [banned t var value] holds after a unit nogood on [(var, value)]. *)

val ban : t -> var:int -> value:int -> unit
(** Record a unit nogood directly (counted as learned). *)

val bump : t -> int -> unit
(** Raise nogood [id]'s activity (conflict participation). *)

val decay : t -> unit
(** Geometrically decay all nogood activities (by scaling the bump
    increment, VSIDS-style; rescales on overflow). *)

val reduce : t -> limit:int -> unit
(** Forget watched nogoods down to at most [limit] (largest first, ties
    by lowest activity, binaries last), rebuilding the watch lists.  The
    engine calls this at restart boundaries. *)

val size : t -> int
(** Watched nogoods currently stored (bans excluded). *)

val learned : t -> int
(** Total nogoods ever learned (bans included). *)

val forgotten : t -> int
(** Total nogoods dropped by reductions. *)
