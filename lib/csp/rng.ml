type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let x = Int64.to_int (bits64 t) land max_int in
  x mod bound

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffled_init t n =
  let a = Array.init n Fun.id in
  shuffle t a;
  a

let split t = { state = mix (Int64.logxor (bits64 t) 0xD6E8FEB86659FD93L) }
