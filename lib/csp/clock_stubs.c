/* Thin clock_gettime wrappers returning nanoseconds as an OCaml int.

   Returning a tagged immediate (not a boxed int64 or float) keeps a
   clock read allocation-free; 63-bit nanoseconds overflow after ~146
   years of uptime, which is not a concern for either clock.  The
   [noalloc] externals in clock.ml rely on these never touching the
   OCaml heap. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value mlo_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat) ts.tv_sec * 1000000000 + ts.tv_nsec);
}

CAMLprim value mlo_clock_cputime_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return Val_long((intnat) ts.tv_sec * 1000000000 + ts.tv_nsec);
}
