(** Conflict-driven solving: nogood learning, VSIDS ordering, Luby
    restarts.

    The systematic engines in {!Solver} compute a conflict set at every
    dead end and throw it away after backjumping.  This engine keeps
    them: each dead end is recorded as a {!Nogood} over the culprit
    assignments, propagated against later subtrees through watched
    values, so the search never revisits a refuted combination.  On top
    of learning it runs:

    - {b VSIDS-style ordering} — per-variable and per-(variable, value)
      activities, bumped for every conflict participant and decayed
      geometrically (increment divided by 0.95 per conflict), pick the
      unassigned variable with the highest activity (ties: smaller
      current domain, then lower index) and its values by highest value
      activity (ties: lower value).  Variable activities start at the
      static degree, so the first descent mirrors the paper's
      most-constraining order.
    - {b Luby restarts} — run [i] aborts after [restart_base * luby i]
      conflicts and restarts from the root, keeping the learned store
      and the activities.  After [restarts] bounded runs the final run
      is unbounded, so the search is complete: each run is itself a
      complete conflict-directed search, and learning only removes
      refuted subtrees.

    Lookahead is always forward checking; conflict sets are the
    conflict-directed ones.  Solutions are verified against the compiled
    network before being returned (learning is pruning-only, so this is
    an internal assertion, not a filter).  Emits [solver] trace instants
    for [learn], [forget] and [restart] events. *)

type config = {
  restarts : int;
      (** Luby-bounded runs before the final unbounded one; 0 disables
          restarting *)
  restart_base : int;  (** conflicts per Luby unit *)
  learn_limit : int;  (** bound on the watched-nogood store *)
  preprocess : Solver.preprocess;  (** optional AC-2001, as in {!Solver} *)
  max_checks : int option;  (** abort after this many checks *)
}

val default_config : config
(** 50 bounded runs, base 100 conflicts, 4000 learned nogoods, no
    preprocessing, no check limit. *)

val solve_compiled :
  ?config:config ->
  ?cancel:(unit -> bool) ->
  ?on_learn:(dead:int -> (int * int) array -> unit) ->
  Compiled.t ->
  Solver.result
(** Run the conflict-driven search on a compiled view.  [cancel] is the
    same cooperative hook as {!Solver.solve_compiled} (polled on the
    check counter).  [on_learn] receives every learned nogood as its
    [(variable, value)] literal array (a fresh copy) together with the
    variable whose domain wiped at the dead end — the soundness
    property tests pin each one against the brute-forced solution set,
    and proof logging records both.
    [stats.learned]/[forgotten]/[restarts] report the learning
    activity. *)

val solve : ?config:config -> 'a Network.t -> Solver.result
(** {!solve_compiled} on [Network.compile net]. *)

val solve_components :
  ?config:config ->
  ?domains:int ->
  ?on_event:(comp:int -> vars:int array -> Solver.event -> unit) ->
  'a Network.t ->
  Solver.result
(** Component-wise conflict-driven search via {!Solver.component_driver}
    (independent learned stores per component).  [on_event] receives
    each component's {!Solver.event} stream — buffered during the solve
    and replayed serially in component order after the driver returns,
    so it is safe under [domains > 1]; [Finished] is always a
    component's last event, and components that never ran (cancelled
    siblings) deliver nothing. *)
