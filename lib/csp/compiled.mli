(** Compiled (dense) view of a binary constraint network.

    Produced by {!Network.compile}; consumed by the solver's hot path and
    AC-2001.  Value-index based only — domain values stay behind in the
    network.  Everything here is read-only and allocation-free:

    - an n x n matrix of directed constraint handles with both
      orientations precomputed (no transposition on the hot path);
    - per (handle, value) support rows stored as int-word bitsets in the
      {!Bitset} word layout, enabling word-parallel pruning;
    - per (handle, value) precomputed support counts;
    - neighbour int arrays.

    The view is a snapshot: mutating the source network after compiling
    does not update it ({!Network.compile} re-compiles as needed). *)

type t

val make :
  dom_size:int array ->
  neighbors:int array array ->
  handle:int array ->
  rows:Bitset.row array array ->
  supcnt:int array array ->
  t
(** Assembles a view from its parts; used by {!Network.compile}, which
    guarantees their consistency.  [handle.((i * n) + j)] is the directed
    handle of the pair [(i, j)] or [-1]; [rows.(h).(vi)] the supports of
    [i = vi] over [j]'s domain; [supcnt] its popcounts. *)

val num_vars : t -> int
val domain_size : t -> int -> int

val neighbors : t -> int -> int array
(** Variables sharing a constraint with the given one, ascending.  The
    returned array is the view's own storage: do not mutate. *)

val degree : t -> int -> int

val handle : t -> int -> int -> int
(** Directed handle of the pair, or [-1] if unconstrained. *)

val constrained : t -> int -> int -> bool

val num_handles : t -> int
(** Number of directed handles (twice the number of constraints). *)

val row : t -> int -> int -> Bitset.row
(** [row t h vi] is the support row of value [vi] under directed handle
    [h] — a borrowed bitset over the target variable's domain (do not
    mutate). *)

val allowed : t -> int -> int -> int -> int -> bool
(** Same contract as {!Network.allowed}, in O(1). *)

val support_count : t -> int -> int -> int -> int
(** Same contract as {!Network.support_count}, in O(1). *)

val components : t -> int array array
(** Connected components of the constraint graph.  Each component lists
    its variables ascending; components are ordered by smallest member.
    Unconstrained variables are singleton components.  Variables in
    different components share no constraint, so the network's solutions
    are exactly the products of per-component solutions. *)

val verify : t -> int array -> bool
(** Complete assignment check, mirroring {!Network.verify}. *)
