(** Sets of search levels as word masks, stored as rows of a flat int
    matrix (one allocation per solve, not one per level).

    Every operation takes the backing array, the row's word offset, and —
    where the row extent matters — the per-row word count [lw].  The
    conflict machinery of {!Solver} and {!Cdl} touches these on every
    node: same set semantics as an [Int_set], no allocation.  Rows are
    [words n] ints for level universe [0 .. n-1]. *)

val bits : int
(** Members per word (63: the OCaml int payload). *)

val words : int -> int
(** Words per row for a universe of [n] levels (at least 1). *)

val make_mat : int -> int -> int array
(** [make_mat rows n] allocates a zeroed matrix of [rows] rows over the
    level universe [0 .. n-1]. *)

val clear : int array -> int -> int -> unit
(** [clear s off lw] empties the row at word offset [off]. *)

val add : int array -> int -> int -> unit
(** [add s off l] inserts level [l]. *)

val remove : int array -> int -> int -> unit

val mem : int array -> int -> int -> bool

val copy : int array -> int -> int array -> int -> int -> unit
(** [copy src soff dst doff lw] overwrites the destination row. *)

val union_below : int array -> int -> int array -> int -> int -> int -> unit
(** [union_below src soff dst doff limit lw] is
    [dst := dst U (src /\ [0, limit))]. *)

val keep_below : int array -> int -> int -> int -> unit
(** [keep_below s off limit lw] drops members [>= limit] in place. *)

val max_elt : int array -> int -> int -> int
(** Highest member of the row, or [-1] when empty. *)

val iter : (int -> unit) -> int array -> int -> int -> unit
(** [iter f s off lw] applies [f] to every member, ascending. *)

val count : int array -> int -> int -> int
(** Cardinality of the row. *)
