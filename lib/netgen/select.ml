module Loop_nest = Mlo_ir.Loop_nest
module Program = Mlo_ir.Program

module Locality = Mlo_layout.Locality

let best_variant nest lookup =
  match Variants.of_nest nest with
  | [] -> invalid_arg "Select.best_variant: nest has no legal variant"
  | first :: rest ->
    let score (v : Variants.t) = Locality.nest_score lookup v.Variants.nest in
    let best, _ =
      List.fold_left
        (fun (bv, bs) v ->
          let s = score v in
          if s > bs then (v, s) else (bv, bs))
        (first, score first)
        rest
    in
    best

let restructure prog lookup =
  let nests =
    Array.to_list (Program.nests prog)
    |> List.map (fun nest -> (best_variant nest lookup).Variants.nest)
  in
  let arrays = Array.to_list (Program.arrays prog) in
  Program.make ~name:(Program.name prog) arrays nests
