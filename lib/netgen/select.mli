(** Choosing the loop restructuring once layouts are fixed.

    Code generation (and our cache simulation) needs a concrete loop
    order for every nest.  Given the final per-array layouts, each nest
    independently picks the dependence-legal permutation with the best
    total locality score — the loop-transformation half of the paper's
    combined loop+data optimization. *)

val best_variant :
  Mlo_ir.Loop_nest.t ->
  (string -> Mlo_layout.Layout.t option) ->
  Variants.t
(** [best_variant nest lookup] is the legal restructuring of [nest] whose
    accesses score best under the layouts given by [lookup]; ties favour
    the original loop order. *)

val restructure :
  Mlo_ir.Program.t ->
  (string -> Mlo_layout.Layout.t option) ->
  Mlo_ir.Program.t
(** Applies {!best_variant} to every nest of the program. *)
