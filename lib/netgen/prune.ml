module Network = Mlo_csp.Network
module Relation = Mlo_csp.Relation
module Locality = Mlo_analysis.Locality
module Trace = Mlo_obs.Trace

type info = {
  before : int;
  after : int;
  per_array : (string * int) list;
  removed : (int * int * int) list;
  survivors : int array array;
}

let total i = i.before - i.after

(* sorted ascending int lists *)
let rec subset xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' ->
    if x = y then subset xs' ys'
    else if x > y then subset xs ys'
    else false

let apply ?geometry (b : Build.t) =
  Trace.with_span ~cat:"netgen" "prune-dominated" @@ fun () ->
  let net = b.Build.network in
  let n = Network.num_vars net in
  let profile = Locality.profiler ?geometry b.Build.program in
  let keep = Array.init n (fun i -> Array.make (Network.domain_size net i) true) in
  let per_array = ref [] in
  let removals = ref [] in
  for i = 0 to n - 1 do
    let name = Network.name net i in
    let dom = Network.domain net i in
    let d = Array.length dom in
    let profiles =
      Array.map (fun layout -> profile ~array_name:name ~layout) dom
    in
    (* per-constraint support lists, i viewed as the left side *)
    let supports =
      List.map
        (fun j ->
          match Network.relation net i j with
          | Some rel -> Array.init d (Relation.supports_of_left rel)
          | None -> Array.make d [])
        (Network.neighbors net i)
    in
    let dominates v1 v2 =
      let p1 = profiles.(v1) and p2 = profiles.(v2) in
      let le = ref true and lt = ref false in
      Array.iteri
        (fun k x ->
          if x > p2.(k) then le := false else if x < p2.(k) then lt := true)
        p1;
      !le && !lt
      && List.for_all (fun sup -> subset sup.(v2) sup.(v1)) supports
    in
    let removed = ref 0 in
    for v2 = 0 to d - 1 do
      let v1 = ref 0 in
      while keep.(i).(v2) && !v1 < d do
        if !v1 <> v2 && dominates !v1 v2 then begin
          keep.(i).(v2) <- false;
          incr removed
        end;
        incr v1
      done
    done;
    (* Record every removed value with a *kept* dominating witness for
       the certificate log.  The removal loop accepts any dominator;
       a kept one always exists because dominance is a strict partial
       order (follow dominators upward — the chain ends at a maximal,
       hence kept, value that dominates transitively). *)
    for v2 = 0 to d - 1 do
      if not keep.(i).(v2) then begin
        let w = ref (-1) in
        for v1 = d - 1 downto 0 do
          if keep.(i).(v1) && dominates v1 v2 then w := v1
        done;
        assert (!w >= 0);
        removals := (i, v2, !w) :: !removals
      end
    done;
    if !removed > 0 then per_array := (name, !removed) :: !per_array
  done;
  let before = Network.total_domain_size net in
  let pruned = Network.restrict_domains net keep in
  let after = Network.total_domain_size pruned in
  Trace.counter ~cat:"netgen" "dominance-pruned"
    [ ("values", float_of_int (before - after)) ];
  let survivors =
    Array.init n (fun i ->
        let kept = ref [] in
        for v = Array.length keep.(i) - 1 downto 0 do
          if keep.(i).(v) then kept := v :: !kept
        done;
        Array.of_list !kept)
  in
  ( { b with Build.network = pruned },
    {
      before;
      after;
      per_array =
        List.sort (fun (a, _) (b, _) -> String.compare a b) !per_array;
      removed = List.rev !removals;
      survivors;
    } )
