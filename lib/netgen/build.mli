(** Constraint-network extraction from a program (paper Section 3).

    The network has one variable per array.  Domains collect every layout
    demanded by some legal restructuring of some nest (plus row-major as
    the always-available default).  For each nest and each pair of arrays
    it constrains, each legal restructuring contributes one allowed layout
    pair — "the best layout choice under a given loop restructuring". *)

type t = {
  network : Mlo_layout.Layout.t Mlo_csp.Network.t;
  program : Mlo_ir.Program.t;
  constrained_arrays : string array;
      (** network variable index -> array name (declaration order) *)
}

val build :
  ?relax:bool ->
  ?candidates:(string -> Mlo_layout.Layout.t list) ->
  Mlo_ir.Program.t ->
  t
(** Extracts the network.

    [candidates] supplies additional domain layouts per array (beyond the
    demanded ones and the row-major default) — the candidate palette an
    implementation enumerates per array; defaults to none.  Layouts of
    the wrong rank are ignored.

    Restructurings that demand a layout for only one array of a
    co-accessed pair constrain only that side: the other side is
    wildcarded over its {e meaningful} layouts — everything any
    restructuring of any nest demands of it, plus its default — because
    under that restructuring any of those choices is equally good.  A
    restructuring demanding nothing for either array of a pair allows
    any combination of their meaningful layouts.  Padding layouts
    supplied only through [candidates] therefore never appear in any
    allowed pair: they enlarge the search space without ever being part
    of a solution of a constrained variable.

    With [relax] (default false) every constraint additionally allows the
    (row-major, row-major) compromise pair, guaranteeing satisfiability at
    the cost of admitting choices no restructuring asked for.  Arrays
    appearing in no constraint still get a variable (their assignment is
    free). *)

val weighted :
  ?relax:bool ->
  ?candidates:(string -> Mlo_layout.Layout.t list) ->
  Mlo_ir.Program.t ->
  t * Mlo_layout.Layout.t Mlo_csp.Weighted.t
(** Like {!build}, and additionally weights every allowed pair by the
    total cost ({!Mlo_ir.Cost.nest_cost}) of the nests whose restructurings
    proposed it — the paper's first future-work extension.  Wildcarded
    pairs get the same nest weight as demanded ones. *)

val var_of_array : t -> string -> int
(** Network variable index of an array.  Raises [Not_found]. *)

val assignment_layouts : t -> int array -> (string * Mlo_layout.Layout.t) list
(** Decodes a solver assignment into per-array layouts, declaration
    order. *)

val lookup : t -> int array -> string -> Mlo_layout.Layout.t option
(** [lookup t assignment name] is the layout the assignment gives to
    [name] ([None] if the name is unknown). *)

val components : t -> string array array
(** Connected components of the extracted network's constraint graph,
    as array names ({!Mlo_csp.Network.components} decoded through the
    variable map).  Arrays in different components never co-occur in a
    constraining nest, so their layouts are chosen independently;
    singleton components are arrays whose assignment is free. *)

val shards :
  ?relax:bool ->
  ?candidates:(string -> Mlo_layout.Layout.t list) ->
  Mlo_ir.Program.t ->
  t array
(** Sharded extraction for large programs: partitions the arrays into
    the connected components of the "co-referenced in some nest"
    relation (computed from the program alone, before any network
    exists) and builds one independent network per part, each from only
    the nests of that part.  The shard networks are exactly the
    components {!build} would produce — identical domains, layout
    orders, and constraints, property-tested in test/test_netgen.ml —
    but peak memory follows the largest component rather than the whole
    program, because only one shard's network and transient pair tables
    are live at a time.  Shards are ordered by the declaration position
    of their first array; nests touching no array belong to no shard.
    An array referenced by no nest — a free variable in the whole
    network — becomes a singleton constraint-free shard whose [program]
    field is the parent program (no nest-less sub-program exists). *)
