(** Sound dominance pruning of layout domains.

    A candidate layout [m2] of an array is dropped when some other value
    [m1] of the same domain

    - has a component-wise [<=] static miss estimate
      ({!Mlo_analysis.Locality.profiler}) in {e every} nest the array
      appears in, strictly [<] in at least one — so no cost model built
      on the analyzer ever prefers [m2] — and
    - is {e substitutable} for [m2] in every constraint: [m1]'s allowed
      partners form a superset of [m2]'s, so any solution through [m2]
      maps to one through [m1].

    The second condition makes the pruning sound for the CSP:
    satisfiability is unchanged (qcheck-enforced across the five
    benchmarks in [test/test_locality.ml]).  Padding candidates — supplied
    only through candidate palettes and therefore in no allowed pair —
    are the canonical casualties.  Domains are never emptied: dominance
    is a strict partial order, so maximal values always survive. *)

type info = {
  before : int;  (** total domain size entering the prune *)
  after : int;  (** total domain size after *)
  per_array : (string * int) list;
      (** arrays that lost values, with the count removed; ascending by
          name *)
  removed : (int * int * int) list;
      (** every removal as [(var, value, witness)] in original value
          indices, where [witness] is a {e kept} value of the same
          variable that dominates [value] — the justification recorded
          in solver certificates *)
  survivors : int array array;
      (** [survivors.(i).(k)] is the original value index of the pruned
          network's value [k] of variable [i] — the map certificates use
          to translate post-prune solver output back to original
          indices *)
}

val total : info -> int
(** Values removed: [before - after]. *)

val apply :
  ?geometry:Mlo_cachesim.Cache.geometry -> Build.t -> Build.t * info
(** Prune every variable's domain of dominated values and re-index the
    network ({!Mlo_csp.Network.restrict_domains}).  [geometry] is the
    cache level the miss profiles are computed for (default: the paper's
    L1).  The returned build shares the program and variable order with
    the input; only domains (and relations, re-indexed) shrink.  Emits a
    [dominance-pruned] trace counter with the removed-value total. *)
