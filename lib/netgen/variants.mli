(** Loop-restructuring variants of a nest and the layouts they demand.

    Each constraint pair in the paper's network "represents the best
    layout choice under a given loop restructuring".  The restructurings
    considered are the dependence-legal loop permutations of the nest;
    for each one, every referenced array gets the layout that best serves
    the nest's accesses to it under the permuted iteration order. *)

type t = {
  perm : int array;  (** permutation applied (new depth -> old depth) *)
  nest : Mlo_ir.Loop_nest.t;  (** the restructured nest *)
}

val of_nest : Mlo_ir.Loop_nest.t -> t list
(** Dependence-legal restructurings, identity first
    (see {!Mlo_ir.Dependence.legal_permutations}). *)

val demanded_layout :
  Mlo_ir.Loop_nest.t -> string -> Mlo_layout.Layout.t option
(** [demanded_layout nest name] is the best layout for array [name] under
    the nest's {e current} loop order: the candidate layout maximizing the
    summed locality score of the nest's references to the array.  [None]
    if the nest does not reference the array or no reference constrains
    the layout (pure temporal reuse). *)

val layouts_for : t -> (string * Mlo_layout.Layout.t) list
(** Demanded layouts for every array the variant's nest references (arrays
    with no layout demand omitted), in first-touch order. *)
