module Program = Mlo_ir.Program
module Array_info = Mlo_ir.Array_info
module Loop_nest = Mlo_ir.Loop_nest
module Cost = Mlo_ir.Cost
module Layout = Mlo_layout.Layout
module Network = Mlo_csp.Network
module Weighted = Mlo_csp.Weighted

type t = {
  network : Layout.t Network.t;
  program : Program.t;
  constrained_arrays : string array;
}

let add_unique layout layouts =
  if List.exists (Layout.equal layout) layouts then layouts
  else layouts @ [ layout ]

(* For every nest: its legal variants, each with the touched-array list
   and the per-array layout demands. *)
let nest_demands prog =
  Array.to_list (Program.nests prog)
  |> List.map (fun nest ->
         let variants = Variants.of_nest nest in
         let touched = Loop_nest.arrays_touched nest in
         (nest, touched, List.map Variants.layouts_for variants))

let collect_domains prog demands candidates =
  let arrays = Program.arrays prog in
  let table = Hashtbl.create 16 in
  Array.iter
    (fun info ->
      let rank = Array_info.rank info in
      let name = Array_info.name info in
      let default = if rank = 1 then Layout.trivial else Layout.row_major rank in
      let extra =
        List.filter (fun l -> Layout.rank l = rank) (candidates name)
      in
      Hashtbl.replace table name
        (List.fold_left (fun acc l -> add_unique l acc) [ default ] extra))
    arrays;
  List.iter
    (fun (_nest, _touched, per_variant) ->
      List.iter
        (fun layouts ->
          List.iter
            (fun (name, layout) ->
              let cur = Hashtbl.find table name in
              Hashtbl.replace table name (add_unique layout cur))
            layouts)
        per_variant)
    demands;
  table

let build_internal ?(relax = false) ?(candidates = fun _ -> []) ~make_sink prog =
  let demands = nest_demands prog in
  let domains_tbl = collect_domains prog demands candidates in
  let arrays = Program.arrays prog in
  let names = Array.map Array_info.name arrays in
  let domains =
    Array.map (fun n -> Array.of_list (Hashtbl.find domains_tbl n)) names
  in
  let network = Network.create ~names ~domains in
  let var_of name =
    let rec go i =
      if i >= Array.length names then raise Not_found
      else if String.equal names.(i) name then i
      else go (i + 1)
    in
    go 0
  in
  let layout_index name layout =
    let dom = Hashtbl.find domains_tbl name in
    let rec go i = function
      | [] -> raise Not_found
      | l :: rest -> if Layout.equal l layout then i else go (i + 1) rest
    in
    go 0 dom
  in
  (* The layouts an array could meaningfully take: everything some
     restructuring demands for it, plus its default (domain index 0).
     Wildcards range over this set, not the full (possibly padded)
     domain: a restructuring that leaves an array free is indifferent
     among the layouts the rest of the program might ask of it. *)
  let meaningful = Hashtbl.create 16 in
  List.iter
    (fun (_nest, _touched, per_variant) ->
      List.iter
        (fun layouts ->
          List.iter
            (fun (name, layout) ->
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt meaningful name)
              in
              let idx = layout_index name layout in
              if not (List.mem idx cur) then
                Hashtbl.replace meaningful name (idx :: cur))
            layouts)
        per_variant)
    demands;
  let meaningful_indices name =
    let demanded = Option.value ~default:[] (Hashtbl.find_opt meaningful name) in
    if List.mem 0 demanded then demanded else 0 :: demanded
  in
  (* Streaming pair insertion: one nest's proposed pairs (concrete and
     wildcarded) at a time, keyed for idempotence, added to the network
     and handed to [sink] (the weighting hook) before the next nest's
     set is built — peak transient memory is the largest single nest's
     pair set, not the whole program's. *)
  let sink = make_sink network in
  List.iter
    (fun (nest, touched, per_variant) ->
      let pairs = Hashtbl.create 64 in
      let record ia va ib vb =
        let k = if ia < ib then (ia, va, ib, vb) else (ib, vb, ia, va) in
        Hashtbl.replace pairs k ()
      in
      List.iter
        (fun layouts ->
          let demand name = List.assoc_opt name layouts in
          let rec each_pair = function
            | [] -> ()
            | na :: rest ->
              List.iter
                (fun nb ->
                  let ia = var_of na and ib = var_of nb in
                  match (demand na, demand nb) with
                  | None, None ->
                    (* this restructuring is satisfied by any meaningful
                       layout combination of the pair *)
                    List.iter
                      (fun va ->
                        List.iter
                          (fun vb -> record ia va ib vb)
                          (meaningful_indices nb))
                      (meaningful_indices na)
                  | Some la, Some lb ->
                    record ia (layout_index na la) ib (layout_index nb lb)
                  | Some la, None ->
                    let va = layout_index na la in
                    List.iter (fun vb -> record ia va ib vb)
                      (meaningful_indices nb)
                  | None, Some lb ->
                    let vb = layout_index nb lb in
                    List.iter (fun va -> record ia va ib vb)
                      (meaningful_indices na))
                rest;
              each_pair rest
          in
          each_pair touched)
        per_variant;
      Hashtbl.iter
        (fun (i, vi, j, vj) () -> Network.add_allowed network i j [ (vi, vj) ])
        pairs;
      sink nest pairs)
    demands;
  if relax then
    List.iter
      (fun (i, j) ->
        let def name =
          let info = Program.find_array prog name in
          let rank = Array_info.rank info in
          let l = if rank = 1 then Layout.trivial else Layout.row_major rank in
          layout_index name l
        in
        Network.add_allowed network i j [ (def names.(i), def names.(j)) ])
      (Network.constraint_pairs network);
  { network; program = prog; constrained_arrays = names }

let no_sink _network _nest _pairs = ()

let build ?relax ?candidates prog =
  Mlo_obs.Trace.with_span ~cat:"netgen" "build"
    ~args:[ ("program", Mlo_obs.Trace.Str (Program.name prog)) ]
  @@ fun () ->
  build_internal ?relax ?candidates ~make_sink:(fun net -> no_sink net) prog

let weighted ?relax ?candidates prog =
  let w = ref None in
  let make_sink network =
    let ww = Weighted.create network in
    w := Some ww;
    fun nest pairs ->
      let cost = float_of_int (Cost.nest_cost nest) in
      Hashtbl.iter
        (fun (i, vi, j, vj) () -> Weighted.add_weight ww i vi j vj cost)
        pairs
  in
  let t = build_internal ?relax ?candidates ~make_sink prog in
  (t, Option.get !w)

let var_of_array t name =
  let rec go i =
    if i >= Array.length t.constrained_arrays then raise Not_found
    else if String.equal t.constrained_arrays.(i) name then i
    else go (i + 1)
  in
  go 0

let assignment_layouts t assignment =
  Array.to_list
    (Array.mapi
       (fun i name -> (name, Network.value t.network i assignment.(i)))
       t.constrained_arrays)

let lookup t assignment name =
  match var_of_array t name with
  | i -> Some (Network.value t.network i assignment.(i))
  | exception Not_found -> None

let components t =
  Array.map
    (Array.map (fun v -> t.constrained_arrays.(v)))
    (Network.components t.network)

(* Sharded build: partition the arrays by the "co-referenced in some
   nest" relation (union-find over the program's nests), materialize one
   sub-program per part, and build each part's network independently.
   A nest's pairs only ever connect co-referenced arrays, and an array's
   domain (and its layout order within it) depends only on the nests
   touching it plus [candidates], so the shard networks are exactly the
   whole network's constraint-graph components with identical domains
   and constraints — but only one shard's network and transient pair
   tables are live at a time, so peak memory follows the largest
   component instead of the whole program. *)
let shards ?relax ?candidates prog =
  Mlo_obs.Trace.with_span ~cat:"netgen" "build-shards"
    ~args:[ ("program", Mlo_obs.Trace.Str (Program.name prog)) ]
  @@ fun () ->
  let arrays = Program.arrays prog in
  let n = Array.length arrays in
  let index = Hashtbl.create n in
  Array.iteri
    (fun i info -> Hashtbl.replace index (Array_info.name info) i)
    arrays;
  (* union-find, smaller index wins: each class root ends up being the
     class's first-declared array, so shards come out in declaration
     order of their leading array *)
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then
      if ri < rj then parent.(rj) <- ri else parent.(ri) <- rj
  in
  Array.iter
    (fun nest ->
      match Loop_nest.arrays_touched nest with
      | [] -> ()
      | a0 :: rest ->
        let i0 = Hashtbl.find index a0 in
        List.iter (fun a -> union i0 (Hashtbl.find index a)) rest)
    (Program.nests prog);
  let members = Hashtbl.create 16 in
  let roots = ref [] in
  for i = n - 1 downto 0 do
    let r = find i in
    if not (Hashtbl.mem members r) then roots := r :: !roots;
    Hashtbl.replace members r
      (arrays.(i) :: Option.value ~default:[] (Hashtbl.find_opt members r))
  done;
  let nests_of part =
    let in_part a = List.exists (fun info -> Array_info.name info = a) part in
    Array.to_list (Program.nests prog)
    |> List.filter (fun nest ->
           match Loop_nest.arrays_touched nest with
           | [] -> false
           | a :: _ -> in_part a)
  in
  (* An array referenced by no nest is a singleton part with no nests to
     induce a sub-program from; its variable is free in the whole
     network, so build its one-variable constraint-free shard directly,
     with the same domain rule [collect_domains] applies to an array no
     restructuring demands anything of. *)
  let free_shard info =
    let rank = Array_info.rank info in
    let name = Array_info.name info in
    let default = if rank = 1 then Layout.trivial else Layout.row_major rank in
    let extra =
      match candidates with
      | None -> []
      | Some c -> List.filter (fun l -> Layout.rank l = rank) (c name)
    in
    let domain = List.fold_left (fun acc l -> add_unique l acc) [ default ] extra in
    {
      network =
        Network.create ~names:[| name |]
          ~domains:[| Array.of_list domain |];
      program = prog;
      constrained_arrays = [| name |];
    }
  in
  Array.of_list
    (List.mapi
       (fun k r ->
         let part = Hashtbl.find members r in
         match nests_of part with
         | [] ->
           (* union-find only merges co-referenced arrays, so a nest-less
              part is exactly one unreferenced array *)
           free_shard (List.hd part)
         | nests ->
           let sub =
             Program.make
               ~name:(Printf.sprintf "%s#%d" (Program.name prog) k)
               part nests
           in
           build ?relax ?candidates sub)
       !roots)
