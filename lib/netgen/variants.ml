module Loop_nest = Mlo_ir.Loop_nest
module Access = Mlo_ir.Access
module Dependence = Mlo_ir.Dependence
module Layout = Mlo_layout.Layout
module Locality = Mlo_layout.Locality

type t = { perm : int array; nest : Loop_nest.t }

let of_nest nest =
  List.map
    (fun (perm, nest) -> { perm; nest })
    (Dependence.legal_permutations nest)

let demanded_layout nest name =
  let accesses =
    Array.to_list (Loop_nest.accesses nest)
    |> List.filter (fun a -> String.equal (Access.array_name a) name)
  in
  if accesses = [] then None
  else begin
    let candidates = List.filter_map Locality.preferred_layout accesses in
    if candidates = [] then None
    else begin
      (* dedup, preserving preference order *)
      let uniq =
        List.fold_left
          (fun acc l -> if List.exists (Layout.equal l) acc then acc else l :: acc)
          [] candidates
        |> List.rev
      in
      let score l =
        List.fold_left (fun s a -> s + Locality.score l a) 0 accesses
      in
      let best =
        List.fold_left
          (fun (bl, bs) l ->
            let s = score l in
            if s > bs then (l, s) else (bl, bs))
          (List.hd uniq, score (List.hd uniq))
          (List.tl uniq)
      in
      Some (fst best)
    end
  end

let layouts_for v =
  List.filter_map
    (fun name ->
      match demanded_layout v.nest name with
      | Some l -> Some (name, l)
      | None -> None)
    (Loop_nest.arrays_touched v.nest)
