(** Structured tracing in Chrome [trace_event] JSON format.

    One global, process-wide trace buffer.  When tracing is disabled
    (the default) every emission function returns after a single branch
    — no allocation, no clock read, no lock — so instrumented hot paths
    stay instrumented in production builds.  When enabled, events are
    rendered straight into a shared buffer under a mutex, so worker
    {!Domain}s (the cache-simulation sweeps) can emit concurrently; each
    event records its domain id as [tid].

    The output loads in [chrome://tracing] and Perfetto: a JSON array of
    event objects, spans as ["ph":"B"]/["ph":"E"] pairs, instant events
    as ["ph":"i"], counters as ["ph":"C"], timestamps in microseconds
    from the monotonic clock.  {!Trace_summary} rolls a file back up
    into per-phase/per-event totals. *)

type arg = Str of string | Int of int | Float of float | Bool of bool
(** Argument payload attached to an event (shown by the viewers). *)

val enabled : unit -> bool
(** The one-branch gate: callers building non-trivial argument lists
    should test this first (the emission functions also check it). *)

val start : unit -> unit
(** Enable tracing into a fresh buffer (clears any previous events). *)

val stop : unit -> unit
(** Disable tracing and drop the buffer. *)

val dump : unit -> string
(** The events so far as a complete JSON array (tracing may still be
    enabled; the buffer is not cleared). *)

val write : string -> unit
(** [write path] saves {!dump} to a file. *)

val with_span : ?args:(string * arg) list -> cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span ~cat name f] brackets [f ()] with begin/end events; the
    end event is emitted even if [f] raises.  When disabled, exactly
    [f ()]. *)

val instant : ?args:(string * arg) list -> cat:string -> string -> unit
(** A point event (solver decision, backtrack, AC revision, ...). *)

val counter : cat:string -> string -> (string * float) list -> unit
(** [counter ~cat name series] emits one sample of a named counter
    track; [series] gives the per-key values (e.g. per-level hit/miss
    totals). *)
