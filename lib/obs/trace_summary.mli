(** Rollup of a {!Trace} file: per-span totals, instant-event counts and
    counter ranges — the textual flamegraph behind
    [layoutopt trace-summary].

    Also the checker the trace-format tests lean on: {!of_json} walks
    every event, matches begin/end pairs per thread and reports whether
    the spans nest properly ([balanced]) and how deep they go. *)

type span_stat = {
  span_count : int;
  total_us : float;  (** summed wall time of all instances *)
  max_us : float;  (** longest single instance *)
}

type counter_stat = {
  samples : int;
  first : float;
  last : float;
  monotone : bool;  (** samples never decreased, in emission order *)
}

type t = {
  events : int;  (** total events in the file *)
  spans : ((string * string) * span_stat) list;
      (** per (category, span name), descending total time *)
  instants : ((string * string) * int) list;
      (** per (category, event name) occurrence count, descending *)
  counters : ((string * string) * counter_stat) list;
      (** per (counter name, series key), emission order *)
  max_nesting : int;  (** deepest begin/end nesting over all threads *)
  balanced : bool;
      (** every end matched the innermost open begin of its thread and
          nothing was left open *)
}

val of_json : Json.t -> (t, string) result
(** Expects the JSON array {!Trace.dump} produces (unknown phase letters
    are counted but otherwise ignored). *)

val load : string -> (t, string) result
(** Parse and summarize a trace file. *)

val pp : Format.formatter -> t -> unit
