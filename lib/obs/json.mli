(** Minimal JSON values: just enough to emit and re-read the artifacts
    this repository produces (trace_event files, [Stats.to_json], the
    bench schema) without an external dependency.

    The parser accepts standard JSON (RFC 8259): numbers are read as
    floats, [\uXXXX] escapes are decoded to UTF-8.  It is not streaming —
    traces of a few hundred thousand events fit comfortably. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a one-line message
    with the offending offset. *)

val parse_file : string -> (t, string) result

val to_string : t -> string
(** Compact serialization (no insignificant whitespace).  Integral
    numbers print without a fractional part. *)

val escape : string -> string
(** The body of a JSON string literal (no surrounding quotes). *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
