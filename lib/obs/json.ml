type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_num b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> add_num b f
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        add b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        add b v)
      fields;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  add b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Fail of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  (* encode a decoded \uXXXX code point as UTF-8 *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some cp -> add_utf8 b cp
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            fields ((k, v) :: acc)
          | '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            items (v :: acc)
          | ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> Num (parse_number ())
    | _ -> fail "expected a JSON value"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, at) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
