/* Monotonic nanosecond clock for trace timestamps.

   Duplicates the essence of lib/csp's clock stub under a distinct
   symbol so mlo_obs links standalone (the observability layer sits
   below every other library and must not depend on mlo_csp).  Returns
   a tagged immediate: allocation-free, safe under [@@noalloc]. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value mlo_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat) ts.tv_sec * 1000000000 + ts.tv_nsec);
}
