type arg = Str of string | Int of int | Float of float | Bool of bool

(* Same clock_gettime(CLOCK_MONOTONIC) source as Mlo_csp.Clock, under a
   distinct C symbol so this library stays dependency-free. *)
external now_ns : unit -> int = "mlo_obs_monotonic_ns" [@@noalloc]

(* [on] is the one-branch disabled-path gate.  The buffer and the
   first-event flag are shared across domains and only touched with
   [lock] held; [on] itself is a plain ref — transitions happen on the
   main domain before workers are spawned and after they are joined. *)
let on = ref false
let lock = Mutex.create ()
let buf = Buffer.create 4096
let first = ref true

let enabled () = !on

let start () =
  Mutex.lock lock;
  Buffer.clear buf;
  first := true;
  on := true;
  Mutex.unlock lock

let stop () =
  Mutex.lock lock;
  on := false;
  Buffer.clear buf;
  first := true;
  Mutex.unlock lock

let dump () =
  Mutex.lock lock;
  let body = Buffer.contents buf in
  Mutex.unlock lock;
  "[" ^ body ^ "]"

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (dump ());
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Event emission                                                       *)
(* ------------------------------------------------------------------ *)

let add_arg b (k, v) =
  Buffer.add_char b '"';
  Buffer.add_string b (Json.escape k);
  Buffer.add_string b "\":";
  match v with
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (Json.escape s);
    Buffer.add_char b '"'
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Bool bo -> Buffer.add_string b (if bo then "true" else "false")

(* Renders one event object into the shared buffer.  [extra] appends
   phase-specific fields (instant scope, counter args). *)
let emit ?args ~ph ~cat name extra =
  let ts_us = float_of_int (now_ns ()) /. 1e3 in
  let tid = (Domain.self () :> int) in
  Mutex.lock lock;
  if !on then begin
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
         (Json.escape name) (Json.escape cat) ph ts_us tid);
    (match args with
    | None | Some [] -> ()
    | Some args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_char buf ',';
          add_arg buf a)
        args);
    (match args with None | Some [] -> () | Some _ -> Buffer.add_char buf '}');
    Buffer.add_string buf extra;
    Buffer.add_char buf '}'
  end;
  Mutex.unlock lock

let instant ?args ~cat name =
  if !on then emit ?args ~ph:"i" ~cat name ",\"s\":\"t\""

let span_begin ?args ~cat name = emit ?args ~ph:"B" ~cat name ""
let span_end ~cat name = emit ~ph:"E" ~cat name ""

let with_span ?args ~cat name f =
  if not !on then f ()
  else begin
    span_begin ?args ~cat name;
    Fun.protect ~finally:(fun () -> span_end ~cat name) f
  end

let counter ~cat name series =
  if !on then begin
    let b = Buffer.create 64 in
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (Json.escape k);
        Buffer.add_string b "\":";
        Buffer.add_string b (Printf.sprintf "%.17g" v))
      series;
    Buffer.add_char b '}';
    emit ~ph:"C" ~cat name (Buffer.contents b)
  end
