type span_stat = { span_count : int; total_us : float; max_us : float }

type counter_stat = {
  samples : int;
  first : float;
  last : float;
  monotone : bool;
}

type t = {
  events : int;
  spans : ((string * string) * span_stat) list;
  instants : ((string * string) * int) list;
  counters : ((string * string) * counter_stat) list;
  max_nesting : int;
  balanced : bool;
}

let field_str ev k = Option.bind (Json.member k ev) Json.to_str
let field_num ev k = Option.bind (Json.member k ev) Json.to_float

let of_json json =
  match Json.to_list json with
  | None -> Error "trace is not a JSON array of events"
  | Some events ->
    let spans : (string * string, span_stat) Hashtbl.t = Hashtbl.create 32 in
    let instants = Hashtbl.create 32 in
    let counters = Hashtbl.create 32 in
    let counter_order = ref [] in
    (* per-tid stack of open (cat, name, ts) begins *)
    let stacks : (int, (string * string * float) list) Hashtbl.t =
      Hashtbl.create 8
    in
    let balanced = ref true in
    let max_nesting = ref 0 in
    let bad = ref None in
    List.iter
      (fun ev ->
        if !bad = None then
          match (field_str ev "ph", field_str ev "name", field_num ev "ts") with
          | Some ph, Some name, Some ts -> (
            let cat = Option.value ~default:"" (field_str ev "cat") in
            let tid =
              int_of_float (Option.value ~default:0. (field_num ev "tid"))
            in
            match ph with
            | "B" ->
              let stack =
                (cat, name, ts)
                :: Option.value ~default:[] (Hashtbl.find_opt stacks tid)
              in
              if List.length stack > !max_nesting then
                max_nesting := List.length stack;
              Hashtbl.replace stacks tid stack
            | "E" -> (
              match Hashtbl.find_opt stacks tid with
              | Some ((bcat, bname, bts) :: rest) ->
                if bname <> name || bcat <> cat then balanced := false;
                Hashtbl.replace stacks tid rest;
                let dur = ts -. bts in
                let prev =
                  Option.value
                    ~default:{ span_count = 0; total_us = 0.; max_us = 0. }
                    (Hashtbl.find_opt spans (bcat, bname))
                in
                Hashtbl.replace spans (bcat, bname)
                  {
                    span_count = prev.span_count + 1;
                    total_us = prev.total_us +. dur;
                    max_us = Float.max prev.max_us dur;
                  }
              | Some [] | None -> balanced := false)
            | "i" | "I" ->
              Hashtbl.replace instants (cat, name)
                (1 + Option.value ~default:0 (Hashtbl.find_opt instants (cat, name)))
            | "C" ->
              (match Json.member "args" ev with
              | Some (Json.Obj series) ->
                List.iter
                  (fun (key, v) ->
                    match Json.to_float v with
                    | None -> ()
                    | Some v -> (
                      match Hashtbl.find_opt counters (name, key) with
                      | None ->
                        counter_order := (name, key) :: !counter_order;
                        Hashtbl.replace counters (name, key)
                          { samples = 1; first = v; last = v; monotone = true }
                      | Some c ->
                        Hashtbl.replace counters (name, key)
                          {
                            samples = c.samples + 1;
                            first = c.first;
                            last = v;
                            monotone = c.monotone && v >= c.last;
                          }))
                  series
              | Some _ | None -> ())
            | _ -> ())
          | _ -> bad := Some "event missing name/ph/ts")
      events;
    match !bad with
    | Some msg -> Error msg
    | None ->
      (* anything still open is unbalanced *)
      Hashtbl.iter (fun _ stack -> if stack <> [] then balanced := false) stacks;
      let sorted_assoc tbl cmp =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort cmp
      in
      Ok
        {
          events = List.length events;
          spans =
            sorted_assoc spans (fun (_, a) (_, b) ->
                Float.compare b.total_us a.total_us);
          instants = sorted_assoc instants (fun (_, a) (_, b) -> compare b a);
          counters =
            List.rev_map
              (fun k -> (k, Hashtbl.find counters k))
              !counter_order;
          max_nesting = !max_nesting;
          balanced = !balanced;
        }

let load path =
  match Json.parse_file path with
  | Error _ as e -> e
  | Ok json -> of_json json

let pp ppf t =
  Format.fprintf ppf "@[<v>%d events, max span nesting %d%s@," t.events
    t.max_nesting
    (if t.balanced then "" else " (UNBALANCED begin/end pairs)");
  if t.spans <> [] then begin
    Format.fprintf ppf "@,%-12s %-28s %8s %14s %14s@," "phase" "span" "count"
      "total" "max";
    List.iter
      (fun ((cat, name), s) ->
        Format.fprintf ppf "%-12s %-28s %8d %12.1fus %12.1fus@," cat name
          s.span_count s.total_us s.max_us)
      t.spans
  end;
  if t.instants <> [] then begin
    Format.fprintf ppf "@,%-12s %-28s %8s@," "phase" "event" "count";
    List.iter
      (fun ((cat, name), n) ->
        Format.fprintf ppf "%-12s %-28s %8d@," cat name n)
      t.instants
  end;
  if t.counters <> [] then begin
    Format.fprintf ppf "@,%-20s %-20s %8s %14s %14s@," "counter" "key"
      "samples" "first" "last";
    List.iter
      (fun ((name, key), c) ->
        Format.fprintf ppf "%-20s %-20s %8d %14.0f %14.0f@," name key
          c.samples c.first c.last)
      t.counters
  end;
  Format.fprintf ppf "@]"
