(** Complete memory layouts for k-dimensional arrays.

    Following the paper's Section 2, the layout of a k-dimensional array
    is an ordered set of k-1 linearly independent hyperplane families
    [Y1 .. Y_{k-1}]: two elements are adjacent along the fastest-varying
    storage direction iff they agree on all k-1 families.  For 2-D arrays
    this degenerates to a single hyperplane vector ([(1 0)] row-major,
    [(0 1)] column-major, [(1 -1)] diagonal, ...); 1-D arrays admit a
    single trivial layout. *)

type t = private { rank : int; hyperplanes : Hyperplane.t list }

val make : rank:int -> Hyperplane.t list -> t
(** Builds a layout.  Raises [Invalid_argument] unless the list contains
    exactly [max 0 (rank - 1)] hyperplanes, each of dimension [rank], and
    they are linearly independent. *)

val of_hyperplane : Hyperplane.t -> t
(** 2-D convenience: [of_hyperplane y] = [make ~rank:2 [y]].  Raises
    [Invalid_argument] if [dim y <> 2]. *)

val trivial : t
(** The unique layout of 1-D arrays. *)

val rank : t -> int
val hyperplanes : t -> Hyperplane.t list

val leading : t -> Hyperplane.t option
(** The first (most significant) hyperplane family; [None] for rank 1. *)

val row_major : int -> t
(** Standard C layout: hyperplanes [e0, e1, .., e_{k-2}]. *)

val col_major : int -> t
(** Fortran layout: hyperplanes [e_{k-1}, .., e1]. *)

val diagonal2 : t
(** 2-D diagonal layout [(1 -1)]. *)

val anti_diagonal2 : t
(** 2-D anti-diagonal layout [(1 1)]. *)

val colocated : t -> Mlo_linalg.Intvec.t -> Mlo_linalg.Intvec.t -> bool
(** [colocated l d1 d2] is true iff [d1] and [d2] lie in the same
    fastest-varying storage line, i.e. agree on every hyperplane family of
    the layout (always true for rank 1). *)

val serves : t -> Mlo_linalg.Intvec.t -> bool
(** [serves l delta] is true iff successive accesses separated by the data-
    space difference [delta] enjoy spatial locality under [l]: every
    hyperplane family of [l] is orthogonal to [delta].  The zero [delta]
    (temporal reuse) is served by every layout. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val describe : t -> string
val pp : Format.formatter -> t -> unit
