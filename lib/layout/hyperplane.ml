module Intvec = Mlo_linalg.Intvec

type t = Intvec.t

let make v =
  if Intvec.is_zero v then invalid_arg "Hyperplane.make: zero vector";
  Intvec.canonical v

let of_list xs = make (Intvec.of_list xs)
let dim = Intvec.dim
let to_vec = Intvec.copy
let coeffs = Intvec.to_list

let check_dim name k =
  if k < 1 then invalid_arg (name ^ ": dimension must be positive")

let row_major k =
  check_dim "Hyperplane.row_major" k;
  Intvec.unit k 0

let col_major k =
  check_dim "Hyperplane.col_major" k;
  Intvec.unit k (k - 1)

let diag_like name second k =
  check_dim name k;
  if k < 2 then invalid_arg (name ^ ": dimension must be at least 2");
  let v = Intvec.zero k in
  v.(0) <- 1;
  v.(1) <- second;
  v

let diagonal k = diag_like "Hyperplane.diagonal" (-1) k
let anti_diagonal k = diag_like "Hyperplane.anti_diagonal" 1 k
let axis k i = Intvec.unit k i
let same_member y d1 d2 = Intvec.dot y d1 = Intvec.dot y d2
let constant_of y d = Intvec.dot y d
let orthogonal_to y delta = Intvec.dot y delta = 0
let equal = Intvec.equal
let compare = Intvec.compare
let hash = Intvec.hash

let describe y =
  if Intvec.equal y (row_major (dim y)) then "row-major"
  else if Intvec.equal y (col_major (dim y)) then "column-major"
  else if dim y >= 2 && Intvec.equal y (diagonal (dim y)) then "diagonal"
  else if dim y >= 2 && Intvec.equal y (anti_diagonal (dim y)) then
    "anti-diagonal"
  else Intvec.to_string y

let pp ppf y = Intvec.pp ppf y
