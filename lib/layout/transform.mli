(** Applying a layout as a nonsingular data transformation.

    A layout's hyperplane rows are completed to a nonsingular matrix [T]
    ({!Mlo_linalg.Unimodular}); the element with original index [d] is
    stored at transformed coordinates [T d].  Because [T] is linear, the
    image of the original extent box fits in the bounding box spanned by
    the images of its corners; the transformed array is linearized
    row-major inside that box.  Non-unimodular completions (and skewed
    hyperplanes) can leave unused holes in the box — exactly the data-size
    growth the paper's footnote 2 warns about when non-primitive
    hyperplanes are chosen. *)

type t
(** A ready-to-use address map for one array under one layout. *)

val make : Layout.t -> extents:int array -> t
(** [make layout ~extents] precomputes the transform matrix and transformed
    bounding box for an array with the given per-dimension extents.
    Raises [Invalid_argument] if [Array.length extents <> Layout.rank
    layout] or any extent is non-positive. *)

val matrix : t -> Mlo_linalg.Intmat.t
(** The completed nonsingular transform (top rows = layout hyperplanes). *)

val map_point : t -> Mlo_linalg.Intvec.t -> Mlo_linalg.Intvec.t
(** Transformed coordinates [T d] of an element. *)

val linear_map : t -> int array * int
(** [linear_map t] is [(lin, c)] such that [cell_index t d = c + sum_j
    lin.(j) * d.(j)] for every index vector [d]: the transform's whole
    index-to-cell map collapsed into one affine form.  This is what lets
    a trace compiler fold layout, bounding box and linearization into
    per-loop address strides ({!Mlo_cachesim.Compiled_trace}). *)

val cell_index : t -> Mlo_linalg.Intvec.t -> int
(** Linear cell offset of element [d] in the transformed storage: the
    row-major position of [T d] within the transformed bounding box.
    Distinct in-bounds elements map to distinct offsets ([T] is
    nonsingular). *)

val footprint_cells : t -> int
(** Number of cells in the transformed bounding box (>= the number of
    array elements; equality iff the transform leaves no holes). *)

val original_cells : t -> int
(** Number of elements of the original array. *)

val expansion : t -> float
(** [footprint_cells / original_cells]: storage blow-up caused by the
    transform (1.0 for unimodular axis-aligned layouts). *)

val identity : extents:int array -> t
(** The address map of the untransformed (row-major) array. *)

val pp : Format.formatter -> t -> unit
