module Intvec = Mlo_linalg.Intvec
module Intmat = Mlo_linalg.Intmat
module Nullspace = Mlo_linalg.Nullspace
module Access = Mlo_ir.Access
module Loop_nest = Mlo_ir.Loop_nest

let delta_at a j =
  let m = Access.matrix a in
  Intmat.col m j

let access_delta a = delta_at a (Access.depth a - 1)

let layout_from_delta delta =
  if Intvec.is_zero delta then None
  else begin
    let k = Intvec.dim delta in
    if k = 1 then Some Layout.trivial
    else begin
      let basis = Nullspace.basis (Intmat.of_rows [ delta ]) in
      (* delta <> 0 so the orthogonal complement has dimension k-1 *)
      Some (Layout.make ~rank:k (List.map Hyperplane.make basis))
    end
  end

let preferred_layout a = layout_from_delta (access_delta a)

let score layout a =
  let delta = access_delta a in
  if Intvec.is_zero delta then 5
  else if Layout.serves layout delta then 4
  else 0

let nest_score lookup nest =
  Array.fold_left
    (fun acc a ->
      match lookup (Access.array_name a) with
      | None -> acc
      | Some layout -> acc + score layout a)
    0 (Loop_nest.accesses nest)

let candidate_layouts ~rank accesses =
  let prefs = List.filter_map preferred_layout accesses in
  let constrained = prefs <> [] in
  let defaults =
    if rank = 1 then [ Layout.trivial ]
    else if constrained then [ Layout.row_major rank ]
    else [ Layout.row_major rank; Layout.col_major rank ]
  in
  let all = prefs @ defaults in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun l ->
      let h = (Layout.hash l, Layout.describe l) in
      if Hashtbl.mem seen h then false
      else begin
        Hashtbl.add seen h ();
        true
      end)
    all
