module Intvec = Mlo_linalg.Intvec
module Intmat = Mlo_linalg.Intmat
module Unimodular = Mlo_linalg.Unimodular

type t = {
  matrix : Intmat.t;
  mins : int array; (* per transformed dimension, inclusive lower corner *)
  spans : int array; (* per transformed dimension, extent of bounding box *)
  strides : int array; (* row-major strides inside the box *)
  lin : int array; (* per original dimension, coefficient of cell_index *)
  lin_const : int; (* constant term of cell_index *)
  original_cells : int;
}

let transform_matrix layout =
  let k = Layout.rank layout in
  if k = 1 then Intmat.identity 1
  else
    Unimodular.complete_layout
      (List.map Hyperplane.to_vec (Layout.hyperplanes layout))

(* Enumerate the corners of the extent box [0, e_i - 1]^k. *)
let corners extents =
  let k = Array.length extents in
  let n = 1 lsl k in
  List.init n (fun mask ->
      Array.init k (fun i ->
          if mask land (1 lsl i) <> 0 then extents.(i) - 1 else 0))

let make layout ~extents =
  let k = Layout.rank layout in
  if Array.length extents <> k then
    invalid_arg "Transform.make: extents rank differs from layout rank";
  Array.iter
    (fun e -> if e <= 0 then invalid_arg "Transform.make: non-positive extent")
    extents;
  let matrix = transform_matrix layout in
  let images = List.map (Intmat.mul_vec matrix) (corners extents) in
  let mins = Array.make k max_int and maxs = Array.make k min_int in
  List.iter
    (fun p ->
      Array.iteri
        (fun i x ->
          if x < mins.(i) then mins.(i) <- x;
          if x > maxs.(i) then maxs.(i) <- x)
        p)
    images;
  let spans = Array.init k (fun i -> maxs.(i) - mins.(i) + 1) in
  let strides = Array.make k 1 in
  for i = k - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * spans.(i + 1)
  done;
  (* cell_index is itself affine in the original index vector:
     sum_i strides_i * ((T d)_i - mins_i)
       = sum_j (sum_i strides_i * T_ij) d_j - sum_i strides_i * mins_i *)
  let lin =
    Array.init k (fun j ->
        let s = ref 0 in
        for i = 0 to k - 1 do
          s := !s + (strides.(i) * matrix.(i).(j))
        done;
        !s)
  in
  let lin_const = ref 0 in
  for i = 0 to k - 1 do
    lin_const := !lin_const - (strides.(i) * mins.(i))
  done;
  {
    matrix;
    mins;
    spans;
    strides;
    lin;
    lin_const = !lin_const;
    original_cells = Array.fold_left ( * ) 1 extents;
  }

let matrix t = Intmat.copy t.matrix
let map_point t d = Intmat.mul_vec t.matrix d
let linear_map t = (Array.copy t.lin, t.lin_const)

let cell_index t d =
  let idx = ref t.lin_const in
  for j = 0 to Array.length d - 1 do
    idx := !idx + (t.lin.(j) * d.(j))
  done;
  !idx

let footprint_cells t = Array.fold_left ( * ) 1 t.spans
let original_cells t = t.original_cells

let expansion t =
  float_of_int (footprint_cells t) /. float_of_int t.original_cells

let identity ~extents =
  make (Layout.row_major (Array.length extents)) ~extents

let pp ppf t =
  Format.fprintf ppf "@[<v>transform:@,%a@,box: mins %a spans %a (x%.2f)@]"
    Intmat.pp t.matrix Intvec.pp t.mins Intvec.pp t.spans (expansion t)
