(** Hyperplane families in array data space (the paper's Section 2).

    A hyperplane family in k-dimensional data space is the set of parallel
    hyperplanes [{ d | y . d = c }] for a fixed coefficient vector [y] and
    varying constant [c].  Two array elements lie on the same member of
    the family iff [y . d1 = y . d2].  Values of this type are always in
    canonical form: primitive (component gcd 1) with positive leading
    nonzero component, so structural equality coincides with family
    equality. *)

type t = private Mlo_linalg.Intvec.t

val make : Mlo_linalg.Intvec.t -> t
(** Canonicalizes the given coefficient vector.  Raises [Invalid_argument]
    on the zero vector (which describes no hyperplane family). *)

val of_list : int list -> t

val dim : t -> int
val to_vec : t -> Mlo_linalg.Intvec.t
val coeffs : t -> int list

val row_major : int -> t
(** [(1 0 ... 0)]: same hyperplane iff same leading index. *)

val col_major : int -> t
(** [(0 ... 0 1)]: same hyperplane iff same trailing index. *)

val diagonal : int -> t
(** [(1 -1 0 ... 0)], the paper's diagonal layout for 2-D arrays. *)

val anti_diagonal : int -> t
(** [(1 1 0 ... 0)], the paper's anti-diagonal layout. *)

val axis : int -> int -> t
(** [axis k i] is the [i]-th standard basis hyperplane in dimension [k]. *)

val same_member : t -> Mlo_linalg.Intvec.t -> Mlo_linalg.Intvec.t -> bool
(** [same_member y d1 d2] is true iff elements [d1] and [d2] lie on the
    same hyperplane of the family [y]. *)

val constant_of : t -> Mlo_linalg.Intvec.t -> int
(** The hyperplane constant [c = y . d] identifying which member of the
    family the element [d] lies on. *)

val orthogonal_to : t -> Mlo_linalg.Intvec.t -> bool
(** [orthogonal_to y delta] is [y . delta = 0]: successive accesses whose
    touched elements differ by [delta] stay on one hyperplane, i.e. the
    family provides spatial locality for that access pattern. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val describe : t -> string
(** Human name when one exists: ["row-major"], ["column-major"],
    ["diagonal"], ["anti-diagonal"], otherwise the coefficient tuple. *)

val pp : Format.formatter -> t -> unit
