(** Deriving layout preferences from access patterns (paper Section 2).

    Two successive iterations of the innermost loop, [I] and [I_n = I + s]
    with [s] the innermost unit direction, touch elements of array [Q]
    that differ by [delta = F s] — the innermost column of the access
    matrix.  A layout gives the reference spatial locality iff all its
    hyperplane families are orthogonal to [delta]; the best layout is
    built from an integer basis of the orthogonal complement of [delta]. *)

val delta_at : Mlo_ir.Access.t -> int -> Mlo_linalg.Intvec.t
(** [delta_at a j] is the data-space difference produced by stepping the
    depth-[j] loop once: column [j] of the access matrix. *)

val access_delta : Mlo_ir.Access.t -> Mlo_linalg.Intvec.t
(** [delta_at a (depth a - 1)]: the innermost-step difference. *)

val preferred_layout : Mlo_ir.Access.t -> Layout.t option
(** The canonical layout giving the reference spatial locality with respect
    to the innermost loop, or [None] when the reference has temporal reuse
    in the innermost loop ([delta = 0]) and any layout serves it.  For 2-D
    arrays this reproduces the paper's examples: [Q1\[i1+i2\]\[i2\]]
    prefers [(1 -1)] and [Q2\[i1+i2\]\[i1\]] prefers [(0 1)]. *)

val layout_from_delta : Mlo_linalg.Intvec.t -> Layout.t option
(** The canonical layout orthogonal to a nonzero difference vector;
    [None] for the zero vector. *)

val score : Layout.t -> Mlo_ir.Access.t -> int
(** Locality quality of a layout for a reference under the current loop
    order, weighted by the latency it avoids: 5 for temporal reuse
    (register/L1 resident), 4 for spatial locality (one miss per line),
    0 for none (a long-latency access per iteration).  A mismatch is far
    worse than the temporal/spatial difference, so orders that serve
    every reference dominate orders that leave one unserved. *)

val nest_score : (string -> Layout.t option) -> Mlo_ir.Loop_nest.t -> int
(** Sum of {!score} over the nest's references, given a partial layout
    assignment by array name (unassigned arrays contribute 0). *)

val candidate_layouts : rank:int -> Mlo_ir.Access.t list -> Layout.t list
(** Deduplicated preferred layouts of the given references to one array
    (all of rank [rank]), augmented with row-major (and, when none of the
    references constrains the layout, column-major) so that every array
    has at least one candidate.  First-preference order is preserved. *)
