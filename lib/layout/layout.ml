module Intvec = Mlo_linalg.Intvec
module Intmat = Mlo_linalg.Intmat

type t = { rank : int; hyperplanes : Hyperplane.t list }

let make ~rank hyperplanes =
  if rank < 1 then invalid_arg "Layout.make: rank must be positive";
  let expected = max 0 (rank - 1) in
  if List.length hyperplanes <> expected then
    invalid_arg
      (Printf.sprintf "Layout.make: rank %d needs %d hyperplanes, got %d" rank
         expected
         (List.length hyperplanes));
  List.iter
    (fun y ->
      if Hyperplane.dim y <> rank then
        invalid_arg "Layout.make: hyperplane dimension differs from rank")
    hyperplanes;
  if expected > 0 then begin
    let m = Intmat.of_rows (List.map Hyperplane.to_vec hyperplanes) in
    if Intmat.rank m <> expected then
      invalid_arg "Layout.make: hyperplanes linearly dependent"
  end;
  { rank; hyperplanes }

let of_hyperplane y =
  if Hyperplane.dim y <> 2 then
    invalid_arg "Layout.of_hyperplane: dimension must be 2";
  make ~rank:2 [ y ]

let trivial = { rank = 1; hyperplanes = [] }
let rank l = l.rank
let hyperplanes l = l.hyperplanes

let leading l =
  match l.hyperplanes with [] -> None | y :: _ -> Some y

let row_major k =
  make ~rank:k (List.init (max 0 (k - 1)) (fun i -> Hyperplane.axis k i))

let col_major k =
  make ~rank:k (List.init (max 0 (k - 1)) (fun i -> Hyperplane.axis k (k - 1 - i)))

let diagonal2 = of_hyperplane (Hyperplane.diagonal 2)
let anti_diagonal2 = of_hyperplane (Hyperplane.anti_diagonal 2)

let colocated l d1 d2 =
  List.for_all (fun y -> Hyperplane.same_member y d1 d2) l.hyperplanes

let serves l delta =
  Intvec.is_zero delta
  || List.for_all (fun y -> Hyperplane.orthogonal_to y delta) l.hyperplanes

let equal a b =
  a.rank = b.rank && List.equal Hyperplane.equal a.hyperplanes b.hyperplanes

let compare a b =
  let c = Int.compare a.rank b.rank in
  if c <> 0 then c else List.compare Hyperplane.compare a.hyperplanes b.hyperplanes

let hash l =
  List.fold_left (fun acc y -> (acc * 131) + Hyperplane.hash y) l.rank
    l.hyperplanes

let describe l =
  if l.rank = 1 then "linear"
  else if equal l (row_major l.rank) then "row-major"
  else if equal l (col_major l.rank) then "column-major"
  else if l.rank = 2 then
    (match l.hyperplanes with
    | [ y ] -> Hyperplane.describe y
    | [] | _ :: _ :: _ -> assert false)
  else
    String.concat ";" (List.map Hyperplane.describe l.hyperplanes)

let pp ppf l =
  match l.hyperplanes with
  | [] -> Format.fprintf ppf "<linear>"
  | [ y ] -> Hyperplane.pp ppf y
  | ys ->
    Format.fprintf ppf "[";
    List.iteri
      (fun i y ->
        if i > 0 then Format.fprintf ppf "; ";
        Hyperplane.pp ppf y)
      ys;
    Format.fprintf ppf "]"
