module Json = Mlo_obs.Json

type severity = Info | Warning | Error

type t = {
  severity : severity;
  code : string;
  subject : string;
  message : string;
}

let make severity ~code ~subject message = { severity; code; subject; message }

let severity_label = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let rank = function Info -> 0 | Warning -> 1 | Error -> 2
let compare_severity a b = Int.compare (rank a) (rank b)
let is_error d = d.severity = Error
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

(* A total order so rendered reports are byte-deterministic run to run:
   severity first (errors lead), then subject, code and finally the
   message text as tiebreak.  The enclosing file/target is already the
   CLI's grouping key, so subject-before-code keeps one nest's or
   array's findings adjacent. *)
let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare_severity b.severity a.severity in
      if c <> 0 then c
      else
        let c = String.compare a.subject b.subject in
        if c <> 0 then c
        else
          let c = String.compare a.code b.code in
          if c <> 0 then c else String.compare a.message b.message)
    ds

let exit_code ds = if List.exists is_error ds then 1 else 0

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s: %s" (severity_label d.severity) d.code
    d.subject d.message

let to_json d =
  Json.Obj
    [
      ("severity", Json.Str (severity_label d.severity));
      ("code", Json.Str d.code);
      ("subject", Json.Str d.subject);
      ("message", Json.Str d.message);
    ]
