(** Network-layer structural analysis of a constraint network.

    Classic constraint-network theory applied to the paper's
    [CN = <P, M, S>] before search:

    - {b components} — connected components of the constraint graph.
      Variables in different components share no constraint, so the
      network decomposes into independent subproblems
      ({!Mlo_csp.Solver.solve_components} exploits exactly this).
    - {b width} — graph width along the enhanced scheme's
      most-constraining order ({!Mlo_csp.Schemes.most_constraining_order}):
      the maximum number of earlier neighbours any variable has.  By
      Freuder's theorem a strongly k-consistent network with width < k
      is backtrack-free; arc consistency (the AC-2001 pre-pass) gives
      2-consistency, so [width <= 1] networks (forests) solve without a
      single backtrack.  The induced width along the same order bounds
      the consistency level adaptive consistency would need.
    - {b arc consistency} — values AC-2001 removes before search
      (arc-inconsistent: they appear in no solution), and constraints
      that allow every value pair (redundant: they never prune).
    - {b unsat core} — when AC-2001 wipes a domain the network is
      unsatisfiable; a deletion-minimal subset of constraints whose
      propagation still wipes pins the blame ({!unsat_core}), surfaced
      to users through {!Mlo_core.Explain.explain_unsat}. *)

type report = {
  vars : int;
  constraints : int;
  total_domain : int;
  max_degree : int;
  components : int array array;
      (** {!Mlo_csp.Network.components}: members ascending, ordered by
          smallest member *)
  order : int array;  (** the most-constraining variable order measured *)
  width : int;  (** graph width along [order] *)
  induced_width : int;  (** induced width along [order] *)
  backtrack_free : bool;
      (** [width <= 1] and no wipe-out: arc-consistency preprocessing
          makes the search backtrack-free (Freuder) *)
  arc_inconsistent : (int * int) list;
      (** [(var, value index)] removed by AC-2001, ascending *)
  redundant : (int * int) list;
      (** constrained pairs [(i, j)], [i < j], allowing every value
          combination *)
  wiped : int option;  (** AC-2001 emptied this variable's domain *)
  unsat_core : (int * int) list option;
      (** with [wiped]: deletion-minimal constraint set whose AC still
          wipes a domain *)
  core_verified : bool option;
      (** with [unsat_core]: whether the independent certificate checker
          ({!Mlo_verify.Checker.refutes}), propagating over exactly the
          core's constraints with its own fixpoint, reproduces the
          wipe-out *)
}

val width_along : 'a Mlo_csp.Network.t -> int array -> int
(** [width_along net order] is the maximum, over variables, of the
    number of constraint-graph neighbours appearing earlier in [order].
    Raises [Invalid_argument] if [order] is not a permutation of the
    variables. *)

val induced_width_along : 'a Mlo_csp.Network.t -> int array -> int
(** Width of the graph after eliminating variables in reverse [order],
    connecting each variable's earlier neighbours pairwise (the fill-in
    of adaptive consistency). *)

val unsat_core : 'a Mlo_csp.Network.t -> ((int * int) list * int) option
(** [None] when AC-2001 does not wipe any domain.  Otherwise
    [Some (core, wiped)]: a deletion-minimal list of constrained pairs
    such that arc consistency restricted to exactly those constraints
    still empties the domain of [wiped] — a certificate of
    unsatisfiability a user can act on. *)

val analyze : 'a Mlo_csp.Network.t -> report
(** Runs every check.  Emits one trace span per pass (category
    ["analysis"]) and a ["components"] counter sample when tracing is
    enabled. *)

val diagnostics : name:(int -> string) -> report -> Diagnostic.t list
(** The report folded into diagnostics (sorted): a domain wipe-out and
    its unsat core are [Error]s; structure findings (multiple
    components, backtrack-freeness, arc-inconsistent values, redundant
    constraints) are [Info]. *)

val pp : name:(int -> string) -> Format.formatter -> report -> unit

val to_json : name:(int -> string) -> report -> Mlo_obs.Json.t
(** One target object of the [memlayout-analysis/1] schema. *)
