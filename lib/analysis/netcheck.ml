module Network = Mlo_csp.Network
module Schemes = Mlo_csp.Schemes
module Propagate = Mlo_csp.Propagate
module Bitset = Mlo_csp.Bitset
module Trace = Mlo_obs.Trace
module Json = Mlo_obs.Json

type report = {
  vars : int;
  constraints : int;
  total_domain : int;
  max_degree : int;
  components : int array array;
  order : int array;
  width : int;
  induced_width : int;
  backtrack_free : bool;
  arc_inconsistent : (int * int) list;
  redundant : (int * int) list;
  wiped : int option;
  unsat_core : (int * int) list option;
  core_verified : bool option;
}

let positions net order =
  let n = Network.num_vars net in
  if Array.length order <> n then
    invalid_arg "Netcheck: order length differs from variable count";
  let pos = Array.make n (-1) in
  Array.iteri
    (fun k v ->
      if v < 0 || v >= n || pos.(v) >= 0 then
        invalid_arg "Netcheck: order is not a permutation";
      pos.(v) <- k)
    order;
  pos

let width_along net order =
  let pos = positions net order in
  let w = ref 0 in
  Array.iter
    (fun v ->
      let earlier =
        List.fold_left
          (fun acc j -> if pos.(j) < pos.(v) then acc + 1 else acc)
          0 (Network.neighbors net v)
      in
      if earlier > !w then w := earlier)
    order;
  !w

(* Simulate adaptive consistency's elimination in reverse order: each
   variable's earlier neighbours ("parents") are connected pairwise
   before moving on, and the induced width is the largest parent set
   seen.  Adjacency grows with fill-in, so it is kept as mutable sets. *)
let induced_width_along net order =
  let n = Network.num_vars net in
  let pos = positions net order in
  let module IS = Set.Make (Int) in
  let adj =
    Array.init n (fun v -> IS.of_list (Network.neighbors net v))
  in
  let w = ref 0 in
  for k = n - 1 downto 0 do
    let v = order.(k) in
    let parents = IS.filter (fun j -> pos.(j) < k) adj.(v) in
    let card = IS.cardinal parents in
    if card > !w then w := card;
    IS.iter
      (fun a ->
        IS.iter
          (fun b ->
            if a <> b then begin
              adj.(a) <- IS.add b adj.(a);
              adj.(b) <- IS.add a adj.(b)
            end)
          parents)
      parents
  done;
  !w

(* -- arc consistency probes ------------------------------------------ *)

let wipes net =
  match Propagate.ac2001 net with
  | Propagate.Wiped i -> Some i
  | Propagate.Reduced _ -> None

(* Rebuild the network keeping only the given constrained pairs. *)
let with_constraints net pairs =
  let n = Network.num_vars net in
  let names = Array.init n (Network.name net) in
  let domains = Array.init n (Network.domain net) in
  let sub = Network.create ~names ~domains in
  List.iter
    (fun (i, j) ->
      let ps = ref [] in
      for vi = 0 to Network.domain_size net i - 1 do
        for vj = 0 to Network.domain_size net j - 1 do
          if Network.allowed net i vi j vj then ps := (vi, vj) :: !ps
        done
      done;
      Network.add_allowed sub i j !ps)
    pairs;
  sub

let unsat_core net =
  match wipes net with
  | None -> None
  | Some _ ->
    (* Deletion-based minimization: drop each constraint in turn and
       keep the drop whenever propagation still wipes without it.  The
       survivors form an irreducible core. *)
    let all = Network.constraint_pairs net in
    let kept = ref all in
    List.iter
      (fun c ->
        let trial = List.filter (fun c' -> c' <> c) !kept in
        match wipes (with_constraints net trial) with
        | Some _ -> kept := trial
        | None -> ())
      all;
    let wiped_var =
      match wipes (with_constraints net !kept) with
      | Some i -> i
      | None -> assert false (* the full set wipes and drops preserved it *)
    in
    Some (!kept, wiped_var)

let redundant_pairs net =
  List.filter
    (fun (i, j) ->
      let dj = Network.domain_size net j in
      let complete = ref true in
      for vi = 0 to Network.domain_size net i - 1 do
        if Network.support_count net i vi j <> dj then complete := false
      done;
      !complete)
    (Network.constraint_pairs net)

let analyze net =
  let pass name f = Trace.with_span ~cat:"analysis" ("netcheck:" ^ name) f in
  let n = Network.num_vars net in
  let components = pass "components" (fun () -> Network.components net) in
  Trace.counter ~cat:"analysis" "components"
    [ ("count", float_of_int (Array.length components)) ];
  let order =
    pass "order" (fun () -> Schemes.most_constraining_order net)
  in
  let width, induced_width =
    pass "width" (fun () ->
        (width_along net order, induced_width_along net order))
  in
  let ac = pass "arc-consistency" (fun () -> Propagate.ac2001 net) in
  let arc_inconsistent, wiped =
    match ac with
    | Propagate.Wiped i -> ([], Some i)
    | Propagate.Reduced doms ->
      let removed = ref [] in
      for i = n - 1 downto 0 do
        for v = Network.domain_size net i - 1 downto 0 do
          if not (Bitset.mem doms.(i) v) then removed := (i, v) :: !removed
        done
      done;
      (!removed, None)
  in
  let unsat_core =
    match wiped with
    | None -> None
    | Some _ -> pass "unsat-core" (fun () -> Option.map fst (unsat_core net))
  in
  let core_verified =
    (* independent confirmation: the certificate checker's own
       propagation core, restricted to exactly the core's constraints,
       must reproduce the wipe-out *)
    Option.map
      (fun core ->
        pass "core-verify" (fun () ->
            Mlo_verify.Checker.refutes ~only:core net))
      unsat_core
  in
  let redundant = pass "redundant" (fun () -> redundant_pairs net) in
  let max_degree = ref 0 in
  for i = 0 to n - 1 do
    if Network.degree net i > !max_degree then max_degree := Network.degree net i
  done;
  {
    vars = n;
    constraints = Network.num_constraints net;
    total_domain = Network.total_domain_size net;
    max_degree = !max_degree;
    components;
    order;
    width;
    induced_width;
    backtrack_free = width <= 1 && wiped = None;
    arc_inconsistent;
    redundant;
    wiped;
    unsat_core;
    core_verified;
  }

(* -- rendering -------------------------------------------------------- *)

let pair_str ~name (i, j) = Printf.sprintf "%s-%s" (name i) (name j)

let diagnostics ~name r =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (match r.wiped with
  | Some i ->
    add
      (Diagnostic.make Diagnostic.Error ~code:"domain-wipeout"
         ~subject:(name i)
         (Printf.sprintf
            "variable %s has no arc-consistent value: the network is \
             unsatisfiable"
            (name i)));
    (match r.unsat_core with
    | Some core ->
      add
        (Diagnostic.make Diagnostic.Error ~code:"unsat-core"
           ~subject:(match r.wiped with Some i -> name i | None -> "")
           (Printf.sprintf "minimal unsat core (%d constraints): %s%s"
              (List.length core)
              (String.concat ", " (List.map (pair_str ~name) core))
              (match r.core_verified with
              | Some true -> " (independently verified)"
              | Some false -> " (VERIFICATION FAILED)"
              | None -> "")))
    | None -> ())
  | None -> ());
  if Array.length r.components > 1 then
    add
      (Diagnostic.make Diagnostic.Info ~code:"components" ~subject:"network"
         (Printf.sprintf
            "constraint graph splits into %d independent subnetworks \
             (component-wise search applies)"
            (Array.length r.components)));
  if r.backtrack_free then
    add
      (Diagnostic.make Diagnostic.Info ~code:"backtrack-free"
         ~subject:"network"
         (Printf.sprintf
            "width %d < 2 along the most-constraining order: with \
             arc-consistency preprocessing the search is backtrack-free \
             (Freuder)"
            r.width));
  (let by_var = Hashtbl.create 8 in
   List.iter
     (fun (i, _) ->
       Hashtbl.replace by_var i (1 + Option.value ~default:0 (Hashtbl.find_opt by_var i)))
     r.arc_inconsistent;
   Hashtbl.fold (fun i c acc -> (i, c) :: acc) by_var []
   |> List.sort compare
   |> List.iter (fun (i, c) ->
          add
            (Diagnostic.make Diagnostic.Info ~code:"arc-inconsistent"
               ~subject:(name i)
               (Printf.sprintf
                  "%d value(s) of %s are arc-inconsistent: AC-2001 removes \
                   them before search"
                  c (name i)))));
  List.iter
    (fun p ->
      add
        (Diagnostic.make Diagnostic.Info ~code:"redundant-constraint"
           ~subject:(pair_str ~name p)
           (Printf.sprintf
              "constraint %s allows every value pair: it never prunes"
              (pair_str ~name p))))
    r.redundant;
  Diagnostic.sort (List.rev !diags)

let pp ~name ppf r =
  Format.fprintf ppf
    "@[<v>network: %d variables, %d constraints, total domain %d, max degree \
     %d@,"
    r.vars r.constraints r.total_domain r.max_degree;
  Format.fprintf ppf "components: %d@," (Array.length r.components);
  Array.iteri
    (fun k c ->
      Format.fprintf ppf "  #%d (%d): %s@," k (Array.length c)
        (String.concat " " (Array.to_list (Array.map name c))))
    r.components;
  Format.fprintf ppf
    "width: %d, induced width: %d (most-constraining order)@," r.width
    r.induced_width;
  Format.fprintf ppf "backtrack-free: %b@," r.backtrack_free;
  Format.fprintf ppf "arc-inconsistent values: %d, redundant constraints: %d@,"
    (List.length r.arc_inconsistent)
    (List.length r.redundant);
  (match r.wiped with
  | Some i -> Format.fprintf ppf "wiped: %s (unsatisfiable)@," (name i)
  | None -> ());
  List.iter
    (fun d -> Format.fprintf ppf "%a@," Diagnostic.pp d)
    (diagnostics ~name r);
  Format.fprintf ppf "@]"

let to_json ~name r =
  let num i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("vars", num r.vars);
      ("constraints", num r.constraints);
      ("total_domain", num r.total_domain);
      ("max_degree", num r.max_degree);
      ( "components",
        Json.Arr
          (Array.to_list
             (Array.map
                (fun c ->
                  Json.Arr
                    (Array.to_list (Array.map (fun v -> Json.Str (name v)) c)))
                r.components)) );
      ( "order",
        Json.Arr (Array.to_list (Array.map (fun v -> Json.Str (name v)) r.order))
      );
      ("width", num r.width);
      ("induced_width", num r.induced_width);
      ("backtrack_free", Json.Bool r.backtrack_free);
      ( "arc_inconsistent",
        Json.Arr
          (List.map
             (fun (i, v) ->
               Json.Obj [ ("var", Json.Str (name i)); ("value", num v) ])
             r.arc_inconsistent) );
      ( "redundant",
        Json.Arr
          (List.map (fun p -> Json.Str (pair_str ~name p)) r.redundant) );
      ( "wiped",
        match r.wiped with Some i -> Json.Str (name i) | None -> Json.Null );
      ( "unsat_core",
        match r.unsat_core with
        | Some core ->
          Json.Arr (List.map (fun p -> Json.Str (pair_str ~name p)) core)
        | None -> Json.Null );
      ( "core_verified",
        match r.core_verified with
        | Some b -> Json.Bool b
        | None -> Json.Null );
      ("diagnostics", Json.Arr (List.map Diagnostic.to_json (diagnostics ~name r)));
    ]
