(** Analyzer findings: one diagnostic per defect or notable property.

    Both analysis layers ({!Lint} over programs, {!Netcheck} over
    constraint networks) report through this one type so the CLI, the
    JSON emitter and the CI gate treat them uniformly.  Severities are
    deliberate: [Error] marks something provably wrong (an access that
    escapes its array, a domain wiped by arc consistency), [Warning]
    marks a likely mistake (a declared array no nest references), and
    [Info] records structure worth knowing that is not a defect
    (temporal-reuse access matrices, pinned loop orders, independent
    subnetworks). *)

type severity = Info | Warning | Error

type t = {
  severity : severity;
  code : string;  (** stable kebab-case identifier, e.g. ["out-of-bounds"] *)
  subject : string;  (** the nest / array / variable concerned *)
  message : string;  (** one human-readable line *)
}

val make : severity -> code:string -> subject:string -> string -> t
val severity_label : severity -> string

val compare_severity : severity -> severity -> int
(** Orders [Error] above [Warning] above [Info]. *)

val is_error : t -> bool

val count : severity -> t list -> int

val sort : t list -> t list
(** Most severe first; within a severity, by subject, then code, then
    message — a total order, so two runs over the same inputs render
    byte-identical reports (unit-enforced in [test/test_analysis.ml]). *)

val exit_code : t list -> int
(** The CI contract: [1] when any [Error]-severity diagnostic is
    present, [0] otherwise.  (Exit [2] is reserved for usage errors and
    never produced from diagnostics.) *)

val pp : Format.formatter -> t -> unit
(** ["error[out-of-bounds] subject: message"]. *)

val to_json : t -> Mlo_obs.Json.t
(** Object with fields [severity], [code], [subject], [message]. *)
