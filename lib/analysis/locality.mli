(** Static locality analysis: reuse vectors and closed-form miss
    prediction from compiled affine address forms.

    Every access in a compiled trace ({!Mlo_cachesim.Compiled_trace}) is
    an affine lattice [addr0 + sum_l delta_l * k_l] over the nest's
    iteration box, so its reuse structure is readable without walking a
    single address:

    - a zero [delta_l] is {e self-temporal} reuse carried by loop [l];
    - a [delta_l] smaller than the line size is {e self-spatial} reuse
      (successive iterations of [l] fall on the same line);
    - accesses to the same array whose delta vectors coincide and whose
      [addr0] differ by a constant form a {e group} and share lines.

    The per-nest miss estimate is a cold + capacity-approximate,
    interference-free bound: the distinct-line count of each group is
    computed in closed form (dense stride prefixes stay full at line
    granularity, the first sparse stride is an exact periodic alignment
    sum, line-aligned sparse strides multiply exactly), and reuse carried
    by a loop level is granted only when the subnest inside it fits the
    cache — both by total capacity and by the group's own footprint per
    cache set (so pathological power-of-two stride streams that thrash a
    set-associative cache are charged their conflict re-fetches).
    Cross-array conflict interference is ignored, which is what makes
    the estimate a bound rather than a prediction.

    On a fully-associative cache whose capacity covers the footprint all
    reuse is realized and the estimate degenerates to the distinct-line
    count; for the lattice shapes flagged [exact] that count is exact,
    which the qcheck family in [test/test_locality.ml] enforces against
    {!Mlo_cachesim.Simulate.run}. *)

type reuse_class = Temporal | Spatial | No_reuse

type level = {
  lv_delta : int;  (** signed byte stride at this loop level *)
  lv_count : int;  (** trip count *)
  lv_class : reuse_class;
  lv_realized : bool;
      (** the reuse carried by this level survives one execution of the
          subnest inside it (capacity and self-interference checks);
          always [true] for [No_reuse] levels *)
}

type group = {
  g_array : string;
  g_accesses : int list;  (** access indices within the nest, ascending *)
  g_levels : level array;  (** outermost first *)
  g_gaps : int array;
      (** sorted distinct constant address differences to the group
          leader (first element 0); singleton for a lone access *)
  g_lines : float;  (** distinct L1 lines touched (cold misses) *)
  g_misses : float;  (** closed-form miss estimate *)
  g_exact : bool;
      (** [g_lines] is an exact count and no capacity factor was
          applied, i.e. [g_misses = g_lines] exactly *)
}

type nest = {
  n_name : string;
  n_trips : int;  (** iterations of this nest *)
  n_groups : group list;
  n_lines : float;
  n_misses : float;
  n_exact : bool;
}

type report = {
  r_program : string;
  r_geometry : Mlo_cachesim.Cache.geometry;
  r_nests : nest list;
  r_lines : float;
  r_misses : float;
      (** whole-program L1 miss estimate, including cross-nest reuse
          credit for arrays still resident from an earlier nest *)
  r_exact : bool;
}

val analyze :
  ?geometry:Mlo_cachesim.Cache.geometry ->
  ?layouts:(string -> Mlo_layout.Layout.t option) ->
  Mlo_ir.Program.t ->
  report
(** Analyze [prog] under the given layout assignment (default layouts
    for arrays mapped to [None]).  [geometry] defaults to the paper's L1
    ({!Mlo_cachesim.Hierarchy.paper_config}).  Cost is linear in the
    number of accesses — no address stream is walked.  Raises like
    {!Mlo_cachesim.Address_map.build} on rank mismatches. *)

type metric = Misses | Lines
(** What {!profiler} charges a candidate layout per group: the
    closed-form miss estimate ([g_misses], the default) or the distinct
    L1 line count ([g_lines], the cold-miss floor — a capacity-blind
    objective for comparing layouts by footprint alone). *)

val profiler :
  ?geometry:Mlo_cachesim.Cache.geometry ->
  ?metric:metric ->
  Mlo_ir.Program.t ->
  array_name:string ->
  layout:Mlo_layout.Layout.t ->
  float array
(** [profiler prog] stages the program skeleton and per-nest legal loop
    permutations once, and returns the per-nest miss profile of one
    array under one candidate layout: entry [i] is the estimated misses
    of [array_name]'s references in nest [i] (0 where the nest does not
    touch it), minimized over the nest's dependence-legal loop orders,
    with every other array at its default layout.  This is the cost
    signal dominance pruning ({!Mlo_netgen}) compares candidate layouts
    with.

    Queries are memoized: a profile is a pure function of
    (program, geometry, metric, array, layout), so results are cached under the
    {e physical} identity of [prog] and shared by every profiler over
    the same program object — re-profiling a program the process has
    already costed (a solver service, repeated pruning passes) only pays
    hashtable lookups.  A query derives only the nests touching
    [array_name] (the other nests' forms cannot change).  The cache is
    mutex-protected (queries may run on worker Domains) and entries are
    dropped once their program is collected.  Returned arrays are
    fresh — safe to mutate. *)

val pp : Format.formatter -> report -> unit
(** Human-readable per-nest/per-group table. *)

val to_json : report -> Mlo_obs.Json.t
(** The report as a JSON object (the [locality] payload of the CLI's
    [memlayout-locality/1] documents). *)
