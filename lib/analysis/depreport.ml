module Dependence = Mlo_ir.Dependence
module Loop_nest = Mlo_ir.Loop_nest
module Access = Mlo_ir.Access
module Program = Mlo_ir.Program
module Presburger = Mlo_ir.Presburger
module Trace = Mlo_obs.Trace
module Json = Mlo_obs.Json

type pair_report = {
  src : int;
  dst : int;
  src_ref : string;
  dst_ref : string;
  src_write : bool;
  dst_write : bool;
  deps : Dependence.dep list;
}

type nest_report = {
  nest : string;
  depth : int;
  pairs : pair_report list;
  legal_orders : int;
  total_orders : int;
}

type t = {
  program : string;
  nests : nest_report list;
  checks : int;
  eliminations : int;
  splits : int;
  max_split_depth : int;
}

let access_str nest a =
  Format.asprintf "%a" (Access.pp (Loop_nest.var_names nest)) a

let nest_report nest =
  let accs = Loop_nest.accesses nest in
  let pairs =
    List.map
      (fun (i, j, deps) ->
        let a1 = accs.(i) and a2 = accs.(j) in
        {
          src = i;
          dst = j;
          src_ref = access_str nest a1;
          dst_ref = access_str nest a2;
          src_write = Access.is_write a1;
          dst_write = Access.is_write a2;
          deps;
        })
      (Dependence.pair_deps nest)
  in
  let legal = List.length (Dependence.legal_permutations nest) in
  let total = List.length (Loop_nest.permutations nest) in
  {
    nest = Loop_nest.name nest;
    depth = Loop_nest.depth nest;
    pairs;
    legal_orders = legal;
    total_orders = total;
  }

let run prog =
  Trace.with_span ~cat:"analysis" "deps:analyze" @@ fun () ->
  let before = Presburger.stats () in
  let nests =
    Array.to_list (Array.map nest_report (Program.nests prog))
  in
  let after = Presburger.stats () in
  let checks = after.Presburger.checks - before.Presburger.checks
  and eliminations =
    after.Presburger.eliminations - before.Presburger.eliminations
  and splits = after.Presburger.splits - before.Presburger.splits
  and max_split_depth = after.Presburger.max_split_depth in
  Trace.counter ~cat:"analysis" "presburger"
    [
      ("checks", float_of_int checks);
      ("eliminations", float_of_int eliminations);
      ("splits", float_of_int splits);
    ];
  {
    program = Program.name prog;
    nests;
    checks;
    eliminations;
    splits;
    max_split_depth;
  }

let pinned nr = nr.legal_orders = 1 && nr.total_orders > 1

let pp ppf t =
  Format.fprintf ppf "@[<v>program %s@," t.program;
  List.iter
    (fun nr ->
      Format.fprintf ppf "@,nest %s (depth %d): %d/%d loop orders legal%s@,"
        nr.nest nr.depth nr.legal_orders nr.total_orders
        (if pinned nr then " (pinned)" else "");
      if nr.pairs = [] then Format.fprintf ppf "  no conflicting pairs@,"
      else
        List.iter
          (fun pr ->
            let kind w = if w then "write" else "read" in
            if pr.deps = [] then
              Format.fprintf ppf "  %s (%s) / %s (%s): independent@,"
                pr.src_ref (kind pr.src_write) pr.dst_ref (kind pr.dst_write)
            else
              Format.fprintf ppf "  %s (%s) -> %s (%s): %a@," pr.src_ref
                (kind pr.src_write) pr.dst_ref (kind pr.dst_write)
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                   Dependence.pp_dep)
                pr.deps)
          nr.pairs)
    t.nests;
  Format.fprintf ppf
    "@,presburger: %d checks, %d eliminations, %d splits (depth <= %d)@]"
    t.checks t.eliminations t.splits t.max_split_depth

let dep_json = function
  | Dependence.Distance d ->
      Json.Obj
        [
          ("kind", Json.Str "distance");
          ( "vector",
            Json.Arr
              (Array.to_list
                 (Array.map (fun c -> Json.Num (float_of_int c)) d)) );
        ]
  | Dependence.Direction dirs ->
      Json.Obj
        [
          ("kind", Json.Str "direction");
          ( "dirs",
            Json.Arr
              (Array.to_list
                 (Array.map
                    (fun d ->
                      Json.Str (String.make 1 (Dependence.direction_char d)))
                    dirs)) );
        ]

let pair_json pr =
  Json.Obj
    [
      ("src", Json.Num (float_of_int pr.src));
      ("dst", Json.Num (float_of_int pr.dst));
      ("src_ref", Json.Str pr.src_ref);
      ("dst_ref", Json.Str pr.dst_ref);
      ("src_write", Json.Bool pr.src_write);
      ("dst_write", Json.Bool pr.dst_write);
      ("independent", Json.Bool (pr.deps = []));
      ("deps", Json.Arr (List.map dep_json pr.deps));
    ]

let nest_json nr =
  Json.Obj
    [
      ("nest", Json.Str nr.nest);
      ("depth", Json.Num (float_of_int nr.depth));
      ("pairs", Json.Arr (List.map pair_json nr.pairs));
      ("legal_orders", Json.Num (float_of_int nr.legal_orders));
      ("total_orders", Json.Num (float_of_int nr.total_orders));
      ("pinned", Json.Bool (pinned nr));
    ]

let to_json t =
  Json.Obj
    [
      ("program", Json.Str t.program);
      ("nests", Json.Arr (List.map nest_json t.nests));
      ( "presburger",
        Json.Obj
          [
            ("checks", Json.Num (float_of_int t.checks));
            ("eliminations", Json.Num (float_of_int t.eliminations));
            ("splits", Json.Num (float_of_int t.splits));
            ("max_split_depth", Json.Num (float_of_int t.max_split_depth));
          ] );
    ]
