module Hierarchy = Mlo_cachesim.Hierarchy
module Simulate = Mlo_cachesim.Simulate
module Trace = Mlo_obs.Trace
module Json = Mlo_obs.Json

type target = {
  ct_name : string;
  ct_program : Mlo_ir.Program.t;
  ct_layouts : string -> Mlo_layout.Layout.t option;
}

type entry = {
  ce_name : string;
  ce_estimated : float;
  ce_simulated : int;
  ce_error : float;
}

type report = {
  cr_entries : entry list;
  cr_threshold : float;
  cr_diagnostics : Diagnostic.t list;
}

let default_threshold = 0.15

let run ?(config = Hierarchy.paper_config) ?(threshold = default_threshold)
    targets =
  Trace.with_span ~cat:"analysis" "costcheck"
    ~args:[ ("targets", Trace.Int (List.length targets)) ]
  @@ fun () ->
  let entries =
    List.map
      (fun t ->
        Trace.with_span ~cat:"analysis" "costcheck-target"
          ~args:[ ("target", Trace.Str t.ct_name) ]
        @@ fun () ->
        let est =
          (Locality.analyze ~geometry:config.Hierarchy.l1 ~layouts:t.ct_layouts
             t.ct_program)
            .Locality.r_misses
        in
        let sim =
          (Simulate.run ~config t.ct_program ~layouts:t.ct_layouts)
            .Simulate.counters.Hierarchy.l1_misses
        in
        {
          ce_name = t.ct_name;
          ce_estimated = est;
          ce_simulated = sim;
          ce_error = Float.abs (est -. float_of_int sim) /. float_of_int (max 1 sim);
        })
      targets
  in
  let diagnostics =
    List.filter_map
      (fun e ->
        if e.ce_error > threshold then
          Some
            (Diagnostic.make Diagnostic.Error ~code:"estimate-divergence"
               ~subject:e.ce_name
               (Printf.sprintf
                  "static L1 miss estimate %.0f vs simulated %d: relative \
                   error %.3f exceeds %.2f"
                  e.ce_estimated e.ce_simulated e.ce_error threshold))
        else None)
      entries
    |> Diagnostic.sort
  in
  { cr_entries = entries; cr_threshold = threshold; cr_diagnostics = diagnostics }

let pp ppf r =
  Format.fprintf ppf "@[<v>costcheck (threshold %.2f)@," r.cr_threshold;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-10s est=%-10.0f sim=%-10d err=%.3f@," e.ce_name
        e.ce_estimated e.ce_simulated e.ce_error)
    r.cr_entries;
  List.iter (fun d -> Format.fprintf ppf "  %a@," Diagnostic.pp d) r.cr_diagnostics;
  Format.fprintf ppf "  %d divergent of %d@]"
    (List.length r.cr_diagnostics)
    (List.length r.cr_entries)

let to_json r =
  Json.Obj
    [
      ("threshold", Json.Num r.cr_threshold);
      ( "entries",
        Json.Arr
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("name", Json.Str e.ce_name);
                   ("estimated", Json.Num e.ce_estimated);
                   ("simulated", Json.Num (float_of_int e.ce_simulated));
                   ("error", Json.Num e.ce_error);
                 ])
             r.cr_entries) );
      ("diagnostics", Json.Arr (List.map Diagnostic.to_json r.cr_diagnostics));
    ]
